// Tests for src/trace: the DDRT file format (chunking, compression, CRCs,
// footer index), checkpoint index construction, TraceStore round-trips,
// harness save/load hooks, and checkpointed partial replay.
//
// The acceptance property: a RecordedExecution saved via TraceStore and
// reloaded from disk replays to the same failure fingerprint and output
// fingerprint as the in-memory original, and partial replay from a
// mid-trace checkpoint reaches the same outcome as full replay.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "src/apps/scenarios.h"
#include "src/core/experiment.h"
#include "src/trace/block_compress.h"
#include "src/trace/checkpoint.h"
#include "src/trace/chunk_codec.h"
#include "src/trace/trace_reader.h"
#include "src/trace/trace_store.h"
#include "src/trace/trace_writer.h"
#include "src/util/rng.h"

namespace ddr {
namespace {

// Temp-file helper: unique path in the test working directory, removed on
// scope exit.
class ScopedTracePath {
 public:
  explicit ScopedTracePath(const std::string& tag)
      : path_("trace_test_" + tag + ".ddrt") {}
  ~ScopedTracePath() { std::remove(path_.c_str()); }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

RecordedExecution MakeSyntheticRecording(uint64_t num_events,
                                         uint64_t seed = 99) {
  RecordedExecution recording;
  recording.model = "synthetic";
  Rng rng(seed);
  for (uint64_t seq = 0; seq < num_events; ++seq) {
    Event event;
    event.seq = seq;
    event.time = seq * 37;
    event.fiber = static_cast<FiberId>(seq % 4);
    event.obj = 5 + seq % 7;
    event.value = rng.NextIndex(1 << 20);
    switch (seq % 4) {
      case 0:
        event.type = EventType::kSharedRead;
        break;
      case 1:
        event.type = EventType::kContextSwitch;
        event.aux = PackSwitchAux(seq, SwitchCause::kPreempt);
        break;
      case 2:
        event.type = EventType::kRngDraw;
        break;
      default:
        event.type = EventType::kInput;
        break;
    }
    recording.log.Append(event);
  }
  recording.recorded_events = num_events;
  recording.intercepted_events = num_events;
  recording.recorded_bytes = recording.log.encoded_size_bytes();
  recording.cpu_nanos = 1000;
  recording.overhead_nanos = 150;
  return recording;
}

// ---------------------------------------------------------------- Compress

TEST(BlockCompressTest, RoundtripCompressible) {
  std::vector<uint8_t> input;
  for (int i = 0; i < 4000; ++i) {
    input.push_back(static_cast<uint8_t>(i % 16));
  }
  const std::vector<uint8_t> compressed = CompressBlock(input);
  EXPECT_LT(compressed.size(), input.size());
  auto out = DecompressBlock(compressed.data(), compressed.size(), input.size());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(BlockCompressTest, RoundtripIncompressibleAndTiny) {
  Rng rng(7);
  for (size_t size : {0u, 1u, 3u, 5u, 100u, 5000u}) {
    std::vector<uint8_t> input;
    for (size_t i = 0; i < size; ++i) {
      input.push_back(static_cast<uint8_t>(rng.NextIndex(256)));
    }
    const std::vector<uint8_t> compressed = CompressBlock(input);
    auto out =
        DecompressBlock(compressed.data(), compressed.size(), input.size());
    ASSERT_TRUE(out.ok()) << "size " << size << ": " << out.status();
    EXPECT_EQ(*out, input);
  }
}

TEST(BlockCompressTest, RoundtripOverlappingRuns) {
  // RLE-like data exercises overlapping match copies (distance < length).
  std::vector<uint8_t> input(3000, 0xAA);
  const std::vector<uint8_t> compressed = CompressBlock(input);
  EXPECT_LT(compressed.size(), 100u);
  auto out = DecompressBlock(compressed.data(), compressed.size(), input.size());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(BlockCompressTest, CorruptStreamsFailCleanly) {
  std::vector<uint8_t> input(1000, 0x42);
  std::vector<uint8_t> compressed = CompressBlock(input);
  // Truncations.
  for (size_t keep = 0; keep < compressed.size(); keep += 3) {
    auto out = DecompressBlock(compressed.data(), keep, input.size());
    EXPECT_FALSE(out.ok()) << "prefix " << keep;
  }
  // Wrong declared size.
  EXPECT_FALSE(
      DecompressBlock(compressed.data(), compressed.size(), input.size() + 1)
          .ok());
  // Bogus distance: a match token pointing before the start of the block.
  Encoder bogus;
  bogus.PutVarint64(0);   // no literals
  bogus.PutVarint64(8);   // match of 8
  bogus.PutVarint64(50);  // distance 50 with empty history
  EXPECT_FALSE(
      DecompressBlock(bogus.buffer().data(), bogus.buffer().size(), 8).ok());

  // Huge match length crafted to wrap the size guard: must be rejected,
  // not enter an unbounded copy loop.
  Encoder wrap;
  wrap.PutVarint64(1);      // one literal
  wrap.PutVarint64(~0ull);  // match_len that wraps out.size()+lit+match
  wrap.PutFixed8('x');
  wrap.PutVarint64(1);  // distance 1
  EXPECT_FALSE(
      DecompressBlock(wrap.buffer().data(), wrap.buffer().size(), 100).ok());

  // Same for a wrapping literal length.
  Encoder wrap_lit;
  wrap_lit.PutVarint64(~0ull);
  wrap_lit.PutVarint64(0);
  EXPECT_FALSE(
      DecompressBlock(wrap_lit.buffer().data(), wrap_lit.buffer().size(), 100)
          .ok());
}

// -------------------------------------------------------------- Checkpoint

TEST(CheckpointIndexTest, BuildCountsCursorsAndFingerprints) {
  const RecordedExecution recording = MakeSyntheticRecording(100);
  const CheckpointIndex index =
      BuildCheckpointIndex(recording.log, /*interval=*/25,
                           /*events_per_chunk=*/40, /*full_stream=*/true);
  ASSERT_EQ(index.checkpoints.size(), 3u);  // before events 25, 50, 75
  EXPECT_TRUE(index.full_stream);

  const ReplayCheckpoint& cp = index.checkpoints[1];
  EXPECT_EQ(cp.event_index, 50u);
  EXPECT_EQ(cp.chunk_index, 1u);  // event 50 lives in chunk [40, 80)
  EXPECT_EQ(cp.resume_seq, recording.log.events()[50].seq);

  // Cursor state must equal the per-type counts of the prefix.
  uint64_t switches = 0, rngs = 0, inputs = 0, reads = 0;
  Fingerprint fp;
  for (size_t i = 0; i < 50; ++i) {
    const Event& event = recording.log.events()[i];
    fp.Mix(event.SemanticHash());
    switches += event.type == EventType::kContextSwitch;
    rngs += event.type == EventType::kRngDraw;
    inputs += event.type == EventType::kInput;
    reads += event.type == EventType::kSharedRead;
  }
  EXPECT_EQ(cp.schedule_cursor, switches);
  EXPECT_EQ(cp.rng_cursor, rngs);
  EXPECT_EQ(cp.input_cursor, inputs);
  EXPECT_EQ(cp.read_cursor, reads);
  EXPECT_EQ(cp.prefix_fingerprint, fp.value());
}

TEST(CheckpointIndexTest, NearestBefore) {
  const RecordedExecution recording = MakeSyntheticRecording(100);
  const CheckpointIndex index =
      BuildCheckpointIndex(recording.log, 25, 40, true);
  EXPECT_EQ(index.NearestBefore(10), nullptr);
  ASSERT_NE(index.NearestBefore(30), nullptr);
  EXPECT_EQ(index.NearestBefore(30)->event_index, 25u);
  EXPECT_EQ(index.NearestBefore(75)->event_index, 75u);
  EXPECT_EQ(index.NearestBefore(~0ull)->event_index, 75u);
}

TEST(CheckpointIndexTest, EncodeDecodeRoundtrip) {
  const RecordedExecution recording = MakeSyntheticRecording(100);
  const CheckpointIndex index =
      BuildCheckpointIndex(recording.log, 25, 40, true);
  auto decoded = CheckpointIndex::Decode(index.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->full_stream, index.full_stream);
  EXPECT_EQ(decoded->interval, index.interval);
  ASSERT_EQ(decoded->checkpoints.size(), index.checkpoints.size());
  for (size_t i = 0; i < index.checkpoints.size(); ++i) {
    EXPECT_EQ(decoded->checkpoints[i].prefix_fingerprint,
              index.checkpoints[i].prefix_fingerprint);
    EXPECT_EQ(decoded->checkpoints[i].schedule_cursor,
              index.checkpoints[i].schedule_cursor);
  }
}

// -------------------------------------------------------------- TraceStore

TEST(TraceStoreTest, SaveLoadRoundtripsEveryField) {
  const RecordedExecution recording = MakeSyntheticRecording(1000);
  ScopedTracePath path("roundtrip");
  TraceWriteOptions options;
  options.events_per_chunk = 128;
  options.checkpoint_interval = 100;
  ASSERT_TRUE(TraceStore::Save(path.get(), recording, options).ok());

  auto loaded = TraceStore::Load(path.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->model, recording.model);
  ASSERT_EQ(loaded->log.size(), recording.log.size());
  EXPECT_EQ(loaded->log.encoded_size_bytes(), recording.log.encoded_size_bytes());
  for (size_t i = 0; i < recording.log.size(); ++i) {
    EXPECT_EQ(loaded->log.events()[i].SemanticHash(),
              recording.log.events()[i].SemanticHash());
    EXPECT_EQ(loaded->log.events()[i].seq, recording.log.events()[i].seq);
    EXPECT_EQ(loaded->log.events()[i].time, recording.log.events()[i].time);
  }
  EXPECT_EQ(loaded->snapshot.failure_fingerprint,
            recording.snapshot.failure_fingerprint);
  EXPECT_EQ(loaded->snapshot.output_fingerprint,
            recording.snapshot.output_fingerprint);
  EXPECT_EQ(loaded->recorded_bytes, recording.recorded_bytes);
  EXPECT_EQ(loaded->overhead_nanos, recording.overhead_nanos);
  EXPECT_EQ(loaded->cpu_nanos, recording.cpu_nanos);
  EXPECT_EQ(loaded->intercepted_events, recording.intercepted_events);
  EXPECT_EQ(loaded->recorded_events, recording.recorded_events);
  EXPECT_DOUBLE_EQ(loaded->OverheadMultiplier(), recording.OverheadMultiplier());

  EXPECT_TRUE(TraceStore::Verify(path.get()).ok());
}

TEST(TraceStoreTest, SerializeIsDeterministic) {
  const RecordedExecution recording = MakeSyntheticRecording(500);
  const TraceWriter writer;
  EXPECT_EQ(writer.Serialize(recording), writer.Serialize(recording));
}

TEST(TraceStoreTest, EmptyLogRoundtrips) {
  RecordedExecution recording;
  recording.model = "failure";  // ESD-style: snapshot only, no events
  recording.snapshot.has_failure = true;
  recording.snapshot.kind = FailureKind::kCrash;
  recording.snapshot.message = "boom";
  recording.snapshot.failure_fingerprint = 0xDEAD;
  ScopedTracePath path("empty");
  ASSERT_TRUE(TraceStore::Save(path.get(), recording).ok());
  auto loaded = TraceStore::Load(path.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->log.size(), 0u);
  EXPECT_EQ(loaded->snapshot.message, "boom");
  EXPECT_TRUE(TraceStore::Verify(path.get()).ok());
}

TEST(TraceStoreTest, MissingFileIsNotFound) {
  auto loaded = TraceStore::Load("no_such_trace_file.ddrt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(TraceStoreTest, DetectsCorruptionAndTruncation) {
  const RecordedExecution recording = MakeSyntheticRecording(1000);
  ScopedTracePath path("corrupt");
  TraceWriteOptions options;
  options.events_per_chunk = 100;
  ASSERT_TRUE(TraceStore::Save(path.get(), recording, options).ok());

  // Read the good image.
  const TraceWriter writer(options);
  std::vector<uint8_t> image = writer.Serialize(recording);

  // Flip one byte in the middle (inside some event chunk): load must fail
  // with a CRC mismatch, not produce garbage events.
  {
    std::vector<uint8_t> bad = image;
    bad[bad.size() / 2] ^= 0x40;
    std::FILE* f = std::fopen(path.get().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bad.data(), 1, bad.size(), f);
    std::fclose(f);
    auto loaded = TraceStore::Load(path.get());
    EXPECT_FALSE(loaded.ok());
    EXPECT_FALSE(TraceStore::Verify(path.get()).ok());
  }

  // Truncations at many points: Open or Load must fail cleanly.
  for (size_t keep = 0; keep < image.size(); keep += image.size() / 17 + 1) {
    std::FILE* f = std::fopen(path.get().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(image.data(), 1, keep, f);
    std::fclose(f);
    EXPECT_FALSE(TraceStore::Load(path.get()).ok()) << "prefix " << keep;
  }
}

TEST(TraceReaderTest, PartialRangeReadsTouchOnlyCoveringChunks) {
  const RecordedExecution recording = MakeSyntheticRecording(10000);
  ScopedTracePath path("partial");
  TraceWriteOptions options;
  options.events_per_chunk = 256;
  options.checkpoint_interval = 512;
  ASSERT_TRUE(TraceStore::Save(path.get(), recording, options).ok());

  auto reader = TraceReader::Open(path.get());
  ASSERT_TRUE(reader.ok());
  const uint64_t open_bytes = reader->bytes_read();
  EXPECT_LT(open_bytes, reader->file_size() / 2);

  auto events = reader->ReadEvents(5000, 100);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 100u);
  EXPECT_EQ((*events)[0].seq, recording.log.events()[5000].seq);
  // One chunk of 256 events decoded; nowhere near the whole file.
  EXPECT_LT(reader->bytes_read() - open_bytes, reader->file_size() / 10);

  // A count that would wrap first_event + count saturates to "rest of the
  // trace" instead of silently matching nothing.
  auto tail = reader->ReadEvents(9990, ~0ull);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 10u);
}

// The same DDRT file decodes to bit-identical logs through the buffered
// stream, pread, and mmap backends, filtered chunks included, and Verify
// stays green on all of them.
TEST(TraceReaderTest, IoBackendsDecodeBitIdentically) {
  for (TraceFilter filter : {TraceFilter::kNone, TraceFilter::kVarintDelta}) {
    const RecordedExecution recording = MakeSyntheticRecording(3000);
    ScopedTracePath path("backends");
    TraceWriteOptions options;
    options.events_per_chunk = 256;
    options.chunk_filter = filter;
    ASSERT_TRUE(TraceStore::Save(path.get(), recording, options).ok());

    std::vector<std::vector<uint8_t>> logs;
    for (IoBackend backend :
         {IoBackend::kStream, IoBackend::kPread, IoBackend::kMmap}) {
      TraceReaderOptions reader_options;
      reader_options.io.backend = backend;
      auto reader = TraceReader::Open(path.get(), reader_options);
      ASSERT_TRUE(reader.ok()) << reader.status();
      EXPECT_EQ(reader->io_backend(), backend);
      EXPECT_TRUE(reader->Verify().ok()) << IoBackendName(backend);
      auto log = reader->ReadAllEvents();
      ASSERT_TRUE(log.ok()) << log.status();
      logs.push_back(log->Encode());
      EXPECT_GT(reader->bytes_read(), 0u);
    }
    EXPECT_EQ(logs[0], logs[1]);
    EXPECT_EQ(logs[0], logs[2]);
  }
}

// A TraceReader with an attached ChunkCache decodes every chunk once:
// the second full read costs zero disk bytes.
TEST(TraceReaderTest, AttachedCacheMakesRereadsFree) {
  const RecordedExecution recording = MakeSyntheticRecording(2000);
  ScopedTracePath path("cached");
  TraceWriteOptions options;
  options.events_per_chunk = 128;
  ASSERT_TRUE(TraceStore::Save(path.get(), recording, options).ok());

  TraceReaderOptions reader_options;
  reader_options.cache = std::make_shared<ChunkCache>(16 << 20);
  auto reader = TraceReader::Open(path.get(), reader_options);
  ASSERT_TRUE(reader.ok()) << reader.status();

  auto first = reader->ReadAllEvents();
  ASSERT_TRUE(first.ok());
  const uint64_t cold_bytes = reader->bytes_read();
  const uint64_t chunk_count = reader->chunks().size();
  EXPECT_EQ(reader->cache_misses(), chunk_count);

  auto second = reader->ReadAllEvents();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(reader->bytes_read(), cold_bytes);
  EXPECT_EQ(reader->cache_hits(), chunk_count);
  EXPECT_EQ(first->Encode(), second->Encode());

  // Partial replay through the cached reader is the serve-side use: the
  // second window re-decodes nothing.
  const uint64_t before = reader->bytes_read();
  ASSERT_TRUE(reader->ReadEvents(500, 100).ok());
  EXPECT_EQ(reader->bytes_read(), before);
}

// ------------------------------------------------- Streaming + filters

// The streaming writer produces byte-identical output to the buffered
// Serialize path, whatever the append batching — so recordings streamed
// during a run and recordings serialized afterwards are interchangeable.
TEST(StreamingWriterTest, MatchesBufferedSerializeForBothFilters) {
  const RecordedExecution recording = MakeSyntheticRecording(1000);
  for (TraceFilter filter : {TraceFilter::kNone, TraceFilter::kVarintDelta}) {
    TraceWriteOptions options;
    options.events_per_chunk = 128;
    options.checkpoint_interval = 100;
    options.chunk_filter = filter;
    const std::vector<uint8_t> buffered = TraceWriter(options).Serialize(recording);

    BufferByteSink sink;
    StreamingTraceWriter writer(&sink, options);
    ASSERT_TRUE(writer.Begin().ok());
    const std::vector<Event>& events = recording.log.events();
    for (size_t i = 0; i < events.size();) {
      const size_t batch = std::min<size_t>(1 + i % 53, events.size() - i);
      ASSERT_TRUE(writer.AppendEvents(events.data() + i, batch).ok());
      i += batch;
    }
    ASSERT_TRUE(writer.Finish(FinishInfoFor(recording)).ok());

    EXPECT_EQ(sink.buffer(), buffered)
        << "filter " << static_cast<int>(filter);
    EXPECT_EQ(writer.bytes_written(), buffered.size());
    EXPECT_EQ(writer.events_written(), events.size());
  }
}

TEST(StreamingWriterTest, RejectsOutOfOrderLifecycle) {
  BufferByteSink sink;
  StreamingTraceWriter writer(&sink, {});
  Event event;
  EXPECT_FALSE(writer.AppendEvents(&event, 1).ok());  // before Begin
  ASSERT_TRUE(writer.Begin().ok());
  EXPECT_FALSE(writer.Begin().ok());  // twice
  ASSERT_TRUE(writer.Finish({}).ok());
  EXPECT_FALSE(writer.AppendEvents(&event, 1).ok());  // after Finish
  EXPECT_FALSE(writer.Finish({}).ok());  // twice
}

// The varint-delta chunk filter round-trips every event and beats the
// unfiltered encoding on disk (ddrz alone got only ~1.1x on varint-dense
// chunks; the columnar delta layout is what gives it runs to work with).
TEST(ChunkFilterTest, VarintDeltaRoundtripsAndShrinks) {
  const RecordedExecution recording = MakeSyntheticRecording(4000);
  TraceWriteOptions plain;
  plain.events_per_chunk = 512;
  TraceWriteOptions delta = plain;
  delta.chunk_filter = TraceFilter::kVarintDelta;

  const std::vector<uint8_t> plain_image = TraceWriter(plain).Serialize(recording);
  const std::vector<uint8_t> delta_image = TraceWriter(delta).Serialize(recording);
  EXPECT_LT(delta_image.size(), plain_image.size());

  for (const TraceWriteOptions& options : {plain, delta}) {
    ScopedTracePath path("filter");
    ASSERT_TRUE(TraceStore::Save(path.get(), recording, options).ok());
    auto loaded = TraceStore::Load(path.get());
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ASSERT_EQ(loaded->log.size(), recording.log.size());
    for (size_t i = 0; i < recording.log.size(); ++i) {
      EXPECT_EQ(loaded->log.events()[i].SemanticHash(),
                recording.log.events()[i].SemanticHash());
      EXPECT_EQ(loaded->log.events()[i].seq, recording.log.events()[i].seq);
      EXPECT_EQ(loaded->log.events()[i].time, recording.log.events()[i].time);
    }
    EXPECT_EQ(loaded->log.encoded_size_bytes(),
              recording.log.encoded_size_bytes());
    EXPECT_TRUE(TraceStore::Verify(path.get()).ok());
  }
}

// Filtered files advertise themselves through the header version, so a
// reader that only understands version 1 diagnoses them cleanly.
TEST(ChunkFilterTest, FilteredFilesStampHeaderVersionTwo) {
  const RecordedExecution recording = MakeSyntheticRecording(100);
  for (TraceFilter filter : {TraceFilter::kNone, TraceFilter::kVarintDelta}) {
    TraceWriteOptions options;
    options.chunk_filter = filter;
    const std::vector<uint8_t> image = TraceWriter(options).Serialize(recording);
    Decoder decoder(image.data(), 8);
    ASSERT_TRUE(decoder.GetFixed32().ok());
    auto version = decoder.GetFixed32();
    ASSERT_TRUE(version.ok());
    EXPECT_EQ(*version, filter == TraceFilter::kNone
                            ? kTraceFormatVersion
                            : kTraceFormatVersionFiltered);
  }
}

// A crafted type byte must fail at Event::DecodeFrom (the row-path decode
// chokepoint), never reach EventLog's per-type counter array.
TEST(ChunkFilterTest, CraftedEventTypeFailsCleanly) {
  Encoder encoder;
  encoder.PutVarint64(0);    // seq
  encoder.PutVarint64(0);    // time
  encoder.PutVarint64(0);    // fiber
  encoder.PutVarint64(0);    // node
  encoder.PutFixed8(200);    // type far past kNodeCrash
  encoder.PutVarint64(0);    // obj
  encoder.PutVarint64(0);    // value
  encoder.PutVarint64(0);    // aux
  encoder.PutVarint64(0);    // region
  encoder.PutVarint64(0);    // bytes
  Decoder decoder(encoder.buffer());
  auto decoded = Event::DecodeFrom(&decoder);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// A self-consistent but crafted columnar count must fail with a Status in
// the guard, not abort inside the up-front event allocation.
TEST(ChunkFilterTest, CraftedColumnarCountFailsCleanly) {
  Encoder encoder;
  encoder.PutVarint64(0);    // first_event
  encoder.PutVarint64(500);  // count far beyond what the payload can hold
  for (int i = 0; i < 100; ++i) {
    encoder.PutFixed8(0);
  }
  auto decoded = DecodeEventChunkPayload(encoder.buffer(),
                                         TraceFilter::kVarintDelta,
                                         /*expected_first=*/0,
                                         /*expected_count=*/500);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ChunkFilterTest, CorruptDeltaChunksFailCleanly) {
  const RecordedExecution recording = MakeSyntheticRecording(1000);
  TraceWriteOptions options;
  options.events_per_chunk = 100;
  options.chunk_filter = TraceFilter::kVarintDelta;
  const std::vector<uint8_t> image = TraceWriter(options).Serialize(recording);

  ScopedTracePath path("deltacorrupt");
  std::vector<uint8_t> bad = image;
  bad[bad.size() / 2] ^= 0x10;
  std::FILE* f = std::fopen(path.get().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bad.data(), 1, bad.size(), f);
  std::fclose(f);
  EXPECT_FALSE(TraceStore::Load(path.get()).ok());
  EXPECT_FALSE(TraceStore::Verify(path.get()).ok());
}

// All fields of two decoded events must agree, not just the semantic hash
// (which excludes seq/time by design).
void ExpectEventsIdentical(const std::vector<Event>& a,
                           const std::vector<Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq) << "event " << i;
    EXPECT_EQ(a[i].time, b[i].time) << "event " << i;
    EXPECT_EQ(a[i].fiber, b[i].fiber) << "event " << i;
    EXPECT_EQ(a[i].node, b[i].node) << "event " << i;
    EXPECT_EQ(a[i].type, b[i].type) << "event " << i;
    EXPECT_EQ(a[i].obj, b[i].obj) << "event " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "event " << i;
    EXPECT_EQ(a[i].aux, b[i].aux) << "event " << i;
    EXPECT_EQ(a[i].region, b[i].region) << "event " << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << "event " << i;
  }
}

// The batched columnar decoder is only a speedup if it is observationally
// equal to the scalar reference: identical events from good payloads.
TEST(ChunkFilterTest, ScalarAndBatchedDecodeBitIdentical) {
  const RecordedExecution recording = MakeSyntheticRecording(1500);
  const std::vector<Event>& events = recording.log.events();
  for (const TraceFilter filter :
       {TraceFilter::kNone, TraceFilter::kVarintDelta}) {
    const std::vector<uint8_t> payload = EncodeEventChunkPayload(
        events.data(), events.size(), /*first_event=*/0, filter);
    auto scalar = DecodeEventChunkPayloadWithPath(
        payload, filter, 0, events.size(), ColumnarDecodePath::kScalar);
    auto batched = DecodeEventChunkPayloadWithPath(
        payload, filter, 0, events.size(), ColumnarDecodePath::kBatched);
    ASSERT_TRUE(scalar.ok()) << scalar.status();
    ASSERT_TRUE(batched.ok()) << batched.status();
    ExpectEventsIdentical(*scalar, *batched);
    ExpectEventsIdentical(*batched, events);
  }
}

// The count clamp must fire before the up-front vector allocation for
// absurd counts too — 2^60 would otherwise be a ~74 EiB resize — on both
// decode paths.
TEST(ChunkFilterTest, CraftedHugeColumnarCountFailsOnBothPaths) {
  Encoder encoder;
  encoder.PutVarint64(0);           // first_event
  encoder.PutVarint64(1ull << 60);  // count
  for (int i = 0; i < 64; ++i) {
    encoder.PutFixed8(0);
  }
  for (const ColumnarDecodePath path :
       {ColumnarDecodePath::kScalar, ColumnarDecodePath::kBatched}) {
    auto decoded = DecodeEventChunkPayloadWithPath(
        encoder.buffer(), TraceFilter::kVarintDelta,
        /*expected_first=*/0, /*expected_count=*/1ull << 60, path);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

// Deterministic corruption sweep over a columnar payload: truncate at
// every stride boundary and flip a byte at every stride. Each mutant must
// decode to a Status — never crash, never read out of bounds (ASan/UBSan
// jobs run this) — and the two decode paths must agree: same ok-ness,
// and identical events whenever a mutant still parses (a value-column
// flip is caught by the chunk CRC one layer up, not here).
TEST(ChunkFilterTest, CorruptionSweepAgreesAcrossDecodePaths) {
  const RecordedExecution recording = MakeSyntheticRecording(600, /*seed=*/7);
  const std::vector<Event>& events = recording.log.events();
  const std::vector<uint8_t> payload = EncodeEventChunkPayload(
      events.data(), events.size(), /*first_event=*/0,
      TraceFilter::kVarintDelta);

  const auto decode_both = [&](const std::vector<uint8_t>& bytes,
                               const char* what, size_t at) {
    auto scalar = DecodeEventChunkPayloadWithPath(
        bytes, TraceFilter::kVarintDelta, 0, events.size(),
        ColumnarDecodePath::kScalar);
    auto batched = DecodeEventChunkPayloadWithPath(
        bytes, TraceFilter::kVarintDelta, 0, events.size(),
        ColumnarDecodePath::kBatched);
    ASSERT_EQ(scalar.ok(), batched.ok()) << what << " at " << at;
    if (scalar.ok()) {
      ExpectEventsIdentical(*scalar, *batched);
    }
  };

  for (size_t keep = 0; keep < payload.size();
       keep += payload.size() / 97 + 1) {
    std::vector<uint8_t> truncated(payload.begin(), payload.begin() + keep);
    decode_both(truncated, "truncate", keep);
  }
  for (size_t pos = 0; pos < payload.size(); pos += payload.size() / 211 + 1) {
    std::vector<uint8_t> flipped = payload;
    flipped[pos] ^= 0x20;
    decode_both(flipped, "flip", pos);
  }
}

TEST(TraceWriterTest, WriteFileIsAtomic) {
  const RecordedExecution recording = MakeSyntheticRecording(200);
  ScopedTracePath path("atomicfile");
  ASSERT_TRUE(TraceWriter().WriteFile(path.get(), recording).ok());
  EXPECT_TRUE(TraceStore::Verify(path.get()).ok());

  // An unwritable destination directory fails with a Status and leaves
  // nothing behind at the target path.
  const std::string bad_path = "no_such_dir_for_traces/x.ddrt";
  EXPECT_FALSE(TraceWriter().WriteFile(bad_path, recording).ok());
  std::ifstream target(bad_path, std::ios::binary);
  EXPECT_FALSE(target.good());
}

TEST(TraceWriterTest, AbandonedSinkRemovesItsTempFile) {
  ScopedTracePath path("abandoned");
  std::string tmp_path;
  {
    AtomicFileSink sink(path.get());
    const uint8_t byte = 0x42;
    ASSERT_TRUE(sink.Append(&byte, 1).ok());
    tmp_path = sink.tmp_path();
    std::ifstream tmp(tmp_path, std::ios::binary);
    EXPECT_TRUE(tmp.good());
    // No Close(): destruction must discard the temp and never publish.
  }
  std::ifstream tmp(tmp_path, std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::ifstream target(path.get(), std::ios::binary);
  EXPECT_FALSE(target.good());
}

// Streaming a recorder through the harness bounds recorder memory (the
// in-memory log stays empty) and produces a trace whose decoded contents
// equal the buffered SaveRecording path.
TEST(StreamingWriterTest, HarnessRecordStreamingMatchesBufferedSave) {
  BugScenario scenario = MakeMsgDropScenario();
  ExperimentHarness harness(scenario);
  ASSERT_TRUE(harness.Prepare().ok());

  const RecordedExecution buffered = harness.Record(DeterminismModel::kPerfect);
  ScopedTracePath buffered_path("streamharness_buf");
  ASSERT_TRUE(harness.SaveRecording(buffered, buffered_path.get()).ok());

  ScopedTracePath streamed_path("streamharness_stream");
  {
    TraceWriteOptions options;
    options.scenario = scenario.name;
    AtomicFileSink sink(streamed_path.get());
    StreamingTraceWriter writer(&sink, options);
    ASSERT_TRUE(writer.Begin().ok());
    auto info = harness.RecordStreaming(DeterminismModel::kPerfect, &writer);
    ASSERT_TRUE(info.ok()) << info.status();
    ASSERT_TRUE(writer.Finish(*info).ok());
    EXPECT_EQ(writer.events_written(), buffered.log.size());
  }

  auto from_buffered = TraceReader::Open(buffered_path.get());
  auto from_streamed = TraceReader::Open(streamed_path.get());
  ASSERT_TRUE(from_buffered.ok());
  ASSERT_TRUE(from_streamed.ok()) << from_streamed.status();
  EXPECT_TRUE(from_streamed->Verify().ok());

  // Identical metadata (bar the real-time wall stamp) and identical logs.
  EXPECT_EQ(from_streamed->metadata().model, from_buffered->metadata().model);
  EXPECT_EQ(from_streamed->metadata().scenario,
            from_buffered->metadata().scenario);
  EXPECT_EQ(from_streamed->metadata().event_count,
            from_buffered->metadata().event_count);
  EXPECT_EQ(from_streamed->metadata().recorded_events,
            from_buffered->metadata().recorded_events);
  EXPECT_EQ(from_streamed->metadata().intercepted_events,
            from_buffered->metadata().intercepted_events);
  auto streamed_log = from_streamed->ReadAllEvents();
  ASSERT_TRUE(streamed_log.ok());
  ASSERT_EQ(streamed_log->size(), buffered.log.size());
  for (size_t i = 0; i < buffered.log.size(); ++i) {
    EXPECT_EQ(streamed_log->events()[i].SemanticHash(),
              buffered.log.events()[i].SemanticHash());
  }
}

// ------------------------------------------------- Harness + acceptance

// Saved-and-reloaded recording replays to the same failure and output
// fingerprints as the in-memory original, for every determinism model's
// direct replay path + the inference paths.
TEST(TraceRoundtripReplayTest, ReloadedRecordingReplaysIdentically) {
  BugScenario scenario = MakeSumScenario();
  ExperimentHarness harness(scenario);
  ASSERT_TRUE(harness.Prepare().ok());

  for (DeterminismModel model :
       {DeterminismModel::kPerfect, DeterminismModel::kValue,
        DeterminismModel::kFailure}) {
    const RecordedExecution recording = harness.Record(model);
    ScopedTracePath path(std::string("replay_") +
                         std::string(DeterminismModelName(model)));
    ASSERT_TRUE(harness.SaveRecording(recording, path.get()).ok());
    auto loaded = ExperimentHarness::LoadRecording(path.get());
    ASSERT_TRUE(loaded.ok()) << loaded.status();

    ReplayTarget target;
    target.make_program = scenario.make_program;
    target.env_options = scenario.env_options;
    target.candidate_fault_plans = scenario.candidate_fault_plans;
    target.input_domains = scenario.input_domains;
    target.symbolic_model = scenario.symbolic_model;

    const ReplayMode mode = ReplayModeFor(model);
    ReplayResult original = Replayer(target).Replay(recording, mode);
    ReplayResult reloaded = Replayer(target).Replay(*loaded, mode);

    EXPECT_EQ(reloaded.failure_reproduced, original.failure_reproduced)
        << DeterminismModelName(model);
    EXPECT_EQ(reloaded.outcome.output_fingerprint,
              original.outcome.output_fingerprint)
        << DeterminismModelName(model);
    EXPECT_EQ(reloaded.outcome.trace_fingerprint,
              original.outcome.trace_fingerprint)
        << DeterminismModelName(model);
    const FailureInfo* original_failure = original.outcome.primary_failure();
    const FailureInfo* reloaded_failure = reloaded.outcome.primary_failure();
    ASSERT_EQ(original_failure == nullptr, reloaded_failure == nullptr);
    if (original_failure != nullptr) {
      EXPECT_EQ(reloaded_failure->Fingerprint(), original_failure->Fingerprint());
    }
    EXPECT_EQ(reloaded.divergences, original.divergences);
  }
}

// The harness-level one-call disk round trip scores like the in-memory path.
TEST(TraceRoundtripReplayTest, RunModelFromFileMatchesRunModel) {
  ExperimentHarness harness(MakeSumScenario());
  ASSERT_TRUE(harness.Prepare().ok());

  const ExperimentRow in_memory = harness.RunModel(DeterminismModel::kPerfect);
  ScopedTracePath path("runmodel");
  auto from_file =
      harness.RunModelFromFile(DeterminismModel::kPerfect, path.get());
  ASSERT_TRUE(from_file.ok()) << from_file.status();

  EXPECT_EQ(from_file->failure_reproduced, in_memory.failure_reproduced);
  EXPECT_EQ(from_file->divergences, in_memory.divergences);
  EXPECT_EQ(from_file->log_bytes, in_memory.log_bytes);
  EXPECT_EQ(from_file->recorded_events, in_memory.recorded_events);
  EXPECT_DOUBLE_EQ(from_file->fidelity, in_memory.fidelity);
  EXPECT_EQ(from_file->diagnosed_cause, in_memory.diagnosed_cause);
}

// The I/O-layer partial-replay entry point: replaying straight off a
// cached TraceReader matches the in-memory PartialReplay result, and a
// second window against the same reader decodes nothing new.
TEST(PartialReplayTest, PartialReplayFromTraceMatchesInMemoryAndCaches) {
  BugScenario scenario = MakeMsgDropScenario();
  ExperimentHarness harness(scenario);
  ASSERT_TRUE(harness.Prepare().ok());
  const RecordedExecution recording = harness.Record(DeterminismModel::kPerfect);
  ASSERT_GT(recording.log.size(), 64u);

  ScopedTracePath path("fromtrace");
  TraceWriteOptions options;
  options.events_per_chunk = 64;
  options.checkpoint_interval = recording.log.size() / 3;
  ASSERT_TRUE(harness.SaveRecording(recording, path.get(), options).ok());

  TraceReaderOptions reader_options;
  reader_options.cache = std::make_shared<ChunkCache>(16 << 20);
  auto reader = TraceReader::Open(path.get(), reader_options);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_GE(reader->checkpoints().checkpoints.size(), 2u);
  const uint64_t target =
      reader->checkpoints().checkpoints.back().event_index;

  ReplayTarget replay_target;
  replay_target.make_program = scenario.make_program;
  replay_target.env_options = scenario.env_options;
  Replayer replayer(replay_target);

  auto loaded = reader->ReadRecordedExecution();
  ASSERT_TRUE(loaded.ok());
  const ReplayResult in_memory =
      replayer.PartialReplay(*loaded, reader->checkpoints(), target);

  const uint64_t warm_bytes = reader->bytes_read();
  auto from_trace = replayer.PartialReplayFromTrace(*reader, target);
  ASSERT_TRUE(from_trace.ok()) << from_trace.status();
  // The reader had already decoded every chunk: this window was free.
  EXPECT_EQ(reader->bytes_read(), warm_bytes);

  EXPECT_TRUE(from_trace->partial);
  EXPECT_EQ(from_trace->started_from_event, in_memory.started_from_event);
  EXPECT_TRUE(from_trace->fast_forward_verified);
  EXPECT_EQ(from_trace->outcome.trace_fingerprint,
            in_memory.outcome.trace_fingerprint);
  EXPECT_EQ(from_trace->outcome.output_fingerprint,
            in_memory.outcome.output_fingerprint);
  EXPECT_EQ(from_trace->trace.size(), in_memory.trace.size());
}

// Partial replay from a mid-trace checkpoint reaches the same outcome as
// full replay, verifies the fast-forward against the checkpoint, and
// collects exactly the suffix of the full trace.
TEST(PartialReplayTest, CheckpointedReplayMatchesFullReplay) {
  BugScenario scenario = MakeMsgDropScenario();
  ExperimentHarness harness(scenario);
  ASSERT_TRUE(harness.Prepare().ok());

  const RecordedExecution recording = harness.Record(DeterminismModel::kPerfect);
  ASSERT_GT(recording.log.size(), 64u) << "scenario too small to checkpoint";

  // Persist with a checkpoint interval that guarantees mid-trace points.
  ScopedTracePath path("checkpointed");
  TraceWriteOptions options;
  options.events_per_chunk = 64;
  options.checkpoint_interval = recording.log.size() / 4;
  ASSERT_TRUE(harness.SaveRecording(recording, path.get(), options).ok());

  auto reader = TraceReader::Open(path.get());
  ASSERT_TRUE(reader.ok());
  const CheckpointIndex& index = reader->checkpoints();
  ASSERT_GE(index.checkpoints.size(), 2u);
  ASSERT_TRUE(index.full_stream);
  auto recording_or = reader->ReadRecordedExecution();
  ASSERT_TRUE(recording_or.ok());

  ReplayTarget target;
  target.make_program = scenario.make_program;
  target.env_options = scenario.env_options;

  Replayer full_replayer(target);
  const ReplayResult full =
      full_replayer.Replay(*recording_or, ReplayMode::kPerfect);

  // Partial replay from every checkpoint: identical outcome, suffix trace.
  for (const ReplayCheckpoint& cp : index.checkpoints) {
    Replayer partial_replayer(target);
    const ReplayResult partial = partial_replayer.PartialReplay(
        *recording_or, index, cp.event_index, ReplayMode::kPerfect);

    EXPECT_TRUE(partial.partial);
    EXPECT_EQ(partial.started_from_event, cp.event_index);
    EXPECT_TRUE(partial.fast_forward_verified)
        << "checkpoint @" << cp.event_index
        << ": fast-forward did not land on the recorded state";

    // Same outcome as full replay.
    EXPECT_EQ(partial.outcome.trace_fingerprint, full.outcome.trace_fingerprint);
    EXPECT_EQ(partial.outcome.output_fingerprint,
              full.outcome.output_fingerprint);
    EXPECT_EQ(partial.failure_reproduced, full.failure_reproduced);
    EXPECT_EQ(partial.divergences, full.divergences);

    // The collected trace is exactly the suffix of the full trace.
    ASSERT_EQ(partial.trace.size() + cp.resume_seq, full.trace.size());
    for (size_t i = 0; i < partial.trace.size(); ++i) {
      ASSERT_EQ(partial.trace[i].SemanticHash(),
                full.trace[cp.resume_seq + i].SemanticHash())
          << "suffix event " << i;
    }
  }

  // A target before the first checkpoint falls back to full replay.
  Replayer fallback_replayer(target);
  const ReplayResult fallback =
      fallback_replayer.PartialReplay(*recording_or, index, 1);
  EXPECT_FALSE(fallback.partial);
  EXPECT_EQ(fallback.trace.size(), full.trace.size());
}

}  // namespace
}  // namespace ddr
