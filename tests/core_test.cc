// Tests for src/core: metric formulas, the determinism-model registry, RCSE
// dial-up/dial-down behavior, and the experiment harness end to end on a
// small scenario.

#include <gtest/gtest.h>

#include "src/core/determinism_model.h"
#include "src/core/experiment.h"
#include "src/core/metrics.h"
#include "src/core/rcse.h"
#include "src/sim/shared_var.h"

namespace ddr {
namespace {

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, FidelityValuePerPaperDefinition) {
  FidelityResult fidelity;
  fidelity.num_possible_causes = 3;
  fidelity.failure_reproduced = false;
  EXPECT_DOUBLE_EQ(fidelity.value(), 0.0);  // failure lost -> 0
  fidelity.failure_reproduced = true;
  EXPECT_DOUBLE_EQ(fidelity.value(), 1.0 / 3.0);  // wrong cause -> 1/n
  fidelity.actual_cause_present = true;
  EXPECT_DOUBLE_EQ(fidelity.value(), 1.0);  // same failure + cause -> 1
}

TEST(MetricsTest, EfficiencyRatioAndFloor) {
  EXPECT_DOUBLE_EQ(DebuggingEfficiency(2.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(DebuggingEfficiency(4.0, 2.0), 2.0);  // DE > 1 possible
  EXPECT_GT(DebuggingEfficiency(1.0, 0.0), 0.0);         // floor, no div-by-zero
}

TEST(MetricsTest, UtilityIsProduct) {
  EXPECT_DOUBLE_EQ(DebuggingUtility(0.5, 0.8), 0.4);
  EXPECT_DOUBLE_EQ(DebuggingUtility(0.0, 100.0), 0.0);
}

TEST(MetricsTest, EvaluateFidelityUsesCatalog) {
  RootCauseCatalog catalog(
      {RootCauseSpec{"right", "", [](const ExecutionView& view) {
                       return !view.events.empty();
                     }},
       RootCauseSpec{"wrong", "", [](const ExecutionView&) { return true; }}},
      "right");
  ReplayResult replay;
  replay.failure_reproduced = true;
  replay.trace.push_back(Event{});
  FidelityResult fidelity = EvaluateFidelity(catalog, replay);
  EXPECT_TRUE(fidelity.actual_cause_present);
  EXPECT_EQ(fidelity.diagnosed_cause.value_or(""), "right");
  EXPECT_DOUBLE_EQ(fidelity.value(), 1.0);

  replay.trace.clear();
  fidelity = EvaluateFidelity(catalog, replay);
  EXPECT_FALSE(fidelity.actual_cause_present);
  EXPECT_EQ(fidelity.diagnosed_cause.value_or(""), "wrong");
  EXPECT_DOUBLE_EQ(fidelity.value(), 0.5);
}

// -------------------------------------------------------------- model enum

TEST(DeterminismModelTest, NamesAndOrder) {
  const auto& models = AllDeterminismModels();
  ASSERT_EQ(models.size(), 6u);
  EXPECT_EQ(models.front(), DeterminismModel::kPerfect);
  EXPECT_EQ(models.back(), DeterminismModel::kDebugRcse);
  for (DeterminismModel model : models) {
    EXPECT_FALSE(DeterminismModelName(model).empty());
    EXPECT_FALSE(DeterminismModelSystem(model).empty());
  }
}

TEST(DeterminismModelTest, ReplayModeMapping) {
  EXPECT_EQ(ReplayModeFor(DeterminismModel::kValue), ReplayMode::kValue);
  EXPECT_EQ(ReplayModeFor(DeterminismModel::kFailure), ReplayMode::kFailure);
  EXPECT_EQ(ReplayModeFor(DeterminismModel::kDebugRcse), ReplayMode::kRcse);
  EXPECT_EQ(ReplayModeFor(DeterminismModel::kOutputOnly), ReplayMode::kOutputOnly);
}

// -------------------------------------------------------------------- RCSE

Event TimedEvent(EventType type, SimTime time, RegionId region = kDefaultRegion,
                 uint32_t bytes = 0) {
  Event event;
  event.type = type;
  event.time = time;
  event.region = region;
  event.bytes = bytes;
  event.fiber = 0;
  return event;
}

TEST(RcseRecorderTest, CodeBasedRecordsControlRegions) {
  RcseOptions options;
  options.mode = RcseMode::kCodeBased;
  options.control_regions = {2};
  RcseRecorder recorder(options, nullptr);
  Environment env(Environment::Options{});
  recorder.AttachEnvironment(&env);

  recorder.OnEvent(TimedEvent(EventType::kSharedRead, 10, /*region=*/1));
  EXPECT_EQ(recorder.recorded_events(), 0u);  // data plane, relaxed
  recorder.OnEvent(TimedEvent(EventType::kSharedRead, 20, /*region=*/2));
  EXPECT_EQ(recorder.recorded_events(), 1u);  // control plane
}

TEST(RcseRecorderTest, TriggerDialsUpAndQuietPeriodDialsDown) {
  RcseOptions options;
  options.mode = RcseMode::kCombined;
  options.control_regions = {};
  options.dial_down_after = 1000;  // 1us quiet period
  auto triggers = std::make_unique<TriggerSet>();
  triggers->Add(std::make_unique<AnnotationTrigger>(99));
  RcseRecorder recorder(options, std::move(triggers));
  Environment env(Environment::Options{});
  recorder.AttachEnvironment(&env);

  recorder.OnEvent(TimedEvent(EventType::kSharedRead, 10));
  EXPECT_EQ(recorder.level(), FidelityLevel::kRelaxed);
  EXPECT_EQ(recorder.recorded_events(), 0u);

  Event fire = TimedEvent(EventType::kAnnotation, 20);
  fire.obj = 99;
  recorder.OnEvent(fire);
  EXPECT_EQ(recorder.level(), FidelityLevel::kFull);
  EXPECT_EQ(recorder.dial_ups(), 1u);

  recorder.OnEvent(TimedEvent(EventType::kSharedRead, 30));
  EXPECT_EQ(recorder.recorded_events(), 1u);  // full fidelity records memory

  // Quiet period passes: dial back down; relaxed mode stops recording the
  // data plane again.
  recorder.OnEvent(TimedEvent(EventType::kSharedRead, 5000));
  EXPECT_EQ(recorder.level(), FidelityLevel::kRelaxed);
  EXPECT_EQ(recorder.dial_downs(), 1u);
  recorder.OnEvent(TimedEvent(EventType::kSharedRead, 5100));
  EXPECT_EQ(recorder.recorded_events(), 1u);
}

TEST(RcseRecorderTest, DialDownDisabledStaysFull) {
  RcseOptions options;
  options.mode = RcseMode::kDataBased;
  options.dial_down_after = 0;
  auto triggers = std::make_unique<TriggerSet>();
  triggers->Add(std::make_unique<AnnotationTrigger>(7));
  RcseRecorder recorder(options, std::move(triggers));
  Environment env(Environment::Options{});
  recorder.AttachEnvironment(&env);

  Event fire = TimedEvent(EventType::kAnnotation, 1);
  fire.obj = 7;
  recorder.OnEvent(fire);
  recorder.OnEvent(TimedEvent(EventType::kSharedRead, 1000000000));
  EXPECT_EQ(recorder.level(), FidelityLevel::kFull);
  EXPECT_EQ(recorder.dial_downs(), 0u);
}

// --------------------------------------------------------------- harness

constexpr uint64_t kTagLost = FnvHash("core-test.lost");

BugScenario MakeCounterScenario() {
  class CounterProgram : public SimProgram {
   public:
    explicit CounterProgram(uint64_t) {}
    std::string name() const override { return "counter"; }
    void Configure(Environment& env) override {
      env.SetIoSpec([](const Outcome& outcome) -> std::optional<FailureInfo> {
        if (outcome.outputs.size() == 1 && outcome.outputs[0].value == 60) {
          return std::nullopt;
        }
        FailureInfo failure;
        failure.kind = FailureKind::kSpecViolation;
        failure.message = "bad total";
        return failure;
      });
    }
    void Main(Environment& env) override {
      SharedVar<uint64_t> counter(env, "counter", 0);
      std::vector<FiberId> fibers;
      for (int f = 0; f < 3; ++f) {
        fibers.push_back(env.Spawn("w" + std::to_string(f), [&] {
          for (int i = 0; i < 20; ++i) {
            counter.Store(counter.Load() + 1);
          }
        }));
      }
      for (FiberId fiber : fibers) {
        env.Join(fiber);
      }
      if (counter.Load() != 60) {
        env.Annotate(kTagLost, 60 - counter.Load());
      }
      env.EmitOutput(counter.Peek());
    }
  };

  BugScenario scenario;
  scenario.name = "counter";
  scenario.make_program = [](uint64_t world_seed) {
    return std::unique_ptr<SimProgram>(new CounterProgram(world_seed));
  };
  scenario.env_options.scheduling.preempt_probability = 0.05;
  scenario.catalog = RootCauseCatalog(
      {RootCauseSpec{"lost-update", "racy counter increment",
                     [](const ExecutionView& view) {
                       for (const Event& event : view.events) {
                         if (event.type == EventType::kAnnotation &&
                             event.obj == kTagLost) {
                           return true;
                         }
                       }
                       return false;
                     }}},
      "lost-update");
  scenario.rcse_mode = RcseMode::kCombined;
  return scenario;
}

TEST(ExperimentHarnessTest, PrepareFindsFailingSchedule) {
  ExperimentHarness harness(MakeCounterScenario());
  ASSERT_TRUE(harness.Prepare().ok());
  EXPECT_TRUE(harness.production_outcome().Failed());
  EXPECT_GT(harness.production_sched_seed(), BugScenario::kProductionSeedBase);
  // Idempotent.
  EXPECT_TRUE(harness.Prepare().ok());
}

TEST(ExperimentHarnessTest, PrepareFailsForHealthyProgram) {
  BugScenario scenario = MakeCounterScenario();
  scenario.make_program = [](uint64_t) {
    class Healthy : public SimProgram {
     public:
      std::string name() const override { return "healthy"; }
      void Main(Environment& env) override { env.EmitOutput(1); }
    };
    return std::unique_ptr<SimProgram>(new Healthy());
  };
  scenario.max_seed_search = 10;
  ExperimentHarness harness(scenario);
  EXPECT_FALSE(harness.Prepare().ok());
}

TEST(ExperimentHarnessTest, ValueAndRcseReachFullFidelity) {
  ExperimentHarness harness(MakeCounterScenario());
  ASSERT_TRUE(harness.Prepare().ok());

  ExperimentRow value = harness.RunModel(DeterminismModel::kValue);
  EXPECT_TRUE(value.failure_reproduced);
  EXPECT_DOUBLE_EQ(value.fidelity, 1.0);
  EXPECT_EQ(value.divergences, 0u);
  EXPECT_GT(value.overhead_multiplier, 1.0);

  ExperimentRow rcse = harness.RunModel(DeterminismModel::kDebugRcse);
  EXPECT_TRUE(rcse.failure_reproduced);
  EXPECT_DOUBLE_EQ(rcse.fidelity, 1.0);
  EXPECT_EQ(rcse.diagnosed_cause.value_or(""), "lost-update");
}

TEST(ExperimentHarnessTest, PerfectModelIsMostExpensive) {
  ExperimentHarness harness(MakeCounterScenario());
  ASSERT_TRUE(harness.Prepare().ok());
  ExperimentRow perfect = harness.RunModel(DeterminismModel::kPerfect);
  ExperimentRow failure = harness.RunModel(DeterminismModel::kFailure);
  EXPECT_GT(perfect.overhead_multiplier, failure.overhead_multiplier);
  EXPECT_DOUBLE_EQ(failure.overhead_multiplier, 1.0);
  EXPECT_GT(perfect.log_bytes, failure.log_bytes);
}

}  // namespace
}  // namespace ddr
