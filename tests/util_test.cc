// Unit tests for src/util: status/result, rng, hashing, codec, vector
// clocks, histograms, strings, table printing.

#include <gtest/gtest.h>

#include <set>

#include "src/util/codec.h"
#include "src/util/crc32.h"
#include "src/util/hash.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/string_util.h"
#include "src/util/table_printer.h"
#include "src/util/vector_clock.h"

namespace ddr {
namespace {

// ------------------------------------------------------------------ Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllErrorConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(InvalidArgumentError("").code());
  codes.insert(NotFoundError("").code());
  codes.insert(AlreadyExistsError("").code());
  codes.insert(FailedPreconditionError("").code());
  codes.insert(OutOfRangeError("").code());
  codes.insert(UnimplementedError("").code());
  codes.insert(InternalError("").code());
  codes.insert(UnavailableError("").code());
  codes.insert(DeadlineExceededError("").code());
  codes.insert(AbortedError("").code());
  codes.insert(ResourceExhaustedError("").code());
  EXPECT_EQ(codes.size(), 11u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = InvalidArgumentError("bad");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(7), 7);
}

Result<int> DoubleIfPositive(Result<int> input) {
  ASSIGN_OR_RETURN(int value, std::move(input));
  if (value <= 0) {
    return OutOfRangeError("non-positive");
  }
  return value * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubleIfPositive(21).value(), 42);
  EXPECT_FALSE(DoubleIfPositive(-1).ok());
  EXPECT_FALSE(DoubleIfPositive(InternalError("x")).ok());
  EXPECT_EQ(DoubleIfPositive(InternalError("x")).status().code(),
            StatusCode::kInternal);
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextInRangeIsInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng a(21);
  Rng fork = a.Fork();
  EXPECT_NE(a.Next(), fork.Next());
}

TEST(RngTest, ExponentialHasApproximateMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

// -------------------------------------------------------------------- Hash

TEST(HashTest, FnvMatchesKnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(FnvHash(""), kFnvOffsetBasis);
  EXPECT_NE(FnvHash("a"), FnvHash("b"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  const uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  const uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, FingerprintAccumulates) {
  Fingerprint a;
  a.Mix(1);
  a.Mix(2);
  Fingerprint b;
  b.Mix(1);
  EXPECT_NE(a.value(), b.value());
  b.Mix(2);
  EXPECT_EQ(a.value(), b.value());
}

// ------------------------------------------------------------------- Codec

TEST(CodecTest, VarintRoundtripSmall) {
  Encoder encoder;
  for (uint64_t v = 0; v < 300; ++v) {
    encoder.PutVarint64(v);
  }
  Decoder decoder(encoder.buffer());
  for (uint64_t v = 0; v < 300; ++v) {
    auto result = decoder.GetVarint64();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, v);
  }
  EXPECT_TRUE(decoder.Done());
}

class CodecRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecRoundtripTest, VarintRoundtrip) {
  Encoder encoder;
  encoder.PutVarint64(GetParam());
  Decoder decoder(encoder.buffer());
  EXPECT_EQ(decoder.GetVarint64().value(), GetParam());
}

TEST_P(CodecRoundtripTest, ZigzagRoundtripBothSigns) {
  const int64_t value = static_cast<int64_t>(GetParam());
  // Negate in unsigned space: -INT64_MIN is UB in int64_t, but the
  // two's-complement wrap (INT64_MIN negates to itself) is exactly the
  // boundary zigzag must round-trip.
  const int64_t negated = static_cast<int64_t>(-GetParam());
  Encoder encoder;
  encoder.PutZigzag64(value);
  encoder.PutZigzag64(negated);
  Decoder decoder(encoder.buffer());
  EXPECT_EQ(decoder.GetZigzag64().value(), value);
  EXPECT_EQ(decoder.GetZigzag64().value(), negated);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, CodecRoundtripTest,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull,
                                           16384ull, (1ull << 32) - 1, 1ull << 32,
                                           (1ull << 63), ~0ull));

TEST(CodecTest, FixedAndDoubleRoundtrip) {
  Encoder encoder;
  encoder.PutFixed8(0xAB);
  encoder.PutFixed32(0xDEADBEEF);
  encoder.PutFixed64(0x0123456789ABCDEFull);
  encoder.PutDouble(3.14159);
  encoder.PutBool(true);
  encoder.PutString("hello\0world");
  Decoder decoder(encoder.buffer());
  EXPECT_EQ(decoder.GetFixed8().value(), 0xAB);
  EXPECT_EQ(decoder.GetFixed32().value(), 0xDEADBEEFu);
  EXPECT_EQ(decoder.GetFixed64().value(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(decoder.GetDouble().value(), 3.14159);
  EXPECT_TRUE(decoder.GetBool().value());
  EXPECT_EQ(decoder.GetString().value(), "hello");  // embedded NUL ends literal
}

TEST(CodecTest, TruncatedInputFails) {
  Encoder encoder;
  encoder.PutFixed64(42);
  std::vector<uint8_t> bytes = encoder.TakeBuffer();
  bytes.pop_back();
  Decoder decoder(bytes);
  EXPECT_FALSE(decoder.GetFixed64().ok());
}

TEST(CodecTest, StringRoundtripWithBinary) {
  std::string binary("\x00\x01\xff\x7f", 4);
  Encoder encoder;
  encoder.PutString(binary);
  Decoder decoder(encoder.buffer());
  EXPECT_EQ(decoder.GetString().value(), binary);
}

TEST(CodecTest, TruncatedVarintFails) {
  // A continuation bit with nothing after it.
  std::vector<uint8_t> bytes{0x80};
  Decoder decoder(bytes);
  auto result = decoder.GetVarint64();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(CodecTest, VarintOverflowFails) {
  // Ten continuation bytes push past 64 bits: the tenth byte may only
  // contribute one bit.
  std::vector<uint8_t> bytes(10, 0xFF);
  bytes.push_back(0x01);
  Decoder decoder(bytes);
  auto result = decoder.GetVarint64();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecTest, MaxVarintStillDecodes) {
  Encoder encoder;
  encoder.PutVarint64(~0ull);
  Decoder decoder(encoder.buffer());
  EXPECT_EQ(decoder.GetVarint64().value(), ~0ull);
}

TEST(CodecTest, StringLengthBeyondBufferFails) {
  // Claims a 1 GiB string with 3 bytes of payload behind it.
  Encoder encoder;
  encoder.PutVarint64(1ull << 30);
  encoder.PutFixed8('a');
  encoder.PutFixed8('b');
  encoder.PutFixed8('c');
  Decoder decoder(encoder.buffer());
  auto result = decoder.GetString();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(CodecTest, StringLengthOverflowDoesNotWrap) {
  // A length so large that pos + size would wrap uint64: must fail, not
  // read out of bounds.
  Encoder encoder;
  encoder.PutVarint64(~0ull);
  Decoder decoder(encoder.buffer());
  EXPECT_FALSE(decoder.GetString().ok());
}

TEST(CodecTest, BoolByteOutOfRangeFails) {
  std::vector<uint8_t> bytes{2};
  Decoder decoder(bytes);
  auto result = decoder.GetBool();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecTest, EmptyBufferFailsEveryGetter) {
  std::vector<uint8_t> empty;
  EXPECT_FALSE(Decoder(empty).GetVarint64().ok());
  EXPECT_FALSE(Decoder(empty).GetZigzag64().ok());
  EXPECT_FALSE(Decoder(empty).GetFixed8().ok());
  EXPECT_FALSE(Decoder(empty).GetFixed32().ok());
  EXPECT_FALSE(Decoder(empty).GetFixed64().ok());
  EXPECT_FALSE(Decoder(empty).GetDouble().ok());
  EXPECT_FALSE(Decoder(empty).GetString().ok());
  EXPECT_FALSE(Decoder(empty).GetBool().ok());
}

// ----------------------------------------------------------- Codec spans

// The span primitives must be pure speedups: byte-identical encodings and
// value-identical decodes versus the per-value scalar calls, across the
// fast path (>= kMaxVarint64Bytes remaining) and the checked tail.
TEST(CodecSpanTest, VarintSpanEncodesByteIdenticallyAndRoundtrips) {
  std::vector<uint64_t> values;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    // Mix of widths: mostly single-byte, some mid, some full 64-bit.
    const int shape = static_cast<int>(rng.NextIndex(10));
    if (shape < 6) {
      values.push_back(rng.NextIndex(128));
    } else if (shape < 9) {
      values.push_back(rng.NextIndex(1ull << 32));
    } else {
      values.push_back(~0ull - rng.NextIndex(1u << 20));
    }
  }
  values.push_back(0);
  values.push_back(~0ull);

  Encoder scalar;
  for (const uint64_t v : values) {
    scalar.PutVarint64(v);
  }
  Encoder span;
  span.PutVarint64Span(values.size(), [&](size_t i) { return values[i]; });
  EXPECT_EQ(span.buffer(), scalar.buffer());

  std::vector<uint64_t> decoded(values.size(), 0);
  Decoder decoder(span.buffer());
  ASSERT_TRUE(decoder
                  .GetVarint64Span(values.size(),
                                   [&](size_t i, uint64_t v) { decoded[i] = v; })
                  .ok());
  EXPECT_TRUE(decoder.Done());
  EXPECT_EQ(decoded, values);
}

TEST(CodecSpanTest, ZigzagDeltaSpanMatchesScalarColumns) {
  // A non-monotone series exercises negative deltas and the wrap at 0.
  const std::vector<uint64_t> values = {0,   100, 90,  4096, 5,
                                        ~0ull, 1,   1,   1ull << 40};

  Encoder scalar;
  uint64_t prev = 0;
  for (const uint64_t v : values) {
    scalar.PutZigzag64(static_cast<int64_t>(v - prev));
    prev = v;
  }
  Encoder span;
  span.PutZigzagDelta64Span(values.size(), [&](size_t i) { return values[i]; });
  EXPECT_EQ(span.buffer(), scalar.buffer());

  std::vector<uint64_t> decoded(values.size(), 0);
  Decoder decoder(span.buffer());
  ASSERT_TRUE(decoder
                  .GetZigzagDelta64Span(
                      values.size(), [&](size_t i, uint64_t v) { decoded[i] = v; })
                  .ok());
  EXPECT_TRUE(decoder.Done());
  EXPECT_EQ(decoded, values);
}

TEST(CodecSpanTest, SpanTailFallbackDecodesNearBufferEnd) {
  // Every suffix of a multi-width encoding is eventually shorter than
  // kMaxVarint64Bytes, forcing the checked-tail loop; values must still
  // come back exactly.
  const std::vector<uint64_t> values = {1, 127, 128, 300, ~0ull, 5, 0, 99};
  Encoder encoder;
  for (const uint64_t v : values) {
    encoder.PutVarint64(v);
  }
  std::vector<uint64_t> decoded(values.size(), 0);
  Decoder decoder(encoder.buffer());
  ASSERT_TRUE(decoder
                  .GetVarint64Span(values.size(),
                                   [&](size_t i, uint64_t v) { decoded[i] = v; })
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(CodecSpanTest, SpanOverflowFailsOnBothPaths) {
  // Eleven bytes of continuation overflow a varint64. The unchecked fast
  // path must reject it exactly like scalar GetVarint64 — with a buffer
  // that ends right after the bad varint and with trailing slack — and
  // never read past the 10-byte worst case.
  std::vector<uint8_t> overflow(10, 0xFF);
  overflow.push_back(0x01);

  std::vector<uint8_t> padded = overflow;
  padded.resize(padded.size() + kMaxVarint64Bytes, 0);
  for (const std::vector<uint8_t>& bytes : {overflow, padded}) {
    Decoder decoder(bytes);
    const Status status = decoder.GetVarint64Span(1, [](size_t, uint64_t) {});
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("overflow"), std::string::npos);
  }
}

TEST(CodecSpanTest, SpanTruncationFailsOutOfRange) {
  // A continuation byte with nothing behind it: the checked tail must
  // report the same truncation error as scalar GetVarint64.
  std::vector<uint8_t> bytes{0x85, 0x80};
  Decoder decoder(bytes);
  const Status status = decoder.GetVarint64Span(1, [](size_t, uint64_t) {});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------------------------- Crc32

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical IEEE CRC-32 check value.
  const char kCheck[] = "123456789";
  EXPECT_EQ(Crc32(kCheck, 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char kData[] = "debug determinism sweet spot";
  const size_t size = sizeof(kData) - 1;
  uint32_t state = kCrc32Init;
  state = Crc32Update(state, kData, 10);
  state = Crc32Update(state, kData + 10, size - 10);
  EXPECT_EQ(Crc32Finish(state), Crc32(kData, size));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(128, 0x5A);
  const uint32_t before = Crc32(data.data(), data.size());
  data[64] ^= 0x01;
  EXPECT_NE(Crc32(data.data(), data.size()), before);
}

// The slicing-by-8 fast path must equal the bytewise reference for every
// length and starting alignment: short runs that never reach the 8-byte
// loop, runs whose head/tail straddle word boundaries, and long runs.
TEST(Crc32Test, SlicedMatchesBytewiseAcrossLengthsAndAlignments) {
  std::vector<uint8_t> buffer(4096 + 16);
  Rng rng(0xC3C32);
  for (uint8_t& byte : buffer) {
    byte = static_cast<uint8_t>(rng.NextIndex(256));
  }
  const std::vector<size_t> lengths = {0,  1,  2,  7,   8,   9,    15,  16,
                                       17, 31, 63, 127, 255, 1024, 4096};
  for (const size_t length : lengths) {
    for (size_t align = 0; align < 8; ++align) {
      const uint8_t* start = buffer.data() + align;
      EXPECT_EQ(Crc32Update(kCrc32Init, start, length),
                Crc32UpdateBytewise(kCrc32Init, start, length))
          << "length " << length << " align " << align;
    }
  }
  // Split points must not matter either: incremental sliced updates with
  // awkward boundaries equal one bytewise pass.
  uint32_t state = kCrc32Init;
  size_t pos = 0;
  for (const size_t piece : {1u, 7u, 8u, 13u, 64u, 1000u}) {
    state = Crc32Update(state, buffer.data() + pos, piece);
    pos += piece;
  }
  EXPECT_EQ(state, Crc32UpdateBytewise(kCrc32Init, buffer.data(), pos));
}

// ------------------------------------------------------------ VectorClock

TEST(VectorClockTest, TickAndGet) {
  VectorClock vc;
  EXPECT_EQ(vc.Get(3), 0u);
  EXPECT_EQ(vc.Tick(3), 1u);
  EXPECT_EQ(vc.Tick(3), 2u);
  EXPECT_EQ(vc.Get(3), 2u);
}

TEST(VectorClockTest, JoinIsLeastUpperBound) {
  VectorClock a;
  a.Set(0, 5);
  a.Set(1, 1);
  VectorClock b;
  b.Set(0, 2);
  b.Set(1, 7);
  a.Join(b);
  EXPECT_EQ(a.Get(0), 5u);
  EXPECT_EQ(a.Get(1), 7u);
  EXPECT_TRUE(b.HappensBeforeOrEqual(a));
}

TEST(VectorClockTest, PartialOrderProperties) {
  VectorClock a;
  a.Set(0, 1);
  VectorClock b;
  b.Set(0, 2);
  VectorClock c;
  c.Set(1, 1);
  EXPECT_TRUE(a.HappensBeforeOrEqual(b));
  EXPECT_FALSE(b.HappensBeforeOrEqual(a));
  EXPECT_TRUE(a.ConcurrentWith(c));
  EXPECT_FALSE(a.ConcurrentWith(a));
  EXPECT_TRUE(a.HappensBeforeOrEqual(a));  // reflexive
}

TEST(VectorClockTest, EqualityIgnoresTrailingZeros) {
  VectorClock a(2);
  VectorClock b(8);
  EXPECT_TRUE(a == b);
  b.Set(7, 1);
  EXPECT_FALSE(a == b);
}

TEST(EpochTest, PacksAndCompares) {
  Epoch epoch(5, 1234);
  EXPECT_EQ(epoch.tid(), 5u);
  EXPECT_EQ(epoch.clk(), 1234u);
  VectorClock vc;
  vc.Set(5, 1233);
  EXPECT_FALSE(epoch.LeqClock(vc));
  vc.Set(5, 1234);
  EXPECT_TRUE(epoch.LeqClock(vc));
  EXPECT_TRUE(Epoch().IsZero());
}

// --------------------------------------------------------------- Histogram

TEST(SummaryStatsTest, WelfordBasics) {
  SummaryStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 4);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
}

TEST(HistogramTest, BucketsPowersOfTwo) {
  Histogram histogram;
  histogram.Add(0);
  histogram.Add(1);
  histogram.Add(2);
  histogram.Add(3);
  histogram.Add(1024);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.CountInBucket(0), 1u);  // zero
  EXPECT_EQ(histogram.CountInBucket(1), 1u);  // 1
  EXPECT_EQ(histogram.CountInBucket(2), 2u);  // 2..3
  EXPECT_EQ(histogram.CountInBucket(11), 1u);  // 1024..2047
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram histogram;
  for (uint64_t i = 1; i <= 1000; ++i) {
    histogram.Add(i);
  }
  EXPECT_LE(histogram.Quantile(0.1), histogram.Quantile(0.5));
  EXPECT_LE(histogram.Quantile(0.5), histogram.Quantile(0.99));
}

// ----------------------------------------------------------------- Strings

TEST(StringUtilTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrPrintf("%.2f", 1.005), "1.00");  // printf rounding semantics
}

TEST(StringUtilTest, PadHelpers) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcdef", 3), "abc");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2, 3}, "+"), "1+2+3");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "long-header"});
  table.AddRow({"xxx", "1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| a   | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| xxx | 1           |"), std::string::npos);
}

}  // namespace
}  // namespace ddr
