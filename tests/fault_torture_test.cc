// Crash-torture harness for the write pipeline (src/util/fault_injection.h).
//
// The drill, for every write path (standalone trace write, corpus build,
// in-place journal append, compaction): run once under a `*:trace` plan
// to enumerate the N faultable operations along the path, then for each
// i in 1..N re-run from identical initial state under `*:crash@i` —
// power loss at exactly that operation — clear the plan, and assert the
// recovery invariants:
//
//   - every committed entry stays readable (VerifyAll clean);
//   - a partially written generation is invisible (the reader serves the
//     previous trailer, never a torn index);
//   - the next append over a torn tail heals it and publishes normally;
//   - the atomic build/compact paths leave either nothing or a complete
//     bundle at the target, and never temp-file litter.
//
// Plus the unit half: plan parsing, arm/disarm, targeted fsync-EIO on
// AtomicFileSink, EINTR storms, and the distinct-site floor (>= 20 sites
// across the storage paths; the transport sites are exercised in
// server_test.cc).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/trace/corpus.h"
#include "src/trace/trace_reader.h"
#include "src/trace/trace_writer.h"
#include "src/util/fault_injection.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace ddr {
namespace {

class ScopedPath {
 public:
  explicit ScopedPath(const std::string& tag)
      : path_("fault_torture_" + tag + ".ddrc") {}
  ~ScopedPath() {
    ClearFaultPlan();  // never let a test's plan leak into cleanup
    std::remove(path_.c_str());
  }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

RecordedExecution MakeSyntheticRecording(uint64_t num_events,
                                         uint64_t seed = 7) {
  RecordedExecution recording;
  recording.model = "synthetic";
  Rng rng(seed);
  for (uint64_t seq = 0; seq < num_events; ++seq) {
    Event event;
    event.seq = seq;
    event.time = seq * 13;
    event.fiber = static_cast<FiberId>(seq % 3);
    event.obj = 2 + seq % 5;
    event.value = rng.NextIndex(1 << 18);
    event.type = seq % 2 == 0 ? EventType::kSharedRead : EventType::kRngDraw;
    recording.log.Append(event);
  }
  recording.recorded_events = num_events;
  recording.intercepted_events = num_events;
  recording.recorded_bytes = recording.log.encoded_size_bytes();
  recording.cpu_nanos = 500;
  recording.overhead_nanos = 70;
  return recording;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

// Temp files land beside the target as "<path>.tmp.<pid>.<n>"; any
// survivor after a failed operation is litter.
std::vector<std::string> TempLitter(const std::string& path) {
  std::vector<std::string> litter;
  const std::string prefix = path + ".tmp.";
  for (const auto& entry : std::filesystem::directory_iterator(".")) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) {
      litter.push_back(name);
    }
  }
  return litter;
}

// Entry names of a freshly opened bundle, or nullopt when Open fails.
std::optional<std::vector<std::string>> LiveEntryNames(
    const std::string& path) {
  auto reader = CorpusReader::Open(path);
  if (!reader.ok()) {
    return std::nullopt;
  }
  const Status verified = reader->VerifyAll();
  EXPECT_TRUE(verified.ok()) << verified.ToString();
  std::vector<std::string> names;
  for (const CorpusEntry& entry : reader->entries()) {
    names.push_back(entry.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

// Runs `op` once under a `*:trace` plan: nothing fires, every consult is
// counted and named. Returns the hit count; accumulates site names.
uint64_t EnumerateSites(const std::function<Status()>& op,
                        std::set<std::string>* sites) {
  EXPECT_TRUE(SetFaultPlan("*:trace").ok());
  EXPECT_TRUE(op().ok());
  const uint64_t hits = FaultSiteHits();
  for (const std::string& site : FaultSitesSeen()) {
    sites->insert(site);
  }
  ClearFaultPlan();
  EXPECT_GT(hits, 0u);
  return hits;
}

// The torture loop: for each faultable operation along `op`'s path,
// restore the initial state, crash at exactly that operation, clear the
// plan, and hand the aftermath to `check` (with whether the op survived
// — a crash on a best-effort site, e.g. a directory fsync, is absorbed).
void CrashAtEverySite(const std::function<void()>& restore,
                      const std::function<Status()>& op,
                      const std::function<void(uint64_t, bool)>& check,
                      std::set<std::string>* sites) {
  restore();
  const uint64_t hits = EnumerateSites(op, sites);
  for (uint64_t i = 1; i <= hits; ++i) {
    restore();
    ASSERT_TRUE(
        SetFaultPlan(StrPrintf("*:crash@%llu",
                               static_cast<unsigned long long>(i)))
            .ok());
    const Status result = op();
    const bool crashed = FaultCrashTriggered();
    ClearFaultPlan();
    ASSERT_TRUE(crashed) << "crash point " << i << " of " << hits
                         << " never fired";
    check(i, result.ok());
  }
}

Status BuildBundle(const std::string& path,
                   const std::vector<std::string>& names) {
  CorpusWriter writer(path);
  RETURN_IF_ERROR(writer.Begin());
  uint64_t seed = 7;
  for (const std::string& name : names) {
    RETURN_IF_ERROR(writer.Add(name, MakeSyntheticRecording(40, seed++)));
  }
  return writer.Finish();
}

Status AppendEntry(const std::string& path, const std::string& name,
                   uint64_t seed) {
  auto writer = CorpusWriter::AppendTo(path);
  RETURN_IF_ERROR(writer.status());
  RETURN_IF_ERROR((*writer)->Add(name, MakeSyntheticRecording(40, seed)));
  return (*writer)->Finish();
}

// ------------------------------------------------------------- unit half

TEST(FaultPlanTest, DisarmedByDefaultAndConsultsAreFree) {
  ClearFaultPlan();
  EXPECT_FALSE(FaultsArmed());
  EXPECT_TRUE(FaultPoint("anything").ok());
  EXPECT_FALSE(FaultEintr("anything"));
  const WriteFaultOutcome outcome = FaultWritePoint("anything", 128);
  EXPECT_EQ(outcome.allowed, 128u);
  EXPECT_TRUE(outcome.failure.ok());
  EXPECT_EQ(FaultSiteHits(), 0u);
}

TEST(FaultPlanTest, ParsesEveryKindAndModifier) {
  EXPECT_TRUE(SetFaultPlan("a:eio;b:enospc;c:short=4;d:eintr=5;e:fsyncfail;"
                           "f:crash@3;g:unavail/2;h:stall=1;*:trace")
                  .ok());
  EXPECT_TRUE(FaultsArmed());
  ClearFaultPlan();
  EXPECT_FALSE(FaultsArmed());
}

TEST(FaultPlanTest, RejectsMalformedPlansAndKeepsThePreviousOne) {
  ASSERT_TRUE(SetFaultPlan("site.x:eio").ok());
  EXPECT_FALSE(SetFaultPlan("site.x").ok());          // no kind
  EXPECT_FALSE(SetFaultPlan(":eio").ok());            // no site
  EXPECT_FALSE(SetFaultPlan("site.x:frobnicate").ok());  // unknown kind
  EXPECT_FALSE(SetFaultPlan("site.x:eio@zero").ok());    // bad count
  EXPECT_FALSE(SetFaultPlan("site.x:eio@0").ok());       // counts are 1-based
  // The last good plan is still armed and still fires.
  EXPECT_TRUE(FaultsArmed());
  EXPECT_FALSE(FaultPoint("site.x").ok());
  ClearFaultPlan();
  // An empty plan is the documented disarm.
  ASSERT_TRUE(SetFaultPlan("site.x:eio").ok());
  EXPECT_TRUE(SetFaultPlan("").ok());
  EXPECT_FALSE(FaultsArmed());
}

TEST(FaultPlanTest, TargetsSitesByExactNameAndPrefixWildcard) {
  ASSERT_TRUE(SetFaultPlan("corpus.journal.sync:eio").ok());
  EXPECT_FALSE(FaultPoint("corpus.journal.sync").ok());
  EXPECT_TRUE(FaultPoint("corpus.journal.trailer").ok());
  ASSERT_TRUE(SetFaultPlan("corpus.journal.*:eio").ok());
  EXPECT_FALSE(FaultPoint("corpus.journal.sync").ok());
  EXPECT_FALSE(FaultPoint("corpus.journal.trailer").ok());
  EXPECT_TRUE(FaultPoint("trace.sink.sync").ok());
  ClearFaultPlan();
}

TEST(FaultPlanTest, NthHitAndEveryKthModifiers) {
  ASSERT_TRUE(SetFaultPlan("s:eio@3").ok());
  EXPECT_TRUE(FaultPoint("s").ok());
  EXPECT_TRUE(FaultPoint("s").ok());
  EXPECT_FALSE(FaultPoint("s").ok());
  EXPECT_TRUE(FaultPoint("s").ok());
  ASSERT_TRUE(SetFaultPlan("s:eio/2").ok());
  EXPECT_TRUE(FaultPoint("s").ok());
  EXPECT_FALSE(FaultPoint("s").ok());
  EXPECT_TRUE(FaultPoint("s").ok());
  EXPECT_FALSE(FaultPoint("s").ok());
  ClearFaultPlan();
}

TEST(FaultPlanTest, CrashFreezesEverySubsequentConsult) {
  ASSERT_TRUE(SetFaultPlan("doomed:crash").ok());
  EXPECT_TRUE(FaultPoint("unrelated").ok());
  EXPECT_FALSE(FaultCrashTriggered());
  EXPECT_FALSE(FaultPoint("doomed").ok());
  EXPECT_TRUE(FaultCrashTriggered());
  // Power is off: every site fails now, not just the targeted one.
  EXPECT_FALSE(FaultPoint("unrelated").ok());
  const WriteFaultOutcome outcome = FaultWritePoint("other", 64);
  EXPECT_EQ(outcome.allowed, 0u);
  EXPECT_FALSE(outcome.failure.ok());
  ClearFaultPlan();
  EXPECT_FALSE(FaultCrashTriggered());
  EXPECT_TRUE(FaultPoint("doomed").ok());
}

TEST(FaultPlanTest, EintrStormDeliversExactlyItsBudget) {
  ASSERT_TRUE(SetFaultPlan("loop:eintr=4").ok());
  int interrupts = 0;
  while (FaultEintr("loop")) {
    ++interrupts;
    ASSERT_LT(interrupts, 100);
  }
  EXPECT_EQ(interrupts, 4);
  EXPECT_FALSE(FaultEintr("loop"));  // storm spent
  ClearFaultPlan();
}

// Satellite: an injected fsync EIO must fail AtomicFileSink::Close()
// loudly and leave neither temp litter nor a half-published rename.
TEST(FaultInjectionTest, FsyncEioFailsAtomicSinkCloseWithNoLitter) {
  ScopedPath path("fsynceio");
  ASSERT_TRUE(SetFaultPlan("trace.sink.sync:eio").ok());
  TraceWriter writer;
  const Status wrote = writer.WriteFile(path.get(), MakeSyntheticRecording(40));
  ClearFaultPlan();
  EXPECT_FALSE(wrote.ok());
  EXPECT_NE(wrote.ToString().find("Input/output error"), std::string::npos)
      << wrote.ToString();
  EXPECT_FALSE(FileExists(path.get()));
  EXPECT_TRUE(TempLitter(path.get()).empty());
}

TEST(FaultInjectionTest, FsyncFailAndShortWriteSurfaceStrerror) {
  ScopedPath path("shortwrite");
  // fsyncfail: the documented "fsync lies" kind behaves like eio at sync
  // sites.
  ASSERT_TRUE(SetFaultPlan("trace.sink.sync:fsyncfail").ok());
  TraceWriter writer;
  EXPECT_FALSE(writer.WriteFile(path.get(), MakeSyntheticRecording(40)).ok());
  // short: the sink writes a prefix then reports ENOSPC with strerror.
  ASSERT_TRUE(SetFaultPlan("trace.sink.append:short@1").ok());
  const Status wrote = writer.WriteFile(path.get(), MakeSyntheticRecording(40));
  ClearFaultPlan();
  EXPECT_FALSE(wrote.ok());
  EXPECT_NE(wrote.ToString().find("No space left on device"),
            std::string::npos)
      << wrote.ToString();
  EXPECT_FALSE(FileExists(path.get()));
  EXPECT_TRUE(TempLitter(path.get()).empty());
}

TEST(FaultInjectionTest, EintrStormsAreInvisibleToTheWritePipeline) {
  // Storm every retry loop in the stack; the pipeline must shrug it off
  // and produce a bundle indistinguishable from a calm run.
  ScopedPath calm("eintrcalm");
  ScopedPath stormy("eintrstormy");
  ASSERT_TRUE(BuildBundle(calm.get(), {"a", "b"}).ok());
  ASSERT_TRUE(SetFaultPlan("*:eintr=3").ok());
  const Status built = BuildBundle(stormy.get(), {"a", "b"});
  ClearFaultPlan();
  ASSERT_TRUE(built.ok()) << built.ToString();
  EXPECT_EQ(ReadFileBytes(calm.get()), ReadFileBytes(stormy.get()));
  ASSERT_TRUE(SetFaultPlan("*:eintr=2").ok());
  const Status appended = AppendEntry(stormy.get(), "c", 99);
  ClearFaultPlan();
  ASSERT_TRUE(appended.ok()) << appended.ToString();
  EXPECT_EQ(LiveEntryNames(stormy.get()),
            std::optional<std::vector<std::string>>({{"a", "b", "c"}}));
}

// ---------------------------------------------------------- torture half

TEST(FaultTortureTest, TraceWriteCrashesLeaveAllOrNothing) {
  ScopedPath path("tracewrite");
  std::set<std::string> sites;
  CrashAtEverySite(
      [&] { std::remove(path.get().c_str()); },
      [&] {
        TraceWriter writer;
        return writer.WriteFile(path.get(), MakeSyntheticRecording(60));
      },
      [&](uint64_t point, bool survived) {
        EXPECT_TRUE(TempLitter(path.get()).empty()) << "crash point " << point;
        if (FileExists(path.get())) {
          // Published despite (or after) the crash point: must be whole.
          auto reader = TraceReader::Open(path.get());
          ASSERT_TRUE(reader.ok())
              << "crash point " << point << ": " << reader.status().ToString();
          EXPECT_TRUE(reader->Verify().ok()) << "crash point " << point;
        } else {
          EXPECT_FALSE(survived) << "crash point " << point;
        }
      },
      &sites);
}

TEST(FaultTortureTest, CorpusBuildCrashesLeaveAllOrNothing) {
  ScopedPath path("build");
  std::set<std::string> sites;
  CrashAtEverySite(
      [&] { std::remove(path.get().c_str()); },
      [&] { return BuildBundle(path.get(), {"one", "two"}); },
      [&](uint64_t point, bool survived) {
        EXPECT_TRUE(TempLitter(path.get()).empty()) << "crash point " << point;
        const auto names = LiveEntryNames(path.get());
        if (names.has_value()) {
          EXPECT_EQ(*names, (std::vector<std::string>{"one", "two"}))
              << "crash point " << point;
        } else {
          EXPECT_FALSE(FileExists(path.get())) << "crash point " << point;
          EXPECT_FALSE(survived) << "crash point " << point;
        }
      },
      &sites);
}

TEST(FaultTortureTest, InPlaceAppendCrashesKeepBaseAndHeal) {
  ScopedPath path("append");
  ASSERT_TRUE(BuildBundle(path.get(), {"base"}).ok());
  const std::vector<uint8_t> base_bytes = ReadFileBytes(path.get());
  const std::vector<std::string> base_only = {"base"};
  const std::vector<std::string> both = {"base", "grown"};
  std::set<std::string> sites;
  CrashAtEverySite(
      [&] { WriteFileBytes(path.get(), base_bytes); },
      [&] { return AppendEntry(path.get(), "grown", 21); },
      [&](uint64_t point, bool survived) {
        // Committed entries stay readable; the torn generation is either
        // fully published or fully invisible.
        const auto names = LiveEntryNames(path.get());
        ASSERT_TRUE(names.has_value())
            << "crash point " << point << " broke recovery";
        if (survived) {
          EXPECT_EQ(*names, both) << "crash point " << point;
        } else {
          // A failed append may still have published: a crash after the
          // trailer landed but before the final sync returned reports an
          // error while the generation is already durable. Both outcomes
          // are sound; a half-published index is not.
          EXPECT_TRUE(*names == base_only || *names == both)
              << "crash point " << point;
          if (*names == base_only) {
            // The next append heals the torn tail and publishes normally.
            const Status healed = AppendEntry(path.get(), "grown", 21);
            ASSERT_TRUE(healed.ok())
                << "crash point " << point << ": " << healed.ToString();
            EXPECT_EQ(LiveEntryNames(path.get()),
                      std::optional<std::vector<std::string>>(both))
                << "crash point " << point;
          }
        }
      },
      &sites);
}

TEST(FaultTortureTest, SecondGenerationAppendCrashesKeepTheChain) {
  // Same drill one generation deeper: the bundle under torture already
  // holds a journal chain, so recovery exercises the backward trailer
  // scan over a torn *third* generation.
  ScopedPath path("appendchain");
  ASSERT_TRUE(BuildBundle(path.get(), {"base"}).ok());
  ASSERT_TRUE(AppendEntry(path.get(), "g2", 31).ok());
  const std::vector<uint8_t> chain_bytes = ReadFileBytes(path.get());
  const std::vector<std::string> chain = {"base", "g2"};
  const std::vector<std::string> grown = {"base", "g2", "g3"};
  std::set<std::string> sites;
  CrashAtEverySite(
      [&] { WriteFileBytes(path.get(), chain_bytes); },
      [&] { return AppendEntry(path.get(), "g3", 41); },
      [&](uint64_t point, bool survived) {
        const auto names = LiveEntryNames(path.get());
        ASSERT_TRUE(names.has_value())
            << "crash point " << point << " broke recovery";
        if (survived) {
          EXPECT_EQ(*names, grown) << "crash point " << point;
        } else {
          // Published-then-crashed reports failure with the generation
          // durable (see the single-generation torture above).
          EXPECT_TRUE(*names == chain || *names == grown)
              << "crash point " << point;
        }
      },
      &sites);
}

TEST(FaultTortureTest, CompactionCrashesNeverLoseAnEntry) {
  ScopedPath path("compact");
  ASSERT_TRUE(BuildBundle(path.get(), {"keep1", "keep2"}).ok());
  ASSERT_TRUE(AppendEntry(path.get(), "keep3", 51).ok());
  const std::vector<uint8_t> journaled_bytes = ReadFileBytes(path.get());
  const std::vector<std::string> live = {"keep1", "keep2", "keep3"};
  std::set<std::string> sites;
  CrashAtEverySite(
      [&] { WriteFileBytes(path.get(), journaled_bytes); },
      [&] { return CompactCorpus(path.get(), {}).status(); },
      [&](uint64_t point, bool survived) {
        (void)survived;  // either the old journal or the new canonical file
        EXPECT_TRUE(TempLitter(path.get()).empty()) << "crash point " << point;
        EXPECT_EQ(LiveEntryNames(path.get()),
                  std::optional<std::vector<std::string>>(live))
            << "crash point " << point;
      },
      &sites);
}

TEST(FaultTortureTest, StoragePathsEnumerateAtLeastTwentyDistinctSites) {
  ScopedPath path("sitecount");
  ScopedPath trace_path("sitecounttrace");
  std::set<std::string> sites;
  EnumerateSites(
      [&] {
        TraceWriter writer;
        return writer.WriteFile(trace_path.get(), MakeSyntheticRecording(60));
      },
      &sites);
  EnumerateSites([&] { return BuildBundle(path.get(), {"one", "two"}); },
                 &sites);
  EnumerateSites([&] { return AppendEntry(path.get(), "three", 61); }, &sites);
  // Reads on every backend (stream / pread / mmap are distinct sites).
  for (IoBackend backend :
       {IoBackend::kStream, IoBackend::kPread, IoBackend::kMmap}) {
    EnumerateSites(
        [&] {
          CorpusReaderOptions options;
          options.io.backend = backend;
          ASSIGN_OR_RETURN(CorpusReader reader,
                           CorpusReader::Open(path.get(), options));
          return reader.VerifyAll();
        },
        &sites);
  }
  EnumerateSites([&] { return CompactCorpus(path.get(), {}).status(); },
                 &sites);
  EXPECT_GE(sites.size(), 20u) << [&] {
    std::string all;
    for (const std::string& site : sites) {
      all += site + " ";
    }
    return all;
  }();
}

}  // namespace
}  // namespace ddr
