// Tests for src/analysis: race detection (true/false positives across
// synchronization idioms), lockset, plane classification, invariant
// inference/monitoring, triggers, and root-cause catalogs.

#include <gtest/gtest.h>

#include "src/analysis/invariants.h"
#include "src/analysis/plane_classifier.h"
#include "src/analysis/race_detector.h"
#include "src/analysis/root_cause.h"
#include "src/analysis/triggers.h"
#include "src/sim/channel.h"
#include "src/sim/environment.h"
#include "src/sim/network.h"
#include "src/sim/shared_var.h"
#include "src/sim/sync.h"

namespace ddr {
namespace {

// Runs a program and returns its collected trace.
std::vector<Event> Trace(uint64_t seed, double preempt,
                         std::function<void(Environment&)> body) {
  Environment::Options options;
  options.seed = seed;
  options.scheduling.preempt_probability = preempt;
  Environment env(options);
  CollectingSink sink;
  env.AddTraceSink(&sink);
  env.Run("trace", std::move(body));
  return sink.events();
}

// ---------------------------------------------------------- race detector

TEST(RaceDetectorTest, DetectsUnlockedConcurrentAccess) {
  bool detected = false;
  for (uint64_t seed = 1; seed <= 10 && !detected; ++seed) {
    auto events = Trace(seed, 0.3, [](Environment& e) {
      SharedVar<uint64_t> x(e, "x", 0);
      FiberId a = e.Spawn("a", [&] { x.Store(x.Load() + 1); });
      FiberId b = e.Spawn("b", [&] { x.Store(x.Load() + 1); });
      e.Join(a);
      e.Join(b);
    });
    detected = !RaceDetector::Analyze(events).empty();
  }
  EXPECT_TRUE(detected);
}

TEST(RaceDetectorTest, NoRaceWhenLocked) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto events = Trace(seed, 0.3, [](Environment& e) {
      SharedVar<uint64_t> x(e, "x", 0);
      SimMutex mu(e, "mu");
      FiberId a = e.Spawn("a", [&] {
        SimLock lock(mu);
        x.Store(x.Load() + 1);
      });
      FiberId b = e.Spawn("b", [&] {
        SimLock lock(mu);
        x.Store(x.Load() + 1);
      });
      e.Join(a);
      e.Join(b);
    });
    EXPECT_TRUE(RaceDetector::Analyze(events).empty()) << "seed " << seed;
  }
}

TEST(RaceDetectorTest, NoRaceWithJoinOrdering) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto events = Trace(seed, 0.3, [](Environment& e) {
      SharedVar<uint64_t> x(e, "x", 0);
      FiberId a = e.Spawn("a", [&] { x.Store(1); });
      e.Join(a);  // happens-before edge
      FiberId b = e.Spawn("b", [&] { x.Store(2); });
      e.Join(b);
    });
    EXPECT_TRUE(RaceDetector::Analyze(events).empty()) << "seed " << seed;
  }
}

TEST(RaceDetectorTest, NoRaceWithChannelOrdering) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto events = Trace(seed, 0.3, [](Environment& e) {
      SharedVar<uint64_t> x(e, "x", 0);
      Channel<int> chan(e, "chan");
      FiberId producer = e.Spawn("producer", [&] {
        x.Store(42);
        chan.Send(1);  // release
      });
      FiberId consumer = e.Spawn("consumer", [&] {
        chan.Recv();  // acquire
        EXPECT_EQ(x.Load(), 42u);
      });
      e.Join(producer);
      e.Join(consumer);
    });
    EXPECT_TRUE(RaceDetector::Analyze(events).empty()) << "seed " << seed;
  }
}

TEST(RaceDetectorTest, NoRaceWithSemaphoreOrdering) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto events = Trace(seed, 0.3, [](Environment& e) {
      SharedVar<uint64_t> x(e, "x", 0);
      SimSemaphore sem(e, "sem", 0);
      FiberId a = e.Spawn("a", [&] {
        x.Store(5);
        sem.Release();
      });
      FiberId b = e.Spawn("b", [&] {
        sem.Acquire();
        x.Store(6);
      });
      e.Join(a);
      e.Join(b);
    });
    EXPECT_TRUE(RaceDetector::Analyze(events).empty()) << "seed " << seed;
  }
}

TEST(RaceDetectorTest, NetworkMessagesCarryHappensBefore) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto events = Trace(seed, 0.3, [](Environment& e) {
      SharedVar<uint64_t> x(e, "x", 0);
      NodeId node = e.AddNode("peer");
      Network net(e, NetworkOptions{});
      ObjectId here = net.CreateEndpoint(0, "here");
      ObjectId there = net.CreateEndpoint(node, "there");
      FiberId peer = e.SpawnOnNode(node, "peer", [&] {
        auto msg = net.Recv(there);
        ASSERT_TRUE(msg.has_value());
        x.Store(2);  // ordered after the sender's write via the message
        net.Send(there, here, 0, "done");
      });
      x.Store(1);
      net.Send(here, there, 0, "go");
      net.Recv(here);
      e.Join(peer);
    });
    EXPECT_TRUE(RaceDetector::Analyze(events).empty()) << "seed " << seed;
  }
}

TEST(RaceDetectorTest, RmwActsAsSynchronization) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto events = Trace(seed, 0.3, [](Environment& e) {
      SharedVar<uint64_t> counter(e, "counter", 0);
      FiberId a = e.Spawn("a", [&] { counter.FetchAdd(1); });
      FiberId b = e.Spawn("b", [&] { counter.FetchAdd(1); });
      e.Join(a);
      e.Join(b);
    });
    EXPECT_TRUE(RaceDetector::Analyze(events).empty()) << "seed " << seed;
  }
}

TEST(RaceDetectorTest, OnlineCallbackFires) {
  RaceDetector detector;
  int fired = 0;
  detector.SetRaceCallback([&](const RaceReport&) { ++fired; });
  // Hand-crafted racy access pair: two fibers, no sync events.
  Event w1;
  w1.type = EventType::kSharedWrite;
  w1.fiber = 1;
  w1.obj = 9;
  w1.seq = 1;
  Event w2 = w1;
  w2.fiber = 2;
  w2.seq = 2;
  detector.OnEvent(w1);
  detector.OnEvent(w2);
  EXPECT_EQ(fired, 1);
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_EQ(detector.races()[0].kind, RaceReport::Kind::kWriteWrite);
  EXPECT_TRUE(detector.HasRaceOnCell(9));
  EXPECT_FALSE(detector.HasRaceOnCell(10));
}

TEST(RaceDetectorTest, ReportOncePerCellDeduplicates) {
  RaceDetector detector(/*report_once_per_cell=*/true);
  for (uint64_t i = 0; i < 10; ++i) {
    Event w;
    w.type = EventType::kSharedWrite;
    w.fiber = static_cast<FiberId>(1 + i % 2);
    w.obj = 5;
    w.seq = i;
    detector.OnEvent(w);
  }
  EXPECT_EQ(detector.races().size(), 1u);
}

TEST(LocksetDetectorTest, FlagsUnlockedSharedCell) {
  bool flagged = false;
  for (uint64_t seed = 1; seed <= 5 && !flagged; ++seed) {
    auto events = Trace(seed, 0.2, [](Environment& e) {
      SharedVar<uint64_t> x(e, "x", 0);
      FiberId a = e.Spawn("a", [&] { x.Store(1); });
      FiberId b = e.Spawn("b", [&] { x.Store(2); });
      e.Join(a);
      e.Join(b);
    });
    flagged = !LocksetDetector::Analyze(events).empty();
  }
  EXPECT_TRUE(flagged);
}

TEST(LocksetDetectorTest, ConsistentLockDisciplinePasses) {
  auto events = Trace(3, 0.2, [](Environment& e) {
    SharedVar<uint64_t> x(e, "x", 0);
    SimMutex mu(e, "mu");
    FiberId a = e.Spawn("a", [&] {
      SimLock lock(mu);
      x.Store(1);
    });
    FiberId b = e.Spawn("b", [&] {
      SimLock lock(mu);
      x.Store(2);
    });
    e.Join(a);
    e.Join(b);
  });
  EXPECT_TRUE(LocksetDetector::Analyze(events).empty());
}

// ------------------------------------------------------- plane classifier

TEST(PlaneClassifierTest, HighRateRegionsAreDataPlane) {
  std::map<RegionId, RegionProfile> profiles;
  profiles[1] = {1, 1000, 2000};     // 2 B/op -> control
  profiles[2] = {2, 1000, 100000};   // 100 B/op -> data
  profiles[3] = {3, 10, 50};         // 5 B/op -> control
  auto planes = PlaneClassifier::Classify(profiles);
  EXPECT_EQ(planes[1], Plane::kControl);
  EXPECT_EQ(planes[2], Plane::kData);
  EXPECT_EQ(planes[3], Plane::kControl);
}

TEST(PlaneClassifierTest, BulkRegionDoesNotMaskModerateRates) {
  std::map<RegionId, RegionProfile> profiles;
  profiles[1] = {1, 10, 120000};   // 12 KB/op bulk transfer
  profiles[2] = {2, 200, 96000};   // 480 B/op: data, despite the bulk peer
  profiles[3] = {3, 1000, 8000};   // 8 B/op control
  auto planes = PlaneClassifier::Classify(profiles);
  EXPECT_EQ(planes[1], Plane::kData);
  EXPECT_EQ(planes[2], Plane::kData);
  EXPECT_EQ(planes[3], Plane::kControl);
}

TEST(PlaneProfilerTest, AttributesBytesToRegions) {
  Environment::Options options;
  Environment env(options);
  PlaneProfiler profiler;
  env.AddTraceSink(&profiler);
  env.Run("profiled", [](Environment& e) {
    RegionId bulk = e.RegisterRegion("bulk");
    RegionId chat = e.RegisterRegion("chat");
    ObjectId src = e.RegisterInputSource("in", [] { return uint64_t{1}; });
    {
      RegionScope scope(e, bulk);
      for (int i = 0; i < 10; ++i) {
        e.ReadInput(src, 1000);
      }
    }
    {
      RegionScope scope(e, chat);
      SharedVar<int> x(e, "x", 0);
      for (int i = 0; i < 10; ++i) {
        x.Store(i);
      }
    }
  });
  const auto& profiles = profiler.profiles();
  // Regions 1 and 2 (0 is default).
  ASSERT_TRUE(profiles.count(1) == 1 && profiles.count(2) == 1);
  EXPECT_GT(profiles.at(1).BytesPerOp(), 100.0);
  EXPECT_LT(profiles.at(2).BytesPerOp(), 16.0);
  auto control = PlaneClassifier::ControlRegions(profiles);
  EXPECT_TRUE(std::find(control.begin(), control.end(), 2u) != control.end());
}

// ------------------------------------------------------------- invariants

TEST(InvariantTest, LearnsRangeAndConstancy) {
  InvariantInference inference;
  for (uint64_t v : {5ull, 7ull, 6ull, 5ull}) {
    inference.ObserveWrite(1, v);
  }
  for (int i = 0; i < 5; ++i) {
    inference.ObserveWrite(2, 9);
  }
  InvariantSet set = inference.Infer();
  ASSERT_TRUE(set.ForCell(1).has_value());
  EXPECT_FALSE(set.ForCell(1)->constant);
  EXPECT_TRUE(set.Admits(1, 6));
  EXPECT_FALSE(set.Admits(1, 100));
  ASSERT_TRUE(set.ForCell(2).has_value());
  EXPECT_TRUE(set.ForCell(2)->constant);
  EXPECT_FALSE(set.Admits(2, 8));
  EXPECT_TRUE(set.Admits(3, 12345));  // unknown cell unconstrained
}

TEST(InvariantTest, SlackWidensRange) {
  InvariantInference inference(/*range_slack=*/0.5);
  inference.ObserveWrite(1, 10);
  inference.ObserveWrite(1, 20);
  inference.ObserveWrite(1, 15);
  InvariantSet set = inference.Infer();
  EXPECT_TRUE(set.Admits(1, 25));   // within 50% slack
  EXPECT_FALSE(set.Admits(1, 40));  // beyond
}

TEST(InvariantTest, NeverZeroRequiresEvidence) {
  InvariantInference inference;
  inference.ObserveWrite(1, 3);
  inference.ObserveWrite(1, 4);
  InvariantSet set = inference.Infer();  // only 2 observations
  EXPECT_FALSE(set.ForCell(1)->never_zero);
  inference.ObserveWrite(1, 5);
  set = inference.Infer();
  EXPECT_TRUE(set.ForCell(1)->never_zero);
}

TEST(InvariantMonitorTest, FlagsViolatingWrites) {
  InvariantInference inference;
  for (int i = 0; i < 5; ++i) {
    inference.ObserveWrite(7, 100 + i);
  }
  InvariantMonitor monitor(inference.Infer());
  int violations = 0;
  monitor.SetViolationCallback([&](const InvariantMonitor::Violation&) { ++violations; });

  Event ok;
  ok.type = EventType::kSharedWrite;
  ok.obj = 7;
  ok.value = 102;
  monitor.OnEvent(ok);
  EXPECT_EQ(violations, 0);

  Event bad = ok;
  bad.value = 9999;
  monitor.OnEvent(bad);
  EXPECT_EQ(violations, 1);
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].value, 9999u);
}

// ---------------------------------------------------------------- triggers

TEST(TriggerTest, LargeInputTriggerThreshold) {
  LargeInputTrigger trigger(100);
  int fires = 0;
  trigger.SetFireCallback([&](const Trigger&, const Event&) { ++fires; });
  Event small;
  small.type = EventType::kInput;
  small.bytes = 99;
  trigger.Observe(small);
  EXPECT_EQ(fires, 0);
  Event large = small;
  large.bytes = 100;
  trigger.Observe(large);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(trigger.fire_count(), 1u);
}

TEST(TriggerTest, AnnotationTriggerMatchesTag) {
  AnnotationTrigger trigger(42);
  int fires = 0;
  trigger.SetFireCallback([&](const Trigger&, const Event&) { ++fires; });
  Event note;
  note.type = EventType::kAnnotation;
  note.obj = 41;
  trigger.Observe(note);
  note.obj = 42;
  trigger.Observe(note);
  EXPECT_EQ(fires, 1);
}

TEST(TriggerTest, RaceTriggerFiresOnRace) {
  RaceTrigger trigger;
  int fires = 0;
  trigger.SetFireCallback([&](const Trigger&, const Event&) { ++fires; });
  Event w1;
  w1.type = EventType::kSharedWrite;
  w1.fiber = 1;
  w1.obj = 3;
  Event w2 = w1;
  w2.fiber = 2;
  trigger.Observe(w1);
  EXPECT_EQ(fires, 0);
  trigger.Observe(w2);
  EXPECT_EQ(fires, 1);
}

TEST(TriggerSetTest, DispatchesToAll) {
  TriggerSet set;
  set.Add(std::make_unique<LargeInputTrigger>(10));
  set.Add(std::make_unique<AnnotationTrigger>(5));
  int fires = 0;
  set.SetFireCallback([&](const Trigger&, const Event&) { ++fires; });
  Event input;
  input.type = EventType::kInput;
  input.bytes = 64;
  set.Observe(input);
  Event note;
  note.type = EventType::kAnnotation;
  note.obj = 5;
  set.Observe(note);
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(set.TotalFires(), 2u);
}

// -------------------------------------------------------------- root cause

TEST(RootCauseCatalogTest, DiagnosisAndActualPresence) {
  RootCauseCatalog catalog(
      {RootCauseSpec{"a", "first",
                     [](const ExecutionView& view) { return view.outcome.Failed(); }},
       RootCauseSpec{"b", "second", [](const ExecutionView&) { return true; }}},
      "a");
  std::vector<Event> no_events;
  Outcome clean;
  ExecutionView clean_view{no_events, clean};
  EXPECT_EQ(catalog.DiagnosedCause(clean_view).value_or(""), "b");
  EXPECT_FALSE(catalog.ActualCausePresent(clean_view));

  Outcome failed;
  failed.failures.push_back({FailureKind::kCrash, "x", 0, 0, 0, 0, 0});
  ExecutionView failed_view{no_events, failed};
  EXPECT_EQ(catalog.DiagnosedCause(failed_view).value_or(""), "a");
  EXPECT_TRUE(catalog.ActualCausePresent(failed_view));
  EXPECT_EQ(catalog.PresentCauses(failed_view).size(), 2u);
}

}  // namespace
}  // namespace ddr
