// Tests for Hypertable-lite: message codecs, protocol correctness with the
// fix (no loss under schedule exploration), bug manifestation, and the two
// alternate root-cause faults.

#include <gtest/gtest.h>

#include "src/apps/annotations.h"
#include "src/ht/hypertable_program.h"
#include "src/ht/messages.h"

namespace ddr {
namespace {

HtConfig SmallConfig(bool bug) {
  HtConfig config;
  config.bug_enabled = bug;
  config.num_servers = 3;
  config.num_clients = 2;
  config.rows_per_client = 40;
  config.num_ranges = 6;
  config.num_migrations = 3;
  return config;
}

Outcome RunHt(HypertableProgram& program, uint64_t seed,
              CollectingSink* sink = nullptr, FaultPlan plan = FaultPlan()) {
  Environment::Options options;
  options.seed = seed;
  options.scheduling.preempt_probability = 0.15;
  Environment env(options);
  if (sink != nullptr) {
    env.AddTraceSink(sink);
  }
  if (!plan.empty()) {
    env.SetFaultPlan(plan);
  }
  return env.Run(program);
}

// ---------------------------------------------------------------- messages

TEST(HtMessagesTest, CommitRoundtrip) {
  CommitReq req{0xABCDEF, "payload-bytes"};
  auto decoded = CommitReq::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->key, req.key);
  EXPECT_EQ(decoded->value, req.value);
}

TEST(HtMessagesTest, DumpRespRoundtripManyRows) {
  DumpResp resp;
  for (uint64_t i = 0; i < 100; ++i) {
    resp.rows.push_back(HtRow{i * 7, std::string(i % 13, 'x')});
  }
  auto decoded = DumpResp::Decode(resp.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->rows.size(), resp.rows.size());
  for (size_t i = 0; i < resp.rows.size(); ++i) {
    EXPECT_EQ(decoded->rows[i].key, resp.rows[i].key);
    EXPECT_EQ(decoded->rows[i].value, resp.rows[i].value);
  }
}

TEST(HtMessagesTest, MigrationMessagesRoundtrip) {
  MigrateCmd cmd{5, 2};
  auto decoded_cmd = MigrateCmd::Decode(cmd.Encode());
  ASSERT_TRUE(decoded_cmd.ok());
  EXPECT_EQ(decoded_cmd->range, 5u);
  EXPECT_EQ(decoded_cmd->dst_server, 2u);

  InstallRange install{3, {HtRow{1, "a"}, HtRow{2, "b"}}};
  auto decoded_install = InstallRange::Decode(install.Encode());
  ASSERT_TRUE(decoded_install.ok());
  EXPECT_EQ(decoded_install->range, 3u);
  ASSERT_EQ(decoded_install->rows.size(), 2u);

  LookupResp lookup{4, 1};
  auto decoded_lookup = LookupResp::Decode(lookup.Encode());
  ASSERT_TRUE(decoded_lookup.ok());
  EXPECT_EQ(decoded_lookup->server, 1u);
}

TEST(HtMessagesTest, DecodeRejectsTruncation) {
  CommitReq req{42, "hello"};
  std::string bytes = req.Encode();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(CommitReq::Decode(bytes).ok());
}

TEST(HtMessagesTest, RangeOfPartitionsKeySpace) {
  HtConfig config;
  config.num_ranges = 8;
  for (uint64_t key = 0; key < 64; ++key) {
    EXPECT_LT(config.RangeOf(key), config.num_ranges);
  }
  EXPECT_EQ(config.RangeOf(8), config.RangeOf(16));
}

// ---------------------------------------------------------------- protocol

class HtFixedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HtFixedPropertyTest, NoRowLossWithFixUnderScheduleExploration) {
  HypertableProgram program(/*world_seed=*/GetParam() * 101, SmallConfig(false));
  Outcome outcome = RunHt(program, GetParam());
  EXPECT_FALSE(outcome.Failed()) << "seed " << GetParam();
  EXPECT_EQ(program.acked_total(),
            static_cast<uint64_t>(2 * 40));  // every row acked
  EXPECT_GE(program.dump_total(), program.acked_total());
  EXPECT_EQ(program.orphaned_rows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtFixedPropertyTest, ::testing::Range<uint64_t>(1, 13));

TEST(HtBugTest, RaceManifestsForSomeScheduleAndOrphansRows) {
  bool manifested = false;
  for (uint64_t seed = 1; seed <= 40 && !manifested; ++seed) {
    HypertableProgram program(/*world_seed=*/42, SmallConfig(true));
    CollectingSink sink;
    Outcome outcome = RunHt(program, seed, &sink);
    if (!outcome.Failed()) {
      continue;
    }
    manifested = true;
    EXPECT_GT(program.orphaned_rows(), 0u);
    EXPECT_LT(program.dump_total(), program.acked_total());
    bool annotated = false;
    for (const Event& event : sink.events()) {
      annotated |= event.type == EventType::kAnnotation &&
                   event.obj == kTagHtLostRowCommit;
    }
    EXPECT_TRUE(annotated) << "root-cause ground truth must be in the trace";
  }
  EXPECT_TRUE(manifested);
}

TEST(HtBugTest, MigrationsActuallyHappen) {
  HypertableProgram program(/*world_seed=*/7, SmallConfig(false));
  CollectingSink sink;
  RunHt(program, 3, &sink);
  uint64_t installs = 0;
  for (const auto& server : program.servers()) {
    installs += server->migrations_in();
  }
  EXPECT_GT(installs, 0u) << "the master must have rebalanced at least once";
}

TEST(HtFaultTest, SlaveCrashLosesUploadedRows) {
  HypertableProgram program(/*world_seed=*/9, SmallConfig(true));
  CollectingSink sink;
  Outcome outcome = RunHt(program, 5, &sink,
                          FaultPlan::CrashNodeAt(/*node=*/2, 3 * kMillisecond));
  ASSERT_TRUE(outcome.Failed());
  EXPECT_EQ(outcome.primary_failure()->message,
            HypertableProgram::kFailureMessage);
  bool crashed = false;
  for (const Event& event : sink.events()) {
    crashed |= event.type == EventType::kNodeCrash;
  }
  EXPECT_TRUE(crashed);
}

TEST(HtFaultTest, ClientOomTruncatesDump) {
  HypertableProgram program(/*world_seed=*/9, SmallConfig(true));
  CollectingSink sink;
  Outcome outcome =
      RunHt(program, 6, &sink, FaultPlan::OomAt(/*node=*/0, 4 * kMillisecond));
  ASSERT_TRUE(outcome.Failed());
  EXPECT_EQ(outcome.primary_failure()->message,
            HypertableProgram::kFailureMessage);
  bool oom_annotated = false;
  for (const Event& event : sink.events()) {
    oom_annotated |= event.type == EventType::kAnnotation &&
                     event.obj == kTagHtOomDuringDump;
  }
  EXPECT_TRUE(oom_annotated);
}

TEST(HtDeterminismTest, SameSeedsSameTrace) {
  auto fingerprint = [](uint64_t sched_seed) {
    HypertableProgram program(/*world_seed=*/11, SmallConfig(true));
    return RunHt(program, sched_seed).trace_fingerprint;
  };
  EXPECT_EQ(fingerprint(4), fingerprint(4));
  EXPECT_NE(fingerprint(4), fingerprint(5));
}

}  // namespace
}  // namespace ddr
