// End-to-end tests of the §4 Hypertable case study: the production failure
// manifests, recorders do not perturb, and each determinism model earns the
// paper's fidelity numbers (value 1, RCSE 1, failure 1/3).

#include <gtest/gtest.h>

#include "src/apps/scenarios.h"
#include "src/ht/hypertable_program.h"
#include "src/util/logging.h"

namespace ddr {
namespace {

class CaseStudyTest : public ::testing::Test {
 protected:
  static ExperimentHarness* harness() {
    static ExperimentHarness* instance = [] {
      auto* h = new ExperimentHarness(MakeHypertableScenario());
      Status status = h->Prepare();
      CHECK(status.ok()) << status;
      return h;
    }();
    return instance;
  }
};

TEST_F(CaseStudyTest, ProductionFailureManifests) {
  const Outcome& outcome = harness()->production_outcome();
  ASSERT_TRUE(outcome.Failed());
  EXPECT_EQ(outcome.primary_failure()->kind, FailureKind::kSpecViolation);
  EXPECT_EQ(outcome.primary_failure()->message, HypertableProgram::kFailureMessage);
  LOG(INFO) << "production sched seed: " << harness()->production_sched_seed()
            << ", events: " << outcome.stats.events
            << ", virtual ms: " << outcome.stats.virtual_duration / 1000000
            << ", wall s: " << outcome.stats.wall_seconds;
}

TEST_F(CaseStudyTest, ProductionTraceContainsTheRace) {
  const ExecutionView view{harness()->production_trace(),
                           harness()->production_outcome()};
  EXPECT_TRUE(harness()->scenario().catalog.ActualCausePresent(view));
}

TEST_F(CaseStudyTest, ValueDeterminismFullFidelity) {
  ExperimentRow row = harness()->RunModel(DeterminismModel::kValue);
  EXPECT_TRUE(row.failure_reproduced);
  EXPECT_DOUBLE_EQ(row.fidelity, 1.0);
  EXPECT_GT(row.overhead_multiplier, 2.0) << "value determinism should be costly";
  LOG(INFO) << "value: overhead=" << row.overhead_multiplier
            << " bytes=" << row.log_bytes << " divergences=" << row.divergences;
}

TEST_F(CaseStudyTest, RcseFullFidelityAtLowOverhead) {
  ExperimentRow value_row = harness()->RunModel(DeterminismModel::kValue);
  ExperimentRow rcse_row = harness()->RunModel(DeterminismModel::kDebugRcse);
  EXPECT_TRUE(rcse_row.failure_reproduced);
  EXPECT_DOUBLE_EQ(rcse_row.fidelity, 1.0);
  EXPECT_LT(rcse_row.overhead_multiplier, value_row.overhead_multiplier)
      << "RCSE must be cheaper than value determinism";
  LOG(INFO) << "rcse: overhead=" << rcse_row.overhead_multiplier
            << " bytes=" << rcse_row.log_bytes
            << " divergences=" << rcse_row.divergences << " diagnosed="
            << rcse_row.diagnosed_cause.value_or("(none)");
}

TEST_F(CaseStudyTest, FailureDeterminismWrongRootCause) {
  ExperimentRow row = harness()->RunModel(DeterminismModel::kFailure);
  EXPECT_TRUE(row.failure_reproduced);
  // ESD reproduces the failure via a hypothesized fault, not the race.
  EXPECT_NEAR(row.fidelity, 1.0 / 3.0, 1e-9);
  EXPECT_NE(row.diagnosed_cause.value_or("(none)"), "migration-race");
  EXPECT_NEAR(row.overhead_multiplier, 1.0, 1e-6) << "ESD records nothing";
  LOG(INFO) << "failure: diagnosed=" << row.diagnosed_cause.value_or("(none)")
            << " attempts=" << row.inference.attempts;
}

TEST_F(CaseStudyTest, ControlPlaneClassificationFindsTheRightRegions) {
  // Force training by building the RCSE recorder once.
  (void)harness()->RunModel(DeterminismModel::kDebugRcse);
  const auto& control = harness()->control_regions();
  EXPECT_FALSE(control.empty());
  LOG(INFO) << "control regions: " << control.size();
}

}  // namespace
}  // namespace ddr
