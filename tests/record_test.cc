// Unit tests for src/record: event logs, model recorders' filtering,
// overhead accounting, failure snapshots, and the selective recorder.

#include <gtest/gtest.h>

#include "src/record/event_log.h"
#include "src/record/model_recorders.h"
#include "src/record/recorded_execution.h"
#include "src/record/selective_recorder.h"
#include "src/sim/environment.h"
#include "src/sim/shared_var.h"
#include "src/sim/sync.h"

namespace ddr {
namespace {

Event MakeEvent(EventType type, uint64_t seq = 0, uint32_t bytes = 0,
                RegionId region = kDefaultRegion) {
  Event event;
  event.seq = seq;
  event.type = type;
  event.obj = 1;
  event.value = seq * 31;
  event.bytes = bytes;
  event.region = region;
  event.fiber = 0;
  return event;
}

TEST(EventLogTest, AppendTracksCountsAndSize) {
  EventLog log;
  EXPECT_TRUE(log.empty());
  log.Append(MakeEvent(EventType::kSharedRead, 1));
  log.Append(MakeEvent(EventType::kSharedRead, 2));
  log.Append(MakeEvent(EventType::kOutput, 3));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.CountOfType(EventType::kSharedRead), 2u);
  EXPECT_EQ(log.CountOfType(EventType::kOutput), 1u);
  EXPECT_GT(log.encoded_size_bytes(), 0u);
}

// EncodedSizeBytes is the size ledger for every Append: it must agree
// exactly with what EncodeTo actually emits, across varint width
// boundaries.
TEST(EventLogTest, EncodedSizeBytesMatchesRealEncoding) {
  for (uint64_t magnitude : {0ull, 1ull, 127ull, 128ull, 1ull << 14,
                             (1ull << 21) - 1, 1ull << 42, ~0ull}) {
    Event event = MakeEvent(EventType::kRngDraw, magnitude);
    event.value = magnitude;
    event.aux = magnitude / 3;
    event.time = static_cast<SimTime>(magnitude % (1ull << 40));
    Encoder encoder;
    event.EncodeTo(&encoder);
    EXPECT_EQ(event.EncodedSizeBytes(), encoder.size()) << magnitude;
  }
}

TEST(EventLogTest, AppendAllMatchesRepeatedAppend) {
  std::vector<Event> events;
  for (uint64_t i = 0; i < 100; ++i) {
    events.push_back(MakeEvent(i % 2 == 0 ? EventType::kSharedRead
                                          : EventType::kOutput,
                               i, static_cast<uint32_t>(i * 7)));
  }
  EventLog one_by_one;
  for (const Event& event : events) {
    one_by_one.Append(event);
  }
  EventLog bulk;
  bulk.AppendAll(events.data(), events.size());
  EXPECT_EQ(bulk.size(), one_by_one.size());
  EXPECT_EQ(bulk.encoded_size_bytes(), one_by_one.encoded_size_bytes());
  EXPECT_EQ(bulk.CountOfType(EventType::kSharedRead),
            one_by_one.CountOfType(EventType::kSharedRead));
  EXPECT_EQ(bulk.Encode(), one_by_one.Encode());
}

TEST(EventLogTest, EncodeDecodeRoundtrip) {
  EventLog log;
  for (uint64_t i = 0; i < 50; ++i) {
    log.Append(MakeEvent(i % 2 == 0 ? EventType::kSharedWrite : EventType::kInput,
                         i, static_cast<uint32_t>(i)));
  }
  auto decoded = EventLog::Decode(log.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(decoded->events()[i].SemanticHash(), log.events()[i].SemanticHash());
    EXPECT_EQ(decoded->events()[i].seq, log.events()[i].seq);
  }
  EXPECT_EQ(decoded->encoded_size_bytes(), log.encoded_size_bytes());
}

TEST(EventLogTest, DecodeRejectsGarbage) {
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5};
  EXPECT_FALSE(EventLog::Decode(garbage).ok());
}

TEST(EventLogTest, DecodeRejectsTruncation) {
  EventLog log;
  for (uint64_t i = 0; i < 10; ++i) {
    log.Append(MakeEvent(EventType::kInput, i));
  }
  std::vector<uint8_t> bytes = log.Encode();
  // Every proper prefix must fail cleanly with a Status, never crash.
  for (size_t keep = 0; keep < bytes.size(); keep += 7) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + keep);
    EXPECT_FALSE(EventLog::Decode(truncated).ok()) << "prefix " << keep;
  }
}

TEST(EventLogTest, DecodeRejectsTrailingBytes) {
  EventLog log;
  log.Append(MakeEvent(EventType::kOutput, 1));
  std::vector<uint8_t> bytes = log.Encode();
  bytes.push_back(0x00);
  EXPECT_FALSE(EventLog::Decode(bytes).ok());
}

TEST(EventLogTest, DecodeRejectsOverstatedCount) {
  // Header claims more events than the payload carries: must error out
  // when the stream runs dry, not read past the end.
  Encoder encoder;
  encoder.PutFixed32(0x6464524cu);  // event-log magic
  encoder.PutVarint64(1u << 20);
  EventLog log;
  log.Append(MakeEvent(EventType::kRngDraw, 1));
  const std::vector<uint8_t> one_event = log.Encode();
  // Append the single encoded event body (skip magic + count).
  Decoder skip(one_event);
  (void)skip.GetFixed32();
  (void)skip.GetVarint64();
  const size_t body_offset = one_event.size() - skip.remaining();
  std::vector<uint8_t> bytes = encoder.TakeBuffer();
  bytes.insert(bytes.end(), one_event.begin() + body_offset, one_event.end());
  EXPECT_FALSE(EventLog::Decode(bytes).ok());
}

TEST(EventLogTest, EventsOfTypeFilters) {
  EventLog log;
  log.Append(MakeEvent(EventType::kOutput, 1));
  log.Append(MakeEvent(EventType::kInput, 2));
  log.Append(MakeEvent(EventType::kOutput, 3));
  const auto outputs = log.EventsOfType(EventType::kOutput);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[0].seq, 1u);
  EXPECT_EQ(outputs[1].seq, 3u);
}

class RecorderFilterTest : public ::testing::Test {
 protected:
  RecorderFilterTest() : env_(Environment::Options{}) {}

  // Feeds one event of each class and returns the recorded count.
  uint64_t FeedAll(Recorder& recorder) {
    recorder.AttachEnvironment(&env_);
    for (EventType type :
         {EventType::kContextSwitch, EventType::kMutexLock, EventType::kSharedRead,
          EventType::kSharedWrite, EventType::kInput, EventType::kOutput,
          EventType::kRngDraw, EventType::kChannelSend, EventType::kDiskWrite,
          EventType::kFiberCreate, EventType::kAnnotation}) {
      recorder.OnEvent(MakeEvent(type));
    }
    return recorder.recorded_events();
  }

  Environment env_;
};

TEST_F(RecorderFilterTest, PerfectRecordsEverything) {
  PerfectRecorder recorder;
  EXPECT_EQ(FeedAll(recorder), 11u);
  EXPECT_EQ(recorder.intercepted_events(), 11u);
}

TEST_F(RecorderFilterTest, ValueRecordsValuesAndSchedule) {
  ValueRecorder recorder;
  EXPECT_EQ(FeedAll(recorder), 7u);  // switch, lock, read, write, input, rng, create
  EXPECT_EQ(recorder.log().CountOfType(EventType::kOutput), 0u);
  EXPECT_EQ(recorder.log().CountOfType(EventType::kChannelSend), 0u);
  EXPECT_EQ(recorder.log().CountOfType(EventType::kSharedRead), 1u);
}

TEST_F(RecorderFilterTest, OutputOnlyRecordsJustOutputs) {
  OutputRecorder recorder(OutputRecorder::Mode::kOutputsOnly);
  EXPECT_EQ(FeedAll(recorder), 1u);
  EXPECT_EQ(recorder.intercepted_events(), 1u);  // hooks only on outputs
  EXPECT_EQ(recorder.log().CountOfType(EventType::kOutput), 1u);
}

TEST_F(RecorderFilterTest, OdrHeavyRecordsInputsOutputsSync) {
  OutputRecorder recorder(OutputRecorder::Mode::kOdrHeavy);
  EXPECT_EQ(FeedAll(recorder), 4u);  // lock, input, output, fiber-create
  EXPECT_EQ(recorder.log().CountOfType(EventType::kContextSwitch), 0u)
      << "ODR does not record the causal order of racing accesses";
  EXPECT_EQ(recorder.log().CountOfType(EventType::kSharedRead), 0u);
}

TEST_F(RecorderFilterTest, FailureRecordsNothing) {
  FailureRecorder recorder;
  EXPECT_EQ(FeedAll(recorder), 0u);
  EXPECT_EQ(recorder.intercepted_events(), 0u);
  EXPECT_EQ(env_.recording_overhead_nanos(), 0);
}

TEST_F(RecorderFilterTest, OverheadLedgerChargesInterceptionAndWrites) {
  ValueRecorder recorder;
  recorder.AttachEnvironment(&env_);
  recorder.OnEvent(MakeEvent(EventType::kOutput));  // intercepted, not recorded
  const SimDuration after_skip = env_.recording_overhead_nanos();
  EXPECT_EQ(after_skip, recorder.costs().interposition_cost);
  recorder.OnEvent(MakeEvent(EventType::kSharedRead));  // recorded
  EXPECT_GT(env_.recording_overhead_nanos(),
            after_skip + recorder.costs().log_event_cost);
  EXPECT_GT(env_.recorded_bytes(), 0u);
}

TEST(SelectiveRecorderTest, RelaxedUsesPredicateFullUsesValueSet) {
  Environment env(Environment::Options{});
  SelectiveRecorder recorder(
      "sel", [](const Event& event) { return event.region == 2; });
  recorder.AttachEnvironment(&env);

  // Relaxed: data-plane memory event not recorded, control-plane one is.
  recorder.OnEvent(MakeEvent(EventType::kSharedRead, 1, 8, /*region=*/1));
  EXPECT_EQ(recorder.recorded_events(), 0u);
  recorder.OnEvent(MakeEvent(EventType::kSharedRead, 2, 8, /*region=*/2));
  EXPECT_EQ(recorder.recorded_events(), 1u);

  // Skeleton always recorded regardless of region.
  recorder.OnEvent(MakeEvent(EventType::kContextSwitch, 3));
  recorder.OnEvent(MakeEvent(EventType::kRngDraw, 4));
  EXPECT_EQ(recorder.recorded_events(), 3u);

  // Dial up: memory everywhere, but not message payloads.
  recorder.SetLevel(FidelityLevel::kFull);
  recorder.OnEvent(MakeEvent(EventType::kSharedRead, 5, 8, /*region=*/1));
  EXPECT_EQ(recorder.recorded_events(), 4u);
  recorder.OnEvent(MakeEvent(EventType::kChannelSend, 6, 4096, /*region=*/1));
  EXPECT_EQ(recorder.recorded_events(), 4u)
      << "payloads re-derive from inputs+schedule even at full fidelity";
}

TEST(SnapshotTest, FromOutcomeAndMatch) {
  Outcome outcome;
  FailureInfo failure;
  failure.kind = FailureKind::kSpecViolation;
  failure.message = "dump missing rows";
  failure.node = 3;
  outcome.failures.push_back(failure);
  outcome.output_fingerprint = 777;

  FailureSnapshot snapshot = FailureSnapshot::FromOutcome(outcome);
  EXPECT_TRUE(snapshot.has_failure);
  EXPECT_TRUE(snapshot.MatchesFailureOf(outcome));

  Outcome other;
  EXPECT_FALSE(snapshot.MatchesFailureOf(other));  // no failure
  FailureInfo different = failure;
  different.message = "something else";
  other.failures.push_back(different);
  EXPECT_FALSE(snapshot.MatchesFailureOf(other));

  // Same failure identity reached at a different time/fiber still matches.
  Outcome same;
  FailureInfo again = failure;
  again.time = 999;
  again.fiber = 17;
  same.failures.push_back(again);
  EXPECT_TRUE(snapshot.MatchesFailureOf(same));
}

TEST(SnapshotTest, NoFailureSnapshotMatchesCleanRuns) {
  Outcome clean;
  FailureSnapshot snapshot = FailureSnapshot::FromOutcome(clean);
  EXPECT_FALSE(snapshot.has_failure);
  EXPECT_TRUE(snapshot.MatchesFailureOf(clean));
  Outcome failed;
  failed.failures.push_back({FailureKind::kCrash, "x", 0, 0, 0, 0, 0});
  EXPECT_FALSE(snapshot.MatchesFailureOf(failed));
}

TEST(SnapshotTest, EncodeDecodeRoundtrip) {
  Outcome outcome;
  FailureInfo failure;
  failure.kind = FailureKind::kOom;
  failure.message = "oom on node0";
  failure.node = 1;
  outcome.failures.push_back(failure);
  outcome.output_fingerprint = 12345;
  outcome.outputs.push_back({0, 1, 8, 0});

  FailureSnapshot snapshot = FailureSnapshot::FromOutcome(outcome);
  auto decoded = FailureSnapshot::Decode(snapshot.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->failure_fingerprint, snapshot.failure_fingerprint);
  EXPECT_EQ(decoded->message, snapshot.message);
  EXPECT_EQ(decoded->output_fingerprint, snapshot.output_fingerprint);
  EXPECT_EQ(decoded->output_count, 1u);
}

TEST(RecordedExecutionTest, OverheadMultiplier) {
  RecordedExecution recording;
  recording.cpu_nanos = 1000;
  recording.overhead_nanos = 2500;
  EXPECT_DOUBLE_EQ(recording.OverheadMultiplier(), 3.5);
  recording.cpu_nanos = 0;
  EXPECT_DOUBLE_EQ(recording.OverheadMultiplier(), 1.0);
}

// Recording must never perturb the execution: identical fingerprints with
// and without a recorder attached, for every model.
TEST(RecorderNonPerturbationTest, FingerprintUnchangedByRecording) {
  auto run = [](Recorder* recorder) {
    Environment::Options options;
    options.seed = 31;
    options.scheduling.preempt_probability = 0.2;
    Environment env(options);
    if (recorder != nullptr) {
      recorder->AttachEnvironment(&env);
      env.AddTraceSink(recorder);
    }
    return env
        .Run("perturb",
             [](Environment& e) {
               SharedVar<uint64_t> x(e, "x", 0);
               SimMutex mu(e, "mu");
               std::vector<FiberId> fibers;
               for (int i = 0; i < 3; ++i) {
                 fibers.push_back(e.Spawn("f" + std::to_string(i), [&] {
                   for (int k = 0; k < 10; ++k) {
                     SimLock lock(mu);
                     x.Store(x.Load() + 1);
                   }
                 }));
               }
               for (FiberId f : fibers) {
                 e.Join(f);
               }
               e.EmitOutput(x.Load());
             })
        .trace_fingerprint;
  };

  const uint64_t baseline = run(nullptr);
  PerfectRecorder perfect;
  EXPECT_EQ(run(&perfect), baseline);
  ValueRecorder value;
  EXPECT_EQ(run(&value), baseline);
  OutputRecorder output(OutputRecorder::Mode::kOutputsOnly);
  EXPECT_EQ(run(&output), baseline);
  FailureRecorder failure;
  EXPECT_EQ(run(&failure), baseline);
}

}  // namespace
}  // namespace ddr
