// Tests for DDRC corpus bundles (src/trace/corpus.h), the scenario
// registry, and the BatchRunner / ReplayCorpus pipeline.
//
// The acceptance properties: a corpus packs many named recordings into one
// indexed, CRC-checked file whose entries round-trip exactly; BatchRunner
// with N threads produces the same deterministic rows as 1 thread; and
// replaying a corpus from disk scores identically to the in-memory
// record->replay path.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/scenarios.h"
#include "src/core/batch_runner.h"
#include "src/core/experiment.h"
#include "src/trace/chunk_cache.h"
#include "src/trace/corpus.h"
#include "src/trace/trace_writer.h"
#include "src/util/random_access_file.h"
#include "src/util/rng.h"

namespace ddr {
namespace {

const IoBackend kAllBackends[] = {IoBackend::kStream, IoBackend::kPread,
                                  IoBackend::kMmap};

CorpusReaderOptions WithBackend(IoBackend backend, uint64_t cache_bytes) {
  CorpusReaderOptions options;
  options.io.backend = backend;
  options.cache_bytes = cache_bytes;
  return options;
}

class ScopedPath {
 public:
  explicit ScopedPath(const std::string& tag)
      : path_("corpus_test_" + tag + ".ddrc") {}
  ~ScopedPath() { std::remove(path_.c_str()); }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

RecordedExecution MakeSyntheticRecording(uint64_t num_events,
                                         uint64_t seed = 7) {
  RecordedExecution recording;
  recording.model = "synthetic";
  Rng rng(seed);
  for (uint64_t seq = 0; seq < num_events; ++seq) {
    Event event;
    event.seq = seq;
    event.time = seq * 13;
    event.fiber = static_cast<FiberId>(seq % 3);
    event.obj = 2 + seq % 5;
    event.value = rng.NextIndex(1 << 18);
    event.type = seq % 2 == 0 ? EventType::kSharedRead : EventType::kRngDraw;
    recording.log.Append(event);
  }
  recording.recorded_events = num_events;
  recording.intercepted_events = num_events;
  recording.recorded_bytes = recording.log.encoded_size_bytes();
  recording.cpu_nanos = 500;
  recording.overhead_nanos = 70;
  return recording;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ----------------------------------------------------------------- Corpus

TEST(CorpusTest, EmptyCorpusRoundtrips) {
  ScopedPath path("empty");
  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_TRUE(corpus->entries().empty());
  EXPECT_TRUE(corpus->VerifyAll().ok());
  EXPECT_EQ(corpus->Find("anything"), nullptr);
}

TEST(CorpusTest, SingleRecordingRoundtripsEveryField) {
  const RecordedExecution recording = MakeSyntheticRecording(700);
  ScopedPath path("single");
  TraceWriteOptions options;
  options.events_per_chunk = 128;
  options.checkpoint_interval = 200;
  options.scenario = "synthetic-scenario";
  options.original_wall_seconds = 1.25;

  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Add("bugs/one", recording, options).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 1u);
  const CorpusEntry& entry = corpus->entries()[0];
  EXPECT_EQ(entry.name, "bugs/one");
  EXPECT_EQ(entry.model, "synthetic");
  EXPECT_EQ(entry.scenario, "synthetic-scenario");
  EXPECT_EQ(entry.event_count, 700u);
  EXPECT_DOUBLE_EQ(entry.original_wall_seconds, 1.25);

  double wall = 0.0;
  auto loaded = corpus->LoadRecording("bugs/one", &wall);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_DOUBLE_EQ(wall, 1.25);
  ASSERT_EQ(loaded->log.size(), recording.log.size());
  for (size_t i = 0; i < recording.log.size(); ++i) {
    EXPECT_EQ(loaded->log.events()[i].SemanticHash(),
              recording.log.events()[i].SemanticHash());
  }
  EXPECT_EQ(loaded->recorded_bytes, recording.recorded_bytes);
  EXPECT_EQ(loaded->intercepted_events, recording.intercepted_events);

  // The embedded trace is a full TraceReader: partial reads and checkpoint
  // access work through the corpus window.
  auto trace = corpus->OpenTrace(entry);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->total_events(), 700u);
  EXPECT_FALSE(trace->checkpoints().empty());
  auto mid = trace->ReadEvents(300, 10);
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid->size(), 10u);
  EXPECT_EQ((*mid)[0].SemanticHash(),
            recording.log.events()[300].SemanticHash());

  EXPECT_TRUE(corpus->VerifyAll().ok());
}

TEST(CorpusTest, StreamingAddMatchesBufferedAdd) {
  const RecordedExecution recording = MakeSyntheticRecording(500);
  TraceWriteOptions options;
  options.events_per_chunk = 64;

  ScopedPath buffered("buffered");
  {
    CorpusWriter writer(buffered.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("r", recording, options).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  // Same recording streamed in odd-sized batches: identical file bytes.
  ScopedPath streamed("streamed");
  {
    CorpusWriter writer(streamed.get());
    ASSERT_TRUE(writer.Begin().ok());
    auto stream = writer.BeginRecording("r", options);
    ASSERT_TRUE(stream.ok()) << stream.status();
    const std::vector<Event>& events = recording.log.events();
    for (size_t i = 0; i < events.size();) {
      const size_t batch = std::min<size_t>(1 + i % 37, events.size() - i);
      ASSERT_TRUE((*stream)->AppendEvents(events.data() + i, batch).ok());
      i += batch;
    }
    ASSERT_TRUE(writer.FinishRecording(FinishInfoFor(recording)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  EXPECT_EQ(ReadFileBytes(buffered.get()), ReadFileBytes(streamed.get()));
}

TEST(CorpusTest, DuplicateNamesRejected) {
  const RecordedExecution recording = MakeSyntheticRecording(50);
  ScopedPath path("dup");
  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Add("same", recording).ok());
  const Status duplicate = writer.Add("same", recording);
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(writer.Add("different", recording).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->entries().size(), 2u);
}

TEST(CorpusTest, AtomicWriteLeavesNoPartialFile) {
  const RecordedExecution recording = MakeSyntheticRecording(50);
  ScopedPath path("atomic");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("r", recording).ok());
    // No Finish: the bundle must not appear at the target path (the
    // sink's own temp-file cleanup is covered by
    // TraceWriterTest.AbandonedSinkRemovesItsTempFile).
  }
  std::ifstream target(path.get(), std::ios::binary);
  EXPECT_FALSE(target.good());
}

// Every backend must fail identically on damaged bundles: corruption and
// truncation always surface as a Status, never as garbage events — under
// mmap just as under the buffered stream path.
TEST(CorpusTest, DetectsCorruptionAndTruncationOnEveryBackend) {
  ScopedPath path("corrupt");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("a", MakeSyntheticRecording(300, 1)).ok());
    ASSERT_TRUE(writer.Add("b", MakeSyntheticRecording(300, 2)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  const std::vector<uint8_t> image = ReadFileBytes(path.get());

  for (IoBackend backend : kAllBackends) {
    const CorpusReaderOptions options = WithBackend(backend, 1 << 20);

    // A flipped byte inside an embedded trace: the index still opens, but
    // verification of that entry fails.
    {
      std::vector<uint8_t> bad = image;
      bad[bad.size() / 3] ^= 0x20;
      WriteFileBytes(path.get(), bad);
      auto corpus = CorpusReader::Open(path.get(), options);
      ASSERT_TRUE(corpus.ok()) << corpus.status();
      EXPECT_FALSE(corpus->VerifyAll().ok()) << IoBackendName(backend);
    }

    // A flipped byte inside the index section (just before the trailer):
    // Open itself fails on the index CRC.
    {
      std::vector<uint8_t> bad = image;
      bad[bad.size() - kCorpusTrailerBytes - 4] ^= 0x40;
      WriteFileBytes(path.get(), bad);
      EXPECT_FALSE(CorpusReader::Open(path.get(), options).ok())
          << IoBackendName(backend);
    }

    // Truncations: the trailer (and with it the index) is gone, so Open
    // fails cleanly at every cut point.
    for (size_t keep = 0; keep < image.size(); keep += image.size() / 13 + 1) {
      WriteFileBytes(path.get(),
                     std::vector<uint8_t>(image.begin(), image.begin() + keep));
      EXPECT_FALSE(CorpusReader::Open(path.get(), options).ok())
          << IoBackendName(backend) << " prefix " << keep;
    }
  }
}

// All three I/O backends decode the same DDRC bundle to bit-identical
// event logs, with VerifyAll green everywhere — zero-copy mmap reads are
// not allowed to change a single decoded byte.
TEST(CorpusTest, BackendsDecodeBitIdentically) {
  ScopedPath path("backends");
  TraceWriteOptions delta;
  delta.events_per_chunk = 128;
  delta.chunk_filter = TraceFilter::kVarintDelta;
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("row/a", MakeSyntheticRecording(700, 1)).ok());
    ASSERT_TRUE(writer.Add("col/b", MakeSyntheticRecording(900, 2), delta).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  std::vector<std::vector<uint8_t>> logs_by_backend;
  for (IoBackend backend : kAllBackends) {
    auto corpus =
        CorpusReader::Open(path.get(), WithBackend(backend, 1 << 20));
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    ASSERT_EQ(corpus->io_backend(), backend);
    EXPECT_TRUE(corpus->VerifyAll().ok()) << IoBackendName(backend);

    std::vector<uint8_t> combined;
    for (const CorpusEntry& entry : corpus->entries()) {
      auto trace = corpus->OpenTrace(entry);
      ASSERT_TRUE(trace.ok()) << trace.status();
      auto log = trace->ReadAllEvents();
      ASSERT_TRUE(log.ok()) << log.status();
      const std::vector<uint8_t> encoded = log->Encode();
      combined.insert(combined.end(), encoded.begin(), encoded.end());
    }
    logs_by_backend.push_back(std::move(combined));
  }
  ASSERT_EQ(logs_by_backend.size(), 3u);
  EXPECT_EQ(logs_by_backend[0], logs_by_backend[1]);
  EXPECT_EQ(logs_by_backend[0], logs_by_backend[2]);
}

// The cache-counter truthfulness property: a warm re-read of a chunk
// already decoded through the shared cache costs exactly 0 disk bytes,
// and the hit/miss counters on reader and cache agree with that story.
TEST(CorpusTest, WarmChunkRereadCostsZeroDiskBytes) {
  ScopedPath path("warm");
  TraceWriteOptions options;
  options.events_per_chunk = 128;
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("r", MakeSyntheticRecording(1000)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  for (IoBackend backend : kAllBackends) {
    auto corpus =
        CorpusReader::Open(path.get(), WithBackend(backend, 8 << 20));
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    auto trace = corpus->OpenTrace("r");
    ASSERT_TRUE(trace.ok()) << trace.status();

    auto cold = trace->ReadEvents(300, 10);
    ASSERT_TRUE(cold.ok());
    const uint64_t cold_bytes = trace->bytes_read();
    EXPECT_EQ(trace->cache_hits(), 0u);
    EXPECT_EQ(trace->cache_misses(), 1u);

    // Warm re-read, same reader: 0 new disk bytes, one cache hit.
    auto warm = trace->ReadEvents(300, 10);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(trace->bytes_read(), cold_bytes) << IoBackendName(backend);
    EXPECT_EQ(trace->cache_hits(), 1u);

    // Warm read through a *different* window of the same corpus: the
    // chunk decode is shared, so the new window pays only its own open.
    auto window = corpus->OpenTrace("r");
    ASSERT_TRUE(window.ok());
    const uint64_t open_bytes = window->bytes_read();
    auto shared = window->ReadEvents(300, 10);
    ASSERT_TRUE(shared.ok());
    EXPECT_EQ(window->bytes_read(), open_bytes) << IoBackendName(backend);
    EXPECT_EQ(window->cache_hits(), 1u);
    ASSERT_EQ(shared->size(), cold->size());
    for (size_t i = 0; i < shared->size(); ++i) {
      EXPECT_EQ((*shared)[i].SemanticHash(), (*cold)[i].SemanticHash());
    }

    const ChunkCacheStats stats = corpus->cache_stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.insertions, 1u);
  }

  // Control: with the cache disabled, the same warm re-read pays the
  // chunk's disk bytes again.
  auto cold_corpus =
      CorpusReader::Open(path.get(), WithBackend(IoBackend::kPread, 0));
  ASSERT_TRUE(cold_corpus.ok());
  auto trace = cold_corpus->OpenTrace("r");
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->ReadEvents(300, 10).ok());
  const uint64_t first = trace->bytes_read();
  ASSERT_TRUE(trace->ReadEvents(300, 10).ok());
  EXPECT_GT(trace->bytes_read(), first);
  EXPECT_EQ(trace->cache_hits(), 0u);
}

// 8 threads replaying distinct and overlapping entries of one shared
// CorpusReader decode exactly what a single thread decodes.
TEST(CorpusTest, ConcurrentWindowsMatchSingleThreadedReads) {
  ScopedPath path("threads");
  constexpr size_t kEntries = 6;
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    for (size_t i = 0; i < kEntries; ++i) {
      ASSERT_TRUE(writer
                      .Add("entry/" + std::to_string(i),
                           MakeSyntheticRecording(400 + 50 * i, i + 1))
                      .ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }

  auto corpus =
      CorpusReader::Open(path.get(), WithBackend(IoBackend::kMmap, 16 << 20));
  ASSERT_TRUE(corpus.ok()) << corpus.status();

  // Single-threaded ground truth.
  std::vector<std::vector<uint8_t>> expected(kEntries);
  for (size_t e = 0; e < kEntries; ++e) {
    auto trace = corpus->OpenTrace(corpus->entries()[e]);
    ASSERT_TRUE(trace.ok());
    auto log = trace->ReadAllEvents();
    ASSERT_TRUE(log.ok());
    expected[e] = log->Encode();
  }

  // Distinct entries (threads partition the corpus), then overlapping
  // (every thread reads every entry, hammering the shared cache).
  for (const bool overlapping : {false, true}) {
    std::vector<int> mismatches(8, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t]() {
        for (size_t e = 0; e < kEntries; ++e) {
          if (!overlapping && e % 8 != static_cast<size_t>(t)) {
            continue;
          }
          auto trace = corpus->OpenTrace(corpus->entries()[e]);
          if (!trace.ok()) {
            ++mismatches[t];
            continue;
          }
          auto log = trace->ReadAllEvents();
          if (!log.ok() || log->Encode() != expected[e]) {
            ++mismatches[t];
          }
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < 8; ++t) {
      EXPECT_EQ(mismatches[t], 0)
          << (overlapping ? "overlapping" : "distinct") << " thread " << t;
    }
  }
  // The overlapping pass re-read every entry from 8 threads: the shared
  // cache must have served the bulk of those chunk reads.
  EXPECT_GT(corpus->cache_stats().hits, corpus->cache_stats().misses);
}

// A crafted entry whose window length wraps uint64 past the index offset
// must be rejected at Open, not reach the embedded-trace reader.
TEST(CorpusTest, CraftedEntryWindowWrapFailsCleanly) {
  ScopedPath path("wrap");
  Encoder index_payload;
  index_payload.PutVarint64(1);  // one entry
  index_payload.PutString("evil");
  index_payload.PutVarint64(16);                      // offset
  index_payload.PutVarint64(~0ull - 7);               // length: wraps the sum
  index_payload.PutString("model");
  index_payload.PutString("scenario");
  index_payload.PutVarint64(1);
  index_payload.PutDouble(0.0);

  std::vector<uint8_t> image;
  Encoder header;
  header.PutFixed32(kCorpusFileMagic);
  header.PutFixed32(kCorpusFormatVersion);
  header.PutFixed32(0);
  image = header.TakeBuffer();
  image.resize(image.size() + 64);  // fake embedded-trace bytes
  const uint64_t index_offset = AppendTraceSection(
      &image, TraceSection::kCorpusIndex, index_payload.buffer(),
      /*allow_compress=*/false);
  Encoder trailer;
  trailer.PutFixed64(index_offset);
  trailer.PutFixed32(kCorpusTrailerMagic);
  for (uint8_t byte : trailer.buffer()) {
    image.push_back(byte);
  }
  WriteFileBytes(path.get(), image);

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument);
}

// A crafted index whose entry count vastly exceeds what its payload can
// hold must fail with a Status in the guard, not abort inside the
// entries allocation.
TEST(CorpusTest, CraftedIndexCountFailsCleanly) {
  ScopedPath path("crafted");
  Encoder index_payload;
  index_payload.PutVarint64(1u << 28);  // claimed entries, ~4-byte payload

  std::vector<uint8_t> image;
  Encoder header;
  header.PutFixed32(kCorpusFileMagic);
  header.PutFixed32(kCorpusFormatVersion);
  header.PutFixed32(0);
  image = header.TakeBuffer();
  const uint64_t index_offset = AppendTraceSection(
      &image, TraceSection::kCorpusIndex, index_payload.buffer(),
      /*allow_compress=*/false);
  Encoder trailer;
  trailer.PutFixed64(index_offset);
  trailer.PutFixed32(kCorpusTrailerMagic);
  for (uint8_t byte : trailer.buffer()) {
    image.push_back(byte);
  }
  WriteFileBytes(path.get(), image);

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- Registry

TEST(ScenarioRegistryTest, EnumeratesAllScenariosUniquely) {
  const std::vector<BugScenario> scenarios = AllBugScenarios();
  ASSERT_EQ(scenarios.size(), 4u);
  std::vector<std::string> names;
  for (const BugScenario& scenario : scenarios) {
    names.push_back(scenario.name);
    EXPECT_NE(scenario.make_program, nullptr);
    auto found = FindBugScenario(scenario.name);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found->name, scenario.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::unique(names.begin(), names.end()) == names.end());
  EXPECT_EQ(FindBugScenario("no-such-bug").status().code(),
            StatusCode::kNotFound);
}

TEST(ScenarioRegistryTest, ParseDeterminismModelRoundtrips) {
  for (DeterminismModel model : AllDeterminismModels()) {
    auto parsed = ParseDeterminismModel(DeterminismModelName(model));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, model);
  }
  // Recorder model-name strings map back too.
  for (const char* name : {"rcse-code", "rcse-combined", "rcse-data", "rcse",
                           "debug-rcse"}) {
    auto parsed = ParseDeterminismModel(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, DeterminismModel::kDebugRcse);
  }
  EXPECT_FALSE(ParseDeterminismModel("quantum").ok());
}

// ------------------------------------------------------------ BatchRunner

std::vector<BugScenario> FastScenarios() {
  std::vector<BugScenario> scenarios;
  scenarios.push_back(MakeSumScenario());
  scenarios.push_back(MakeOverflowScenario());
  return scenarios;
}

TEST(BatchRunnerTest, ParallelRowsMatchSequentialRows) {
  BatchOptions sequential;
  sequential.threads = 1;
  sequential.models = {DeterminismModel::kPerfect, DeterminismModel::kValue,
                       DeterminismModel::kFailure};
  BatchOptions parallel = sequential;
  parallel.threads = 4;

  auto seq_report = BatchRunner(FastScenarios(), sequential).Run();
  ASSERT_TRUE(seq_report.ok()) << seq_report.status();
  auto par_report = BatchRunner(FastScenarios(), parallel).Run();
  ASSERT_TRUE(par_report.ok()) << par_report.status();

  ASSERT_EQ(seq_report->cells.size(), 6u);
  ASSERT_EQ(par_report->cells.size(), seq_report->cells.size());
  for (size_t i = 0; i < seq_report->cells.size(); ++i) {
    EXPECT_EQ(RowSignature(par_report->cells[i]),
              RowSignature(seq_report->cells[i]))
        << "cell " << i;
  }
}

TEST(BatchRunnerTest, WritesCorpusAndReportEndToEnd) {
  ScopedPath corpus_path("batch");
  BatchOptions options;
  options.threads = 4;
  options.models = {DeterminismModel::kPerfect, DeterminismModel::kFailure};
  options.corpus_path = corpus_path.get();
  options.trace_options.events_per_chunk = 64;
  options.trace_options.chunk_filter = TraceFilter::kVarintDelta;

  auto report = BatchRunner(FastScenarios(), options).Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->cells.size(), 4u);

  auto corpus = CorpusReader::Open(corpus_path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 4u);
  EXPECT_TRUE(corpus->VerifyAll().ok());
  for (size_t i = 0; i < report->cells.size(); ++i) {
    EXPECT_EQ(corpus->entries()[i].name, report->cells[i].recording_name);
    EXPECT_EQ(corpus->entries()[i].scenario, report->cells[i].scenario);
  }

  // The machine-readable report has one JSON object per cell.
  const std::string json = report->ToJsonLines();
  size_t lines = 0;
  for (char c : json) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, report->cells.size());
  EXPECT_NE(json.find("\"scenario\":\"sum\""), std::string::npos);
}

// Replaying the corpus from disk scores identically to the in-memory
// record -> replay pipeline (the PR's acceptance property).
TEST(BatchRunnerTest, CorpusReplayMatchesInMemoryRows) {
  ScopedPath corpus_path("replaymatch");
  BatchOptions options;
  options.threads = 2;
  options.models = {DeterminismModel::kPerfect, DeterminismModel::kValue,
                    DeterminismModel::kFailure, DeterminismModel::kDebugRcse};
  options.corpus_path = corpus_path.get();

  auto built = BatchRunner(FastScenarios(), options).Run();
  ASSERT_TRUE(built.ok()) << built.status();

  auto replayed = ReplayCorpus(corpus_path.get(), FastScenarios(),
                               /*threads=*/4);
  ASSERT_TRUE(replayed.ok()) << replayed.status();

  ASSERT_EQ(replayed->cells.size(), built->cells.size());
  for (size_t i = 0; i < built->cells.size(); ++i) {
    EXPECT_EQ(RowSignature(replayed->cells[i]), RowSignature(built->cells[i]))
        << "cell " << i;
  }
}

// The serve path at full concurrency: 8 workers sharing one CorpusReader
// handle and one decoded-chunk cache produce the same deterministic row
// signatures as a single worker on the cold stream backend — for every
// I/O backend.
TEST(BatchRunnerTest, SharedReaderParallelReplayMatchesAcrossBackends) {
  ScopedPath corpus_path("sharedreplay");
  BatchOptions options;
  options.threads = 2;
  options.models = {DeterminismModel::kPerfect, DeterminismModel::kValue,
                    DeterminismModel::kFailure};
  options.corpus_path = corpus_path.get();
  options.trace_options.chunk_filter = TraceFilter::kVarintDelta;
  auto built = BatchRunner(FastScenarios(), options).Run();
  ASSERT_TRUE(built.ok()) << built.status();

  // Baseline: sequential, buffered stream, no cache.
  ReplayCorpusOptions baseline;
  baseline.threads = 1;
  baseline.reader = WithBackend(IoBackend::kStream, 0);
  auto sequential = ReplayCorpus(corpus_path.get(), FastScenarios(), baseline);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  ASSERT_EQ(sequential->cells.size(), 6u);
  EXPECT_EQ(sequential->io_backend, "stream");
  EXPECT_EQ(sequential->cache_stats.hits, 0u);
  EXPECT_GT(sequential->corpus_bytes_read, 0u);

  for (IoBackend backend : kAllBackends) {
    ReplayCorpusOptions parallel;
    parallel.threads = 8;
    parallel.reader = WithBackend(backend, 32 << 20);
    auto replayed = ReplayCorpus(corpus_path.get(), FastScenarios(), parallel);
    ASSERT_TRUE(replayed.ok()) << replayed.status();
    ASSERT_EQ(replayed->cells.size(), sequential->cells.size());
    for (size_t i = 0; i < sequential->cells.size(); ++i) {
      EXPECT_EQ(RowSignature(replayed->cells[i]),
                RowSignature(sequential->cells[i]))
          << IoBackendName(backend) << " cell " << i;
    }
    EXPECT_EQ(replayed->io_backend, IoBackendName(backend));
  }
}

// A harness can stream a live recording directly into a corpus entry:
// RecordStreaming hands back the finish info and the corpus owns the
// writer lifecycle.
TEST(BatchRunnerTest, HarnessStreamsDirectlyIntoCorpus) {
  BugScenario scenario = MakeSumScenario();
  ExperimentHarness harness(scenario);
  ASSERT_TRUE(harness.Prepare().ok());

  ScopedPath path("streamed_entry");
  CorpusWriter corpus(path.get());
  ASSERT_TRUE(corpus.Begin().ok());
  auto writer = corpus.BeginRecording("sum/streamed");
  ASSERT_TRUE(writer.ok()) << writer.status();
  auto info = harness.RecordStreaming(DeterminismModel::kPerfect, *writer);
  ASSERT_TRUE(info.ok()) << info.status();
  ASSERT_TRUE(corpus.FinishRecording(*info).ok());
  ASSERT_TRUE(corpus.Finish().ok());

  auto reader = CorpusReader::Open(path.get());
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->entries().size(), 1u);
  EXPECT_EQ(reader->entries()[0].scenario, "sum");
  EXPECT_EQ(reader->entries()[0].model, "perfect");
  EXPECT_TRUE(reader->VerifyAll().ok());

  // The streamed entry replays like any other recording.
  auto replayed = ReplayCorpus(path.get(), AllBugScenarios());
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ASSERT_EQ(replayed->cells.size(), 1u);
  EXPECT_TRUE(replayed->cells[0].row.failure_reproduced);
}

TEST(BatchRunnerTest, ReplayCorpusRejectsUnknownScenario) {
  const RecordedExecution recording = MakeSyntheticRecording(20);
  ScopedPath path("unknown");
  TraceWriteOptions options;
  options.scenario = "not-a-registered-scenario";
  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Add("x", recording, options).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto replayed = ReplayCorpus(path.get(), AllBugScenarios());
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ddr
