// Tests for DDRC corpus bundles (src/trace/corpus.h), the scenario
// registry, and the BatchRunner / ReplayCorpus pipeline.
//
// The acceptance properties: a corpus packs many named recordings into one
// indexed, CRC-checked file whose entries round-trip exactly; BatchRunner
// with N threads produces the same deterministic rows as 1 thread; and
// replaying a corpus from disk scores identically to the in-memory
// record->replay path.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/apps/scenarios.h"
#include "src/core/batch_runner.h"
#include "src/core/experiment.h"
#include "src/trace/corpus.h"
#include "src/trace/trace_writer.h"
#include "src/util/rng.h"

namespace ddr {
namespace {

class ScopedPath {
 public:
  explicit ScopedPath(const std::string& tag)
      : path_("corpus_test_" + tag + ".ddrc") {}
  ~ScopedPath() { std::remove(path_.c_str()); }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

RecordedExecution MakeSyntheticRecording(uint64_t num_events,
                                         uint64_t seed = 7) {
  RecordedExecution recording;
  recording.model = "synthetic";
  Rng rng(seed);
  for (uint64_t seq = 0; seq < num_events; ++seq) {
    Event event;
    event.seq = seq;
    event.time = seq * 13;
    event.fiber = static_cast<FiberId>(seq % 3);
    event.obj = 2 + seq % 5;
    event.value = rng.NextIndex(1 << 18);
    event.type = seq % 2 == 0 ? EventType::kSharedRead : EventType::kRngDraw;
    recording.log.Append(event);
  }
  recording.recorded_events = num_events;
  recording.intercepted_events = num_events;
  recording.recorded_bytes = recording.log.encoded_size_bytes();
  recording.cpu_nanos = 500;
  recording.overhead_nanos = 70;
  return recording;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ----------------------------------------------------------------- Corpus

TEST(CorpusTest, EmptyCorpusRoundtrips) {
  ScopedPath path("empty");
  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_TRUE(corpus->entries().empty());
  EXPECT_TRUE(corpus->VerifyAll().ok());
  EXPECT_EQ(corpus->Find("anything"), nullptr);
}

TEST(CorpusTest, SingleRecordingRoundtripsEveryField) {
  const RecordedExecution recording = MakeSyntheticRecording(700);
  ScopedPath path("single");
  TraceWriteOptions options;
  options.events_per_chunk = 128;
  options.checkpoint_interval = 200;
  options.scenario = "synthetic-scenario";
  options.original_wall_seconds = 1.25;

  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Add("bugs/one", recording, options).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 1u);
  const CorpusEntry& entry = corpus->entries()[0];
  EXPECT_EQ(entry.name, "bugs/one");
  EXPECT_EQ(entry.model, "synthetic");
  EXPECT_EQ(entry.scenario, "synthetic-scenario");
  EXPECT_EQ(entry.event_count, 700u);
  EXPECT_DOUBLE_EQ(entry.original_wall_seconds, 1.25);

  double wall = 0.0;
  auto loaded = corpus->LoadRecording("bugs/one", &wall);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_DOUBLE_EQ(wall, 1.25);
  ASSERT_EQ(loaded->log.size(), recording.log.size());
  for (size_t i = 0; i < recording.log.size(); ++i) {
    EXPECT_EQ(loaded->log.events()[i].SemanticHash(),
              recording.log.events()[i].SemanticHash());
  }
  EXPECT_EQ(loaded->recorded_bytes, recording.recorded_bytes);
  EXPECT_EQ(loaded->intercepted_events, recording.intercepted_events);

  // The embedded trace is a full TraceReader: partial reads and checkpoint
  // access work through the corpus window.
  auto trace = corpus->OpenTrace(entry);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->total_events(), 700u);
  EXPECT_FALSE(trace->checkpoints().empty());
  auto mid = trace->ReadEvents(300, 10);
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid->size(), 10u);
  EXPECT_EQ((*mid)[0].SemanticHash(),
            recording.log.events()[300].SemanticHash());

  EXPECT_TRUE(corpus->VerifyAll().ok());
}

TEST(CorpusTest, StreamingAddMatchesBufferedAdd) {
  const RecordedExecution recording = MakeSyntheticRecording(500);
  TraceWriteOptions options;
  options.events_per_chunk = 64;

  ScopedPath buffered("buffered");
  {
    CorpusWriter writer(buffered.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("r", recording, options).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  // Same recording streamed in odd-sized batches: identical file bytes.
  ScopedPath streamed("streamed");
  {
    CorpusWriter writer(streamed.get());
    ASSERT_TRUE(writer.Begin().ok());
    auto stream = writer.BeginRecording("r", options);
    ASSERT_TRUE(stream.ok()) << stream.status();
    const std::vector<Event>& events = recording.log.events();
    for (size_t i = 0; i < events.size();) {
      const size_t batch = std::min<size_t>(1 + i % 37, events.size() - i);
      ASSERT_TRUE((*stream)->AppendEvents(events.data() + i, batch).ok());
      i += batch;
    }
    ASSERT_TRUE(writer.FinishRecording(FinishInfoFor(recording)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  EXPECT_EQ(ReadFileBytes(buffered.get()), ReadFileBytes(streamed.get()));
}

TEST(CorpusTest, DuplicateNamesRejected) {
  const RecordedExecution recording = MakeSyntheticRecording(50);
  ScopedPath path("dup");
  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Add("same", recording).ok());
  const Status duplicate = writer.Add("same", recording);
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(writer.Add("different", recording).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->entries().size(), 2u);
}

TEST(CorpusTest, AtomicWriteLeavesNoPartialFile) {
  const RecordedExecution recording = MakeSyntheticRecording(50);
  ScopedPath path("atomic");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("r", recording).ok());
    // No Finish: the bundle must not appear at the target path (the
    // sink's own temp-file cleanup is covered by
    // TraceWriterTest.AbandonedSinkRemovesItsTempFile).
  }
  std::ifstream target(path.get(), std::ios::binary);
  EXPECT_FALSE(target.good());
}

TEST(CorpusTest, DetectsCorruptionAndTruncation) {
  ScopedPath path("corrupt");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("a", MakeSyntheticRecording(300, 1)).ok());
    ASSERT_TRUE(writer.Add("b", MakeSyntheticRecording(300, 2)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  const std::vector<uint8_t> image = ReadFileBytes(path.get());

  // A flipped byte inside an embedded trace: the index still opens, but
  // verification of that entry fails.
  {
    std::vector<uint8_t> bad = image;
    bad[bad.size() / 3] ^= 0x20;
    WriteFileBytes(path.get(), bad);
    auto corpus = CorpusReader::Open(path.get());
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    EXPECT_FALSE(corpus->VerifyAll().ok());
  }

  // A flipped byte inside the index section (just before the trailer):
  // Open itself fails on the index CRC.
  {
    std::vector<uint8_t> bad = image;
    bad[bad.size() - kCorpusTrailerBytes - 4] ^= 0x40;
    WriteFileBytes(path.get(), bad);
    EXPECT_FALSE(CorpusReader::Open(path.get()).ok());
  }

  // Truncations: the trailer (and with it the index) is gone, so Open
  // fails cleanly at every cut point.
  for (size_t keep = 0; keep < image.size(); keep += image.size() / 13 + 1) {
    WriteFileBytes(path.get(),
                   std::vector<uint8_t>(image.begin(), image.begin() + keep));
    EXPECT_FALSE(CorpusReader::Open(path.get()).ok()) << "prefix " << keep;
  }
}

// A crafted entry whose window length wraps uint64 past the index offset
// must be rejected at Open, not reach the embedded-trace reader.
TEST(CorpusTest, CraftedEntryWindowWrapFailsCleanly) {
  ScopedPath path("wrap");
  Encoder index_payload;
  index_payload.PutVarint64(1);  // one entry
  index_payload.PutString("evil");
  index_payload.PutVarint64(16);                      // offset
  index_payload.PutVarint64(~0ull - 7);               // length: wraps the sum
  index_payload.PutString("model");
  index_payload.PutString("scenario");
  index_payload.PutVarint64(1);
  index_payload.PutDouble(0.0);

  std::vector<uint8_t> image;
  Encoder header;
  header.PutFixed32(kCorpusFileMagic);
  header.PutFixed32(kCorpusFormatVersion);
  header.PutFixed32(0);
  image = header.TakeBuffer();
  image.resize(image.size() + 64);  // fake embedded-trace bytes
  const uint64_t index_offset = AppendTraceSection(
      &image, TraceSection::kCorpusIndex, index_payload.buffer(),
      /*allow_compress=*/false);
  Encoder trailer;
  trailer.PutFixed64(index_offset);
  trailer.PutFixed32(kCorpusTrailerMagic);
  for (uint8_t byte : trailer.buffer()) {
    image.push_back(byte);
  }
  WriteFileBytes(path.get(), image);

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument);
}

// A crafted index whose entry count vastly exceeds what its payload can
// hold must fail with a Status in the guard, not abort inside the
// entries allocation.
TEST(CorpusTest, CraftedIndexCountFailsCleanly) {
  ScopedPath path("crafted");
  Encoder index_payload;
  index_payload.PutVarint64(1u << 28);  // claimed entries, ~4-byte payload

  std::vector<uint8_t> image;
  Encoder header;
  header.PutFixed32(kCorpusFileMagic);
  header.PutFixed32(kCorpusFormatVersion);
  header.PutFixed32(0);
  image = header.TakeBuffer();
  const uint64_t index_offset = AppendTraceSection(
      &image, TraceSection::kCorpusIndex, index_payload.buffer(),
      /*allow_compress=*/false);
  Encoder trailer;
  trailer.PutFixed64(index_offset);
  trailer.PutFixed32(kCorpusTrailerMagic);
  for (uint8_t byte : trailer.buffer()) {
    image.push_back(byte);
  }
  WriteFileBytes(path.get(), image);

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- Registry

TEST(ScenarioRegistryTest, EnumeratesAllScenariosUniquely) {
  const std::vector<BugScenario> scenarios = AllBugScenarios();
  ASSERT_EQ(scenarios.size(), 4u);
  std::vector<std::string> names;
  for (const BugScenario& scenario : scenarios) {
    names.push_back(scenario.name);
    EXPECT_NE(scenario.make_program, nullptr);
    auto found = FindBugScenario(scenario.name);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found->name, scenario.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::unique(names.begin(), names.end()) == names.end());
  EXPECT_EQ(FindBugScenario("no-such-bug").status().code(),
            StatusCode::kNotFound);
}

TEST(ScenarioRegistryTest, ParseDeterminismModelRoundtrips) {
  for (DeterminismModel model : AllDeterminismModels()) {
    auto parsed = ParseDeterminismModel(DeterminismModelName(model));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, model);
  }
  // Recorder model-name strings map back too.
  for (const char* name : {"rcse-code", "rcse-combined", "rcse-data", "rcse",
                           "debug-rcse"}) {
    auto parsed = ParseDeterminismModel(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, DeterminismModel::kDebugRcse);
  }
  EXPECT_FALSE(ParseDeterminismModel("quantum").ok());
}

// ------------------------------------------------------------ BatchRunner

std::vector<BugScenario> FastScenarios() {
  std::vector<BugScenario> scenarios;
  scenarios.push_back(MakeSumScenario());
  scenarios.push_back(MakeOverflowScenario());
  return scenarios;
}

TEST(BatchRunnerTest, ParallelRowsMatchSequentialRows) {
  BatchOptions sequential;
  sequential.threads = 1;
  sequential.models = {DeterminismModel::kPerfect, DeterminismModel::kValue,
                       DeterminismModel::kFailure};
  BatchOptions parallel = sequential;
  parallel.threads = 4;

  auto seq_report = BatchRunner(FastScenarios(), sequential).Run();
  ASSERT_TRUE(seq_report.ok()) << seq_report.status();
  auto par_report = BatchRunner(FastScenarios(), parallel).Run();
  ASSERT_TRUE(par_report.ok()) << par_report.status();

  ASSERT_EQ(seq_report->cells.size(), 6u);
  ASSERT_EQ(par_report->cells.size(), seq_report->cells.size());
  for (size_t i = 0; i < seq_report->cells.size(); ++i) {
    EXPECT_EQ(RowSignature(par_report->cells[i]),
              RowSignature(seq_report->cells[i]))
        << "cell " << i;
  }
}

TEST(BatchRunnerTest, WritesCorpusAndReportEndToEnd) {
  ScopedPath corpus_path("batch");
  BatchOptions options;
  options.threads = 4;
  options.models = {DeterminismModel::kPerfect, DeterminismModel::kFailure};
  options.corpus_path = corpus_path.get();
  options.trace_options.events_per_chunk = 64;
  options.trace_options.chunk_filter = TraceFilter::kVarintDelta;

  auto report = BatchRunner(FastScenarios(), options).Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->cells.size(), 4u);

  auto corpus = CorpusReader::Open(corpus_path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 4u);
  EXPECT_TRUE(corpus->VerifyAll().ok());
  for (size_t i = 0; i < report->cells.size(); ++i) {
    EXPECT_EQ(corpus->entries()[i].name, report->cells[i].recording_name);
    EXPECT_EQ(corpus->entries()[i].scenario, report->cells[i].scenario);
  }

  // The machine-readable report has one JSON object per cell.
  const std::string json = report->ToJsonLines();
  size_t lines = 0;
  for (char c : json) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, report->cells.size());
  EXPECT_NE(json.find("\"scenario\":\"sum\""), std::string::npos);
}

// Replaying the corpus from disk scores identically to the in-memory
// record -> replay pipeline (the PR's acceptance property).
TEST(BatchRunnerTest, CorpusReplayMatchesInMemoryRows) {
  ScopedPath corpus_path("replaymatch");
  BatchOptions options;
  options.threads = 2;
  options.models = {DeterminismModel::kPerfect, DeterminismModel::kValue,
                    DeterminismModel::kFailure, DeterminismModel::kDebugRcse};
  options.corpus_path = corpus_path.get();

  auto built = BatchRunner(FastScenarios(), options).Run();
  ASSERT_TRUE(built.ok()) << built.status();

  auto replayed = ReplayCorpus(corpus_path.get(), FastScenarios(),
                               /*threads=*/4);
  ASSERT_TRUE(replayed.ok()) << replayed.status();

  ASSERT_EQ(replayed->cells.size(), built->cells.size());
  for (size_t i = 0; i < built->cells.size(); ++i) {
    EXPECT_EQ(RowSignature(replayed->cells[i]), RowSignature(built->cells[i]))
        << "cell " << i;
  }
}

// A harness can stream a live recording directly into a corpus entry:
// RecordStreaming hands back the finish info and the corpus owns the
// writer lifecycle.
TEST(BatchRunnerTest, HarnessStreamsDirectlyIntoCorpus) {
  BugScenario scenario = MakeSumScenario();
  ExperimentHarness harness(scenario);
  ASSERT_TRUE(harness.Prepare().ok());

  ScopedPath path("streamed_entry");
  CorpusWriter corpus(path.get());
  ASSERT_TRUE(corpus.Begin().ok());
  auto writer = corpus.BeginRecording("sum/streamed");
  ASSERT_TRUE(writer.ok()) << writer.status();
  auto info = harness.RecordStreaming(DeterminismModel::kPerfect, *writer);
  ASSERT_TRUE(info.ok()) << info.status();
  ASSERT_TRUE(corpus.FinishRecording(*info).ok());
  ASSERT_TRUE(corpus.Finish().ok());

  auto reader = CorpusReader::Open(path.get());
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->entries().size(), 1u);
  EXPECT_EQ(reader->entries()[0].scenario, "sum");
  EXPECT_EQ(reader->entries()[0].model, "perfect");
  EXPECT_TRUE(reader->VerifyAll().ok());

  // The streamed entry replays like any other recording.
  auto replayed = ReplayCorpus(path.get(), AllBugScenarios());
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ASSERT_EQ(replayed->cells.size(), 1u);
  EXPECT_TRUE(replayed->cells[0].row.failure_reproduced);
}

TEST(BatchRunnerTest, ReplayCorpusRejectsUnknownScenario) {
  const RecordedExecution recording = MakeSyntheticRecording(20);
  ScopedPath path("unknown");
  TraceWriteOptions options;
  options.scenario = "not-a-registered-scenario";
  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Add("x", recording, options).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto replayed = ReplayCorpus(path.get(), AllBugScenarios());
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ddr
