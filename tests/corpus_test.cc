// Tests for DDRC corpus bundles (src/trace/corpus.h), the scenario
// registry, and the BatchRunner / ReplayCorpus pipeline.
//
// The acceptance properties: a corpus packs many named recordings into one
// indexed, CRC-checked file whose entries round-trip exactly; BatchRunner
// with N threads produces the same deterministic rows as 1 thread; and
// replaying a corpus from disk scores identically to the in-memory
// record->replay path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/scenarios.h"
#include "src/core/batch_runner.h"
#include "src/core/experiment.h"
#include "src/trace/chunk_cache.h"
#include "src/trace/corpus.h"
#include "src/trace/trace_format.h"
#include "src/trace/trace_writer.h"
#include "src/util/codec.h"
#include "src/util/crc32.h"
#include "src/util/random_access_file.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace ddr {
namespace {

const IoBackend kAllBackends[] = {IoBackend::kStream, IoBackend::kPread,
                                  IoBackend::kMmap};

CorpusReaderOptions WithBackend(IoBackend backend, uint64_t cache_bytes) {
  CorpusReaderOptions options;
  options.io.backend = backend;
  options.cache_bytes = cache_bytes;
  return options;
}

class ScopedPath {
 public:
  explicit ScopedPath(const std::string& tag)
      : path_("corpus_test_" + tag + ".ddrc") {}
  ~ScopedPath() { std::remove(path_.c_str()); }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

RecordedExecution MakeSyntheticRecording(uint64_t num_events,
                                         uint64_t seed = 7) {
  RecordedExecution recording;
  recording.model = "synthetic";
  Rng rng(seed);
  for (uint64_t seq = 0; seq < num_events; ++seq) {
    Event event;
    event.seq = seq;
    event.time = seq * 13;
    event.fiber = static_cast<FiberId>(seq % 3);
    event.obj = 2 + seq % 5;
    event.value = rng.NextIndex(1 << 18);
    event.type = seq % 2 == 0 ? EventType::kSharedRead : EventType::kRngDraw;
    recording.log.Append(event);
  }
  recording.recorded_events = num_events;
  recording.intercepted_events = num_events;
  recording.recorded_bytes = recording.log.encoded_size_bytes();
  recording.cpu_nanos = 500;
  recording.overhead_nanos = 70;
  return recording;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ----------------------------------------------------------------- Corpus

TEST(CorpusTest, EmptyCorpusRoundtrips) {
  ScopedPath path("empty");
  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_TRUE(corpus->entries().empty());
  EXPECT_TRUE(corpus->VerifyAll().ok());
  EXPECT_EQ(corpus->Find("anything"), nullptr);
}

TEST(CorpusTest, SingleRecordingRoundtripsEveryField) {
  const RecordedExecution recording = MakeSyntheticRecording(700);
  ScopedPath path("single");
  TraceWriteOptions options;
  options.events_per_chunk = 128;
  options.checkpoint_interval = 200;
  options.scenario = "synthetic-scenario";
  options.original_wall_seconds = 1.25;

  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Add("bugs/one", recording, options).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 1u);
  const CorpusEntry& entry = corpus->entries()[0];
  EXPECT_EQ(entry.name, "bugs/one");
  EXPECT_EQ(entry.model, "synthetic");
  EXPECT_EQ(entry.scenario, "synthetic-scenario");
  EXPECT_EQ(entry.event_count, 700u);
  EXPECT_DOUBLE_EQ(entry.original_wall_seconds, 1.25);

  double wall = 0.0;
  auto loaded = corpus->LoadRecording("bugs/one", &wall);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_DOUBLE_EQ(wall, 1.25);
  ASSERT_EQ(loaded->log.size(), recording.log.size());
  for (size_t i = 0; i < recording.log.size(); ++i) {
    EXPECT_EQ(loaded->log.events()[i].SemanticHash(),
              recording.log.events()[i].SemanticHash());
  }
  EXPECT_EQ(loaded->recorded_bytes, recording.recorded_bytes);
  EXPECT_EQ(loaded->intercepted_events, recording.intercepted_events);

  // The embedded trace is a full TraceReader: partial reads and checkpoint
  // access work through the corpus window.
  auto trace = corpus->OpenTrace(entry);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->total_events(), 700u);
  EXPECT_FALSE(trace->checkpoints().empty());
  auto mid = trace->ReadEvents(300, 10);
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid->size(), 10u);
  EXPECT_EQ((*mid)[0].SemanticHash(),
            recording.log.events()[300].SemanticHash());

  EXPECT_TRUE(corpus->VerifyAll().ok());
}

TEST(CorpusTest, StreamingAddMatchesBufferedAdd) {
  const RecordedExecution recording = MakeSyntheticRecording(500);
  TraceWriteOptions options;
  options.events_per_chunk = 64;

  ScopedPath buffered("buffered");
  {
    CorpusWriter writer(buffered.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("r", recording, options).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  // Same recording streamed in odd-sized batches: identical file bytes.
  ScopedPath streamed("streamed");
  {
    CorpusWriter writer(streamed.get());
    ASSERT_TRUE(writer.Begin().ok());
    auto stream = writer.BeginRecording("r", options);
    ASSERT_TRUE(stream.ok()) << stream.status();
    const std::vector<Event>& events = recording.log.events();
    for (size_t i = 0; i < events.size();) {
      const size_t batch = std::min<size_t>(1 + i % 37, events.size() - i);
      ASSERT_TRUE((*stream)->AppendEvents(events.data() + i, batch).ok());
      i += batch;
    }
    ASSERT_TRUE(writer.FinishRecording(FinishInfoFor(recording)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  EXPECT_EQ(ReadFileBytes(buffered.get()), ReadFileBytes(streamed.get()));
}

TEST(CorpusTest, DuplicateNamesRejected) {
  const RecordedExecution recording = MakeSyntheticRecording(50);
  ScopedPath path("dup");
  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Add("same", recording).ok());
  const Status duplicate = writer.Add("same", recording);
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(writer.Add("different", recording).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->entries().size(), 2u);
}

TEST(CorpusTest, AtomicWriteLeavesNoPartialFile) {
  const RecordedExecution recording = MakeSyntheticRecording(50);
  ScopedPath path("atomic");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("r", recording).ok());
    // No Finish: the bundle must not appear at the target path (the
    // sink's own temp-file cleanup is covered by
    // TraceWriterTest.AbandonedSinkRemovesItsTempFile).
  }
  std::ifstream target(path.get(), std::ios::binary);
  EXPECT_FALSE(target.good());
}

// Every backend must fail identically on damaged bundles: corruption and
// truncation always surface as a Status, never as garbage events — under
// mmap just as under the buffered stream path.
TEST(CorpusTest, DetectsCorruptionAndTruncationOnEveryBackend) {
  ScopedPath path("corrupt");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("a", MakeSyntheticRecording(300, 1)).ok());
    ASSERT_TRUE(writer.Add("b", MakeSyntheticRecording(300, 2)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  const std::vector<uint8_t> image = ReadFileBytes(path.get());

  for (IoBackend backend : kAllBackends) {
    const CorpusReaderOptions options = WithBackend(backend, 1 << 20);

    // A flipped byte inside an embedded trace: the index still opens, but
    // verification of that entry fails.
    {
      std::vector<uint8_t> bad = image;
      bad[bad.size() / 3] ^= 0x20;
      WriteFileBytes(path.get(), bad);
      auto corpus = CorpusReader::Open(path.get(), options);
      ASSERT_TRUE(corpus.ok()) << corpus.status();
      EXPECT_FALSE(corpus->VerifyAll().ok()) << IoBackendName(backend);
    }

    // A flipped byte inside the index section (just before the trailer):
    // Open itself fails on the index CRC.
    {
      std::vector<uint8_t> bad = image;
      bad[bad.size() - kCorpusTrailerBytes - 4] ^= 0x40;
      WriteFileBytes(path.get(), bad);
      EXPECT_FALSE(CorpusReader::Open(path.get(), options).ok())
          << IoBackendName(backend);
    }

    // Truncations: the trailer (and with it the index) is gone, so Open
    // fails cleanly at every cut point.
    for (size_t keep = 0; keep < image.size(); keep += image.size() / 13 + 1) {
      WriteFileBytes(path.get(),
                     std::vector<uint8_t>(image.begin(), image.begin() + keep));
      EXPECT_FALSE(CorpusReader::Open(path.get(), options).ok())
          << IoBackendName(backend) << " prefix " << keep;
    }
  }
}

// All three I/O backends decode the same DDRC bundle to bit-identical
// event logs, with VerifyAll green everywhere — zero-copy mmap reads are
// not allowed to change a single decoded byte.
TEST(CorpusTest, BackendsDecodeBitIdentically) {
  ScopedPath path("backends");
  TraceWriteOptions delta;
  delta.events_per_chunk = 128;
  delta.chunk_filter = TraceFilter::kVarintDelta;
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("row/a", MakeSyntheticRecording(700, 1)).ok());
    ASSERT_TRUE(writer.Add("col/b", MakeSyntheticRecording(900, 2), delta).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  std::vector<std::vector<uint8_t>> logs_by_backend;
  for (IoBackend backend : kAllBackends) {
    auto corpus =
        CorpusReader::Open(path.get(), WithBackend(backend, 1 << 20));
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    ASSERT_EQ(corpus->io_backend(), backend);
    EXPECT_TRUE(corpus->VerifyAll().ok()) << IoBackendName(backend);

    std::vector<uint8_t> combined;
    for (const CorpusEntry& entry : corpus->entries()) {
      auto trace = corpus->OpenTrace(entry);
      ASSERT_TRUE(trace.ok()) << trace.status();
      auto log = trace->ReadAllEvents();
      ASSERT_TRUE(log.ok()) << log.status();
      const std::vector<uint8_t> encoded = log->Encode();
      combined.insert(combined.end(), encoded.begin(), encoded.end());
    }
    logs_by_backend.push_back(std::move(combined));
  }
  ASSERT_EQ(logs_by_backend.size(), 3u);
  EXPECT_EQ(logs_by_backend[0], logs_by_backend[1]);
  EXPECT_EQ(logs_by_backend[0], logs_by_backend[2]);
}

// The cache-counter truthfulness property: a warm re-read of a chunk
// already decoded through the shared cache costs exactly 0 disk bytes,
// and the hit/miss counters on reader and cache agree with that story.
TEST(CorpusTest, WarmChunkRereadCostsZeroDiskBytes) {
  ScopedPath path("warm");
  TraceWriteOptions options;
  options.events_per_chunk = 128;
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("r", MakeSyntheticRecording(1000)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  for (IoBackend backend : kAllBackends) {
    auto corpus =
        CorpusReader::Open(path.get(), WithBackend(backend, 8 << 20));
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    auto trace = corpus->OpenTrace("r");
    ASSERT_TRUE(trace.ok()) << trace.status();

    auto cold = trace->ReadEvents(300, 10);
    ASSERT_TRUE(cold.ok());
    const uint64_t cold_bytes = trace->bytes_read();
    EXPECT_EQ(trace->cache_hits(), 0u);
    EXPECT_EQ(trace->cache_misses(), 1u);

    // Warm re-read, same reader: 0 new disk bytes, one cache hit.
    auto warm = trace->ReadEvents(300, 10);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(trace->bytes_read(), cold_bytes) << IoBackendName(backend);
    EXPECT_EQ(trace->cache_hits(), 1u);

    // Warm read through a *different* window of the same corpus: the
    // chunk decode is shared, so the new window pays only its own open.
    auto window = corpus->OpenTrace("r");
    ASSERT_TRUE(window.ok());
    const uint64_t open_bytes = window->bytes_read();
    auto shared = window->ReadEvents(300, 10);
    ASSERT_TRUE(shared.ok());
    EXPECT_EQ(window->bytes_read(), open_bytes) << IoBackendName(backend);
    EXPECT_EQ(window->cache_hits(), 1u);
    ASSERT_EQ(shared->size(), cold->size());
    for (size_t i = 0; i < shared->size(); ++i) {
      EXPECT_EQ((*shared)[i].SemanticHash(), (*cold)[i].SemanticHash());
    }

    const ChunkCacheStats stats = corpus->cache_stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.insertions, 1u);
  }

  // Control: with the cache disabled, the same warm re-read pays the
  // chunk's disk bytes again.
  auto cold_corpus =
      CorpusReader::Open(path.get(), WithBackend(IoBackend::kPread, 0));
  ASSERT_TRUE(cold_corpus.ok());
  auto trace = cold_corpus->OpenTrace("r");
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->ReadEvents(300, 10).ok());
  const uint64_t first = trace->bytes_read();
  ASSERT_TRUE(trace->ReadEvents(300, 10).ok());
  EXPECT_GT(trace->bytes_read(), first);
  EXPECT_EQ(trace->cache_hits(), 0u);
}

// 8 threads replaying distinct and overlapping entries of one shared
// CorpusReader decode exactly what a single thread decodes.
TEST(CorpusTest, ConcurrentWindowsMatchSingleThreadedReads) {
  ScopedPath path("threads");
  constexpr size_t kEntries = 6;
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    for (size_t i = 0; i < kEntries; ++i) {
      ASSERT_TRUE(writer
                      .Add("entry/" + std::to_string(i),
                           MakeSyntheticRecording(400 + 50 * i, i + 1))
                      .ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }

  auto corpus =
      CorpusReader::Open(path.get(), WithBackend(IoBackend::kMmap, 16 << 20));
  ASSERT_TRUE(corpus.ok()) << corpus.status();

  // Single-threaded ground truth.
  std::vector<std::vector<uint8_t>> expected(kEntries);
  for (size_t e = 0; e < kEntries; ++e) {
    auto trace = corpus->OpenTrace(corpus->entries()[e]);
    ASSERT_TRUE(trace.ok());
    auto log = trace->ReadAllEvents();
    ASSERT_TRUE(log.ok());
    expected[e] = log->Encode();
  }

  // Distinct entries (threads partition the corpus), then overlapping
  // (every thread reads every entry, hammering the shared cache).
  for (const bool overlapping : {false, true}) {
    std::vector<int> mismatches(8, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t]() {
        for (size_t e = 0; e < kEntries; ++e) {
          if (!overlapping && e % 8 != static_cast<size_t>(t)) {
            continue;
          }
          auto trace = corpus->OpenTrace(corpus->entries()[e]);
          if (!trace.ok()) {
            ++mismatches[t];
            continue;
          }
          auto log = trace->ReadAllEvents();
          if (!log.ok() || log->Encode() != expected[e]) {
            ++mismatches[t];
          }
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < 8; ++t) {
      EXPECT_EQ(mismatches[t], 0)
          << (overlapping ? "overlapping" : "distinct") << " thread " << t;
    }
  }
  // The overlapping pass re-read every entry from 8 threads: the shared
  // cache must have served the bulk of those chunk reads.
  EXPECT_GT(corpus->cache_stats().hits, corpus->cache_stats().misses);
}

// A crafted entry whose window length wraps uint64 past the index offset
// must be rejected at Open, not reach the embedded-trace reader.
TEST(CorpusTest, CraftedEntryWindowWrapFailsCleanly) {
  ScopedPath path("wrap");
  Encoder index_payload;
  index_payload.PutVarint64(1);  // one entry
  index_payload.PutString("evil");
  index_payload.PutVarint64(16);                      // offset
  index_payload.PutVarint64(~0ull - 7);               // length: wraps the sum
  index_payload.PutString("model");
  index_payload.PutString("scenario");
  index_payload.PutVarint64(1);
  index_payload.PutDouble(0.0);

  std::vector<uint8_t> image;
  Encoder header;
  header.PutFixed32(kCorpusFileMagic);
  header.PutFixed32(kCorpusFormatVersion);
  header.PutFixed32(0);
  image = header.TakeBuffer();
  image.resize(image.size() + 64);  // fake embedded-trace bytes
  const uint64_t index_offset = AppendTraceSection(
      &image, TraceSection::kCorpusIndex, index_payload.buffer(),
      /*allow_compress=*/false);
  Encoder trailer;
  trailer.PutFixed64(index_offset);
  trailer.PutFixed32(kCorpusTrailerMagic);
  for (uint8_t byte : trailer.buffer()) {
    image.push_back(byte);
  }
  WriteFileBytes(path.get(), image);

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument);
}

// A crafted index whose entry count vastly exceeds what its payload can
// hold must fail with a Status in the guard, not abort inside the
// entries allocation.
TEST(CorpusTest, CraftedIndexCountFailsCleanly) {
  ScopedPath path("crafted");
  Encoder index_payload;
  index_payload.PutVarint64(1u << 28);  // claimed entries, ~4-byte payload

  std::vector<uint8_t> image;
  Encoder header;
  header.PutFixed32(kCorpusFileMagic);
  header.PutFixed32(kCorpusFormatVersion);
  header.PutFixed32(0);
  image = header.TakeBuffer();
  const uint64_t index_offset = AppendTraceSection(
      &image, TraceSection::kCorpusIndex, index_payload.buffer(),
      /*allow_compress=*/false);
  Encoder trailer;
  trailer.PutFixed64(index_offset);
  trailer.PutFixed32(kCorpusTrailerMagic);
  for (uint8_t byte : trailer.buffer()) {
    image.push_back(byte);
  }
  WriteFileBytes(path.get(), image);

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------- Mutable corpus lifecycle

std::vector<uint8_t> SliceImage(const std::vector<uint8_t>& file,
                                const CorpusEntry& entry) {
  return std::vector<uint8_t>(
      file.begin() + static_cast<ptrdiff_t>(entry.offset),
      file.begin() + static_cast<ptrdiff_t>(entry.offset + entry.length));
}

CorpusAppendOptions RewriteMode() {
  CorpusAppendOptions options;
  options.mode = CorpusAppendMode::kRewrite;
  return options;
}

uint64_t FileSizeBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  return static_cast<uint64_t>(in.tellg());
}

// Rewrite-mode appends: appending N entries to an M-entry bundle
// produces the byte-identical file a single (M+N)-entry build would —
// same image placement, same merged index, same trailer.
TEST(CorpusLifecycleTest, AppendToMatchesSingleShotBitForBit) {
  const RecordedExecution r1 = MakeSyntheticRecording(400, 1);
  const RecordedExecution r2 = MakeSyntheticRecording(500, 2);
  const RecordedExecution r3 = MakeSyntheticRecording(300, 3);
  TraceWriteOptions options;
  options.events_per_chunk = 64;

  ScopedPath single("appendsingle");
  {
    CorpusWriter writer(single.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("a", r1, options).ok());
    ASSERT_TRUE(writer.Add("b", r2, options).ok());
    ASSERT_TRUE(writer.Add("c", r3, options).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  ScopedPath grown("appendgrown");
  {
    CorpusWriter writer(grown.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("a", r1, options).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  {
    auto writer = CorpusWriter::AppendTo(grown.get(), RewriteMode());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("b", r2, options).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  {
    auto writer = CorpusWriter::AppendTo(grown.get(), RewriteMode());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("c", r3, options).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  EXPECT_EQ(ReadFileBytes(single.get()), ReadFileBytes(grown.get()));

  auto corpus = CorpusReader::Open(grown.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 3u);
  EXPECT_TRUE(corpus->VerifyAll().ok());
}

TEST(CorpusLifecycleTest, AppendToRejectsDuplicateOfExistingEntry) {
  const RecordedExecution recording = MakeSyntheticRecording(60);
  ScopedPath path("appenddup");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("taken", recording).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto writer = CorpusWriter::AppendTo(path.get());
  ASSERT_TRUE(writer.ok()) << writer.status();
  const Status duplicate = (*writer)->Add("taken", recording);
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(duplicate.message().find("taken"), std::string::npos)
      << duplicate.message();
  // Begin on an append writer is a state-machine error, not a reset.
  EXPECT_EQ((*writer)->Begin().code(), StatusCode::kFailedPrecondition);
}

TEST(CorpusLifecycleTest, AppendToMissingOrCorruptBundleFails) {
  EXPECT_EQ(CorpusWriter::AppendTo("no_such_bundle.ddrc").status().code(),
            StatusCode::kNotFound);

  ScopedPath path("appendcorrupt");
  WriteFileBytes(path.get(), std::vector<uint8_t>(64, 0xAB));
  EXPECT_FALSE(CorpusWriter::AppendTo(path.get()).ok());
}

// An interrupted append (writer destroyed before Finish) must never
// publish the partial entries. The rewrite mode leaves the original
// byte-identical (its temp file never renames in); the in-place mode is
// deliberately crash-equivalent — nothing is truncated (the file must
// not shrink under concurrent readers), so the staged bytes remain as an
// unpublished torn tail the recovery path scans past.
TEST(CorpusLifecycleTest, InterruptedAppendLeavesOriginalIntact) {
  // Rewrite mode: byte-identical rollback.
  {
    ScopedPath path("appendinterruptrw");
    {
      CorpusWriter writer(path.get());
      ASSERT_TRUE(writer.Begin().ok());
      ASSERT_TRUE(writer.Add("keep", MakeSyntheticRecording(200)).ok());
      ASSERT_TRUE(writer.Finish().ok());
    }
    const std::vector<uint8_t> before = ReadFileBytes(path.get());
    {
      auto writer = CorpusWriter::AppendTo(path.get(), RewriteMode());
      ASSERT_TRUE(writer.ok()) << writer.status();
      ASSERT_TRUE((*writer)->Add("lost", MakeSyntheticRecording(300)).ok());
      // No Finish: destructor discards the temp file.
    }
    EXPECT_EQ(ReadFileBytes(path.get()), before);
    auto corpus = CorpusReader::Open(path.get());
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    ASSERT_EQ(corpus->entries().size(), 1u);
    EXPECT_FALSE(corpus->journaled());
    EXPECT_TRUE(corpus->VerifyAll().ok());
  }

  // In-place mode: crash-equivalent — the staged generation is never
  // published, the original entries stay fully readable, and the torn
  // bytes are accounted dead until the next append overwrites them.
  {
    ScopedPath path("appendinterruptip");
    {
      CorpusWriter writer(path.get());
      ASSERT_TRUE(writer.Begin().ok());
      ASSERT_TRUE(writer.Add("keep", MakeSyntheticRecording(200)).ok());
      ASSERT_TRUE(writer.Finish().ok());
    }
    const uint64_t before_size = FileSizeBytes(path.get());
    {
      auto writer = CorpusWriter::AppendTo(path.get());
      ASSERT_TRUE(writer.ok()) << writer.status();
      ASSERT_TRUE((*writer)->Add("lost", MakeSyntheticRecording(300)).ok());
      // No Finish: no trailer was written, so nothing is published.
    }
    EXPECT_GE(FileSizeBytes(path.get()), before_size);  // never shrinks
    auto corpus = CorpusReader::Open(path.get());
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    ASSERT_EQ(corpus->entries().size(), 1u);
    EXPECT_EQ(corpus->Find("lost"), nullptr);
    EXPECT_EQ(corpus->generation(), 1u);
    EXPECT_GT(corpus->dead_bytes(), 0u);  // the torn staged bytes
    EXPECT_TRUE(corpus->VerifyAll().ok());

    // A later append overwrites the torn bytes and publishes normally.
    {
      auto writer = CorpusWriter::AppendTo(path.get());
      ASSERT_TRUE(writer.ok()) << writer.status();
      ASSERT_TRUE((*writer)->Add("next", MakeSyntheticRecording(100)).ok());
      ASSERT_TRUE((*writer)->Finish().ok());
    }
    ASSERT_TRUE(corpus->Reopen().ok());
    ASSERT_EQ(corpus->entries().size(), 2u);
    EXPECT_EQ(corpus->generation(), 2u);
    EXPECT_NE(corpus->Find("next"), nullptr);
    EXPECT_EQ(corpus->Find("lost"), nullptr);
    EXPECT_TRUE(corpus->VerifyAll().ok());
  }
}

// ------------------------------------------- In-place journal appends

// The O(delta) acceptance property, asserted on sink byte accounting: an
// in-place append to an N-entry bundle writes the new images + a delta
// index listing only the new entries + one trailer (+ the 4-byte header
// version flip) — never a copy of the existing bytes and never a re-list
// of the existing entries — so the cost is flat in both the size and the
// entry count of the base bundle.
TEST(CorpusJournalTest, InPlaceAppendWritesOnlyTheDelta) {
  TraceWriteOptions options;
  options.events_per_chunk = 128;

  ScopedPath small_base("journalsmall");
  ScopedPath big_base("journalbig");
  const auto build = [&](const std::string& path, size_t entries) {
    CorpusWriter writer(path);
    ASSERT_TRUE(writer.Begin().ok());
    for (size_t i = 0; i < entries; ++i) {
      ASSERT_TRUE(writer
                      .Add("base/" + std::to_string(i),
                           MakeSyntheticRecording(3000, i + 1), options)
                      .ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  };
  build(small_base.get(), 2);
  build(big_base.get(), 12);

  const auto append_one = [&](const std::string& path) -> uint64_t {
    auto writer = CorpusWriter::AppendTo(path);
    EXPECT_TRUE(writer.ok()) << writer.status();
    EXPECT_TRUE((*writer)
                    ->Add("appended/one", MakeSyntheticRecording(50, 99),
                          options)
                    .ok());
    EXPECT_TRUE((*writer)->Finish().ok());
    return (*writer)->bytes_written();
  };

  const uint64_t small_before = FileSizeBytes(small_base.get());
  const uint64_t small_written = append_one(small_base.get());
  EXPECT_EQ(small_written,
            FileSizeBytes(small_base.get()) - small_before + 4);

  const uint64_t big_before = FileSizeBytes(big_base.get());
  const uint64_t big_written = append_one(big_base.get());
  // Bytes written are exactly the on-disk delta plus the header flip...
  EXPECT_EQ(big_written, FileSizeBytes(big_base.get()) - big_before + 4);
  // ...and flat in the base: the 6x-larger, 6x-more-entry base writes
  // the same delta index (one entry) as the small one — the only drift
  // allowed is varint width of the larger file offsets.
  EXPECT_GT(big_before, 4 * small_before);
  EXPECT_LT(big_written, big_before / 4);
  EXPECT_LT(big_written, small_written + 64);

  for (IoBackend backend : kAllBackends) {
    auto corpus =
        CorpusReader::Open(big_base.get(), WithBackend(backend, 1 << 20));
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    EXPECT_TRUE(corpus->journaled());
    EXPECT_EQ(corpus->generation(), 2u);
    ASSERT_EQ(corpus->entries().size(), 13u);
    EXPECT_TRUE(corpus->VerifyAll().ok()) << IoBackendName(backend);
    auto loaded = corpus->LoadRecording("appended/one");
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->log.size(), 50u);
  }

  // Nothing is dead: the generation-1 index is the stitch base the
  // delta chain resolves against, so every index byte in the file is
  // still reachable by Open.
  auto small_after = CorpusReader::Open(small_base.get());
  ASSERT_TRUE(small_after.ok()) << small_after.status();
  EXPECT_EQ(small_after->format_version(), kCorpusFormatVersionDelta);
  EXPECT_EQ(small_after->dead_bytes(), 0u);
}

// Repeated in-place appends chain generations; every generation's
// entries stay readable, the whole delta chain stays live (zero dead
// bytes — every index section is needed for the stitch), and
// duplicate-name detection spans the whole chain.
TEST(CorpusJournalTest, SequentialAppendsChainGenerations) {
  ScopedPath path("journalchain");
  TraceWriteOptions options;
  options.events_per_chunk = 64;
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(
        writer.Add("gen1/a", MakeSyntheticRecording(300, 1), options).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  for (uint32_t gen = 2; gen <= 4; ++gen) {
    auto writer = CorpusWriter::AppendTo(path.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)
                    ->Add("gen" + std::to_string(gen) + "/a",
                          MakeSyntheticRecording(200 + gen * 10, gen), options)
                    .ok());
    ASSERT_TRUE((*writer)->Finish().ok());

    auto corpus = CorpusReader::Open(path.get());
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    EXPECT_EQ(corpus->generation(), gen);
    EXPECT_EQ(corpus->entries().size(), gen);
    // Entry order matches the equivalent single-shot build: add order.
    EXPECT_EQ(corpus->entries().front().name, "gen1/a");
    EXPECT_EQ(corpus->entries().back().name,
              "gen" + std::to_string(gen) + "/a");
    EXPECT_EQ(corpus->dead_bytes(), 0u);
    EXPECT_EQ(corpus->tail_offset(), corpus->file_size());
    EXPECT_TRUE(corpus->VerifyAll().ok());
  }
  auto writer = CorpusWriter::AppendTo(path.get());
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_EQ((*writer)->Add("gen2/a", MakeSyntheticRecording(10)).code(),
            StatusCode::kAlreadyExists);
}

// Crash-mid-append simulation: any prefix of a generation-3 bundle that
// still covers generation 2 recovers to generation 2's entries (the
// previous trailer stays reachable past the torn tail) on every backend;
// the full file serves generation 3; and the next append writes the new
// generation over the garbage — never truncating — before chaining on.
TEST(CorpusJournalTest, TornTailRecoversPreviousGeneration) {
  ScopedPath path("journaltorn");
  TraceWriteOptions options;
  options.events_per_chunk = 64;
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("a", MakeSyntheticRecording(400, 1), options).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  {
    auto writer = CorpusWriter::AppendTo(path.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("b", MakeSyntheticRecording(500, 2), options).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  const std::vector<uint8_t> gen2 = ReadFileBytes(path.get());
  {
    auto writer = CorpusWriter::AppendTo(path.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("c", MakeSyntheticRecording(600, 3), options).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  const std::vector<uint8_t> gen3 = ReadFileBytes(path.get());
  ASSERT_GT(gen3.size(), gen2.size());

  const size_t step = std::max<size_t>(1, (gen3.size() - gen2.size()) / 9);
  for (size_t keep = gen2.size(); keep < gen3.size(); keep += step) {
    WriteFileBytes(path.get(),
                   std::vector<uint8_t>(gen3.begin(), gen3.begin() + keep));
    for (IoBackend backend : kAllBackends) {
      auto corpus = CorpusReader::Open(path.get(), WithBackend(backend, 0));
      ASSERT_TRUE(corpus.ok())
          << corpus.status() << " keep " << keep << " " << IoBackendName(backend);
      EXPECT_EQ(corpus->generation(), 2u) << "keep " << keep;
      ASSERT_EQ(corpus->entries().size(), 2u);
      EXPECT_EQ(corpus->Find("c"), nullptr);
      // The torn tail is accounted as dead bytes past the live trailer.
      EXPECT_EQ(corpus->file_size() - corpus->tail_offset(),
                keep - gen2.size());
      EXPECT_TRUE(corpus->VerifyAll().ok()) << IoBackendName(backend);
    }
  }
  // The complete file serves generation 3.
  WriteFileBytes(path.get(), gen3);
  {
    auto corpus = CorpusReader::Open(path.get());
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    EXPECT_EQ(corpus->generation(), 3u);
    EXPECT_EQ(corpus->entries().size(), 3u);
  }

  // Appending onto a torn file writes the new generation over the
  // garbage — the file is never truncated (shrinking it could SIGBUS a
  // concurrent mmap reader scanning the tail), so whatever torn bytes
  // extend past the new trailer stay accounted as dead until a compact.
  WriteFileBytes(path.get(), std::vector<uint8_t>(
                                 gen3.begin(), gen3.begin() + gen2.size() +
                                                   (gen3.size() - gen2.size()) / 2));
  const uint64_t torn_size = FileSizeBytes(path.get());
  {
    auto writer = CorpusWriter::AppendTo(path.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("c2", MakeSyntheticRecording(120, 7), options).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_EQ(corpus->generation(), 3u);
  EXPECT_GE(corpus->file_size(), torn_size);  // never shrank
  ASSERT_EQ(corpus->entries().size(), 3u);
  EXPECT_NE(corpus->Find("c2"), nullptr);
  EXPECT_EQ(corpus->Find("c"), nullptr);
  EXPECT_TRUE(corpus->VerifyAll().ok());

  // Compact reclaims everything: leftover torn bytes and superseded
  // index generations alike.
  auto squashed = CompactCorpus(path.get(), {});
  ASSERT_TRUE(squashed.ok()) << squashed.status();
  auto compacted = CorpusReader::Open(path.get());
  ASSERT_TRUE(compacted.ok()) << compacted.status();
  EXPECT_EQ(compacted->dead_bytes(), 0u);
  EXPECT_EQ(compacted->tail_offset(), compacted->file_size());
  EXPECT_TRUE(compacted->VerifyAll().ok());
}

// A crash after the header version flip but before any appended byte
// leaves a journal-version header (2 or 3) over a v1 body: the journal
// recovery path serves it (generation 1, zero dead bytes) and the next
// append chains normally.
TEST(CorpusJournalTest, HeaderFlipAloneStaysReadable) {
  ScopedPath path("journalflip");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("only", MakeSyntheticRecording(300, 1)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  std::vector<uint8_t> bytes = ReadFileBytes(path.get());
  for (uint8_t version : {uint8_t{2}, uint8_t{3}}) {
    bytes[4] = version;  // the little-endian version field
    WriteFileBytes(path.get(), bytes);
    for (IoBackend backend : kAllBackends) {
      auto corpus = CorpusReader::Open(path.get(), WithBackend(backend, 0));
      ASSERT_TRUE(corpus.ok()) << corpus.status();
      EXPECT_TRUE(corpus->journaled());
      EXPECT_EQ(corpus->format_version(), version);
      EXPECT_EQ(corpus->generation(), 1u);
      EXPECT_EQ(corpus->dead_bytes(), 0u);
      EXPECT_TRUE(corpus->VerifyAll().ok()) << IoBackendName(backend);
    }
  }
  {
    auto writer = CorpusWriter::AppendTo(path.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("second", MakeSyntheticRecording(100, 2)).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_EQ(corpus->generation(), 2u);
  ASSERT_EQ(corpus->entries().size(), 2u);
  EXPECT_TRUE(corpus->VerifyAll().ok());
}

// In-place appends are single-writer: a second concurrent in-place
// appender must fail loudly (racing journal writers would truncate and
// interleave each other's bytes — corruption, not just a lost update),
// and the lock releases when the writer finishes or is abandoned.
TEST(CorpusJournalTest, ConcurrentInPlaceAppendersAreExcluded) {
  ScopedPath path("journallock");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("base", MakeSyntheticRecording(200, 1)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  auto first = CorpusWriter::AppendTo(path.get());
  ASSERT_TRUE(first.ok()) << first.status();

  auto second = CorpusWriter::AppendTo(path.get());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(second.status().message().find("lock"), std::string::npos)
      << second.status().message();

  // The first appender still works and commits normally...
  ASSERT_TRUE((*first)->Add("locked", MakeSyntheticRecording(100, 2)).ok());
  ASSERT_TRUE((*first)->Finish().ok());
  first->reset();  // ...and releases the lock, so the next append runs.

  auto third = CorpusWriter::AppendTo(path.get());
  ASSERT_TRUE(third.ok()) << third.status();
  ASSERT_TRUE((*third)->Add("after", MakeSyntheticRecording(100, 3)).ok());
  ASSERT_TRUE((*third)->Finish().ok());

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_EQ(corpus->entries().size(), 3u);
  EXPECT_EQ(corpus->generation(), 3u);
  EXPECT_TRUE(corpus->VerifyAll().ok());
}

// Cross-version guard: logic that only understands the v1 single-trailer
// layout must reject a journaled bundle with a clean unsupported-version
// error, never a garbage decode — and a version-blind v1 trailer parse
// cannot misfire either, because the journal trailer ends in a different
// magic.
TEST(CorpusJournalTest, V1SingleTrailerLogicRejectsJournaledBundles) {
  ScopedPath path("journalcompat");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("a", MakeSyntheticRecording(200, 1)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  {
    auto writer = CorpusWriter::AppendTo(path.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("b", MakeSyntheticRecording(250, 2)).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  const std::vector<uint8_t> bytes = ReadFileBytes(path.get());

  // The PR-4 era open sequence: header magic + version check expecting
  // exactly kCorpusFormatVersion.
  const auto open_v1_strict = [&]() -> Status {
    Decoder header(bytes.data(), kCorpusHeaderBytes);
    auto magic = header.GetFixed32();
    EXPECT_TRUE(magic.ok());
    EXPECT_EQ(*magic, kCorpusFileMagic);
    auto version = header.GetFixed32();
    EXPECT_TRUE(version.ok());
    if (*version != kCorpusFormatVersion) {
      return InvalidArgumentError(
          StrPrintf("unsupported corpus format version %u", *version));
    }
    return OkStatus();
  };
  const Status rejected = open_v1_strict();
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.message().find("version 3"), std::string::npos)
      << rejected.message();

  // The PR-5 era sequence — full-index journal logic that accepts
  // versions 1 and 2 — must reject a delta-chained bundle the same way:
  // loading only the newest (delta) index would silently drop every
  // entry older than the last append.
  const auto open_v2_strict = [&]() -> Status {
    Decoder header(bytes.data(), kCorpusHeaderBytes);
    EXPECT_TRUE(header.GetFixed32().ok());
    auto version = header.GetFixed32();
    EXPECT_TRUE(version.ok());
    if (*version != kCorpusFormatVersion &&
        *version != kCorpusFormatVersionJournal) {
      return InvalidArgumentError(
          StrPrintf("unsupported corpus format version %u", *version));
    }
    return OkStatus();
  };
  const Status v2_rejected = open_v2_strict();
  EXPECT_EQ(v2_rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(v2_rejected.message().find("version 3"), std::string::npos)
      << v2_rejected.message();

  // A version-ignoring v1 reader would parse the last 12 bytes as
  // [index offset | magic]: the magic mismatch stops it before the bogus
  // offset is ever used.
  Decoder trailer(bytes.data() + bytes.size() - kCorpusTrailerBytes,
                  kCorpusTrailerBytes);
  ASSERT_TRUE(trailer.GetFixed64().ok());
  auto trailer_magic = trailer.GetFixed32();
  ASSERT_TRUE(trailer_magic.ok());
  EXPECT_NE(*trailer_magic, kCorpusTrailerMagic);

  // An unknown future version is a clean error from the real reader too.
  std::vector<uint8_t> future = bytes;
  future[4] = 9;
  WriteFileBytes(path.get(), future);
  auto opened = CorpusReader::Open(path.get());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().message().find("version"), std::string::npos);
}

// CompactCorpus is the explicit journal squash: compacting a journaled
// bundle with an empty drop set produces the bit-identical file a
// single-shot build of the same entries would — and rewrite-mode
// AppendTo canonicalizes the same way while appending.
TEST(CorpusJournalTest, CompactSquashesJournalToSingleShotBytes) {
  const RecordedExecution r1 = MakeSyntheticRecording(400, 1);
  const RecordedExecution r2 = MakeSyntheticRecording(500, 2);
  const RecordedExecution r3 = MakeSyntheticRecording(300, 3);
  TraceWriteOptions options;
  options.events_per_chunk = 64;

  ScopedPath single("squashsingle");
  {
    CorpusWriter writer(single.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("a", r1, options).ok());
    ASSERT_TRUE(writer.Add("b", r2, options).ok());
    ASSERT_TRUE(writer.Add("c", r3, options).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  const auto build_journaled = [&](const std::string& path) {
    CorpusWriter writer(path);
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("a", r1, options).ok());
    ASSERT_TRUE(writer.Finish().ok());
    auto append = CorpusWriter::AppendTo(path);
    ASSERT_TRUE(append.ok()) << append.status();
    ASSERT_TRUE((*append)->Add("b", r2, options).ok());
    ASSERT_TRUE((*append)->Finish().ok());
  };

  ScopedPath journaled("squashjournal");
  build_journaled(journaled.get());
  {
    auto writer = CorpusWriter::AppendTo(journaled.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("c", r3, options).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  EXPECT_NE(ReadFileBytes(single.get()), ReadFileBytes(journaled.get()));

  auto stats = CompactCorpus(journaled.get(), {});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->added, 3u);
  EXPECT_EQ(stats->dropped, 0u);
  EXPECT_EQ(ReadFileBytes(single.get()), ReadFileBytes(journaled.get()));
  auto corpus = CorpusReader::Open(journaled.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_FALSE(corpus->journaled());
  EXPECT_EQ(corpus->dead_bytes(), 0u);
  EXPECT_TRUE(corpus->VerifyAll().ok());

  // Rewrite-mode append onto a journaled bundle canonicalizes too.
  ScopedPath rewritten("squashrewrite");
  build_journaled(rewritten.get());
  {
    auto writer = CorpusWriter::AppendTo(rewritten.get(), RewriteMode());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("c", r3, options).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  EXPECT_EQ(ReadFileBytes(single.get()), ReadFileBytes(rewritten.get()));
}

// A delta-chained bundle is observationally identical to the single-shot
// build of the same entries on every backend: same entry list (order,
// metadata), byte-identical embedded images, same replayed recordings,
// full verification — only the journal scaffolding differs.
TEST(CorpusJournalTest, DeltaChainMatchesFullIndexEquivalent) {
  std::vector<RecordedExecution> recordings;
  for (uint64_t i = 0; i < 5; ++i) {
    recordings.push_back(MakeSyntheticRecording(200 + i * 60, i + 1));
  }
  TraceWriteOptions options;
  options.events_per_chunk = 64;
  const auto name = [](size_t i) { return "entry/" + std::to_string(i); };

  ScopedPath single("deltaeqsingle");
  {
    CorpusWriter writer(single.get());
    ASSERT_TRUE(writer.Begin().ok());
    for (size_t i = 0; i < recordings.size(); ++i) {
      ASSERT_TRUE(writer.Add(name(i), recordings[i], options).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }

  // Chained: generation 1 holds entries 0-1, then one append per batch
  // {2}, {3,4} — two delta generations on top of the v1 base.
  ScopedPath chained("deltaeqchain");
  {
    CorpusWriter writer(chained.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add(name(0), recordings[0], options).ok());
    ASSERT_TRUE(writer.Add(name(1), recordings[1], options).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  for (const std::vector<size_t>& batch :
       std::vector<std::vector<size_t>>{{2}, {3, 4}}) {
    auto writer = CorpusWriter::AppendTo(chained.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (size_t i : batch) {
      ASSERT_TRUE((*writer)->Add(name(i), recordings[i], options).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  const std::vector<uint8_t> single_bytes = ReadFileBytes(single.get());
  const std::vector<uint8_t> chained_bytes = ReadFileBytes(chained.get());
  for (IoBackend backend : kAllBackends) {
    auto want = CorpusReader::Open(single.get(), WithBackend(backend, 1 << 20));
    auto got = CorpusReader::Open(chained.get(), WithBackend(backend, 1 << 20));
    ASSERT_TRUE(want.ok()) << want.status();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->format_version(), kCorpusFormatVersionDelta);
    EXPECT_EQ(got->generation(), 3u);
    ASSERT_EQ(got->entries().size(), want->entries().size());
    for (size_t i = 0; i < want->entries().size(); ++i) {
      const CorpusEntry& w = want->entries()[i];
      const CorpusEntry& g = got->entries()[i];
      EXPECT_EQ(g.name, w.name);
      EXPECT_EQ(g.model, w.model);
      EXPECT_EQ(g.scenario, w.scenario);
      EXPECT_EQ(g.event_count, w.event_count);
      EXPECT_EQ(g.length, w.length);
      // The embedded DDRT images are byte-identical; only their offsets
      // (and the surrounding journal scaffolding) may differ.
      ASSERT_LE(w.offset + w.length, single_bytes.size());
      ASSERT_LE(g.offset + g.length, chained_bytes.size());
      EXPECT_TRUE(std::equal(single_bytes.begin() + w.offset,
                             single_bytes.begin() + w.offset + w.length,
                             chained_bytes.begin() + g.offset))
          << w.name << " on " << IoBackendName(backend);
      auto want_rec = want->LoadRecording(w.name);
      auto got_rec = got->LoadRecording(g.name);
      ASSERT_TRUE(want_rec.ok()) << want_rec.status();
      ASSERT_TRUE(got_rec.ok()) << got_rec.status();
      EXPECT_EQ(got_rec->log.size(), want_rec->log.size());
    }
    EXPECT_TRUE(got->VerifyAll().ok()) << IoBackendName(backend);
  }

  // Squashing the chain reproduces the single-shot file bit for bit.
  auto stats = CompactCorpus(chained.get(), {});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(ReadFileBytes(chained.get()), single_bytes);
}

// Backward compatibility: a v2 bundle — full-index journal generations
// ("CRDJ" trailers) — keeps reading under the v3 code, with the v2 dead
// bytes accounting (every superseded full index is dead). A v3 delta
// append chains directly on top of it, using the v2 generation as its
// stitch base.
TEST(CorpusJournalTest, FullIndexV2BundleStillReadsAndUpgrades) {
  ScopedPath path("journalv2compat");
  TraceWriteOptions options;
  options.events_per_chunk = 64;
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("a", MakeSyntheticRecording(300, 1), options).ok());
    ASSERT_TRUE(writer.Add("b", MakeSyntheticRecording(400, 2), options).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  // Hand-roll the v2 append the PR-5 era writer produced: header flipped
  // to version 2, then a generation-2 *full* index re-listing every
  // entry, published by a CRC'd "CRDJ" trailer chained to the v1
  // trailer. (The current writer only emits v3 delta generations, so the
  // old layout is reconstructed here byte-for-byte from its spec.)
  std::vector<CorpusEntry> base_entries;
  {
    auto corpus = CorpusReader::Open(path.get());
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    base_entries = corpus->entries();
  }
  std::vector<uint8_t> bytes = ReadFileBytes(path.get());
  const uint64_t v1_trailer_offset = bytes.size() - kCorpusTrailerBytes;
  bytes[4] = 2;
  Encoder index;
  index.PutVarint64(base_entries.size());
  for (const CorpusEntry& entry : base_entries) {
    index.PutString(entry.name);
    index.PutVarint64(entry.offset);
    index.PutVarint64(entry.length);
    index.PutString(entry.model);
    index.PutString(entry.scenario);
    index.PutVarint64(entry.event_count);
    index.PutDouble(entry.original_wall_seconds);
  }
  const uint64_t index_offset = bytes.size();
  const std::vector<uint8_t> section = EncodeTraceSection(
      TraceSection::kCorpusIndex, index.buffer(), /*allow_compress=*/true);
  bytes.insert(bytes.end(), section.begin(), section.end());
  Encoder trailer;
  trailer.PutFixed64(index_offset);
  trailer.PutFixed64(v1_trailer_offset);
  trailer.PutFixed32(2);  // generation
  trailer.PutFixed32(Crc32(trailer.buffer().data(), trailer.size()));
  trailer.PutFixed32(kCorpusJournalTrailerMagic);
  bytes.insert(bytes.end(), trailer.buffer().begin(), trailer.buffer().end());
  WriteFileBytes(path.get(), bytes);

  // The superseded generation-1 index + v1 trailer are dead under v2
  // accounting (the full generation-2 index replaces them).
  uint64_t v2_dead = 0;
  for (IoBackend backend : kAllBackends) {
    auto corpus = CorpusReader::Open(path.get(), WithBackend(backend, 0));
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    EXPECT_EQ(corpus->format_version(), kCorpusFormatVersionJournal);
    EXPECT_EQ(corpus->generation(), 2u);
    ASSERT_EQ(corpus->entries().size(), 2u);
    EXPECT_GT(corpus->dead_bytes(), 0u);
    v2_dead = corpus->dead_bytes();
    EXPECT_TRUE(corpus->VerifyAll().ok()) << IoBackendName(backend);
  }

  // A delta append upgrades the header to v3 and stitches against the
  // v2 full index; the dead accounting is unchanged by the new (live)
  // generation.
  {
    auto writer = CorpusWriter::AppendTo(path.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("c", MakeSyntheticRecording(150, 3), options).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_EQ(corpus->format_version(), kCorpusFormatVersionDelta);
  EXPECT_EQ(corpus->generation(), 3u);
  ASSERT_EQ(corpus->entries().size(), 3u);
  EXPECT_EQ(corpus->entries().back().name, "c");
  EXPECT_EQ(corpus->dead_bytes(), v2_dead);
  EXPECT_TRUE(corpus->VerifyAll().ok());
}

// Merging the split halves of a grid reproduces every embedded image of
// the single-shot build byte-for-byte (the whole file, in fact: same
// order, same offsets, same index).
TEST(CorpusLifecycleTest, MergeOfSplitBundlesMatchesSingleShotBuild) {
  const RecordedExecution r1 = MakeSyntheticRecording(350, 4);
  const RecordedExecution r2 = MakeSyntheticRecording(450, 5);
  const RecordedExecution r3 = MakeSyntheticRecording(250, 6);

  ScopedPath single("mergesingle");
  {
    CorpusWriter writer(single.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("g/a", r1).ok());
    ASSERT_TRUE(writer.Add("g/b", r2).ok());
    ASSERT_TRUE(writer.Add("g/c", r3).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  ScopedPath left("mergeleft");
  {
    CorpusWriter writer(left.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("g/a", r1).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  ScopedPath right("mergeright");
  {
    CorpusWriter writer(right.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("g/b", r2).ok());
    ASSERT_TRUE(writer.Add("g/c", r3).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  ScopedPath merged("mergeout");
  auto stats = MergeCorpora({left.get(), right.get()}, merged.get());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->added, 3u);
  EXPECT_EQ(stats->skipped, 0u);
  EXPECT_EQ(stats->renamed, 0u);

  EXPECT_EQ(ReadFileBytes(merged.get()), ReadFileBytes(single.get()));
  auto corpus = CorpusReader::Open(merged.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_TRUE(corpus->VerifyAll().ok());
}

TEST(CorpusLifecycleTest, MergeCollisionPolicies) {
  ScopedPath one("collide1");
  ScopedPath two("collide2");
  {
    CorpusWriter writer(one.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("same", MakeSyntheticRecording(100, 1)).ok());
    ASSERT_TRUE(writer.Add("only1", MakeSyntheticRecording(120, 2)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  {
    CorpusWriter writer(two.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("same", MakeSyntheticRecording(140, 3)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  // fail: error names the entry, output never appears.
  ScopedPath failed("collidefail");
  {
    MergeCorporaOptions options;
    options.on_collision = NameCollisionPolicy::kFail;
    auto stats = MergeCorpora({one.get(), two.get()}, failed.get(), options);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kAlreadyExists);
    EXPECT_NE(stats.status().message().find("same"), std::string::npos);
    std::ifstream target(failed.get(), std::ios::binary);
    EXPECT_FALSE(target.good());
  }

  // skip: the first occurrence wins.
  ScopedPath skipped("collideskip");
  {
    MergeCorporaOptions options;
    options.on_collision = NameCollisionPolicy::kSkip;
    auto stats = MergeCorpora({one.get(), two.get()}, skipped.get(), options);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats->added, 2u);
    EXPECT_EQ(stats->skipped, 1u);
    auto corpus = CorpusReader::Open(skipped.get());
    ASSERT_TRUE(corpus.ok());
    ASSERT_EQ(corpus->entries().size(), 2u);
    EXPECT_TRUE(corpus->VerifyAll().ok());
    // The survivor is input one's image, byte-for-byte.
    const std::vector<uint8_t> merged_bytes = ReadFileBytes(skipped.get());
    const std::vector<uint8_t> one_bytes = ReadFileBytes(one.get());
    auto one_corpus = CorpusReader::Open(one.get());
    ASSERT_TRUE(one_corpus.ok());
    EXPECT_EQ(SliceImage(merged_bytes, *corpus->Find("same")),
              SliceImage(one_bytes, *one_corpus->Find("same")));
  }

  // rename-suffix: the later image lands under "same~2", byte-identical
  // to its source.
  ScopedPath renamed("colliderename");
  {
    MergeCorporaOptions options;
    options.on_collision = NameCollisionPolicy::kRenameSuffix;
    auto stats = MergeCorpora({one.get(), two.get()}, renamed.get(), options);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats->added, 3u);
    EXPECT_EQ(stats->renamed, 1u);
    auto corpus = CorpusReader::Open(renamed.get());
    ASSERT_TRUE(corpus.ok());
    ASSERT_EQ(corpus->entries().size(), 3u);
    EXPECT_TRUE(corpus->VerifyAll().ok());
    const CorpusEntry* alias = corpus->Find("same~2");
    ASSERT_NE(alias, nullptr);
    const std::vector<uint8_t> merged_bytes = ReadFileBytes(renamed.get());
    const std::vector<uint8_t> two_bytes = ReadFileBytes(two.get());
    auto two_corpus = CorpusReader::Open(two.get());
    ASSERT_TRUE(two_corpus.ok());
    EXPECT_EQ(SliceImage(merged_bytes, *alias),
              SliceImage(two_bytes, *two_corpus->Find("same")));
  }

  EXPECT_TRUE(ParseNameCollisionPolicy("rename-suffix").ok());
  EXPECT_FALSE(ParseNameCollisionPolicy("clobber").ok());
}

// `output` may equal one of the inputs on every backend: each input is
// read through a handle opened before the output's temp-file rename, and
// an open handle (mmap mapping, pread fd, buffered stream alike) keeps
// serving the replaced inode's bytes, so a self-merge is an ordinary
// atomic rewrite.
TEST(CorpusLifecycleTest, MergeOutputMayEqualAnInput) {
  for (IoBackend backend : kAllBackends) {
    ScopedPath target("selfmerge_" +
                      std::string(IoBackendName(backend)));
    ScopedPath other("selfmergeother_" +
                     std::string(IoBackendName(backend)));
    {
      CorpusWriter writer(target.get());
      ASSERT_TRUE(writer.Begin().ok());
      ASSERT_TRUE(writer.Add("x", MakeSyntheticRecording(200, 1)).ok());
      ASSERT_TRUE(writer.Add("y", MakeSyntheticRecording(240, 2)).ok());
      ASSERT_TRUE(writer.Finish().ok());
    }
    {
      CorpusWriter writer(other.get());
      ASSERT_TRUE(writer.Begin().ok());
      ASSERT_TRUE(writer.Add("z", MakeSyntheticRecording(180, 3)).ok());
      ASSERT_TRUE(writer.Finish().ok());
    }
    const std::vector<uint8_t> target_before = ReadFileBytes(target.get());
    const std::vector<uint8_t> other_before = ReadFileBytes(other.get());
    auto target_pre = CorpusReader::Open(target.get());
    ASSERT_TRUE(target_pre.ok());
    auto other_pre = CorpusReader::Open(other.get());
    ASSERT_TRUE(other_pre.ok());
    const CorpusEntry x_before = *target_pre->Find("x");
    const CorpusEntry z_before = *other_pre->Find("z");

    MergeCorporaOptions options;
    options.io.backend = backend;
    auto stats =
        MergeCorpora({target.get(), other.get()}, target.get(), options);
    ASSERT_TRUE(stats.ok()) << IoBackendName(backend) << ": "
                            << stats.status();
    EXPECT_EQ(stats->added, 3u);

    auto merged = CorpusReader::Open(target.get());
    ASSERT_TRUE(merged.ok()) << merged.status();
    ASSERT_EQ(merged->entries().size(), 3u);
    EXPECT_TRUE(merged->VerifyAll().ok()) << IoBackendName(backend);
    const std::vector<uint8_t> merged_bytes = ReadFileBytes(target.get());
    EXPECT_EQ(SliceImage(merged_bytes, *merged->Find("x")),
              SliceImage(target_before, x_before));
    EXPECT_EQ(SliceImage(merged_bytes, *merged->Find("z")),
              SliceImage(other_before, z_before));

    // A failing self-merge (collision under kFail against a bundle that
    // re-lists "x") leaves the input byte-identical: the temp file never
    // renames in.
    ScopedPath clash("selfmergeclash_" +
                     std::string(IoBackendName(backend)));
    {
      CorpusWriter writer(clash.get());
      ASSERT_TRUE(writer.Begin().ok());
      ASSERT_TRUE(writer.Add("x", MakeSyntheticRecording(90, 4)).ok());
      ASSERT_TRUE(writer.Finish().ok());
    }
    auto failed =
        MergeCorpora({target.get(), clash.get()}, target.get(), options);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kAlreadyExists);
    EXPECT_EQ(ReadFileBytes(target.get()), merged_bytes);
  }
}

// Rename-suffix targets are computed against the full name set of all
// inputs, so the final name set is identical whatever the input order —
// a later input literally named "foo~2" keeps its name and an earlier
// collision renames past it (the order-dependent bug gave "foo~2~2" in
// one order and "foo~3" in the other).
TEST(CorpusLifecycleTest, RenameSuffixStableAcrossInputOrder) {
  ScopedPath a("suffixa");
  ScopedPath b("suffixb");
  ScopedPath c("suffixc");
  const RecordedExecution ra = MakeSyntheticRecording(110, 1);
  const RecordedExecution rb = MakeSyntheticRecording(130, 2);
  const RecordedExecution rc = MakeSyntheticRecording(150, 3);
  const auto build_one = [](const std::string& path, const std::string& name,
                            const RecordedExecution& recording) {
    CorpusWriter writer(path);
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add(name, recording).ok());
    ASSERT_TRUE(writer.Finish().ok());
  };
  build_one(a.get(), "foo", ra);
  build_one(b.get(), "foo", rb);
  build_one(c.get(), "foo~2", rc);

  MergeCorporaOptions options;
  options.on_collision = NameCollisionPolicy::kRenameSuffix;

  const auto merged_names = [&](const std::vector<std::string>& inputs,
                                const std::string& output) {
    auto stats = MergeCorpora(inputs, output, options);
    EXPECT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats->renamed, 1u);
    auto corpus = CorpusReader::Open(output);
    EXPECT_TRUE(corpus.ok()) << corpus.status();
    std::vector<std::string> names;
    for (const CorpusEntry& entry : corpus->entries()) {
      names.push_back(entry.name);
    }
    std::sort(names.begin(), names.end());
    return names;
  };

  ScopedPath out1("suffixout1");
  ScopedPath out2("suffixout2");
  const std::vector<std::string> names1 =
      merged_names({a.get(), b.get(), c.get()}, out1.get());
  const std::vector<std::string> names2 =
      merged_names({a.get(), c.get(), b.get()}, out2.get());
  EXPECT_EQ(names1, names2);
  EXPECT_EQ(names1,
            (std::vector<std::string>{"foo", "foo~2", "foo~3"}));

  // The literal "foo~2" keeps its own image; the colliding "foo" from
  // input b landed as "foo~3" — in both orders.
  for (const std::string& out : {out1.get(), out2.get()}) {
    auto corpus = CorpusReader::Open(out);
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    EXPECT_TRUE(corpus->VerifyAll().ok());
    const std::vector<uint8_t> out_bytes = ReadFileBytes(out);
    auto b_corpus = CorpusReader::Open(b.get());
    auto c_corpus = CorpusReader::Open(c.get());
    ASSERT_TRUE(b_corpus.ok());
    ASSERT_TRUE(c_corpus.ok());
    EXPECT_EQ(SliceImage(out_bytes, *corpus->Find("foo~2")),
              SliceImage(ReadFileBytes(c.get()), *c_corpus->Find("foo~2")));
    EXPECT_EQ(SliceImage(out_bytes, *corpus->Find("foo~3")),
              SliceImage(ReadFileBytes(b.get()), *b_corpus->Find("foo")));
  }
}

TEST(CorpusLifecycleTest, CompactDropsEntriesAndSurvivorsVerify) {
  ScopedPath path("compact");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("keep/a", MakeSyntheticRecording(200, 1)).ok());
    ASSERT_TRUE(writer.Add("drop/b", MakeSyntheticRecording(300, 2)).ok());
    ASSERT_TRUE(writer.Add("keep/c", MakeSyntheticRecording(250, 3)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  const std::vector<uint8_t> before = ReadFileBytes(path.get());
  auto original = CorpusReader::Open(path.get());
  ASSERT_TRUE(original.ok());
  const CorpusEntry keep_a = *original->Find("keep/a");
  const CorpusEntry keep_c = *original->Find("keep/c");

  // Unknown drop name: NotFound, bundle untouched.
  auto missing = CompactCorpus(path.get(), {"keep/a", "no-such"});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ReadFileBytes(path.get()), before);

  auto stats = CompactCorpus(path.get(), {"drop/b"});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->dropped, 1u);
  EXPECT_EQ(stats->added, 2u);

  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 2u);
  EXPECT_EQ(corpus->Find("drop/b"), nullptr);
  EXPECT_TRUE(corpus->VerifyAll().ok());
  // Survivor images are byte-identical to the originals.
  const std::vector<uint8_t> after = ReadFileBytes(path.get());
  EXPECT_EQ(SliceImage(after, *corpus->Find("keep/a")),
            SliceImage(before, keep_a));
  EXPECT_EQ(SliceImage(after, *corpus->Find("keep/c")),
            SliceImage(before, keep_c));

  // Dropping everything leaves a valid empty bundle.
  auto empty = CompactCorpus(path.get(), {"keep/a", "keep/c"});
  ASSERT_TRUE(empty.ok()) << empty.status();
  auto empty_corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(empty_corpus.ok()) << empty_corpus.status();
  EXPECT_TRUE(empty_corpus->entries().empty());
  EXPECT_TRUE(empty_corpus->VerifyAll().ok());
}

// Readers opened before an append keep serving the old bundle (their
// handle pins the replaced bytes); Reopen picks up the grown index.
TEST(CorpusLifecycleTest, ReopenPicksUpGrownIndex) {
  ScopedPath path("reopen");
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    ASSERT_TRUE(writer.Add("old", MakeSyntheticRecording(300, 1)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 1u);

  {
    auto writer = CorpusWriter::AppendTo(path.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Add("new", MakeSyntheticRecording(400, 2)).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  // Pre-append reader: old index, old bytes, still fully verifiable (the
  // in-place append only adds bytes past the trailer the old index knew).
  EXPECT_EQ(corpus->entries().size(), 1u);
  EXPECT_TRUE(corpus->VerifyAll().ok());
  EXPECT_EQ(corpus->Find("new"), nullptr);

  ASSERT_TRUE(corpus->Reopen().ok());
  ASSERT_EQ(corpus->entries().size(), 2u);
  EXPECT_TRUE(corpus->journaled());
  EXPECT_EQ(corpus->generation(), 2u);
  EXPECT_NE(corpus->Find("new"), nullptr);
  EXPECT_TRUE(corpus->VerifyAll().ok());
  auto loaded = corpus->LoadRecording("new");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->log.size(), 400u);
}

// 8 reader threads hammer a shared CorpusReader while an in-place append
// grows the bundle underneath them: every read stays consistent with the
// old index (the journal append never touches a byte the old index
// points at), and a Reopen afterwards serves the appended bundle.
TEST(CorpusLifecycleTest, ConcurrentReadersSurviveAppendThenReopen) {
  ScopedPath path("appendrace");
  constexpr size_t kOldEntries = 4;
  {
    CorpusWriter writer(path.get());
    ASSERT_TRUE(writer.Begin().ok());
    for (size_t i = 0; i < kOldEntries; ++i) {
      ASSERT_TRUE(writer
                      .Add("old/" + std::to_string(i),
                           MakeSyntheticRecording(300 + 40 * i, i + 1))
                      .ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }

  for (IoBackend backend : kAllBackends) {
    auto corpus =
        CorpusReader::Open(path.get(), WithBackend(backend, 8 << 20));
    ASSERT_TRUE(corpus.ok()) << corpus.status();

    std::vector<std::vector<uint8_t>> expected(kOldEntries);
    for (size_t e = 0; e < kOldEntries; ++e) {
      auto trace = corpus->OpenTrace(corpus->entries()[e]);
      ASSERT_TRUE(trace.ok());
      auto log = trace->ReadAllEvents();
      ASSERT_TRUE(log.ok());
      expected[e] = log->Encode();
    }

    std::atomic<bool> stop{false};
    std::vector<int> mismatches(8, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t]() {
        while (!stop.load(std::memory_order_relaxed)) {
          for (size_t e = 0; e < kOldEntries; ++e) {
            auto trace = corpus->OpenTrace(corpus->entries()[e]);
            if (!trace.ok()) {
              ++mismatches[t];
              continue;
            }
            auto log = trace->ReadAllEvents();
            if (!log.ok() || log->Encode() != expected[e]) {
              ++mismatches[t];
            }
          }
        }
      });
    }

    // Append in place while the readers run. A fresh name per backend
    // round keeps duplicate checks happy.
    const std::string appended =
        "race/" + std::string(IoBackendName(backend));
    {
      auto writer = CorpusWriter::AppendTo(path.get());
      ASSERT_TRUE(writer.ok()) << writer.status();
      ASSERT_TRUE(
          (*writer)->Add(appended, MakeSyntheticRecording(500, 99)).ok());
      ASSERT_TRUE((*writer)->Finish().ok());
    }
    stop.store(true);
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < 8; ++t) {
      EXPECT_EQ(mismatches[t], 0) << IoBackendName(backend) << " thread " << t;
    }

    // The shared object still serves the old index until Reopen.
    EXPECT_EQ(corpus->Find(appended), nullptr);
    ASSERT_TRUE(corpus->Reopen().ok()) << IoBackendName(backend);
    EXPECT_NE(corpus->Find(appended), nullptr);
    EXPECT_TRUE(corpus->VerifyAll().ok()) << IoBackendName(backend);
  }
}

// ------------------------------------------- Writer state-machine holes

TEST(CorpusWriterStateTest, OperationsOutsideBeginFinishReturnStatus) {
  const RecordedExecution recording = MakeSyntheticRecording(40);
  ScopedPath path("state");
  CorpusWriter writer(path.get());

  // Everything before Begin is a FailedPrecondition, not sink corruption.
  EXPECT_EQ(writer.Add("early", recording).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer.AddImage("early", std::vector<uint8_t>(64, 0), "m", "s", 1,
                            0.0)
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer.BeginRecording("early").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer.FinishRecording({}).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer.Finish().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(writer.Begin().ok());
  EXPECT_EQ(writer.Begin().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(writer.Add("ok", recording).ok());
  ASSERT_TRUE(writer.Finish().ok());

  // Double Finish and post-Finish adds are errors; the finished file
  // stays valid.
  EXPECT_EQ(writer.Finish().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer.Add("late", recording).code(),
            StatusCode::kFailedPrecondition);
  auto corpus = CorpusReader::Open(path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 1u);
  EXPECT_TRUE(corpus->VerifyAll().ok());
}

TEST(CorpusWriterStateTest, DuplicateNameErrorNamesTheOffender) {
  const RecordedExecution recording = MakeSyntheticRecording(30);
  ScopedPath path("dupname");
  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Add("grid/cell-7", recording).ok());
  const Status duplicate = writer.Add("grid/cell-7", recording);
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(duplicate.message().find("grid/cell-7"), std::string::npos)
      << duplicate.message();
  // A streaming duplicate fails at BeginRecording time, same message.
  const Status streaming = writer.BeginRecording("grid/cell-7").status();
  EXPECT_EQ(streaming.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(streaming.message().find("grid/cell-7"), std::string::npos);
  ASSERT_TRUE(writer.Finish().ok());
}

// --------------------------------------------------------------- Registry

TEST(ScenarioRegistryTest, EnumeratesAllScenariosUniquely) {
  const std::vector<BugScenario> scenarios = AllBugScenarios();
  ASSERT_EQ(scenarios.size(), 4u);
  std::vector<std::string> names;
  for (const BugScenario& scenario : scenarios) {
    names.push_back(scenario.name);
    EXPECT_NE(scenario.make_program, nullptr);
    auto found = FindBugScenario(scenario.name);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found->name, scenario.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::unique(names.begin(), names.end()) == names.end());
  EXPECT_EQ(FindBugScenario("no-such-bug").status().code(),
            StatusCode::kNotFound);
}

TEST(ScenarioRegistryTest, ParseDeterminismModelRoundtrips) {
  for (DeterminismModel model : AllDeterminismModels()) {
    auto parsed = ParseDeterminismModel(DeterminismModelName(model));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, model);
  }
  // Recorder model-name strings map back too.
  for (const char* name : {"rcse-code", "rcse-combined", "rcse-data", "rcse",
                           "debug-rcse"}) {
    auto parsed = ParseDeterminismModel(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, DeterminismModel::kDebugRcse);
  }
  EXPECT_FALSE(ParseDeterminismModel("quantum").ok());
}

// ------------------------------------------------------------ BatchRunner

std::vector<BugScenario> FastScenarios() {
  std::vector<BugScenario> scenarios;
  scenarios.push_back(MakeSumScenario());
  scenarios.push_back(MakeOverflowScenario());
  return scenarios;
}

TEST(BatchRunnerTest, ParallelRowsMatchSequentialRows) {
  BatchOptions sequential;
  sequential.threads = 1;
  sequential.models = {DeterminismModel::kPerfect, DeterminismModel::kValue,
                       DeterminismModel::kFailure};
  BatchOptions parallel = sequential;
  parallel.threads = 4;

  auto seq_report = BatchRunner(FastScenarios(), sequential).Run();
  ASSERT_TRUE(seq_report.ok()) << seq_report.status();
  auto par_report = BatchRunner(FastScenarios(), parallel).Run();
  ASSERT_TRUE(par_report.ok()) << par_report.status();

  ASSERT_EQ(seq_report->cells.size(), 6u);
  ASSERT_EQ(par_report->cells.size(), seq_report->cells.size());
  for (size_t i = 0; i < seq_report->cells.size(); ++i) {
    EXPECT_EQ(RowSignature(par_report->cells[i]),
              RowSignature(seq_report->cells[i]))
        << "cell " << i;
  }
}

TEST(BatchRunnerTest, WritesCorpusAndReportEndToEnd) {
  ScopedPath corpus_path("batch");
  BatchOptions options;
  options.threads = 4;
  options.models = {DeterminismModel::kPerfect, DeterminismModel::kFailure};
  options.corpus_path = corpus_path.get();
  options.trace_options.events_per_chunk = 64;
  options.trace_options.chunk_filter = TraceFilter::kVarintDelta;

  auto report = BatchRunner(FastScenarios(), options).Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->cells.size(), 4u);

  auto corpus = CorpusReader::Open(corpus_path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 4u);
  EXPECT_TRUE(corpus->VerifyAll().ok());
  for (size_t i = 0; i < report->cells.size(); ++i) {
    EXPECT_EQ(corpus->entries()[i].name, report->cells[i].recording_name);
    EXPECT_EQ(corpus->entries()[i].scenario, report->cells[i].scenario);
  }

  // The machine-readable report has one JSON object per cell.
  const std::string json = report->ToJsonLines();
  size_t lines = 0;
  for (char c : json) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, report->cells.size());
  EXPECT_NE(json.find("\"scenario\":\"sum\""), std::string::npos);
}

// Replaying the corpus from disk scores identically to the in-memory
// record -> replay pipeline (the PR's acceptance property).
TEST(BatchRunnerTest, CorpusReplayMatchesInMemoryRows) {
  ScopedPath corpus_path("replaymatch");
  BatchOptions options;
  options.threads = 2;
  options.models = {DeterminismModel::kPerfect, DeterminismModel::kValue,
                    DeterminismModel::kFailure, DeterminismModel::kDebugRcse};
  options.corpus_path = corpus_path.get();

  auto built = BatchRunner(FastScenarios(), options).Run();
  ASSERT_TRUE(built.ok()) << built.status();

  auto replayed = ReplayCorpus(corpus_path.get(), FastScenarios(),
                               /*threads=*/4);
  ASSERT_TRUE(replayed.ok()) << replayed.status();

  ASSERT_EQ(replayed->cells.size(), built->cells.size());
  for (size_t i = 0; i < built->cells.size(); ++i) {
    EXPECT_EQ(RowSignature(replayed->cells[i]), RowSignature(built->cells[i]))
        << "cell " << i;
  }
}

// The serve path at full concurrency: 8 workers sharing one CorpusReader
// handle and one decoded-chunk cache produce the same deterministic row
// signatures as a single worker on the cold stream backend — for every
// I/O backend.
TEST(BatchRunnerTest, SharedReaderParallelReplayMatchesAcrossBackends) {
  ScopedPath corpus_path("sharedreplay");
  BatchOptions options;
  options.threads = 2;
  options.models = {DeterminismModel::kPerfect, DeterminismModel::kValue,
                    DeterminismModel::kFailure};
  options.corpus_path = corpus_path.get();
  options.trace_options.chunk_filter = TraceFilter::kVarintDelta;
  auto built = BatchRunner(FastScenarios(), options).Run();
  ASSERT_TRUE(built.ok()) << built.status();

  // Baseline: sequential, buffered stream, no cache.
  ReplayCorpusOptions baseline;
  baseline.threads = 1;
  baseline.reader = WithBackend(IoBackend::kStream, 0);
  auto sequential = ReplayCorpus(corpus_path.get(), FastScenarios(), baseline);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  ASSERT_EQ(sequential->cells.size(), 6u);
  EXPECT_EQ(sequential->io_backend, "stream");
  EXPECT_EQ(sequential->cache_stats.hits, 0u);
  EXPECT_GT(sequential->corpus_bytes_read, 0u);

  for (IoBackend backend : kAllBackends) {
    ReplayCorpusOptions parallel;
    parallel.threads = 8;
    parallel.reader = WithBackend(backend, 32 << 20);
    auto replayed = ReplayCorpus(corpus_path.get(), FastScenarios(), parallel);
    ASSERT_TRUE(replayed.ok()) << replayed.status();
    ASSERT_EQ(replayed->cells.size(), sequential->cells.size());
    for (size_t i = 0; i < sequential->cells.size(); ++i) {
      EXPECT_EQ(RowSignature(replayed->cells[i]),
                RowSignature(sequential->cells[i]))
          << IoBackendName(backend) << " cell " << i;
    }
    EXPECT_EQ(replayed->io_backend, IoBackendName(backend));
  }
}

// A harness can stream a live recording directly into a corpus entry:
// RecordStreaming hands back the finish info and the corpus owns the
// writer lifecycle.
TEST(BatchRunnerTest, HarnessStreamsDirectlyIntoCorpus) {
  BugScenario scenario = MakeSumScenario();
  ExperimentHarness harness(scenario);
  ASSERT_TRUE(harness.Prepare().ok());

  ScopedPath path("streamed_entry");
  CorpusWriter corpus(path.get());
  ASSERT_TRUE(corpus.Begin().ok());
  auto writer = corpus.BeginRecording("sum/streamed");
  ASSERT_TRUE(writer.ok()) << writer.status();
  auto info = harness.RecordStreaming(DeterminismModel::kPerfect, *writer);
  ASSERT_TRUE(info.ok()) << info.status();
  ASSERT_TRUE(corpus.FinishRecording(*info).ok());
  ASSERT_TRUE(corpus.Finish().ok());

  auto reader = CorpusReader::Open(path.get());
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->entries().size(), 1u);
  EXPECT_EQ(reader->entries()[0].scenario, "sum");
  EXPECT_EQ(reader->entries()[0].model, "perfect");
  EXPECT_TRUE(reader->VerifyAll().ok());

  // The streamed entry replays like any other recording.
  auto replayed = ReplayCorpus(path.get(), AllBugScenarios());
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ASSERT_EQ(replayed->cells.size(), 1u);
  EXPECT_TRUE(replayed->cells[0].row.failure_reproduced);
}

// The PR's acceptance property: build a sub-grid, resume twice to fill in
// the missing cells, and the final bundle verifies everywhere and replays
// to the same deterministic rows as a single-shot build of the full grid.
TEST(BatchRunnerTest, ResumeAppendsOnlyMissingCells) {
  const std::vector<DeterminismModel> grid_models = {
      DeterminismModel::kPerfect, DeterminismModel::kValue,
      DeterminismModel::kFailure};

  ScopedPath single_path("resumesingle");
  BatchOptions single;
  single.threads = 2;
  single.models = grid_models;
  single.corpus_path = single_path.get();
  auto single_report = BatchRunner(FastScenarios(), single).Run();
  ASSERT_TRUE(single_report.ok()) << single_report.status();
  ASSERT_EQ(single_report->cells.size(), 6u);

  // Pass 1: one model only. Pass 2 (resume): two models — appends the
  // missing cells. Pass 3 (resume): full grid — appends the rest.
  ScopedPath grown_path("resumegrown");
  size_t ran = 0;
  for (size_t pass = 1; pass <= grid_models.size(); ++pass) {
    BatchOptions options;
    options.threads = 2;
    options.models.assign(grid_models.begin(),
                          grid_models.begin() + static_cast<ptrdiff_t>(pass));
    options.corpus_path = grown_path.get();
    options.resume = pass > 1;
    auto report = BatchRunner(FastScenarios(), options).Run();
    ASSERT_TRUE(report.ok()) << report.status();
    // Each pass runs exactly the new model's cells (2 scenarios x 1).
    EXPECT_EQ(report->cells.size(), 2u) << "pass " << pass;
    EXPECT_GT(report->corpus_bytes_written, 0u) << "pass " << pass;
    if (pass > 1) {
      // The in-place resume wrote only the new cells + index, never a
      // copy of the whole bundle.
      EXPECT_LT(report->corpus_bytes_written,
                FileSizeBytes(grown_path.get()))
          << "pass " << pass;
    }
    ran += report->cells.size();
  }
  EXPECT_EQ(ran, 6u);

  // Resuming a complete grid runs nothing and leaves the bundle alone.
  const std::vector<uint8_t> before = ReadFileBytes(grown_path.get());
  {
    BatchOptions options;
    options.threads = 2;
    options.models = grid_models;
    options.corpus_path = grown_path.get();
    options.resume = true;
    auto report = BatchRunner(FastScenarios(), options).Run();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->cells.empty());
    EXPECT_EQ(ReadFileBytes(grown_path.get()), before);
  }

  auto corpus = CorpusReader::Open(grown_path.get());
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ASSERT_EQ(corpus->entries().size(), 6u);
  // Two resume passes journaled two generations onto the base build.
  EXPECT_TRUE(corpus->journaled());
  EXPECT_EQ(corpus->generation(), 3u);
  EXPECT_TRUE(corpus->VerifyAll().ok());

  // The grown bundle replays to the same deterministic rows as the
  // single-shot grid. Entry order differs (cells landed append-pass by
  // append-pass), so compare the signature multisets.
  auto single_replay = ReplayCorpus(single_path.get(), FastScenarios());
  ASSERT_TRUE(single_replay.ok()) << single_replay.status();
  auto grown_replay = ReplayCorpus(grown_path.get(), FastScenarios());
  ASSERT_TRUE(grown_replay.ok()) << grown_replay.status();
  std::vector<std::string> single_sigs;
  std::vector<std::string> grown_sigs;
  for (const BatchCell& cell : single_replay->cells) {
    single_sigs.push_back(RowSignature(cell));
  }
  for (const BatchCell& cell : grown_replay->cells) {
    grown_sigs.push_back(RowSignature(cell));
  }
  std::sort(single_sigs.begin(), single_sigs.end());
  std::sort(grown_sigs.begin(), grown_sigs.end());
  EXPECT_EQ(single_sigs, grown_sigs);

  // Merging the per-pass layout back into grid order is byte-exact per
  // image, so a scenario-split resume (which preserves grid order) is
  // bit-identical to single-shot — asserted at the corpus layer in
  // CorpusLifecycleTest.AppendToMatchesSingleShotBitForBit.
}

TEST(BatchRunnerTest, ResumeRefusesCorruptBundle) {
  ScopedPath path("resumecorrupt");
  WriteFileBytes(path.get(), std::vector<uint8_t>(128, 0x5A));
  BatchOptions options;
  options.models = {DeterminismModel::kPerfect};
  options.corpus_path = path.get();
  options.resume = true;
  auto report = BatchRunner(FastScenarios(), options).Run();
  ASSERT_FALSE(report.ok());
  // The junk file is still there, untouched — not silently rebuilt.
  EXPECT_EQ(ReadFileBytes(path.get()), std::vector<uint8_t>(128, 0x5A));
}

TEST(BatchRunnerTest, ReplayCorpusRejectsUnknownScenario) {
  const RecordedExecution recording = MakeSyntheticRecording(20);
  ScopedPath path("unknown");
  TraceWriteOptions options;
  options.scenario = "not-a-registered-scenario";
  CorpusWriter writer(path.get());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Add("x", recording, options).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto replayed = ReplayCorpus(path.get(), AllBugScenarios());
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ddr
