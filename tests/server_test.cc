// Tests for the corpus-serving subsystem (src/server/): the framed RPC
// protocol, the CorpusServer daemon, and the CorpusClient library.
//
// The acceptance properties: a client replaying an entry over the socket
// gets a row bit-identical (RowSignature) to an in-process ReplayCorpus
// of the same bundle — including entries appended after the server
// started and picked up via `refresh` — and the shared decoded-chunk
// cache's counters survive the generation swap. Overload is loud
// (Unavailable, never silent queuing), a torn bundle tail recovers to
// the last valid generation, and SIGTERM-style drain finishes admitted
// work before the threads unwind.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/scenarios.h"
#include "src/core/batch_runner.h"
#include "src/server/corpus_client.h"
#include "src/server/corpus_server.h"
#include "src/server/protocol.h"
#include "src/trace/corpus.h"
#include "src/util/codec.h"
#include "src/util/crc32.h"
#include "src/util/fault_injection.h"
#include "src/util/file_lock.h"
#include "src/util/socket.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#define DDR_SERVER_TEST_HAVE_SOCKETS 1
#endif

namespace ddr {
namespace {

class ScopedPath {
 public:
  explicit ScopedPath(const std::string& name) : path_(name) {}
  ~ScopedPath() { std::remove(path_.c_str()); }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

std::vector<BugScenario> FastScenarios() {
  std::vector<BugScenario> scenarios;
  scenarios.push_back(MakeSumScenario());
  scenarios.push_back(MakeOverflowScenario());
  return scenarios;
}

// ----------------------------------------------------------- protocol

TEST(ProtocolTest, CommandNamesRoundTrip) {
  for (size_t c = 0; c < kRpcCommandCount; ++c) {
    const RpcCommand command = static_cast<RpcCommand>(c);
    auto parsed = ParseRpcCommand(std::string(RpcCommandName(command)));
    ASSERT_TRUE(parsed.ok()) << RpcCommandName(command);
    EXPECT_EQ(*parsed, command);
  }
  EXPECT_FALSE(ParseRpcCommand("reticulate").ok());
}

TEST(ProtocolTest, RequestRoundTrips) {
  RpcRequest request;
  request.command = RpcCommand::kReplay;
  request.name = "sum/perfect";
  request.model = "value";
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->command, request.command);
  EXPECT_EQ(decoded->name, request.name);
  EXPECT_EQ(decoded->model, request.model);

  // An out-of-range command byte is corruption, not a new command.
  std::vector<uint8_t> bytes = EncodeRequest(request);
  bytes[0] = 99;
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(ProtocolTest, ResponseRoundTrips) {
  RpcResponse ok_response;
  ok_response.code = StatusCode::kOk;
  ok_response.payload = {1, 2, 3, 0, 255};
  auto ok_decoded = DecodeResponse(EncodeResponse(ok_response));
  ASSERT_TRUE(ok_decoded.ok()) << ok_decoded.status();
  EXPECT_TRUE(ok_decoded->ok());
  EXPECT_EQ(ok_decoded->payload, ok_response.payload);
  EXPECT_TRUE(ok_decoded->ToStatus().ok());

  RpcResponse error_response;
  error_response.code = StatusCode::kUnavailable;
  error_response.message = "server overloaded: admission queue is full (8)";
  auto error_decoded = DecodeResponse(EncodeResponse(error_response));
  ASSERT_TRUE(error_decoded.ok()) << error_decoded.status();
  EXPECT_FALSE(error_decoded->ok());
  const Status status = error_decoded->ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.message(), error_response.message);
}

TEST(ProtocolTest, BatchCellRoundTripsBitExact) {
  BatchCell cell;
  cell.scenario = "sum";
  cell.recording_name = "sum/value";
  cell.row.model = DeterminismModel::kValue;
  cell.row.model_name = "value";
  // Deliberately awkward doubles: values whose decimal round-trip would
  // drift if the codec shipped text instead of bit patterns.
  cell.row.overhead_multiplier = 0.1 + 0.2;
  cell.row.log_bytes = 123456789;
  cell.row.recorded_events = 42;
  cell.row.failure_reproduced = true;
  cell.row.diagnosed_cause = "corrupt-table-entry";
  cell.row.divergences = 3;
  cell.row.input_assignment = {-5, 0, 9223372036854775807LL, -42};
  cell.row.fidelity = 1.0 / 3.0;
  cell.row.efficiency = 5.13e-300;
  cell.row.utility = 0.99999999999999989;
  cell.row.original_wall_seconds = 1.25;
  cell.row.replay_wall_seconds = 0.125;

  auto decoded = DecodeBatchCell(EncodeBatchCell(cell));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(RowSignature(*decoded), RowSignature(cell));
  EXPECT_EQ(decoded->row.model, cell.row.model);
  EXPECT_EQ(decoded->row.diagnosed_cause, cell.row.diagnosed_cause);
  EXPECT_EQ(decoded->row.input_assignment, cell.row.input_assignment);
  EXPECT_EQ(decoded->row.efficiency, cell.row.efficiency);
  EXPECT_EQ(decoded->row.replay_wall_seconds, cell.row.replay_wall_seconds);

  // A cell that never diagnosed anything keeps its nullopt distinct from
  // a present-but-empty cause.
  cell.row.diagnosed_cause.reset();
  cell.row.failure_reproduced = false;
  auto undiagnosed = DecodeBatchCell(EncodeBatchCell(cell));
  ASSERT_TRUE(undiagnosed.ok()) << undiagnosed.status();
  EXPECT_FALSE(undiagnosed->row.diagnosed_cause.has_value());
  EXPECT_EQ(RowSignature(*undiagnosed), RowSignature(cell));
}

TEST(ProtocolTest, TypedBodiesRoundTrip) {
  ServeInfo info;
  info.path = "bundle.ddrc";
  info.file_size = 590;
  info.journaled = true;
  info.generation = 7;
  info.dead_bytes = 123;
  info.entry_count = 4;
  info.io_backend = "mmap";
  info.writer_active = true;
  auto info_decoded = DecodeServeInfo(EncodeServeInfo(info));
  ASSERT_TRUE(info_decoded.ok()) << info_decoded.status();
  EXPECT_EQ(info_decoded->path, info.path);
  EXPECT_EQ(info_decoded->file_size, info.file_size);
  EXPECT_EQ(info_decoded->journaled, info.journaled);
  EXPECT_EQ(info_decoded->generation, info.generation);
  EXPECT_EQ(info_decoded->dead_bytes, info.dead_bytes);
  EXPECT_EQ(info_decoded->entry_count, info.entry_count);
  EXPECT_EQ(info_decoded->io_backend, info.io_backend);
  EXPECT_EQ(info_decoded->writer_active, info.writer_active);

  std::vector<ServeEntry> entries(2);
  entries[0] = {"sum/perfect", "perfect", "sum", 7, 265};
  entries[1] = {"sum/value", "value", "sum", 5, 229};
  auto entries_decoded = DecodeServeEntries(EncodeServeEntries(entries));
  ASSERT_TRUE(entries_decoded.ok()) << entries_decoded.status();
  ASSERT_EQ(entries_decoded->size(), 2u);
  EXPECT_EQ((*entries_decoded)[1].name, "sum/value");
  EXPECT_EQ((*entries_decoded)[1].length, 229u);

  ServeRefresh refresh;
  refresh.generation_before = 1;
  refresh.generation_after = 2;
  refresh.entries_before = 2;
  refresh.entries_after = 4;
  refresh.picked_up = true;
  auto refresh_decoded = DecodeServeRefresh(EncodeServeRefresh(refresh));
  ASSERT_TRUE(refresh_decoded.ok()) << refresh_decoded.status();
  EXPECT_EQ(refresh_decoded->generation_after, 2u);
  EXPECT_TRUE(refresh_decoded->picked_up);

  ServeStats stats;
  stats.requests_total = 100;
  stats.requests_by_command[static_cast<size_t>(RpcCommand::kReplay)] = 60;
  stats.bytes_served = 4096;
  stats.overload_rejections = 3;
  stats.refreshes = 2;
  stats.generations_picked_up = 1;
  stats.clients_total = 9;
  stats.clients_active = 4;
  stats.generation = 2;
  stats.entry_count = 4;
  stats.corpus_bytes_read = 1294;
  stats.cache.hits = 10;
  stats.cache.misses = 5;
  stats.cache.insertions = 5;
  stats.cache.bytes_in_use = 1088;
  auto stats_decoded = DecodeServeStats(EncodeServeStats(stats));
  ASSERT_TRUE(stats_decoded.ok()) << stats_decoded.status();
  EXPECT_EQ(stats_decoded->requests_total, 100u);
  EXPECT_EQ(stats_decoded->requests_by_command[static_cast<size_t>(
                RpcCommand::kReplay)],
            60u);
  EXPECT_EQ(stats_decoded->overload_rejections, 3u);
  EXPECT_EQ(stats_decoded->generations_picked_up, 1u);
  EXPECT_EQ(stats_decoded->cache.hits, 10u);
  EXPECT_EQ(stats_decoded->cache.bytes_in_use, 1088u);
}

#if DDR_SERVER_TEST_HAVE_SOCKETS

// ------------------------------------------------------------- framing

std::pair<Socket, Socket> LocalPair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

TEST(FrameTest, RoundTripsOverASocketPair) {
  auto [a, b] = LocalPair();
  const std::vector<uint8_t> payload = {0, 1, 2, 3, 250, 255};
  ASSERT_TRUE(WriteFrame(a, payload).ok());
  auto frame = ReadFrame(b);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ(**frame, payload);

  // A clean close on a frame boundary is the nullopt EOF, not an error.
  a.Close();
  auto eof = ReadFrame(b);
  ASSERT_TRUE(eof.ok()) << eof.status();
  EXPECT_FALSE(eof->has_value());
}

TEST(FrameTest, RejectsBadMagicOversizedLengthAndCrcMismatch) {
  {
    auto [a, b] = LocalPair();
    Encoder header;
    header.PutFixed32(0xDEADBEEFu);
    header.PutFixed32(0);
    header.PutFixed32(0);
    ASSERT_TRUE(a.SendAll(header.buffer().data(), header.size()).ok());
    EXPECT_FALSE(ReadFrame(b).ok());
  }
  {
    auto [a, b] = LocalPair();
    Encoder header;
    header.PutFixed32(kRpcFrameMagic);
    header.PutFixed32(kRpcMaxPayloadBytes + 1);
    header.PutFixed32(0);
    ASSERT_TRUE(a.SendAll(header.buffer().data(), header.size()).ok());
    // The oversized length is rejected from the header alone — no
    // payload ever existed, so a huge allocation cannot be provoked.
    EXPECT_FALSE(ReadFrame(b).ok());
  }
  {
    auto [a, b] = LocalPair();
    const std::vector<uint8_t> payload = {9, 9, 9};
    Encoder frame;
    frame.PutFixed32(kRpcFrameMagic);
    frame.PutFixed32(static_cast<uint32_t>(payload.size()));
    frame.PutFixed32(Crc32(payload.data(), payload.size()) ^ 1);
    ASSERT_TRUE(a.SendAll(frame.buffer().data(), frame.size()).ok());
    ASSERT_TRUE(a.SendAll(payload.data(), payload.size()).ok());
    EXPECT_FALSE(ReadFrame(b).ok());
  }
  {
    // A torn frame: header promises 8 payload bytes, the peer dies after 3.
    auto [a, b] = LocalPair();
    const std::vector<uint8_t> partial = {1, 2, 3};
    Encoder frame;
    frame.PutFixed32(kRpcFrameMagic);
    frame.PutFixed32(8);
    frame.PutFixed32(0);
    ASSERT_TRUE(a.SendAll(frame.buffer().data(), frame.size()).ok());
    ASSERT_TRUE(a.SendAll(partial.data(), partial.size()).ok());
    a.Close();
    EXPECT_FALSE(ReadFrame(b).ok());
  }
}

// -------------------------------------------------------------- server

void BuildBundle(const std::string& path,
                 const std::vector<DeterminismModel>& models,
                 bool resume = false) {
  BatchOptions options;
  options.threads = 2;
  options.models = models;
  options.corpus_path = path;
  options.resume = resume;
  auto report = BatchRunner(FastScenarios(), options).Run();
  ASSERT_TRUE(report.ok()) << report.status();
}

// name -> RowSignature from an in-process replay of the whole bundle:
// the ground truth every over-the-wire row is compared against.
std::map<std::string, std::string> BaselineSignatures(
    const std::string& path) {
  std::map<std::string, std::string> signatures;
  auto replayed = ReplayCorpus(path, FastScenarios());
  EXPECT_TRUE(replayed.ok()) << replayed.status();
  if (replayed.ok()) {
    for (const BatchCell& cell : replayed->cells) {
      signatures[cell.recording_name] = RowSignature(cell);
    }
  }
  return signatures;
}

CorpusServerOptions UnixOptions(const std::string& socket_path) {
  CorpusServerOptions options;
  options.socket_path = socket_path;
  options.scenarios = FastScenarios();
  return options;
}

TEST(CorpusServerTest, StartRejectsAmbiguousEndpoints) {
  ScopedPath bundle("server_test_endpoints.ddrc");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});

  CorpusServerOptions neither;
  neither.scenarios = FastScenarios();
  auto no_endpoint = CorpusServer::Start(bundle.get(), neither);
  ASSERT_FALSE(no_endpoint.ok());
  EXPECT_EQ(no_endpoint.status().code(), StatusCode::kInvalidArgument);

  CorpusServerOptions both = neither;
  both.socket_path = "server_test_endpoints.sock";
  both.tcp_port = 0;
  auto two_endpoints = CorpusServer::Start(bundle.get(), both);
  ASSERT_FALSE(two_endpoints.ok());
  EXPECT_EQ(two_endpoints.status().code(), StatusCode::kInvalidArgument);
}

TEST(CorpusServerTest, ServesInfoListVerifyReplayOverUnixSocket) {
  ScopedPath bundle("server_test_basic.ddrc");
  ScopedPath socket_path("server_test_basic.sock");
  BuildBundle(bundle.get(),
              {DeterminismModel::kPerfect, DeterminismModel::kValue});
  const std::map<std::string, std::string> baseline =
      BaselineSignatures(bundle.get());
  ASSERT_EQ(baseline.size(), 4u);

  auto server = CorpusServer::Start(bundle.get(), UnixOptions(socket_path.get()));
  ASSERT_TRUE(server.ok()) << server.status();
  EXPECT_TRUE((*server)->running());

  auto client = CorpusClient::ConnectUnixSocket(socket_path.get());
  ASSERT_TRUE(client.ok()) << client.status();

  auto info = client->Info();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->path, bundle.get());
  EXPECT_EQ(info->entry_count, 4u);
  EXPECT_EQ(info->generation, 1u);
  EXPECT_FALSE(info->journaled);
  EXPECT_FALSE(info->writer_active);
  EXPECT_GT(info->file_size, 0u);

  auto entries = client->List();
  ASSERT_TRUE(entries.ok()) << entries.status();
  ASSERT_EQ(entries->size(), 4u);
  for (const ServeEntry& entry : *entries) {
    EXPECT_EQ(baseline.count(entry.name), 1u) << entry.name;
    EXPECT_GT(entry.length, 0u) << entry.name;
  }

  auto whole = client->Verify();
  ASSERT_TRUE(whole.ok()) << whole.status();
  EXPECT_EQ(*whole, 4u);
  auto one = client->Verify((*entries)[0].name);
  ASSERT_TRUE(one.ok()) << one.status();
  EXPECT_EQ(*one, 1u);
  auto missing = client->Verify("no/such-entry");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Every entry replays over the wire to the exact in-process signature.
  for (const auto& [name, signature] : baseline) {
    auto cell = client->Replay(name);
    ASSERT_TRUE(cell.ok()) << name << ": " << cell.status();
    EXPECT_EQ(RowSignature(*cell), signature) << name;
  }

  // A model override re-scores the recording under the requested model.
  auto overridden = client->Replay("sum/perfect", "value");
  ASSERT_TRUE(overridden.ok()) << overridden.status();
  EXPECT_EQ(overridden->row.model_name, "value");
  auto bad_model = client->Replay("sum/perfect", "quantum");
  EXPECT_FALSE(bad_model.ok());

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->requests_total, 9u);
  EXPECT_EQ(stats->overload_rejections, 0u);
  EXPECT_EQ(stats->clients_active, 1u);
  EXPECT_GT(stats->bytes_served, 0u);
}

TEST(CorpusServerTest, ServesOverLoopbackTcp) {
  ScopedPath bundle("server_test_tcp.ddrc");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});

  CorpusServerOptions options;
  options.tcp_port = 0;  // kernel-assigned
  options.scenarios = FastScenarios();
  auto server = CorpusServer::Start(bundle.get(), options);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_GT((*server)->tcp_port(), 0);

  auto client = CorpusClient::ConnectTcpSocket("127.0.0.1",
                                               (*server)->tcp_port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto info = client->Info();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->entry_count, 2u);
}

// The PR's acceptance property: entries appended after the server
// started replay over the socket — post-refresh — with bit-identical
// row signatures, and the warm cache's counters survive the swap.
TEST(CorpusServerTest, RefreshPicksUpAppendAndKeepsWarmCache) {
  ScopedPath bundle("server_test_refresh.ddrc");
  ScopedPath socket_path("server_test_refresh.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});

  auto server = CorpusServer::Start(bundle.get(), UnixOptions(socket_path.get()));
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = CorpusClient::ConnectUnixSocket(socket_path.get());
  ASSERT_TRUE(client.ok()) << client.status();

  // Warm the shared cache with the generation-1 entries; a second replay
  // of a warm entry hits instead of re-decoding.
  for (const char* name : {"sum/perfect", "overflow/perfect", "sum/perfect"}) {
    auto cell = client->Replay(name);
    ASSERT_TRUE(cell.ok()) << name << ": " << cell.status();
  }
  auto before = client->Stats();
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->generation, 1u);
  EXPECT_EQ(before->entry_count, 2u);
  EXPECT_GT(before->cache.insertions, 0u);
  EXPECT_GT(before->cache.hits, 0u);

  // Grow the bundle behind the server's back (the in-place journal
  // append), then pick the new generation up explicitly.
  BuildBundle(bundle.get(),
              {DeterminismModel::kPerfect, DeterminismModel::kValue},
              /*resume=*/true);
  auto refresh = client->Refresh();
  ASSERT_TRUE(refresh.ok()) << refresh.status();
  EXPECT_TRUE(refresh->picked_up);
  EXPECT_EQ(refresh->generation_before, 1u);
  EXPECT_EQ(refresh->generation_after, 2u);
  EXPECT_EQ(refresh->entries_before, 2u);
  EXPECT_EQ(refresh->entries_after, 4u);

  // A second refresh with nothing new is a no-op, loudly reported as one.
  auto idle = client->Refresh();
  ASSERT_TRUE(idle.ok()) << idle.status();
  EXPECT_FALSE(idle->picked_up);

  // The appended entries replay over the wire bit-identically to an
  // in-process replay of the grown bundle.
  const std::map<std::string, std::string> baseline =
      BaselineSignatures(bundle.get());
  ASSERT_EQ(baseline.size(), 4u);
  for (const char* name : {"sum/value", "overflow/value"}) {
    auto cell = client->Replay(name);
    ASSERT_TRUE(cell.ok()) << name << ": " << cell.status();
    EXPECT_EQ(RowSignature(*cell), baseline.at(name)) << name;
  }

  // The cache object carried over the swap: the counters are cumulative,
  // never reset (the acceptance property — warm-cache accounting
  // survives the generation swap). Entries keyed to the pre-swap file
  // handle are deliberately orphaned (staleness safety), so hits keep
  // accruing from the new generation's reads, on top of the old total.
  auto after = client->Stats();
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->generation, 2u);
  EXPECT_EQ(after->entry_count, 4u);
  EXPECT_EQ(after->refreshes, 2u);
  EXPECT_EQ(after->generations_picked_up, 1u);
  EXPECT_GE(after->cache.hits, before->cache.hits);
  EXPECT_GE(after->cache.insertions, before->cache.insertions);
  EXPECT_GE(after->cache.misses, before->cache.misses);

  auto warm = client->Replay("sum/value");
  ASSERT_TRUE(warm.ok()) << warm.status();
  auto warmer = client->Stats();
  ASSERT_TRUE(warmer.ok()) << warmer.status();
  EXPECT_GT(warmer->cache.hits, after->cache.hits);
}

TEST(CorpusServerTest, WatcherPicksUpAppendWithoutExplicitRefresh) {
  ScopedPath bundle("server_test_watch.ddrc");
  ScopedPath socket_path("server_test_watch.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});

  CorpusServerOptions options = UnixOptions(socket_path.get());
  options.watch_interval_ms = 20;
  auto server = CorpusServer::Start(bundle.get(), options);
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = CorpusClient::ConnectUnixSocket(socket_path.get());
  ASSERT_TRUE(client.ok()) << client.status();

  BuildBundle(bundle.get(),
              {DeterminismModel::kPerfect, DeterminismModel::kFailure},
              /*resume=*/true);

  // The watcher polls the file size; give it a bounded window to notice.
  uint64_t entry_count = 0;
  for (int i = 0; i < 250 && entry_count != 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto stats = client->Stats();
    ASSERT_TRUE(stats.ok()) << stats.status();
    entry_count = stats->entry_count;
  }
  EXPECT_EQ(entry_count, 4u);

  auto cell = client->Replay("sum/failure");
  ASSERT_TRUE(cell.ok()) << cell.status();
  EXPECT_EQ(RowSignature(*cell), BaselineSignatures(bundle.get()).at("sum/failure"));
}

TEST(CorpusServerTest, OverloadAnswersUnavailableLoudly) {
  ScopedPath bundle("server_test_overload.ddrc");
  ScopedPath socket_path("server_test_overload.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});

  // One worker, a one-slot queue, and a deliberate per-request stall:
  // request 1 occupies the worker, request 2 fills the queue, request 3
  // must bounce with Unavailable instead of queuing silently.
  CorpusServerOptions options = UnixOptions(socket_path.get());
  options.workers = 1;
  options.queue_capacity = 1;
  options.debug_handler_delay_ms = 400;
  auto server = CorpusServer::Start(bundle.get(), options);
  ASSERT_TRUE(server.ok()) << server.status();

  auto c1 = CorpusClient::ConnectUnixSocket(socket_path.get());
  auto c2 = CorpusClient::ConnectUnixSocket(socket_path.get());
  auto c3 = CorpusClient::ConnectUnixSocket(socket_path.get());
  ASSERT_TRUE(c1.ok() && c2.ok() && c3.ok());

  std::atomic<int> served{0};
  std::thread first([&] {
    auto verified = c1->Verify();
    EXPECT_TRUE(verified.ok()) << verified.status();
    served.fetch_add(verified.ok() ? 1 : 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread second([&] {
    auto verified = c2->Verify();
    EXPECT_TRUE(verified.ok()) << verified.status();
    served.fetch_add(verified.ok() ? 1 : 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  auto rejected = c3->Verify();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("overloaded"), std::string::npos)
      << rejected.status();

  first.join();
  second.join();
  EXPECT_EQ(served.load(), 2);

  // The rejection was counted, and the connection survived it: the same
  // client can retry once the stall clears.
  auto stats = c3->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->overload_rejections, 1u);
}

TEST(CorpusServerTest, TornTailBundleServesLastValidGeneration) {
  ScopedPath bundle("server_test_torn.ddrc");
  ScopedPath socket_path("server_test_torn.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});
  BuildBundle(bundle.get(),
              {DeterminismModel::kPerfect, DeterminismModel::kValue},
              /*resume=*/true);

  // A crashed appender leaves unpublished garbage after the last valid
  // trailer; the server must come up serving generation 2 regardless.
  {
    std::ofstream out(bundle.get(),
                      std::ios::binary | std::ios::app | std::ios::ate);
    const std::vector<char> garbage(512, '\xAB');
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
    ASSERT_TRUE(out.good());
  }

  auto server = CorpusServer::Start(bundle.get(), UnixOptions(socket_path.get()));
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = CorpusClient::ConnectUnixSocket(socket_path.get());
  ASSERT_TRUE(client.ok()) << client.status();

  auto info = client->Info();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->generation, 2u);
  EXPECT_EQ(info->entry_count, 4u);
  EXPECT_TRUE(info->journaled);

  auto verified = client->Verify();
  ASSERT_TRUE(verified.ok()) << verified.status();
  EXPECT_EQ(*verified, 4u);
  auto cell = client->Replay("sum/value");
  ASSERT_TRUE(cell.ok()) << cell.status();
}

TEST(CorpusServerTest, ConcurrentClientsReplayCorrectlyDuringAppend) {
  ScopedPath bundle("server_test_concurrent.ddrc");
  ScopedPath socket_path("server_test_concurrent.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});
  const std::map<std::string, std::string> base_signatures =
      BaselineSignatures(bundle.get());

  CorpusServerOptions options = UnixOptions(socket_path.get());
  options.workers = 4;
  options.queue_capacity = 64;
  auto server = CorpusServer::Start(bundle.get(), options);
  ASSERT_TRUE(server.ok()) << server.status();

  // N clients hammer the generation-1 entries while the appender grows
  // the bundle and a refresh swaps the index mid-flight. Every reply
  // must stay bit-identical to the baseline: published bytes are never
  // mutated and in-flight windows outlive the swap.
  constexpr int kClients = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = CorpusClient::ConnectUnixSocket(socket_path.get());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const char* name = c % 2 == 0 ? "sum/perfect" : "overflow/perfect";
      for (int i = 0; i < 6; ++i) {
        auto cell = client->Replay(name);
        if (!cell.ok() ||
            RowSignature(*cell) != base_signatures.at(name)) {
          failures.fetch_add(1);
        }
      }
    });
  }

  BuildBundle(bundle.get(),
              {DeterminismModel::kPerfect, DeterminismModel::kValue},
              /*resume=*/true);
  auto refresh = (*server)->Refresh();
  ASSERT_TRUE(refresh.ok()) << refresh.status();
  EXPECT_TRUE(refresh->picked_up);

  for (std::thread& thread : clients) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Post-swap, the new generation serves and signatures still match an
  // in-process replay of the grown bundle.
  auto client = CorpusClient::ConnectUnixSocket(socket_path.get());
  ASSERT_TRUE(client.ok()) << client.status();
  auto cell = client->Replay("overflow/value");
  ASSERT_TRUE(cell.ok()) << cell.status();
  EXPECT_EQ(RowSignature(*cell),
            BaselineSignatures(bundle.get()).at("overflow/value"));
}

TEST(CorpusServerTest, ShutdownRpcDrainsAndUnbindsTheSocket) {
  ScopedPath bundle("server_test_shutdown.ddrc");
  ScopedPath socket_path("server_test_shutdown.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});

  auto server = CorpusServer::Start(bundle.get(), UnixOptions(socket_path.get()));
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = CorpusClient::ConnectUnixSocket(socket_path.get());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client->Verify().ok());

  // The shutdown ack arrives before the drain, then Wait() returns once
  // every thread has unwound and the socket file is gone.
  ASSERT_TRUE(client->Shutdown().ok());
  (*server)->Wait();
  EXPECT_FALSE((*server)->running());

  auto late = CorpusClient::ConnectUnixSocket(socket_path.get());
  EXPECT_FALSE(late.ok());

  const ServeStats stats = (*server)->Snapshot();
  EXPECT_GE(stats.requests_total, 2u);
  EXPECT_EQ(stats.clients_active, 0u);
}

// ------------------------------------------------------------ file lock

TEST(FileLockTest, ProbeSeesExclusiveHolderAndMissingFile) {
  auto missing = FileExclusivelyLocked("server_test_no_such_file.ddrc");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  ScopedPath bundle("server_test_lock.ddrc");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});

  // Nobody holds the writer lock: the shared probe acquires + releases.
  auto unlocked = FileExclusivelyLocked(bundle.get());
  ASSERT_TRUE(unlocked.ok()) << unlocked.status();
  EXPECT_FALSE(*unlocked);

  // An open in-place appender holds the flock until Finish; the probe
  // (and the `info` RPC's writer_active) must see it without blocking.
  {
    auto writer = CorpusWriter::AppendTo(bundle.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    auto held = FileExclusivelyLocked(bundle.get());
    ASSERT_TRUE(held.ok()) << held.status();
    EXPECT_TRUE(*held);
    auto via_corpus = CorpusWriterActive(bundle.get());
    ASSERT_TRUE(via_corpus.ok()) << via_corpus.status();
    EXPECT_TRUE(*via_corpus);
  }
  // Abandoning the writer releases the lock (nothing was published).
  auto released = CorpusWriterActive(bundle.get());
  ASSERT_TRUE(released.ok()) << released.status();
  EXPECT_FALSE(*released);
}

TEST(CorpusServerTest, InfoReportsActiveWriterDuringInPlaceAppend) {
  ScopedPath bundle("server_test_writerinfo.ddrc");
  ScopedPath socket_path("server_test_writerinfo.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});

  auto server = CorpusServer::Start(bundle.get(), UnixOptions(socket_path.get()));
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = CorpusClient::ConnectUnixSocket(socket_path.get());
  ASSERT_TRUE(client.ok()) << client.status();

  {
    auto writer = CorpusWriter::AppendTo(bundle.get());
    ASSERT_TRUE(writer.ok()) << writer.status();
    auto info = client->Info();
    ASSERT_TRUE(info.ok()) << info.status();
    EXPECT_TRUE(info->writer_active);
  }
  auto info = client->Info();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_FALSE(info->writer_active);
}

// ----------------------------------------------------------- resilience

// Clears the process-wide fault plan even when an ASSERT bails out of
// the test early — an armed plan must never leak into the next test.
struct ScopedFaultPlan {
  explicit ScopedFaultPlan(const std::string& plan) {
    EXPECT_TRUE(SetFaultPlan(plan).ok());
  }
  ~ScopedFaultPlan() { ClearFaultPlan(); }
};

TEST(ResilienceTest, FrameDeadlineIsDistinctFromSocketErrors) {
  // Nothing ever arrives: the poll-based read must answer
  // DeadlineExceeded, not hang and not claim the socket broke.
  {
    auto [a, b] = LocalPair();
    auto timed_out = ReadFrameWithDeadline(b, 100);
    ASSERT_FALSE(timed_out.ok());
    EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  }
  // A peer that stalls mid-header is also a deadline, not a torn frame.
  {
    auto [a, b] = LocalPair();
    const uint8_t half_header[6] = {'D', 'R', 'P', 'C', 0, 0};
    ASSERT_TRUE(a.SendAll(half_header, sizeof(half_header)).ok());
    auto timed_out = ReadFrameWithDeadline(b, 100);
    ASSERT_FALSE(timed_out.ok());
    EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  }
  // A close mid-frame stays Unavailable — the deadline path must not
  // absorb real transport failures.
  {
    auto [a, b] = LocalPair();
    const uint8_t half_header[6] = {'D', 'R', 'P', 'C', 0, 0};
    ASSERT_TRUE(a.SendAll(half_header, sizeof(half_header)).ok());
    a.Close();
    auto torn = ReadFrameWithDeadline(b, 1000);
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.status().code(), StatusCode::kUnavailable);
  }
  // And a whole frame arriving in time reads normally.
  {
    auto [a, b] = LocalPair();
    const std::vector<uint8_t> payload = {1, 2, 3};
    ASSERT_TRUE(WriteFrame(a, payload).ok());
    auto frame = ReadFrameWithDeadline(b, 1000);
    ASSERT_TRUE(frame.ok()) << frame.status();
    ASSERT_TRUE(frame->has_value());
    EXPECT_EQ(**frame, payload);
  }
}

TEST(ResilienceTest, ClientRetriesTransientConnectFailure) {
  ScopedPath bundle("server_test_reconnect.ddrc");
  ScopedPath socket_path("server_test_reconnect.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});
  const std::map<std::string, std::string> baseline =
      BaselineSignatures(bundle.get());

  auto server = CorpusServer::Start(bundle.get(), UnixOptions(socket_path.get()));
  ASSERT_TRUE(server.ok()) << server.status();

  CorpusClientOptions retrying;
  retrying.max_retries = 2;
  retrying.backoff_initial_ms = 5;

  // Without retries the injected connect failure is loud...
  {
    ScopedFaultPlan plan("socket.connect:unavail@1");
    auto refused = CorpusClient::ConnectUnixSocket(socket_path.get());
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  }
  // ...with retries the same failure is absorbed, and the rows served
  // over the healed connection are bit-identical to in-process replay.
  {
    ScopedFaultPlan plan("socket.connect:unavail@1");
    auto client = CorpusClient::ConnectUnixSocket(socket_path.get(), retrying);
    ASSERT_TRUE(client.ok()) << client.status();
    const std::string name = baseline.begin()->first;
    auto cell = client->Replay(name);
    ASSERT_TRUE(cell.ok()) << cell.status();
    EXPECT_EQ(RowSignature(*cell), baseline.at(name));
  }
}

TEST(ResilienceTest, ClientSurvivesStalledResponseWithinRetryBudget) {
  ScopedPath bundle("server_test_stall.ddrc");
  ScopedPath socket_path("server_test_stall.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});
  const std::map<std::string, std::string> baseline =
      BaselineSignatures(bundle.get());

  auto server = CorpusServer::Start(bundle.get(), UnixOptions(socket_path.get()));
  ASSERT_TRUE(server.ok()) << server.status();

  CorpusClientOptions options;
  options.timeout_ms = 200;
  options.max_retries = 2;
  options.backoff_initial_ms = 5;
  auto client = CorpusClient::ConnectUnixSocket(socket_path.get(), options);
  ASSERT_TRUE(client.ok()) << client.status();

  // The first response stalls past the client deadline; the retry (on a
  // fresh connection) is answered promptly and must return the exact
  // same row the stalled attempt would have.
  ScopedFaultPlan plan("server.respond:stall@1=600");
  const std::string name = baseline.begin()->first;
  auto cell = client->Replay(name);
  ASSERT_TRUE(cell.ok()) << cell.status();
  EXPECT_EQ(RowSignature(*cell), baseline.at(name));
}

TEST(ResilienceTest, ClientAnswersDeadlineExceededOnceBudgetIsSpent) {
  ScopedPath bundle("server_test_budget.ddrc");
  ScopedPath socket_path("server_test_budget.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});

  auto server = CorpusServer::Start(bundle.get(), UnixOptions(socket_path.get()));
  ASSERT_TRUE(server.ok()) << server.status();

  CorpusClientOptions options;
  options.timeout_ms = 150;
  options.max_retries = 1;
  options.backoff_initial_ms = 5;
  auto client = CorpusClient::ConnectUnixSocket(socket_path.get(), options);
  ASSERT_TRUE(client.ok()) << client.status();

  // Every response stalls past the deadline: both attempts miss, and the
  // final answer is DeadlineExceeded — not a hang, not Unavailable.
  {
    ScopedFaultPlan plan("server.respond:stall=600");
    auto info = client->Info();
    ASSERT_FALSE(info.ok());
    EXPECT_EQ(info.status().code(), StatusCode::kDeadlineExceeded);
  }
  // With the faults gone the same client recovers on its next call.
  auto info = client->Info();
  ASSERT_TRUE(info.ok()) << info.status();
}

TEST(ResilienceTest, RowsStayBitIdenticalUnderInjectedSendFaults) {
  ScopedPath bundle("server_test_bitident.ddrc");
  ScopedPath socket_path("server_test_bitident.sock");
  BuildBundle(bundle.get(),
              {DeterminismModel::kPerfect, DeterminismModel::kValue});
  const std::map<std::string, std::string> baseline =
      BaselineSignatures(bundle.get());
  ASSERT_FALSE(baseline.empty());

  auto server = CorpusServer::Start(bundle.get(), UnixOptions(socket_path.get()));
  ASSERT_TRUE(server.ok()) << server.status();

  CorpusClientOptions options;
  options.timeout_ms = 2000;
  options.max_retries = 3;
  options.backoff_initial_ms = 5;
  auto client = CorpusClient::ConnectUnixSocket(socket_path.get(), options);
  ASSERT_TRUE(client.ok()) << client.status();

  // Every second request send bounces with Unavailable; the retry loop
  // must make that invisible — every row of the whole bundle replays
  // bit-identically to the in-process baseline.
  ScopedFaultPlan plan("client.send:unavail/2");
  for (const auto& [name, signature] : baseline) {
    auto cell = client->Replay(name);
    ASSERT_TRUE(cell.ok()) << name << ": " << cell.status();
    EXPECT_EQ(RowSignature(*cell), signature) << name;
  }
}

TEST(ResilienceTest, ServerReadDeadlineCutsAStalledClientLoose) {
  ScopedPath bundle("server_test_stalledclient.ddrc");
  ScopedPath socket_path("server_test_stalledclient.sock");
  BuildBundle(bundle.get(), {DeterminismModel::kPerfect});

  CorpusServerOptions options = UnixOptions(socket_path.get());
  options.request_timeout_ms = 200;
  auto server = CorpusServer::Start(bundle.get(), options);
  ASSERT_TRUE(server.ok()) << server.status();

  // A client that sends half a frame header and stalls must be answered
  // (DeadlineExceeded) and hung up on — never allowed to pin its reader
  // thread forever.
  auto stalled = ConnectUnix(socket_path.get());
  ASSERT_TRUE(stalled.ok()) << stalled.status();
  const uint8_t half_header[6] = {'D', 'R', 'P', 'C', 0, 0};
  ASSERT_TRUE(stalled->SendAll(half_header, sizeof(half_header)).ok());
  auto answer = ReadFrameWithDeadline(*stalled, 2000);
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_TRUE(answer->has_value());
  auto response = DecodeResponse(**answer);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded);
  // The connection is then closed from the server side.
  auto eof = ReadFrameWithDeadline(*stalled, 2000);
  ASSERT_TRUE(eof.ok()) << eof.status();
  EXPECT_FALSE(eof->has_value());

  // Meanwhile a healthy client on another connection is unaffected.
  auto healthy = CorpusClient::ConnectUnixSocket(socket_path.get());
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  auto verified = healthy->Verify();
  EXPECT_TRUE(verified.ok()) << verified.status();
}

#endif  // DDR_SERVER_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace ddr
