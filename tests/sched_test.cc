// Tests for the deterministic schedule explorer (src/analysis/sched/):
// the record/replay contract (same decision string => identical event
// sequence and identical findings), the detectors (deadlock, lost
// wakeup, lock-order cycle), the bounded-preemption DFS, the subsystem
// models, and the unarmed fast-path gate.

#include "src/analysis/sched/sched.h"

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/analysis/sched/models.h"
#include "src/util/fault_injection.h"
#include "src/util/instr_gate.h"
#include "src/util/thread_annotations.h"

namespace ddr::sched {
namespace {

bool HasKind(const std::vector<SchedFinding>& findings, FindingKind kind) {
  for (const SchedFinding& f : findings) {
    if (f.kind == kind) return true;
  }
  return false;
}

const SchedFinding* FirstOfKind(const std::vector<SchedFinding>& findings,
                                FindingKind kind) {
  for (const SchedFinding& f : findings) {
    if (f.kind == kind) return &f;
  }
  return nullptr;
}

// Small CI-sized budgets: the expect_finding models are tiny, and the
// clean models only need "no findings within budget", not exhaustion.
ExploreOptions TestOptions() {
  ExploreOptions options;
  options.dfs_budget = 128;
  options.random_budget = 32;
  options.preempt_bound = 2;
  options.seed = 7;
  return options;
}

// ------------------------------------------------------------ the gate

TEST(InstrGate, UnarmedByDefaultAndPerLayerBits) {
  // Nothing armed: instrumented primitives pay one relaxed load and
  // take the real-primitive branch.
  EXPECT_EQ(InstrArmedBits(), 0u);
  EXPECT_FALSE(FaultsArmed());
  EXPECT_FALSE(InstrArmed(kInstrSched));

  // Arming fault injection must not arm the scheduler, and vice versa —
  // the bits share one load but stay independent.
  ASSERT_TRUE(SetFaultPlan("*:trace").ok());
  EXPECT_TRUE(FaultsArmed());
  EXPECT_FALSE(InstrArmed(kInstrSched));
  ClearFaultPlan();
  EXPECT_EQ(InstrArmedBits(), 0u);
}

TEST(InstrGate, WrappersWorkUnarmed) {
  Mutex mu;
  CondVar cv;
  SharedMutex smu;
  mu.lock();
  cv.NotifyAll();  // no waiters; must not divert into a scheduler
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  smu.lock_shared();
  smu.unlock_shared();
  smu.lock();
  smu.unlock();
  SharedVar<int> v(3);
  v.Store(4);
  EXPECT_EQ(v.Load(), 4);
}

TEST(InstrGate, SchedBitArmedOnlyDuringRun) {
  EXPECT_FALSE(InstrArmed(kInstrSched));
  Result<RunResult> run = RunWithSchedule(
      [] { EXPECT_TRUE(InstrArmed(kInstrSched)); }, "v1:");
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(InstrArmed(kInstrSched));
}

// ------------------------------------------------- basic run semantics

TEST(SchedRun, SingleThreadedBodyRecordsNoDecisions) {
  Result<RunResult> run = RunWithSchedule(
      [] {
        Mutex mu;
        MutexLock lock(mu);
      },
      "v1:");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->schedule, "v1:");
  EXPECT_TRUE(run->findings.empty());
  EXPECT_TRUE(run->decisions.empty());
  // t0's lock, unlock, exit.
  ASSERT_EQ(run->events.size(), 3u);
  EXPECT_EQ(run->events[0], "t0 lock m0");
  EXPECT_EQ(run->events[1], "t0 unlock m0");
  EXPECT_EQ(run->events[2], "t0 exit");
}

TEST(SchedRun, SpawnJoinRoundTrip) {
  auto body = [] {
    auto mu = std::make_shared<Mutex>();
    auto counter = std::make_shared<int>(0);
    SchedThread t = Spawn([=] {
      MutexLock lock(*mu);
      ++*counter;
    });
    {
      MutexLock lock(*mu);
      ++*counter;
    }
    t.Join();
    EXPECT_EQ(*counter, 2);
  };
  Result<RunResult> run = RunWithSchedule(body, "v1:");
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->findings.empty());
}

TEST(SchedRun, ScheduleStringRoundTrips) {
  // A random walk's recorded schedule replays to the identical
  // execution — schedule, events, findings, preemption count.
  const SchedModel* model = FindSchedModel("server-queue");
  ASSERT_NE(model, nullptr);
  const RunResult walk = RandomWalk(model->body, /*seed=*/1234);
  Result<RunResult> replay = RunWithSchedule(model->body, walk.schedule);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->schedule, walk.schedule);
  EXPECT_EQ(replay->events, walk.events);
  EXPECT_EQ(replay->preemptions, walk.preemptions);
}

TEST(SchedRun, MalformedSchedulesAreLoudErrors) {
  auto body = [] {};
  EXPECT_FALSE(RunWithSchedule(body, "").ok());
  EXPECT_FALSE(RunWithSchedule(body, "0121").ok());
  EXPECT_FALSE(RunWithSchedule(body, "v2:01").ok());
  EXPECT_FALSE(RunWithSchedule(body, "v1:0!").ok());
}

TEST(SchedRun, ScheduleForTheWrongBodyIsAnError) {
  // A single-threaded body has no choice points, so any recorded digit
  // cannot be consumed — the replay must fail loudly, not diverge.
  Result<RunResult> run = RunWithSchedule([] {}, "v1:111");
  EXPECT_FALSE(run.ok());
}

// --------------------------------------------------------- determinism

TEST(SchedDeterminism, SameScheduleSameEventsAcrossThreeRuns) {
  const SchedModel* model = FindSchedModel("deadlock-inversion");
  ASSERT_NE(model, nullptr);
  const ExploreReport report = Explore(model->body, TestOptions());
  const SchedFinding* deadlock =
      FirstOfKind(report.findings, FindingKind::kDeadlock);
  ASSERT_NE(deadlock, nullptr);

  std::vector<std::string> first_events;
  std::vector<SchedFinding> first_findings;
  for (int i = 0; i < 3; ++i) {
    Result<RunResult> run = RunWithSchedule(model->body, deadlock->schedule);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    if (i == 0) {
      first_events = run->events;
      first_findings = run->findings;
      ASSERT_FALSE(first_events.empty());
      ASSERT_FALSE(first_findings.empty());
      continue;
    }
    EXPECT_EQ(run->events, first_events);
    ASSERT_EQ(run->findings.size(), first_findings.size());
    for (size_t f = 0; f < first_findings.size(); ++f) {
      EXPECT_EQ(run->findings[f].kind, first_findings[f].kind);
      EXPECT_EQ(run->findings[f].message, first_findings[f].message);
      EXPECT_EQ(run->findings[f].schedule, first_findings[f].schedule);
    }
  }
}

TEST(SchedDeterminism, ExplorationIsAPureFunctionOfItsOptions) {
  const SchedModel* model = FindSchedModel("cache-lru");
  ASSERT_NE(model, nullptr);
  const ExploreReport a = Explore(model->body, TestOptions());
  const ExploreReport b = Explore(model->body, TestOptions());
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.dfs_runs, b.dfs_runs);
  EXPECT_EQ(a.dfs_exhausted, b.dfs_exhausted);
  EXPECT_EQ(a.findings.size(), b.findings.size());
}

// ----------------------------------------------------------- detectors

TEST(SchedDetectors, FindsInjectedDeadlockAndReplaysIt) {
  const SchedModel* model = FindSchedModel("deadlock-inversion");
  ASSERT_NE(model, nullptr);
  const ExploreReport report = Explore(model->body, TestOptions());
  const SchedFinding* deadlock =
      FirstOfKind(report.findings, FindingKind::kDeadlock);
  ASSERT_NE(deadlock, nullptr) << "bounded exploration missed the AB/BA "
                                  "deadlock";
  EXPECT_NE(deadlock->message.find("deadlock:"), std::string::npos);
  EXPECT_EQ(deadlock->schedule.rfind("v1:", 0), 0u);

  // The decision string reproduces the same deadlock deterministically.
  Result<RunResult> replay = RunWithSchedule(model->body, deadlock->schedule);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  const SchedFinding* replayed =
      FirstOfKind(replay->findings, FindingKind::kDeadlock);
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->message, deadlock->message);
  // The deadlock needs at most the configured number of forced
  // preemptions (DFS found it within bound 2).
  EXPECT_LE(replay->preemptions, TestOptions().preempt_bound);
}

TEST(SchedDetectors, FindsLostWakeupInBuggyStopPath) {
  const SchedModel* model = FindSchedModel("lost-wakeup");
  ASSERT_NE(model, nullptr);
  const ExploreReport report = Explore(model->body, TestOptions());
  const SchedFinding* lost =
      FirstOfKind(report.findings, FindingKind::kLostWakeup);
  ASSERT_NE(lost, nullptr) << "exploration missed the store/notify vs "
                              "check/wait window";
  EXPECT_NE(lost->message.find("lost wakeup"), std::string::npos);
  // No mutex-cycle misclassification: the bug is a lost wakeup.
  Result<RunResult> replay = RunWithSchedule(model->body, lost->schedule);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(HasKind(replay->findings, FindingKind::kLostWakeup));
}

TEST(SchedDetectors, LockOrderCycleWithoutDeadlock) {
  const SchedModel* model = FindSchedModel("lock-order");
  ASSERT_NE(model, nullptr);
  const ExploreReport report = Explore(model->body, TestOptions());
  EXPECT_TRUE(HasKind(report.findings, FindingKind::kLockOrderCycle));
  // The outer gate makes an actual deadlock impossible.
  EXPECT_FALSE(HasKind(report.findings, FindingKind::kDeadlock));
  EXPECT_FALSE(HasKind(report.findings, FindingKind::kLostWakeup));
}

// ------------------------------------------- clean subsystem models

TEST(SchedModels, CleanModelsHaveNoFindingsWithinBudget) {
  for (const SchedModel& model : AllSchedModels()) {
    if (model.expect != SchedModel::Expect::kClean) continue;
    const ExploreReport report = Explore(model.body, TestOptions());
    EXPECT_TRUE(report.findings.empty())
        << model.name << ": " << report.findings[0].message;
    EXPECT_EQ(report.runs, report.dfs_runs + report.random_runs);
  }
}

TEST(SchedModels, BuggyModelsExhibitExactlyTheirExpectedKind) {
  struct Case {
    const char* name;
    FindingKind kind;
  };
  const Case cases[] = {
      {"deadlock-inversion", FindingKind::kDeadlock},
      {"lock-order", FindingKind::kLockOrderCycle},
      {"lost-wakeup", FindingKind::kLostWakeup},
  };
  for (const Case& c : cases) {
    const SchedModel* model = FindSchedModel(c.name);
    ASSERT_NE(model, nullptr) << c.name;
    EXPECT_NE(model->expect, SchedModel::Expect::kClean) << c.name;
    const ExploreReport report = Explore(model->body, TestOptions());
    EXPECT_TRUE(HasKind(report.findings, c.kind)) << c.name;
  }
}

TEST(SchedModels, RegistryIsStableAndLookupWorks) {
  const std::vector<SchedModel>& models = AllSchedModels();
  ASSERT_GE(models.size(), 6u);
  // Clean models first — the CLI's default explore set depends on it.
  EXPECT_EQ(models[0].expect, SchedModel::Expect::kClean);
  EXPECT_EQ(FindSchedModel("no-such-model"), nullptr);
  EXPECT_EQ(FindSchedModel("cache-lru"), &models[0]);
  EXPECT_STREQ(ExpectName(SchedModel::Expect::kClean), "clean");
  EXPECT_STREQ(ExpectName(SchedModel::Expect::kDeadlock), "deadlock");
}

// ------------------------------------------------ engine corner cases

TEST(SchedEngine, DfsExhaustsATinyModel) {
  auto body = [] {
    auto mu = std::make_shared<Mutex>();
    SchedThread t = Spawn([mu] { MutexLock lock(*mu); });
    {
      MutexLock lock(*mu);
    }
    t.Join();
  };
  ExploreOptions options = TestOptions();
  options.random_budget = 0;
  const ExploreReport report = Explore(body, options);
  EXPECT_TRUE(report.dfs_exhausted);
  EXPECT_GT(report.dfs_runs, 1u);
  EXPECT_LT(report.dfs_runs, options.dfs_budget);
  EXPECT_TRUE(report.findings.empty());
}

TEST(SchedEngine, TryLockNeverBlocksAndBothOutcomesAreReachable) {
  auto body = [] {
    auto mu = std::make_shared<Mutex>();
    auto outcomes = std::make_shared<SharedVar<int>>(0);
    SchedThread t = Spawn([=] {
      if (mu->try_lock()) {
        mu->unlock();
        outcomes->Store(1);
      } else {
        outcomes->Store(2);
      }
    });
    {
      MutexLock lock(*mu);
    }
    t.Join();
  };
  // Exhaustive-enough search: both the acquired and busy branches run;
  // neither deadlocks.
  const ExploreReport report = Explore(body, TestOptions());
  EXPECT_TRUE(report.findings.empty());
}

TEST(SchedEngine, SharedMutexReadersDontExcludeEachOther) {
  auto body = [] {
    auto smu = std::make_shared<SharedMutex>();
    SchedThread r1 = Spawn([smu] { ReaderMutexLock lock(*smu); });
    SchedThread r2 = Spawn([smu] { ReaderMutexLock lock(*smu); });
    {
      WriterMutexLock lock(*smu);
    }
    r1.Join();
    r2.Join();
  };
  const ExploreReport report = Explore(body, TestOptions());
  EXPECT_TRUE(report.findings.empty());
}

TEST(SchedEngine, TimedWaitCanTimeOutInsteadOfDeadlocking) {
  // A timed wait with a notify that never comes is not a lost wakeup:
  // the timeout path must let the run finish.
  auto body = [] {
    auto mu = std::make_shared<Mutex>();
    auto cv = std::make_shared<CondVar>();
    MutexLock lock(*mu);
    cv->WaitFor(*mu, std::chrono::milliseconds(1));
  };
  Result<RunResult> run = RunWithSchedule(body, "v1:");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->findings.empty());
}

TEST(SchedEngine, SelfDeadlockIsDetected) {
  auto body = [] {
    auto mu = std::make_shared<Mutex>();
    mu->lock();
    mu->lock();  // relocking a non-recursive mutex: blocks forever
    mu->unlock();
  };
  Result<RunResult> run = RunWithSchedule(body, "v1:");
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(HasKind(run->findings, FindingKind::kDeadlock));
}

TEST(SchedEngine, FindingKindNamesAreStable) {
  EXPECT_STREQ(FindingKindName(FindingKind::kDeadlock), "deadlock");
  EXPECT_STREQ(FindingKindName(FindingKind::kLockOrderCycle),
               "lock-order-cycle");
  EXPECT_STREQ(FindingKindName(FindingKind::kLostWakeup), "lost-wakeup");
}

}  // namespace
}  // namespace ddr::sched
