// Tests for the random-access I/O layer (src/util/random_access_file.h)
// and the shared decoded-chunk cache (src/trace/chunk_cache.h).
//
// The acceptance properties: all three backends serve bit-identical bytes
// for identical reads, reads are safe from many threads on one const
// handle, accounting (bytes_read, hit/miss/eviction counters) is truthful,
// and the cache evicts in LRU order within its byte budget.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/trace/chunk_cache.h"
#include "src/util/random_access_file.h"

namespace ddr {
namespace {

const IoBackend kAllBackends[] = {IoBackend::kStream, IoBackend::kPread,
                                  IoBackend::kMmap};

class ScopedFile {
 public:
  explicit ScopedFile(const std::string& tag, const std::vector<uint8_t>& bytes)
      : path_("io_test_" + tag + ".bin") {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> PatternBytes(size_t size) {
  std::vector<uint8_t> bytes(size);
  for (size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<uint8_t>((i * 131) ^ (i >> 7));
  }
  return bytes;
}

TEST(IoBackendTest, NamesRoundtripAndBadNamesFail) {
  for (IoBackend backend : kAllBackends) {
    auto parsed = ParseIoBackend(std::string(IoBackendName(backend)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(ParseIoBackend("carrier-pigeon").ok());
  // "ifstream" is accepted as an alias for the stream backend.
  auto alias = ParseIoBackend("ifstream");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(*alias, IoBackend::kStream);
}

TEST(RandomAccessFileTest, AllBackendsServeIdenticalBytes) {
  const std::vector<uint8_t> bytes = PatternBytes(10000);
  ScopedFile file("identical", bytes);
  for (IoBackend backend : kAllBackends) {
    RandomAccessFileOptions options;
    options.backend = backend;
    options.allow_fallback = false;
    auto opened = RandomAccessFile::Open(file.get(), options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    const RandomAccessFile& raf = **opened;
    EXPECT_EQ(raf.backend(), backend);
    EXPECT_EQ(raf.size(), bytes.size());

    std::vector<uint8_t> scratch;
    for (const auto& [offset, length] :
         {std::pair<uint64_t, size_t>{0, 1}, {0, 10000}, {9999, 1},
          {1234, 4096}, {500, 0}}) {
      auto view = raf.Read(offset, length, &scratch);
      ASSERT_TRUE(view.ok()) << view.status();
      ASSERT_EQ(view->size(), length);
      EXPECT_TRUE(std::equal(view->begin(), view->end(),
                             bytes.begin() + static_cast<ptrdiff_t>(offset)))
          << IoBackendName(backend) << " @" << offset << "+" << length;
    }
    // Truthful accounting: 1 + 10000 + 1 + 4096 + 0 logical bytes.
    EXPECT_EQ(raf.bytes_read(), 14098u);
  }
}

TEST(RandomAccessFileTest, ReadaheadHintsAreAdvisoryAndPreserveBytes) {
  // posix_fadvise/madvise are pure hints: every backend must serve the
  // exact same bytes under every readahead mode, and Advise must be
  // callable (a no-op where unsupported) at any point in the handle's
  // life — VerifyAll flips kSequential on and back off around its scan.
  const std::vector<uint8_t> bytes = PatternBytes(10000);
  ScopedFile file("readahead", bytes);
  for (IoBackend backend : kAllBackends) {
    for (ReadaheadMode mode : {ReadaheadMode::kNormal,
                               ReadaheadMode::kSequential,
                               ReadaheadMode::kRandom}) {
      RandomAccessFileOptions options;
      options.backend = backend;
      options.allow_fallback = false;
      options.readahead = mode;
      auto opened = RandomAccessFile::Open(file.get(), options);
      ASSERT_TRUE(opened.ok())
          << IoBackendName(backend) << "/" << ReadaheadModeName(mode) << ": "
          << opened.status();
      EXPECT_EQ((*opened)->readahead(), mode);

      std::vector<uint8_t> scratch;
      auto view = (*opened)->Read(0, bytes.size(), &scratch);
      ASSERT_TRUE(view.ok()) << view.status();
      EXPECT_TRUE(std::equal(view->begin(), view->end(), bytes.begin()))
          << IoBackendName(backend) << "/" << ReadaheadModeName(mode);

      // Re-advising mid-life (the sequential-scan bracket) is safe and
      // leaves the opening mode reported unchanged.
      (*opened)->Advise(ReadaheadMode::kSequential);
      (*opened)->Advise((*opened)->readahead());
      auto again = (*opened)->Read(1234, 4096, &scratch);
      ASSERT_TRUE(again.ok()) << again.status();
      EXPECT_TRUE(std::equal(again->begin(), again->end(),
                             bytes.begin() + 1234));
    }
  }
}

TEST(IoBackendTest, ReadaheadModeNamesAreDistinct) {
  EXPECT_EQ(ReadaheadModeName(ReadaheadMode::kNormal), "normal");
  EXPECT_EQ(ReadaheadModeName(ReadaheadMode::kSequential), "sequential");
  EXPECT_EQ(ReadaheadModeName(ReadaheadMode::kRandom), "random");
}

TEST(RandomAccessFileTest, ReadsPastEofFailWithOutOfRange) {
  const std::vector<uint8_t> bytes = PatternBytes(100);
  ScopedFile file("eof", bytes);
  for (IoBackend backend : kAllBackends) {
    RandomAccessFileOptions options;
    options.backend = backend;
    auto opened = RandomAccessFile::Open(file.get(), options);
    ASSERT_TRUE(opened.ok());
    std::vector<uint8_t> scratch;
    EXPECT_EQ((*opened)->Read(0, 101, &scratch).status().code(),
              StatusCode::kOutOfRange);
    EXPECT_EQ((*opened)->Read(100, 1, &scratch).status().code(),
              StatusCode::kOutOfRange);
    // A length that would wrap offset + length must not pass the check.
    EXPECT_EQ((*opened)->Read(~0ull - 1, 16, &scratch).status().code(),
              StatusCode::kOutOfRange);
  }
}

TEST(RandomAccessFileTest, MissingFileIsNotFoundForEveryBackend) {
  for (IoBackend backend : kAllBackends) {
    RandomAccessFileOptions options;
    options.backend = backend;
    auto opened = RandomAccessFile::Open("io_test_no_such_file.bin", options);
    EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
  }
}

TEST(RandomAccessFileTest, MmapIsZeroCopyAndFallsBackOnEmptyFiles) {
  const std::vector<uint8_t> bytes = PatternBytes(64);
  ScopedFile file("zerocopy", bytes);
  RandomAccessFileOptions options;
  options.backend = IoBackend::kMmap;
  options.allow_fallback = false;
  auto mapped = RandomAccessFile::Open(file.get(), options);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE((*mapped)->zero_copy());
  std::vector<uint8_t> scratch;
  auto view = (*mapped)->Read(8, 16, &scratch);
  ASSERT_TRUE(view.ok());
  // Zero copy: scratch was never touched, the view aliases the mapping.
  EXPECT_TRUE(scratch.empty());

  // mmap cannot map an empty file; with fallback the open still succeeds
  // on a copying backend, without it the open fails.
  ScopedFile empty("empty", {});
  auto strict = RandomAccessFile::Open(empty.get(), options);
  EXPECT_FALSE(strict.ok());
  options.allow_fallback = true;
  auto fallback = RandomAccessFile::Open(empty.get(), options);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_NE((*fallback)->backend(), IoBackend::kMmap);
  EXPECT_EQ((*fallback)->size(), 0u);
}

TEST(RandomAccessFileTest, ConcurrentReadsOnOneHandleAreSafe) {
  const std::vector<uint8_t> bytes = PatternBytes(1 << 16);
  ScopedFile file("concurrent", bytes);
  for (IoBackend backend : kAllBackends) {
    RandomAccessFileOptions options;
    options.backend = backend;
    auto opened = RandomAccessFile::Open(file.get(), options);
    ASSERT_TRUE(opened.ok());
    const auto& raf = *opened;

    std::vector<std::thread> threads;
    std::vector<int> failures(8, 0);
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t]() {
        std::vector<uint8_t> scratch;
        for (int i = 0; i < 200; ++i) {
          const uint64_t offset = (t * 797 + i * 131) % (bytes.size() - 512);
          auto view = raf->Read(offset, 512, &scratch);
          if (!view.ok() ||
              !std::equal(view->begin(), view->end(),
                          bytes.begin() + static_cast<ptrdiff_t>(offset))) {
            ++failures[t];
          }
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < 8; ++t) {
      EXPECT_EQ(failures[t], 0) << IoBackendName(backend) << " thread " << t;
    }
    EXPECT_EQ(raf->bytes_read(), 8u * 200u * 512u);
  }
}

// ------------------------------------------------------------ ChunkCache

ChunkCache::EventsPtr MakeChunk(size_t num_events, uint64_t tag) {
  std::vector<Event> events(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    events[i].seq = tag * 1000 + i;
  }
  return std::make_shared<const std::vector<Event>>(std::move(events));
}

TEST(ChunkCacheTest, LookupHitMissAndCountersAreTruthful) {
  ChunkCache cache(/*capacity_bytes=*/1 << 20);
  const ChunkKey key{1, 0, 0};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  cache.Insert(key, MakeChunk(10, 7));
  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0].seq, 7000u);

  const ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes_in_use, 10 * sizeof(Event));
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ChunkCacheTest, DistinctKeysNeverAlias) {
  ChunkCache cache(1 << 20);
  // Same chunk index under different files and image offsets.
  cache.Insert({0, 0, 0}, MakeChunk(4, 1));
  cache.Insert({1, 0, 0}, MakeChunk(4, 2));
  cache.Insert({0, 64, 0}, MakeChunk(4, 3));
  EXPECT_EQ((*cache.Lookup({0, 0, 0}))[0].seq, 1000u);
  EXPECT_EQ((*cache.Lookup({1, 0, 0}))[0].seq, 2000u);
  EXPECT_EQ((*cache.Lookup({0, 64, 0}))[0].seq, 3000u);

}

// Cache namespacing relies on handle ids being process-unique: every
// open — even of the same path — must mint a fresh id, so a re-opened
// (possibly replaced) file can never hit another open's cached chunks.
TEST(ChunkCacheTest, HandleIdsAreUniquePerOpen) {
  const std::vector<uint8_t> bytes = PatternBytes(64);
  ScopedFile file("ids", bytes);
  auto first = RandomAccessFile::Open(file.get());
  auto second = RandomAccessFile::Open(file.get());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE((*first)->id(), (*second)->id());
}

TEST(ChunkCacheTest, EvictsLeastRecentlyUsedWithinByteBudget) {
  // Budget sized so one shard holds ~2 chunks of 100 events. All keys are
  // forced into one shard by keeping them identical except chunk_index —
  // eviction order is then observable deterministically only per shard,
  // so use a generous chunk count and check global properties.
  ChunkCache cache(/*capacity_bytes=*/8 * (100 * sizeof(Event) + 512));
  constexpr int kChunks = 64;
  for (int i = 0; i < kChunks; ++i) {
    cache.Insert({0, 0, static_cast<uint64_t>(i)}, MakeChunk(100, i));
  }
  const ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, static_cast<uint64_t>(kChunks));
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_in_use, cache.capacity_bytes());
  EXPECT_LT(stats.entries, static_cast<uint64_t>(kChunks));

  // The most recently inserted chunk must still be resident.
  EXPECT_NE(cache.Lookup({0, 0, kChunks - 1}), nullptr);
}

TEST(ChunkCacheTest, ZeroCapacityDisablesCaching) {
  ChunkCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const ChunkKey key{0, 0, 0};
  cache.Insert(key, MakeChunk(4, 1));
  EXPECT_EQ(cache.Lookup(key), nullptr);
  const ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ChunkCacheTest, OversizedEntriesAreNotAdmitted) {
  ChunkCache cache(/*capacity_bytes=*/1024);  // shard budget: 128 bytes
  const ChunkKey key{0, 0, 0};
  cache.Insert(key, MakeChunk(1000, 1));  // far larger than a shard
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ChunkCacheTest, ConcurrentInsertsAndLookupsKeepAccountingConsistent) {
  ChunkCache cache(1 << 20);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 200; ++i) {
        const ChunkKey key{0, 0, static_cast<uint64_t>(i % 32)};
        if (cache.Lookup(key) == nullptr) {
          cache.Insert(key, MakeChunk(16, i % 32));
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const ChunkCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u * 200u);
  // Racing decoders of one cold chunk may double-insert; the cache keeps
  // one copy and the hot keys must all be resident afterwards.
  for (uint64_t i = 0; i < 32; ++i) {
    auto chunk = cache.Lookup({0, 0, i});
    ASSERT_NE(chunk, nullptr);
    EXPECT_EQ((*chunk)[0].seq, i * 1000);
  }
}

// DDR_CACHE_MB parsing: junk, trailing garbage, out-of-range, and
// shift-overflowing values must all fall back to the default instead of
// silently wrapping to a bogus byte budget.
TEST(ChunkCacheTest, CacheMbTextParsesStrictly) {
  constexpr uint64_t kFallback = uint64_t{64} << 20;

  EXPECT_EQ(ChunkCacheBytesFromMbText("8", kFallback), uint64_t{8} << 20);
  EXPECT_EQ(ChunkCacheBytesFromMbText("0", kFallback), 0u);
  // Largest megabyte count whose byte value still fits in uint64.
  const uint64_t max_mb = ~uint64_t{0} >> 20;
  EXPECT_EQ(ChunkCacheBytesFromMbText(std::to_string(max_mb).c_str(),
                                      kFallback),
            max_mb << 20);

  // Junk and empty fall back.
  EXPECT_EQ(ChunkCacheBytesFromMbText(nullptr, kFallback), kFallback);
  EXPECT_EQ(ChunkCacheBytesFromMbText("", kFallback), kFallback);
  EXPECT_EQ(ChunkCacheBytesFromMbText("lots", kFallback), kFallback);
  EXPECT_EQ(ChunkCacheBytesFromMbText("64MB", kFallback), kFallback);
  EXPECT_EQ(ChunkCacheBytesFromMbText("6 4", kFallback), kFallback);

  // ERANGE: way past 2^64.
  EXPECT_EQ(ChunkCacheBytesFromMbText("99999999999999999999", kFallback),
            kFallback);
  // In range for strtoull but wraps once shifted to bytes.
  EXPECT_EQ(ChunkCacheBytesFromMbText(std::to_string(max_mb + 1).c_str(),
                                      kFallback),
            kFallback);
  EXPECT_EQ(ChunkCacheBytesFromMbText("18446744073709551615", kFallback),
            kFallback);
  // strtoull would happily wrap "-1" to 2^64-1; we must not.
  EXPECT_EQ(ChunkCacheBytesFromMbText("-1", kFallback), kFallback);
}

}  // namespace
}  // namespace ddr
