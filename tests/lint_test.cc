// Tests for ddr-lint (src/analysis/source_lint.h): every rule, the
// allowlist, the suppression grammar, and the CLI's exit-code contract.
//
// Fixtures are in-memory strings passed to LintSource with a claimed
// display path — that is what decides rule scoping, so the same snippet
// can be tested inside and outside src/trace/. The fixtures live inside
// raw string literals, which the linter blanks before matching — so
// ddr-lint over tests/ stays clean even though this file is full of
// banned tokens.

#include "src/analysis/source_lint.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"

namespace ddr {
namespace {

std::vector<std::string> Rules(const std::vector<LintIssue>& issues) {
  std::vector<std::string> rules;
  for (const LintIssue& issue : issues) {
    rules.push_back(issue.rule);
  }
  return rules;
}

TEST(LintSource, CleanSourceHasNoIssues) {
  const char* src = R"cc(
    #include <chrono>
    int Add(int a, int b) {
      auto t0 = std::chrono::steady_clock::now();
      (void)t0;
      return a + b;
    }
  )cc";
  EXPECT_TRUE(LintSource("src/core/clean.cc", src).empty());
}

TEST(LintSource, FlagsEachNondeterminismToken) {
  struct Case {
    const char* snippet;
    const char* token;
  };
  const Case cases[] = {
      {"long F() { return time(nullptr); }", "time("},
      {"int F() { return rand(); }", "rand("},
      {"void F() { srand(42); }", "srand("},
      {"#include <random>\nstd::random_device dev;", "random_device"},
      {"auto t = std::chrono::system_clock::now();", "system_clock"},
      {"void F(timeval* tv) { gettimeofday(tv, nullptr); }", "gettimeofday("},
      {"int F() { return getpid(); }", "getpid("},
  };
  for (const Case& c : cases) {
    const std::vector<LintIssue> issues =
        LintSource("src/core/bad.cc", c.snippet);
    ASSERT_EQ(issues.size(), 1u) << c.snippet;
    EXPECT_EQ(issues[0].rule, "ddr-nondeterminism") << c.snippet;
    EXPECT_NE(issues[0].message.find(c.token), std::string::npos) << c.snippet;
  }
}

TEST(LintSource, ReportsFileAndLine) {
  const char* src = "int a;\nint b;\nlong F() { return time(nullptr); }\n";
  const std::vector<LintIssue> issues = LintSource("src/x/y.cc", src);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].file, "src/x/y.cc");
  EXPECT_EQ(issues[0].line, 3);
  EXPECT_EQ(FormatLintIssue(issues[0]).rfind("src/x/y.cc:3: "
                                             "[ddr-nondeterminism]", 0),
            0u);
}

TEST(LintSource, MemberCallsAreNotTheRawFunction) {
  // A method named like a banned function is someone's API, not libc's.
  const char* src = R"cc(
    void F(Timer& t, Timer* p) {
      t.time(1);
      p->time(2);
      p->rand();
    }
  )cc";
  EXPECT_TRUE(LintSource("src/core/member.cc", src).empty());
  // ...but qualified calls to the real thing still match.
  const std::vector<LintIssue> real =
      LintSource("src/core/real.cc", "auto t = std::time(nullptr);");
  ASSERT_EQ(real.size(), 1u);
  EXPECT_EQ(real[0].rule, "ddr-nondeterminism");
}

TEST(LintSource, TokensInsideLiteralsAndCommentsDoNotMatch) {
  const char* src = R"cc(
    // rand() and time() are banned; this comment is not a violation.
    /* neither is std::random_device here */
    const char* kMsg = "call time(nullptr) for the wall clock";
    const char* kRaw = R"(system_clock inside a raw string)";
    char c = 't';
  )cc";
  EXPECT_TRUE(LintSource("src/core/strings.cc", src).empty());
}

TEST(LintSource, AllowlistExemptsNondeterminism) {
  const char* src = "auto t = std::chrono::system_clock::now();";
  LintOptions options;
  options.allow = {"wallclock_probe"};
  EXPECT_EQ(LintSource("src/bench/wallclock_probe.cc", src, options).size(),
            0u);
  // Same snippet, path off the allowlist: flagged.
  EXPECT_EQ(LintSource("src/bench/other.cc", src, options).size(), 1u);
}

TEST(LintSource, UnorderedRangeForFlaggedOnlyInTrace) {
  const char* src = R"cc(
    #include <unordered_map>
    struct Index {
      std::unordered_map<int, long> chunks_;
      long Sum() const {
        long total = 0;
        for (const auto& kv : chunks_) {
          total += kv.second;
        }
        return total;
      }
    };
  )cc";
  const std::vector<LintIssue> in_trace =
      LintSource("src/trace/index.cc", src);
  ASSERT_EQ(in_trace.size(), 1u);
  EXPECT_EQ(in_trace[0].rule, "ddr-unordered-iteration");
  EXPECT_EQ(in_trace[0].line, 7);
  // The same code outside encode/index-writing directories is fine.
  EXPECT_TRUE(LintSource("src/core/index.cc", src).empty());
}

TEST(LintSource, UnorderedKeyedLookupIsFine) {
  const char* src = R"cc(
    #include <unordered_map>
    std::unordered_map<int, int> cache_;
    bool Has(int k) { return cache_.find(k) != cache_.end(); }
    void Drop(int k) { cache_.erase(k); }
  )cc";
  EXPECT_TRUE(LintSource("src/trace/lookup.cc", src).empty());
}

TEST(LintSource, UnorderedExplicitIteratorWalkFlagged) {
  const char* src = R"cc(
    #include <unordered_set>
    std::unordered_set<int> seen_;
    int First() { return *seen_.begin(); }
  )cc";
  const std::vector<LintIssue> issues =
      LintSource("src/trace/walk.cc", src);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "ddr-unordered-iteration");
}

TEST(LintSource, OrderedContainerIterationIsFine) {
  const char* src = R"cc(
    #include <map>
    std::map<int, int> index_;
    long Sum() {
      long t = 0;
      for (const auto& kv : index_) t += kv.second;
      return t;
    }
  )cc";
  EXPECT_TRUE(LintSource("src/trace/ordered.cc", src).empty());
}

TEST(LintSource, RawIoWithoutConsultFlagged) {
  const char* src = R"cc(
    #include <unistd.h>
    int Sync(int fd) { return ::fsync(fd); }
  )cc";
  const std::vector<LintIssue> issues = LintSource("src/trace/io.cc", src);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "ddr-raw-io");
  // tests/ and tools/ do scratch I/O freely; the rule is src/-only.
  EXPECT_TRUE(LintSource("tests/io_test.cc", src).empty());
}

TEST(LintSource, RawIoNearFaultConsultAccepted) {
  const char* src = R"cc(
    Status Sync(int fd) {
      RETURN_IF_ERROR(FaultPoint("x.sync"));
      int rc = ::fsync(fd);
      return rc == 0 ? OkStatus() : UnavailableError("fsync");
    }
  )cc";
  EXPECT_TRUE(LintSource("src/trace/io.cc", src).empty());
}

TEST(LintSource, RawIoConsultTooFarAwayStillFlagged) {
  std::string src = "void Consult() { (void)FaultsArmed(); }\n";
  for (int i = 0; i < 30; ++i) {
    src += "// filler\n";
  }
  src += "int Sync(int fd) { return ::fsync(fd); }\n";
  const std::vector<LintIssue> issues =
      LintSource("src/trace/far.cc", src);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "ddr-raw-io");
}

TEST(LintSource, StreamMemberWriteIsNotRawIo) {
  const char* src = R"cc(
    #include <fstream>
    void Dump(std::ofstream& out, const char* buf, long n) {
      out.write(buf, n);
    }
  )cc";
  EXPECT_TRUE(LintSource("src/trace/stream.cc", src).empty());
}

TEST(LintSource, JustifiedSuppressionSilencesTheFinding) {
  const char* same_line =
      "long F() { return time(nullptr); }  "
      "// NOLINT(ddr-nondeterminism): test fixture needs the wall clock\n";
  EXPECT_TRUE(LintSource("src/core/s.cc", same_line).empty());

  const char* next_line =
      "// NOLINTNEXTLINE(ddr-nondeterminism): fixture wall clock\n"
      "long F() { return time(nullptr); }\n";
  EXPECT_TRUE(LintSource("src/core/s.cc", next_line).empty());
}

TEST(LintSource, SuppressionOfTheWrongRuleDoesNotSilence) {
  const char* src =
      "long F() { return time(nullptr); }  "
      "// NOLINT(ddr-raw-io): wrong rule named\n";
  const std::vector<LintIssue> issues = LintSource("src/core/w.cc", src);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "ddr-nondeterminism");
}

TEST(LintSource, UnjustifiedSuppressionIsItsOwnViolation) {
  const char* src =
      "long F() { return time(nullptr); }  // NOLINT(ddr-nondeterminism)\n";
  const std::vector<LintIssue> issues = LintSource("src/core/u.cc", src);
  const std::vector<std::string> rules = Rules(issues);
  // The bare NOLINT both fails to suppress and is flagged itself.
  EXPECT_EQ(rules, (std::vector<std::string>{"ddr-nondeterminism",
                                             "ddr-suppression"}));
}

TEST(LintSource, ForeignNolintsAreIgnored) {
  // clang-tidy style suppressions without a ddr- rule are not ours.
  const char* src =
      "int F(int x) { return x; }  // NOLINT(readability-identifier)\n"
      "int G(int x) { return x; }  // NOLINT: implicit by design\n";
  EXPECT_TRUE(LintSource("src/core/f.cc", src).empty());
}

TEST(LintSource, RawSyncFlaggedOutsideUtil) {
  const char* src = R"cc(
    #include <mutex>
    #include <thread>
    std::mutex g_mu;
    std::thread g_worker;
  )cc";
  const std::vector<LintIssue> issues = LintSource("src/core/sync.cc", src);
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].rule, "ddr-raw-sync");
  EXPECT_NE(issues[0].message.find("std::mutex"), std::string::npos);
  EXPECT_EQ(issues[1].rule, "ddr-raw-sync");
  EXPECT_NE(issues[1].message.find("std::thread"), std::string::npos);
}

TEST(LintSource, RawSyncExemptsWrapperAndSchedulerFloors) {
  const char* src = "std::mutex g_mu;\nstd::thread g_t;\n";
  // The wrappers themselves and the cooperative scheduler beneath them
  // must use the real primitives.
  EXPECT_TRUE(LintSource("src/util/thread_annotations.h", src).empty());
  EXPECT_TRUE(LintSource("src/analysis/sched/sched.cc", src).empty());
  // tests/ and tools/ are out of scope entirely.
  EXPECT_TRUE(LintSource("tests/some_test.cc", src).empty());
  // Any other src/ directory is in scope.
  EXPECT_EQ(LintSource("src/server/s.cc", src).size(), 2u);
}

TEST(LintSource, RawSyncCondVarAnyIsOneFindingNotTwo) {
  // std::condition_variable must not also fire inside the _any spelling.
  const std::vector<LintIssue> any_form = LintSource(
      "src/core/cv.cc", "std::condition_variable_any cv_;\n");
  ASSERT_EQ(any_form.size(), 1u);
  EXPECT_NE(any_form[0].message.find("condition_variable_any"),
            std::string::npos);
  const std::vector<LintIssue> plain = LintSource(
      "src/core/cv.cc", "std::condition_variable cv_;\n");
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain[0].message.find("condition_variable_any"),
            std::string::npos);
}

TEST(LintSource, RawSyncWrappersAndJustifiedSuppressionPass) {
  // The sanctioned spellings produce nothing...
  const char* good = R"cc(
    #include "src/util/thread_annotations.h"
    ddr::Mutex mu_;
    ddr::CondVar cv_;
    ddr::OsThread worker_;
  )cc";
  EXPECT_TRUE(LintSource("src/core/good.cc", good).empty());
  // ...and a justified NOLINT silences a deliberate raw use.
  const char* suppressed =
      "std::mutex g_mu;  "
      "// NOLINT(ddr-raw-sync): pre-main init, wrappers not constructed\n";
  EXPECT_TRUE(LintSource("src/core/sup.cc", suppressed).empty());
}

// ---------------------------------------------------------------------------
// JSON output: FormatLintIssuesJson must round-trip through an actual
// JSON parser (a minimal one lives below), not just look JSON-shaped.
// ---------------------------------------------------------------------------

// Minimal recursive-descent JSON reader covering the subset the report
// uses: objects, arrays, strings with escapes, and integers.
class MiniJson {
 public:
  explicit MiniJson(std::string_view text) : text_(text) {}

  bool ParseObjectKeys(std::vector<std::string>* keys) {
    SkipWs();
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      if (!ParseString(&key)) return false;
      keys->push_back(key);
      SkipWs();
      if (!Consume(':')) return false;
      if (!SkipValue()) return false;
      SkipWs();
      if (Consume(',')) {
        SkipWs();
        continue;
      }
      return Consume('}');
    }
  }

  bool SkipValue() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      std::vector<std::string> keys;
      MiniJson sub(text_.substr(pos_));
      if (!sub.ParseObjectKeys(&keys)) return false;
      pos_ += sub.pos_;
      return true;
    }
    if (c == '[') {
      ++pos_;
      SkipWs();
      if (Consume(']')) return true;
      for (;;) {
        if (!SkipValue()) return false;
        SkipWs();
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      std::string s;
      return ParseString(&s);
    }
    // Number / true / false / null: chew the token.
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'u': pos_ += 4; out->push_back('?'); break;
          default: return false;
        }
        continue;
      }
      out->push_back(c);
    }
    return false;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(LintJson, EmptyReportParses) {
  const std::string json = FormatLintIssuesJson({});
  MiniJson parser(json);
  std::vector<std::string> keys;
  ASSERT_TRUE(parser.ParseObjectKeys(&keys));
  EXPECT_TRUE(parser.AtEnd());
  EXPECT_EQ(keys, (std::vector<std::string>{"count", "issues"}));
}

TEST(LintJson, RealFindingsRoundTrip) {
  // Messages contain quotes-in-quotes hazards: apostrophes, the banned
  // token with its '(' — and we add a file path with a backslash and a
  // quote to force escaping through JsonEscape.
  std::vector<LintIssue> issues =
      LintSource("src/core/j.cc", "long F() { return time(nullptr); }\n"
                                  "std::mutex g_mu;\n");
  ASSERT_EQ(issues.size(), 2u);
  issues.push_back(LintIssue{"src\\odd\"name.cc", 7, "ddr-raw-sync",
                             "message with \"quotes\"\nand a newline"});
  const std::string json = FormatLintIssuesJson(issues);
  MiniJson parser(json);
  std::vector<std::string> keys;
  ASSERT_TRUE(parser.ParseObjectKeys(&keys)) << json;
  EXPECT_TRUE(parser.AtEnd()) << json;
  // The escaped path/message survive verbatim in the encoded text.
  EXPECT_NE(json.find("src\\\\odd\\\"name.cc"), std::string::npos);
  EXPECT_NE(json.find("\\nand a newline"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// LintTree + the CLI contract.
// ---------------------------------------------------------------------------

class LintTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(::testing::TempDir()) /
            ("lint_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "src" / "trace");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& contents) {
    std::ofstream out(root_ / rel, std::ios::binary);
    out << contents;
  }

  std::filesystem::path root_;
};

TEST_F(LintTreeTest, WalksTreeAndReportsInSortedFileOrder) {
  WriteFile("src/trace/zz.cc", "long F() { return time(nullptr); }\n");
  WriteFile("src/trace/aa.cc", "int G() { return rand(); }\n");
  WriteFile("src/trace/skip.txt", "time( rand( -- not a source file\n");
  const Result<std::vector<LintIssue>> issues =
      LintTree({(root_ / "src").generic_string()});
  ASSERT_TRUE(issues.ok()) << issues.status();
  ASSERT_EQ(issues->size(), 2u);
  EXPECT_NE((*issues)[0].file.find("aa.cc"), std::string::npos);
  EXPECT_NE((*issues)[1].file.find("zz.cc"), std::string::npos);
}

TEST_F(LintTreeTest, MissingRootIsAnError) {
  const Result<std::vector<LintIssue>> issues =
      LintTree({(root_ / "no-such-dir").generic_string()});
  ASSERT_FALSE(issues.ok());
  EXPECT_EQ(issues.status().code(), StatusCode::kNotFound);
}

// The CLI's exit-code contract: 0 clean, 1 violations. Runs the real
// binary, which ctest launches from the build directory; skipped when
// the tools were not built (e.g. a tests-only configuration).
TEST_F(LintTreeTest, CliExitCodes) {
  if (!std::filesystem::exists("ddr-lint")) {
    GTEST_SKIP() << "ddr-lint binary not built in this configuration";
  }
  WriteFile("src/trace/clean.cc", "int Add(int a, int b) { return a + b; }\n");
  const std::string dir = (root_ / "src").generic_string();
  int rc = std::system(("./ddr-lint " + dir + " > /dev/null 2>&1").c_str());
  ASSERT_NE(rc, -1);
  EXPECT_EQ(WEXITSTATUS(rc), 0);

  WriteFile("src/trace/dirty.cc", "long F() { return time(nullptr); }\n");
  rc = std::system(("./ddr-lint " + dir + " > /dev/null 2>&1").c_str());
  ASSERT_NE(rc, -1);
  EXPECT_EQ(WEXITSTATUS(rc), 1);

  // --format=json keeps the same exit-code contract.
  rc = std::system(
      ("./ddr-lint --format=json " + dir + " > /dev/null 2>&1").c_str());
  ASSERT_NE(rc, -1);
  EXPECT_EQ(WEXITSTATUS(rc), 1);
}

}  // namespace
}  // namespace ddr
