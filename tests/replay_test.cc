// Tests for src/replay: log-driven replay fidelity (including a property
// test over randomly generated concurrent programs), the constraint solver,
// and the inference engine.

#include <gtest/gtest.h>

#include "src/record/model_recorders.h"
#include "src/replay/inference.h"
#include "src/replay/log_replay_director.h"
#include "src/replay/replayer.h"
#include "src/replay/solver.h"
#include "src/sim/channel.h"
#include "src/sim/program.h"
#include "src/sim/shared_var.h"
#include "src/sim/sync.h"
#include "src/util/rng.h"

namespace ddr {
namespace {

// ------------------------------------------------------------------ solver

TEST(SolverTest, SumFirstSolutionIsLexicographic) {
  CspProblem problem;
  auto a = problem.AddVariable("a", 0, 10);
  auto b = problem.AddVariable("b", 0, 10);
  problem.AddLinearEquals({{a, 1}, {b, 1}}, 5);
  auto solution = problem.FirstSolution();
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 0);
  EXPECT_EQ((*solution)[1], 5);
}

TEST(SolverTest, EnumeratesAllSumSolutions) {
  CspProblem problem;
  auto a = problem.AddVariable("a", 0, 10);
  auto b = problem.AddVariable("b", 0, 10);
  problem.AddLinearEquals({{a, 1}, {b, 1}}, 5);
  auto solutions = problem.Solutions(100);
  ASSERT_EQ(solutions.size(), 6u);  // (0,5) .. (5,0)
  for (const auto& solution : solutions) {
    EXPECT_EQ(solution[0] + solution[1], 5);
  }
  // Lexicographic order.
  for (size_t i = 1; i < solutions.size(); ++i) {
    EXPECT_LT(solutions[i - 1][0], solutions[i][0]);
  }
}

TEST(SolverTest, PropagationPrunesWithoutSearch) {
  CspProblem problem;
  auto a = problem.AddVariable("a", 0, 1000000);
  problem.AddLinearEquals({{a, 1}}, 77);
  auto solution = problem.FirstSolution();
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 77);
  EXPECT_LE(problem.nodes_explored(), 3u) << "bounds propagation should solve this";
}

TEST(SolverTest, UnsatisfiableDetected) {
  CspProblem problem;
  auto a = problem.AddVariable("a", 0, 3);
  auto b = problem.AddVariable("b", 0, 3);
  problem.AddLinearEquals({{a, 1}, {b, 1}}, 100);
  EXPECT_FALSE(problem.FirstSolution().has_value());
}

TEST(SolverTest, NegativeCoefficients) {
  CspProblem problem;
  auto a = problem.AddVariable("a", 0, 10);
  auto b = problem.AddVariable("b", 0, 10);
  problem.AddLinearEquals({{a, 1}, {b, -1}}, 3);  // a - b == 3
  auto solutions = problem.Solutions(100);
  ASSERT_FALSE(solutions.empty());
  for (const auto& solution : solutions) {
    EXPECT_EQ(solution[0] - solution[1], 3);
  }
  EXPECT_EQ(solutions.size(), 8u);  // a in [3,10]
}

TEST(SolverTest, NotEqualsAndLessEquals) {
  CspProblem problem;
  auto a = problem.AddVariable("a", 0, 5);
  problem.AddNotEquals(a, 0);
  problem.AddNotEquals(a, 1);
  problem.AddLinearLessEquals({{a, 1}}, 3);
  auto solutions = problem.Solutions(10);
  ASSERT_EQ(solutions.size(), 2u);
  EXPECT_EQ(solutions[0][0], 2);
  EXPECT_EQ(solutions[1][0], 3);
}

TEST(SolverTest, AllDifferent) {
  CspProblem problem;
  auto a = problem.AddVariable("a", 1, 3);
  auto b = problem.AddVariable("b", 1, 3);
  auto c = problem.AddVariable("c", 1, 3);
  problem.AddAllDifferent({a, b, c});
  auto solutions = problem.Solutions(100);
  EXPECT_EQ(solutions.size(), 6u);  // 3! permutations
}

TEST(SolverTest, PredicateConstraint) {
  CspProblem problem;
  auto a = problem.AddVariable("a", 0, 20);
  problem.AddPredicate({a}, [](const std::vector<int64_t>& values) {
    return values[0] % 7 == 0 && values[0] > 0;
  });
  auto solutions = problem.Solutions(10);
  ASSERT_EQ(solutions.size(), 2u);
  EXPECT_EQ(solutions[0][0], 7);
  EXPECT_EQ(solutions[1][0], 14);
}

TEST(SolverTest, NegativeDomains) {
  CspProblem problem;
  auto a = problem.AddVariable("a", -10, 10);
  auto b = problem.AddVariable("b", -10, 10);
  problem.AddLinearEquals({{a, 2}, {b, 3}}, 1);
  auto solutions = problem.Solutions(1000);
  ASSERT_FALSE(solutions.empty());
  for (const auto& solution : solutions) {
    EXPECT_EQ(2 * solution[0] + 3 * solution[1], 1);
  }
}

// --------------------------------------------- random-program replay property

// A seeded random concurrent program: a few fibers perform random sequences
// of shared reads/writes, lock/unlock, channel sends/receives, RNG draws,
// input reads, sleeps, and outputs. Used to property-test that perfect
// replay reproduces executions event for event.
class RandomProgram : public SimProgram {
 public:
  RandomProgram(uint64_t structure_seed, uint64_t world_seed)
      : structure_seed_(structure_seed), world_rng_(world_seed) {}

  std::string name() const override { return "random-program"; }

  void Configure(Environment& env) override {
    input_ = env.RegisterInputSource("random.input",
                                     [this] { return world_rng_.Next(); });
  }

  void Main(Environment& env) override {
    Rng structure(structure_seed_);
    const int num_fibers = 2 + static_cast<int>(structure.NextBelow(3));
    const int num_cells = 1 + static_cast<int>(structure.NextBelow(3));
    const int ops_per_fiber = 12 + static_cast<int>(structure.NextBelow(20));

    std::vector<std::unique_ptr<SharedVar<uint64_t>>> cells;
    for (int c = 0; c < num_cells; ++c) {
      cells.push_back(std::make_unique<SharedVar<uint64_t>>(
          env, "cell" + std::to_string(c), 0));
    }
    SimMutex mu(env, "mu");
    Channel<uint64_t> chan(env, "chan");

    // Per-fiber op scripts are fixed by the structure seed (program text),
    // while values flow from inputs and cells (execution state).
    std::vector<std::vector<int>> scripts(num_fibers);
    for (auto& script : scripts) {
      for (int i = 0; i < ops_per_fiber; ++i) {
        script.push_back(static_cast<int>(structure.NextBelow(8)));
      }
    }

    std::vector<FiberId> fibers;
    for (int f = 0; f < num_fibers; ++f) {
      fibers.push_back(env.Spawn("rp" + std::to_string(f), [&, f] {
        uint64_t acc = static_cast<uint64_t>(f);
        for (int op : scripts[f]) {
          switch (op) {
            case 0:
              acc += cells[acc % cells.size()]->Load();
              break;
            case 1:
              cells[acc % cells.size()]->Store(acc);
              break;
            case 2: {
              SimLock lock(mu);
              cells[0]->Store(cells[0]->Load() + 1);
              break;
            }
            case 3:
              chan.Send(acc);
              break;
            case 4:
              if (auto v = chan.TryRecv(); v.has_value()) {
                acc += *v;
              }
              break;
            case 5:
              acc ^= env.RngDraw(RngPurpose::kAppChoice, 1000);
              break;
            case 6:
              acc += env.ReadInput(input_);
              break;
            case 7:
              env.SleepFor(static_cast<SimDuration>(acc % 5) * kMicrosecond);
              break;
            default:
              break;
          }
        }
        env.EmitOutput(acc & 0xffff);
      }));
    }
    for (FiberId fiber : fibers) {
      env.Join(fiber);
    }
    while (chan.TryRecv().has_value()) {
    }
  }

 private:
  uint64_t structure_seed_;
  Rng world_rng_;
  ObjectId input_ = kInvalidObject;
};

class ReplayPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplayPropertyTest, PerfectReplayReproducesTraceExactly) {
  const uint64_t structure_seed = GetParam();
  constexpr uint64_t kWorldSeed = 555;

  // Record the "production" run with a perfect recorder.
  Environment::Options options;
  options.seed = 100 + structure_seed;  // production schedule seed
  options.scheduling.preempt_probability = 0.15;
  Environment record_env(options);
  PerfectRecorder recorder;
  recorder.AttachEnvironment(&record_env);
  record_env.AddTraceSink(&recorder);
  RandomProgram original(structure_seed, kWorldSeed);
  Outcome original_outcome = record_env.Run(original);

  // Replay from the log with a different environment seed and a different
  // world seed: everything must come from the log.
  Environment::Options replay_options;
  replay_options.seed = 999999;
  Environment replay_env(replay_options);
  LogReplayConfig config;  // full replay
  LogReplayDirector director(recorder.log(), config);
  replay_env.SetDirector(&director);
  RandomProgram replayed(structure_seed, /*world_seed=*/1);
  Outcome replay_outcome = replay_env.Run(replayed);

  EXPECT_EQ(replay_outcome.trace_fingerprint, original_outcome.trace_fingerprint)
      << "structure seed " << structure_seed;
  EXPECT_EQ(replay_outcome.output_fingerprint, original_outcome.output_fingerprint);
  EXPECT_EQ(director.divergences(), 0u);
}

TEST_P(ReplayPropertyTest, ValueReplayReproducesOutputs) {
  const uint64_t structure_seed = GetParam();
  Environment::Options options;
  options.seed = 300 + structure_seed;
  options.scheduling.preempt_probability = 0.1;
  Environment record_env(options);
  ValueRecorder recorder;
  recorder.AttachEnvironment(&record_env);
  record_env.AddTraceSink(&recorder);
  RandomProgram original(structure_seed, 777);
  Outcome original_outcome = record_env.Run(original);

  Environment::Options replay_options;
  replay_options.seed = 424242;
  Environment replay_env(replay_options);
  LogReplayConfig config;
  LogReplayDirector director(recorder.log(), config);
  replay_env.SetDirector(&director);
  RandomProgram replayed(structure_seed, 1);
  Outcome replay_outcome = replay_env.Run(replayed);

  EXPECT_EQ(replay_outcome.output_fingerprint, original_outcome.output_fingerprint)
      << "structure seed " << structure_seed;
  EXPECT_EQ(director.divergences(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, ReplayPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// ------------------------------------------------------------- inference

TEST(InferenceTest, FailureSynthesisFindsCrashingSeed) {
  // Program crashes iff its input is odd; the recorded production run
  // crashed. Inference must find some world seed that crashes.
  auto make_program = [](uint64_t world_seed) -> std::unique_ptr<SimProgram> {
    class OddCrash : public SimProgram {
     public:
      explicit OddCrash(uint64_t seed) : rng_(seed) {}
      std::string name() const override { return "odd-crash"; }
      void Configure(Environment& env) override {
        src_ = env.RegisterInputSource("odd.in", [this] { return rng_.Next(); });
      }
      void Main(Environment& env) override {
        if (env.ReadInput(src_) % 2 == 1) {
          env.Abort(FailureKind::kCrash, "odd input");
        }
        env.EmitOutput(1);
      }

     private:
      Rng rng_;
      ObjectId src_ = kInvalidObject;
    };
    return std::make_unique<OddCrash>(world_seed);
  };

  FailureSnapshot snapshot;
  snapshot.has_failure = true;
  snapshot.kind = FailureKind::kCrash;
  snapshot.message = "odd input";
  snapshot.node = 0;
  {
    FailureInfo info;
    info.kind = FailureKind::kCrash;
    info.message = "odd input";
    info.node = 0;
    snapshot.failure_fingerprint = info.Fingerprint();
  }

  ReplayTarget target;
  target.make_program = make_program;
  target.world_seeds_to_try = 10;
  target.sched_seeds_to_try = 1;
  InferenceEngine engine(target, InferenceBudget{});
  SynthesisResult result = engine.SynthesizeMatchingFailure(snapshot);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.outcome.Failed());
  EXPECT_EQ(result.outcome.primary_failure()->message, "odd input");
  EXPECT_GE(result.stats.attempts, 1u);
}

TEST(InferenceTest, BudgetBoundsAttempts) {
  auto make_program = [](uint64_t world_seed) -> std::unique_ptr<SimProgram> {
    class NeverFails : public SimProgram {
     public:
      explicit NeverFails(uint64_t) {}
      std::string name() const override { return "never"; }
      void Main(Environment& env) override { env.EmitOutput(1); }
    };
    return std::make_unique<NeverFails>(world_seed);
  };
  FailureSnapshot snapshot;
  snapshot.has_failure = true;
  snapshot.kind = FailureKind::kCrash;
  snapshot.message = "unreachable";
  snapshot.failure_fingerprint = 1234;

  ReplayTarget target;
  target.make_program = make_program;
  target.world_seeds_to_try = 100;
  target.sched_seeds_to_try = 100;
  InferenceBudget budget;
  budget.max_attempts = 25;
  InferenceEngine engine(target, budget);
  SynthesisResult result = engine.SynthesizeMatchingFailure(snapshot);
  EXPECT_FALSE(result.found);
  EXPECT_LE(result.stats.attempts, 25u);
}

TEST(LogReplayDirectorTest, EmptyLogFallsBackToPolicy) {
  EventLog empty;
  LogReplayConfig config;
  config.fallback.preempt_probability = 0.0;
  LogReplayDirector director(empty, config);
  Environment env(Environment::Options{});
  env.SetDirector(&director);
  Outcome outcome = env.Run("fallback", [](Environment& e) {
    FiberId f = e.Spawn("child", [&] { e.Yield(); });
    e.Join(f);
    e.EmitOutput(7);
  });
  EXPECT_FALSE(outcome.Failed());
  EXPECT_EQ(outcome.outputs.size(), 1u);
}

TEST(LogReplayDirectorTest, InputOverridesComeFromLog) {
  EventLog log;
  Event input;
  input.type = EventType::kInput;
  // Object ids are assigned in creation order: the root fiber object is 0,
  // so the first source registered from Main() is object 1.
  input.obj = 1;
  input.value = 4242;
  log.Append(input);

  LogReplayConfig config;
  config.follow_schedule = false;
  LogReplayDirector director(log, config);
  Environment env(Environment::Options{});
  env.SetDirector(&director);
  uint64_t seen = 0;
  env.Run("inputs", [&](Environment& e) {
    ObjectId src = e.RegisterInputSource("src", [] { return uint64_t{1}; });
    seen = e.ReadInput(src);
    // Log exhausted: falls through to the live generator.
    EXPECT_EQ(e.ReadInput(src), 1u);
  });
  EXPECT_EQ(seen, 4242u);
}

}  // namespace
}  // namespace ddr
