// Tests for the centralized CLI flag handling (src/util/cli_flags.h):
// every ddr-trace subcommand runs its argument vector through
// CheckKnownFlags, so the property under test is that typo'd flags fail
// loudly while known flags (both "--flag v" and "--flag=v" forms) and
// positionals pass through unchanged.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/cli_flags.h"

namespace ddr {
namespace {

constexpr CliFlag kFlags[] = {{"--io", true},
                              {"--cache-mb", true},
                              {"--delta", false}};

// argv helper: keeps the strings alive and hands out char* const*.
class Argv {
 public:
  explicit Argv(std::vector<std::string> tokens) : tokens_(std::move(tokens)) {
    for (std::string& token : tokens_) {
      pointers_.push_back(token.data());
    }
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char* const* argv() const { return pointers_.data(); }

 private:
  std::vector<std::string> tokens_;
  std::vector<char*> pointers_;
};

TEST(CliFlagsTest, KnownFlagsInBothFormsPass) {
  Argv args({"ddr-trace", "verify", "file.ddrt", "--io", "mmap",
             "--cache-mb=64", "--delta"});
  EXPECT_TRUE(CheckKnownFlags(args.argc(), args.argv(), 2, kFlags).ok());
}

TEST(CliFlagsTest, UnknownFlagFailsNamingTheOffender) {
  Argv args({"ddr-trace", "replay", "file.ddrt", "--cach-mb", "64"});
  const Status status = CheckKnownFlags(args.argc(), args.argv(), 2, kFlags);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--cach-mb"), std::string::npos)
      << status.message();

  // The "=" form of an unknown flag fails too.
  Argv inline_form({"ddr-trace", "replay", "file.ddrt", "--cach-mb=64"});
  EXPECT_FALSE(
      CheckKnownFlags(inline_form.argc(), inline_form.argv(), 2, kFlags).ok());
}

TEST(CliFlagsTest, ValueFlagConsumesItsSpacedValue) {
  // "mmap" after "--io" is the flag's value, not an unknown token.
  Argv args({"ddr-trace", "verify", "file.ddrt", "--io", "mmap"});
  EXPECT_TRUE(CheckKnownFlags(args.argc(), args.argv(), 2, kFlags).ok());
}

TEST(CliFlagsTest, ValueFlagMissingItsValueFails) {
  // A trailing value flag would otherwise validate but have its value
  // lookup return nullptr — the user who meant "--io mmap" silently runs
  // on the default backend.
  Argv trailing({"ddr-trace", "verify", "file.ddrt", "--io"});
  const Status status =
      CheckKnownFlags(trailing.argc(), trailing.argv(), 2, kFlags);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("missing its value"), std::string::npos)
      << status.message();

  // A flag-shaped "value" is a missing value too, not a consumable token:
  // otherwise "--cache-mb --delta" validates with two interpretations of
  // "--delta" (consumed value here, live flag in HasCliFlag).
  Argv flagish({"ddr-trace", "verify", "file.ddrt", "--cache-mb", "--delta"});
  EXPECT_FALSE(CheckKnownFlags(flagish.argc(), flagish.argv(), 2, kFlags).ok());
}

TEST(CliFlagsTest, BoolFlagRejectsInlineValue) {
  // "--delta=false" must not quietly mean "--delta": HasCliFlag matches
  // the prefix, which would ENABLE the flag the user tried to disable.
  Argv args({"ddr-trace", "record", "sum", "out.ddrt", "--delta=false"});
  const Status status = CheckKnownFlags(args.argc(), args.argv(), 2, kFlags);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("does not take a value"), std::string::npos)
      << status.message();
}

TEST(CliFlagsTest, PositionalsSkipFlagsAndTheirValues) {
  Argv args({"ddr-trace", "corpus", "merge", "out.ddrc", "in1.ddrc", "--io",
             "mmap", "in2.ddrc", "--cache-mb=8", "in3.ddrc", "--delta"});
  const std::vector<std::string> positionals =
      PositionalArgs(args.argc(), args.argv(), 4, kFlags);
  EXPECT_EQ(positionals,
            (std::vector<std::string>{"in1.ddrc", "in2.ddrc", "in3.ddrc"}));
}

TEST(CliFlagsTest, FlagValueLookupHandlesBothForms) {
  Argv args({"ddr-trace", "verify", "file.ddrt", "--io", "pread",
             "--cache-mb=16"});
  EXPECT_STREQ(CliFlagValue(args.argc(), args.argv(), 2, "--io"), "pread");
  EXPECT_STREQ(CliFlagValue(args.argc(), args.argv(), 2, "--cache-mb"), "16");
  EXPECT_EQ(CliFlagValue(args.argc(), args.argv(), 2, "--absent"), nullptr);
  EXPECT_TRUE(HasCliFlag(args.argc(), args.argv(), 2, "--io"));
  EXPECT_FALSE(HasCliFlag(args.argc(), args.argv(), 2, "--absent"));
}

TEST(CliFlagsTest, ParseCliUint64RejectsJunkAndWraps) {
  ASSERT_TRUE(ParseCliUint64("0").ok());
  EXPECT_EQ(*ParseCliUint64("0"), 0u);
  EXPECT_EQ(*ParseCliUint64("18446744073709551615"), ~uint64_t{0});

  // strtoull would quietly wrap "-1" to 2^64-1 and skip leading spaces;
  // a CLI count must reject all of these.
  for (const char* junk : {"", "-1", "+2", " 3", "4x", "x4", "1e3",
                           "18446744073709551616"}) {
    EXPECT_FALSE(ParseCliUint64(junk).ok()) << "'" << junk << "'";
  }
  EXPECT_FALSE(ParseCliUint64(nullptr).ok());
}

}  // namespace
}  // namespace ddr
