// Smoke tests for the deterministic substrate: fibers, scheduling,
// determinism, sync primitives, channels, network, faults.

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/channel.h"
#include "src/sim/disk.h"
#include "src/sim/environment.h"
#include "src/sim/network.h"
#include "src/sim/shared_var.h"
#include "src/sim/sync.h"

namespace ddr {
namespace {

Environment::Options TestOptions(uint64_t seed) {
  Environment::Options options;
  options.seed = seed;
  options.scheduling.preempt_probability = 0.2;
  return options;
}

TEST(SimSmoke, RunsEmptyProgram) {
  Environment env(TestOptions(1));
  Outcome outcome = env.Run("empty", [](Environment&) {});
  EXPECT_FALSE(outcome.Failed());
  EXPECT_GT(outcome.stats.events, 0u);
}

TEST(SimSmoke, SpawnAndJoin) {
  Environment env(TestOptions(2));
  int order = 0;
  int child_saw = -1;
  int parent_saw = -1;
  Outcome outcome = env.Run("spawn", [&](Environment& e) {
    FiberId child = e.Spawn("child", [&] { child_saw = order++; });
    e.Join(child);
    parent_saw = order++;
  });
  EXPECT_FALSE(outcome.Failed());
  EXPECT_EQ(child_saw, 0);
  EXPECT_EQ(parent_saw, 1);
}

TEST(SimSmoke, DeterministicFingerprintAcrossRuns) {
  auto run_once = [](uint64_t seed) {
    Environment env(TestOptions(seed));
    return env
        .Run("det",
             [](Environment& e) {
               SharedVar<uint64_t> counter(e, "counter", 0);
               SimMutex mu(e, "mu");
               std::vector<FiberId> workers;
               for (int i = 0; i < 4; ++i) {
                 workers.push_back(e.Spawn("w" + std::to_string(i), [&] {
                   for (int k = 0; k < 10; ++k) {
                     SimLock lock(mu);
                     counter.Store(counter.Load() + 1);
                   }
                 }));
               }
               for (FiberId w : workers) {
                 e.Join(w);
               }
               e.EmitOutput(counter.Load());
             })
        .trace_fingerprint;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_EQ(run_once(43), run_once(43));
  EXPECT_NE(run_once(42), run_once(43));  // different seeds, different schedules
}

TEST(SimSmoke, MutexProvidesMutualExclusion) {
  Environment env(TestOptions(7));
  bool overlap = false;
  Outcome outcome = env.Run("mutex", [&](Environment& e) {
    SimMutex mu(e, "mu");
    SharedVar<int> in_critical(e, "in_critical", 0);
    std::vector<FiberId> workers;
    for (int i = 0; i < 8; ++i) {
      workers.push_back(e.Spawn("w" + std::to_string(i), [&] {
        for (int k = 0; k < 20; ++k) {
          SimLock lock(mu);
          if (in_critical.Load() != 0) {
            overlap = true;
          }
          in_critical.Store(1);
          e.Yield();
          in_critical.Store(0);
        }
      }));
    }
    for (FiberId w : workers) {
      e.Join(w);
    }
  });
  EXPECT_FALSE(outcome.Failed());
  EXPECT_FALSE(overlap);
}

TEST(SimSmoke, UnlockedCounterLosesUpdatesUnderSomeSchedule) {
  // A racy read-modify-write should lose updates for at least one seed.
  bool lost_somewhere = false;
  for (uint64_t seed = 1; seed <= 20 && !lost_somewhere; ++seed) {
    Environment env(TestOptions(seed));
    uint64_t final_value = 0;
    env.Run("racy", [&](Environment& e) {
      SharedVar<uint64_t> counter(e, "counter", 0);
      std::vector<FiberId> workers;
      for (int i = 0; i < 4; ++i) {
        workers.push_back(e.Spawn("w" + std::to_string(i), [&] {
          for (int k = 0; k < 10; ++k) {
            uint64_t v = counter.Load();  // racy: load and store not atomic
            counter.Store(v + 1);
          }
        }));
      }
      for (FiberId w : workers) {
        e.Join(w);
      }
      final_value = counter.Load();
    });
    if (final_value < 40) {
      lost_somewhere = true;
    }
  }
  EXPECT_TRUE(lost_somewhere);
}

TEST(SimSmoke, CondVarPingPong) {
  Environment env(TestOptions(11));
  std::vector<int> sequence;
  Outcome outcome = env.Run("pingpong", [&](Environment& e) {
    SimMutex mu(e, "mu");
    SimCondVar cv(e, "cv");
    int turn = 0;  // guarded by mu
    FiberId ping = e.Spawn("ping", [&] {
      for (int i = 0; i < 5; ++i) {
        SimLock lock(mu);
        cv.WaitUntil(mu, [&] { return turn == 0; });
        sequence.push_back(0);
        turn = 1;
        cv.Broadcast();
      }
    });
    FiberId pong = e.Spawn("pong", [&] {
      for (int i = 0; i < 5; ++i) {
        SimLock lock(mu);
        cv.WaitUntil(mu, [&] { return turn == 1; });
        sequence.push_back(1);
        turn = 0;
        cv.Broadcast();
      }
    });
    e.Join(ping);
    e.Join(pong);
  });
  EXPECT_FALSE(outcome.Failed());
  ASSERT_EQ(sequence.size(), 10u);
  for (size_t i = 0; i < sequence.size(); ++i) {
    EXPECT_EQ(sequence[i], static_cast<int>(i % 2));
  }
}

TEST(SimSmoke, ChannelDeliversInOrder) {
  Environment env(TestOptions(13));
  std::vector<int> received;
  Outcome outcome = env.Run("chan", [&](Environment& e) {
    Channel<int> chan(e, "chan");
    FiberId producer = e.Spawn("producer", [&] {
      for (int i = 0; i < 50; ++i) {
        chan.Send(i);
      }
    });
    FiberId consumer = e.Spawn("consumer", [&] {
      for (int i = 0; i < 50; ++i) {
        received.push_back(chan.Recv());
      }
    });
    e.Join(producer);
    e.Join(consumer);
  });
  EXPECT_FALSE(outcome.Failed());
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(received[i], i);
  }
}

TEST(SimSmoke, SleepAdvancesVirtualTime) {
  Environment env(TestOptions(17));
  SimTime before = 0;
  SimTime after = 0;
  env.Run("sleep", [&](Environment& e) {
    before = e.Now();
    e.SleepFor(5 * kMillisecond);
    after = e.Now();
  });
  EXPECT_GE(after - before, static_cast<SimTime>(5 * kMillisecond));
}

TEST(SimSmoke, DeadlockIsDetected) {
  Environment env(TestOptions(19));
  Outcome outcome = env.Run("deadlock", [&](Environment& e) {
    SimMutex a(e, "a");
    SimMutex b(e, "b");
    SimBarrier barrier(e, "both_hold_first", 2);
    FiberId f1 = e.Spawn("f1", [&] {
      a.Lock();
      barrier.Arrive();  // guarantee both first locks are held
      b.Lock();
      b.Unlock();
      a.Unlock();
    });
    FiberId f2 = e.Spawn("f2", [&] {
      b.Lock();
      barrier.Arrive();
      a.Lock();
      a.Unlock();
      b.Unlock();
    });
    e.Join(f1);
    e.Join(f2);
  });
  ASSERT_TRUE(outcome.Failed());
  EXPECT_EQ(outcome.failures[0].kind, FailureKind::kDeadlock);
}

TEST(SimSmoke, AbortRecordsFailureAndStops) {
  Environment env(TestOptions(23));
  Outcome outcome = env.Run("abort", [&](Environment& e) {
    e.Abort(FailureKind::kCrash, "boom");
  });
  ASSERT_TRUE(outcome.Failed());
  EXPECT_EQ(outcome.failures[0].kind, FailureKind::kCrash);
  EXPECT_EQ(outcome.failures[0].message, "boom");
}

TEST(SimSmoke, NetworkDeliversMessages) {
  Environment env(TestOptions(29));
  std::string got;
  Outcome outcome = env.Run("net", [&](Environment& e) {
    NodeId server_node = e.AddNode("server");
    Network net(e, NetworkOptions{});
    ObjectId client_ep = net.CreateEndpoint(0, "client.ep");
    ObjectId server_ep = net.CreateEndpoint(server_node, "server.ep");
    FiberId server = e.SpawnOnNode(server_node, "server", [&] {
      auto msg = net.Recv(server_ep);
      ASSERT_TRUE(msg.has_value());
      got = msg->payload;
      net.Send(server_ep, client_ep, /*tag=*/2, "pong");
    });
    net.Send(client_ep, server_ep, /*tag=*/1, "ping");
    auto reply = net.Recv(client_ep);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->payload, "pong");
    e.Join(server);
  });
  EXPECT_FALSE(outcome.Failed());
  EXPECT_EQ(got, "ping");
}

TEST(SimSmoke, CrashFaultKillsNodeAndRecvTimesOut) {
  Environment env(TestOptions(31));
  env.SetFaultPlan(FaultPlan::CrashNodeAt(/*node=*/1, /*time=*/1 * kMillisecond));
  bool got_reply = true;
  Outcome outcome = env.Run("crash", [&](Environment& e) {
    NodeId server_node = e.AddNode("server");
    Network net(e, NetworkOptions{});
    ObjectId client_ep = net.CreateEndpoint(0, "client.ep");
    ObjectId server_ep = net.CreateEndpoint(server_node, "server.ep");
    e.SpawnOnNode(server_node, "server", [&] {
      // Server would reply, but it is crashed before the request arrives.
      auto msg = net.Recv(server_ep);
      if (msg.has_value()) {
        net.Send(server_ep, client_ep, 2, "pong");
      }
    });
    e.SleepFor(2 * kMillisecond);  // let the crash fire
    net.Send(client_ep, server_ep, 1, "ping");
    auto reply = net.Recv(client_ep, /*timeout=*/10 * kMillisecond);
    got_reply = reply.has_value();
  });
  EXPECT_FALSE(got_reply);
  EXPECT_FALSE(env.NodeAlive(1));
  (void)outcome;
}

TEST(SimSmoke, OutputsAreCollected) {
  Environment env(TestOptions(37));
  Outcome outcome = env.Run("out", [&](Environment& e) {
    e.EmitOutput(10);
    e.EmitOutput(20);
    e.EmitOutput(12);
  });
  ASSERT_EQ(outcome.outputs.size(), 3u);
  EXPECT_EQ(outcome.SumOfOutputValues(), 42u);
}

TEST(SimSmoke, IoSpecViolationBecomesFailure) {
  Environment env(TestOptions(41));
  env.SetIoSpec([](const Outcome& outcome) -> std::optional<FailureInfo> {
    if (outcome.SumOfOutputValues() != 4) {
      FailureInfo failure;
      failure.kind = FailureKind::kSpecViolation;
      failure.message = "wrong sum";
      return failure;
    }
    return std::nullopt;
  });
  Outcome outcome = env.Run("spec", [&](Environment& e) { e.EmitOutput(5); });
  ASSERT_TRUE(outcome.Failed());
  EXPECT_EQ(outcome.failures[0].kind, FailureKind::kSpecViolation);
}

TEST(SimSmoke, DaemonFiberDoesNotBlockExit) {
  Environment env(TestOptions(43));
  // Owned outside Run so the blocked fiber's channel outlives its killed
  // fiber and is still reclaimed (LeakSanitizer runs these tests).
  std::unique_ptr<Channel<int>> chan;
  Outcome outcome = env.Run("daemon", [&](Environment& e) {
    chan = std::make_unique<Channel<int>>(e, "never");
    e.Spawn("daemon", [&] {
      chan->Recv();  // blocks forever; killed at teardown
    });
    e.SleepFor(1 * kMillisecond);
    // Root exits; daemon must be killed, not deadlock-reported.
  });
  EXPECT_FALSE(outcome.Failed());
}

TEST(SimSmoke, RegionsAttributeEvents) {
  Environment env(TestOptions(47));
  CollectingSink sink;
  env.AddTraceSink(&sink);
  RegionId control = kDefaultRegion;
  env.Run("regions", [&](Environment& e) {
    control = e.RegisterRegion("control");
    SharedVar<int> x(e, "x", 0);
    {
      RegionScope scope(e, control);
      x.Store(1);
    }
    x.Store(2);
  });
  bool saw_control_write = false;
  bool saw_default_write = false;
  for (const Event& event : sink.events()) {
    if (event.type == EventType::kSharedWrite && event.value == 1) {
      saw_control_write = event.region == control;
    }
    if (event.type == EventType::kSharedWrite && event.value == 2) {
      saw_default_write = event.region == kDefaultRegion;
    }
  }
  EXPECT_TRUE(saw_control_write);
  EXPECT_TRUE(saw_default_write);
}

}  // namespace
}  // namespace ddr
