// Deeper substrate tests beyond the smoke suite: semaphores, barriers,
// timeouts, channel backpressure, RMW atomicity, run limits, disks,
// TryAlloc faults, region nesting, and scheduling-policy determinism.

#include <gtest/gtest.h>

#include "src/sim/channel.h"
#include "src/sim/disk.h"
#include "src/sim/environment.h"
#include "src/sim/network.h"
#include "src/sim/shared_var.h"
#include "src/sim/sync.h"

namespace ddr {
namespace {

Environment::Options Opts(uint64_t seed, double preempt = 0.15) {
  Environment::Options options;
  options.seed = seed;
  options.scheduling.preempt_probability = preempt;
  return options;
}

TEST(SimSyncTest, SemaphoreBoundsConcurrency) {
  Environment env(Opts(1));
  int max_inside = 0;
  Outcome outcome = env.Run("sem", [&](Environment& e) {
    SimSemaphore sem(e, "sem", 2);
    SharedVar<int> inside(e, "inside", 0);
    std::vector<FiberId> fibers;
    for (int i = 0; i < 6; ++i) {
      fibers.push_back(e.Spawn("f" + std::to_string(i), [&] {
        sem.Acquire();
        const int now_inside = static_cast<int>(inside.FetchAdd(1)) + 1;
        max_inside = std::max(max_inside, now_inside);
        e.Yield();
        inside.FetchAdd(-1);
        sem.Release();
      }));
    }
    for (FiberId f : fibers) {
      e.Join(f);
    }
  });
  EXPECT_FALSE(outcome.Failed());
  EXPECT_LE(max_inside, 2);
  EXPECT_GE(max_inside, 1);
}

TEST(SimSyncTest, BarrierReleasesAllTogether) {
  Environment env(Opts(2));
  int after_barrier_before_all_arrived = 0;
  Outcome outcome = env.Run("barrier", [&](Environment& e) {
    SimBarrier barrier(e, "barrier", 4);
    SharedVar<int> arrived(e, "arrived", 0);
    std::vector<FiberId> fibers;
    for (int i = 0; i < 4; ++i) {
      fibers.push_back(e.Spawn("f" + std::to_string(i), [&] {
        arrived.FetchAdd(1);
        barrier.Arrive();
        if (arrived.Load() < 4) {
          ++after_barrier_before_all_arrived;
        }
      }));
    }
    for (FiberId f : fibers) {
      e.Join(f);
    }
  });
  EXPECT_FALSE(outcome.Failed());
  EXPECT_EQ(after_barrier_before_all_arrived, 0);
}

TEST(SimSyncTest, RmwIsAtomicUnderPreemption) {
  Environment env(Opts(3, /*preempt=*/0.4));
  uint64_t final_value = 0;
  env.Run("rmw", [&](Environment& e) {
    SharedVar<uint64_t> counter(e, "counter", 0);
    std::vector<FiberId> fibers;
    for (int i = 0; i < 4; ++i) {
      fibers.push_back(e.Spawn("f" + std::to_string(i), [&] {
        for (int k = 0; k < 25; ++k) {
          counter.FetchAdd(1);
        }
      }));
    }
    for (FiberId f : fibers) {
      e.Join(f);
    }
    final_value = counter.Load();
  });
  EXPECT_EQ(final_value, 100u);
}

TEST(SimSyncTest, CompareExchange) {
  Environment env(Opts(4));
  env.Run("cas", [&](Environment& e) {
    SharedVar<int> flag(e, "flag", 0);
    EXPECT_TRUE(flag.CompareExchange(0, 7));
    EXPECT_FALSE(flag.CompareExchange(0, 9));
    EXPECT_EQ(flag.Load(), 7);
  });
}

TEST(SimTimeoutTest, WaitOnTimesOut) {
  Environment env(Opts(5));
  WakeReason reason = WakeReason::kNotified;
  SimTime waited = 0;
  env.Run("timeout", [&](Environment& e) {
    ObjectId queue = e.CreateWaitQueue("never-notified");
    const SimTime before = e.Now();
    reason = e.WaitOn(queue, 2 * kMillisecond);
    waited = e.Now() - before;
  });
  EXPECT_EQ(reason, WakeReason::kTimeout);
  EXPECT_GE(waited, static_cast<SimTime>(2 * kMillisecond));
}

TEST(SimTimeoutTest, NotifyBeforeTimeoutWins) {
  Environment env(Opts(6));
  WakeReason reason = WakeReason::kTimeout;
  env.Run("notify", [&](Environment& e) {
    ObjectId queue = e.CreateWaitQueue("queue");
    FiberId waker = e.Spawn("waker", [&] {
      e.SleepFor(1 * kMillisecond);
      e.NotifyOne(queue);
    });
    reason = e.WaitOn(queue, 50 * kMillisecond);
    e.Join(waker);
  });
  EXPECT_EQ(reason, WakeReason::kNotified);
}

TEST(SimTimeoutTest, StaleTimerDoesNotWakeLaterWait) {
  Environment env(Opts(7));
  Outcome outcome = env.Run("stale", [&](Environment& e) {
    ObjectId queue = e.CreateWaitQueue("queue");
    FiberId waker = e.Spawn("waker", [&] {
      e.SleepFor(1 * kMillisecond);
      e.NotifyOne(queue);  // wakes the first wait; its timer is now stale
      e.SleepFor(10 * kMillisecond);
      e.NotifyOne(queue);  // wakes the second wait
    });
    EXPECT_EQ(e.WaitOn(queue, 3 * kMillisecond), WakeReason::kNotified);
    // Second wait crosses the first wait's (stale) timeout instant.
    EXPECT_EQ(e.WaitOn(queue, 30 * kMillisecond), WakeReason::kNotified);
    e.Join(waker);
  });
  EXPECT_FALSE(outcome.Failed());
}

TEST(SimChannelTest, BoundedChannelExertsBackpressure) {
  Environment env(Opts(8));
  size_t max_depth = 0;
  Outcome outcome = env.Run("bounded", [&](Environment& e) {
    Channel<int> chan(e, "chan", /*capacity=*/3);
    FiberId producer = e.Spawn("producer", [&] {
      for (int i = 0; i < 30; ++i) {
        chan.Send(i);
        max_depth = std::max(max_depth, chan.size());
      }
    });
    FiberId consumer = e.Spawn("consumer", [&] {
      for (int i = 0; i < 30; ++i) {
        EXPECT_EQ(chan.Recv(), i);
      }
    });
    e.Join(producer);
    e.Join(consumer);
  });
  EXPECT_FALSE(outcome.Failed());
  EXPECT_LE(max_depth, 3u);
}

TEST(SimChannelTest, TryRecvNonBlocking) {
  Environment env(Opts(9));
  env.Run("tryrecv", [&](Environment& e) {
    Channel<int> chan(e, "chan");
    EXPECT_FALSE(chan.TryRecv().has_value());
    chan.Send(5);
    auto got = chan.TryRecv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 5);
  });
}

TEST(SimLimitsTest, EventLimitStopsRun) {
  Environment::Options options = Opts(10);
  options.max_events = 500;
  Environment env(options);
  Outcome outcome = env.Run("runaway", [&](Environment& e) {
    SharedVar<uint64_t> x(e, "x", 0);
    for (;;) {
      x.Store(x.Load() + 1);  // infinite loop; the limit must stop it
    }
  });
  EXPECT_TRUE(outcome.stats.hit_event_limit);
  EXPECT_LE(outcome.stats.events, 501u);
}

TEST(SimLimitsTest, VirtualTimeLimitStopsRun) {
  Environment::Options options = Opts(11);
  options.max_virtual_time = 5 * kMillisecond;
  Environment env(options);
  Outcome outcome = env.Run("sleeper", [&](Environment& e) {
    for (;;) {
      e.SleepFor(1 * kMillisecond);
    }
  });
  EXPECT_TRUE(outcome.stats.hit_time_limit);
}

TEST(SimDiskTest, AppendAndReadWithLatency) {
  Environment env(Opts(12));
  env.Run("disk", [&](Environment& e) {
    SimDisk disk(e, "disk");
    const SimTime before = e.Now();
    const size_t index = disk.Append("record-zero");
    EXPECT_EQ(index, 0u);
    EXPECT_GT(e.Now(), before);  // write latency elapsed
    disk.Append("record-one");
    EXPECT_EQ(disk.Read(0), "record-zero");
    EXPECT_EQ(disk.Read(1), "record-one");
    EXPECT_EQ(disk.num_records(), 2u);
    EXPECT_EQ(disk.bytes_written(), 21u);  // 11 + 10 payload bytes
  });
}

TEST(SimFaultTest, TryAllocFailsOncePerArm) {
  Environment env(Opts(13));
  env.SetFaultPlan(FaultPlan::OomAt(/*node=*/0, /*time=*/0));
  int failures = 0;
  env.Run("oom", [&](Environment& e) {
    for (int i = 0; i < 5; ++i) {
      if (!e.TryAlloc(100)) {
        ++failures;
      }
    }
  });
  EXPECT_EQ(failures, 1);  // the armed fault fires exactly once
}

TEST(SimFaultTest, CheckAllocAbortsWithOom) {
  Environment env(Opts(14));
  env.SetFaultPlan(FaultPlan::OomAt(/*node=*/0, /*time=*/0));
  Outcome outcome = env.Run("oom-abort", [&](Environment& e) { e.CheckAlloc(64); });
  ASSERT_TRUE(outcome.Failed());
  EXPECT_EQ(outcome.primary_failure()->kind, FailureKind::kOom);
}

TEST(SimRegionTest, NestedRegionsRestoreOuter) {
  Environment env(Opts(15));
  CollectingSink sink;
  env.AddTraceSink(&sink);
  RegionId outer = kDefaultRegion;
  RegionId inner = kDefaultRegion;
  env.Run("regions", [&](Environment& e) {
    outer = e.RegisterRegion("outer");
    inner = e.RegisterRegion("inner");
    SharedVar<int> x(e, "x", 0);
    RegionScope outer_scope(e, outer);
    x.Store(1);
    {
      RegionScope inner_scope(e, inner);
      x.Store(2);
    }
    x.Store(3);
  });
  RegionId region_of_1 = kDefaultRegion;
  RegionId region_of_2 = kDefaultRegion;
  RegionId region_of_3 = kDefaultRegion;
  for (const Event& event : sink.events()) {
    if (event.type == EventType::kSharedWrite) {
      if (event.value == 1) region_of_1 = event.region;
      if (event.value == 2) region_of_2 = event.region;
      if (event.value == 3) region_of_3 = event.region;
    }
  }
  EXPECT_EQ(region_of_1, outer);
  EXPECT_EQ(region_of_2, inner);
  EXPECT_EQ(region_of_3, outer);
}

TEST(SimPolicyTest, RoundRobinIsDeterministicAndFair) {
  auto run = [](uint64_t seed) {
    Environment::Options options;
    options.seed = seed;
    options.scheduling.policy = SchedulingOptions::Policy::kRoundRobin;
    options.scheduling.preempt_probability = 1.0;  // switch at every point
    Environment env(options);
    std::vector<int> order;
    env.Run("rr", [&](Environment& e) {
      std::vector<FiberId> fibers;
      for (int i = 0; i < 3; ++i) {
        fibers.push_back(e.Spawn("f" + std::to_string(i), [&, i] {
          for (int k = 0; k < 3; ++k) {
            order.push_back(i);
            e.Yield();
          }
        }));
      }
      for (FiberId f : fibers) {
        e.Join(f);
      }
    });
    return order;
  };
  // Round-robin ignores the seed entirely: identical interleavings.
  EXPECT_EQ(run(1), run(999));
  const auto order = run(1);
  EXPECT_EQ(order.size(), 9u);
}

TEST(SimPolicyTest, ZeroPreemptionRunsFibersToBlocking) {
  Environment env(Opts(16, /*preempt=*/0.0));
  std::vector<int> order;
  env.Run("coop", [&](Environment& e) {
    FiberId a = e.Spawn("a", [&] {
      order.push_back(1);
      order.push_back(2);  // no preemption between these
    });
    FiberId b = e.Spawn("b", [&] { order.push_back(3); });
    e.Join(a);
    e.Join(b);
  });
  ASSERT_EQ(order.size(), 3u);
  // With zero preemption, 'a' has no scheduling point between its two
  // pushes, so they are never interleaved by 'b' (pick order may vary).
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 1) {
      ASSERT_LT(i + 1, order.size());
      EXPECT_EQ(order[i + 1], 2);
    }
  }
}

TEST(SimNetworkTest, BaseDropProbabilityDropsSomeMessages) {
  Environment env(Opts(17));
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  env.Run("drops", [&](Environment& e) {
    NodeId peer = e.AddNode("peer");
    NetworkOptions options;
    options.drop_probability = 0.3;
    Network net(e, options);
    ObjectId here = net.CreateEndpoint(0, "here");
    ObjectId there = net.CreateEndpoint(peer, "there");
    e.SpawnOnNode(peer, "sink", [&] {
      while (net.Recv(there, 20 * kMillisecond).has_value()) {
      }
    });
    for (int i = 0; i < 100; ++i) {
      net.Send(here, there, i, "x");
    }
    e.SleepFor(50 * kMillisecond);
    delivered = net.messages_delivered();
    dropped = net.messages_dropped();
  });
  EXPECT_GT(dropped, 10u);
  EXPECT_GT(delivered, 40u);
  EXPECT_EQ(delivered + dropped, 100u);
}

TEST(SimNetworkTest, CongestionDropsOnlyInsideWindow) {
  Environment env(Opts(18));
  env.SetFaultPlan(FaultPlan::CongestionWindow(/*start=*/10 * kMillisecond,
                                               /*duration=*/10 * kMillisecond,
                                               /*drop_prob=*/1.0));
  uint64_t in_window_drops = 0;
  uint64_t out_window_delivered = 0;
  env.Run("congestion", [&](Environment& e) {
    NodeId peer = e.AddNode("peer");
    Network net(e, NetworkOptions{});
    ObjectId here = net.CreateEndpoint(0, "here");
    ObjectId there = net.CreateEndpoint(peer, "there");
    e.SpawnOnNode(peer, "sink", [&] {
      while (net.Recv(there, 40 * kMillisecond).has_value()) {
      }
    });
    net.Send(here, there, 1, "before");   // t=0: delivered
    e.SleepFor(15 * kMillisecond);        // inside the window
    net.Send(here, there, 2, "during");   // dropped (p=1.0)
    e.SleepFor(15 * kMillisecond);        // after the window
    net.Send(here, there, 3, "after");    // delivered
    e.SleepFor(10 * kMillisecond);
    in_window_drops = net.congestion_drops();
    out_window_delivered = net.messages_delivered();
  });
  EXPECT_EQ(in_window_drops, 1u);
  EXPECT_EQ(out_window_delivered, 2u);
}

TEST(SimDeterminismTest, PolicySweepFingerprintsStable) {
  auto fingerprint = [](uint64_t seed, SchedulingOptions::Policy policy, double p) {
    Environment::Options options;
    options.seed = seed;
    options.scheduling.policy = policy;
    options.scheduling.preempt_probability = p;
    Environment env(options);
    return env
        .Run("sweep",
             [](Environment& e) {
               SharedVar<uint64_t> x(e, "x", 0);
               SimMutex mu(e, "mu");
               Channel<int> chan(e, "chan");
               FiberId a = e.Spawn("a", [&] {
                 for (int i = 0; i < 8; ++i) {
                   SimLock lock(mu);
                   x.Store(x.Load() + 1);
                   chan.Send(i);
                 }
               });
               FiberId b = e.Spawn("b", [&] {
                 for (int i = 0; i < 8; ++i) {
                   chan.Recv();
                   e.RngDraw(RngPurpose::kAppChoice, 10);
                 }
               });
               e.Join(a);
               e.Join(b);
             })
        .trace_fingerprint;
  };
  for (auto policy : {SchedulingOptions::Policy::kRandom,
                      SchedulingOptions::Policy::kRoundRobin}) {
    for (double p : {0.0, 0.2, 0.9}) {
      for (uint64_t seed : {1ull, 17ull, 333ull}) {
        EXPECT_EQ(fingerprint(seed, policy, p), fingerprint(seed, policy, p))
            << "policy=" << static_cast<int>(policy) << " p=" << p
            << " seed=" << seed;
      }
    }
  }
}

}  // namespace
}  // namespace ddr
