// Tests for the didactic buggy apps (sum, overflow, msgdrop) and their
// scenario wiring, including the fix-predicate property: with the bug
// disabled (predicate P enforced), the failure is impossible.

#include <gtest/gtest.h>

#include "src/apps/annotations.h"
#include "src/apps/msgdrop_app.h"
#include "src/apps/overflow_app.h"
#include "src/apps/scenarios.h"
#include "src/apps/sum_app.h"

namespace ddr {
namespace {

Outcome RunProgram(SimProgram& program, uint64_t sched_seed, double preempt = 0.1) {
  Environment::Options options;
  options.seed = sched_seed;
  options.scheduling.preempt_probability = preempt;
  Environment env(options);
  return env.Run(program);
}

// --------------------------------------------------------------------- sum

TEST(SumAppTest, CorrectForMostInputs) {
  SumOptions options;
  options.world_seed = 12345;  // whatever inputs; only (2,2) mod 4 fails
  options.bug_enabled = false;
  SumProgram program(options);
  Outcome outcome = RunProgram(program, 1);
  EXPECT_FALSE(outcome.Failed());
}

TEST(SumAppTest, BugFiresExactlyOnCorruptEntry) {
  // The scenario factory locates a world seed with inputs (2,2).
  BugScenario scenario = MakeSumScenario();
  auto program = scenario.make_program(scenario.production_world_seed);
  Outcome outcome = RunProgram(*program, 1);
  ASSERT_TRUE(outcome.Failed());
  EXPECT_EQ(outcome.primary_failure()->kind, FailureKind::kSpecViolation);
  EXPECT_EQ(outcome.primary_failure()->message, "sum mismatch: got 5");
  ASSERT_EQ(outcome.outputs.size(), 1u);
  EXPECT_EQ(outcome.outputs[0].value, 5u);
}

TEST(SumAppTest, FixPredicatePreventsFailure) {
  BugScenario scenario = MakeSumScenario();
  SumOptions options;
  options.world_seed = scenario.production_world_seed;  // the (2,2) world
  options.bug_enabled = false;                          // predicate P enforced
  SumProgram program(options);
  Outcome outcome = RunProgram(program, 1);
  EXPECT_FALSE(outcome.Failed());
  ASSERT_EQ(outcome.outputs.size(), 1u);
  EXPECT_EQ(outcome.outputs[0].value, 4u);  // 2 + 2
}

// ---------------------------------------------------------------- overflow

TEST(OverflowAppTest, CrashesOnOversizedRequestWhenBuggy) {
  BugScenario scenario = MakeOverflowScenario();
  auto program = scenario.make_program(scenario.production_world_seed);
  Outcome outcome = RunProgram(*program, 1);
  ASSERT_TRUE(outcome.Failed());
  EXPECT_EQ(outcome.primary_failure()->kind, FailureKind::kCrash);
}

class OverflowFixPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverflowFixPropertyTest, LengthCheckPreventsCrashForAllWorlds) {
  OverflowOptions options;
  options.world_seed = GetParam();
  options.bug_enabled = false;  // the fix: reject oversized requests
  OverflowProgram program(options);
  Outcome outcome = RunProgram(program, 1);
  EXPECT_FALSE(outcome.Failed()) << "world seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Worlds, OverflowFixPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST(OverflowAppTest, OutputsEchoProcessedLengths) {
  OverflowOptions options;
  options.world_seed = 3;
  options.bug_enabled = false;
  OverflowProgram program(options);
  Outcome outcome = RunProgram(program, 1);
  EXPECT_EQ(outcome.outputs.size(), options.num_requests);
}

// ----------------------------------------------------------------- msgdrop

TEST(MsgDropAppTest, FetchAddFixDeliversEverythingUnderAnySchedule) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    MsgDropOptions options;
    options.world_seed = 5;
    options.bug_enabled = false;  // atomic tail update
    MsgDropProgram program(options);
    Outcome outcome = RunProgram(program, seed, /*preempt=*/0.2);
    EXPECT_FALSE(outcome.Failed()) << "seed " << seed;
    EXPECT_EQ(outcome.outputs.size(), options.num_messages) << "seed " << seed;
  }
}

TEST(MsgDropAppTest, RacySchedulesLoseMessages) {
  // Under aggressive preemption the lost-update race drops messages for at
  // least one schedule.
  bool lost = false;
  for (uint64_t seed = 1; seed <= 20 && !lost; ++seed) {
    MsgDropOptions options;
    options.world_seed = 5;
    options.bug_enabled = true;
    MsgDropProgram program(options);
    Outcome outcome = RunProgram(program, seed, /*preempt=*/0.2);
    lost = outcome.outputs.size() < options.num_messages;
  }
  EXPECT_TRUE(lost);
}

TEST(MsgDropAppTest, CongestionFaultDropsWithoutRace) {
  MsgDropOptions options;
  options.world_seed = 5;
  options.bug_enabled = true;
  MsgDropProgram program(options);
  Environment::Options env_options;
  env_options.seed = 2;
  env_options.scheduling.preempt_probability = 0.0;  // no race possible
  Environment env(env_options);
  env.SetFaultPlan(
      FaultPlan::CongestionWindow(0, 500 * kMillisecond, /*drop_prob=*/0.15));
  CollectingSink sink;
  env.AddTraceSink(&sink);
  Outcome outcome = env.Run(program);
  ASSERT_TRUE(outcome.Failed());
  bool congestion_drop = false;
  for (const Event& event : sink.events()) {
    congestion_drop |= event.type == EventType::kNetDrop && event.aux == 2;
  }
  EXPECT_TRUE(congestion_drop);
}

// ---------------------------------------------------------------- scenarios

TEST(ScenarioTest, SumScenarioWorldSeedYieldsTwoTwo) {
  BugScenario scenario = MakeSumScenario();
  Rng rng(scenario.production_world_seed);
  EXPECT_EQ(rng.NextInRange(0, 10), 2);
  EXPECT_EQ(rng.NextInRange(0, 10), 2);
}

TEST(ScenarioTest, CatalogsNameTheActualCause) {
  EXPECT_EQ(MakeSumScenario().catalog.actual_id(), "corrupt-table-entry");
  EXPECT_EQ(MakeMsgDropScenario().catalog.actual_id(), "buffer-race");
  EXPECT_EQ(MakeOverflowScenario().catalog.actual_id(), "unchecked-copy");
  EXPECT_EQ(MakeHypertableScenario().catalog.actual_id(), "migration-race");
  EXPECT_EQ(MakeHypertableScenario().catalog.size(), 3u);  // the n in DF=1/n
  EXPECT_EQ(MakeMsgDropScenario().catalog.size(), 2u);
}

TEST(ScenarioTest, SumSymbolicModelSolvesOutputs) {
  BugScenario scenario = MakeSumScenario();
  ASSERT_TRUE(scenario.symbolic_model != nullptr);
  auto problem = scenario.symbolic_model({5});
  ASSERT_TRUE(problem != nullptr);
  auto solution = problem->FirstSolution();
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0] + (*solution)[1], 5);
  EXPECT_NE(std::make_pair((*solution)[0], (*solution)[1]),
            std::make_pair(int64_t{2}, int64_t{2}))
      << "the first solution must not be the failing production input";
}

}  // namespace
}  // namespace ddr
