// Replayer: per-determinism-model replay orchestration.
//
// Given a RecordedExecution and a model, produces the replayed execution —
// either by direct log-driven replay (perfect / value / RCSE) or by
// inference (output / failure determinism). The replayer never sees the
// production run's seeds; relaxed data is re-synthesized from replay-time
// seeds, exactly as a real inference engine fills in unrecorded values.

#ifndef SRC_REPLAY_REPLAYER_H_
#define SRC_REPLAY_REPLAYER_H_

#include <string>
#include <vector>

#include "src/record/recorded_execution.h"
#include "src/replay/inference.h"
#include "src/replay/log_replay_director.h"
#include "src/trace/checkpoint.h"
#include "src/trace/trace_reader.h"

namespace ddr {

enum class ReplayMode {
  kPerfect,
  kValue,
  kRcse,
  kOutputOnly,
  kOutputHeavy,
  kFailure,
};

std::string_view ReplayModeName(ReplayMode mode);

struct ReplayResult {
  std::string model;
  Outcome outcome;
  std::vector<Event> trace;
  // Whether the replayed execution exhibits the recorded failure.
  bool failure_reproduced = false;
  // Schedule divergences during log-driven replay (0 = faithful).
  uint64_t divergences = 0;
  // Filled for inference-based modes.
  InferenceStats inference;
  bool inference_found = false;
  size_t fault_plan_index = 0;
  std::vector<int64_t> input_assignment;
  // Total tool time to produce the replayed execution (drives DE).
  double wall_seconds = 0.0;

  // Partial (checkpointed) replay bookkeeping. When `partial` is set, the
  // prefix [0, started_from_event) was fast-forwarded with observation
  // disabled and `trace` holds only the suffix events.
  bool partial = false;
  uint64_t started_from_event = 0;
  // The fast-forwarded prefix matched the checkpoint's recorded state
  // (prefix fingerprint + director cursors). Only checkable for
  // full-stream logs; false also when the log is a subset.
  bool fast_forward_verified = false;
};

// Environment/world seeds used for replay runs; deliberately unrelated to
// any production seed (the replayer does not know it).
inline constexpr uint64_t kReplayEnvSeed = 0xD1CEBA5Eu;
inline constexpr uint64_t kReplayWorldSeed = 0x5EED0F0Fu;

class Replayer {
 public:
  explicit Replayer(ReplayTarget target, InferenceBudget budget = InferenceBudget())
      : target_(std::move(target)), budget_(budget) {}

  ReplayResult Replay(const RecordedExecution& recording, ReplayMode mode);

  // Checkpointed partial replay (direct modes only): fast-forwards to the
  // latest checkpoint at or before `target_event`, observing (collecting,
  // fingerprinting) only the suffix from there on. In this re-execution
  // substrate a checkpoint does not skip prefix execution — it skips prefix
  // *observation* and verifies the fast-forward against the checkpoint's
  // recorded cursor state, so the debugging session can trust it landed on
  // the recorded path. Falls back to full replay when `index` has no usable
  // checkpoint.
  ReplayResult PartialReplay(const RecordedExecution& recording,
                             const CheckpointIndex& index, uint64_t target_event,
                             ReplayMode mode = ReplayMode::kPerfect);

  // Same, but reading the recording through `trace` — the I/O-layer entry
  // point for debugging sessions that probe many checkpoint windows of
  // one trace (or corpus entry). Every chunk read goes through the
  // reader's backend and shared decoded-chunk cache, so the second and
  // later windows re-decode nothing; `trace.bytes_read()` before/after
  // exposes exactly what each window cost.
  Result<ReplayResult> PartialReplayFromTrace(
      const TraceReader& trace, uint64_t target_event,
      ReplayMode mode = ReplayMode::kPerfect);

 private:
  ReplayResult DirectReplay(const RecordedExecution& recording,
                            const LogReplayConfig& config, std::string_view name,
                            const CheckpointIndex* index = nullptr,
                            const ReplayCheckpoint* checkpoint = nullptr);
  ReplayResult InferredReplay(const RecordedExecution& recording, ReplayMode mode);

  ReplayTarget target_;
  InferenceBudget budget_;
};

}  // namespace ddr

#endif  // SRC_REPLAY_REPLAYER_H_
