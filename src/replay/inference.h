// InferenceEngine: post-factum synthesis of executions for relaxed
// determinism models.
//
// Failure determinism (ESD) and output determinism (ODR) do not record
// enough to drive replay directly; they must *infer* the missing
// nondeterminism. This engine performs bounded deterministic search over
//   - environment schedules (seeds),
//   - world seeds (unrecorded external input content),
//   - candidate environment fault plans (crashes, OOM, congestion),
//   - and, for output determinism, input assignments from declared domains,
//     optionally pruned by a constraint-solver model (src/replay/solver.h),
// until a candidate execution satisfies the goal (same failure fingerprint,
// or same output fingerprint).
//
// The search is deterministic, so which execution is found "first" is
// stable — that is exactly how the engine exhibits §2's pitfalls: the first
// execution matching a failure may reach it through a different root cause.

#ifndef SRC_REPLAY_INFERENCE_H_
#define SRC_REPLAY_INFERENCE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/record/event_log.h"
#include "src/record/snapshot.h"
#include "src/replay/solver.h"
#include "src/sim/environment.h"
#include "src/sim/fault.h"
#include "src/sim/program.h"

namespace ddr {

// How replay/inference constructs candidate executions of the program under
// debugging. `make_program(world_seed)` builds a fresh program whose
// external input generators are seeded with `world_seed`; the production
// run's world seed is intentionally unavailable.
struct ReplayTarget {
  std::function<std::unique_ptr<SimProgram>(uint64_t world_seed)> make_program;
  Environment::Options env_options;

  // Fault plans inference may hypothesize (index 0 is implicitly "none").
  std::vector<FaultPlan> candidate_fault_plans;

  // Input sources whose values output-deterministic inference may choose
  // freely, with their declared domains, in program read order.
  struct InputDomain {
    std::string source_name;
    int64_t lo = 0;
    int64_t hi = 0;
  };
  std::vector<InputDomain> input_domains;

  // Optional symbolic model: builds a CSP over the input domains such that
  // any solution reproduces the given recorded output values. Nullptr
  // disables solver pruning (plain enumeration is used instead).
  std::function<std::unique_ptr<CspProblem>(const std::vector<uint64_t>& recorded_outputs)>
      symbolic_model;

  // Seed-search widths.
  uint64_t world_seeds_to_try = 4;
  uint64_t sched_seeds_to_try = 12;
};

struct InferenceBudget {
  uint64_t max_attempts = 4000;
  double max_wall_seconds = 20.0;
};

struct InferenceStats {
  uint64_t attempts = 0;
  double wall_seconds = 0.0;
  uint64_t total_events_simulated = 0;
  uint64_t solver_nodes = 0;
};

struct SynthesisResult {
  bool found = false;
  Outcome outcome;                    // outcome of the matching execution
  std::vector<Event> trace;           // its full event trace (for analysis)
  uint64_t world_seed = 0;
  uint64_t sched_seed = 0;
  size_t fault_plan_index = 0;        // 0 = no injected fault
  std::vector<int64_t> input_assignment;  // output-det inference only
  InferenceStats stats;
};

class InferenceEngine {
 public:
  InferenceEngine(ReplayTarget target, InferenceBudget budget)
      : target_(std::move(target)), budget_(budget) {}

  // ESD-style: find an execution exhibiting the snapshot's failure.
  SynthesisResult SynthesizeMatchingFailure(const FailureSnapshot& snapshot);

  // ODR-style: find an execution whose outputs match the recorded output
  // fingerprint. If `log` is provided and contains inputs (ODR's heavier
  // scheme), those inputs are replayed and only schedules are searched.
  SynthesisResult SynthesizeMatchingOutputs(const FailureSnapshot& snapshot,
                                            const EventLog* log);

 private:
  // Runs one candidate and evaluates `accept`; updates stats.
  bool RunCandidate(uint64_t world_seed, uint64_t sched_seed,
                    size_t fault_plan_index,
                    const std::vector<int64_t>* input_assignment,
                    const EventLog* input_log,
                    const std::function<bool(const Outcome&)>& accept,
                    SynthesisResult* result);
  bool BudgetExhausted(const InferenceStats& stats) const;

  ReplayTarget target_;
  InferenceBudget budget_;
};

}  // namespace ddr

#endif  // SRC_REPLAY_INFERENCE_H_
