#include "src/replay/inference.h"

#include <chrono>
#include <utility>

#include "src/replay/log_replay_director.h"
#include "src/util/logging.h"

namespace ddr {
namespace {

// Overrides input reads with a fixed assignment, one value per declared
// input domain (in program read order); scheduling falls back to the default
// seeded policy. This is how output-deterministic inference "tries" inputs.
class AssignmentDirector : public DefaultDirector {
 public:
  AssignmentDirector(SchedulingOptions scheduling,
                     const std::vector<ReplayTarget::InputDomain>& domains,
                     const std::vector<int64_t>& assignment)
      : DefaultDirector(scheduling), domains_(domains), assignment_(assignment) {
    consumed_.resize(domains.size(), false);
  }

  bool OverrideInput(Environment& env, ObjectId source, uint64_t* value) override {
    const std::string& name = env.object_info(source).name;
    for (size_t i = 0; i < domains_.size(); ++i) {
      if (!consumed_[i] && domains_[i].source_name == name) {
        consumed_[i] = true;
        *value = static_cast<uint64_t>(assignment_[i]);
        return true;
      }
    }
    return false;
  }

 private:
  const std::vector<ReplayTarget::InputDomain>& domains_;
  const std::vector<int64_t>& assignment_;
  std::vector<bool> consumed_;
};

// Odometer over input domains, lexicographic. Returns false when exhausted.
bool NextAssignment(const std::vector<ReplayTarget::InputDomain>& domains,
                    std::vector<int64_t>* assignment) {
  if (assignment->empty()) {
    assignment->reserve(domains.size());
    for (const auto& domain : domains) {
      assignment->push_back(domain.lo);
    }
    return !domains.empty();
  }
  for (size_t i = domains.size(); i-- > 0;) {
    if ((*assignment)[i] < domains[i].hi) {
      ++(*assignment)[i];
      for (size_t j = i + 1; j < domains.size(); ++j) {
        (*assignment)[j] = domains[j].lo;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

bool InferenceEngine::BudgetExhausted(const InferenceStats& stats) const {
  return stats.attempts >= budget_.max_attempts ||
         stats.wall_seconds >= budget_.max_wall_seconds;
}

bool InferenceEngine::RunCandidate(uint64_t world_seed, uint64_t sched_seed,
                                   size_t fault_plan_index,
                                   const std::vector<int64_t>* input_assignment,
                                   const EventLog* input_log,
                                   const std::function<bool(const Outcome&)>& accept,
                                   SynthesisResult* result) {
  const auto start = std::chrono::steady_clock::now();

  Environment::Options options = target_.env_options;
  options.seed = sched_seed;
  Environment env(options);
  if (fault_plan_index > 0) {
    env.SetFaultPlan(target_.candidate_fault_plans[fault_plan_index - 1]);
  }

  CollectingSink sink;
  env.AddTraceSink(&sink);

  std::unique_ptr<ExecutionDirector> director;
  if (input_assignment != nullptr) {
    director = std::make_unique<AssignmentDirector>(options.scheduling,
                                                    target_.input_domains,
                                                    *input_assignment);
  } else if (input_log != nullptr) {
    LogReplayConfig config;
    config.follow_schedule = false;  // ODR does not record race order
    config.override_rng = false;
    config.override_inputs = true;
    config.override_shared_reads = false;
    config.fallback = options.scheduling;
    director = std::make_unique<LogReplayDirector>(*input_log, config);
  }
  if (director != nullptr) {
    env.SetDirector(director.get());
  }

  std::unique_ptr<SimProgram> program = target_.make_program(world_seed);
  Outcome outcome = env.Run(*program);

  result->stats.attempts += 1;
  result->stats.total_events_simulated += outcome.stats.events;
  result->stats.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (accept(outcome)) {
    result->found = true;
    result->outcome = std::move(outcome);
    result->trace = sink.events();
    result->world_seed = world_seed;
    result->sched_seed = sched_seed;
    result->fault_plan_index = fault_plan_index;
    if (input_assignment != nullptr) {
      result->input_assignment = *input_assignment;
    }
    return true;
  }
  return false;
}

SynthesisResult InferenceEngine::SynthesizeMatchingFailure(
    const FailureSnapshot& snapshot) {
  SynthesisResult result;
  const auto accept = [&snapshot](const Outcome& outcome) {
    return snapshot.MatchesFailureOf(outcome);
  };

  // Explanation candidates in increasing synthesis cost: hypothesized
  // environment faults reproduce a failure deterministically, while pure
  // schedule search must hit a rare interleaving — so, like a real
  // inference engine minimizing effort, faults are tried first. This
  // ordering is precisely what makes failure determinism liable to return
  // a *different* root cause than the production run (§2, §4).
  std::vector<size_t> plan_order;
  for (size_t i = 1; i <= target_.candidate_fault_plans.size(); ++i) {
    plan_order.push_back(i);
  }
  plan_order.push_back(0);

  for (const size_t plan_index : plan_order) {
    for (uint64_t world = 1; world <= target_.world_seeds_to_try; ++world) {
      for (uint64_t sched = 1; sched <= target_.sched_seeds_to_try; ++sched) {
        if (BudgetExhausted(result.stats)) {
          return result;
        }
        if (RunCandidate(world, sched, plan_index, nullptr, nullptr, accept,
                         &result)) {
          return result;
        }
      }
    }
  }

  // Last resort: ESD-style input synthesis — enumerate declared input
  // domains looking for inputs that drive the program into the failure.
  std::vector<int64_t> assignment;
  while (NextAssignment(target_.input_domains, &assignment)) {
    if (BudgetExhausted(result.stats)) {
      return result;
    }
    if (RunCandidate(1, 1, 0, &assignment, nullptr, accept, &result)) {
      return result;
    }
  }
  return result;
}

SynthesisResult InferenceEngine::SynthesizeMatchingOutputs(
    const FailureSnapshot& snapshot, const EventLog* log) {
  SynthesisResult result;
  const auto accept = [&snapshot](const Outcome& outcome) {
    return outcome.output_fingerprint == snapshot.output_fingerprint;
  };

  const bool log_has_inputs =
      log != nullptr && log->CountOfType(EventType::kInput) > 0;
  if (log_has_inputs) {
    // ODR's heavier scheme: inputs come from the log; infer the schedule.
    for (uint64_t world = 1; world <= target_.world_seeds_to_try; ++world) {
      for (uint64_t sched = 1; sched <= target_.sched_seeds_to_try; ++sched) {
        if (BudgetExhausted(result.stats)) {
          return result;
        }
        if (RunCandidate(world, sched, 0, nullptr, log, accept, &result)) {
          return result;
        }
      }
    }
    return result;
  }

  if (!target_.input_domains.empty()) {
    // Candidate input assignments: solver-pruned if a symbolic model is
    // available, otherwise plain lexicographic enumeration.
    std::vector<std::vector<int64_t>> candidates;
    if (target_.symbolic_model != nullptr && log != nullptr) {
      std::vector<uint64_t> recorded_outputs;
      for (const Event& event : log->EventsOfType(EventType::kOutput)) {
        recorded_outputs.push_back(event.value);
      }
      std::unique_ptr<CspProblem> problem = target_.symbolic_model(recorded_outputs);
      if (problem != nullptr) {
        candidates = problem->Solutions(budget_.max_attempts);
        result.stats.solver_nodes = problem->nodes_explored();
      }
    }
    if (!candidates.empty()) {
      for (const auto& assignment : candidates) {
        if (BudgetExhausted(result.stats)) {
          return result;
        }
        if (RunCandidate(1, 1, 0, &assignment, nullptr, accept, &result)) {
          return result;
        }
      }
      return result;
    }
    std::vector<int64_t> assignment;
    while (NextAssignment(target_.input_domains, &assignment)) {
      if (BudgetExhausted(result.stats)) {
        return result;
      }
      if (RunCandidate(1, 1, 0, &assignment, nullptr, accept, &result)) {
        return result;
      }
    }
    return result;
  }

  // No declared domains: fall back to seed search.
  for (uint64_t world = 1; world <= target_.world_seeds_to_try; ++world) {
    for (uint64_t sched = 1; sched <= target_.sched_seeds_to_try; ++sched) {
      if (BudgetExhausted(result.stats)) {
        return result;
      }
      if (RunCandidate(world, sched, 0, nullptr, nullptr, accept, &result)) {
        return result;
      }
    }
  }
  return result;
}

}  // namespace ddr
