#include "src/replay/replayer.h"

#include <chrono>

#include "src/util/logging.h"

namespace ddr {

std::string_view ReplayModeName(ReplayMode mode) {
  switch (mode) {
    case ReplayMode::kPerfect:
      return "perfect";
    case ReplayMode::kValue:
      return "value";
    case ReplayMode::kRcse:
      return "rcse";
    case ReplayMode::kOutputOnly:
      return "output";
    case ReplayMode::kOutputHeavy:
      return "output-heavy";
    case ReplayMode::kFailure:
      return "failure";
  }
  return "unknown";
}

ReplayResult Replayer::Replay(const RecordedExecution& recording, ReplayMode mode) {
  switch (mode) {
    case ReplayMode::kPerfect: {
      LogReplayConfig config;  // everything on
      return DirectReplay(recording, config, ReplayModeName(mode));
    }
    case ReplayMode::kValue: {
      LogReplayConfig config;
      return DirectReplay(recording, config, ReplayModeName(mode));
    }
    case ReplayMode::kRcse: {
      LogReplayConfig config;
      // Schedule + RNG + recorded (control-plane) inputs are enforced;
      // shared reads re-execute — the relaxed data plane is re-synthesized.
      config.override_shared_reads = false;
      return DirectReplay(recording, config, ReplayModeName(mode));
    }
    case ReplayMode::kOutputOnly:
    case ReplayMode::kOutputHeavy:
    case ReplayMode::kFailure:
      return InferredReplay(recording, mode);
  }
  LOG(FATAL) << "unreachable";
  return ReplayResult{};
}

ReplayResult Replayer::DirectReplay(const RecordedExecution& recording,
                                    const LogReplayConfig& config,
                                    std::string_view name) {
  const auto start = std::chrono::steady_clock::now();
  ReplayResult result;
  result.model = std::string(name);

  Environment::Options options = target_.env_options;
  options.seed = kReplayEnvSeed;
  Environment env(options);

  LogReplayDirector director(recording.log, config);
  env.SetDirector(&director);

  CollectingSink sink;
  env.AddTraceSink(&sink);

  std::unique_ptr<SimProgram> program = target_.make_program(kReplayWorldSeed);
  result.outcome = env.Run(*program);
  result.trace = sink.events();
  result.divergences = director.divergences();
  result.failure_reproduced = recording.snapshot.MatchesFailureOf(result.outcome);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

ReplayResult Replayer::InferredReplay(const RecordedExecution& recording,
                                      ReplayMode mode) {
  const auto start = std::chrono::steady_clock::now();
  ReplayResult result;
  result.model = std::string(ReplayModeName(mode));

  InferenceEngine engine(target_, budget_);
  SynthesisResult synthesis;
  switch (mode) {
    case ReplayMode::kFailure:
      synthesis = engine.SynthesizeMatchingFailure(recording.snapshot);
      break;
    case ReplayMode::kOutputOnly:
      // The output-only log carries no inputs, but its recorded output
      // values feed the symbolic model (solver-guided input inference).
      synthesis = engine.SynthesizeMatchingOutputs(recording.snapshot, &recording.log);
      break;
    case ReplayMode::kOutputHeavy:
      synthesis = engine.SynthesizeMatchingOutputs(recording.snapshot, &recording.log);
      break;
    default:
      LOG(FATAL) << "InferredReplay called with direct mode";
  }

  result.inference = synthesis.stats;
  result.inference_found = synthesis.found;
  if (synthesis.found) {
    result.outcome = std::move(synthesis.outcome);
    result.trace = std::move(synthesis.trace);
    result.fault_plan_index = synthesis.fault_plan_index;
    result.input_assignment = std::move(synthesis.input_assignment);
    result.failure_reproduced =
        recording.snapshot.MatchesFailureOf(result.outcome);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace ddr
