#include "src/replay/replayer.h"

#include <chrono>

#include "src/util/logging.h"

namespace ddr {

namespace {

// Log-replay configuration for a direct replay mode.
LogReplayConfig ConfigForMode(ReplayMode mode) {
  LogReplayConfig config;  // everything on
  if (mode == ReplayMode::kRcse) {
    // Schedule + RNG + recorded (control-plane) inputs are enforced;
    // shared reads re-execute — the relaxed data plane is re-synthesized.
    config.override_shared_reads = false;
  }
  return config;
}

// Observation gate for checkpointed partial replay: suppresses collection
// of the fast-forwarded prefix, fingerprints it for verification against
// the checkpoint, and samples the director's cursors at the boundary.
class CheckpointGateSink : public TraceSink {
 public:
  CheckpointGateSink(const ReplayCheckpoint& checkpoint,
                     const LogReplayDirector& director)
      : checkpoint_(checkpoint), director_(director) {}

  void OnEvent(const Event& event) override {
    if (seen_ < checkpoint_.resume_seq) {
      prefix_fp_.Mix(event.SemanticHash());
    } else {
      suffix_.push_back(event);
    }
    ++seen_;
    if (seen_ == checkpoint_.resume_seq) {
      // Boundary: the prefix is fully replayed, the first suffix event has
      // not consumed any overrides yet.
      cursors_ok_ = director_.schedule_cursor() == checkpoint_.schedule_cursor &&
                    director_.rng_cursor() == checkpoint_.rng_cursor &&
                    director_.input_cursor() == checkpoint_.input_cursor &&
                    director_.read_cursor() == checkpoint_.read_cursor;
    }
  }

  std::vector<Event> TakeSuffix() { return std::move(suffix_); }
  bool Verified() const {
    return prefix_fp_.value() == checkpoint_.prefix_fingerprint && cursors_ok_;
  }

 private:
  const ReplayCheckpoint checkpoint_;
  const LogReplayDirector& director_;
  uint64_t seen_ = 0;
  Fingerprint prefix_fp_;
  std::vector<Event> suffix_;
  bool cursors_ok_ = false;
};

}  // namespace

std::string_view ReplayModeName(ReplayMode mode) {
  switch (mode) {
    case ReplayMode::kPerfect:
      return "perfect";
    case ReplayMode::kValue:
      return "value";
    case ReplayMode::kRcse:
      return "rcse";
    case ReplayMode::kOutputOnly:
      return "output";
    case ReplayMode::kOutputHeavy:
      return "output-heavy";
    case ReplayMode::kFailure:
      return "failure";
  }
  return "unknown";
}

ReplayResult Replayer::Replay(const RecordedExecution& recording, ReplayMode mode) {
  switch (mode) {
    case ReplayMode::kPerfect:
    case ReplayMode::kValue:
    case ReplayMode::kRcse:
      return DirectReplay(recording, ConfigForMode(mode), ReplayModeName(mode));
    case ReplayMode::kOutputOnly:
    case ReplayMode::kOutputHeavy:
    case ReplayMode::kFailure:
      return InferredReplay(recording, mode);
  }
  LOG(FATAL) << "unreachable";
  return ReplayResult{};
}

ReplayResult Replayer::PartialReplay(const RecordedExecution& recording,
                                     const CheckpointIndex& index,
                                     uint64_t target_event, ReplayMode mode) {
  CHECK(mode == ReplayMode::kPerfect || mode == ReplayMode::kValue ||
        mode == ReplayMode::kRcse)
      << "partial replay requires a direct (log-driven) mode";
  const ReplayCheckpoint* checkpoint = index.NearestBefore(target_event);
  if (checkpoint == nullptr || checkpoint->event_index == 0) {
    return DirectReplay(recording, ConfigForMode(mode), ReplayModeName(mode));
  }
  return DirectReplay(recording, ConfigForMode(mode), ReplayModeName(mode),
                      &index, checkpoint);
}

Result<ReplayResult> Replayer::PartialReplayFromTrace(const TraceReader& trace,
                                                      uint64_t target_event,
                                                      ReplayMode mode) {
  ASSIGN_OR_RETURN(RecordedExecution recording, trace.ReadRecordedExecution());
  return PartialReplay(recording, trace.checkpoints(), target_event, mode);
}

ReplayResult Replayer::DirectReplay(const RecordedExecution& recording,
                                    const LogReplayConfig& config,
                                    std::string_view name,
                                    const CheckpointIndex* index,
                                    const ReplayCheckpoint* checkpoint) {
  const auto start = std::chrono::steady_clock::now();
  ReplayResult result;
  result.model = std::string(name);

  Environment::Options options = target_.env_options;
  options.seed = kReplayEnvSeed;
  Environment env(options);

  LogReplayDirector director(recording.log, config);
  env.SetDirector(&director);

  // Full replay observes everything; partial replay gates observation
  // behind the checkpoint's resume point.
  CollectingSink sink;
  std::unique_ptr<CheckpointGateSink> gate;
  if (checkpoint != nullptr) {
    gate = std::make_unique<CheckpointGateSink>(*checkpoint, director);
    env.AddTraceSink(gate.get());
  } else {
    env.AddTraceSink(&sink);
  }

  std::unique_ptr<SimProgram> program = target_.make_program(kReplayWorldSeed);
  result.outcome = env.Run(*program);
  if (gate != nullptr) {
    result.trace = gate->TakeSuffix();
    result.partial = true;
    result.started_from_event = checkpoint->event_index;
    result.fast_forward_verified = index->full_stream && gate->Verified();
  } else {
    result.trace = sink.events();
  }
  result.divergences = director.divergences();
  result.failure_reproduced = recording.snapshot.MatchesFailureOf(result.outcome);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

ReplayResult Replayer::InferredReplay(const RecordedExecution& recording,
                                      ReplayMode mode) {
  const auto start = std::chrono::steady_clock::now();
  ReplayResult result;
  result.model = std::string(ReplayModeName(mode));

  InferenceEngine engine(target_, budget_);
  SynthesisResult synthesis;
  switch (mode) {
    case ReplayMode::kFailure:
      synthesis = engine.SynthesizeMatchingFailure(recording.snapshot);
      break;
    case ReplayMode::kOutputOnly:
      // The output-only log carries no inputs, but its recorded output
      // values feed the symbolic model (solver-guided input inference).
      synthesis = engine.SynthesizeMatchingOutputs(recording.snapshot, &recording.log);
      break;
    case ReplayMode::kOutputHeavy:
      synthesis = engine.SynthesizeMatchingOutputs(recording.snapshot, &recording.log);
      break;
    default:
      LOG(FATAL) << "InferredReplay called with direct mode";
  }

  result.inference = synthesis.stats;
  result.inference_found = synthesis.found;
  if (synthesis.found) {
    result.outcome = std::move(synthesis.outcome);
    result.trace = std::move(synthesis.trace);
    result.fault_plan_index = synthesis.fault_plan_index;
    result.input_assignment = std::move(synthesis.input_assignment);
    result.failure_reproduced =
        recording.snapshot.MatchesFailureOf(result.outcome);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace ddr
