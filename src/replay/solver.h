// A small finite-domain integer constraint solver.
//
// Stands in for the symbolic-execution back ends that inference-based replay
// systems (ODR, ESD) use to compute unrecorded values: output-deterministic
// replay poses "find inputs such that the program produces the recorded
// outputs" as a constraint problem over declared input domains.
//
// Supported: interval domains, linear equality/inequality constraints,
// all-different, and table (function) constraints. Search is bounds-
// propagating backtracking with deterministic lexicographic value order —
// important for the paper's §2 example: solving x + y == 5 over [0,10]^2
// yields (0,5) first, a *non-failing* execution for the sum bug.

#ifndef SRC_REPLAY_SOLVER_H_
#define SRC_REPLAY_SOLVER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace ddr {

class CspProblem {
 public:
  using VarId = size_t;

  // Adds a variable with inclusive interval domain [lo, hi].
  VarId AddVariable(const std::string& name, int64_t lo, int64_t hi);

  // sum(coeff_i * var_i) == rhs
  void AddLinearEquals(std::vector<std::pair<VarId, int64_t>> terms, int64_t rhs);
  // sum(coeff_i * var_i) <= rhs
  void AddLinearLessEquals(std::vector<std::pair<VarId, int64_t>> terms, int64_t rhs);
  // var != value
  void AddNotEquals(VarId var, int64_t value);
  // All listed variables take pairwise distinct values.
  void AddAllDifferent(std::vector<VarId> vars);
  // fn(assignment) must be true once all listed vars are bound (checked at
  // leaves; no propagation).
  void AddPredicate(std::vector<VarId> vars,
                    std::function<bool(const std::vector<int64_t>&)> fn);

  size_t num_variables() const { return lo_.size(); }

  // First solution in lexicographic (variable-order, ascending-value) order,
  // or nullopt if unsatisfiable.
  std::optional<std::vector<int64_t>> FirstSolution();

  // Up to `limit` solutions in lexicographic order.
  std::vector<std::vector<int64_t>> Solutions(size_t limit);

  // Search-tree nodes visited by the last solve (effort metric).
  uint64_t nodes_explored() const { return nodes_; }

 private:
  struct Linear {
    std::vector<std::pair<VarId, int64_t>> terms;
    int64_t rhs = 0;
    bool is_equality = true;  // false: <=
  };
  struct Predicate {
    std::vector<VarId> vars;
    std::function<bool(const std::vector<int64_t>&)> fn;
  };

  // Tightens [lo,hi] bounds from linear constraints; false on wipe-out.
  bool Propagate(std::vector<int64_t>* lo, std::vector<int64_t>* hi) const;
  bool Search(std::vector<int64_t>* lo, std::vector<int64_t>* hi,
              const std::function<bool(const std::vector<int64_t>&)>& emit);
  bool CheckBound(const std::vector<int64_t>& assignment) const;

  std::vector<std::string> names_;
  std::vector<int64_t> lo_;
  std::vector<int64_t> hi_;
  std::vector<Linear> linears_;
  std::vector<std::pair<VarId, int64_t>> not_equals_;
  std::vector<std::vector<VarId>> all_different_;
  std::vector<Predicate> predicates_;
  uint64_t nodes_ = 0;
  bool stop_ = false;
};

}  // namespace ddr

#endif  // SRC_REPLAY_SOLVER_H_
