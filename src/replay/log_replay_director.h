// LogReplayDirector: drives an Environment from a recorded EventLog.
//
// Replays whatever the log contains and leaves the rest to re-execution:
//   - thread schedule: context switches are re-forced at the recorded
//     decision points (preemptions) and recorded picks are returned at every
//     scheduler decision;
//   - environment RNG draws, input values, shared-read values: overridden
//     from per-object FIFOs built from the log — an object with no recorded
//     values falls through to live generation (this is how partial RCSE logs
//     replay: recorded control-plane data is enforced, relaxed data-plane
//     values are re-synthesized by execution).
//
// Divergences (a recorded pick not runnable, or log exhaustion) are counted,
// not fatal: the director falls back to its fallback scheduling policy.

#ifndef SRC_REPLAY_LOG_REPLAY_DIRECTOR_H_
#define SRC_REPLAY_LOG_REPLAY_DIRECTOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/record/event_log.h"
#include "src/sim/director.h"

namespace ddr {

struct LogReplayConfig {
  bool follow_schedule = true;
  bool override_rng = true;
  bool override_inputs = true;
  bool override_shared_reads = true;
  // Used when not following the schedule (or after divergence).
  SchedulingOptions fallback;
};

class LogReplayDirector : public ExecutionDirector {
 public:
  LogReplayDirector(const EventLog& log, LogReplayConfig config);

  bool ShouldPreempt(Environment& env, FiberId current, uint64_t decision_seq) override;
  FiberId PickNextFiber(Environment& env, const std::vector<FiberId>& runnable,
                        uint64_t switch_seq) override;
  bool OverrideRngDraw(Environment& env, RngPurpose purpose, uint64_t* value) override;
  bool OverrideInput(Environment& env, ObjectId source, uint64_t* value) override;
  bool OverrideSharedRead(Environment& env, ObjectId cell, uint64_t* value) override;

  uint64_t divergences() const { return divergences_; }
  uint64_t schedule_cursor() const { return cursor_; }
  size_t schedule_length() const { return switches_.size(); }

  // Playback-cursor state: how many recorded values each stream has
  // consumed so far. Together with schedule_cursor() this is what a
  // ReplayCheckpoint captures (src/trace/checkpoint.h); partial replay
  // compares these against the checkpoint at the fast-forward boundary.
  uint64_t rng_cursor() const { return rng_consumed_; }
  uint64_t input_cursor() const { return inputs_consumed_; }
  uint64_t read_cursor() const { return reads_consumed_; }

 private:
  struct SwitchRec {
    uint64_t decision = 0;
    SwitchCause cause = SwitchCause::kNone;
    FiberId prev = kInvalidFiber;
    FiberId next = kInvalidFiber;
  };

  LogReplayConfig config_;
  std::vector<SwitchRec> switches_;
  size_t cursor_ = 0;
  uint64_t divergences_ = 0;
  bool follow_schedule_ = false;

  std::deque<uint64_t> rng_values_;
  std::map<ObjectId, std::deque<uint64_t>> input_values_;
  std::map<ObjectId, std::deque<uint64_t>> read_values_;
  uint64_t rng_consumed_ = 0;
  uint64_t inputs_consumed_ = 0;
  uint64_t reads_consumed_ = 0;

  size_t rr_cursor_ = 0;  // fallback round-robin state
};

}  // namespace ddr

#endif  // SRC_REPLAY_LOG_REPLAY_DIRECTOR_H_
