#include "src/replay/log_replay_director.h"

#include <algorithm>

#include "src/sim/environment.h"
#include "src/util/logging.h"

namespace ddr {

LogReplayDirector::LogReplayDirector(const EventLog& log, LogReplayConfig config)
    : config_(config) {
  for (const Event& event : log.events()) {
    switch (event.type) {
      case EventType::kContextSwitch: {
        SwitchRec rec;
        rec.decision = SwitchAuxDecision(event.aux);
        rec.cause = SwitchAuxCause(event.aux);
        rec.prev = event.obj == kInvalidObject ? kInvalidFiber
                                               : static_cast<FiberId>(event.obj);
        rec.next = static_cast<FiberId>(event.value);
        switches_.push_back(rec);
        break;
      }
      case EventType::kRngDraw:
        rng_values_.push_back(event.value);
        break;
      case EventType::kInput:
        input_values_[event.obj].push_back(event.value);
        break;
      case EventType::kSharedRead:
        read_values_[event.obj].push_back(event.value);
        break;
      default:
        break;
    }
  }
  follow_schedule_ = config_.follow_schedule && !switches_.empty();
}

bool LogReplayDirector::ShouldPreempt(Environment& env, FiberId current,
                                      uint64_t decision_seq) {
  if (!follow_schedule_) {
    if (config_.fallback.preempt_probability <= 0.0) {
      return false;
    }
    return env.scheduler_rng().NextBernoulli(config_.fallback.preempt_probability);
  }
  if (cursor_ >= switches_.size()) {
    return false;
  }
  const SwitchRec& rec = switches_[cursor_];
  // The recorded preemption happened after this decision point incremented
  // the counter, so a record with decision d gates the point d - 1.
  return rec.cause == SwitchCause::kPreempt && rec.decision == decision_seq + 1 &&
         rec.prev == current;
}

FiberId LogReplayDirector::PickNextFiber(Environment& env,
                                         const std::vector<FiberId>& runnable,
                                         uint64_t switch_seq) {
  (void)switch_seq;
  CHECK(!runnable.empty());
  if (follow_schedule_ && cursor_ < switches_.size()) {
    const SwitchRec& rec = switches_[cursor_];
    ++cursor_;
    if (std::find(runnable.begin(), runnable.end(), rec.next) != runnable.end()) {
      return rec.next;
    }
    ++divergences_;
  } else if (follow_schedule_) {
    ++divergences_;  // replay ran past the recorded schedule
  }
  switch (config_.fallback.policy) {
    case SchedulingOptions::Policy::kRandom:
      return runnable[env.scheduler_rng().NextIndex(runnable.size())];
    case SchedulingOptions::Policy::kRoundRobin: {
      const FiberId pick = runnable[rr_cursor_ % runnable.size()];
      ++rr_cursor_;
      return pick;
    }
  }
  return runnable.front();
}

bool LogReplayDirector::OverrideRngDraw(Environment& env, RngPurpose purpose,
                                        uint64_t* value) {
  (void)env;
  (void)purpose;
  if (!config_.override_rng || rng_values_.empty()) {
    return false;
  }
  *value = rng_values_.front();
  rng_values_.pop_front();
  ++rng_consumed_;
  return true;
}

bool LogReplayDirector::OverrideInput(Environment& env, ObjectId source,
                                      uint64_t* value) {
  (void)env;
  if (!config_.override_inputs) {
    return false;
  }
  auto it = input_values_.find(source);
  if (it == input_values_.end() || it->second.empty()) {
    return false;
  }
  *value = it->second.front();
  it->second.pop_front();
  ++inputs_consumed_;
  return true;
}

bool LogReplayDirector::OverrideSharedRead(Environment& env, ObjectId cell,
                                           uint64_t* value) {
  (void)env;
  if (!config_.override_shared_reads) {
    return false;
  }
  auto it = read_values_.find(cell);
  if (it == read_values_.end() || it->second.empty()) {
    return false;
  }
  *value = it->second.front();
  it->second.pop_front();
  ++reads_consumed_;
  return true;
}

}  // namespace ddr
