#include "src/replay/solver.h"
#include <limits>

#include <algorithm>

#include "src/util/logging.h"

namespace ddr {

CspProblem::VarId CspProblem::AddVariable(const std::string& name, int64_t lo,
                                          int64_t hi) {
  CHECK_LE(lo, hi) << "empty domain for " << name;
  names_.push_back(name);
  lo_.push_back(lo);
  hi_.push_back(hi);
  return names_.size() - 1;
}

void CspProblem::AddLinearEquals(std::vector<std::pair<VarId, int64_t>> terms,
                                 int64_t rhs) {
  linears_.push_back({std::move(terms), rhs, /*is_equality=*/true});
}

void CspProblem::AddLinearLessEquals(std::vector<std::pair<VarId, int64_t>> terms,
                                     int64_t rhs) {
  linears_.push_back({std::move(terms), rhs, /*is_equality=*/false});
}

void CspProblem::AddNotEquals(VarId var, int64_t value) {
  not_equals_.emplace_back(var, value);
}

void CspProblem::AddAllDifferent(std::vector<VarId> vars) {
  all_different_.push_back(std::move(vars));
}

void CspProblem::AddPredicate(std::vector<VarId> vars,
                              std::function<bool(const std::vector<int64_t>&)> fn) {
  predicates_.push_back({std::move(vars), std::move(fn)});
}

bool CspProblem::Propagate(std::vector<int64_t>* lo, std::vector<int64_t>* hi) const {
  bool changed = true;
  int iterations = 0;
  while (changed) {
    changed = false;
    if (++iterations > 200) {
      break;  // safety valve; bounds consistency converges long before this
    }
    for (const Linear& linear : linears_) {
      // For each term, bound it using the extremes of all other terms.
      for (size_t pivot = 0; pivot < linear.terms.size(); ++pivot) {
        const auto [pivot_var, pivot_coeff] = linear.terms[pivot];
        if (pivot_coeff == 0) {
          continue;
        }
        int64_t rest_min = 0;
        int64_t rest_max = 0;
        for (size_t i = 0; i < linear.terms.size(); ++i) {
          if (i == pivot) {
            continue;
          }
          const auto [var, coeff] = linear.terms[i];
          const int64_t a = coeff * (*lo)[var];
          const int64_t b = coeff * (*hi)[var];
          rest_min += std::min(a, b);
          rest_max += std::max(a, b);
        }
        // pivot_coeff * x ∈ [rhs - rest_max, rhs - rest_min] for equality;
        // pivot_coeff * x <= rhs - rest_min for inequality.
        int64_t term_lo;
        int64_t term_hi;
        if (linear.is_equality) {
          term_lo = linear.rhs - rest_max;
          term_hi = linear.rhs - rest_min;
        } else {
          term_lo = std::numeric_limits<int64_t>::min() / 4;
          term_hi = linear.rhs - rest_min;
        }
        int64_t new_lo;
        int64_t new_hi;
        if (pivot_coeff > 0) {
          // x >= ceil(term_lo / c); x <= floor(term_hi / c)
          new_lo = term_lo >= 0 ? (term_lo + pivot_coeff - 1) / pivot_coeff
                                : -((-term_lo) / pivot_coeff);
          new_hi = term_hi >= 0 ? term_hi / pivot_coeff
                                : -((-term_hi + pivot_coeff - 1) / pivot_coeff);
        } else {
          const int64_t c = -pivot_coeff;
          // c*(-x) bounds swap.
          new_lo = term_hi >= 0 ? -(term_hi / c)
                                : ((-term_hi) + c - 1) / c;
          new_hi = term_lo >= 0 ? -((term_lo + c - 1) / c)
                                : (-term_lo) / c;
        }
        if (new_lo > (*lo)[pivot_var]) {
          (*lo)[pivot_var] = new_lo;
          changed = true;
        }
        if (new_hi < (*hi)[pivot_var]) {
          (*hi)[pivot_var] = new_hi;
          changed = true;
        }
        if ((*lo)[pivot_var] > (*hi)[pivot_var]) {
          return false;
        }
      }
    }
    for (const auto& [var, value] : not_equals_) {
      if ((*lo)[var] == (*hi)[var] && (*lo)[var] == value) {
        return false;
      }
      if ((*lo)[var] == value && (*lo)[var] < (*hi)[var]) {
        ++(*lo)[var];
        changed = true;
      }
      if ((*hi)[var] == value && (*hi)[var] > (*lo)[var]) {
        --(*hi)[var];
        changed = true;
      }
    }
  }
  return true;
}

bool CspProblem::CheckBound(const std::vector<int64_t>& assignment) const {
  for (const Linear& linear : linears_) {
    int64_t sum = 0;
    for (const auto& [var, coeff] : linear.terms) {
      sum += coeff * assignment[var];
    }
    if (linear.is_equality ? sum != linear.rhs : sum > linear.rhs) {
      return false;
    }
  }
  for (const auto& [var, value] : not_equals_) {
    if (assignment[var] == value) {
      return false;
    }
  }
  for (const auto& group : all_different_) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        if (assignment[group[i]] == assignment[group[j]]) {
          return false;
        }
      }
    }
  }
  for (const Predicate& predicate : predicates_) {
    std::vector<int64_t> values;
    values.reserve(predicate.vars.size());
    for (VarId var : predicate.vars) {
      values.push_back(assignment[var]);
    }
    if (!predicate.fn(values)) {
      return false;
    }
  }
  return true;
}

bool CspProblem::Search(std::vector<int64_t>* lo, std::vector<int64_t>* hi,
                        const std::function<bool(const std::vector<int64_t>&)>& emit) {
  ++nodes_;
  if (!Propagate(lo, hi)) {
    return false;
  }
  // Find first unbound variable.
  size_t unbound = lo_.size();
  for (size_t i = 0; i < lo_.size(); ++i) {
    if ((*lo)[i] < (*hi)[i]) {
      unbound = i;
      break;
    }
  }
  if (unbound == lo_.size()) {
    std::vector<int64_t> assignment = *lo;
    if (CheckBound(assignment)) {
      if (!emit(assignment)) {
        stop_ = true;
      }
    }
    return stop_;
  }
  for (int64_t value = (*lo)[unbound]; value <= (*hi)[unbound]; ++value) {
    std::vector<int64_t> next_lo = *lo;
    std::vector<int64_t> next_hi = *hi;
    next_lo[unbound] = value;
    next_hi[unbound] = value;
    if (Search(&next_lo, &next_hi, emit)) {
      return true;
    }
  }
  return stop_;
}

std::optional<std::vector<int64_t>> CspProblem::FirstSolution() {
  auto all = Solutions(1);
  if (all.empty()) {
    return std::nullopt;
  }
  return all.front();
}

std::vector<std::vector<int64_t>> CspProblem::Solutions(size_t limit) {
  nodes_ = 0;
  stop_ = false;
  std::vector<std::vector<int64_t>> solutions;
  if (limit == 0 || lo_.empty()) {
    return solutions;
  }
  std::vector<int64_t> lo = lo_;
  std::vector<int64_t> hi = hi_;
  Search(&lo, &hi, [&](const std::vector<int64_t>& assignment) {
    solutions.push_back(assignment);
    return solutions.size() < limit;
  });
  return solutions;
}

}  // namespace ddr
