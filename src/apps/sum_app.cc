#include "src/apps/sum_app.h"

#include "src/apps/annotations.h"
#include "src/util/string_util.h"

namespace ddr {

SumProgram::SumProgram(SumOptions options)
    : options_(options), world_rng_(options.world_seed) {}

void SumProgram::Configure(Environment& env) {
  env.RegisterInputSource(kInputA, [this] {
    return static_cast<uint64_t>(
        world_rng_.NextInRange(options_.input_lo, options_.input_hi));
  });
  env.RegisterInputSource(kInputB, [this] {
    return static_cast<uint64_t>(
        world_rng_.NextInRange(options_.input_lo, options_.input_hi));
  });
  env.SetIoSpec([this](const Outcome& outcome) -> std::optional<FailureInfo> {
    if (outcome.outputs.size() != 1) {
      return std::nullopt;  // crashed earlier; not this spec's business
    }
    const uint64_t got = outcome.outputs[0].value;
    if (got == last_a_ + last_b_) {
      return std::nullopt;
    }
    FailureInfo failure;
    failure.kind = FailureKind::kSpecViolation;
    failure.message = StrPrintf("sum mismatch: got %llu",
                                static_cast<unsigned long long>(got));
    failure.node = 0;
    return failure;
  });
}

uint64_t SumProgram::AddViaTable(Environment& env, uint64_t a, uint64_t b) const {
  // Models the array-indexing bug: the carry table row for (2, 2) mod 4 was
  // corrupted by an off-by-one write elsewhere, so lookups through it add 1.
  uint64_t result = a + b;
  if (options_.bug_enabled && (a & 3) == 2 && (b & 3) == 2) {
    env.Annotate(kTagSumCorruptEntryUsed, (a << 8) | b);
    result += 1;
  }
  return result;
}

void SumProgram::Main(Environment& env) {
  // Input source ids are deterministic: the first two registered objects.
  ObjectId src_a = kInvalidObject;
  ObjectId src_b = kInvalidObject;
  for (ObjectId id = 0; id < env.num_objects(); ++id) {
    const ObjectInfo& info = env.object_info(id);
    if (info.name == kInputA) {
      src_a = id;
    } else if (info.name == kInputB) {
      src_b = id;
    }
  }
  last_a_ = env.ReadInput(src_a);
  last_b_ = env.ReadInput(src_b);
  env.EmitOutput(AddViaTable(env, last_a_, last_b_));
}

}  // namespace ddr
