// The §2 sum bug: a program that outputs the sum of two numbers but, due to
// an array-indexing defect in its lookup-table adder, outputs 5 for inputs
// (2, 2).
//
// Under output determinism, inference only has to reproduce the output "5";
// the lexicographically first solution of x + y == 5 is (0, 5) — a correct,
// non-failing execution — so the failure is not reproduced and debugging
// fidelity is 0. This program exists to demonstrate exactly that.

#ifndef SRC_APPS_SUM_APP_H_
#define SRC_APPS_SUM_APP_H_

#include <cstdint>
#include <string>

#include "src/sim/environment.h"
#include "src/sim/program.h"
#include "src/util/rng.h"

namespace ddr {

struct SumOptions {
  uint64_t world_seed = 1;
  bool bug_enabled = true;
  int64_t input_lo = 0;
  int64_t input_hi = 10;
};

class SumProgram : public SimProgram {
 public:
  explicit SumProgram(SumOptions options);

  std::string name() const override { return "sum"; }
  void Configure(Environment& env) override;
  void Main(Environment& env) override;

  // The defective adder: correct except that the corrupted carry-table entry
  // at index (2, 2) (mod 4) adds an extra 1.
  uint64_t AddViaTable(Environment& env, uint64_t a, uint64_t b) const;

  static constexpr const char* kInputA = "sum.a";
  static constexpr const char* kInputB = "sum.b";

 private:
  SumOptions options_;
  Rng world_rng_;
  uint64_t last_a_ = 0;
  uint64_t last_b_ = 0;
};

}  // namespace ddr

#endif  // SRC_APPS_SUM_APP_H_
