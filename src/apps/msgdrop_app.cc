#include "src/apps/msgdrop_app.h"

#include <memory>

#include "src/apps/annotations.h"
#include "src/sim/channel.h"
#include "src/sim/network.h"
#include "src/sim/shared_var.h"
#include "src/util/string_util.h"

namespace ddr {

MsgDropProgram::MsgDropProgram(MsgDropOptions options)
    : options_(options), world_rng_(options.world_seed) {}

void MsgDropProgram::Configure(Environment& env) {
  env.RegisterInputSource("msgdrop.payload", [this] { return world_rng_.Next(); });
  env.SetIoSpec([this](const Outcome& outcome) -> std::optional<FailureInfo> {
    // Output: one record per message the server managed to deliver.
    const double delivered = static_cast<double>(outcome.outputs.size());
    const double threshold =
        options_.min_delivery_fraction * static_cast<double>(options_.num_messages);
    if (delivered >= threshold) {
      return std::nullopt;
    }
    FailureInfo failure;
    failure.kind = FailureKind::kPerformance;
    failure.message = "message drop rate above SLO";
    failure.node = 0;
    return failure;
  });
}

void MsgDropProgram::Main(Environment& env) {
  const RegionId rx_region = env.RegisterRegion("msgdrop.rx");       // data plane
  const RegionId enqueue_region = env.RegisterRegion("msgdrop.enqueue");  // control
  const RegionId client_region = env.RegisterRegion("msgdrop.client");    // data plane

  const NodeId server_node = env.AddNode("server");
  NetworkOptions net_options;
  net_options.base_latency = 30 * kMicrosecond;
  net_options.jitter_mean = 10 * kMicrosecond;
  Network net(env, net_options);
  const ObjectId client_ep = net.CreateEndpoint(0, "msgdrop.client.ep");
  const ObjectId server_ep = net.CreateEndpoint(server_node, "msgdrop.server.ep");

  // Ring buffer shared by the NIC workers. Slots hold message ids (1-based;
  // 0 = empty). The tail index is the racy cell.
  const uint32_t capacity = options_.num_messages * 2;
  std::vector<uint64_t> slots(capacity, 0);
  SharedVar<uint64_t> tail(env, "msgdrop.tail", 0);
  env.Annotate(kTagMsgdropTailCell, tail.id());

  // Demultiplex: one dispatcher pulls from the endpoint and hands packets to
  // worker fibers over a channel (channel edges keep HB exact).
  Channel<uint64_t> packets(env, "msgdrop.packets");

  std::vector<FiberId> workers;
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    workers.push_back(env.SpawnOnNode(server_node, "worker" + std::to_string(w), [&] {
      for (;;) {
        const uint64_t msg_id = packets.Recv(options_.payload_bytes);
        if (msg_id == 0) {
          return;  // poison pill
        }
        RegionScope scope(env, enqueue_region);
        if (options_.bug_enabled) {
          // BUG: load + store of the tail index is not atomic; two workers
          // can claim the same slot and one message is overwritten.
          const uint64_t t = tail.Load();
          slots[t % capacity] = msg_id;
          tail.Store(t + 1);
        } else {
          const uint64_t t = tail.FetchAdd(1);
          slots[t % capacity] = msg_id;
        }
      }
    }));
  }

  const FiberId dispatcher = env.SpawnOnNode(server_node, "dispatcher", [&] {
    RegionScope scope(env, rx_region);
    uint64_t received = 0;
    while (received < options_.num_messages) {
      auto msg = net.Recv(server_ep, /*timeout=*/200 * kMillisecond);
      if (!msg.has_value()) {
        break;  // sender gave up (congestion drops)
      }
      ++received;
      packets.Send(msg->tag, options_.payload_bytes);
    }
    for (uint32_t w = 0; w < options_.num_workers; ++w) {
      packets.Send(0, 1);  // poison pills
    }
  });

  // Client: fires num_messages packets at the server.
  const FiberId client = env.Spawn("client", [&] {
    RegionScope scope(env, client_region);
    const ObjectId payload_src = [&] {
      for (ObjectId id = 0; id < env.num_objects(); ++id) {
        if (env.object_info(id).name == "msgdrop.payload") {
          return id;
        }
      }
      return kInvalidObject;
    }();
    for (uint32_t i = 1; i <= options_.num_messages; ++i) {
      const uint64_t payload = env.ReadInput(payload_src, options_.payload_bytes);
      net.Send(client_ep, server_ep, /*tag=*/i,
               std::string(options_.payload_bytes, static_cast<char>('a' + payload % 26)));
    }
  });

  env.Join(client);
  env.Join(dispatcher);
  for (FiberId worker : workers) {
    env.Join(worker);
  }

  // Drain: emit one output per message that survived in the buffer; mark
  // lost slots (ground truth for the root-cause predicate).
  const uint64_t final_tail = tail.Peek();
  messages_accepted_ = final_tail;
  uint64_t delivered = 0;
  for (uint64_t i = 0; i < final_tail && i < capacity; ++i) {
    if (slots[i] != 0) {
      env.EmitOutput(slots[i], options_.payload_bytes);
      ++delivered;
    }
  }
  const uint64_t arrived = net.messages_delivered();
  if (delivered < arrived) {
    env.Annotate(kTagMsgdropLostSlot, arrived - delivered);
  }
}

}  // namespace ddr
