#include "src/apps/scenarios.h"

#include "src/apps/annotations.h"
#include "src/apps/msgdrop_app.h"
#include "src/apps/overflow_app.h"
#include "src/apps/sum_app.h"
#include "src/ht/hypertable_program.h"
#include "src/util/logging.h"

namespace ddr {
namespace {

bool HasAnnotation(const ExecutionView& view, uint64_t tag) {
  for (const Event& event : view.events) {
    if (event.type == EventType::kAnnotation && event.obj == tag) {
      return true;
    }
  }
  return false;
}

// True if an annotation with the given tag carries a value >= threshold.
bool HasAnnotationAtLeast(const ExecutionView& view, uint64_t tag, uint64_t threshold) {
  for (const Event& event : view.events) {
    if (event.type == EventType::kAnnotation && event.obj == tag &&
        event.value >= threshold) {
      return true;
    }
  }
  return false;
}

bool HasNodeCrash(const ExecutionView& view) {
  for (const Event& event : view.events) {
    if (event.type == EventType::kNodeCrash) {
      return true;
    }
  }
  return false;
}

bool HasCongestionDrop(const ExecutionView& view) {
  for (const Event& event : view.events) {
    if (event.type == EventType::kNetDrop && event.aux == 2) {
      return true;
    }
  }
  return false;
}

// Finds a world seed whose first two [0,10] draws are exactly (2, 2) — the
// production inputs of the §2 sum example.
uint64_t FindSumWorldSeed() {
  for (uint64_t seed = 1; seed < 1'000'000; ++seed) {
    Rng rng(seed);
    if (rng.NextInRange(0, 10) == 2 && rng.NextInRange(0, 10) == 2) {
      return seed;
    }
  }
  LOG(FATAL) << "no sum world seed found";
  return 0;
}

// Finds a world seed for which the buggy overflow program receives at least
// one oversized request (and therefore crashes).
uint64_t FindOverflowWorldSeed(const OverflowOptions& options) {
  for (uint64_t seed = 1; seed < 1'000'000; ++seed) {
    Rng rng(seed);
    for (uint32_t i = 0; i < options.num_requests; ++i) {
      if (rng.NextInRange(options.min_len, options.max_len) >
          options.buffer_capacity) {
        return seed;
      }
    }
  }
  LOG(FATAL) << "no overflow world seed found";
  return 0;
}

}  // namespace

BugScenario MakeSumScenario() {
  BugScenario scenario;
  scenario.name = "sum";
  scenario.make_program = [](uint64_t world_seed) -> std::unique_ptr<SimProgram> {
    SumOptions options;
    options.world_seed = world_seed;
    return std::make_unique<SumProgram>(options);
  };
  scenario.env_options.scheduling.preempt_probability = 0.0;  // single fiber
  scenario.production_world_seed = FindSumWorldSeed();
  scenario.production_sched_seed = 1;  // failure is input-determined

  scenario.catalog = RootCauseCatalog(
      {RootCauseSpec{
          "corrupt-table-entry",
          "the corrupted carry-table entry is consulted by the adder",
          [](const ExecutionView& view) {
            return HasAnnotation(view, kTagSumCorruptEntryUsed);
          }}},
      /*actual_id=*/"corrupt-table-entry");

  scenario.input_domains = {{SumProgram::kInputA, 0, 10},
                            {SumProgram::kInputB, 0, 10}};
  scenario.symbolic_model =
      [](const std::vector<uint64_t>& outputs) -> std::unique_ptr<CspProblem> {
    if (outputs.size() != 1) {
      return nullptr;
    }
    auto problem = std::make_unique<CspProblem>();
    const CspProblem::VarId a = problem->AddVariable("a", 0, 10);
    const CspProblem::VarId b = problem->AddVariable("b", 0, 10);
    problem->AddLinearEquals({{a, 1}, {b, 1}}, static_cast<int64_t>(outputs[0]));
    return problem;
  };
  scenario.world_seeds_to_try = 4;
  scenario.sched_seeds_to_try = 3;
  return scenario;
}

BugScenario MakeMsgDropScenario() {
  BugScenario scenario;
  scenario.name = "msgdrop";
  scenario.make_program = [](uint64_t world_seed) -> std::unique_ptr<SimProgram> {
    MsgDropOptions options;
    options.world_seed = world_seed;
    return std::make_unique<MsgDropProgram>(options);
  };
  // The tail-index race needs an involuntary preemption exactly between the
  // load and the store; with sparse preemptions the lost update is a
  // rare, schedule-dependent event (and its cascade then drops a batch of
  // messages — "higher than expected rates").
  scenario.env_options.scheduling.preempt_probability = 0.002;
  scenario.production_world_seed = 11;
  scenario.max_seed_search = 400;

  // The loss count that actually violates the SLO (floor(0.03 * 120) + 1):
  // one or two incidental lost updates do not explain the failure, so the
  // root-cause predicate is quantitative.
  constexpr uint64_t kSloLossThreshold = 4;
  scenario.catalog = RootCauseCatalog(
      {RootCauseSpec{"buffer-race",
                     "lost update on the shared ring-buffer tail index",
                     [](const ExecutionView& view) {
                       return HasAnnotationAtLeast(view, kTagMsgdropLostSlot,
                                                   kSloLossThreshold);
                     }},
       RootCauseSpec{"network-congestion",
                     "packets dropped by a congested network",
                     [](const ExecutionView& view) {
                       return HasCongestionDrop(view);
                     }}},
      /*actual_id=*/"buffer-race");

  // The wrong-but-plausible explanation failure determinism reaches first:
  // a congestion window across the send phase.
  scenario.candidate_fault_plans = {
      FaultPlan::CongestionWindow(/*start=*/0, /*duration=*/500 * kMillisecond,
                                  /*drop_prob=*/0.10)};
  scenario.rcse_mode = RcseMode::kCombined;  // exercise the race trigger
  scenario.world_seeds_to_try = 2;
  scenario.sched_seeds_to_try = 6;
  return scenario;
}

BugScenario MakeOverflowScenario() {
  OverflowOptions defaults;
  BugScenario scenario;
  scenario.name = "overflow";
  scenario.make_program = [](uint64_t world_seed) -> std::unique_ptr<SimProgram> {
    OverflowOptions options;
    options.world_seed = world_seed;
    return std::make_unique<OverflowProgram>(options);
  };
  scenario.env_options.scheduling.preempt_probability = 0.0;  // single fiber
  scenario.production_world_seed = FindOverflowWorldSeed(defaults);
  scenario.production_sched_seed = 1;

  scenario.catalog = RootCauseCatalog(
      {RootCauseSpec{"unchecked-copy",
                     "request copied into the buffer without a length check",
                     [](const ExecutionView& view) {
                       const FailureInfo* failure = view.outcome.primary_failure();
                       return failure != nullptr &&
                              failure->kind == FailureKind::kCrash &&
                              HasAnnotation(view, kTagOverflowUncheckedCopy);
                     }}},
      /*actual_id=*/"unchecked-copy");

  for (uint32_t i = 0; i < defaults.num_requests; ++i) {
    scenario.input_domains.push_back(
        {OverflowProgram::kInputLen, defaults.min_len, defaults.max_len});
  }
  scenario.symbolic_model =
      [defaults](const std::vector<uint64_t>& outputs) -> std::unique_ptr<CspProblem> {
    auto problem = std::make_unique<CspProblem>();
    std::vector<CspProblem::VarId> lens;
    for (uint32_t i = 0; i < defaults.num_requests; ++i) {
      lens.push_back(problem->AddVariable("len" + std::to_string(i),
                                          defaults.min_len, defaults.max_len));
    }
    // Each recorded output pins the corresponding request length; requests
    // after the crash point stay free.
    for (size_t i = 0; i < outputs.size() && i < lens.size(); ++i) {
      problem->AddLinearEquals({{lens[i], 1}}, static_cast<int64_t>(outputs[i]));
    }
    return problem;
  };
  scenario.world_seeds_to_try = 6;
  scenario.sched_seeds_to_try = 2;
  return scenario;
}

std::vector<BugScenario> AllBugScenarios() {
  std::vector<BugScenario> scenarios;
  scenarios.push_back(MakeSumScenario());
  scenarios.push_back(MakeMsgDropScenario());
  scenarios.push_back(MakeOverflowScenario());
  scenarios.push_back(MakeHypertableScenario());
  return scenarios;
}

Result<BugScenario> FindBugScenario(const std::string& name) {
  for (BugScenario& scenario : AllBugScenarios()) {
    if (scenario.name == name) {
      return std::move(scenario);
    }
  }
  return NotFoundError("unknown scenario '" + name +
                       "' (expected sum, msgdrop, overflow, or hypertable)");
}

BugScenario MakeHypertableScenario() { return MakeHypertableScenario(HtConfig()); }

BugScenario MakeHypertableScenario(const HtConfig& config) {
  BugScenario scenario;
  scenario.name = "hypertable";
  scenario.make_program = [config](uint64_t world_seed) -> std::unique_ptr<SimProgram> {
    return std::make_unique<HypertableProgram>(world_seed, config);
  };
  scenario.env_options.scheduling.preempt_probability = 0.15;
  scenario.env_options.max_events = 4'000'000;
  scenario.production_world_seed = 42;
  scenario.max_seed_search = 200;

  scenario.catalog = RootCauseCatalog(
      {RootCauseSpec{"migration-race",
                     "row committed to a slave that concurrently lost the "
                     "row's range (issue 63)",
                     [](const ExecutionView& view) {
                       return HasAnnotation(view, kTagHtLostRowCommit);
                     }},
       RootCauseSpec{"slave-crash",
                     "a slave crashed after rows were uploaded to it",
                     [](const ExecutionView& view) { return HasNodeCrash(view); }},
       RootCauseSpec{"client-oom",
                     "the dump client ran out of memory mid-dump and "
                     "swallowed the error",
                     [](const ExecutionView& view) {
                       return HasAnnotation(view, kTagHtOomDuringDump);
                     }}},
      /*actual_id=*/"migration-race");

  // Alternate explanations ESD-style inference will try first: a slave
  // crash after rows were uploaded to it (mid-load), then a client OOM
  // armed just before the dump phase.
  scenario.candidate_fault_plans = {
      FaultPlan::CrashNodeAt(/*node=*/2, /*time=*/10 * kMillisecond),
      FaultPlan::OomAt(/*node=*/0, /*time=*/15 * kMillisecond)};

  scenario.rcse_mode = RcseMode::kCodeBased;  // §4 uses control-plane selection
  scenario.world_seeds_to_try = 2;
  scenario.sched_seeds_to_try = 4;
  scenario.inference_budget.max_wall_seconds = 30.0;
  return scenario;
}

}  // namespace ddr
