// Ready-made BugScenarios for the paper's bugs.
//
// Each scenario bundles a buggy program with its ground-truth root-cause
// catalog, the alternate explanations inference may hypothesize, and the
// input domains / symbolic models output-deterministic inference uses.
// These are the workloads behind every figure in EXPERIMENTS.md.

#ifndef SRC_APPS_SCENARIOS_H_
#define SRC_APPS_SCENARIOS_H_

#include "src/core/experiment.h"
#include "src/ht/common.h"

namespace ddr {

// §2's sum bug (2 + 2 = 5). One root cause; output determinism fails to
// reproduce the failure (DF = 0).
BugScenario MakeSumScenario();

// §2's message-drop server: racy ring-buffer tail vs. network congestion.
// Two candidate root causes (DF = 1/2 for failure determinism).
BugScenario MakeMsgDropScenario();

// §3's buffer overflow: the fix-predicate example. One root cause; the
// solver-backed symbolic model lets output determinism reconstruct inputs.
BugScenario MakeOverflowScenario();

// §4's Hypertable data-loss race, three candidate root causes
// (migration race / slave crash / client OOM): the Fig. 2 case study.
BugScenario MakeHypertableScenario();
// Same, with an explicit config (tests use smaller workloads).
BugScenario MakeHypertableScenario(const HtConfig& config);

// The scenario registry: every bundled BugScenario, in a stable order.
// This is what `ddr-trace corpus build` fans out over and what `replay`
// uses to rebuild the program a trace's metadata names.
std::vector<BugScenario> AllBugScenarios();

// Registry lookup by scenario name ("sum", "msgdrop", "overflow",
// "hypertable"); NotFound for anything else.
Result<BugScenario> FindBugScenario(const std::string& name);

}  // namespace ddr

#endif  // SRC_APPS_SCENARIOS_H_
