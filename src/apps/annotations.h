// Annotation tags shared between the buggy apps and their root-cause specs.
//
// Programs mark ground-truth facts (e.g. "the corrupted table entry was
// actually used") as kAnnotation events; root-cause predicates look these
// up in replayed traces. Tags are FNV hashes of stable names.

#ifndef SRC_APPS_ANNOTATIONS_H_
#define SRC_APPS_ANNOTATIONS_H_

#include "src/util/hash.h"

namespace ddr {

// sum app: the corrupted carry-table entry was consulted.
inline constexpr uint64_t kTagSumCorruptEntryUsed = FnvHash("sum.corrupt-entry-used");

// msgdrop app: the id of the racy tail-index cell.
inline constexpr uint64_t kTagMsgdropTailCell = FnvHash("msgdrop.tail-cell");
// msgdrop app: a buffer slot was overwritten before being drained.
inline constexpr uint64_t kTagMsgdropLostSlot = FnvHash("msgdrop.lost-slot");

// overflow app: copy executed without a length check.
inline constexpr uint64_t kTagOverflowUncheckedCopy = FnvHash("overflow.unchecked-copy");

// Hypertable-lite: a row was committed to a server that no longer owns the
// row's range (the issue-63 data-loss race actually firing).
inline constexpr uint64_t kTagHtLostRowCommit = FnvHash("ht.lost-row-commit");
// Hypertable-lite: the dump client's allocation failed and was swallowed.
inline constexpr uint64_t kTagHtOomDuringDump = FnvHash("ht.oom-during-dump");
// Hypertable-lite: ids of the per-range ownership cells.
inline constexpr uint64_t kTagHtOwnershipCell = FnvHash("ht.ownership-cell");

}  // namespace ddr

#endif  // SRC_APPS_ANNOTATIONS_H_
