// The §2 message-drop server: a server drops messages at higher than
// expected rates. The true root cause is a lost-update race on the shared
// ring-buffer tail index between two NIC worker fibers; a plausible — and
// wrong — alternative explanation is network congestion.
//
// A failure-deterministic replay debugger that hypothesizes congestion
// reproduces the same failure (high drop rate) through the wrong root
// cause, "deceiving the developer into thinking there isn't a problem at
// all" — debugging fidelity 1/2.

#ifndef SRC_APPS_MSGDROP_APP_H_
#define SRC_APPS_MSGDROP_APP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/environment.h"
#include "src/sim/program.h"
#include "src/util/rng.h"

namespace ddr {

struct MsgDropOptions {
  uint64_t world_seed = 1;
  bool bug_enabled = true;   // racy tail update vs. atomic FetchAdd
  uint32_t num_messages = 120;
  uint32_t num_workers = 3;
  uint32_t payload_bytes = 64;
  // Failure threshold: delivering less than this fraction is out of spec
  // (a *performance* failure — the paper includes performance in output).
  double min_delivery_fraction = 0.97;
};

class MsgDropProgram : public SimProgram {
 public:
  explicit MsgDropProgram(MsgDropOptions options);

  std::string name() const override { return "msgdrop"; }
  void Configure(Environment& env) override;
  void Main(Environment& env) override;

  uint64_t messages_accepted() const { return messages_accepted_; }

 private:
  MsgDropOptions options_;
  Rng world_rng_;
  uint64_t messages_accepted_ = 0;
};

}  // namespace ddr

#endif  // SRC_APPS_MSGDROP_APP_H_
