// The §3 buffer-overflow example: a request handler copies each request
// into a fixed-size buffer. The fixed program checks the request length
// first; the buggy program does not, and crashes on oversized requests.
//
// The fix predicate P is "len <= capacity checked before the copy"; the
// root cause is its negation (the unchecked copy). This program grounds the
// paper's definition of root causes as fix predicates, and its solver-backed
// symbolic model lets output-deterministic inference reconstruct the crash
// from recorded outputs alone.

#ifndef SRC_APPS_OVERFLOW_APP_H_
#define SRC_APPS_OVERFLOW_APP_H_

#include <cstdint>
#include <string>

#include "src/sim/environment.h"
#include "src/sim/program.h"
#include "src/util/rng.h"

namespace ddr {

struct OverflowOptions {
  uint64_t world_seed = 1;
  bool bug_enabled = true;  // skip the length check (negation of P)
  uint32_t num_requests = 3;
  int64_t min_len = 1;
  int64_t max_len = 64;
  int64_t buffer_capacity = 48;
};

class OverflowProgram : public SimProgram {
 public:
  explicit OverflowProgram(OverflowOptions options);

  std::string name() const override { return "overflow"; }
  void Configure(Environment& env) override;
  void Main(Environment& env) override;

  static constexpr const char* kInputLen = "overflow.len";

 private:
  OverflowOptions options_;
  Rng world_rng_;
};

}  // namespace ddr

#endif  // SRC_APPS_OVERFLOW_APP_H_
