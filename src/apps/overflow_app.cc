#include "src/apps/overflow_app.h"

#include "src/apps/annotations.h"
#include "src/util/string_util.h"

namespace ddr {

OverflowProgram::OverflowProgram(OverflowOptions options)
    : options_(options), world_rng_(options.world_seed) {}

void OverflowProgram::Configure(Environment& env) {
  env.RegisterInputSource(kInputLen, [this] {
    return static_cast<uint64_t>(
        world_rng_.NextInRange(options_.min_len, options_.max_len));
  });
}

void OverflowProgram::Main(Environment& env) {
  ObjectId len_src = kInvalidObject;
  for (ObjectId id = 0; id < env.num_objects(); ++id) {
    if (env.object_info(id).name == kInputLen) {
      len_src = id;
    }
  }
  for (uint32_t i = 0; i < options_.num_requests; ++i) {
    const uint64_t len = env.ReadInput(len_src, static_cast<uint32_t>(
                                                     options_.max_len));
    if (!options_.bug_enabled) {
      // The fix: predicate P — reject requests longer than the buffer.
      if (len > static_cast<uint64_t>(options_.buffer_capacity)) {
        env.EmitOutput(0);  // rejected
        continue;
      }
    } else {
      env.Annotate(kTagOverflowUncheckedCopy, len);
    }
    // The copy. With the bug, an oversized request smashes the stack.
    if (len > static_cast<uint64_t>(options_.buffer_capacity)) {
      env.Abort(FailureKind::kCrash, "buffer overflow in request handler");
    }
    env.EmitOutput(len);
  }
}

}  // namespace ddr
