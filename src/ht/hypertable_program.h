// HypertableProgram: the §4 case-study workload as a SimProgram.
//
// Multiple clients concurrently load rows into one table while the master
// rebalances ranges; afterwards a client dumps the table. The I/O spec is
// the one from the bug report: a dump must return every acked row. With
// `bug_enabled`, the commit/migration race silently orphans rows and the
// dump comes up short — "several thousand rows missing" at Hypertable
// scale, a handful at simulation scale.

#ifndef SRC_HT_HYPERTABLE_PROGRAM_H_
#define SRC_HT_HYPERTABLE_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ht/client.h"
#include "src/ht/common.h"
#include "src/ht/master.h"
#include "src/ht/range_server.h"
#include "src/sim/program.h"
#include "src/util/rng.h"

namespace ddr {

class HypertableProgram : public SimProgram {
 public:
  HypertableProgram(uint64_t world_seed, HtConfig config);

  std::string name() const override { return "hypertable"; }
  void Configure(Environment& env) override;
  void Main(Environment& env) override;

  // Post-run statistics (valid after Run).
  uint64_t acked_total() const { return acked_total_; }
  uint64_t dump_total() const { return dump_total_; }
  uint64_t orphaned_rows() const;
  const HtConfig& config() const { return cluster_.config; }
  const std::vector<std::unique_ptr<RangeServer>>& servers() const { return servers_; }

  static constexpr const char* kFailureMessage = "hypertable: dump missing rows";

 private:
  Rng world_rng_;
  // Cluster components live on the program (not in Main's frame) because
  // daemon fibers reference them until environment teardown completes.
  HtCluster cluster_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<HtMaster> master_;
  std::vector<std::unique_ptr<RangeServer>> servers_;
  std::vector<std::unique_ptr<HtClient>> clients_;
  std::vector<ObjectId> client_inputs_;
  std::vector<Rng> client_rngs_;

  uint64_t acked_total_ = 0;
  uint64_t dump_total_ = 0;
};

}  // namespace ddr

#endif  // SRC_HT_HYPERTABLE_PROGRAM_H_
