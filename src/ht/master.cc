#include "src/ht/master.h"

#include "src/util/logging.h"

namespace ddr {

HtMaster::HtMaster(HtCluster& cluster) : cluster_(cluster), env_(*cluster.env) {
  location_.resize(cluster_.config.num_ranges);
  for (HtRangeId r = 0; r < cluster_.config.num_ranges; ++r) {
    location_[r] = r % cluster_.config.num_servers;
  }
}

std::vector<std::vector<HtRangeId>> HtMaster::InitialPlacement() const {
  std::vector<std::vector<HtRangeId>> placement(cluster_.config.num_servers);
  for (HtRangeId r = 0; r < cluster_.config.num_ranges; ++r) {
    placement[location_[r]].push_back(r);
  }
  return placement;
}

void HtMaster::Start() {
  env_.SpawnOnNode(cluster_.master_node, "master", [this] { MasterLoop(); });
}

void HtMaster::MasterLoop() {
  RegionScope scope(env_, cluster_.regions.master);
  for (;;) {
    auto msg = cluster_.net->Recv(cluster_.master_ep,
                                  cluster_.config.migration_interval);
    if (!msg.has_value()) {
      // Timer tick: order the next load-balancing migration.
      if (migrations_ordered_ < cluster_.config.num_migrations) {
        OrderMigration();
      }
      continue;
    }
    switch (static_cast<HtMsg>(msg->tag)) {
      case HtMsg::kLookupReq: {
        auto req = LookupReq::Decode(msg->payload);
        if (!req.ok()) {
          break;
        }
        LookupResp resp{req->range, location_[req->range]};
        cluster_.net->Send(cluster_.master_ep, msg->src,
                           static_cast<uint64_t>(HtMsg::kLookupResp), resp.Encode());
        break;
      }
      case HtMsg::kMigrateDone: {
        auto done = MigrateDone::Decode(msg->payload);
        if (!done.ok()) {
          break;
        }
        location_[done->range] = done->dst_server;
        ++migrations_completed_;
        break;
      }
      default:
        break;
    }
  }
}

void HtMaster::OrderMigration() {
  const HtRangeId range = static_cast<HtRangeId>(
      env_.RngDraw(RngPurpose::kAppChoice, cluster_.config.num_ranges));
  const uint32_t src = location_[range];
  uint32_t dst = static_cast<uint32_t>(
      env_.RngDraw(RngPurpose::kAppChoice, cluster_.config.num_servers));
  if (dst == src) {
    dst = (dst + 1) % cluster_.config.num_servers;
  }
  ++migrations_ordered_;
  MigrateCmd cmd{range, dst};
  cluster_.net->Send(cluster_.master_ep, cluster_.server_eps[src],
                     static_cast<uint64_t>(HtMsg::kMigrateCmd), cmd.Encode());
}

}  // namespace ddr
