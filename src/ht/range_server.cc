#include "src/ht/range_server.h"

#include "src/apps/annotations.h"
#include "src/util/logging.h"

namespace ddr {

RangeServer::RangeServer(HtCluster& cluster, uint32_t index)
    : cluster_(cluster),
      env_(*cluster.env),
      index_(index),
      node_(cluster.server_nodes[index]),
      endpoint_(cluster.server_eps[index]),
      commit_log_(env_, "srv" + std::to_string(index) + ".commitlog",
                  DiskOptions{.seek_latency = cluster.config.commit_log_seek,
                              .per_byte = 5 * kNanosecond}),
      mutex_(env_, "srv" + std::to_string(index) + ".mutex") {
  owns_.reserve(cluster_.config.num_ranges);
  for (HtRangeId r = 0; r < cluster_.config.num_ranges; ++r) {
    owns_.push_back(std::make_unique<SharedVar<int>>(
        env_, "srv" + std::to_string(index) + ".owns" + std::to_string(r), 0));
    // Ground-truth marker: tell analyses which cells carry range ownership.
    env_.Annotate(kTagHtOwnershipCell, owns_.back()->id());
  }
  commit_ch_ = std::make_unique<Channel<NetMessage>>(
      env_, "srv" + std::to_string(index) + ".commit_ch");
  migrate_ch_ = std::make_unique<Channel<NetMessage>>(
      env_, "srv" + std::to_string(index) + ".migrate_ch");
}

void RangeServer::SetInitialOwnership(const std::vector<HtRangeId>& ranges) {
  for (HtRangeId r : ranges) {
    owns_[r]->Store(1);
  }
}

void RangeServer::Start() {
  const std::string prefix = "srv" + std::to_string(index_);
  env_.SpawnOnNode(node_, prefix + ".dispatch", [this] { DispatcherLoop(); });
  for (uint32_t w = 0; w < cluster_.config.commit_workers; ++w) {
    env_.SpawnOnNode(node_, prefix + ".commit" + std::to_string(w),
                     [this] { CommitWorkerLoop(); });
  }
  env_.SpawnOnNode(node_, prefix + ".migrate", [this] { MigrationLoop(); });
}

void RangeServer::DispatcherLoop() {
  for (;;) {
    auto msg = cluster_.net->Recv(endpoint_);
    if (!msg.has_value()) {
      continue;
    }
    RegionScope scope(env_, cluster_.regions.rpc);
    switch (static_cast<HtMsg>(msg->tag)) {
      case HtMsg::kCommitReq:
        commit_ch_->Send(*std::move(msg), 16);
        break;
      case HtMsg::kMigrateCmd:
      case HtMsg::kInstallRange:
        migrate_ch_->Send(*std::move(msg), 16);
        break;
      case HtMsg::kDumpReq:
        HandleDump(*msg);
        break;
      default:
        LOG(WARNING) << "server " << index_ << ": unexpected tag " << msg->tag;
    }
  }
}

void RangeServer::CommitWorkerLoop() {
  for (;;) {
    const NetMessage msg = commit_ch_->Recv(16);
    HandleCommit(msg);
  }
}

void RangeServer::HandleCommit(const NetMessage& request) {
  auto req = CommitReq::Decode(request.payload);
  if (!req.ok()) {
    LOG(WARNING) << "bad commit payload: " << req.status();
    return;
  }
  const HtRangeId range = cluster_.config.RangeOf(req->key);

  bool owned = false;
  {
    // Control plane: route the commit to a range this server owns.
    RegionScope route(env_, cluster_.regions.commit_route);
    owned = owns_[range]->Load() == 1;
  }
  if (!owned) {
    ++not_owner_replies_;
    CommitReply reply{req->key, range};
    cluster_.net->Send(endpoint_, request.src,
                       static_cast<uint64_t>(HtMsg::kCommitNotOwner), reply.Encode());
    return;
  }

  {
    // Data plane: durable write + memtable insert. The commit-log append
    // blocks on the disk, which is the window in which a concurrent
    // migration can take the range away.
    RegionScope apply(env_, cluster_.regions.commit_apply);
    commit_log_.Append(request.payload);

    SimLock lock(mutex_);
    if (!cluster_.config.bug_enabled) {
      // The fix (predicate P): re-validate ownership atomically with the
      // insert; redirect the client if the range moved meanwhile.
      if (owns_[range]->Load() != 1) {
        ++not_owner_replies_;
        CommitReply reply{req->key, range};
        cluster_.net->Send(endpoint_, request.src,
                           static_cast<uint64_t>(HtMsg::kCommitNotOwner),
                           reply.Encode());
        return;
      }
    }
    memtable_[range][req->key] = std::move(req->value);
    ++rows_committed_;
    if (cluster_.config.bug_enabled && owns_[range]->Peek() == 0) {
      // The root cause fired: this row is committed to a server that no
      // longer hosts its range; dumps will silently ignore it.
      ++rows_orphaned_;
      env_.Annotate(kTagHtLostRowCommit, req->key);
    }
  }

  CommitReply reply{req->key, range};
  cluster_.net->Send(endpoint_, request.src,
                     static_cast<uint64_t>(HtMsg::kCommitAck), reply.Encode());
}

void RangeServer::MigrationLoop() {
  for (;;) {
    const NetMessage msg = migrate_ch_->Recv(16);
    switch (static_cast<HtMsg>(msg.tag)) {
      case HtMsg::kMigrateCmd: {
        auto cmd = MigrateCmd::Decode(msg.payload);
        if (cmd.ok()) {
          HandleMigrateCmd(*cmd);
        }
        break;
      }
      case HtMsg::kInstallRange: {
        auto install = InstallRange::Decode(msg.payload);
        if (install.ok()) {
          HandleInstall(*std::move(install));
        }
        break;
      }
      default:
        break;
    }
  }
}

void RangeServer::HandleMigrateCmd(const MigrateCmd& cmd) {
  InstallRange install;
  install.range = cmd.range;
  {
    // Control plane: give up ownership (the write half of the race).
    RegionScope scope(env_, cluster_.regions.migration);
    SimLock lock(mutex_);
    owns_[cmd.range]->Store(0);
    auto it = memtable_.find(cmd.range);
    if (it != memtable_.end()) {
      for (auto& [key, value] : it->second) {
        install.rows.push_back(HtRow{key, std::move(value)});
      }
      memtable_.erase(it);
    }
  }
  ++migrations_out_;
  {
    // Data plane: bulk transfer of the range contents.
    RegionScope scope(env_, cluster_.regions.transfer);
    cluster_.net->Send(endpoint_, cluster_.server_eps[cmd.dst_server],
                       static_cast<uint64_t>(HtMsg::kInstallRange), install.Encode());
  }
}

void RangeServer::HandleInstall(const InstallRange& install) {
  {
    RegionScope scope(env_, cluster_.regions.migration);
    SimLock lock(mutex_);
    auto& range_rows = memtable_[install.range];
    for (const HtRow& row : install.rows) {
      range_rows[row.key] = row.value;
    }
    owns_[install.range]->Store(1);
  }
  ++migrations_in_;
  MigrateDone done{install.range, index_};
  cluster_.net->Send(endpoint_, cluster_.master_ep,
                     static_cast<uint64_t>(HtMsg::kMigrateDone), done.Encode());
}

void RangeServer::HandleDump(const NetMessage& request) {
  DumpResp resp;
  {
    // Data plane: scan every owned range.
    RegionScope scope(env_, cluster_.regions.dump_scan);
    SimLock lock(mutex_);
    for (HtRangeId r = 0; r < cluster_.config.num_ranges; ++r) {
      if (owns_[r]->Load() != 1) {
        continue;  // rows in unowned ranges are silently ignored (the bug's
                   // visible half)
      }
      auto it = memtable_.find(r);
      if (it == memtable_.end()) {
        continue;
      }
      for (const auto& [key, value] : it->second) {
        resp.rows.push_back(HtRow{key, value});
      }
    }
  }
  cluster_.net->Send(endpoint_, request.src, static_cast<uint64_t>(HtMsg::kDumpResp),
                     resp.Encode());
}

uint64_t RangeServer::OwnedRowCount() const {
  uint64_t count = 0;
  for (HtRangeId r = 0; r < cluster_.config.num_ranges; ++r) {
    if (owns_[r]->Peek() != 1) {
      continue;
    }
    auto it = memtable_.find(r);
    if (it != memtable_.end()) {
      count += it->second.size();
    }
  }
  return count;
}

}  // namespace ddr
