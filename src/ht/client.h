// Hypertable-lite client: concurrent row loads and table dumps.
//
// Loads follow the production workflow of issue 63: multiple clients load
// rows into the same table concurrently while the master rebalances ranges.
// Commits that hit a server that just lost the range are redirected
// (NotOwner -> master lookup -> retry). Dumps scatter-gather over all
// servers; the dump path contains the "swallowed allocation failure" that
// serves as §4's client-OOM alternate root cause.

#ifndef SRC_HT_CLIENT_H_
#define SRC_HT_CLIENT_H_

#include <map>
#include <string>
#include <vector>

#include "src/ht/common.h"

namespace ddr {

class HtClient {
 public:
  // `input_source` supplies row payload seeds (external nondeterminism).
  HtClient(HtCluster& cluster, uint32_t index, ObjectId input_source);

  // Loads `count` uniquely-keyed rows; returns the number acked.
  uint64_t LoadRows(uint32_t count);

  // Scatter-gather dump of the whole table. Returns rows retrieved.
  // Allocation failures while collecting responses are (incorrectly)
  // swallowed and end the dump early.
  uint64_t DumpTable();

  uint64_t acked() const { return acked_; }
  uint64_t dump_rows() const { return dump_rows_; }
  bool dump_hit_oom() const { return dump_hit_oom_; }

 private:
  uint32_t LookupOwner(HtRangeId range);
  bool CommitRow(uint64_t key, const std::string& value);

  HtCluster& cluster_;
  Environment& env_;
  uint32_t index_;
  ObjectId endpoint_;
  ObjectId input_source_;
  std::map<HtRangeId, uint32_t> location_cache_;
  uint64_t acked_ = 0;
  uint64_t dump_rows_ = 0;
  bool dump_hit_oom_ = false;
};

}  // namespace ddr

#endif  // SRC_HT_CLIENT_H_
