#include "src/ht/client.h"

#include "src/apps/annotations.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace ddr {

HtClient::HtClient(HtCluster& cluster, uint32_t index, ObjectId input_source)
    : cluster_(cluster),
      env_(*cluster.env),
      index_(index),
      endpoint_(cluster.client_eps[index]),
      input_source_(input_source) {
  for (HtRangeId r = 0; r < cluster_.config.num_ranges; ++r) {
    location_cache_[r] = r % cluster_.config.num_servers;  // initial placement
  }
}

uint32_t HtClient::LookupOwner(HtRangeId range) {
  RegionScope scope(env_, cluster_.regions.client_control);
  LookupReq req{range};
  cluster_.net->Send(endpoint_, cluster_.master_ep,
                     static_cast<uint64_t>(HtMsg::kLookupReq), req.Encode());
  for (;;) {
    auto msg = cluster_.net->Recv(endpoint_, cluster_.config.rpc_timeout);
    if (!msg.has_value()) {
      return location_cache_[range];  // keep stale cache on timeout
    }
    if (static_cast<HtMsg>(msg->tag) == HtMsg::kLookupResp) {
      auto resp = LookupResp::Decode(msg->payload);
      if (resp.ok() && resp->range == range) {
        location_cache_[range] = resp->server;
        return resp->server;
      }
    }
    // Late commit replies may arrive while waiting for a lookup; skip them.
  }
}

bool HtClient::CommitRow(uint64_t key, const std::string& value) {
  const HtRangeId range = cluster_.config.RangeOf(key);
  constexpr int kMaxAttempts = 3;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const uint32_t owner = location_cache_[range];
    CommitReq req{key, value};
    cluster_.net->Send(endpoint_, cluster_.server_eps[owner],
                       static_cast<uint64_t>(HtMsg::kCommitReq), req.Encode());
    auto msg = cluster_.net->Recv(endpoint_, cluster_.config.rpc_timeout);
    if (!msg.has_value()) {
      continue;  // lost or server dead; retry (possibly after re-lookup)
    }
    switch (static_cast<HtMsg>(msg->tag)) {
      case HtMsg::kCommitAck: {
        auto reply = CommitReply::Decode(msg->payload);
        if (reply.ok() && reply->key == key) {
          return true;
        }
        break;  // stale reply for an earlier attempt; retry
      }
      case HtMsg::kCommitNotOwner:
        LookupOwner(range);
        break;
      default:
        break;
    }
  }
  return false;
}

uint64_t HtClient::LoadRows(uint32_t count) {
  RegionScope scope(env_, cluster_.regions.client_load);
  for (uint32_t i = 0; i < count; ++i) {
    // Row content is external input (the production data the replayer will
    // not have). Keys are unique by construction: (client, i).
    const uint64_t payload =
        env_.ReadInput(input_source_, cluster_.config.row_bytes);
    const uint64_t key = (static_cast<uint64_t>(index_) << 32) | i;
    std::string value(cluster_.config.row_bytes,
                      static_cast<char>('a' + payload % 26));
    if (CommitRow(key, value)) {
      ++acked_;
    }
  }
  return acked_;
}

uint64_t HtClient::DumpTable() {
  RegionScope scope(env_, cluster_.regions.dump_scan);
  dump_rows_ = 0;
  // Drain stragglers (late commit acks) so they are not mistaken for dump
  // responses.
  while (cluster_.net->Recv(endpoint_, 1 * kMillisecond).has_value()) {
  }
  for (uint32_t s = 0; s < cluster_.config.num_servers; ++s) {
    cluster_.net->Send(endpoint_, cluster_.server_eps[s],
                       static_cast<uint64_t>(HtMsg::kDumpReq), std::string());
    for (;;) {
      auto msg = cluster_.net->Recv(endpoint_, cluster_.config.rpc_timeout);
      if (!msg.has_value()) {
        break;  // dead or slow server: dump returns whatever it got
      }
      if (static_cast<HtMsg>(msg->tag) != HtMsg::kDumpResp) {
        continue;  // late reply from the load phase; keep waiting
      }
      // BUG-ADJACENT (deliberate, §4): an allocation failure while buffering
      // the response is swallowed and the dump just ends early.
      if (!env_.TryAlloc(static_cast<uint32_t>(msg->payload.size()))) {
        dump_hit_oom_ = true;
        env_.Annotate(kTagHtOomDuringDump, s);
        return dump_rows_;
      }
      auto resp = DumpResp::Decode(msg->payload);
      if (resp.ok()) {
        dump_rows_ += resp->rows.size();
      }
      break;
    }
  }
  return dump_rows_;
}

}  // namespace ddr
