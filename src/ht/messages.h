// Wire messages for Hypertable-lite RPCs.
//
// Payloads are varint-encoded with src/util/codec.h. Every request carries
// the sender's endpoint so the receiver can reply (NetMessage::src is also
// available, but explicit reply-to keeps forwarding possible).

#ifndef SRC_HT_MESSAGES_H_
#define SRC_HT_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.h"
#include "src/util/codec.h"
#include "src/util/status.h"

namespace ddr {

// Message tags (NetMessage::tag).
enum class HtMsg : uint64_t {
  kCommitReq = 1,
  kCommitAck = 2,
  kCommitNotOwner = 3,
  kDumpReq = 4,
  kDumpResp = 5,
  kMigrateCmd = 6,
  kInstallRange = 7,
  kMigrateDone = 8,
  kLookupReq = 9,
  kLookupResp = 10,
};

using HtRangeId = uint32_t;

struct HtRow {
  uint64_t key = 0;
  std::string value;
};

struct CommitReq {
  uint64_t key = 0;
  std::string value;

  std::string Encode() const;
  static Result<CommitReq> Decode(const std::string& payload);
};

struct CommitReply {  // Ack or NotOwner
  uint64_t key = 0;
  HtRangeId range = 0;

  std::string Encode() const;
  static Result<CommitReply> Decode(const std::string& payload);
};

struct DumpResp {
  std::vector<HtRow> rows;

  std::string Encode() const;
  static Result<DumpResp> Decode(const std::string& payload);
};

struct MigrateCmd {
  HtRangeId range = 0;
  uint32_t dst_server = 0;  // server index

  std::string Encode() const;
  static Result<MigrateCmd> Decode(const std::string& payload);
};

struct InstallRange {
  HtRangeId range = 0;
  std::vector<HtRow> rows;

  std::string Encode() const;
  static Result<InstallRange> Decode(const std::string& payload);
};

struct MigrateDone {
  HtRangeId range = 0;
  uint32_t dst_server = 0;

  std::string Encode() const;
  static Result<MigrateDone> Decode(const std::string& payload);
};

struct LookupReq {
  HtRangeId range = 0;

  std::string Encode() const;
  static Result<LookupReq> Decode(const std::string& payload);
};

struct LookupResp {
  HtRangeId range = 0;
  uint32_t server = 0;

  std::string Encode() const;
  static Result<LookupResp> Decode(const std::string& payload);
};

}  // namespace ddr

#endif  // SRC_HT_MESSAGES_H_
