// Hypertable-lite master: range placement, load-balancing migrations, and
// location lookups.
//
// The master fiber multiplexes its RPC endpoint with a migration timer:
// every `migration_interval` it picks a random owned range and a random
// destination server (environment RNG draws — recordable nondeterminism)
// and orders the current owner to migrate it.

#ifndef SRC_HT_MASTER_H_
#define SRC_HT_MASTER_H_

#include <vector>

#include "src/ht/common.h"

namespace ddr {

class HtMaster {
 public:
  explicit HtMaster(HtCluster& cluster);

  // Round-robin initial placement; returns ranges per server index.
  std::vector<std::vector<HtRangeId>> InitialPlacement() const;

  void Start();

  // Location table (master fiber only; uninstrumented).
  uint32_t OwnerOf(HtRangeId range) const { return location_[range]; }
  uint64_t migrations_ordered() const { return migrations_ordered_; }
  uint64_t migrations_completed() const { return migrations_completed_; }

 private:
  void MasterLoop();
  void OrderMigration();

  HtCluster& cluster_;
  Environment& env_;
  std::vector<uint32_t> location_;  // range -> server index
  uint64_t migrations_ordered_ = 0;
  uint64_t migrations_completed_ = 0;
};

}  // namespace ddr

#endif  // SRC_HT_MASTER_H_
