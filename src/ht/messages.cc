#include "src/ht/messages.h"

namespace ddr {
namespace {

std::string TakeString(Encoder* encoder) {
  std::vector<uint8_t> bytes = encoder->TakeBuffer();
  return std::string(bytes.begin(), bytes.end());
}

Decoder MakeDecoder(const std::string& payload) {
  return Decoder(reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
}

void EncodeRows(Encoder* encoder, const std::vector<HtRow>& rows) {
  encoder->PutVarint64(rows.size());
  for (const HtRow& row : rows) {
    encoder->PutVarint64(row.key);
    encoder->PutString(row.value);
  }
}

Result<std::vector<HtRow>> DecodeRows(Decoder* decoder) {
  ASSIGN_OR_RETURN(uint64_t count, decoder->GetVarint64());
  std::vector<HtRow> rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    HtRow row;
    ASSIGN_OR_RETURN(row.key, decoder->GetVarint64());
    ASSIGN_OR_RETURN(row.value, decoder->GetString());
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

std::string CommitReq::Encode() const {
  Encoder encoder;
  encoder.PutVarint64(key);
  encoder.PutString(value);
  return TakeString(&encoder);
}

Result<CommitReq> CommitReq::Decode(const std::string& payload) {
  Decoder decoder = MakeDecoder(payload);
  CommitReq req;
  ASSIGN_OR_RETURN(req.key, decoder.GetVarint64());
  ASSIGN_OR_RETURN(req.value, decoder.GetString());
  return req;
}

std::string CommitReply::Encode() const {
  Encoder encoder;
  encoder.PutVarint64(key);
  encoder.PutVarint64(range);
  return TakeString(&encoder);
}

Result<CommitReply> CommitReply::Decode(const std::string& payload) {
  Decoder decoder = MakeDecoder(payload);
  CommitReply reply;
  ASSIGN_OR_RETURN(reply.key, decoder.GetVarint64());
  ASSIGN_OR_RETURN(uint64_t range, decoder.GetVarint64());
  reply.range = static_cast<HtRangeId>(range);
  return reply;
}

std::string DumpResp::Encode() const {
  Encoder encoder;
  EncodeRows(&encoder, rows);
  return TakeString(&encoder);
}

Result<DumpResp> DumpResp::Decode(const std::string& payload) {
  Decoder decoder = MakeDecoder(payload);
  DumpResp resp;
  ASSIGN_OR_RETURN(resp.rows, DecodeRows(&decoder));
  return resp;
}

std::string MigrateCmd::Encode() const {
  Encoder encoder;
  encoder.PutVarint64(range);
  encoder.PutVarint64(dst_server);
  return TakeString(&encoder);
}

Result<MigrateCmd> MigrateCmd::Decode(const std::string& payload) {
  Decoder decoder = MakeDecoder(payload);
  MigrateCmd cmd;
  ASSIGN_OR_RETURN(uint64_t range, decoder.GetVarint64());
  cmd.range = static_cast<HtRangeId>(range);
  ASSIGN_OR_RETURN(uint64_t dst, decoder.GetVarint64());
  cmd.dst_server = static_cast<uint32_t>(dst);
  return cmd;
}

std::string InstallRange::Encode() const {
  Encoder encoder;
  encoder.PutVarint64(range);
  EncodeRows(&encoder, rows);
  return TakeString(&encoder);
}

Result<InstallRange> InstallRange::Decode(const std::string& payload) {
  Decoder decoder = MakeDecoder(payload);
  InstallRange install;
  ASSIGN_OR_RETURN(uint64_t range, decoder.GetVarint64());
  install.range = static_cast<HtRangeId>(range);
  ASSIGN_OR_RETURN(install.rows, DecodeRows(&decoder));
  return install;
}

std::string MigrateDone::Encode() const {
  Encoder encoder;
  encoder.PutVarint64(range);
  encoder.PutVarint64(dst_server);
  return TakeString(&encoder);
}

Result<MigrateDone> MigrateDone::Decode(const std::string& payload) {
  Decoder decoder = MakeDecoder(payload);
  MigrateDone done;
  ASSIGN_OR_RETURN(uint64_t range, decoder.GetVarint64());
  done.range = static_cast<HtRangeId>(range);
  ASSIGN_OR_RETURN(uint64_t dst, decoder.GetVarint64());
  done.dst_server = static_cast<uint32_t>(dst);
  return done;
}

std::string LookupReq::Encode() const {
  Encoder encoder;
  encoder.PutVarint64(range);
  return TakeString(&encoder);
}

Result<LookupReq> LookupReq::Decode(const std::string& payload) {
  Decoder decoder = MakeDecoder(payload);
  LookupReq req;
  ASSIGN_OR_RETURN(uint64_t range, decoder.GetVarint64());
  req.range = static_cast<HtRangeId>(range);
  return req;
}

std::string LookupResp::Encode() const {
  Encoder encoder;
  encoder.PutVarint64(range);
  encoder.PutVarint64(server);
  return TakeString(&encoder);
}

Result<LookupResp> LookupResp::Decode(const std::string& payload) {
  Decoder decoder = MakeDecoder(payload);
  LookupResp resp;
  ASSIGN_OR_RETURN(uint64_t range, decoder.GetVarint64());
  resp.range = static_cast<HtRangeId>(range);
  ASSIGN_OR_RETURN(uint64_t server, decoder.GetVarint64());
  resp.server = static_cast<uint32_t>(server);
  return resp;
}

}  // namespace ddr
