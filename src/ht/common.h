// Shared configuration and wiring context for Hypertable-lite components.

#ifndef SRC_HT_COMMON_H_
#define SRC_HT_COMMON_H_

#include <cstdint>
#include <vector>

#include "src/sim/environment.h"
#include "src/sim/network.h"
#include "src/ht/messages.h"

namespace ddr {

struct HtConfig {
  bool bug_enabled = true;  // the issue-63 commit/migration race
  uint32_t num_servers = 3;
  uint32_t num_clients = 2;
  uint32_t rows_per_client = 120;
  uint32_t num_ranges = 8;
  uint32_t row_bytes = 96;
  uint32_t num_migrations = 4;
  SimDuration migration_interval = 3 * kMillisecond;
  SimDuration rpc_timeout = 30 * kMillisecond;
  uint32_t commit_workers = 2;
  // Commit-log write latency: the size of the race window between the
  // ownership check and the memtable insert. Smaller = rarer manifestation.
  SimDuration commit_log_seek = 20 * kMicrosecond;

  HtRangeId RangeOf(uint64_t key) const {
    return static_cast<HtRangeId>(key % num_ranges);
  }
};

// Code regions (§3.1.1). Registered once, in Configure, so ids are stable
// across runs of the same program.
struct HtRegions {
  RegionId rpc = kDefaultRegion;            // dispatchers (control)
  RegionId commit_route = kDefaultRegion;   // ownership check (control)
  RegionId commit_apply = kDefaultRegion;   // memtable/commit-log write (data)
  RegionId migration = kDefaultRegion;      // ownership transfer (control)
  RegionId transfer = kDefaultRegion;       // bulk row movement (data)
  RegionId dump_scan = kDefaultRegion;      // table dump scan (data)
  RegionId master = kDefaultRegion;         // master logic (control)
  RegionId client_load = kDefaultRegion;    // client row upload (data)
  RegionId client_control = kDefaultRegion; // lookups / retries (control)

  void Register(Environment& env) {
    rpc = env.RegisterRegion("ht.rpc");
    commit_route = env.RegisterRegion("ht.commit.route");
    commit_apply = env.RegisterRegion("ht.commit.apply");
    migration = env.RegisterRegion("ht.migration");
    transfer = env.RegisterRegion("ht.transfer");
    dump_scan = env.RegisterRegion("ht.dump.scan");
    master = env.RegisterRegion("ht.master");
    client_load = env.RegisterRegion("ht.client.load");
    client_control = env.RegisterRegion("ht.client.control");
  }
};

// Everything components need to talk to each other.
struct HtCluster {
  Environment* env = nullptr;
  Network* net = nullptr;
  HtConfig config;
  HtRegions regions;

  NodeId master_node = kInvalidNode;
  std::vector<NodeId> server_nodes;
  NodeId client_node = kInvalidNode;

  ObjectId master_ep = kInvalidObject;
  std::vector<ObjectId> server_eps;
  std::vector<ObjectId> client_eps;
};

}  // namespace ddr

#endif  // SRC_HT_COMMON_H_
