// Hypertable-lite range server.
//
// Hosts a set of ranges, applies client commits (commit log on simulated
// disk + in-memory memtable), serves table dumps, and participates in range
// migration. Contains the reproduction of Hypertable issue 63:
//
//   commit worker                      migration fiber
//   --------------                     ---------------
//   owns[r].Load() == 1    (route)
//       |  ... disk append blocks ...  owns[r].Store(0)
//       |                              move memtable rows to new owner
//   memtable[r].insert(row)  <- row lands on a server that no longer owns
//                                the range; dumps silently ignore it.
//
// With `bug_enabled == false` the ownership check is re-validated under the
// server mutex after the commit-log write (the fix predicate P of §3), and
// the client is redirected instead.

#ifndef SRC_HT_RANGE_SERVER_H_
#define SRC_HT_RANGE_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ht/common.h"
#include "src/sim/channel.h"
#include "src/sim/disk.h"
#include "src/sim/shared_var.h"
#include "src/sim/sync.h"

namespace ddr {

class RangeServer {
 public:
  RangeServer(HtCluster& cluster, uint32_t index);

  // Marks initially owned ranges (before Start).
  void SetInitialOwnership(const std::vector<HtRangeId>& ranges);

  // Spawns dispatcher, commit workers, and the migration fiber.
  void Start();

  ObjectId endpoint() const { return endpoint_; }
  NodeId node() const { return node_; }
  uint32_t index() const { return index_; }

  // Uninstrumented statistics for tests and specs.
  uint64_t rows_committed() const { return rows_committed_; }
  uint64_t rows_orphaned() const { return rows_orphaned_; }
  uint64_t not_owner_replies() const { return not_owner_replies_; }
  uint64_t migrations_out() const { return migrations_out_; }
  uint64_t migrations_in() const { return migrations_in_; }
  // Rows currently in owned ranges (uninstrumented scan).
  uint64_t OwnedRowCount() const;

 private:
  void DispatcherLoop();
  void CommitWorkerLoop();
  void MigrationLoop();
  void HandleDump(const NetMessage& request);
  void HandleCommit(const NetMessage& request);
  void HandleMigrateCmd(const MigrateCmd& cmd);
  void HandleInstall(const InstallRange& install);

  HtCluster& cluster_;
  Environment& env_;
  uint32_t index_;
  NodeId node_;
  ObjectId endpoint_;

  SimDisk commit_log_;
  SimMutex mutex_;  // guards memtable_ and (in fixed mode) ownership re-check
  std::vector<std::unique_ptr<SharedVar<int>>> owns_;  // per range, 0/1
  std::map<HtRangeId, std::map<uint64_t, std::string>> memtable_;

  std::unique_ptr<Channel<NetMessage>> commit_ch_;
  std::unique_ptr<Channel<NetMessage>> migrate_ch_;

  uint64_t rows_committed_ = 0;
  uint64_t rows_orphaned_ = 0;
  uint64_t not_owner_replies_ = 0;
  uint64_t migrations_out_ = 0;
  uint64_t migrations_in_ = 0;
};

}  // namespace ddr

#endif  // SRC_HT_RANGE_SERVER_H_
