#include "src/ht/hypertable_program.h"

#include "src/util/logging.h"

namespace ddr {

HypertableProgram::HypertableProgram(uint64_t world_seed, HtConfig config)
    : world_rng_(world_seed) {
  cluster_.config = config;
}

void HypertableProgram::Configure(Environment& env) {
  cluster_.env = &env;
  cluster_.regions.Register(env);

  client_rngs_.clear();
  client_inputs_.clear();
  client_rngs_.reserve(cluster_.config.num_clients);  // stable pointers below
  for (uint32_t c = 0; c < cluster_.config.num_clients; ++c) {
    client_rngs_.push_back(world_rng_.Fork());
    Rng* rng = &client_rngs_.back();
    client_inputs_.push_back(env.RegisterInputSource(
        "ht.client" + std::to_string(c) + ".rows", [rng] { return rng->Next(); }));
  }

  env.SetIoSpec([this](const Outcome& outcome) -> std::optional<FailureInfo> {
    (void)outcome;
    if (acked_total_ == 0 || dump_total_ >= acked_total_) {
      return std::nullopt;
    }
    FailureInfo failure;
    failure.kind = FailureKind::kSpecViolation;
    failure.message = kFailureMessage;
    failure.node = 0;
    return failure;
  });
}

void HypertableProgram::Main(Environment& env) {
  // ---- topology
  cluster_.master_node = env.AddNode("ht.master");
  for (uint32_t s = 0; s < cluster_.config.num_servers; ++s) {
    cluster_.server_nodes.push_back(env.AddNode("ht.srv" + std::to_string(s)));
  }
  cluster_.client_node = 0;  // clients run on the root node

  NetworkOptions net_options;
  net_options.base_latency = 40 * kMicrosecond;
  net_options.jitter_mean = 15 * kMicrosecond;
  net_ = std::make_unique<Network>(env, net_options);
  cluster_.net = net_.get();

  cluster_.master_ep = net_->CreateEndpoint(cluster_.master_node, "ht.master.ep");
  for (uint32_t s = 0; s < cluster_.config.num_servers; ++s) {
    cluster_.server_eps.push_back(net_->CreateEndpoint(
        cluster_.server_nodes[s], "ht.srv" + std::to_string(s) + ".ep"));
  }
  for (uint32_t c = 0; c < cluster_.config.num_clients; ++c) {
    cluster_.client_eps.push_back(net_->CreateEndpoint(
        cluster_.client_node, "ht.client" + std::to_string(c) + ".ep"));
  }

  // ---- components
  master_ = std::make_unique<HtMaster>(cluster_);
  const auto placement = master_->InitialPlacement();
  for (uint32_t s = 0; s < cluster_.config.num_servers; ++s) {
    servers_.push_back(std::make_unique<RangeServer>(cluster_, s));
    servers_.back()->SetInitialOwnership(placement[s]);
    servers_.back()->Start();
  }
  master_->Start();

  // ---- concurrent load (the failing workflow of issue 63)
  for (uint32_t c = 0; c < cluster_.config.num_clients; ++c) {
    clients_.push_back(std::make_unique<HtClient>(cluster_, c, client_inputs_[c]));
  }
  std::vector<FiberId> loaders;
  for (uint32_t c = 0; c < cluster_.config.num_clients; ++c) {
    HtClient* client = clients_[c].get();
    loaders.push_back(env.Spawn("ht.load" + std::to_string(c), [this, client] {
      client->LoadRows(cluster_.config.rows_per_client);
    }));
  }
  for (FiberId loader : loaders) {
    env.Join(loader);
  }
  for (const auto& client : clients_) {
    acked_total_ += client->acked();
  }

  // ---- verification dump ("subsequent dumps of the table do not return
  // all rows")
  dump_total_ = clients_[0]->DumpTable();
  env.EmitOutput(dump_total_, static_cast<uint32_t>(dump_total_ *
                                                    cluster_.config.row_bytes));
}

uint64_t HypertableProgram::orphaned_rows() const {
  uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->rows_orphaned();
  }
  return total;
}

}  // namespace ddr
