// ScenarioPrep: the immutable per-scenario work that happens before any
// determinism model runs.
//
// Preparing a scenario means (1) locating the failing "production"
// execution by seed search and (2) the pre-release training run that
// classifies control-plane regions and learns invariants for RCSE. Both
// are pure functions of the BugScenario, so the result can be computed
// once and shared — across every model the harness runs, and across the
// batch runner's worker threads (each worker constructs its own
// ExperimentHarness around the same shared prep instead of redoing the
// seed search per scenario x model task).

#ifndef SRC_CORE_SCENARIO_PREP_H_
#define SRC_CORE_SCENARIO_PREP_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/invariants.h"
#include "src/core/bug_scenario.h"
#include "src/util/status.h"

namespace ddr {

// What the pre-release training run produces: plane classification and
// learned invariants. Only RCSE recorders consume these. Kept behind a
// shared_ptr on ScenarioPrep so attaching training never copies the
// (potentially large) production trace.
struct TrainingArtifacts {
  std::set<RegionId> control_regions;
  InvariantSet invariants;
  std::vector<std::string> region_names;  // index = RegionId
};

struct ScenarioPrep {
  // The failing production execution.
  uint64_t production_sched_seed = 0;
  Outcome production_outcome;
  std::vector<Event> production_trace;
  double production_wall_seconds = 0.0;

  // Null until the training run has happened (see ComputeTrainingArtifacts).
  std::shared_ptr<const TrainingArtifacts> training;

  // Runs the seed search and (when `include_training`) the training run.
  // Fails with NotFound when no schedule seed in the scenario's search
  // range produces a failure. The harness prepares without training and
  // upgrades lazily on first RCSE use; pass include_training = true to
  // front-load it (the batch runner does, so worker harnesses never each
  // redo it).
  static Result<ScenarioPrep> Compute(const BugScenario& scenario,
                                      bool include_training = false);
};

// Runs the pre-release training run (plane classification + invariant
// inference). Pure function of the scenario.
std::shared_ptr<const TrainingArtifacts> ComputeTrainingArtifacts(
    const BugScenario& scenario);

}  // namespace ddr

#endif  // SRC_CORE_SCENARIO_PREP_H_
