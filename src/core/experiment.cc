#include "src/core/experiment.h"

#include <chrono>
#include <utility>

#include "src/util/logging.h"

namespace ddr {

ExperimentHarness::ExperimentHarness(BugScenario scenario)
    : scenario_(std::move(scenario)) {
  CHECK(scenario_.make_program != nullptr) << "scenario needs make_program";
}

Status ExperimentHarness::Prepare() {
  if (prepared_) {
    return OkStatus();
  }
  uint64_t first_seed = scenario_.production_sched_seed;
  uint64_t last_seed = scenario_.production_sched_seed;
  if (scenario_.production_sched_seed == 0) {
    first_seed = BugScenario::kProductionSeedBase + 1;
    last_seed = BugScenario::kProductionSeedBase + scenario_.max_seed_search;
  }
  for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    Environment::Options options = scenario_.env_options;
    options.seed = seed;
    Environment env(options);
    CollectingSink sink;
    env.AddTraceSink(&sink);
    std::unique_ptr<SimProgram> program =
        scenario_.make_program(scenario_.production_world_seed);
    Outcome outcome = env.Run(*program);
    if (outcome.Failed()) {
      production_sched_seed_ = seed;
      production_outcome_ = std::move(outcome);
      production_trace_ = sink.events();
      production_wall_seconds_ = production_outcome_.stats.wall_seconds;
      prepared_ = true;
      return OkStatus();
    }
  }
  return NotFoundError("no failing production execution found for scenario '" +
                       scenario_.name + "'");
}

ExperimentHarness::ProductionRun ExperimentHarness::RunProduction(
    Recorder* recorder, CollectingSink* sink) {
  CHECK(prepared_) << "call Prepare() first";
  Environment::Options options = scenario_.env_options;
  options.seed = production_sched_seed_;
  Environment env(options);
  if (recorder != nullptr) {
    recorder->AttachEnvironment(&env);
    env.AddTraceSink(recorder);
  }
  if (sink != nullptr) {
    env.AddTraceSink(sink);
  }
  std::unique_ptr<SimProgram> program =
      scenario_.make_program(scenario_.production_world_seed);
  ProductionRun run;
  run.outcome = env.Run(*program);
  run.cpu_nanos = env.cpu_nanos();
  run.overhead_nanos = env.recording_overhead_nanos();
  run.recorded_bytes = env.recorded_bytes();
  run.wall_seconds = run.outcome.stats.wall_seconds;
  // Recording must never perturb the execution.
  CHECK_EQ(run.outcome.trace_fingerprint, production_outcome_.trace_fingerprint)
      << "recorder perturbed the production execution";
  return run;
}

void ExperimentHarness::RunTrainingIfNeeded() {
  if (trained_) {
    return;
  }
  trained_ = true;

  Environment::Options options = scenario_.env_options;
  options.seed = scenario_.training_sched_seed;
  Environment env(options);
  PlaneProfiler profiler;
  CollectingSink sink;
  env.AddTraceSink(&profiler);
  env.AddTraceSink(&sink);
  std::unique_ptr<SimProgram> program =
      scenario_.make_program(scenario_.training_world_seed);
  (void)env.Run(*program);

  region_names_.clear();
  for (size_t i = 0; i < env.num_regions(); ++i) {
    region_names_.push_back(env.region_name(static_cast<RegionId>(i)));
  }

  control_regions_.clear();
  if (!scenario_.control_region_names.empty()) {
    for (size_t i = 0; i < region_names_.size(); ++i) {
      for (const std::string& name : scenario_.control_region_names) {
        if (region_names_[i] == name) {
          control_regions_.insert(static_cast<RegionId>(i));
        }
      }
    }
  } else {
    for (RegionId region : PlaneClassifier::ControlRegions(
             profiler.profiles(), scenario_.classifier_options)) {
      control_regions_.insert(region);
    }
  }

  InvariantInference inference(/*range_slack=*/0.1);
  inference.ObserveTrace(sink.events());
  trained_invariants_ = inference.Infer();
}

std::unique_ptr<Recorder> ExperimentHarness::MakeRecorder(DeterminismModel model) {
  switch (model) {
    case DeterminismModel::kPerfect:
      return std::make_unique<PerfectRecorder>();
    case DeterminismModel::kValue:
      return std::make_unique<ValueRecorder>();
    case DeterminismModel::kOutputHeavy:
      return std::make_unique<OutputRecorder>(OutputRecorder::Mode::kOdrHeavy);
    case DeterminismModel::kOutputOnly:
      return std::make_unique<OutputRecorder>(OutputRecorder::Mode::kOutputsOnly);
    case DeterminismModel::kFailure:
      return std::make_unique<FailureRecorder>();
    case DeterminismModel::kDebugRcse: {
      RunTrainingIfNeeded();
      RcseOptions options;
      options.mode = scenario_.rcse_mode;
      options.control_regions = control_regions_;
      options.dial_down_after = scenario_.rcse_dial_down_after;
      auto triggers = std::make_unique<TriggerSet>();
      if (scenario_.rcse_mode != RcseMode::kCodeBased) {
        triggers->Add(std::make_unique<RaceTrigger>());
        if (scenario_.configure_triggers) {
          scenario_.configure_triggers(triggers.get(), trained_invariants_);
        }
      }
      return std::make_unique<RcseRecorder>(options, std::move(triggers));
    }
  }
  LOG(FATAL) << "unreachable";
  return nullptr;
}

ReplayTarget ExperimentHarness::MakeReplayTarget() const {
  ReplayTarget target;
  target.make_program = scenario_.make_program;
  target.env_options = scenario_.env_options;
  target.candidate_fault_plans = scenario_.candidate_fault_plans;
  target.input_domains = scenario_.input_domains;
  target.symbolic_model = scenario_.symbolic_model;
  target.world_seeds_to_try = scenario_.world_seeds_to_try;
  target.sched_seeds_to_try = scenario_.sched_seeds_to_try;
  return target;
}

RecordedExecution ExperimentHarness::Record(DeterminismModel model) {
  CHECK(prepared_) << "call Prepare() first";
  std::unique_ptr<Recorder> recorder = MakeRecorder(model);
  ProductionRun recorded = RunProduction(recorder.get(), nullptr);

  RecordedExecution recording;
  recording.model = recorder->model_name();
  recording.log = recorder->TakeLog();
  recording.snapshot = FailureSnapshot::FromOutcome(recorded.outcome);
  recording.recorded_bytes = recorded.recorded_bytes;
  recording.overhead_nanos = recorded.overhead_nanos;
  recording.cpu_nanos = recorded.cpu_nanos;
  recording.intercepted_events = recorder->intercepted_events();
  recording.recorded_events = recorder->recorded_events();
  recording.original_outcome = recorded.outcome;
  return recording;
}

ExperimentRow ExperimentHarness::ReplayAndScore(DeterminismModel model,
                                                const RecordedExecution& recording,
                                                double original_wall_seconds) {
  CHECK(prepared_) << "call Prepare() first";
  ExperimentRow row;
  row.model = model;
  row.model_name = std::string(DeterminismModelName(model));
  row.overhead_multiplier = recording.OverheadMultiplier();
  row.log_bytes = recording.TotalLogBytes();
  row.recorded_events = recording.recorded_events;
  row.original_wall_seconds = original_wall_seconds;

  // 2. Replay from the recording alone.
  Replayer replayer(MakeReplayTarget(), scenario_.inference_budget);
  ReplayResult replay = replayer.Replay(recording, ReplayModeFor(model));
  row.failure_reproduced = replay.failure_reproduced;
  row.divergences = replay.divergences;
  row.inference = replay.inference;
  row.input_assignment = replay.input_assignment;
  row.replay_wall_seconds = replay.wall_seconds;

  // 3. Score.
  const FidelityResult fidelity = EvaluateFidelity(scenario_.catalog, replay);
  row.diagnosed_cause = fidelity.diagnosed_cause;
  row.fidelity = fidelity.value();
  row.efficiency = DebuggingEfficiency(row.original_wall_seconds, replay.wall_seconds);
  row.utility = DebuggingUtility(row.fidelity, row.efficiency);

  if (model == DeterminismModel::kDebugRcse) {
    last_rcse_row_ = row;
  }
  return row;
}

ExperimentRow ExperimentHarness::RunModel(DeterminismModel model) {
  RecordedExecution recording = Record(model);
  return ReplayAndScore(model, recording,
                        recording.original_outcome.stats.wall_seconds);
}

Status ExperimentHarness::SaveRecording(const RecordedExecution& recording,
                                        const std::string& path,
                                        TraceWriteOptions options) const {
  options.scenario = scenario_.name;
  options.original_wall_seconds = recording.original_outcome.stats.wall_seconds;
  return TraceStore::Save(path, recording, options);
}

Result<RecordedExecution> ExperimentHarness::LoadRecording(
    const std::string& path, double* original_wall_seconds) {
  ASSIGN_OR_RETURN(TraceReader reader, TraceReader::Open(path));
  if (original_wall_seconds != nullptr) {
    *original_wall_seconds = reader.metadata().original_wall_seconds;
  }
  return reader.ReadRecordedExecution();
}

Result<ExperimentRow> ExperimentHarness::RunModelFromFile(
    DeterminismModel model, const std::string& path) {
  RecordedExecution recording = Record(model);
  RETURN_IF_ERROR(SaveRecording(recording, path));
  double original_wall_seconds = 0.0;
  ASSIGN_OR_RETURN(RecordedExecution loaded,
                   LoadRecording(path, &original_wall_seconds));
  return ReplayAndScore(model, loaded, original_wall_seconds);
}

std::vector<ExperimentRow> ExperimentHarness::RunAllModels() {
  std::vector<ExperimentRow> rows;
  for (DeterminismModel model : AllDeterminismModels()) {
    rows.push_back(RunModel(model));
  }
  return rows;
}

}  // namespace ddr
