#include "src/core/experiment.h"

#include <utility>

#include "src/util/logging.h"

namespace ddr {

ExperimentHarness::ExperimentHarness(BugScenario scenario)
    : scenario_(std::move(scenario)) {
  CHECK(scenario_.make_program != nullptr) << "scenario needs make_program";
}

ExperimentHarness::ExperimentHarness(BugScenario scenario,
                                     std::shared_ptr<const ScenarioPrep> prep)
    : scenario_(std::move(scenario)), prep_(std::move(prep)) {
  CHECK(scenario_.make_program != nullptr) << "scenario needs make_program";
  CHECK(prep_ != nullptr) << "shared prep must be non-null";
}

const ScenarioPrep& ExperimentHarness::prep() const {
  CHECK(prep_ != nullptr) << "call Prepare() first";
  return *prep_;
}

const std::set<RegionId>& ExperimentHarness::control_regions() const {
  static const std::set<RegionId> kNoRegions;
  if (training_ != nullptr) {
    return training_->control_regions;
  }
  if (prep_ != nullptr && prep_->training != nullptr) {
    return prep_->training->control_regions;
  }
  return kNoRegions;
}

Status ExperimentHarness::Prepare() {
  if (prep_ != nullptr) {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(ScenarioPrep prep, ScenarioPrep::Compute(scenario_));
  prep_ = std::make_shared<const ScenarioPrep>(std::move(prep));
  return OkStatus();
}

ExperimentHarness::ProductionRun ExperimentHarness::RunProduction(
    Recorder* recorder, CollectingSink* sink) {
  const ScenarioPrep& prepared = prep();
  Environment::Options options = scenario_.env_options;
  options.seed = prepared.production_sched_seed;
  Environment env(options);
  if (recorder != nullptr) {
    recorder->AttachEnvironment(&env);
    env.AddTraceSink(recorder);
  }
  if (sink != nullptr) {
    env.AddTraceSink(sink);
  }
  std::unique_ptr<SimProgram> program =
      scenario_.make_program(scenario_.production_world_seed);
  ProductionRun run;
  run.outcome = env.Run(*program);
  run.cpu_nanos = env.cpu_nanos();
  run.overhead_nanos = env.recording_overhead_nanos();
  run.recorded_bytes = env.recorded_bytes();
  run.wall_seconds = run.outcome.stats.wall_seconds;
  // Recording must never perturb the execution.
  CHECK_EQ(run.outcome.trace_fingerprint,
           prepared.production_outcome.trace_fingerprint)
      << "recorder perturbed the production execution";
  return run;
}

std::unique_ptr<Recorder> ExperimentHarness::MakeRecorder(DeterminismModel model) {
  switch (model) {
    case DeterminismModel::kPerfect:
      return std::make_unique<PerfectRecorder>();
    case DeterminismModel::kValue:
      return std::make_unique<ValueRecorder>();
    case DeterminismModel::kOutputHeavy:
      return std::make_unique<OutputRecorder>(OutputRecorder::Mode::kOdrHeavy);
    case DeterminismModel::kOutputOnly:
      return std::make_unique<OutputRecorder>(OutputRecorder::Mode::kOutputsOnly);
    case DeterminismModel::kFailure:
      return std::make_unique<FailureRecorder>();
    case DeterminismModel::kDebugRcse: {
      // Training is lazy: non-RCSE users never pay for it. Adopt the
      // prep's artifacts when it was computed with training (the batch
      // runner front-loads that for RCSE grids); otherwise run the
      // training run now, once per harness.
      if (training_ == nullptr) {
        training_ = prep().training != nullptr
                        ? prep().training
                        : ComputeTrainingArtifacts(scenario_);
      }
      RcseOptions options;
      options.mode = scenario_.rcse_mode;
      options.control_regions = training_->control_regions;
      options.dial_down_after = scenario_.rcse_dial_down_after;
      auto triggers = std::make_unique<TriggerSet>();
      if (scenario_.rcse_mode != RcseMode::kCodeBased) {
        triggers->Add(std::make_unique<RaceTrigger>());
        if (scenario_.configure_triggers) {
          scenario_.configure_triggers(triggers.get(), training_->invariants);
        }
      }
      return std::make_unique<RcseRecorder>(options, std::move(triggers));
    }
  }
  LOG(FATAL) << "unreachable";
  return nullptr;
}

ReplayTarget ExperimentHarness::MakeReplayTarget() const {
  ReplayTarget target;
  target.make_program = scenario_.make_program;
  target.env_options = scenario_.env_options;
  target.candidate_fault_plans = scenario_.candidate_fault_plans;
  target.input_domains = scenario_.input_domains;
  target.symbolic_model = scenario_.symbolic_model;
  target.world_seeds_to_try = scenario_.world_seeds_to_try;
  target.sched_seeds_to_try = scenario_.sched_seeds_to_try;
  return target;
}

RecordedExecution ExperimentHarness::Record(DeterminismModel model) {
  std::unique_ptr<Recorder> recorder = MakeRecorder(model);
  ProductionRun recorded = RunProduction(recorder.get(), nullptr);

  RecordedExecution recording;
  recording.model = recorder->model_name();
  recording.log = recorder->TakeLog();
  recording.snapshot = FailureSnapshot::FromOutcome(recorded.outcome);
  recording.recorded_bytes = recorded.recorded_bytes;
  recording.overhead_nanos = recorded.overhead_nanos;
  recording.cpu_nanos = recorded.cpu_nanos;
  recording.intercepted_events = recorder->intercepted_events();
  recording.recorded_events = recorder->recorded_events();
  recording.original_outcome = recorded.outcome;
  return recording;
}

TraceFinishInfo ExperimentHarness::MakeFinishInfo(
    const Recorder& recorder, const ProductionRun& run) const {
  TraceFinishInfo info;
  info.model = recorder.model_name();
  info.snapshot = FailureSnapshot::FromOutcome(run.outcome);
  info.recorded_bytes = run.recorded_bytes;
  info.overhead_nanos = run.overhead_nanos;
  info.cpu_nanos = run.cpu_nanos;
  info.intercepted_events = recorder.intercepted_events();
  info.recorded_events = recorder.recorded_events();
  info.scenario = scenario_.name;
  info.original_wall_seconds = run.wall_seconds;
  return info;
}

Result<TraceFinishInfo> ExperimentHarness::RecordStreaming(
    DeterminismModel model, StreamingTraceWriter* writer) {
  std::unique_ptr<Recorder> recorder = MakeRecorder(model);
  recorder->SetStreamSink(writer,
                          static_cast<size_t>(writer->events_per_chunk()));
  ProductionRun recorded = RunProduction(recorder.get(), nullptr);
  RETURN_IF_ERROR(recorder->FlushStream());
  return MakeFinishInfo(*recorder, recorded);
}

ExperimentRow ExperimentHarness::ReplayAndScore(DeterminismModel model,
                                                const RecordedExecution& recording,
                                                double original_wall_seconds) {
  (void)prep();  // must be prepared
  ExperimentRow row;
  row.model = model;
  row.model_name = std::string(DeterminismModelName(model));
  row.overhead_multiplier = recording.OverheadMultiplier();
  row.log_bytes = recording.TotalLogBytes();
  row.recorded_events = recording.recorded_events;
  row.original_wall_seconds = original_wall_seconds;

  // 2. Replay from the recording alone.
  Replayer replayer(MakeReplayTarget(), scenario_.inference_budget);
  ReplayResult replay = replayer.Replay(recording, ReplayModeFor(model));
  row.failure_reproduced = replay.failure_reproduced;
  row.divergences = replay.divergences;
  row.inference = replay.inference;
  row.input_assignment = replay.input_assignment;
  row.replay_wall_seconds = replay.wall_seconds;

  // 3. Score.
  const FidelityResult fidelity = EvaluateFidelity(scenario_.catalog, replay);
  row.diagnosed_cause = fidelity.diagnosed_cause;
  row.fidelity = fidelity.value();
  row.efficiency = DebuggingEfficiency(row.original_wall_seconds, replay.wall_seconds);
  row.utility = DebuggingUtility(row.fidelity, row.efficiency);

  if (model == DeterminismModel::kDebugRcse) {
    last_rcse_row_ = row;
  }
  return row;
}

ExperimentRow ExperimentHarness::RunModel(DeterminismModel model) {
  RecordedExecution recording = Record(model);
  return ReplayAndScore(model, recording,
                        recording.original_outcome.stats.wall_seconds);
}

Status ExperimentHarness::SaveRecording(const RecordedExecution& recording,
                                        const std::string& path,
                                        TraceWriteOptions options) const {
  options.scenario = scenario_.name;
  options.original_wall_seconds = recording.original_outcome.stats.wall_seconds;
  return TraceStore::Save(path, recording, options);
}

Result<RecordedExecution> ExperimentHarness::LoadRecording(
    const std::string& path, double* original_wall_seconds) {
  ASSIGN_OR_RETURN(TraceReader reader, TraceReader::Open(path));
  if (original_wall_seconds != nullptr) {
    *original_wall_seconds = reader.metadata().original_wall_seconds;
  }
  return reader.ReadRecordedExecution();
}

Result<ExperimentRow> ExperimentHarness::RunModelFromFile(
    DeterminismModel model, const std::string& path) {
  RecordedExecution recording = Record(model);
  RETURN_IF_ERROR(SaveRecording(recording, path));
  double original_wall_seconds = 0.0;
  ASSIGN_OR_RETURN(RecordedExecution loaded,
                   LoadRecording(path, &original_wall_seconds));
  return ReplayAndScore(model, loaded, original_wall_seconds);
}

std::vector<ExperimentRow> ExperimentHarness::RunAllModels() {
  std::vector<ExperimentRow> rows;
  for (DeterminismModel model : AllDeterminismModels()) {
    rows.push_back(RunModel(model));
  }
  return rows;
}

}  // namespace ddr
