// Debugging-utility metrics (§3.2).
//
//   Debugging fidelity (DF): 1 if the replayed execution reproduces the
//     original failure AND the original root cause; 1/n if it reproduces the
//     failure via a different root cause (n = number of possible root causes
//     for the observed failure); 0 if the failure is not reproduced.
//   Debugging efficiency (DE): duration of the original execution divided by
//     the time the tool takes to reproduce the failure, including analysis
//     time. Can exceed 1 when a synthesized execution is shorter than the
//     original.
//   Debugging utility (DU): DF x DE.

#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <optional>
#include <string>

#include "src/analysis/root_cause.h"
#include "src/record/recorded_execution.h"
#include "src/replay/replayer.h"

namespace ddr {

struct FidelityResult {
  bool failure_reproduced = false;
  bool actual_cause_present = false;
  size_t num_possible_causes = 1;
  std::optional<std::string> diagnosed_cause;

  double value() const {
    if (!failure_reproduced) {
      return 0.0;
    }
    if (actual_cause_present) {
      return 1.0;
    }
    return 1.0 / static_cast<double>(num_possible_causes == 0 ? 1 : num_possible_causes);
  }
};

// Scores a replayed execution against the catalog of possible root causes.
FidelityResult EvaluateFidelity(const RootCauseCatalog& catalog,
                                const ReplayResult& replay);

// original_seconds: wall duration of the original (production) execution.
// reproduce_seconds: total tool time to produce the replayed execution,
// including inference and analysis.
double DebuggingEfficiency(double original_seconds, double reproduce_seconds);

inline double DebuggingUtility(double fidelity, double efficiency) {
  return fidelity * efficiency;
}

}  // namespace ddr

#endif  // SRC_CORE_METRICS_H_
