// Root-cause-driven selectivity (§3.1): the debug-determinism recorder.
//
// Variants:
//   kCodeBased  (§3.1.1) — record control-plane regions at full fidelity
//                          (plus the global skeleton: schedule, sync, RNG),
//                          relax data-plane regions;
//   kDataBased  (§3.1.2) — record only the skeleton until a data condition
//                          fires (invariant violation, oversized request),
//                          then dial fidelity up;
//   kCombined   (§3.1.3) — both: code-based selection plus dynamic triggers
//                          (race detector, invariant monitor) that dial up,
//                          with dial-down after a quiet period (§3.1 end).

#ifndef SRC_CORE_RCSE_H_
#define SRC_CORE_RCSE_H_

#include <memory>
#include <set>
#include <string>
#include <utility>

#include "src/analysis/triggers.h"
#include "src/record/selective_recorder.h"

namespace ddr {

enum class RcseMode : uint8_t {
  kCodeBased = 0,
  kDataBased = 1,
  kCombined = 2,
};

std::string_view RcseModeName(RcseMode mode);

struct RcseOptions {
  RcseMode mode = RcseMode::kCodeBased;
  // Regions recorded at full fidelity while relaxed (code-based selection).
  std::set<RegionId> control_regions;
  // Return to relaxed fidelity after this long without a trigger firing;
  // <= 0 disables dial-down (stay at full once triggered).
  SimDuration dial_down_after = 10 * kMillisecond;
};

class RcseRecorder : public SelectiveRecorder {
 public:
  RcseRecorder(RcseOptions options, std::unique_ptr<TriggerSet> triggers);

  bool ShouldRecord(const Event& event) override;

  uint64_t trigger_fires() const { return trigger_fires_; }
  uint64_t dial_ups() const { return dial_ups_; }
  uint64_t dial_downs() const { return dial_downs_; }
  // Virtual time spent recording at full fidelity.
  SimDuration time_at_full() const { return time_at_full_; }
  const RcseOptions& rcse_options() const { return options_; }

 private:
  void DialUp(const Event& event);
  void MaybeDialDown(const Event& event);

  RcseOptions options_;
  std::unique_ptr<TriggerSet> triggers_;
  bool trigger_pending_ = false;
  SimTime last_fire_time_ = 0;
  SimTime full_since_ = 0;
  SimDuration time_at_full_ = 0;
  uint64_t trigger_fires_ = 0;
  uint64_t dial_ups_ = 0;
  uint64_t dial_downs_ = 0;
};

}  // namespace ddr

#endif  // SRC_CORE_RCSE_H_
