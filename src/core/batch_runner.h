// BatchRunner: scenario x determinism-model grids at scale.
//
// The paper's argument is an aggregate claim — fidelity/efficiency
// trade-offs only mean something measured across many bugs and workloads —
// so the unit of evaluation is a corpus run, not a single scenario.
// BatchRunner fans the ExperimentHarness pipeline out over a worker
// thread pool in two phases:
//
//   1. prep: each scenario's ScenarioPrep (seed search + training run) is
//      computed once, in parallel across scenarios, and shared immutably;
//   2. tasks: every scenario x model cell records, replays, and scores on
//      its own harness around the shared prep. When a corpus path is set,
//      each worker also serializes its recording to a DDRT image and the
//      bundle is written in deterministic task order afterwards.
//
// Every cell is an independent, deterministic computation, and results
// land in a pre-sized matrix indexed by task — so the report's
// deterministic fields are bit-identical whatever the thread count (only
// the wall-clock-derived timings vary run to run; see RowSignature).

#ifndef SRC_CORE_BATCH_RUNNER_H_
#define SRC_CORE_BATCH_RUNNER_H_

#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/trace/corpus.h"
#include "src/util/thread_annotations.h"

namespace ddr {

struct BatchOptions {
  // Worker threads for both phases. 1 = fully sequential.
  int threads = 1;
  // Models run for every scenario; empty = all six.
  std::vector<DeterminismModel> models;
  // When non-empty, every recording is written into this DDRC bundle
  // (entry names are "<scenario>/<model>").
  std::string corpus_path;
  // Chunking/compression/filter for corpus recordings.
  TraceWriteOptions trace_options;
  // Resume an interrupted or partial grid: when `corpus_path` names an
  // existing bundle, cells already present (matched by stamped scenario +
  // canonical determinism-model name — the deterministic prefix of their
  // RowSignature) are skipped, and only the missing cells record and
  // append through CorpusWriter::AppendTo. The report then contains
  // exactly the cells that ran; with nothing missing, the bundle is not
  // touched at all. A missing file degrades to a normal full build; a
  // corrupt one is an error, never silently rebuilt.
  bool resume = false;
  // How the missing cells land: the in-place journal append (the
  // default — bytes written are O(new cells + index), flat in the size
  // of the existing bundle) or the legacy copy-rewrite (O(file), but the
  // result is the canonical single-shot layout).
  CorpusAppendMode resume_mode = CorpusAppendMode::kInPlace;
  // I/O backend used to read the existing bundle on a resume (the index
  // probe and any AppendTo copying; nothing decodes, so there is no
  // cache knob here).
  RandomAccessFileOptions resume_io;
};

// One scenario x model cell of the grid.
struct BatchCell {
  std::string scenario;
  std::string recording_name;  // corpus entry name: "<scenario>/<model>"
  ExperimentRow row;
};

struct BatchReport {
  std::vector<BatchCell> cells;  // scenario-major, model-minor order

  // Serve-side I/O accounting, filled by ReplayCorpus: the backend that
  // actually served the reads, cold bytes pulled through the shared
  // handle, and the shared decoded-chunk cache's counters.
  std::string io_backend;
  uint64_t corpus_bytes_read = 0;
  ChunkCacheStats cache_stats;

  // Write-side accounting, filled by BatchRunner::Run when a corpus is
  // written: physical bytes pushed to disk — the whole file for a fresh
  // build or rewrite-mode resume, only the delta for an in-place resume
  // (the number the O(delta) append guarantee is smoke-tested on).
  uint64_t corpus_bytes_written = 0;

  // One JSON object per cell (the machine-readable aggregate report).
  std::string ToJsonLines() const;
  Status WriteJsonLines(const std::string& path) const;
};

// The deterministic content of a row: everything except wall-clock-derived
// values (replay seconds, efficiency, utility, and the inference counters,
// whose search is cut off by a wall-clock budget). Equal signatures <=>
// the runs recorded, replayed, and diagnosed identically.
std::string RowSignature(const BatchCell& cell);

class BatchRunner {
 public:
  BatchRunner(std::vector<BugScenario> scenarios, BatchOptions options);

  // Runs the full grid. Fails if any scenario fails to prepare or any
  // corpus write fails; individual cells cannot fail (recording + scoring
  // are total functions of the prep).
  Result<BatchReport> Run();

 private:
  std::vector<BugScenario> scenarios_;
  BatchOptions options_;
};

// Scores individual corpus entries through the replay pipeline, sharing
// one lazily-built ScenarioPrep per scenario across every call and every
// thread. This is the per-request half of ReplayCorpus, split out so a
// long-lived server can score entries one at a time — arriving on any
// worker thread, against a reader that gets Reopen'd between calls —
// while paying each scenario's seed search exactly once for the life of
// the scorer. Results are bit-identical (RowSignature) to a ReplayCorpus
// pass over the same bundle: same prep (include_training=false), same
// window read path, same ReplayAndScore.
class CorpusEntryScorer {
 public:
  explicit CorpusEntryScorer(std::vector<BugScenario> scenarios);

  // Replays + scores one entry read through `corpus`'s shared handle.
  // `model_override` empty = the entry's stamped model. Thread-safe; the
  // first caller needing a scenario computes its prep, concurrent callers
  // of the same scenario wait for that one computation.
  Result<BatchCell> ScoreEntry(const CorpusReader& corpus,
                               const CorpusEntry& entry,
                               const std::string& model_override = {}) const;

  const std::vector<BugScenario>& scenarios() const { return scenarios_; }

 private:
  // OK-status + prep pairs travel through shared_futures so a failed prep
  // is also computed once and replayed to every waiter.
  using PrepResult = std::pair<Status, std::shared_ptr<const ScenarioPrep>>;

  Result<std::shared_ptr<const ScenarioPrep>> PrepFor(
      size_t scenario_index) const;

  std::vector<BugScenario> scenarios_;
  std::map<std::string, size_t> index_;  // scenario name -> scenarios_ index
  mutable Mutex mu_;
  mutable std::map<size_t, std::shared_future<PrepResult>> preps_
      GUARDED_BY(mu_);
};

struct ReplayCorpusOptions {
  // Worker threads scoring entries; all of them share one CorpusReader
  // handle and one decoded-chunk cache.
  int threads = 1;
  CorpusReaderOptions reader;
};

// Replays every recording of a DDRC corpus through the scoring pipeline:
// entries are grouped by their stamped scenario name, each scenario is
// prepared once (from `scenarios`), and each entry is read through a
// per-task TraceReader window over the bundle's single shared handle and
// scored with ReplayAndScore — the serve-side half of the batch pipeline.
// Entry order is preserved.
Result<BatchReport> ReplayCorpus(const std::string& corpus_path,
                                 const std::vector<BugScenario>& scenarios,
                                 const ReplayCorpusOptions& options);
Result<BatchReport> ReplayCorpus(const std::string& corpus_path,
                                 const std::vector<BugScenario>& scenarios,
                                 int threads = 1);

}  // namespace ddr

#endif  // SRC_CORE_BATCH_RUNNER_H_
