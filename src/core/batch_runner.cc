#include "src/core/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "src/trace/corpus.h"
#include "src/util/string_util.h"
#include "src/util/thread_annotations.h"

namespace ddr {

namespace {

// Runs `count` independent tasks on up to `threads` workers. Tasks are
// claimed through an atomic counter, so placement of results (indexed by
// task) is identical whatever the interleaving.
void RunTasks(int threads, size_t count,
              const std::function<void(size_t)>& task) {
  const size_t workers = static_cast<size_t>(std::max(threads, 1));
  if (workers <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      task(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<ddr::OsThread> pool;
  const size_t spawned = std::min(workers, count);
  pool.reserve(spawned);
  for (size_t w = 0; w < spawned; ++w) {
    pool.emplace_back([&]() {
      for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        task(i);
      }
    });
  }
  for (ddr::OsThread& worker : pool) {
    worker.join();
  }
}

}  // namespace

std::string BatchReport::ToJsonLines() const {
  std::string out;
  for (const BatchCell& cell : cells) {
    const ExperimentRow& row = cell.row;
    out += StrPrintf(
        "{\"scenario\":\"%s\",\"recording\":\"%s\",\"model\":\"%s\","
        "\"overhead\":%.6g,\"log_bytes\":%llu,\"recorded_events\":%llu,"
        "\"fidelity\":%.6g,\"efficiency\":%.6g,\"utility\":%.6g,"
        "\"failure_reproduced\":%s,\"diagnosed\":\"%s\","
        "\"divergences\":%llu,\"original_wall_seconds\":%.6g,"
        "\"replay_wall_seconds\":%.6g}\n",
        JsonEscape(cell.scenario).c_str(),
        JsonEscape(cell.recording_name).c_str(),
        JsonEscape(row.model_name).c_str(), row.overhead_multiplier,
        static_cast<unsigned long long>(row.log_bytes),
        static_cast<unsigned long long>(row.recorded_events), row.fidelity,
        row.efficiency, row.utility, row.failure_reproduced ? "true" : "false",
        JsonEscape(row.diagnosed_cause.value_or("")).c_str(),
        static_cast<unsigned long long>(row.divergences),
        row.original_wall_seconds, row.replay_wall_seconds);
  }
  return out;
}

Status BatchReport::WriteJsonLines(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot open batch report for writing: " + path);
  }
  const std::string body = ToJsonLines();
  const bool written = std::fwrite(body.data(), 1, body.size(), file) ==
                       body.size();
  std::fclose(file);
  if (!written) {
    return UnavailableError("short write to batch report: " + path);
  }
  return OkStatus();
}

std::string RowSignature(const BatchCell& cell) {
  const ExperimentRow& row = cell.row;
  // Inference attempt/event counters are deliberately excluded: the
  // inference search is bounded by a wall-clock budget
  // (InferenceBudget::max_wall_seconds), so on a loaded machine those
  // counters can legitimately differ between runs that reach the same
  // verdict. Everything below is a pure function of the recording.
  std::string signature = StrPrintf(
      "%s|%s|%s|%.17g|%llu|%llu|%d|%s|%llu|%.17g",
      cell.scenario.c_str(), cell.recording_name.c_str(),
      row.model_name.c_str(), row.overhead_multiplier,
      static_cast<unsigned long long>(row.log_bytes),
      static_cast<unsigned long long>(row.recorded_events),
      row.failure_reproduced ? 1 : 0,
      row.diagnosed_cause.value_or("<none>").c_str(),
      static_cast<unsigned long long>(row.divergences), row.fidelity);
  for (int64_t value : row.input_assignment) {
    signature += StrPrintf("|%lld", static_cast<long long>(value));
  }
  return signature;
}

BatchRunner::BatchRunner(std::vector<BugScenario> scenarios,
                         BatchOptions options)
    : scenarios_(std::move(scenarios)), options_(std::move(options)) {}

Result<BatchReport> BatchRunner::Run() {
  // Dedup the model list up front (aliases like "rcse"/"debug-rcse" parse
  // to the same model): duplicate cells would only collide on corpus
  // entry names after the whole grid had already run.
  std::vector<DeterminismModel> models =
      options_.models.empty() ? AllDeterminismModels() : options_.models;
  std::vector<DeterminismModel> unique_models;
  for (DeterminismModel model : models) {
    if (std::find(unique_models.begin(), unique_models.end(), model) ==
        unique_models.end()) {
      unique_models.push_back(model);
    }
  }
  models = std::move(unique_models);

  // Resume: lift the existing bundle's cell set, keyed by stamped
  // scenario + canonical model name (entry names may carry recorder
  // aliases like "rcse-combined"). Entries whose model string does not
  // parse belong to no grid cell and are simply carried over.
  const auto cell_key = [](const std::string& scenario,
                           DeterminismModel model) {
    return scenario + "\x1f" + std::string(DeterminismModelName(model));
  };
  bool appending = false;
  std::set<std::string> done_cells;
  if (options_.resume && !options_.corpus_path.empty()) {
    CorpusReaderOptions probe;
    probe.io = options_.resume_io;
    probe.cache_bytes = 0;
    auto existing = CorpusReader::Open(options_.corpus_path, probe);
    if (existing.ok()) {
      appending = true;
      for (const CorpusEntry& entry : existing->entries()) {
        if (auto model = ParseDeterminismModel(entry.model); model.ok()) {
          done_cells.insert(cell_key(entry.scenario, *model));
        }
      }
    } else if (existing.status().code() != StatusCode::kNotFound) {
      // A corrupt bundle must surface, not be silently rebuilt from zero.
      return existing.status();
    }
  }

  // The grid cells actually run this pass: all of them on a fresh build,
  // only the missing ones on a resume. Scenario-major, model-minor order
  // either way, so appended bundles line up with single-shot ones.
  struct CellSpec {
    size_t scenario = 0;
    DeterminismModel model = DeterminismModel::kPerfect;
  };
  std::vector<CellSpec> cell_specs;
  std::vector<bool> scenario_needed(scenarios_.size(), false);
  for (size_t s = 0; s < scenarios_.size(); ++s) {
    for (const DeterminismModel model : models) {
      if (appending && done_cells.count(cell_key(scenarios_[s].name, model))) {
        continue;
      }
      cell_specs.push_back(CellSpec{s, model});
      scenario_needed[s] = true;
    }
  }
  if (cell_specs.empty()) {
    // Nothing missing: do not rewrite (or even open) the bundle.
    return BatchReport{};
  }

  // Phase 1: prep every needed scenario once, in parallel. The training
  // run only matters to RCSE recorders, so it is skipped for grids (or
  // resume remainders) without them.
  bool needs_training = false;
  for (const CellSpec& spec : cell_specs) {
    needs_training |= spec.model == DeterminismModel::kDebugRcse;
  }
  std::vector<size_t> prep_targets;
  for (size_t s = 0; s < scenarios_.size(); ++s) {
    if (scenario_needed[s]) {
      prep_targets.push_back(s);
    }
  }
  std::vector<std::shared_ptr<const ScenarioPrep>> preps(scenarios_.size());
  std::vector<Status> prep_status(prep_targets.size());
  RunTasks(options_.threads, prep_targets.size(), [&](size_t i) {
    auto prep = ScenarioPrep::Compute(scenarios_[prep_targets[i]],
                                      needs_training);
    if (prep.ok()) {
      preps[prep_targets[i]] =
          std::make_shared<const ScenarioPrep>(std::move(*prep));
    } else {
      prep_status[i] = prep.status();
    }
  });
  for (const Status& status : prep_status) {
    RETURN_IF_ERROR(status);
  }

  // Phase 2: one task per cell. Each worker records on its own harness
  // (sharing the scenario's prep), scores, and — when a corpus is
  // requested — serializes the recording to a DDRT image so the bundle
  // write below is pure ordered I/O.
  struct TaskOutput {
    BatchCell cell;
    std::vector<uint8_t> image;
    std::string recorder_model;
    uint64_t event_count = 0;
    double wall_seconds = 0.0;
  };
  const size_t task_count = cell_specs.size();
  std::vector<TaskOutput> outputs(task_count);
  RunTasks(options_.threads, task_count, [&](size_t t) {
    const size_t s = cell_specs[t].scenario;
    const DeterminismModel model = cell_specs[t].model;
    ExperimentHarness harness(scenarios_[s], preps[s]);
    const RecordedExecution recording = harness.Record(model);

    TaskOutput& out = outputs[t];
    out.cell.scenario = scenarios_[s].name;
    out.cell.recording_name = scenarios_[s].name + "/" + recording.model;
    out.recorder_model = recording.model;
    out.event_count = recording.log.size();
    out.wall_seconds = recording.original_outcome.stats.wall_seconds;
    out.cell.row =
        harness.ReplayAndScore(model, recording, out.wall_seconds);

    if (!options_.corpus_path.empty()) {
      TraceWriteOptions trace_options = options_.trace_options;
      trace_options.scenario = scenarios_[s].name;
      trace_options.original_wall_seconds = out.wall_seconds;
      out.image = TraceWriter(trace_options).Serialize(recording);
    }
  });

  // Bundle write, in deterministic task order — a fresh build, or an
  // append that publishes nothing on any failure (the rewrite never
  // renames its temp file in; a failed in-place journal append leaves
  // only an unpublished torn tail the next append overwrites).
  uint64_t corpus_bytes_written = 0;
  if (!options_.corpus_path.empty()) {
    std::unique_ptr<CorpusWriter> corpus;
    if (appending) {
      CorpusAppendOptions append_options;
      append_options.mode = options_.resume_mode;
      append_options.io = options_.resume_io;
      ASSIGN_OR_RETURN(corpus, CorpusWriter::AppendTo(options_.corpus_path,
                                                      append_options));
    } else {
      corpus = std::make_unique<CorpusWriter>(options_.corpus_path);
      RETURN_IF_ERROR(corpus->Begin());
    }
    for (const TaskOutput& out : outputs) {
      RETURN_IF_ERROR(corpus->AddImage(out.cell.recording_name, out.image,
                                       out.recorder_model, out.cell.scenario,
                                       out.event_count, out.wall_seconds));
    }
    RETURN_IF_ERROR(corpus->Finish());
    corpus_bytes_written = corpus->bytes_written();
  }

  BatchReport report;
  report.corpus_bytes_written = corpus_bytes_written;
  report.cells.reserve(task_count);
  for (TaskOutput& out : outputs) {
    report.cells.push_back(std::move(out.cell));
  }
  return report;
}

Result<BatchReport> ReplayCorpus(const std::string& corpus_path,
                                 const std::vector<BugScenario>& scenarios,
                                 int threads) {
  ReplayCorpusOptions options;
  options.threads = threads;
  return ReplayCorpus(corpus_path, scenarios, options);
}

CorpusEntryScorer::CorpusEntryScorer(std::vector<BugScenario> scenarios)
    : scenarios_(std::move(scenarios)) {
  for (size_t i = 0; i < scenarios_.size(); ++i) {
    index_[scenarios_[i].name] = i;
  }
}

Result<std::shared_ptr<const ScenarioPrep>> CorpusEntryScorer::PrepFor(
    size_t scenario_index) const {
  // First caller for a scenario installs the future and computes outside
  // the lock; everyone else (including concurrent callers of *other*
  // scenarios, which compute their own preps in parallel) waits on the
  // shared future. A failed prep is cached too: recomputing a
  // deterministic failure per request would just be a slow way to fail.
  std::shared_future<PrepResult> future;
  std::promise<PrepResult> promise;
  bool compute = false;
  {
    MutexLock lock(mu_);
    auto it = preps_.find(scenario_index);
    if (it == preps_.end()) {
      compute = true;
      future = promise.get_future().share();
      preps_.emplace(scenario_index, future);
    } else {
      future = it->second;
    }
  }
  if (compute) {
    // Replaying never records, so the RCSE training artifacts are never
    // consumed here — skip the training run regardless of entry models.
    auto prep = ScenarioPrep::Compute(scenarios_[scenario_index],
                                      /*include_training=*/false);
    if (prep.ok()) {
      promise.set_value(PrepResult{
          OkStatus(), std::make_shared<const ScenarioPrep>(std::move(*prep))});
    } else {
      promise.set_value(PrepResult{prep.status(), nullptr});
    }
  }
  const PrepResult& result = future.get();
  RETURN_IF_ERROR(result.first);
  return result.second;
}

Result<BatchCell> CorpusEntryScorer::ScoreEntry(
    const CorpusReader& corpus, const CorpusEntry& entry,
    const std::string& model_override) const {
  auto it = index_.find(entry.scenario);
  if (it == index_.end()) {
    return NotFoundError("corpus entry '" + entry.name +
                         "' names unknown scenario '" + entry.scenario + "'");
  }
  ASSIGN_OR_RETURN(
      DeterminismModel model,
      ParseDeterminismModel(model_override.empty() ? entry.model
                                                   : model_override));
  ASSIGN_OR_RETURN(std::shared_ptr<const ScenarioPrep> prep,
                   PrepFor(it->second));
  // A cheap per-entry TraceReader window onto the corpus's shared handle:
  // no file open, and decoded chunks are shared through the corpus cache.
  ASSIGN_OR_RETURN(TraceReader trace, corpus.OpenTrace(entry));
  ASSIGN_OR_RETURN(RecordedExecution recording, trace.ReadRecordedExecution());
  ExperimentHarness harness(scenarios_[it->second], prep);
  BatchCell cell;
  cell.scenario = entry.scenario;
  cell.recording_name = entry.name;
  cell.row = harness.ReplayAndScore(model, recording,
                                    trace.metadata().original_wall_seconds);
  return cell;
}

Result<BatchReport> ReplayCorpus(const std::string& corpus_path,
                                 const std::vector<BugScenario>& scenarios,
                                 const ReplayCorpusOptions& options) {
  const int threads = options.threads;
  ASSIGN_OR_RETURN(CorpusReader corpus,
                   CorpusReader::Open(corpus_path, options.reader));

  // Validate every entry's scenario before any prep runs: a stray entry
  // must fail the pass upfront, not after minutes of seed search.
  CorpusEntryScorer scorer(scenarios);
  std::set<std::string> known;
  for (const BugScenario& scenario : scenarios) {
    known.insert(scenario.name);
  }
  for (const CorpusEntry& entry : corpus.entries()) {
    if (known.count(entry.scenario) == 0) {
      return NotFoundError("corpus entry '" + entry.name +
                           "' names unknown scenario '" + entry.scenario + "'");
    }
  }

  // Score every entry from the bundle alone. Preps build lazily inside
  // the scorer — the first worker to hit each scenario computes it,
  // workers on other scenarios compute theirs concurrently — and results
  // land indexed by entry, so placement is interleaving-independent.
  std::vector<BatchCell> cells(corpus.entries().size());
  std::vector<Status> cell_status(corpus.entries().size());
  RunTasks(threads, corpus.entries().size(), [&](size_t e) {
    auto cell = scorer.ScoreEntry(corpus, corpus.entries()[e]);
    if (cell.ok()) {
      cells[e] = std::move(*cell);
    } else {
      cell_status[e] = cell.status();
    }
  });
  for (const Status& status : cell_status) {
    RETURN_IF_ERROR(status);
  }

  BatchReport report;
  report.cells = std::move(cells);
  report.io_backend = std::string(IoBackendName(corpus.io_backend()));
  report.corpus_bytes_read = corpus.bytes_read();
  report.cache_stats = corpus.cache_stats();
  return report;
}

}  // namespace ddr
