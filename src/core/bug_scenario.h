// BugScenario: a program with a known defect, its root-cause catalog, and
// the hints inference may use — the unit of workload for the experiment
// harness, the batch runner, and the scenario registry.

#ifndef SRC_CORE_BUG_SCENARIO_H_
#define SRC_CORE_BUG_SCENARIO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/invariants.h"
#include "src/analysis/plane_classifier.h"
#include "src/analysis/root_cause.h"
#include "src/core/rcse.h"
#include "src/replay/replayer.h"

namespace ddr {

struct BugScenario {
  std::string name;

  // Builds a fresh program whose external input generators are seeded with
  // `world_seed`. Programs must create objects deterministically (see
  // src/sim/program.h).
  std::function<std::unique_ptr<SimProgram>(uint64_t world_seed)> make_program;

  // Template environment options (seed is overridden per run).
  Environment::Options env_options;

  // The "real world" of the production run.
  uint64_t production_world_seed = 2024;
  // If nonzero, use this schedule seed directly; otherwise search
  // [kProductionSeedBase + 1, kProductionSeedBase + max_seed_search] for the
  // first failing schedule. The base keeps the production schedule space
  // disjoint from the small seed range inference is allowed to search —
  // a replayer must not be able to "guess" the production schedule.
  static constexpr uint64_t kProductionSeedBase = 1000;
  uint64_t production_sched_seed = 0;
  uint64_t max_seed_search = 400;

  // Ground truth for fidelity scoring.
  RootCauseCatalog catalog;

  // Inference hints (see ReplayTarget).
  std::vector<FaultPlan> candidate_fault_plans;
  std::vector<ReplayTarget::InputDomain> input_domains;
  std::function<std::unique_ptr<CspProblem>(const std::vector<uint64_t>&)> symbolic_model;
  uint64_t world_seeds_to_try = 3;
  uint64_t sched_seeds_to_try = 10;
  InferenceBudget inference_budget;

  // RCSE configuration.
  RcseMode rcse_mode = RcseMode::kCodeBased;
  // Region names to treat as control plane; empty = auto-classify with the
  // plane profiler on a training run.
  std::vector<std::string> control_region_names;
  PlaneClassifierOptions classifier_options;
  SimDuration rcse_dial_down_after = 10 * kMillisecond;
  // Optional extra triggers for data-based/combined RCSE. Receives the
  // invariants learned from the training run.
  std::function<void(TriggerSet*, const InvariantSet&)> configure_triggers;
  // World/schedule seeds for the pre-release training run.
  uint64_t training_world_seed = 77;
  uint64_t training_sched_seed = 7;
};

}  // namespace ddr

#endif  // SRC_CORE_BUG_SCENARIO_H_
