#include "src/core/rcse.h"

namespace ddr {
namespace {

// The selection predicate applied at relaxed fidelity: code-based variants
// record any event attributed to a control-plane region ("the data on
// control-plane channels", §4); the skeleton is handled by AlwaysRecord.
bool ControlPlanePredicate(const std::set<RegionId>& control_regions,
                           const Event& event) {
  return control_regions.count(event.region) > 0;
}

}  // namespace

std::string_view RcseModeName(RcseMode mode) {
  switch (mode) {
    case RcseMode::kCodeBased:
      return "code-based";
    case RcseMode::kDataBased:
      return "data-based";
    case RcseMode::kCombined:
      return "combined";
  }
  return "unknown";
}

RcseRecorder::RcseRecorder(RcseOptions options, std::unique_ptr<TriggerSet> triggers)
    : SelectiveRecorder(
          std::string("rcse-") + std::string(RcseModeName(options.mode)),
          options.mode == RcseMode::kDataBased
              ? SelectionPredicate(nullptr)
              : SelectionPredicate([regions = options.control_regions](const Event& e) {
                  return ControlPlanePredicate(regions, e);
                })),
      options_(options),
      triggers_(std::move(triggers)) {
  if (triggers_ != nullptr) {
    triggers_->SetFireCallback(
        [this](const Trigger&, const Event&) { trigger_pending_ = true; });
  }
}

void RcseRecorder::DialUp(const Event& event) {
  ++trigger_fires_;
  last_fire_time_ = event.time;
  if (level() == FidelityLevel::kRelaxed) {
    ++dial_ups_;
    full_since_ = event.time;
    SetLevel(FidelityLevel::kFull);
  }
}

void RcseRecorder::MaybeDialDown(const Event& event) {
  if (level() != FidelityLevel::kFull || options_.dial_down_after <= 0) {
    return;
  }
  if (event.time > last_fire_time_ &&
      event.time - last_fire_time_ >
          static_cast<SimTime>(options_.dial_down_after)) {
    ++dial_downs_;
    time_at_full_ += static_cast<SimDuration>(event.time - full_since_);
    SetLevel(FidelityLevel::kRelaxed);
  }
}

bool RcseRecorder::ShouldRecord(const Event& event) {
  // Dynamic triggers run on every intercepted event (data-based/combined);
  // fidelity increases from the point of detection onward (§3.1.3).
  if (triggers_ != nullptr && options_.mode != RcseMode::kCodeBased) {
    trigger_pending_ = false;
    triggers_->Observe(event);
    if (trigger_pending_) {
      DialUp(event);
    } else {
      MaybeDialDown(event);
    }
  }
  return SelectiveRecorder::ShouldRecord(event);
}

}  // namespace ddr
