// The determinism-model lattice of §2, as first-class values.
//
// Chronological relaxation order (Fig. 1): perfect -> value (iDNA) ->
// output (ODR) -> failure (ESD), with debug determinism (RCSE) off the
// curve: near-failure-determinism overhead at near-perfect utility.

#ifndef SRC_CORE_DETERMINISM_MODEL_H_
#define SRC_CORE_DETERMINISM_MODEL_H_

#include <string_view>
#include <vector>

#include "src/replay/replayer.h"
#include "src/util/status.h"

namespace ddr {

enum class DeterminismModel {
  kPerfect = 0,      // record every nondeterministic event
  kValue = 1,        // iDNA/Friday: values at every access + interleavings
  kOutputHeavy = 2,  // ODR's heavier scheme: outputs + inputs + sync order
  kOutputOnly = 3,   // ODR's lightest scheme: outputs only
  kFailure = 4,      // ESD: failure snapshot only, inference does the rest
  kDebugRcse = 5,    // debug determinism via root-cause-driven selectivity
};

std::string_view DeterminismModelName(DeterminismModel model);
std::string_view DeterminismModelSystem(DeterminismModel model);  // e.g. "iDNA"

// Inverse of DeterminismModelName, also accepting recorder model-name
// strings ("rcse-code", "rcse-combined", ...) and the shell-friendly
// aliases "rcse" / "debug-rcse" for kDebugRcse.
Result<DeterminismModel> ParseDeterminismModel(std::string_view name);

// The replay strategy implied by each model.
ReplayMode ReplayModeFor(DeterminismModel model);

// All models in Fig. 1's chronological relaxation order, ending with debug
// determinism.
const std::vector<DeterminismModel>& AllDeterminismModels();

}  // namespace ddr

#endif  // SRC_CORE_DETERMINISM_MODEL_H_
