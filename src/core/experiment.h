// ExperimentHarness: the end-to-end record -> replay -> score pipeline.
//
// Given a BugScenario (a program with a known defect, its root-cause
// catalog, and inference hints), the harness:
//   1. prepares the scenario (ScenarioPrep: seed search for the failing
//      "production" execution; the pre-release training run is added
//      lazily when RCSE first needs it) — immutable work computed once
//      and shareable across harnesses and threads;
//   2. for each determinism model: re-runs the identical production
//      execution with that model's recorder attached (recording observes,
//      never perturbs — the harness verifies the trace fingerprint is
//      unchanged), producing a RecordedExecution and its overhead;
//   3. replays/infers from the recording alone (production seeds withheld);
//   4. scores debugging fidelity / efficiency / utility against the
//      scenario's root-cause catalog.
//
// This is the API the paper's figures are generated through, and the main
// entry point for library users. BatchRunner (src/core/batch_runner.h)
// fans this pipeline out over scenario x model grids.

#ifndef SRC_CORE_EXPERIMENT_H_
#define SRC_CORE_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/bug_scenario.h"
#include "src/core/determinism_model.h"
#include "src/core/metrics.h"
#include "src/core/scenario_prep.h"
#include "src/record/model_recorders.h"
#include "src/record/recorded_execution.h"
#include "src/replay/replayer.h"
#include "src/trace/streaming_writer.h"
#include "src/trace/trace_store.h"

namespace ddr {

struct ExperimentRow {
  DeterminismModel model = DeterminismModel::kPerfect;
  std::string model_name;

  // Recording side.
  double overhead_multiplier = 1.0;
  uint64_t log_bytes = 0;
  uint64_t recorded_events = 0;

  // Replay side.
  bool failure_reproduced = false;
  std::optional<std::string> diagnosed_cause;
  uint64_t divergences = 0;
  InferenceStats inference;
  // Inputs chosen by output-deterministic inference (if any).
  std::vector<int64_t> input_assignment;

  // Metrics (§3.2).
  double fidelity = 0.0;
  double efficiency = 0.0;
  double utility = 0.0;

  // Timing.
  double original_wall_seconds = 0.0;
  double replay_wall_seconds = 0.0;
};

class ExperimentHarness {
 public:
  explicit ExperimentHarness(BugScenario scenario);

  // Shares a previously computed prep (e.g. across batch-runner workers):
  // the harness is immediately prepared and never recomputes the seed
  // search. `prep` must be non-null.
  ExperimentHarness(BugScenario scenario,
                    std::shared_ptr<const ScenarioPrep> prep);

  // Locates the failing production execution. Must succeed before
  // RunModel. The RCSE training run is deferred to the first kDebugRcse
  // recording (non-RCSE users never pay for it), so control_regions() is
  // empty until then.
  Status Prepare();

  ExperimentRow RunModel(DeterminismModel model);
  std::vector<ExperimentRow> RunAllModels();

  // The two halves of RunModel, exposed so recordings can cross a process
  // (or machine) boundary between them as trace files.
  //
  // Record() re-runs the production execution with `model`'s recorder
  // attached and packages the RecordedExecution; ReplayAndScore() replays
  // from the recording alone and scores it. RunModel(m) ==
  // ReplayAndScore(m, Record(m), <production wall seconds>).
  RecordedExecution Record(DeterminismModel model);
  ExperimentRow ReplayAndScore(DeterminismModel model,
                               const RecordedExecution& recording,
                               double original_wall_seconds);

  // Streaming record: the recorder spills event chunks into `writer` as it
  // observes (recorder memory stays bounded by one chunk) and the run's
  // metadata + snapshot come back as the returned TraceFinishInfo. The
  // caller owns the writer's lifecycle — it must have called Begin()
  // already and passes the returned info to writer->Finish() (bare trace
  // file) or CorpusWriter::FinishRecording() (bundle entry), so streaming
  // composes with either destination. The finished trace is identical to
  // SaveRecording(Record(model), ...) with the same options except for the
  // production wall-time stamp (real time, so it differs run to run).
  Result<TraceFinishInfo> RecordStreaming(DeterminismModel model,
                                          StreamingTraceWriter* writer);

  // Persistence hooks (src/trace/): SaveRecording stamps the scenario name
  // and production wall time into trace metadata; LoadRecording restores
  // the recording (the harness-side ground-truth Outcome never ships — see
  // recorded_execution.h).
  Status SaveRecording(const RecordedExecution& recording,
                       const std::string& path,
                       TraceWriteOptions options = {}) const;
  static Result<RecordedExecution> LoadRecording(
      const std::string& path, double* original_wall_seconds = nullptr);

  // Full disk round-trip: record -> save to `path` -> load -> replay ->
  // score. Replay results are bit-identical to the in-memory RunModel path
  // because the trace format round-trips the log and snapshot exactly.
  Result<ExperimentRow> RunModelFromFile(DeterminismModel model,
                                         const std::string& path);

  // Accessors (valid after Prepare()).
  uint64_t production_sched_seed() const { return prep().production_sched_seed; }
  const Outcome& production_outcome() const { return prep().production_outcome; }
  const std::vector<Event>& production_trace() const {
    return prep().production_trace;
  }
  double production_wall_seconds() const {
    return prep().production_wall_seconds;
  }
  // Control-plane regions from the training run; empty until training has
  // happened (first RCSE recording, or a prep computed with training).
  const std::set<RegionId>& control_regions() const;
  const BugScenario& scenario() const { return scenario_; }
  // Stats of the most recent RCSE recording (valid after RunModel(kDebugRcse)).
  const std::optional<ExperimentRow>& last_rcse_row() const { return last_rcse_row_; }

 private:
  struct ProductionRun {
    Outcome outcome;
    SimDuration cpu_nanos = 0;
    SimDuration overhead_nanos = 0;
    uint64_t recorded_bytes = 0;
    double wall_seconds = 0.0;
  };

  const ScenarioPrep& prep() const;

  // Re-runs the production execution (same seeds), optionally with a
  // recorder and/or extra sink attached.
  ProductionRun RunProduction(Recorder* recorder, CollectingSink* sink);
  std::unique_ptr<Recorder> MakeRecorder(DeterminismModel model);
  ReplayTarget MakeReplayTarget() const;
  TraceFinishInfo MakeFinishInfo(const Recorder& recorder,
                                 const ProductionRun& run) const;

  BugScenario scenario_;
  std::shared_ptr<const ScenarioPrep> prep_;
  // Training artifacts, adopted from the prep or computed lazily on the
  // first RCSE recording (never copies the prep's production trace).
  std::shared_ptr<const TrainingArtifacts> training_;

  std::optional<ExperimentRow> last_rcse_row_;
};

}  // namespace ddr

#endif  // SRC_CORE_EXPERIMENT_H_
