// ExperimentHarness: the end-to-end record -> replay -> score pipeline.
//
// Given a BugScenario (a program with a known defect, its root-cause
// catalog, and inference hints), the harness:
//   1. finds a failing "production" execution (seed search over schedules
//      with the production world seed — the nondeterministic failure
//      manifesting in production);
//   2. for each determinism model: re-runs the identical production
//      execution with that model's recorder attached (recording observes,
//      never perturbs — the harness verifies the trace fingerprint is
//      unchanged), producing a RecordedExecution and its overhead;
//   3. replays/infers from the recording alone (production seeds withheld);
//   4. scores debugging fidelity / efficiency / utility against the
//      scenario's root-cause catalog.
//
// This is the API the paper's figures are generated through, and the main
// entry point for library users.

#ifndef SRC_CORE_EXPERIMENT_H_
#define SRC_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/invariants.h"
#include "src/analysis/plane_classifier.h"
#include "src/analysis/root_cause.h"
#include "src/core/determinism_model.h"
#include "src/core/metrics.h"
#include "src/core/rcse.h"
#include "src/record/model_recorders.h"
#include "src/record/recorded_execution.h"
#include "src/replay/replayer.h"
#include "src/trace/trace_store.h"

namespace ddr {

struct BugScenario {
  std::string name;

  // Builds a fresh program whose external input generators are seeded with
  // `world_seed`. Programs must create objects deterministically (see
  // src/sim/program.h).
  std::function<std::unique_ptr<SimProgram>(uint64_t world_seed)> make_program;

  // Template environment options (seed is overridden per run).
  Environment::Options env_options;

  // The "real world" of the production run.
  uint64_t production_world_seed = 2024;
  // If nonzero, use this schedule seed directly; otherwise search
  // [kProductionSeedBase + 1, kProductionSeedBase + max_seed_search] for the
  // first failing schedule. The base keeps the production schedule space
  // disjoint from the small seed range inference is allowed to search —
  // a replayer must not be able to "guess" the production schedule.
  static constexpr uint64_t kProductionSeedBase = 1000;
  uint64_t production_sched_seed = 0;
  uint64_t max_seed_search = 400;

  // Ground truth for fidelity scoring.
  RootCauseCatalog catalog;

  // Inference hints (see ReplayTarget).
  std::vector<FaultPlan> candidate_fault_plans;
  std::vector<ReplayTarget::InputDomain> input_domains;
  std::function<std::unique_ptr<CspProblem>(const std::vector<uint64_t>&)> symbolic_model;
  uint64_t world_seeds_to_try = 3;
  uint64_t sched_seeds_to_try = 10;
  InferenceBudget inference_budget;

  // RCSE configuration.
  RcseMode rcse_mode = RcseMode::kCodeBased;
  // Region names to treat as control plane; empty = auto-classify with the
  // plane profiler on a training run.
  std::vector<std::string> control_region_names;
  PlaneClassifierOptions classifier_options;
  SimDuration rcse_dial_down_after = 10 * kMillisecond;
  // Optional extra triggers for data-based/combined RCSE. Receives the
  // invariants learned from the training run.
  std::function<void(TriggerSet*, const InvariantSet&)> configure_triggers;
  // World/schedule seeds for the pre-release training run.
  uint64_t training_world_seed = 77;
  uint64_t training_sched_seed = 7;
};

struct ExperimentRow {
  DeterminismModel model = DeterminismModel::kPerfect;
  std::string model_name;

  // Recording side.
  double overhead_multiplier = 1.0;
  uint64_t log_bytes = 0;
  uint64_t recorded_events = 0;

  // Replay side.
  bool failure_reproduced = false;
  std::optional<std::string> diagnosed_cause;
  uint64_t divergences = 0;
  InferenceStats inference;
  // Inputs chosen by output-deterministic inference (if any).
  std::vector<int64_t> input_assignment;

  // Metrics (§3.2).
  double fidelity = 0.0;
  double efficiency = 0.0;
  double utility = 0.0;

  // Timing.
  double original_wall_seconds = 0.0;
  double replay_wall_seconds = 0.0;
};

class ExperimentHarness {
 public:
  explicit ExperimentHarness(BugScenario scenario);

  // Locates the failing production execution. Must succeed before RunModel.
  Status Prepare();

  ExperimentRow RunModel(DeterminismModel model);
  std::vector<ExperimentRow> RunAllModels();

  // The two halves of RunModel, exposed so recordings can cross a process
  // (or machine) boundary between them as trace files.
  //
  // Record() re-runs the production execution with `model`'s recorder
  // attached and packages the RecordedExecution; ReplayAndScore() replays
  // from the recording alone and scores it. RunModel(m) ==
  // ReplayAndScore(m, Record(m), <production wall seconds>).
  RecordedExecution Record(DeterminismModel model);
  ExperimentRow ReplayAndScore(DeterminismModel model,
                               const RecordedExecution& recording,
                               double original_wall_seconds);

  // Persistence hooks (src/trace/): SaveRecording stamps the scenario name
  // and production wall time into trace metadata; LoadRecording restores
  // the recording (the harness-side ground-truth Outcome never ships — see
  // recorded_execution.h).
  Status SaveRecording(const RecordedExecution& recording,
                       const std::string& path,
                       TraceWriteOptions options = {}) const;
  static Result<RecordedExecution> LoadRecording(
      const std::string& path, double* original_wall_seconds = nullptr);

  // Full disk round-trip: record -> save to `path` -> load -> replay ->
  // score. Replay results are bit-identical to the in-memory RunModel path
  // because the trace format round-trips the log and snapshot exactly.
  Result<ExperimentRow> RunModelFromFile(DeterminismModel model,
                                         const std::string& path);

  // Accessors (valid after Prepare()).
  uint64_t production_sched_seed() const { return production_sched_seed_; }
  const Outcome& production_outcome() const { return production_outcome_; }
  const std::vector<Event>& production_trace() const { return production_trace_; }
  double production_wall_seconds() const { return production_wall_seconds_; }
  const std::set<RegionId>& control_regions() const { return control_regions_; }
  const BugScenario& scenario() const { return scenario_; }
  // Stats of the most recent RCSE recording (valid after RunModel(kDebugRcse)).
  const std::optional<ExperimentRow>& last_rcse_row() const { return last_rcse_row_; }

 private:
  struct ProductionRun {
    Outcome outcome;
    SimDuration cpu_nanos = 0;
    SimDuration overhead_nanos = 0;
    uint64_t recorded_bytes = 0;
    double wall_seconds = 0.0;
  };

  // Re-runs the production execution (same seeds), optionally with a
  // recorder and/or extra sink attached.
  ProductionRun RunProduction(Recorder* recorder, CollectingSink* sink);
  // Pre-release training run used for plane classification and invariants.
  void RunTrainingIfNeeded();
  std::unique_ptr<Recorder> MakeRecorder(DeterminismModel model);
  ReplayTarget MakeReplayTarget() const;

  BugScenario scenario_;
  bool prepared_ = false;
  uint64_t production_sched_seed_ = 0;
  Outcome production_outcome_;
  std::vector<Event> production_trace_;
  double production_wall_seconds_ = 0.0;

  bool trained_ = false;
  std::set<RegionId> control_regions_;
  InvariantSet trained_invariants_;
  std::vector<std::string> region_names_;  // index = RegionId

  std::optional<ExperimentRow> last_rcse_row_;
};

}  // namespace ddr

#endif  // SRC_CORE_EXPERIMENT_H_
