#include "src/core/scenario_prep.h"

#include <memory>
#include <utility>

namespace ddr {

Result<ScenarioPrep> ScenarioPrep::Compute(const BugScenario& scenario,
                                           bool include_training) {
  if (scenario.make_program == nullptr) {
    return InvalidArgumentError("scenario '" + scenario.name +
                                "' has no make_program");
  }
  ScenarioPrep prep;

  // 1. Seed search for the failing production execution.
  uint64_t first_seed = scenario.production_sched_seed;
  uint64_t last_seed = scenario.production_sched_seed;
  if (scenario.production_sched_seed == 0) {
    first_seed = BugScenario::kProductionSeedBase + 1;
    last_seed = BugScenario::kProductionSeedBase + scenario.max_seed_search;
  }
  bool found = false;
  for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
    Environment::Options options = scenario.env_options;
    options.seed = seed;
    Environment env(options);
    CollectingSink sink;
    env.AddTraceSink(&sink);
    std::unique_ptr<SimProgram> program =
        scenario.make_program(scenario.production_world_seed);
    Outcome outcome = env.Run(*program);
    if (outcome.Failed()) {
      prep.production_sched_seed = seed;
      prep.production_outcome = std::move(outcome);
      prep.production_trace = sink.events();
      prep.production_wall_seconds = prep.production_outcome.stats.wall_seconds;
      found = true;
      break;
    }
  }
  if (!found) {
    return NotFoundError("no failing production execution found for scenario '" +
                         scenario.name + "'");
  }

  // 2. Pre-release training run (only RCSE recorders consume it).
  if (include_training) {
    prep.training = ComputeTrainingArtifacts(scenario);
  }
  return prep;
}

std::shared_ptr<const TrainingArtifacts> ComputeTrainingArtifacts(
    const BugScenario& scenario) {
  auto artifacts = std::make_shared<TrainingArtifacts>();

  Environment::Options options = scenario.env_options;
  options.seed = scenario.training_sched_seed;
  Environment env(options);
  PlaneProfiler profiler;
  CollectingSink sink;
  env.AddTraceSink(&profiler);
  env.AddTraceSink(&sink);
  std::unique_ptr<SimProgram> program =
      scenario.make_program(scenario.training_world_seed);
  (void)env.Run(*program);

  for (size_t i = 0; i < env.num_regions(); ++i) {
    artifacts->region_names.push_back(env.region_name(static_cast<RegionId>(i)));
  }

  if (!scenario.control_region_names.empty()) {
    for (size_t i = 0; i < artifacts->region_names.size(); ++i) {
      for (const std::string& name : scenario.control_region_names) {
        if (artifacts->region_names[i] == name) {
          artifacts->control_regions.insert(static_cast<RegionId>(i));
        }
      }
    }
  } else {
    for (RegionId region : PlaneClassifier::ControlRegions(
             profiler.profiles(), scenario.classifier_options)) {
      artifacts->control_regions.insert(region);
    }
  }

  InvariantInference inference(/*range_slack=*/0.1);
  inference.ObserveTrace(sink.events());
  artifacts->invariants = inference.Infer();
  return artifacts;
}

}  // namespace ddr
