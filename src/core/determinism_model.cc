#include "src/core/determinism_model.h"

namespace ddr {

std::string_view DeterminismModelName(DeterminismModel model) {
  switch (model) {
    case DeterminismModel::kPerfect:
      return "perfect";
    case DeterminismModel::kValue:
      return "value";
    case DeterminismModel::kOutputHeavy:
      return "output-heavy";
    case DeterminismModel::kOutputOnly:
      return "output";
    case DeterminismModel::kFailure:
      return "failure";
    case DeterminismModel::kDebugRcse:
      return "debug (RCSE)";
  }
  return "unknown";
}

std::string_view DeterminismModelSystem(DeterminismModel model) {
  switch (model) {
    case DeterminismModel::kPerfect:
      return "SMP-ReVirt-class";
    case DeterminismModel::kValue:
      return "iDNA / Friday";
    case DeterminismModel::kOutputHeavy:
      return "ODR (heavy)";
    case DeterminismModel::kOutputOnly:
      return "ODR (light)";
    case DeterminismModel::kFailure:
      return "ESD";
    case DeterminismModel::kDebugRcse:
      return "RCSE";
  }
  return "unknown";
}

ReplayMode ReplayModeFor(DeterminismModel model) {
  switch (model) {
    case DeterminismModel::kPerfect:
      return ReplayMode::kPerfect;
    case DeterminismModel::kValue:
      return ReplayMode::kValue;
    case DeterminismModel::kOutputHeavy:
      return ReplayMode::kOutputHeavy;
    case DeterminismModel::kOutputOnly:
      return ReplayMode::kOutputOnly;
    case DeterminismModel::kFailure:
      return ReplayMode::kFailure;
    case DeterminismModel::kDebugRcse:
      return ReplayMode::kRcse;
  }
  return ReplayMode::kPerfect;
}

Result<DeterminismModel> ParseDeterminismModel(std::string_view name) {
  for (DeterminismModel model : AllDeterminismModels()) {
    if (DeterminismModelName(model) == name) {
      return model;
    }
  }
  if (name == "rcse" || name == "debug-rcse" ||
      name.substr(0, 5) == "rcse-") {
    return DeterminismModel::kDebugRcse;
  }
  return InvalidArgumentError("unknown determinism model '" +
                              std::string(name) + "'");
}

const std::vector<DeterminismModel>& AllDeterminismModels() {
  static const std::vector<DeterminismModel> kModels = {
      DeterminismModel::kPerfect,     DeterminismModel::kValue,
      DeterminismModel::kOutputHeavy, DeterminismModel::kOutputOnly,
      DeterminismModel::kFailure,     DeterminismModel::kDebugRcse,
  };
  return kModels;
}

}  // namespace ddr
