#include "src/core/metrics.h"

namespace ddr {

FidelityResult EvaluateFidelity(const RootCauseCatalog& catalog,
                                const ReplayResult& replay) {
  FidelityResult result;
  result.num_possible_causes = catalog.size() == 0 ? 1 : catalog.size();
  result.failure_reproduced = replay.failure_reproduced;
  if (!result.failure_reproduced) {
    return result;
  }
  const ExecutionView view{replay.trace, replay.outcome};
  result.actual_cause_present = catalog.ActualCausePresent(view);
  result.diagnosed_cause = catalog.DiagnosedCause(view);
  return result;
}

double DebuggingEfficiency(double original_seconds, double reproduce_seconds) {
  constexpr double kFloorSeconds = 1e-9;
  if (reproduce_seconds < kFloorSeconds) {
    reproduce_seconds = kFloorSeconds;
  }
  if (original_seconds < kFloorSeconds) {
    original_seconds = kFloorSeconds;
  }
  return original_seconds / reproduce_seconds;
}

}  // namespace ddr
