#include "src/server/corpus_client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/util/codec.h"
#include "src/util/fault_injection.h"

namespace ddr {

namespace {

constexpr uint64_t kDefaultJitterSeed = 0x9e3779b97f4a7c15ull;

uint64_t JitterSeed(const CorpusClientOptions& options) {
  return options.jitter_seed != 0 ? options.jitter_seed : kDefaultJitterSeed;
}

// xorshift64: cheap, stateful, and fully determined by the seed.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = (x != 0) ? x : kDefaultJitterSeed;
  return *state;
}

// Delay before retry `attempt` (1-based): exponential from the initial
// delay, capped, lower half fixed and upper half jittered.
int BackoffDelayMs(const CorpusClientOptions& options, int attempt,
                   uint64_t* rng) {
  int64_t base = options.backoff_initial_ms > 0 ? options.backoff_initial_ms : 1;
  const int64_t cap = options.backoff_max_ms > 0 ? options.backoff_max_ms : 1;
  for (int i = 1; i < attempt && base < cap; ++i) {
    base *= 2;
  }
  if (base > cap) {
    base = cap;
  }
  const int64_t jitter_span = base / 2;
  const int64_t jitter =
      jitter_span > 0
          ? static_cast<int64_t>(NextRand(rng) % static_cast<uint64_t>(jitter_span + 1))
          : 0;
  return static_cast<int>(base - jitter_span + jitter);
}

void SleepMs(int ms) {
  if (ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

// What a retry can cure. Transport drops and overload rejections are
// Unavailable, a stalled server is DeadlineExceeded; connect additionally
// retries NotFound, which is how a refused/not-yet-listening endpoint
// surfaces (a daemon mid-restart). Everything else — server-side errors,
// framing corruption — is answered loudly on the first miss.
bool RetriableCallCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

bool RetriableConnectCode(StatusCode code) {
  return RetriableCallCode(code) || code == StatusCode::kNotFound;
}

}  // namespace

CorpusClient::CorpusClient(Socket socket, EndpointKind kind,
                           std::string target, uint16_t port,
                           const CorpusClientOptions& options)
    : socket_(std::move(socket)),
      kind_(kind),
      target_(std::move(target)),
      port_(port),
      options_(options),
      rng_state_(JitterSeed(options)) {}

Result<CorpusClient> CorpusClient::ConnectWithRetry(
    EndpointKind kind, const std::string& target, uint16_t port,
    const CorpusClientOptions& options) {
  uint64_t rng = JitterSeed(options);
  for (int attempt = 0;; ++attempt) {
    Result<Socket> socket = kind == EndpointKind::kUnix
                                ? ConnectUnix(target)
                                : ConnectTcp(target, port);
    if (socket.ok()) {
      return CorpusClient(std::move(socket).value(), kind, target, port,
                          options);
    }
    if (attempt >= options.max_retries ||
        !RetriableConnectCode(socket.status().code())) {
      return socket.status();
    }
    SleepMs(BackoffDelayMs(options, attempt + 1, &rng));
  }
}

Result<CorpusClient> CorpusClient::ConnectUnixSocket(
    const std::string& path, const CorpusClientOptions& options) {
  return ConnectWithRetry(EndpointKind::kUnix, path, 0, options);
}

Result<CorpusClient> CorpusClient::ConnectTcpSocket(
    const std::string& host, uint16_t port,
    const CorpusClientOptions& options) {
  return ConnectWithRetry(EndpointKind::kTcp, host, port, options);
}

Result<std::vector<uint8_t>> CorpusClient::CallOnce(const RpcRequest& request) {
  RETURN_IF_ERROR(FaultPoint("client.send"));
  RETURN_IF_ERROR(WriteFrame(socket_, EncodeRequest(request)));
  ASSIGN_OR_RETURN(auto frame,
                   ReadFrameWithDeadline(socket_, options_.timeout_ms));
  if (!frame.has_value()) {
    return UnavailableError("server closed the connection");
  }
  ASSIGN_OR_RETURN(RpcResponse response, DecodeResponse(*frame));
  RETURN_IF_ERROR(response.ToStatus());
  return std::move(response.payload);
}

Result<std::vector<uint8_t>> CorpusClient::Call(const RpcRequest& request) {
  for (int attempt = 0;; ++attempt) {
    Status failure = OkStatus();
    bool from_connect = false;
    if (!socket_.valid()) {
      // A prior attempt dropped the connection; reconnect transparently.
      Result<Socket> socket = kind_ == EndpointKind::kUnix
                                  ? ConnectUnix(target_)
                                  : ConnectTcp(target_, port_);
      if (socket.ok()) {
        socket_ = std::move(socket).value();
      } else {
        failure = socket.status();
        from_connect = true;
      }
    }
    if (failure.ok()) {
      Result<std::vector<uint8_t>> result = CallOnce(request);
      if (result.ok()) {
        return result;
      }
      failure = result.status();
    }
    const bool retriable = from_connect
                               ? RetriableConnectCode(failure.code())
                               : RetriableCallCode(failure.code());
    if (attempt >= options_.max_retries || !retriable) {
      return failure;
    }
    // The stream may hold half a frame (a timed-out response still in
    // flight); a retried request needs a clean connection.
    socket_.Close();
    SleepMs(BackoffDelayMs(options_, attempt + 1, &rng_state_));
  }
}

Result<ServeInfo> CorpusClient::Info() {
  RpcRequest request;
  request.command = RpcCommand::kInfo;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  return DecodeServeInfo(payload);
}

Result<std::vector<ServeEntry>> CorpusClient::List() {
  RpcRequest request;
  request.command = RpcCommand::kList;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  return DecodeServeEntries(payload);
}

Result<uint64_t> CorpusClient::Verify(const std::string& name) {
  RpcRequest request;
  request.command = RpcCommand::kVerify;
  request.name = name;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  Decoder decoder(payload.data(), payload.size());
  ASSIGN_OR_RETURN(uint64_t verified, decoder.GetVarint64());
  return verified;
}

Result<BatchCell> CorpusClient::Replay(const std::string& name,
                                       const std::string& model) {
  RpcRequest request;
  request.command = RpcCommand::kReplay;
  request.name = name;
  request.model = model;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  return DecodeBatchCell(payload);
}

Result<ServeStats> CorpusClient::Stats() {
  RpcRequest request;
  request.command = RpcCommand::kStats;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  return DecodeServeStats(payload);
}

Result<ServeRefresh> CorpusClient::Refresh() {
  RpcRequest request;
  request.command = RpcCommand::kRefresh;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  return DecodeServeRefresh(payload);
}

Status CorpusClient::Shutdown() {
  RpcRequest request;
  request.command = RpcCommand::kShutdown;
  return Call(request).status();
}

}  // namespace ddr
