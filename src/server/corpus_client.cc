#include "src/server/corpus_client.h"

#include "src/util/codec.h"

namespace ddr {

Result<CorpusClient> CorpusClient::ConnectUnixSocket(const std::string& path) {
  ASSIGN_OR_RETURN(Socket socket, ConnectUnix(path));
  return CorpusClient(std::move(socket));
}

Result<CorpusClient> CorpusClient::ConnectTcpSocket(const std::string& host,
                                                    uint16_t port) {
  ASSIGN_OR_RETURN(Socket socket, ConnectTcp(host, port));
  return CorpusClient(std::move(socket));
}

Result<std::vector<uint8_t>> CorpusClient::Call(const RpcRequest& request) {
  RETURN_IF_ERROR(WriteFrame(socket_, EncodeRequest(request)));
  ASSIGN_OR_RETURN(auto frame, ReadFrame(socket_));
  if (!frame.has_value()) {
    return UnavailableError("server closed the connection");
  }
  ASSIGN_OR_RETURN(RpcResponse response, DecodeResponse(*frame));
  RETURN_IF_ERROR(response.ToStatus());
  return std::move(response.payload);
}

Result<ServeInfo> CorpusClient::Info() {
  RpcRequest request;
  request.command = RpcCommand::kInfo;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  return DecodeServeInfo(payload);
}

Result<std::vector<ServeEntry>> CorpusClient::List() {
  RpcRequest request;
  request.command = RpcCommand::kList;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  return DecodeServeEntries(payload);
}

Result<uint64_t> CorpusClient::Verify(const std::string& name) {
  RpcRequest request;
  request.command = RpcCommand::kVerify;
  request.name = name;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  Decoder decoder(payload.data(), payload.size());
  ASSIGN_OR_RETURN(uint64_t verified, decoder.GetVarint64());
  return verified;
}

Result<BatchCell> CorpusClient::Replay(const std::string& name,
                                       const std::string& model) {
  RpcRequest request;
  request.command = RpcCommand::kReplay;
  request.name = name;
  request.model = model;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  return DecodeBatchCell(payload);
}

Result<ServeStats> CorpusClient::Stats() {
  RpcRequest request;
  request.command = RpcCommand::kStats;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  return DecodeServeStats(payload);
}

Result<ServeRefresh> CorpusClient::Refresh() {
  RpcRequest request;
  request.command = RpcCommand::kRefresh;
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload, Call(request));
  return DecodeServeRefresh(payload);
}

Status CorpusClient::Shutdown() {
  RpcRequest request;
  request.command = RpcCommand::kShutdown;
  return Call(request).status();
}

}  // namespace ddr
