#include "src/server/protocol.h"

#include <chrono>

#include "src/core/determinism_model.h"
#include "src/util/codec.h"
#include "src/util/crc32.h"
#include "src/util/string_util.h"

namespace ddr {

namespace {

// Payload bytes ride inside the codec's length-prefixed string field.
void PutBytes(Encoder& encoder, std::span<const uint8_t> bytes) {
  encoder.PutString(std::string_view(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

Result<StatusCode> CheckedStatusCode(uint64_t raw) {
  if (raw > static_cast<uint64_t>(StatusCode::kResourceExhausted)) {
    return InvalidArgumentError(
        StrPrintf("rpc response carries unknown status code %llu",
                  static_cast<unsigned long long>(raw)));
  }
  return static_cast<StatusCode>(raw);
}

Status CheckDone(const Decoder& decoder, const char* what) {
  if (!decoder.Done()) {
    return InvalidArgumentError(StrPrintf(
        "%s payload has %zu trailing bytes", what, decoder.remaining()));
  }
  return OkStatus();
}

void EncodeCacheStats(Encoder& encoder, const ChunkCacheStats& cache) {
  encoder.PutVarint64(cache.hits);
  encoder.PutVarint64(cache.misses);
  encoder.PutVarint64(cache.evictions);
  encoder.PutVarint64(cache.insertions);
  encoder.PutVarint64(cache.bytes_in_use);
  encoder.PutVarint64(cache.entries);
  encoder.PutVarint64(cache.capacity_bytes);
}

Result<ChunkCacheStats> DecodeCacheStats(Decoder& decoder) {
  ChunkCacheStats cache;
  ASSIGN_OR_RETURN(cache.hits, decoder.GetVarint64());
  ASSIGN_OR_RETURN(cache.misses, decoder.GetVarint64());
  ASSIGN_OR_RETURN(cache.evictions, decoder.GetVarint64());
  ASSIGN_OR_RETURN(cache.insertions, decoder.GetVarint64());
  ASSIGN_OR_RETURN(cache.bytes_in_use, decoder.GetVarint64());
  ASSIGN_OR_RETURN(cache.entries, decoder.GetVarint64());
  ASSIGN_OR_RETURN(cache.capacity_bytes, decoder.GetVarint64());
  return cache;
}

}  // namespace

std::string_view RpcCommandName(RpcCommand command) {
  switch (command) {
    case RpcCommand::kInfo:
      return "info";
    case RpcCommand::kList:
      return "list";
    case RpcCommand::kVerify:
      return "verify";
    case RpcCommand::kReplay:
      return "replay";
    case RpcCommand::kStats:
      return "stats";
    case RpcCommand::kRefresh:
      return "refresh";
    case RpcCommand::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

Result<RpcCommand> ParseRpcCommand(const std::string& name) {
  for (size_t i = 0; i < kRpcCommandCount; ++i) {
    const RpcCommand command = static_cast<RpcCommand>(i);
    if (name == RpcCommandName(command)) {
      return command;
    }
  }
  return InvalidArgumentError(
      "unknown query command '" + name +
      "' (expected info|list|verify|replay|stats|refresh|shutdown)");
}

// ------------------------------------------------------------- framing

Status WriteFrame(const Socket& socket, std::span<const uint8_t> payload) {
  if (payload.size() > kRpcMaxPayloadBytes) {
    return InvalidArgumentError(
        StrPrintf("rpc payload of %zu bytes exceeds the %u-byte frame bound",
                  payload.size(), kRpcMaxPayloadBytes));
  }
  Encoder header;
  header.PutFixed32(kRpcFrameMagic);
  header.PutFixed32(static_cast<uint32_t>(payload.size()));
  header.PutFixed32(Crc32(payload.data(), payload.size()));
  RETURN_IF_ERROR(socket.SendAll(header.buffer().data(), header.size()));
  if (!payload.empty()) {
    RETURN_IF_ERROR(socket.SendAll(payload.data(), payload.size()));
  }
  return OkStatus();
}

namespace {

using RpcClock = std::chrono::steady_clock;

// RecvExact against a deadline: polls readability with the remaining
// budget before each recv chunk, so a peer that stalls mid-frame (or
// never sends at all) surfaces as DeadlineExceeded instead of parking
// the thread in a blocking recv. Mirrors RecvExact's EOF contract:
// false only on a clean close before the first byte.
Result<bool> RecvExactBy(const Socket& socket, uint8_t* data, size_t size,
                         RpcClock::time_point deadline) {
  size_t done = 0;
  while (done < size) {
    const auto now = RpcClock::now();
    if (now >= deadline) {
      return DeadlineExceededError(
          StrPrintf("deadline exceeded waiting for rpc frame bytes "
                    "(%zu of %zu received)",
                    done, size));
    }
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    ASSIGN_OR_RETURN(
        bool readable,
        WaitReadable(socket, static_cast<int>(left > 0 ? left : 1)));
    if (!readable) {
      continue;  // poll timeout or EINTR; the deadline check above decides
    }
    ASSIGN_OR_RETURN(size_t n, socket.RecvSome(data + done, size - done));
    if (n == 0) {
      if (done == 0) {
        return false;  // clean EOF on a message boundary
      }
      return UnavailableError(
          StrPrintf("connection closed mid-message (%zu of %zu bytes)", done,
                    size));
    }
    done += n;
  }
  return true;
}

// One frame read, parameterized over the byte-exact receive step so the
// blocking and deadline-bounded paths share the header/CRC validation.
template <typename RecvExactFn>
Result<std::optional<std::vector<uint8_t>>> ReadFrameImpl(
    RecvExactFn&& recv_exact) {
  uint8_t header[kRpcFrameHeaderBytes];
  ASSIGN_OR_RETURN(bool got, recv_exact(header, sizeof(header)));
  if (!got) {
    return std::optional<std::vector<uint8_t>>();  // clean EOF
  }
  Decoder decoder(header, sizeof(header));
  ASSIGN_OR_RETURN(uint32_t magic, decoder.GetFixed32());
  ASSIGN_OR_RETURN(uint32_t length, decoder.GetFixed32());
  ASSIGN_OR_RETURN(uint32_t crc, decoder.GetFixed32());
  if (magic != kRpcFrameMagic) {
    return InvalidArgumentError("bad rpc frame magic (not a ddr corpus rpc)");
  }
  if (length > kRpcMaxPayloadBytes) {
    return InvalidArgumentError(
        StrPrintf("rpc frame length %u exceeds the %u-byte bound", length,
                  kRpcMaxPayloadBytes));
  }
  std::vector<uint8_t> payload(length);
  if (length > 0) {
    ASSIGN_OR_RETURN(bool body, recv_exact(payload.data(), length));
    if (!body) {
      return UnavailableError("connection closed mid-frame");
    }
  }
  if (Crc32(payload.data(), payload.size()) != crc) {
    return InvalidArgumentError("rpc frame payload CRC mismatch");
  }
  return std::optional<std::vector<uint8_t>>(std::move(payload));
}

}  // namespace

Result<std::optional<std::vector<uint8_t>>> ReadFrame(const Socket& socket) {
  return ReadFrameImpl([&socket](uint8_t* data, size_t size) {
    return socket.RecvExact(data, size);
  });
}

Result<std::optional<std::vector<uint8_t>>> ReadFrameWithDeadline(
    const Socket& socket, int timeout_ms) {
  if (timeout_ms <= 0) {
    return ReadFrame(socket);
  }
  const RpcClock::time_point deadline =
      RpcClock::now() + std::chrono::milliseconds(timeout_ms);
  return ReadFrameImpl([&socket, deadline](uint8_t* data, size_t size) {
    return RecvExactBy(socket, data, size, deadline);
  });
}

// ------------------------------------------------------------ messages

std::vector<uint8_t> EncodeRequest(const RpcRequest& request) {
  Encoder encoder;
  encoder.PutFixed8(static_cast<uint8_t>(request.command));
  encoder.PutString(request.name);
  encoder.PutString(request.model);
  return encoder.TakeBuffer();
}

Result<RpcRequest> DecodeRequest(std::span<const uint8_t> payload) {
  Decoder decoder(payload.data(), payload.size());
  RpcRequest request;
  ASSIGN_OR_RETURN(uint8_t command, decoder.GetFixed8());
  if (command >= kRpcCommandCount) {
    return InvalidArgumentError(
        StrPrintf("unknown rpc command byte %u", command));
  }
  request.command = static_cast<RpcCommand>(command);
  ASSIGN_OR_RETURN(request.name, decoder.GetString());
  ASSIGN_OR_RETURN(request.model, decoder.GetString());
  RETURN_IF_ERROR(CheckDone(decoder, "request"));
  return request;
}

std::vector<uint8_t> EncodeResponse(const RpcResponse& response) {
  Encoder encoder;
  encoder.PutVarint64(static_cast<uint64_t>(response.code));
  encoder.PutString(response.message);
  PutBytes(encoder, response.payload);
  return encoder.TakeBuffer();
}

Result<RpcResponse> DecodeResponse(std::span<const uint8_t> payload) {
  Decoder decoder(payload.data(), payload.size());
  RpcResponse response;
  ASSIGN_OR_RETURN(uint64_t code, decoder.GetVarint64());
  ASSIGN_OR_RETURN(response.code, CheckedStatusCode(code));
  ASSIGN_OR_RETURN(response.message, decoder.GetString());
  ASSIGN_OR_RETURN(std::string body, decoder.GetString());
  response.payload.assign(body.begin(), body.end());
  RETURN_IF_ERROR(CheckDone(decoder, "response"));
  return response;
}

// -------------------------------------------------------- typed bodies

std::vector<uint8_t> EncodeServeInfo(const ServeInfo& info) {
  Encoder encoder;
  encoder.PutString(info.path);
  encoder.PutVarint64(info.file_size);
  encoder.PutBool(info.journaled);
  encoder.PutVarint64(info.format_version);
  encoder.PutVarint64(info.generation);
  encoder.PutVarint64(info.dead_bytes);
  encoder.PutVarint64(info.entry_count);
  encoder.PutString(info.io_backend);
  encoder.PutBool(info.writer_active);
  return encoder.TakeBuffer();
}

Result<ServeInfo> DecodeServeInfo(std::span<const uint8_t> payload) {
  Decoder decoder(payload.data(), payload.size());
  ServeInfo info;
  ASSIGN_OR_RETURN(info.path, decoder.GetString());
  ASSIGN_OR_RETURN(info.file_size, decoder.GetVarint64());
  ASSIGN_OR_RETURN(info.journaled, decoder.GetBool());
  ASSIGN_OR_RETURN(uint64_t format_version, decoder.GetVarint64());
  info.format_version = static_cast<uint32_t>(format_version);
  ASSIGN_OR_RETURN(uint64_t generation, decoder.GetVarint64());
  info.generation = static_cast<uint32_t>(generation);
  ASSIGN_OR_RETURN(info.dead_bytes, decoder.GetVarint64());
  ASSIGN_OR_RETURN(info.entry_count, decoder.GetVarint64());
  ASSIGN_OR_RETURN(info.io_backend, decoder.GetString());
  ASSIGN_OR_RETURN(info.writer_active, decoder.GetBool());
  RETURN_IF_ERROR(CheckDone(decoder, "info"));
  return info;
}

std::vector<uint8_t> EncodeServeEntries(
    const std::vector<ServeEntry>& entries) {
  Encoder encoder;
  encoder.PutVarint64(entries.size());
  for (const ServeEntry& entry : entries) {
    encoder.PutString(entry.name);
    encoder.PutString(entry.model);
    encoder.PutString(entry.scenario);
    encoder.PutVarint64(entry.event_count);
    encoder.PutVarint64(entry.length);
  }
  return encoder.TakeBuffer();
}

Result<std::vector<ServeEntry>> DecodeServeEntries(
    std::span<const uint8_t> payload) {
  Decoder decoder(payload.data(), payload.size());
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  // Same defense as the corpus index decoder: bound the reserve by what
  // the payload could physically hold (>= 5 bytes per entry: three
  // 1-byte string lengths + two varints).
  if (count > payload.size()) {
    return InvalidArgumentError("entry list count exceeds payload size");
  }
  std::vector<ServeEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ServeEntry entry;
    ASSIGN_OR_RETURN(entry.name, decoder.GetString());
    ASSIGN_OR_RETURN(entry.model, decoder.GetString());
    ASSIGN_OR_RETURN(entry.scenario, decoder.GetString());
    ASSIGN_OR_RETURN(entry.event_count, decoder.GetVarint64());
    ASSIGN_OR_RETURN(entry.length, decoder.GetVarint64());
    entries.push_back(std::move(entry));
  }
  RETURN_IF_ERROR(CheckDone(decoder, "list"));
  return entries;
}

std::vector<uint8_t> EncodeServeRefresh(const ServeRefresh& refresh) {
  Encoder encoder;
  encoder.PutVarint64(refresh.generation_before);
  encoder.PutVarint64(refresh.generation_after);
  encoder.PutVarint64(refresh.entries_before);
  encoder.PutVarint64(refresh.entries_after);
  encoder.PutBool(refresh.picked_up);
  return encoder.TakeBuffer();
}

Result<ServeRefresh> DecodeServeRefresh(std::span<const uint8_t> payload) {
  Decoder decoder(payload.data(), payload.size());
  ServeRefresh refresh;
  ASSIGN_OR_RETURN(uint64_t before, decoder.GetVarint64());
  refresh.generation_before = static_cast<uint32_t>(before);
  ASSIGN_OR_RETURN(uint64_t after, decoder.GetVarint64());
  refresh.generation_after = static_cast<uint32_t>(after);
  ASSIGN_OR_RETURN(refresh.entries_before, decoder.GetVarint64());
  ASSIGN_OR_RETURN(refresh.entries_after, decoder.GetVarint64());
  ASSIGN_OR_RETURN(refresh.picked_up, decoder.GetBool());
  RETURN_IF_ERROR(CheckDone(decoder, "refresh"));
  return refresh;
}

std::vector<uint8_t> EncodeServeStats(const ServeStats& stats) {
  Encoder encoder;
  encoder.PutVarint64(stats.requests_total);
  encoder.PutVarint64(kRpcCommandCount);
  for (uint64_t count : stats.requests_by_command) {
    encoder.PutVarint64(count);
  }
  encoder.PutVarint64(stats.bytes_served);
  encoder.PutVarint64(stats.overload_rejections);
  encoder.PutVarint64(stats.refreshes);
  encoder.PutVarint64(stats.generations_picked_up);
  encoder.PutVarint64(stats.clients_total);
  encoder.PutVarint64(stats.clients_active);
  encoder.PutVarint64(stats.generation);
  encoder.PutVarint64(stats.entry_count);
  encoder.PutVarint64(stats.corpus_bytes_read);
  EncodeCacheStats(encoder, stats.cache);
  return encoder.TakeBuffer();
}

Result<ServeStats> DecodeServeStats(std::span<const uint8_t> payload) {
  Decoder decoder(payload.data(), payload.size());
  ServeStats stats;
  ASSIGN_OR_RETURN(stats.requests_total, decoder.GetVarint64());
  ASSIGN_OR_RETURN(uint64_t commands, decoder.GetVarint64());
  if (commands != kRpcCommandCount) {
    return InvalidArgumentError(
        StrPrintf("stats payload lists %llu commands, expected %zu",
                  static_cast<unsigned long long>(commands),
                  kRpcCommandCount));
  }
  for (size_t i = 0; i < kRpcCommandCount; ++i) {
    ASSIGN_OR_RETURN(stats.requests_by_command[i], decoder.GetVarint64());
  }
  ASSIGN_OR_RETURN(stats.bytes_served, decoder.GetVarint64());
  ASSIGN_OR_RETURN(stats.overload_rejections, decoder.GetVarint64());
  ASSIGN_OR_RETURN(stats.refreshes, decoder.GetVarint64());
  ASSIGN_OR_RETURN(stats.generations_picked_up, decoder.GetVarint64());
  ASSIGN_OR_RETURN(stats.clients_total, decoder.GetVarint64());
  ASSIGN_OR_RETURN(stats.clients_active, decoder.GetVarint64());
  ASSIGN_OR_RETURN(uint64_t generation, decoder.GetVarint64());
  stats.generation = static_cast<uint32_t>(generation);
  ASSIGN_OR_RETURN(stats.entry_count, decoder.GetVarint64());
  ASSIGN_OR_RETURN(stats.corpus_bytes_read, decoder.GetVarint64());
  ASSIGN_OR_RETURN(stats.cache, DecodeCacheStats(decoder));
  RETURN_IF_ERROR(CheckDone(decoder, "stats"));
  return stats;
}

std::vector<uint8_t> EncodeBatchCell(const BatchCell& cell) {
  const ExperimentRow& row = cell.row;
  Encoder encoder;
  encoder.PutString(cell.scenario);
  encoder.PutString(cell.recording_name);
  encoder.PutString(row.model_name);
  encoder.PutString(DeterminismModelName(row.model));
  encoder.PutDouble(row.overhead_multiplier);
  encoder.PutVarint64(row.log_bytes);
  encoder.PutVarint64(row.recorded_events);
  encoder.PutBool(row.failure_reproduced);
  encoder.PutBool(row.diagnosed_cause.has_value());
  encoder.PutString(row.diagnosed_cause.value_or(""));
  encoder.PutVarint64(row.divergences);
  encoder.PutDouble(row.fidelity);
  encoder.PutDouble(row.efficiency);
  encoder.PutDouble(row.utility);
  encoder.PutDouble(row.original_wall_seconds);
  encoder.PutDouble(row.replay_wall_seconds);
  encoder.PutVarint64(row.input_assignment.size());
  for (int64_t value : row.input_assignment) {
    encoder.PutZigzag64(value);
  }
  return encoder.TakeBuffer();
}

Result<BatchCell> DecodeBatchCell(std::span<const uint8_t> payload) {
  Decoder decoder(payload.data(), payload.size());
  BatchCell cell;
  ExperimentRow& row = cell.row;
  ASSIGN_OR_RETURN(cell.scenario, decoder.GetString());
  ASSIGN_OR_RETURN(cell.recording_name, decoder.GetString());
  ASSIGN_OR_RETURN(row.model_name, decoder.GetString());
  ASSIGN_OR_RETURN(std::string model, decoder.GetString());
  ASSIGN_OR_RETURN(row.model, ParseDeterminismModel(model));
  ASSIGN_OR_RETURN(row.overhead_multiplier, decoder.GetDouble());
  ASSIGN_OR_RETURN(row.log_bytes, decoder.GetVarint64());
  ASSIGN_OR_RETURN(row.recorded_events, decoder.GetVarint64());
  ASSIGN_OR_RETURN(row.failure_reproduced, decoder.GetBool());
  ASSIGN_OR_RETURN(bool diagnosed, decoder.GetBool());
  ASSIGN_OR_RETURN(std::string cause, decoder.GetString());
  if (diagnosed) {
    row.diagnosed_cause = std::move(cause);
  }
  ASSIGN_OR_RETURN(row.divergences, decoder.GetVarint64());
  ASSIGN_OR_RETURN(row.fidelity, decoder.GetDouble());
  ASSIGN_OR_RETURN(row.efficiency, decoder.GetDouble());
  ASSIGN_OR_RETURN(row.utility, decoder.GetDouble());
  ASSIGN_OR_RETURN(row.original_wall_seconds, decoder.GetDouble());
  ASSIGN_OR_RETURN(row.replay_wall_seconds, decoder.GetDouble());
  ASSIGN_OR_RETURN(uint64_t inputs, decoder.GetVarint64());
  if (inputs > payload.size()) {
    return InvalidArgumentError("input assignment count exceeds payload size");
  }
  row.input_assignment.reserve(inputs);
  for (uint64_t i = 0; i < inputs; ++i) {
    ASSIGN_OR_RETURN(int64_t value, decoder.GetZigzag64());
    row.input_assignment.push_back(value);
  }
  RETURN_IF_ERROR(CheckDone(decoder, "replay"));
  return cell;
}

}  // namespace ddr
