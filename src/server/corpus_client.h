// CorpusClient: the library half of the serve/query protocol.
//
// One client owns one connection and speaks the synchronous
// request/response protocol from protocol.h: each call sends one frame
// and blocks for the answering frame. Server-side errors come back as
// the server's Status verbatim (code + message), transport failures as
// Unavailable — so `Unavailable: server overloaded ...` is what an
// admission-queue rejection looks like from here. Concurrency is
// per-connection: to issue requests in parallel, open more clients
// (exactly what the lifecycle tests and the bench do).

#ifndef SRC_SERVER_CORPUS_CLIENT_H_
#define SRC_SERVER_CORPUS_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/server/protocol.h"
#include "src/util/socket.h"

namespace ddr {

class CorpusClient {
 public:
  static Result<CorpusClient> ConnectUnixSocket(const std::string& path);
  // `host` numeric IPv4; pair with CorpusServer::tcp_port().
  static Result<CorpusClient> ConnectTcpSocket(const std::string& host,
                                               uint16_t port);

  CorpusClient(CorpusClient&&) = default;
  CorpusClient& operator=(CorpusClient&&) = default;

  Result<ServeInfo> Info();
  Result<std::vector<ServeEntry>> List();
  // name "" = verify the whole bundle; returns entries verified.
  Result<uint64_t> Verify(const std::string& name = {});
  // The scored cell, bit-identical (RowSignature) to an in-process
  // replay of the same entry. `model` empty = the entry's stamped model.
  Result<BatchCell> Replay(const std::string& name,
                           const std::string& model = {});
  Result<ServeStats> Stats();
  Result<ServeRefresh> Refresh();
  // Acknowledged before the server starts draining.
  Status Shutdown();

 private:
  explicit CorpusClient(Socket socket) : socket_(std::move(socket)) {}

  // One round trip; returns the OK payload or the server's Status.
  Result<std::vector<uint8_t>> Call(const RpcRequest& request);

  Socket socket_;
};

}  // namespace ddr

#endif  // SRC_SERVER_CORPUS_CLIENT_H_
