// CorpusClient: the library half of the serve/query protocol.
//
// One client owns one connection and speaks the synchronous
// request/response protocol from protocol.h: each call sends one frame
// and blocks for the answering frame. Server-side errors come back as
// the server's Status verbatim (code + message), transport failures as
// Unavailable — so `Unavailable: server overloaded ...` is what an
// admission-queue rejection looks like from here. Concurrency is
// per-connection: to issue requests in parallel, open more clients
// (exactly what the lifecycle tests and the bench do).
//
// Resilience is opt-in via CorpusClientOptions. With a timeout set, a
// stalled server yields DeadlineExceeded (never an indefinite hang); with
// retries set, transient failures — connect refusals, Unavailable
// transport or overload errors, deadline misses — are retried on a fresh
// connection with exponential backoff and deterministic jitter. Every
// command the client issues is idempotent (reads, counters, an ack'd
// drain), so a retried request returns the same answer: replay rows are
// bit-identical (RowSignature) across however many attempts it took.

#ifndef SRC_SERVER_CORPUS_CLIENT_H_
#define SRC_SERVER_CORPUS_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/server/protocol.h"
#include "src/util/socket.h"

namespace ddr {

struct CorpusClientOptions {
  // Budget for one response frame, measured from the request send.
  // <= 0 blocks forever (the historical behavior).
  int timeout_ms = 0;
  // Extra attempts after the first, on retriable failures only. 0 keeps
  // every failure loud on the first miss.
  int max_retries = 0;
  // Exponential backoff between attempts: the delay starts at
  // backoff_initial_ms, doubles per retry, and is capped at
  // backoff_max_ms; the upper half of each delay is jittered so a fleet
  // of retrying clients decorrelates instead of stampeding.
  int backoff_initial_ms = 20;
  int backoff_max_ms = 1000;
  // Jitter PRNG seed; 0 picks a fixed default. Deterministic by design —
  // tests can reproduce an exact retry schedule.
  uint64_t jitter_seed = 0;
};

class CorpusClient {
 public:
  static Result<CorpusClient> ConnectUnixSocket(
      const std::string& path, const CorpusClientOptions& options = {});
  // `host` numeric IPv4; pair with CorpusServer::tcp_port().
  static Result<CorpusClient> ConnectTcpSocket(
      const std::string& host, uint16_t port,
      const CorpusClientOptions& options = {});

  CorpusClient(CorpusClient&&) = default;
  CorpusClient& operator=(CorpusClient&&) = default;

  Result<ServeInfo> Info();
  Result<std::vector<ServeEntry>> List();
  // name "" = verify the whole bundle; returns entries verified.
  Result<uint64_t> Verify(const std::string& name = {});
  // The scored cell, bit-identical (RowSignature) to an in-process
  // replay of the same entry. `model` empty = the entry's stamped model.
  Result<BatchCell> Replay(const std::string& name,
                           const std::string& model = {});
  Result<ServeStats> Stats();
  Result<ServeRefresh> Refresh();
  // Acknowledged before the server starts draining.
  Status Shutdown();

 private:
  enum class EndpointKind { kUnix, kTcp };

  CorpusClient(Socket socket, EndpointKind kind, std::string target,
               uint16_t port, const CorpusClientOptions& options);

  static Result<CorpusClient> ConnectWithRetry(
      EndpointKind kind, const std::string& target, uint16_t port,
      const CorpusClientOptions& options);

  // The retry loop: reconnects when the connection was dropped by a
  // prior failed attempt, runs CallOnce, and backs off between
  // retriable failures until the attempt budget runs out.
  Result<std::vector<uint8_t>> Call(const RpcRequest& request);

  // One round trip on the current connection; returns the OK payload or
  // the server's Status.
  Result<std::vector<uint8_t>> CallOnce(const RpcRequest& request);

  Socket socket_;
  EndpointKind kind_ = EndpointKind::kUnix;
  std::string target_;
  uint16_t port_ = 0;
  CorpusClientOptions options_;
  uint64_t rng_state_ = 0;
};

}  // namespace ddr

#endif  // SRC_SERVER_CORPUS_CLIENT_H_
