#include "src/server/corpus_server.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "src/apps/scenarios.h"
#include "src/util/codec.h"
#include "src/util/fault_injection.h"
#include "src/util/file_lock.h"
#include "src/util/socket.h"
#include "src/util/string_util.h"
#include "src/util/thread_annotations.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define DDR_SERVER_HAVE_UNLINK 1
#else
#define DDR_SERVER_HAVE_UNLINK 0
#endif

namespace ddr {

namespace {

// One accepted client. The write mutex serializes response frames: a
// worker finishing a queued request and the reader thread answering an
// overload for the same client must never interleave bytes.
struct Connection {
  uint64_t id = 0;
  // Read exclusively by the connection's reader thread; written (response
  // frames) by whichever thread holds write_mu. Not GUARDED_BY: reads and
  // writes of a connected socket are independently safe, the mutex only
  // keeps response frames from interleaving.
  Socket socket;
  Mutex write_mu;
};

struct Task {
  std::shared_ptr<Connection> conn;
  RpcRequest request;
};

enum class PushResult : uint8_t {
  kAccepted = 0,
  kFull = 1,    // bounded queue overflow -> loud Unavailable
  kClosed = 2,  // server draining -> Unavailable, but not an overload
};

RpcResponse ErrorResponse(const Status& status) {
  RpcResponse response;
  response.code = status.code();
  response.message = status.message();
  return response;
}

RpcResponse OkResponse(std::vector<uint8_t> payload = {}) {
  RpcResponse response;
  response.payload = std::move(payload);
  return response;
}

}  // namespace

struct CorpusServer::Impl {
  std::string bundle_path;
  CorpusServerOptions options;
  uint16_t tcp_port = 0;  // resolved after a port-0 bind

  Socket listener;
  bool unix_endpoint = false;

  // The one shared reader + cache. Requests execute under the shared
  // side; Refresh swaps generations under the exclusive side (windows
  // handed out before a Reopen stay valid, so in-flight requests only
  // need to have *entered* under the old index, not to outlive the swap).
  mutable SharedMutex reader_mu;
  std::optional<CorpusReader> reader GUARDED_BY(reader_mu);

  // Immutable after Start and internally synchronized (prep futures
  // behind its own mutex), so not guarded by reader_mu.
  std::optional<CorpusEntryScorer> scorer;

  // Bounded admission queue.
  Mutex queue_mu;
  CondVar queue_cv;
  std::deque<Task> queue GUARDED_BY(queue_mu);
  bool queue_closed GUARDED_BY(queue_mu) = false;

  // Connection registry (for drain wakeups) + reader threads.
  Mutex conn_mu;
  std::vector<std::shared_ptr<Connection>> connections GUARDED_BY(conn_mu);
  std::vector<OsThread> conn_threads GUARDED_BY(conn_mu);
  uint64_t next_conn_id GUARDED_BY(conn_mu) = 1;

  OsThread accept_thread;
  std::vector<OsThread> workers;
  OsThread watcher;

  std::atomic<bool> stop{false};
  Mutex stop_mu;
  CondVar stop_cv;
  std::once_flag drain_once;

  // Counters (see ServeStats).
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> requests_by_command[kRpcCommandCount] = {};
  std::atomic<uint64_t> bytes_served{0};
  std::atomic<uint64_t> overload_rejections{0};
  std::atomic<uint64_t> refreshes{0};
  std::atomic<uint64_t> generations_picked_up{0};
  std::atomic<uint64_t> clients_total{0};
  std::atomic<uint64_t> clients_active{0};

  // --- queue ---------------------------------------------------------

  PushResult TryPush(Task task) {
    {
      MutexLock lock(queue_mu);
      if (queue_closed) {
        return PushResult::kClosed;
      }
      if (queue.size() >= std::max<size_t>(options.queue_capacity, 1)) {
        return PushResult::kFull;
      }
      queue.push_back(std::move(task));
    }
    queue_cv.NotifyOne();
    return PushResult::kAccepted;
  }

  // Blocks for work; nullopt once the queue is closed and drained.
  std::optional<Task> Pop() {
    MutexLock lock(queue_mu);
    while (queue.empty() && !queue_closed) {
      queue_cv.Wait(queue_mu);
    }
    if (queue.empty()) {
      return std::nullopt;
    }
    Task task = std::move(queue.front());
    queue.pop_front();
    return task;
  }

  // --- responses -----------------------------------------------------

  void WriteResponse(Connection& conn, const RpcResponse& response) {
    // Injection site: a `stall` plan delays the response (the client-side
    // deadline test), a failing plan drops it outright (a wedged server —
    // the client's timeout is its only way out).
    if (!FaultPoint("server.respond").ok()) {
      return;
    }
    const std::vector<uint8_t> payload = EncodeResponse(response);
    MutexLock lock(conn.write_mu);
    // A failed write means the client went away; its reader thread sees
    // the close independently, so the error is dropped, not propagated.
    if (WriteFrame(conn.socket, payload).ok()) {
      bytes_served.fetch_add(payload.size() + kRpcFrameHeaderBytes,
                             std::memory_order_relaxed);
    }
  }

  // --- request execution ---------------------------------------------

  RpcResponse Handle(const RpcRequest& request) {
    switch (request.command) {
      case RpcCommand::kInfo:
        return HandleInfo();
      case RpcCommand::kList:
        return HandleList();
      case RpcCommand::kVerify:
        return HandleVerify(request.name);
      case RpcCommand::kReplay:
        return HandleReplay(request.name, request.model);
      case RpcCommand::kStats:
        return OkResponse(EncodeServeStats(Snapshot()));
      case RpcCommand::kRefresh: {
        auto refreshed = Refresh();
        if (!refreshed.ok()) {
          return ErrorResponse(refreshed.status());
        }
        return OkResponse(EncodeServeRefresh(*refreshed));
      }
      case RpcCommand::kShutdown:
        // Normally answered inline by the reader thread; acknowledging
        // here too keeps a queued one harmless.
        return OkResponse();
    }
    return ErrorResponse(InvalidArgumentError("unknown rpc command"));
  }

  RpcResponse HandleInfo() {
    ReaderMutexLock lock(reader_mu);
    ServeInfo info;
    info.path = reader->path();
    info.file_size = reader->file_size();
    info.journaled = reader->journaled();
    info.format_version = reader->format_version();
    info.generation = reader->generation();
    info.dead_bytes = reader->dead_bytes();
    info.entry_count = reader->entries().size();
    info.io_backend = std::string(IoBackendName(reader->io_backend()));
    // The probe never blocks; on probe failure report "no writer" rather
    // than failing the whole info (the rest of the answer is still good).
    info.writer_active = CorpusWriterActive(bundle_path).value_or(false);
    return OkResponse(EncodeServeInfo(info));
  }

  RpcResponse HandleList() {
    ReaderMutexLock lock(reader_mu);
    std::vector<ServeEntry> entries;
    entries.reserve(reader->entries().size());
    for (const CorpusEntry& entry : reader->entries()) {
      ServeEntry row;
      row.name = entry.name;
      row.model = entry.model;
      row.scenario = entry.scenario;
      row.event_count = entry.event_count;
      row.length = entry.length;
      entries.push_back(std::move(row));
    }
    return OkResponse(EncodeServeEntries(entries));
  }

  RpcResponse HandleVerify(const std::string& name) {
    ReaderMutexLock lock(reader_mu);
    if (name.empty()) {
      if (Status verified = reader->VerifyAll(); !verified.ok()) {
        return ErrorResponse(verified);
      }
      Encoder encoder;
      encoder.PutVarint64(reader->entries().size());
      return OkResponse(encoder.TakeBuffer());
    }
    const CorpusEntry* entry = reader->Find(name);
    if (entry == nullptr) {
      return ErrorResponse(
          NotFoundError("no corpus entry named '" + name + "'"));
    }
    auto trace = reader->OpenTrace(*entry);
    if (!trace.ok()) {
      return ErrorResponse(trace.status());
    }
    if (Status verified = trace->Verify(); !verified.ok()) {
      return ErrorResponse(Status(
          verified.code(),
          "corpus entry '" + name + "': " + verified.message()));
    }
    Encoder encoder;
    encoder.PutVarint64(1);
    return OkResponse(encoder.TakeBuffer());
  }

  RpcResponse HandleReplay(const std::string& name, const std::string& model) {
    if (name.empty()) {
      return ErrorResponse(
          InvalidArgumentError("replay needs an entry name"));
    }
    ReaderMutexLock lock(reader_mu);
    const CorpusEntry* entry = reader->Find(name);
    if (entry == nullptr) {
      return ErrorResponse(
          NotFoundError("no corpus entry named '" + name + "'"));
    }
    auto cell = scorer->ScoreEntry(*reader, *entry, model);
    if (!cell.ok()) {
      return ErrorResponse(cell.status());
    }
    return OkResponse(EncodeBatchCell(*cell));
  }

  Result<ServeRefresh> Refresh() {
    WriterMutexLock lock(reader_mu);
    ServeRefresh out;
    out.generation_before = reader->generation();
    out.entries_before = reader->entries().size();
    // On failure the reader is untouched and keeps serving the old
    // generation — the caller sees the error, clients see no change.
    RETURN_IF_ERROR(reader->Reopen());
    out.generation_after = reader->generation();
    out.entries_after = reader->entries().size();
    out.picked_up = out.generation_after != out.generation_before ||
                    out.entries_after != out.entries_before;
    refreshes.fetch_add(1, std::memory_order_relaxed);
    if (out.picked_up) {
      generations_picked_up.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
  }

  ServeStats Snapshot() const {
    ServeStats stats;
    stats.requests_total = requests_total.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kRpcCommandCount; ++i) {
      stats.requests_by_command[i] =
          requests_by_command[i].load(std::memory_order_relaxed);
    }
    stats.bytes_served = bytes_served.load(std::memory_order_relaxed);
    stats.overload_rejections =
        overload_rejections.load(std::memory_order_relaxed);
    stats.refreshes = refreshes.load(std::memory_order_relaxed);
    stats.generations_picked_up =
        generations_picked_up.load(std::memory_order_relaxed);
    stats.clients_total = clients_total.load(std::memory_order_relaxed);
    stats.clients_active = clients_active.load(std::memory_order_relaxed);
    ReaderMutexLock lock(reader_mu);
    stats.generation = reader->generation();
    stats.entry_count = reader->entries().size();
    stats.corpus_bytes_read = reader->bytes_read();
    stats.cache = reader->cache_stats();
    return stats;
  }

  // --- threads -------------------------------------------------------

  void AcceptLoop() {
    while (!stop.load(std::memory_order_acquire)) {
      // Short poll timeout keeps the loop responsive to RequestStop
      // without busy-waiting.
      auto readable = WaitReadable(listener, 200);
      if (!readable.ok() || !*readable) {
        continue;
      }
      auto accepted = AcceptConnection(listener);
      if (!accepted.ok()) {
        continue;  // transient (e.g. client gone before accept)
      }
      auto conn = std::make_shared<Connection>();
      conn->socket = std::move(*accepted);
      clients_total.fetch_add(1, std::memory_order_relaxed);
      clients_active.fetch_add(1, std::memory_order_relaxed);
      {
        MutexLock lock(conn_mu);
        conn->id = next_conn_id++;
        connections.push_back(conn);
        conn_threads.emplace_back([this, conn] { ServeConnection(conn); });
      }
    }
  }

  void ServeConnection(std::shared_ptr<Connection> conn) {
    while (true) {
      // Idle wait: unbounded but stoppable — a connected-but-quiet client
      // is legitimate and costs only a 200ms poll. The request deadline
      // starts once the first bytes of a frame arrive.
      bool readable = false;
      while (!stop.load(std::memory_order_acquire)) {
        auto wait = WaitReadable(conn->socket, 200);
        if (!wait.ok()) {
          break;  // poll error: treat the connection as gone
        }
        if (*wait) {
          readable = true;
          break;
        }
      }
      if (!readable) {
        break;  // draining, or the socket errored out
      }
      auto frame =
          ReadFrameWithDeadline(conn->socket, options.request_timeout_ms);
      if (!frame.ok()) {
        // Torn frame / bad magic / CRC mismatch — or a mid-frame stall
        // past the request deadline: the stream is not trustworthy (or
        // not worth a thread) past this point. Best-effort answer, then
        // hang up.
        WriteResponse(*conn, ErrorResponse(frame.status()));
        break;
      }
      if (!frame->has_value()) {
        break;  // clean EOF
      }
      auto request = DecodeRequest(**frame);
      if (!request.ok()) {
        // The framing was sound, so the stream stays usable: answer the
        // error and keep the connection.
        WriteResponse(*conn, ErrorResponse(request.status()));
        continue;
      }
      requests_total.fetch_add(1, std::memory_order_relaxed);
      requests_by_command[static_cast<size_t>(request->command)].fetch_add(
          1, std::memory_order_relaxed);
      if (request->command == RpcCommand::kShutdown) {
        // Control command: answered inline (it must not sit behind — or
        // be rejected by — a full queue), acked before the drain starts.
        WriteResponse(*conn, OkResponse());
        RequestStop();
        continue;
      }
      switch (TryPush(Task{conn, std::move(*request)})) {
        case PushResult::kAccepted:
          break;
        case PushResult::kFull:
          overload_rejections.fetch_add(1, std::memory_order_relaxed);
          WriteResponse(
              *conn,
              ErrorResponse(UnavailableError(StrPrintf(
                  "server overloaded: admission queue is full (%zu)",
                  std::max<size_t>(options.queue_capacity, 1)))));
          break;
        case PushResult::kClosed:
          WriteResponse(*conn, ErrorResponse(UnavailableError(
                                   "server is draining (shutdown)")));
          break;
      }
    }
    clients_active.fetch_sub(1, std::memory_order_relaxed);
    MutexLock lock(conn_mu);
    for (size_t i = 0; i < connections.size(); ++i) {
      if (connections[i]->id == conn->id) {
        connections.erase(connections.begin() + i);
        break;
      }
    }
  }

  void WorkerLoop() {
    while (auto task = Pop()) {
      if (options.debug_handler_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.debug_handler_delay_ms));
      }
      WriteResponse(*task->conn, Handle(task->request));
    }
  }

  void WatcherLoop() {
    using Clock = std::chrono::steady_clock;
    auto next_probe =
        Clock::now() + std::chrono::milliseconds(options.watch_interval_ms);
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (Clock::now() < next_probe) {
        continue;
      }
      next_probe =
          Clock::now() + std::chrono::milliseconds(options.watch_interval_ms);
      struct stat st;
      if (::stat(bundle_path.c_str(), &st) != 0) {
        continue;
      }
      uint64_t seen = 0;
      {
        ReaderMutexLock lock(reader_mu);
        seen = reader->file_size();
      }
      if (static_cast<uint64_t>(st.st_size) != seen) {
        // Size moved: attempt the pickup. Reopen does the real trailer
        // inspection; a mid-append (unpublished) tail reopens to the
        // same generation and counts as no pickup. Errors leave the old
        // generation serving and the next probe retries.
        (void)Refresh();
      }
    }
  }

  void RequestStop() {
    stop.store(true, std::memory_order_release);
    // Pair the notify with the waiter's predicate check: without taking
    // stop_mu here, the store + notify could both land in the window
    // between Wait()'s check (under the mutex) and its sleep, and the
    // wakeup would be lost — Wait() would hang until process exit. An
    // empty critical section is enough; RequestStop is never called from
    // a signal handler (handlers set their own sig_atomic_t flag).
    { MutexLock lock(stop_mu); }
    stop_cv.NotifyAll();
  }

  void Drain() {
    std::call_once(drain_once, [&] {
      stop.store(true, std::memory_order_release);
      // 1. Stop accepting; release the endpoint.
      if (accept_thread.joinable()) {
        accept_thread.join();
      }
      listener.Close();
#if DDR_SERVER_HAVE_UNLINK
      if (unix_endpoint) {
        ::unlink(options.socket_path.c_str());
      }
#endif
      if (watcher.joinable()) {
        watcher.join();
      }
      // 2. Close the queue: reader threads answer "draining" from here
      // on; workers finish everything already admitted, then exit.
      {
        MutexLock lock(queue_mu);
        queue_closed = true;
      }
      queue_cv.NotifyAll();
      for (OsThread& worker : workers) {
        if (worker.joinable()) {
          worker.join();
        }
      }
      // 3. Every admitted response has been written. Wake reader threads
      // blocked on idle connections, then join them. The threads are
      // swapped out under the lock and joined outside it — exiting reader
      // threads take conn_mu to deregister themselves, so joining while
      // holding it would deadlock.
      std::vector<OsThread> to_join;
      {
        MutexLock lock(conn_mu);
        for (const auto& conn : connections) {
          conn->socket.ShutdownBoth();
        }
        to_join.swap(conn_threads);
      }
      for (OsThread& thread : to_join) {
        if (thread.joinable()) {
          thread.join();
        }
      }
      {
        MutexLock lock(conn_mu);
        connections.clear();
      }
    });
  }
};

CorpusServer::CorpusServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

CorpusServer::~CorpusServer() {
  impl_->RequestStop();
  impl_->Drain();
}

Result<std::unique_ptr<CorpusServer>> CorpusServer::Start(
    const std::string& bundle_path, const CorpusServerOptions& options) {
  const bool unix_endpoint = !options.socket_path.empty();
  if (unix_endpoint == (options.tcp_port >= 0)) {
    return InvalidArgumentError(
        "serve needs exactly one endpoint: --socket <path> or --port <n>");
  }
  auto impl = std::make_unique<Impl>();
  impl->bundle_path = bundle_path;
  impl->options = options;
  impl->unix_endpoint = unix_endpoint;

  // Open the bundle first — a server with nothing to serve must fail
  // before it binds the endpoint.
  ASSIGN_OR_RETURN(CorpusReader reader,
                   CorpusReader::Open(bundle_path, options.reader));
  {
    // No other thread exists yet; the lock exists for the analysis (and
    // costs nothing uncontended).
    WriterMutexLock lock(impl->reader_mu);
    impl->reader.emplace(std::move(reader));
  }
  impl->scorer.emplace(options.scenarios.empty() ? AllBugScenarios()
                                                 : options.scenarios);

  if (unix_endpoint) {
    ASSIGN_OR_RETURN(impl->listener, ListenUnix(options.socket_path));
  } else {
    ASSIGN_OR_RETURN(impl->listener,
                     ListenTcp(static_cast<uint16_t>(options.tcp_port)));
    ASSIGN_OR_RETURN(impl->tcp_port, LocalPort(impl->listener));
  }

  const int workers = std::max(options.workers, 1);
  impl->workers.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    impl->workers.emplace_back([impl_ptr = impl.get()] {
      impl_ptr->WorkerLoop();
    });
  }
  impl->accept_thread =
      OsThread([impl_ptr = impl.get()] { impl_ptr->AcceptLoop(); });
  if (options.watch_interval_ms > 0) {
    impl->watcher =
        OsThread([impl_ptr = impl.get()] { impl_ptr->WatcherLoop(); });
  }
  return std::unique_ptr<CorpusServer>(new CorpusServer(std::move(impl)));
}

const std::string& CorpusServer::socket_path() const {
  return impl_->options.socket_path;
}

uint16_t CorpusServer::tcp_port() const { return impl_->tcp_port; }

bool CorpusServer::running() const {
  return !impl_->stop.load(std::memory_order_acquire);
}

void CorpusServer::RequestStop() { impl_->RequestStop(); }

void CorpusServer::Wait() {
  {
    MutexLock lock(impl_->stop_mu);
    while (!impl_->stop.load(std::memory_order_acquire)) {
      impl_->stop_cv.Wait(impl_->stop_mu);
    }
  }
  impl_->Drain();
}

Result<ServeRefresh> CorpusServer::Refresh() { return impl_->Refresh(); }

ServeStats CorpusServer::Snapshot() const { return impl_->Snapshot(); }

}  // namespace ddr
