// CorpusServer: the long-lived corpus-serving daemon behind
// `ddr-trace serve`.
//
// One server owns one CorpusReader — one RandomAccessFile handle, one
// shared decoded-chunk cache — and multiplexes many concurrent clients
// over a unix-domain socket (or loopback TCP) speaking the protocol in
// protocol.h. This is the paper's deployment shape made concrete: replay
// debugging as an always-on facility, where N debuggers hit one warm
// corpus instead of each paying a cold open.
//
// Threading model:
//
//   accept loop     polls the listener (stoppable), spawns one reader
//                   thread per connection;
//   reader threads  decode frames and TryPush {connection, request} into
//                   a bounded admission queue — on overflow the reader
//                   itself answers Unavailable immediately (loud
//                   overload, never silent unbounded queuing);
//   worker pool     pops requests, executes them under a shared reader
//                   lock, writes the response under the connection's
//                   write mutex (shutdown is answered inline by the
//                   reader thread: a control command must not sit behind
//                   a full queue).
//
// Append coordination: the single-writer append path (flock'd, ordered
// fsyncs) grows the bundle while the server serves it — published bytes
// are never mutated, so in-flight requests are undisturbed. A `refresh`
// request (or the optional watcher thread, which polls the file size)
// swaps the new generation in via CorpusReader::Reopen under an
// exclusive lock: requests in flight finish on the old index first, the
// ChunkCache object — and its counters — carries over, and a failed
// reopen leaves the old generation serving.
//
// Graceful drain (SIGTERM path): stop accepting, answer new requests
// with Unavailable, finish everything already admitted, then unblock and
// join every thread. RequestStop is async-signal-compatible in effect
// (sets a flag the loops poll); Wait() performs the actual drain.

#ifndef SRC_SERVER_CORPUS_SERVER_H_
#define SRC_SERVER_CORPUS_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/bug_scenario.h"
#include "src/server/protocol.h"
#include "src/trace/corpus.h"

namespace ddr {

struct CorpusServerOptions {
  // Exactly one endpoint: a unix-domain socket path, or a loopback TCP
  // port (>= 0; 0 = kernel-assigned, read back with tcp_port()).
  std::string socket_path;
  int tcp_port = -1;

  // Request executor shape.
  int workers = 4;
  size_t queue_capacity = 32;

  // Reader handle + shared cache configuration.
  CorpusReaderOptions reader;

  // Scenario registry replay requests score against (stamped scenario
  // names resolve here). Empty = the full built-in registry
  // (AllBugScenarios).
  std::vector<BugScenario> scenarios;

  // > 0: a watcher thread polls the bundle's size every this-many
  // milliseconds and triggers a refresh when it changed (the cheap probe;
  // Reopen then does the real trailer inspection). 0 = explicit refresh
  // requests only.
  int watch_interval_ms = 0;

  // Budget for reading one request frame once its first bytes arrive. A
  // client that connects and goes quiet costs nothing (idle waits are
  // unbounded, stoppable polls); a client that stalls mid-frame is cut
  // loose after this long instead of pinning its reader thread forever.
  // <= 0 disables the deadline.
  int request_timeout_ms = 10000;

  // Test hook: stall every worker this long before executing a request,
  // making queue overflow deterministic. Never set it in production.
  int debug_handler_delay_ms = 0;
};

class CorpusServer {
 public:
  // Opens the bundle (a torn tail recovers to the last valid generation,
  // exactly like CorpusReader::Open), binds the endpoint, and starts the
  // threads. The returned server is already accepting.
  static Result<std::unique_ptr<CorpusServer>> Start(
      const std::string& bundle_path, const CorpusServerOptions& options);

  // Drains and joins if still running.
  ~CorpusServer();

  CorpusServer(const CorpusServer&) = delete;
  CorpusServer& operator=(const CorpusServer&) = delete;

  // The bound endpoint (socket_path as configured; tcp_port resolved
  // after a port-0 bind).
  const std::string& socket_path() const;
  uint16_t tcp_port() const;

  // False once a stop has been requested (SIGTERM loop condition).
  bool running() const;

  // Flags the server to stop. Cheap, idempotent, safe from any thread —
  // including a connection reader answering a shutdown request. Does not
  // block; pair with Wait().
  void RequestStop();

  // Blocks until a stop is requested, then performs the graceful drain:
  // stop accepting, finish admitted requests, join every thread, unlink
  // a unix socket path. Idempotent; returns once fully drained.
  void Wait();

  // The explicit generation pickup (also what the `refresh` RPC calls).
  Result<ServeRefresh> Refresh();

  // Snapshot of the server-wide counters (also the `stats` RPC body).
  ServeStats Snapshot() const;

 private:
  struct Impl;
  explicit CorpusServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace ddr

#endif  // SRC_SERVER_CORPUS_SERVER_H_
