// The corpus-serving wire protocol: length-prefixed, CRC'd frames over a
// stream socket, carrying codec-encoded request/response payloads.
//
// Frame layout (all fixed32 little-endian, same codec as the trace
// format):
//
//   [magic "DRPC"][payload length][crc32(payload)][payload bytes]
//
// The 12-byte header is read first, validated (magic, a hard payload
// bound so a corrupt length can never drive a huge allocation), then the
// payload is read and CRC-checked before a byte of it is decoded — the
// same trust-nothing posture as the trace reader. One request frame gets
// exactly one response frame; the protocol is synchronous per connection
// (a client pipelines by opening more connections, which is also how the
// server's concurrency is exercised).
//
// Requests are a command byte plus optional entry name / model operands.
// Responses carry a status code + message (the server's Status, verbatim)
// and, on OK, a command-specific body:
//
//   info     -> ServeInfo            (bundle shape + writer-lock probe)
//   list     -> vector<ServeEntry>   (index skim, no entry decodes)
//   verify   -> entries verified     (varint; name "" = whole bundle)
//   replay   -> BatchCell            (every RowSignature field crosses
//                                     the wire bit-exactly: doubles ship
//                                     as fixed64 bit patterns)
//   stats    -> ServeStats           (server counters + cache counters)
//   refresh  -> ServeRefresh         (generation before/after)
//   shutdown -> empty ack, then the server drains
//
// This header is shared by CorpusServer, CorpusClient, and the tests, so
// there is exactly one encoder and one decoder for every message shape.

#ifndef SRC_SERVER_PROTOCOL_H_
#define SRC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/batch_runner.h"
#include "src/trace/chunk_cache.h"
#include "src/util/socket.h"
#include "src/util/status.h"

namespace ddr {

inline constexpr uint32_t kRpcFrameMagic = 0x43505244u;  // "DRPC"
inline constexpr size_t kRpcFrameHeaderBytes = 12;
// Hard bound on one payload. Responses are index skims, one scored row,
// or counters — far below this; a length field past it is corruption (or
// a stray client speaking another protocol), not a big message.
inline constexpr uint32_t kRpcMaxPayloadBytes = 64u << 20;

enum class RpcCommand : uint8_t {
  kInfo = 0,
  kList = 1,
  kVerify = 2,
  kReplay = 3,
  kStats = 4,
  kRefresh = 5,
  kShutdown = 6,
};
inline constexpr size_t kRpcCommandCount = 7;

std::string_view RpcCommandName(RpcCommand command);
Result<RpcCommand> ParseRpcCommand(const std::string& name);

struct RpcRequest {
  RpcCommand command = RpcCommand::kInfo;
  std::string name;   // verify/replay operand ("" = whole bundle verify)
  std::string model;  // replay model override ("" = entry's stamped model)
};

struct RpcResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;            // the server Status message on error
  std::vector<uint8_t> payload;   // command-specific body when code == kOk

  bool ok() const { return code == StatusCode::kOk; }
  Status ToStatus() const {
    return ok() ? OkStatus() : Status(code, message);
  }
};

// ------------------------------------------------------------- framing

// Sends one frame (header + payload).
Status WriteFrame(const Socket& socket, std::span<const uint8_t> payload);

// Receives one frame. nullopt = the peer closed cleanly on a frame
// boundary; errors cover torn frames, bad magic, oversized lengths, and
// CRC mismatches — after any of which the byte stream is untrustworthy
// and the connection should be dropped.
Result<std::optional<std::vector<uint8_t>>> ReadFrame(const Socket& socket);

// ReadFrame with a total time budget. `timeout_ms <= 0` blocks forever
// (identical to ReadFrame). Otherwise the read polls WaitReadable between
// recv chunks and a stalled peer yields DeadlineExceeded — a distinct
// code from the Unavailable/InvalidArgument socket and framing errors, so
// callers can treat "slow" differently from "broken". The budget covers
// the whole frame (header + payload), measured from the call.
Result<std::optional<std::vector<uint8_t>>> ReadFrameWithDeadline(
    const Socket& socket, int timeout_ms);

// ------------------------------------------------------------ messages

std::vector<uint8_t> EncodeRequest(const RpcRequest& request);
Result<RpcRequest> DecodeRequest(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeResponse(const RpcResponse& response);
Result<RpcResponse> DecodeResponse(std::span<const uint8_t> payload);

// -------------------------------------------------------- typed bodies

// `info`: the bundle as the server currently sees it.
struct ServeInfo {
  std::string path;
  uint64_t file_size = 0;
  bool journaled = false;
  // Corpus header format version (1 single-shot, 2 full-index journal,
  // 3 delta-index journal).
  uint32_t format_version = 1;
  uint32_t generation = 1;
  uint64_t dead_bytes = 0;
  uint64_t entry_count = 0;
  std::string io_backend;
  // Snapshot of the writer-lock probe: an in-place appender holds the
  // bundle's flock right now.
  bool writer_active = false;
};

// `list`: one index row per entry (offsets stay server-side).
struct ServeEntry {
  std::string name;
  std::string model;
  std::string scenario;
  uint64_t event_count = 0;
  uint64_t length = 0;
};

// `refresh`: what Reopen found.
struct ServeRefresh {
  uint32_t generation_before = 0;
  uint32_t generation_after = 0;
  uint64_t entries_before = 0;
  uint64_t entries_after = 0;
  // True when the reopen surfaced a new generation or entry set.
  bool picked_up = false;
};

// `stats`: server-wide counters. The cache counters come from the one
// shared ChunkCache — which survives refresh by design, so hits keep
// accumulating across generation swaps.
struct ServeStats {
  uint64_t requests_total = 0;
  uint64_t requests_by_command[kRpcCommandCount] = {};
  uint64_t bytes_served = 0;  // response frame bytes actually written
  uint64_t overload_rejections = 0;
  uint64_t refreshes = 0;
  uint64_t generations_picked_up = 0;
  uint64_t clients_total = 0;
  uint64_t clients_active = 0;
  uint32_t generation = 1;
  uint64_t entry_count = 0;
  uint64_t corpus_bytes_read = 0;
  ChunkCacheStats cache;
};

std::vector<uint8_t> EncodeServeInfo(const ServeInfo& info);
Result<ServeInfo> DecodeServeInfo(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeServeEntries(const std::vector<ServeEntry>& entries);
Result<std::vector<ServeEntry>> DecodeServeEntries(
    std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeServeRefresh(const ServeRefresh& refresh);
Result<ServeRefresh> DecodeServeRefresh(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeServeStats(const ServeStats& stats);
Result<ServeStats> DecodeServeStats(std::span<const uint8_t> payload);

// `replay`'s body: the scored cell. Doubles are shipped as their exact
// bit patterns and the input assignment in full, so RowSignature of the
// decoded cell equals RowSignature computed server-side. The inference
// counters do not cross the wire (they are excluded from the signature
// for being wall-clock-bounded; see RowSignature).
std::vector<uint8_t> EncodeBatchCell(const BatchCell& cell);
Result<BatchCell> DecodeBatchCell(std::span<const uint8_t> payload);

}  // namespace ddr

#endif  // SRC_SERVER_PROTOCOL_H_
