#include "src/analysis/source_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "src/util/string_util.h"

namespace ddr {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Literal/comment stripping.
//
// All rules run over `code`, a same-length copy of the input in which
// string literals, char literals and comments are blanked to spaces
// (newlines preserved, so byte offset -> line mapping is shared with the
// original). Comment text is collected per line for the NOLINT grammar.
// Same-length matters: a banned token inside a string — this file's own
// rule tables, a test fixture, a log message — must never match.
// ---------------------------------------------------------------------------

struct StrippedSource {
  std::string code;                     // literals/comments blanked
  std::vector<std::string> comments;    // 1-based; [0] unused
  std::vector<int> line_of;             // byte offset -> 1-based line
  int line_count = 0;
};

StrippedSource Strip(std::string_view in) {
  StrippedSource out;
  out.code.assign(in.size(), ' ');
  out.line_of.assign(in.size(), 1);
  enum class State { kCode, kString, kChar, kRawString, kLine, kBlock };
  State state = State::kCode;
  std::string raw_close;  // ")delim\"" terminator of the active raw string
  int line = 1;
  out.comments.assign(2, std::string());
  auto comment_at = [&](int ln) -> std::string& {
    if (static_cast<size_t>(ln + 1) >= out.comments.size()) {
      out.comments.resize(ln + 2);
    }
    return out.comments[ln];
  };
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    out.line_of[i] = line;
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      if (state == State::kLine || state == State::kString ||
          state == State::kChar) {
        state = State::kCode;  // line comments end; broken literals self-heal
      }
      continue;
    }
    switch (state) {
      case State::kCode: {
        const char next = i + 1 < in.size() ? in[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLine;
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlock;
          out.line_of[i + 1] = line;
          ++i;
          break;
        }
        if (c == '"') {
          const char prev = i > 0 ? in[i - 1] : '\0';
          const char prev2 = i > 1 ? in[i - 2] : '\0';
          if (prev == 'R' && !IsWordChar(prev2)) {
            // R"delim( ... )delim"
            std::string delim;
            size_t j = i + 1;
            while (j < in.size() && in[j] != '(' && in[j] != '\n') {
              delim.push_back(in[j]);
              ++j;
            }
            raw_close = ")" + delim + "\"";
            state = State::kRawString;
            break;
          }
          out.code[i] = '"';
          state = State::kString;
          break;
        }
        if (c == '\'') {
          const char prev = i > 0 ? in[i - 1] : '\0';
          const bool hexish = std::isxdigit(static_cast<unsigned char>(prev));
          if (hexish && i + 1 < in.size() &&
              std::isxdigit(static_cast<unsigned char>(in[i + 1]))) {
            out.code[i] = c;  // digit separator: 1'000'000
            break;
          }
          out.code[i] = '\'';
          state = State::kChar;
          break;
        }
        out.code[i] = c;
        break;
      }
      case State::kString:
        if (c == '\\') {
          if (i + 1 < in.size() && in[i + 1] != '\n') {
            out.line_of[i + 1] = line;
            ++i;
          }
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (i + 1 < in.size() && in[i + 1] != '\n') {
            out.line_of[i + 1] = line;
            ++i;
          }
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == raw_close[0] &&
            in.compare(i, raw_close.size(), raw_close) == 0) {
          for (size_t k = 1; k < raw_close.size() && i + 1 < in.size(); ++k) {
            out.line_of[i + 1] = line;
            ++i;
          }
          state = State::kCode;
        }
        break;
      case State::kLine:
        comment_at(line).push_back(c);
        break;
      case State::kBlock:
        if (c == '*' && i + 1 < in.size() && in[i + 1] == '/') {
          out.line_of[i + 1] = line;
          ++i;
          state = State::kCode;
        } else {
          comment_at(line).push_back(c);
        }
        break;
    }
  }
  out.line_count = line;
  if (static_cast<size_t>(line + 1) >= out.comments.size()) {
    out.comments.resize(line + 2);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token matching.
// ---------------------------------------------------------------------------

// True when a match starting at `pos` begins on a word boundary. Member
// calls are excluded when `exclude_member` is set — `file.write(` and
// `out->write(` are class methods, not the raw OS call — while `::` stays
// a boundary so `::write(` and `std::time(` match.
bool BoundaryBefore(const std::string& code, size_t pos, bool exclude_member) {
  if (pos == 0) {
    return true;
  }
  const char prev = code[pos - 1];
  if (IsWordChar(prev)) {
    return false;
  }
  if (exclude_member) {
    if (prev == '.') {
      return false;
    }
    if (prev == '>' && pos >= 2 && code[pos - 2] == '-') {
      return false;
    }
  }
  return true;
}

// All boundary-respecting occurrences of `token` in the stripped code,
// as byte offsets.
std::vector<size_t> FindToken(const std::string& code, std::string_view token,
                              bool exclude_member) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    if (BoundaryBefore(code, pos, exclude_member)) {
      hits.push_back(pos);
    }
    pos += 1;
  }
  return hits;
}

bool PathContains(std::string_view path, std::string_view needle) {
  return path.find(needle) != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Rule: ddr-nondeterminism.
// ---------------------------------------------------------------------------

struct BannedToken {
  const char* token;
  const char* why;
};

constexpr BannedToken kNondeterminism[] = {
    {"rand(", "libc PRNG seeded from process state"},
    {"srand(", "libc PRNG seeding"},
    {"drand48(", "libc PRNG"},
    {"random_device", "hardware entropy source"},
    {"system_clock", "wall clock; use steady_clock for durations"},
    {"time(", "wall clock"},
    {"gettimeofday(", "wall clock"},
    {"clock_gettime(", "raw clock syscall; use std::chrono::steady_clock"},
    {"getpid(", "process id leaks into recorded bytes"},
};

void CheckNondeterminism(const StrippedSource& src, std::string_view path,
                         const LintOptions& options,
                         std::vector<LintIssue>* issues) {
  for (const std::string& allowed : options.allow) {
    if (PathContains(path, allowed)) {
      return;
    }
  }
  for (const BannedToken& banned : kNondeterminism) {
    for (size_t pos : FindToken(src.code, banned.token, /*exclude_member=*/true)) {
      issues->push_back(LintIssue{
          std::string(path), src.line_of[pos], "ddr-nondeterminism",
          StrPrintf("'%s' is a banned nondeterminism source (%s); replayed "
                    "runs must not observe it",
                    banned.token, banned.why)});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: ddr-unordered-iteration (src/trace/ only).
//
// Two passes: collect every identifier declared with an unordered
// container type in this file, then flag range-fors and .begin() walks
// over those names. Hash-order iteration in encode/index-writing code
// makes the emitted bytes depend on the allocator and the libstdc++
// version — the exact class of bug bit-identical corpora exist to rule
// out. Keyed lookup (find/erase/count) is fine and not flagged.
// ---------------------------------------------------------------------------

std::set<std::string> UnorderedNames(const StrippedSource& src) {
  std::set<std::string> names;
  for (const char* type : {"unordered_map<", "unordered_set<",
                           "unordered_multimap<", "unordered_multiset<"}) {
    for (size_t pos : FindToken(src.code, type, /*exclude_member=*/false)) {
      size_t i = pos + std::string_view(type).size();
      int depth = 1;
      while (i < src.code.size() && depth > 0) {
        if (src.code[i] == '<') {
          ++depth;
        } else if (src.code[i] == '>') {
          --depth;
        }
        ++i;
      }
      while (i < src.code.size() &&
             std::isspace(static_cast<unsigned char>(src.code[i]))) {
        ++i;
      }
      std::string name;
      while (i < src.code.size() && IsWordChar(src.code[i])) {
        name.push_back(src.code[i]);
        ++i;
      }
      // `>::iterator` and friends leave an empty name; a following '('
      // means this was a function return type, not a variable.
      while (i < src.code.size() &&
             std::isspace(static_cast<unsigned char>(src.code[i]))) {
        ++i;
      }
      if (!name.empty() && (i >= src.code.size() || src.code[i] != '(')) {
        names.insert(name);
      }
    }
  }
  return names;
}

// Does `name` appear as a whole word in code[range_begin, range_end)?
// Member prefixes (`shard->index`) are deliberately matches here.
bool NameInRange(const std::string& code, size_t range_begin, size_t range_end,
                 const std::string& name) {
  size_t pos = range_begin;
  while ((pos = code.find(name, pos)) != std::string::npos &&
         pos + name.size() <= range_end) {
    const bool left_ok = pos == 0 || !IsWordChar(code[pos - 1]);
    const size_t after = pos + name.size();
    const bool right_ok = after >= code.size() || !IsWordChar(code[after]);
    if (left_ok && right_ok) {
      return true;
    }
    pos += 1;
  }
  return false;
}

void CheckUnorderedIteration(const StrippedSource& src, std::string_view path,
                             std::vector<LintIssue>* issues) {
  if (!PathContains(path, "src/trace/")) {
    return;
  }
  const std::set<std::string> names = UnorderedNames(src);
  if (names.empty()) {
    return;
  }
  const std::string& code = src.code;
  // Range-for over an unordered name: for ( ... : <name> ).
  for (size_t pos : FindToken(code, "for", /*exclude_member=*/false)) {
    size_t i = pos + 3;
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i]))) {
      ++i;
    }
    if (i >= code.size() || code[i] != '(') {
      continue;
    }
    const size_t open = i;
    int depth = 0;
    size_t colon = std::string::npos;
    size_t close = code.size();
    for (; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(') {
        ++depth;
      } else if (c == ')') {
        if (--depth == 0) {
          close = i;
          break;
        }
      } else if (c == ':' && depth == 1 && colon == std::string::npos) {
        const bool scope = (i > 0 && code[i - 1] == ':') ||
                           (i + 1 < code.size() && code[i + 1] == ':');
        if (!scope) {
          colon = i;
        }
      }
    }
    if (colon == std::string::npos) {
      continue;
    }
    for (const std::string& name : names) {
      if (NameInRange(code, colon, close, name)) {
        issues->push_back(LintIssue{
            std::string(path), src.line_of[open], "ddr-unordered-iteration",
            StrPrintf("range-for over unordered container '%s' in "
                      "encode/index code: iteration order is hash-order, "
                      "so emitted bytes vary across runs; iterate a sorted "
                      "view or an ordered container instead",
                      name.c_str())});
        break;
      }
    }
  }
  // Explicit iterator walks: <name>.begin( / ->begin( and the c/r forms.
  for (const std::string& name : names) {
    for (const char* access : {".begin(", ".cbegin(", ".rbegin(",
                               "->begin(", "->cbegin("}) {
      std::string pattern = name + access;
      for (size_t pos : FindToken(code, pattern, /*exclude_member=*/false)) {
        issues->push_back(LintIssue{
            std::string(path), src.line_of[pos], "ddr-unordered-iteration",
            StrPrintf("iterator walk over unordered container '%s' in "
                      "encode/index code: hash-order iteration makes output "
                      "bytes nondeterministic",
                      name.c_str())});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: ddr-raw-io (src/ only; the fault-injection wrapper is exempt).
//
// Durability I/O must flow through (or next to) the PR 8 fault-injection
// sites so `ddr-trace torture` can enumerate crash points through it. A
// raw call is accepted when any consult token appears within the
// preceding kFaultWindow lines — the widest spread in the shipped tree
// is 17 lines (SyncParentDir's retry loop), so 25 gives retry loops room
// without letting a consult in one function vouch for I/O in the next.
// ---------------------------------------------------------------------------

constexpr int kFaultWindow = 25;

constexpr const char* kRawIo[] = {"write(", "pwrite(", "fsync(",
                                  "fdatasync(", "rename("};
constexpr const char* kFaultConsults[] = {"FaultPoint(", "FaultWritePoint(",
                                          "FaultEintr(", "FaultsArmed("};

void CheckRawIo(const StrippedSource& src, std::string_view path,
                std::vector<LintIssue>* issues) {
  if (!PathContains(path, "src/") || PathContains(path, "src/analysis/") ||
      PathContains(path, "src/util/fault_injection")) {
    return;
  }
  std::set<int> consult_lines;
  for (const char* consult : kFaultConsults) {
    for (size_t pos : FindToken(src.code, consult, /*exclude_member=*/true)) {
      consult_lines.insert(src.line_of[pos]);
    }
  }
  for (const char* call : kRawIo) {
    for (size_t pos : FindToken(src.code, call, /*exclude_member=*/true)) {
      const int line = src.line_of[pos];
      auto it = consult_lines.lower_bound(line - kFaultWindow);
      if (it != consult_lines.end() && *it <= line) {
        continue;
      }
      issues->push_back(LintIssue{
          std::string(path), line, "ddr-raw-io",
          StrPrintf("raw '%s' with no fault-injection consult in the "
                    "preceding %d lines: durability I/O that bypasses "
                    "FaultPoint/FaultWritePoint is invisible to crash "
                    "enumeration (see src/util/fault_injection.h)",
                    call, kFaultWindow)});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: ddr-raw-sync (src/ only; src/util/ and src/analysis/sched/
// exempt).
//
// The schedule explorer (src/analysis/sched/) can only interleave what it
// can see, and it sees the annotated wrappers in
// src/util/thread_annotations.h. A raw std::mutex or std::thread in
// product code is a synchronization edge the explorer (and the clang
// thread-safety analysis) is blind to. src/util/ hosts the wrappers
// themselves; src/analysis/sched/ is the cooperative scheduler that sits
// beneath them and must use the real primitives — both are exempt for the
// same reason fault_injection is exempt from ddr-raw-io.
// ---------------------------------------------------------------------------

struct RawSyncToken {
  const char* token;
  const char* instead;
};

constexpr RawSyncToken kRawSync[] = {
    {"std::mutex", "ddr::Mutex"},
    {"std::recursive_mutex", "ddr::Mutex (and remove the reentrancy)"},
    {"std::shared_mutex", "ddr::SharedMutex"},
    {"std::shared_timed_mutex", "ddr::SharedMutex"},
    {"std::condition_variable_any", "ddr::CondVar"},
    {"std::condition_variable", "ddr::CondVar"},
    {"std::thread", "ddr::OsThread"},
};

void CheckRawSync(const StrippedSource& src, std::string_view path,
                  std::vector<LintIssue>* issues) {
  if (!PathContains(path, "src/") || PathContains(path, "src/util/") ||
      PathContains(path, "src/analysis/sched/")) {
    return;
  }
  // Longest token first at each position: std::condition_variable must
  // not also fire inside std::condition_variable_any.
  std::set<size_t> claimed;
  for (const RawSyncToken& banned : kRawSync) {
    const size_t len = std::string_view(banned.token).size();
    for (size_t pos : FindToken(src.code, banned.token,
                                /*exclude_member=*/false)) {
      // Right boundary: reject a match that is a prefix of a longer
      // identifier (condition_variable inside condition_variable_any).
      if (pos + len < src.code.size() && IsWordChar(src.code[pos + len])) {
        continue;
      }
      if (!claimed.insert(pos).second) {
        continue;
      }
      issues->push_back(LintIssue{
          std::string(path), src.line_of[pos], "ddr-raw-sync",
          StrPrintf("raw '%s' outside src/util/: invisible to the schedule "
                    "explorer and the thread-safety analysis; use %s from "
                    "src/util/thread_annotations.h",
                    banned.token, banned.instead)});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: ddr-suppression, and the suppression map itself.
//
// Grammar: `NOLINT(ddr-<rule>): <justification>` suppresses <rule> on its
// own line; `NOLINTNEXTLINE(ddr-<rule>): <justification>` on the line
// below. A ddr suppression with no justification text is itself a
// finding — and that finding cannot be suppressed. Non-ddr NOLINTs
// (clang-tidy's) are none of our business and pass through untouched.
// ---------------------------------------------------------------------------

std::map<int, std::set<std::string>> CollectSuppressions(
    const StrippedSource& src, std::string_view path,
    std::vector<LintIssue>* issues) {
  std::map<int, std::set<std::string>> suppressed;
  for (int line = 1; line < static_cast<int>(src.comments.size()); ++line) {
    const std::string& text = src.comments[line];
    size_t pos = 0;
    while ((pos = text.find("NOLINT", pos)) != std::string::npos) {
      size_t cursor = pos + 6;
      int target = line;
      if (text.compare(cursor, 8, "NEXTLINE") == 0) {
        cursor += 8;
        target = line + 1;
      }
      if (cursor >= text.size() || text[cursor] != '(') {
        pos = cursor;
        continue;
      }
      const size_t close = text.find(')', cursor);
      if (close == std::string::npos) {
        pos = cursor;
        continue;
      }
      const std::string rule = text.substr(cursor + 1, close - cursor - 1);
      pos = close + 1;
      if (rule.rfind("ddr-", 0) != 0) {
        continue;  // someone else's NOLINT
      }
      size_t just = close + 1;
      while (just < text.size() &&
             std::isspace(static_cast<unsigned char>(text[just]))) {
        ++just;
      }
      bool justified = just < text.size() && text[just] == ':';
      if (justified) {
        ++just;
        while (just < text.size() &&
               std::isspace(static_cast<unsigned char>(text[just]))) {
          ++just;
        }
        justified = just < text.size();
      }
      if (!justified) {
        issues->push_back(LintIssue{
            std::string(path), line, "ddr-suppression",
            StrPrintf("NOLINT(%s) has no justification; write "
                      "'NOLINT(%s): <why this is safe>'",
                      rule.c_str(), rule.c_str())});
        continue;
      }
      suppressed[target].insert(rule);
    }
  }
  return suppressed;
}

}  // namespace

std::string FormatLintIssue(const LintIssue& issue) {
  return StrPrintf("%s:%d: [%s] %s", issue.file.c_str(), issue.line,
                   issue.rule.c_str(), issue.message.c_str());
}

std::string FormatLintIssuesJson(const std::vector<LintIssue>& issues) {
  std::string out = StrPrintf("{\"count\":%zu,\"issues\":[", issues.size());
  for (size_t i = 0; i < issues.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += StrPrintf("{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\","
                     "\"message\":\"%s\"}",
                     JsonEscape(issues[i].file).c_str(), issues[i].line,
                     JsonEscape(issues[i].rule).c_str(),
                     JsonEscape(issues[i].message).c_str());
  }
  out += "]}\n";
  return out;
}

std::vector<LintIssue> LintSource(std::string_view display_path,
                                  std::string_view contents,
                                  const LintOptions& options) {
  const StrippedSource src = Strip(contents);
  std::vector<LintIssue> issues;
  const std::map<int, std::set<std::string>> suppressed =
      CollectSuppressions(src, display_path, &issues);
  std::vector<LintIssue> found;
  CheckNondeterminism(src, display_path, options, &found);
  CheckUnorderedIteration(src, display_path, &found);
  CheckRawIo(src, display_path, &found);
  CheckRawSync(src, display_path, &found);
  for (LintIssue& issue : found) {
    auto it = suppressed.find(issue.line);
    if (it != suppressed.end() && it->second.count(issue.rule) > 0) {
      continue;
    }
    issues.push_back(std::move(issue));
  }
  std::stable_sort(issues.begin(), issues.end(),
                   [](const LintIssue& a, const LintIssue& b) {
                     return a.line != b.line ? a.line < b.line
                                             : a.rule < b.rule;
                   });
  return issues;
}

Result<std::vector<LintIssue>> LintTree(const std::vector<std::string>& roots,
                                        const LintOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  auto wants = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
  };
  for (const std::string& root : roots) {
    std::error_code ec;
    const fs::file_status st = fs::status(root, ec);
    if (ec || st.type() == fs::file_type::not_found) {
      return NotFoundError("lint root does not exist: " + root);
    }
    if (fs::is_regular_file(st)) {
      files.push_back(root);
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file() && wants(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
    if (ec) {
      return UnavailableError("cannot walk lint root " + root + ": " +
                              ec.message());
    }
  }
  // Sorted order: the report (and any future baseline diffing) must not
  // depend on directory-entry order, which is filesystem-specific.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::vector<LintIssue> issues;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return UnavailableError("cannot read source file: " + file);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string contents = buf.str();
    std::vector<LintIssue> file_issues = LintSource(file, contents, options);
    issues.insert(issues.end(),
                  std::make_move_iterator(file_issues.begin()),
                  std::make_move_iterator(file_issues.end()));
  }
  return issues;
}

}  // namespace ddr
