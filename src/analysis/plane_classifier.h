// Control-plane / data-plane classification (§3.1.1).
//
// Implements the operational rule of [Altekar & Stoica, HotDep'10] that the
// paper's code-based RCSE relies on: data-plane code operates at high data
// rates, control-plane code at low rates. The profiler attributes every
// event's payload bytes to the code region it occurred in; the classifier
// marks regions whose byte rate exceeds a (relative) threshold as data
// plane and everything else as control plane.

#ifndef SRC_ANALYSIS_PLANE_CLASSIFIER_H_
#define SRC_ANALYSIS_PLANE_CLASSIFIER_H_

#include <map>
#include <string>
#include <vector>

#include "src/sim/event.h"

namespace ddr {

enum class Plane : uint8_t {
  kControl = 0,
  kData = 1,
};

std::string_view PlaneName(Plane plane);

struct RegionProfile {
  RegionId region = kDefaultRegion;
  uint64_t events = 0;
  uint64_t bytes = 0;

  // Bytes moved per instrumented operation — the profile's rate proxy
  // (regions execute ops at the same virtual op cost, so bytes/op is
  // proportional to bytes/second).
  double BytesPerOp() const {
    return events == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(events);
  }
};

// Accumulates per-region traffic during a (training) run.
class PlaneProfiler : public TraceSink {
 public:
  void OnEvent(const Event& event) override;

  const std::map<RegionId, RegionProfile>& profiles() const { return profiles_; }

 private:
  std::map<RegionId, RegionProfile> profiles_;
};

struct PlaneClassifierOptions {
  // A region is data plane if its bytes/op is at least this fraction of the
  // highest observed bytes/op...
  double relative_rate_threshold = 0.01;
  // ... and also moves at least this many bytes/op in absolute terms. The
  // absolute floor is the primary signal: one bulk-transfer region must not
  // make every moderate-rate region look low-rate by comparison.
  double min_absolute_bytes_per_op = 24.0;
};

class PlaneClassifier {
 public:
  static std::map<RegionId, Plane> Classify(
      const std::map<RegionId, RegionProfile>& profiles,
      const PlaneClassifierOptions& options = PlaneClassifierOptions());

  // Convenience: region ids classified as control plane.
  static std::vector<RegionId> ControlRegions(
      const std::map<RegionId, RegionProfile>& profiles,
      const PlaneClassifierOptions& options = PlaneClassifierOptions());
};

}  // namespace ddr

#endif  // SRC_ANALYSIS_PLANE_CLASSIFIER_H_
