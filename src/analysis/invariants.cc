#include "src/analysis/invariants.h"

#include <cmath>
#include <sstream>

namespace ddr {

std::string CellInvariant::ToString() const {
  std::ostringstream os;
  os << "cell " << cell << ": ";
  if (constant) {
    os << "== " << min_value;
  } else {
    os << "in [" << min_value << ", " << max_value << "]";
  }
  if (never_zero) {
    os << ", != 0";
  }
  os << " (" << observations << " obs)";
  return os.str();
}

std::optional<CellInvariant> InvariantSet::ForCell(ObjectId cell) const {
  auto it = invariants_.find(cell);
  if (it == invariants_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool InvariantSet::Admits(ObjectId cell, uint64_t value) const {
  auto it = invariants_.find(cell);
  if (it == invariants_.end()) {
    return true;  // unconstrained
  }
  return it->second.Admits(value);
}

void InvariantInference::ObserveWrite(ObjectId cell, uint64_t value) {
  auto [it, inserted] = cells_.try_emplace(cell);
  Accumulator& acc = it->second;
  if (inserted) {
    acc.min_value = value;
    acc.max_value = value;
    acc.first_value = value;
  } else {
    acc.min_value = std::min(acc.min_value, value);
    acc.max_value = std::max(acc.max_value, value);
    if (value != acc.first_value) {
      acc.constant = false;
    }
  }
  if (value == 0) {
    acc.saw_zero = true;
  }
  ++acc.observations;
}

void InvariantInference::ObserveTrace(const std::vector<Event>& events) {
  for (const Event& event : events) {
    if (event.type == EventType::kSharedWrite || event.type == EventType::kSharedRmw) {
      ObserveWrite(event.obj, event.value);
    }
  }
}

InvariantSet InvariantInference::Infer() const {
  InvariantSet set;
  for (const auto& [cell, acc] : cells_) {
    CellInvariant invariant;
    invariant.cell = cell;
    invariant.observations = acc.observations;
    invariant.constant = acc.constant && acc.observations >= 3;
    invariant.never_zero = !acc.saw_zero && acc.observations >= 3;
    const double span = static_cast<double>(acc.max_value - acc.min_value);
    const uint64_t widen = static_cast<uint64_t>(std::ceil(span * slack_));
    invariant.min_value = acc.min_value > widen ? acc.min_value - widen : 0;
    invariant.max_value = acc.max_value + widen;
    set.Insert(invariant);
  }
  return set;
}

void InvariantMonitor::OnEvent(const Event& event) {
  if (event.type != EventType::kSharedWrite && event.type != EventType::kSharedRmw) {
    return;
  }
  if (invariants_.Admits(event.obj, event.value)) {
    return;
  }
  Violation violation;
  violation.cell = event.obj;
  violation.value = event.value;
  violation.seq = event.seq;
  violations_.push_back(violation);
  if (callback_) {
    callback_(violation);
  }
}

}  // namespace ddr
