// ddr-lint: repo-aware static checks for the determinism invariants the
// compiler cannot see.
//
// The toolkit's whole value proposition is bit-identical replay, which a
// single stray wall-clock read or hash-order-dependent loop quietly
// destroys. These rules encode the project's invariants as source checks:
//
//   ddr-nondeterminism       banned nondeterminism sources (rand(, time(,
//                            std::random_device, system_clock, ...)
//                            anywhere outside the allowlist.
//   ddr-unordered-iteration  iteration over a std::unordered_map/set in
//                            encode/index-writing code (src/trace/):
//                            hash-order iteration makes the on-disk bytes
//                            depend on pointer values and libstdc++
//                            versions.
//   ddr-raw-io               a raw ::write(/pwrite(/fsync(/fdatasync(/
//                            rename( in src/ with no fault-injection
//                            consult (FaultPoint & friends) in the
//                            preceding window — durability I/O that
//                            bypasses the crash-enumeration harness.
//   ddr-raw-sync             raw std::mutex / std::shared_mutex /
//                            std::condition_variable[_any] / std::thread
//                            in src/ outside src/util/ (and outside the
//                            scheduler itself, src/analysis/sched/):
//                            synchronization the schedule explorer and
//                            the thread-safety analysis cannot see. Use
//                            the wrappers (ddr::Mutex, ddr::CondVar,
//                            ddr::OsThread) from
//                            src/util/thread_annotations.h.
//   ddr-suppression          a ddr NOLINT marker with no justification
//                            text after it. Suppressions are allowed,
//                            silent ones are not. This rule cannot
//                            itself be suppressed.
//
// Matching is token-based on comment- and literal-stripped source (string
// and char literals are blanked before any rule runs, so a rule name or a
// banned token inside a string — e.g. this linter's own tables, or a test
// fixture — never matches). A finding on line N is suppressed by
// `// NOLINT(ddr-<rule>): <why>` on line N or `// NOLINTNEXTLINE(...)`
// on line N-1.

#ifndef SRC_ANALYSIS_SOURCE_LINT_H_
#define SRC_ANALYSIS_SOURCE_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace ddr {

struct LintIssue {
  std::string file;  // display path as given by the caller
  int line = 0;      // 1-based
  std::string rule;  // "ddr-nondeterminism", ...
  std::string message;
};

// "file:line: [rule] message" — the one format everything prints.
std::string FormatLintIssue(const LintIssue& issue);

// The whole report as one JSON object:
//   {"count":N,"issues":[{"file":...,"line":N,"rule":...,"message":...}]}
// (trailing newline included). Machine-readable twin of the text report
// for `ddr-lint --format=json` and the CI artifact.
std::string FormatLintIssuesJson(const std::vector<LintIssue>& issues);

struct LintOptions {
  // Path substrings exempt from ddr-nondeterminism (e.g. a benchmark
  // directory that genuinely wants wall-clock time). The fault-injection
  // wrapper itself (src/util/fault_injection) is always exempt from
  // ddr-raw-io; that is built in, not configurable.
  std::vector<std::string> allow;
};

// Lints one file's contents. `display_path` decides rule scoping (the
// unordered-iteration rule fires only under src/trace/, the raw-I/O rule
// only under src/) and is echoed into LintIssue::file — so in-memory test
// fixtures choose their scope by the path they claim. Issues are in line
// order.
std::vector<LintIssue> LintSource(std::string_view display_path,
                                  std::string_view contents,
                                  const LintOptions& options = {});

// Walks each root (file or directory, recursively), lints every
// *.cc/*.h/*.cpp/*.hpp in sorted path order, and concatenates the
// issues. Fails only on environmental errors (missing root, unreadable
// file) — lint findings are data, not errors.
Result<std::vector<LintIssue>> LintTree(const std::vector<std::string>& roots,
                                        const LintOptions& options = {});

}  // namespace ddr

#endif  // SRC_ANALYSIS_SOURCE_LINT_H_
