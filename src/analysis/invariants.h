// Dynamic invariant inference and runtime monitoring (§3.1.2).
//
// Daikon-style likely invariants over instrumented shared cells, learned
// from training runs before release: value ranges, constancy, non-zero.
// In production, an InvariantMonitor checks every write; a violation is the
// data-based RCSE signal that the execution is "likely on an error path",
// dialing recording fidelity up.

#ifndef SRC_ANALYSIS_INVARIANTS_H_
#define SRC_ANALYSIS_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/event.h"

namespace ddr {

struct CellInvariant {
  ObjectId cell = kInvalidObject;
  uint64_t min_value = 0;
  uint64_t max_value = 0;
  bool constant = false;     // only one distinct value observed
  bool never_zero = false;
  uint64_t observations = 0;

  bool Admits(uint64_t value) const {
    if (constant && value != min_value) {
      return false;
    }
    if (never_zero && value == 0) {
      return false;
    }
    return value >= min_value && value <= max_value;
  }

  std::string ToString() const;
};

class InvariantSet {
 public:
  void Insert(CellInvariant invariant) { invariants_[invariant.cell] = invariant; }

  // nullopt if the cell has no learned invariant (unconstrained).
  std::optional<CellInvariant> ForCell(ObjectId cell) const;

  bool Admits(ObjectId cell, uint64_t value) const;

  size_t size() const { return invariants_.size(); }
  const std::map<ObjectId, CellInvariant>& invariants() const { return invariants_; }

 private:
  std::map<ObjectId, CellInvariant> invariants_;
};

// Learns invariants from one or more training traces.
class InvariantInference {
 public:
  // Widens learned ranges by this fraction on each side to reduce false
  // positives from under-sampled training (0.0 = exact observed range).
  explicit InvariantInference(double range_slack = 0.0) : slack_(range_slack) {}

  void ObserveTrace(const std::vector<Event>& events);
  void ObserveWrite(ObjectId cell, uint64_t value);

  InvariantSet Infer() const;

 private:
  struct Accumulator {
    uint64_t min_value = 0;
    uint64_t max_value = 0;
    uint64_t first_value = 0;
    bool constant = true;
    bool saw_zero = false;
    uint64_t observations = 0;
  };

  double slack_;
  std::map<ObjectId, Accumulator> cells_;
};

// Online monitor: checks writes against an InvariantSet and reports
// violations (the data-based RCSE trigger signal).
class InvariantMonitor : public TraceSink {
 public:
  struct Violation {
    ObjectId cell = kInvalidObject;
    uint64_t value = 0;
    uint64_t seq = 0;
  };

  explicit InvariantMonitor(InvariantSet invariants)
      : invariants_(std::move(invariants)) {}

  void OnEvent(const Event& event) override;

  void SetViolationCallback(std::function<void(const Violation&)> callback) {
    callback_ = std::move(callback);
  }

  const std::vector<Violation>& violations() const { return violations_; }

 private:
  InvariantSet invariants_;
  std::vector<Violation> violations_;
  std::function<void(const Violation&)> callback_;
};

}  // namespace ddr

#endif  // SRC_ANALYSIS_INVARIANTS_H_
