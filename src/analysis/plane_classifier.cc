#include "src/analysis/plane_classifier.h"

#include <algorithm>

namespace ddr {

std::string_view PlaneName(Plane plane) {
  return plane == Plane::kControl ? "control" : "data";
}

void PlaneProfiler::OnEvent(const Event& event) {
  switch (event.type) {
    case EventType::kSharedRead:
    case EventType::kSharedWrite:
    case EventType::kSharedRmw:
    case EventType::kInput:
    case EventType::kOutput:
    case EventType::kChannelSend:
    case EventType::kChannelRecv:
    case EventType::kNetSend:
    case EventType::kNetRecv:
    case EventType::kDiskWrite:
    case EventType::kDiskRead:
    case EventType::kMutexLock:
    case EventType::kMutexUnlock: {
      RegionProfile& profile = profiles_[event.region];
      profile.region = event.region;
      profile.events += 1;
      profile.bytes += event.bytes;
      break;
    }
    default:
      break;
  }
}

std::map<RegionId, Plane> PlaneClassifier::Classify(
    const std::map<RegionId, RegionProfile>& profiles,
    const PlaneClassifierOptions& options) {
  double max_rate = 0.0;
  for (const auto& [region, profile] : profiles) {
    max_rate = std::max(max_rate, profile.BytesPerOp());
  }
  std::map<RegionId, Plane> planes;
  for (const auto& [region, profile] : profiles) {
    const double rate = profile.BytesPerOp();
    const bool is_data = max_rate > 0.0 &&
                         rate >= options.relative_rate_threshold * max_rate &&
                         rate >= options.min_absolute_bytes_per_op;
    planes[region] = is_data ? Plane::kData : Plane::kControl;
  }
  return planes;
}

std::vector<RegionId> PlaneClassifier::ControlRegions(
    const std::map<RegionId, RegionProfile>& profiles,
    const PlaneClassifierOptions& options) {
  std::vector<RegionId> control;
  for (const auto& [region, plane] : Classify(profiles, options)) {
    if (plane == Plane::kControl) {
      control.push_back(region);
    }
  }
  return control;
}

}  // namespace ddr
