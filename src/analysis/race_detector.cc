#include "src/analysis/race_detector.h"

#include <sstream>

#include "src/util/logging.h"

namespace ddr {

std::string RaceReport::ToString() const {
  std::ostringstream os;
  os << "race on cell " << cell << ": f" << first << " vs f" << second << " at #"
     << seq << " (";
  switch (kind) {
    case Kind::kWriteWrite:
      os << "write-write";
      break;
    case Kind::kReadWrite:
      os << "read-write";
      break;
    case Kind::kWriteRead:
      os << "write-read";
      break;
  }
  os << ")";
  return os.str();
}

VectorClock& RaceDetector::FiberClock(FiberId fiber) {
  if (fiber_clocks_.size() <= fiber) {
    fiber_clocks_.resize(fiber + 1);
  }
  VectorClock& vc = fiber_clocks_[fiber];
  if (vc.Get(fiber) == 0) {
    vc.Tick(fiber);  // every fiber starts with its own component at 1
  }
  return vc;
}

void RaceDetector::Report(ObjectId cell, FiberId first, FiberId second,
                          uint64_t seq, RaceReport::Kind kind) {
  if (report_once_per_cell_ && reported_cells_.count(cell) > 0) {
    return;
  }
  reported_cells_.insert(cell);
  RaceReport report;
  report.cell = cell;
  report.first = first;
  report.second = second;
  report.seq = seq;
  report.kind = kind;
  races_.push_back(report);
  if (callback_) {
    callback_(report);
  }
}

void RaceDetector::AcquireFrom(FiberId fiber, const VectorClock& source) {
  FiberClock(fiber).Join(source);
}

void RaceDetector::ReleaseTo(FiberId fiber, VectorClock* target) {
  VectorClock& vc = FiberClock(fiber);
  target->Join(vc);
  vc.Tick(fiber);
}

void RaceDetector::OnEvent(const Event& event) {
  const FiberId fiber = event.fiber;
  switch (event.type) {
    case EventType::kFiberCreate: {
      // Parent's clock is the child's starting knowledge.
      const FiberId child = static_cast<FiberId>(event.value);
      if (fiber != kInvalidFiber) {
        VectorClock& child_vc = FiberClock(child);
        child_vc.Join(FiberClock(fiber));
        FiberClock(fiber).Tick(fiber);
      } else {
        FiberClock(child);
      }
      break;
    }
    case EventType::kMutexLock:
    case EventType::kSemAcquire:
      if (fiber != kInvalidFiber) {
        AcquireFrom(fiber, sync_clocks_[event.obj]);
      }
      break;
    case EventType::kMutexUnlock:
    case EventType::kSemRelease:
    case EventType::kCondSignal:
    case EventType::kCondBroadcast:
      if (fiber != kInvalidFiber) {
        ReleaseTo(fiber, &sync_clocks_[event.obj]);
      }
      break;
    case EventType::kFiberExit:
      // Exiting fibers release into their join object so that joiners that
      // never block (fast-path Join) still see the edge.
      if (fiber != kInvalidFiber) {
        ReleaseTo(fiber, &sync_clocks_[event.obj]);
      }
      break;
    case EventType::kFiberUnblock: {
      // Waker (event.fiber, possibly scheduler) -> woken fiber (event.value).
      const FiberId woken = static_cast<FiberId>(event.value);
      if (fiber == woken) {
        // Fast-path join: the "waker" is the joiner itself; acquire from the
        // join object the target released into at exit.
        AcquireFrom(woken, sync_clocks_[event.obj]);
      } else if (fiber != kInvalidFiber) {
        VectorClock& woken_vc = FiberClock(woken);
        woken_vc.Join(FiberClock(fiber));
        FiberClock(fiber).Tick(fiber);
      }
      break;
    }
    case EventType::kChannelSend:
      if (fiber != kInvalidFiber) {
        ReleaseTo(fiber, &sync_clocks_[event.obj]);
      }
      break;
    case EventType::kChannelRecv:
      if (fiber != kInvalidFiber) {
        AcquireFrom(fiber, sync_clocks_[event.obj]);
      }
      break;
    case EventType::kNetSend:
      if (fiber != kInvalidFiber) {
        VectorClock& msg_vc = message_clocks_[event.value];
        msg_vc.Join(FiberClock(fiber));
        FiberClock(fiber).Tick(fiber);
      }
      break;
    case EventType::kNetRecv: {
      auto it = message_clocks_.find(event.value);
      if (it != message_clocks_.end() && fiber != kInvalidFiber) {
        AcquireFrom(fiber, it->second);
        message_clocks_.erase(it);
      }
      break;
    }
    case EventType::kSharedRead: {
      if (fiber == kInvalidFiber) {
        break;
      }
      VectorClock& vc = FiberClock(fiber);
      CellState& cell = cells_[event.obj];
      if (!cell.last_write.IsZero() && !cell.last_write.LeqClock(vc)) {
        Report(event.obj, cell.last_write.tid(), fiber, event.seq,
               RaceReport::Kind::kWriteRead);
      }
      cell.reads.Set(fiber, vc.Get(fiber));
      cell.has_reads = true;
      break;
    }
    case EventType::kSharedWrite:
    case EventType::kSharedRmw: {
      if (fiber == kInvalidFiber) {
        break;
      }
      VectorClock& vc = FiberClock(fiber);
      CellState& cell = cells_[event.obj];
      // An atomic RMW is a synchronization operation: it acquires the cell's
      // sync clock *before* the race check (RMWs ordered by atomicity do not
      // race each other) and releases into it afterwards.
      if (event.type == EventType::kSharedRmw) {
        vc.Join(sync_clocks_[event.obj]);
      }
      if (!cell.last_write.IsZero() && !cell.last_write.LeqClock(vc)) {
        Report(event.obj, cell.last_write.tid(), fiber, event.seq,
               RaceReport::Kind::kWriteWrite);
      }
      if (cell.has_reads && !cell.reads.HappensBeforeOrEqual(vc)) {
        // Some read is concurrent with this write.
        FiberId reader = kInvalidFiber;
        for (uint32_t i = 0; i < cell.reads.size(); ++i) {
          if (cell.reads.Get(i) > vc.Get(i)) {
            reader = i;
            break;
          }
        }
        Report(event.obj, reader, fiber, event.seq, RaceReport::Kind::kReadWrite);
      }
      cell.last_write = Epoch(fiber, vc.Get(fiber));
      cell.reads = VectorClock();
      cell.has_reads = false;
      if (event.type == EventType::kSharedRmw) {
        VectorClock& cell_sync = sync_clocks_[event.obj];
        cell_sync.Join(vc);
        vc.Tick(fiber);
      }
      break;
    }
    default:
      break;
  }
}

bool RaceDetector::HasRaceOnCell(ObjectId cell) const {
  for (const RaceReport& race : races_) {
    if (race.cell == cell) {
      return true;
    }
  }
  return false;
}

std::vector<RaceReport> RaceDetector::Analyze(const std::vector<Event>& events) {
  RaceDetector detector(/*report_once_per_cell=*/true);
  for (const Event& event : events) {
    detector.OnEvent(event);
  }
  return detector.races_;
}

// ------------------------------------------------------------------ lockset

void LocksetDetector::OnEvent(const Event& event) {
  const FiberId fiber = event.fiber;
  switch (event.type) {
    case EventType::kMutexLock:
      held_[fiber].insert(event.obj);
      break;
    case EventType::kMutexUnlock:
      held_[fiber].erase(event.obj);
      break;
    case EventType::kSharedRead:
    case EventType::kSharedWrite: {
      if (fiber == kInvalidFiber) {
        break;
      }
      CellState& cell = cells_[event.obj];
      cell.accessors.insert(fiber);
      const std::set<ObjectId>& locks = held_[fiber];
      if (!cell.initialized) {
        cell.initialized = true;
        cell.candidate_locks = locks;
      } else {
        std::set<ObjectId> intersection;
        for (ObjectId lock : cell.candidate_locks) {
          if (locks.count(lock) > 0) {
            intersection.insert(lock);
          }
        }
        cell.candidate_locks = std::move(intersection);
      }
      if (cell.accessors.size() > 1 && cell.candidate_locks.empty()) {
        flagged_.insert(event.obj);
      }
      break;
    }
    default:
      break;
  }
}

std::set<ObjectId> LocksetDetector::Analyze(const std::vector<Event>& events) {
  LocksetDetector detector;
  for (const Event& event : events) {
    detector.OnEvent(event);
  }
  return detector.flagged_;
}

}  // namespace ddr
