// Dynamic triggers for combined code/data selection (§3.1.3).
//
// A trigger is a predicate over the live event stream that detects deviant
// behavior — a potential root cause — and asks the RCSE machinery to dial
// recording fidelity up. Provided potential-bug detectors:
//   RaceTrigger       — fires when the online race detector reports a race
//   InvariantTrigger  — fires on a learned-invariant violation
//   LargeInputTrigger — data-based selection on request size (§3.1.2)
//   AnnotationTrigger — fires on program-emitted deviance annotations
//                       (e.g. "ignored syscall error" bug fingerprints)

#ifndef SRC_ANALYSIS_TRIGGERS_H_
#define SRC_ANALYSIS_TRIGGERS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/invariants.h"
#include "src/analysis/race_detector.h"
#include "src/sim/event.h"

namespace ddr {

class Trigger {
 public:
  explicit Trigger(std::string name) : name_(std::move(name)) {}
  virtual ~Trigger() = default;

  virtual void Observe(const Event& event) = 0;

  const std::string& name() const { return name_; }
  uint64_t fire_count() const { return fire_count_; }
  uint64_t last_fire_seq() const { return last_fire_seq_; }

  using FireCallback = std::function<void(const Trigger& trigger, const Event& event)>;
  void SetFireCallback(FireCallback callback) { callback_ = std::move(callback); }

 protected:
  void Fire(const Event& event) {
    ++fire_count_;
    last_fire_seq_ = event.seq;
    if (callback_) {
      callback_(*this, event);
    }
  }

 private:
  std::string name_;
  uint64_t fire_count_ = 0;
  uint64_t last_fire_seq_ = 0;
  FireCallback callback_;
};

class RaceTrigger : public Trigger {
 public:
  RaceTrigger() : Trigger("race") {
    detector_.SetRaceCallback([this](const RaceReport& report) {
      pending_ = true;
      (void)report;
    });
  }

  void Observe(const Event& event) override {
    pending_ = false;
    detector_.OnEvent(event);
    if (pending_) {
      Fire(event);
    }
  }

  const RaceDetector& detector() const { return detector_; }

 private:
  RaceDetector detector_{/*report_once_per_cell=*/true};
  bool pending_ = false;
};

class InvariantTrigger : public Trigger {
 public:
  explicit InvariantTrigger(InvariantSet invariants)
      : Trigger("invariant"), monitor_(std::move(invariants)) {
    monitor_.SetViolationCallback(
        [this](const InvariantMonitor::Violation&) { pending_ = true; });
  }

  void Observe(const Event& event) override {
    pending_ = false;
    monitor_.OnEvent(event);
    if (pending_) {
      Fire(event);
    }
  }

 private:
  InvariantMonitor monitor_;
  bool pending_ = false;
};

// Fires when an input event moves at least `threshold_bytes` (the paper's
// "record with high determinism when request sizes exceed a threshold").
class LargeInputTrigger : public Trigger {
 public:
  explicit LargeInputTrigger(uint32_t threshold_bytes)
      : Trigger("large-input"), threshold_(threshold_bytes) {}

  void Observe(const Event& event) override {
    if (event.type == EventType::kInput && event.bytes >= threshold_) {
      Fire(event);
    }
  }

 private:
  uint32_t threshold_;
};

// Fires on kAnnotation events carrying a matching deviance tag.
class AnnotationTrigger : public Trigger {
 public:
  explicit AnnotationTrigger(uint64_t tag)
      : Trigger("annotation"), tag_(tag) {}

  void Observe(const Event& event) override {
    if (event.type == EventType::kAnnotation && event.obj == tag_) {
      Fire(event);
    }
  }

 private:
  uint64_t tag_;
};

// Owns a set of triggers and dispatches events to all of them.
class TriggerSet {
 public:
  void Add(std::unique_ptr<Trigger> trigger) { triggers_.push_back(std::move(trigger)); }

  void Observe(const Event& event) {
    for (auto& trigger : triggers_) {
      trigger->Observe(event);
    }
  }

  void SetFireCallback(const Trigger::FireCallback& callback) {
    for (auto& trigger : triggers_) {
      trigger->SetFireCallback(callback);
    }
  }

  uint64_t TotalFires() const {
    uint64_t total = 0;
    for (const auto& trigger : triggers_) {
      total += trigger->fire_count();
    }
    return total;
  }

  size_t size() const { return triggers_.size(); }
  const std::vector<std::unique_ptr<Trigger>>& triggers() const { return triggers_; }

 private:
  std::vector<std::unique_ptr<Trigger>> triggers_;
};

}  // namespace ddr

#endif  // SRC_ANALYSIS_TRIGGERS_H_
