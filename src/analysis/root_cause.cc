#include "src/analysis/root_cause.h"

namespace ddr {

std::vector<std::string> RootCauseCatalog::PresentCauses(
    const ExecutionView& view) const {
  std::vector<std::string> present;
  for (const RootCauseSpec& spec : specs_) {
    if (spec.present(view)) {
      present.push_back(spec.id);
    }
  }
  return present;
}

std::optional<std::string> RootCauseCatalog::DiagnosedCause(
    const ExecutionView& view) const {
  for (const RootCauseSpec& spec : specs_) {
    if (spec.present(view)) {
      return spec.id;
    }
  }
  return std::nullopt;
}

bool RootCauseCatalog::ActualCausePresent(const ExecutionView& view) const {
  for (const RootCauseSpec& spec : specs_) {
    if (spec.id == actual_id_) {
      return spec.present(view);
    }
  }
  return false;
}

}  // namespace ddr
