// Root causes as checkable predicates (§3).
//
// The paper defines a root cause as the negation of the predicate P that a
// fix would enforce. Operationally, a RootCauseSpec is a predicate over a
// (replayed) execution that decides whether that candidate root cause is
// exercised in the execution and causally precedes the failure. A scenario's
// catalog lists all candidate root causes for a failure (the "n" in the
// paper's DF = 1/n) and names the actual one.

#ifndef SRC_ANALYSIS_ROOT_CAUSE_H_
#define SRC_ANALYSIS_ROOT_CAUSE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/event.h"
#include "src/sim/outcome.h"

namespace ddr {

// A finished execution under analysis: the full event trace + its outcome.
struct ExecutionView {
  const std::vector<Event>& events;
  const Outcome& outcome;
};

struct RootCauseSpec {
  std::string id;
  std::string description;
  // True if this root cause is present in (and plausibly caused) the
  // execution's failure.
  std::function<bool(const ExecutionView&)> present;
};

class RootCauseCatalog {
 public:
  RootCauseCatalog() = default;
  RootCauseCatalog(std::vector<RootCauseSpec> specs, std::string actual_id)
      : specs_(std::move(specs)), actual_id_(std::move(actual_id)) {}

  const std::vector<RootCauseSpec>& specs() const { return specs_; }
  const std::string& actual_id() const { return actual_id_; }
  size_t size() const { return specs_.size(); }

  // Ids of all root causes present in the execution.
  std::vector<std::string> PresentCauses(const ExecutionView& view) const;

  // The cause "reported to the developer": the first present cause in
  // catalog order (deterministic), or nullopt if none matched.
  std::optional<std::string> DiagnosedCause(const ExecutionView& view) const;

  bool ActualCausePresent(const ExecutionView& view) const;

 private:
  std::vector<RootCauseSpec> specs_;
  std::string actual_id_;
};

}  // namespace ddr

#endif  // SRC_ANALYSIS_ROOT_CAUSE_H_
