// Happens-before data-race detection (FastTrack-style) over the event
// stream, plus an Eraser-style lockset variant.
//
// Roles in the toolkit (§3.1.3): as an *online* low-overhead potential-bug
// detector that triggers RCSE fidelity dial-up the moment a race is
// observed, and as an *offline* analysis that decides whether a (replayed)
// execution contains the racy root cause.
//
// Happens-before edges tracked: program order, fiber create/join, mutex
// release->acquire, semaphore release->acquire, condvar signal->wakeup
// (via kFiberUnblock), channel send->recv, network send->recv.

#ifndef SRC_ANALYSIS_RACE_DETECTOR_H_
#define SRC_ANALYSIS_RACE_DETECTOR_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/sim/event.h"
#include "src/util/vector_clock.h"

namespace ddr {

struct RaceReport {
  enum class Kind : uint8_t { kWriteWrite, kReadWrite, kWriteRead };

  ObjectId cell = kInvalidObject;
  FiberId first = kInvalidFiber;   // earlier access
  FiberId second = kInvalidFiber;  // racing access
  uint64_t seq = 0;                // event seq of the racing access
  Kind kind = Kind::kWriteWrite;

  std::string ToString() const;
};

class RaceDetector : public TraceSink {
 public:
  // report_once_per_cell: deduplicate reports per cell (online trigger use).
  explicit RaceDetector(bool report_once_per_cell = true)
      : report_once_per_cell_(report_once_per_cell) {}

  void OnEvent(const Event& event) override;

  const std::vector<RaceReport>& races() const { return races_; }
  bool HasRaceOnCell(ObjectId cell) const;

  // Invoked synchronously when a race is found (online trigger hook).
  void SetRaceCallback(std::function<void(const RaceReport&)> callback) {
    callback_ = std::move(callback);
  }

  // Offline convenience: run the detector over a full trace.
  static std::vector<RaceReport> Analyze(const std::vector<Event>& events);

 private:
  struct CellState {
    Epoch last_write;
    VectorClock reads;   // last read per fiber
    bool has_reads = false;
  };

  VectorClock& FiberClock(FiberId fiber);
  void Report(ObjectId cell, FiberId first, FiberId second, uint64_t seq,
              RaceReport::Kind kind);
  void AcquireFrom(FiberId fiber, const VectorClock& source);
  void ReleaseTo(FiberId fiber, VectorClock* target);

  bool report_once_per_cell_;
  std::vector<VectorClock> fiber_clocks_;
  std::map<ObjectId, VectorClock> sync_clocks_;   // locks, sems, channels, queues
  std::map<uint64_t, VectorClock> message_clocks_;  // in-flight network messages
  std::map<ObjectId, CellState> cells_;
  std::set<ObjectId> reported_cells_;
  std::vector<RaceReport> races_;
  std::function<void(const RaceReport&)> callback_;
};

// Eraser-style lockset discipline checker: a cell accessed by more than one
// fiber whose candidate lockset becomes empty is flagged. Coarser than
// happens-before (false positives possible); used for the detector ablation.
class LocksetDetector : public TraceSink {
 public:
  void OnEvent(const Event& event) override;

  const std::set<ObjectId>& flagged_cells() const { return flagged_; }

  static std::set<ObjectId> Analyze(const std::vector<Event>& events);

 private:
  struct CellState {
    bool initialized = false;
    std::set<ObjectId> candidate_locks;
    std::set<FiberId> accessors;
  };

  std::map<FiberId, std::set<ObjectId>> held_;
  std::map<ObjectId, CellState> cells_;
  std::set<ObjectId> flagged_;
};

}  // namespace ddr

#endif  // SRC_ANALYSIS_RACE_DETECTOR_H_
