#include "src/analysis/sched/models.h"

#include <deque>
#include <memory>

#include "src/util/thread_annotations.h"

namespace ddr::sched {
namespace {

// --------------------------------------------------------------- clean

// Sharded ChunkCache LRU (src/trace/chunk_cache.h): independent
// per-shard mutexes, never held together. Two accessors hit the shards
// in opposite orders while an evictor walks all shards one at a time —
// the structure that makes the real cache deadlock-free by construction.
void CacheLruBody() {
  struct Shard {
    Mutex mu;
    int entries = 0;
    int hits = 0;
  };
  struct State {
    Shard shard[2];
  };
  auto st = std::make_shared<State>();
  auto get = [st](int s) {
    MutexLock lock(st->shard[s].mu);
    ++st->shard[s].hits;
  };
  auto put = [st](int s) {
    MutexLock lock(st->shard[s].mu);
    ++st->shard[s].entries;
  };
  SchedThread a = Spawn([=] {
    put(0);
    get(1);
    get(0);
  });
  SchedThread b = Spawn([=] {
    put(1);
    get(0);
    get(1);
  });
  SchedThread evictor = Spawn([st] {
    for (int s = 0; s < 2; ++s) {
      MutexLock lock(st->shard[s].mu);
      if (st->shard[s].entries > 0) --st->shard[s].entries;
    }
  });
  a.Join();
  b.Join();
  evictor.Join();
}

// Corpus server admission queue + stop/drain (src/server/corpus_server.cc
// post-PR9): a bounded task queue with condvar-waiting workers, a stop
// flag readable without the stop mutex, and the PR 9 fix — RequestStop
// pairs its notify with the waiter's mutex via an empty critical section
// so the store/notify can never slide into the waiter's check-then-wait
// window.
void ServerQueueBody() {
  struct State {
    Mutex queue_mu;
    CondVar queue_cv;
    std::deque<int> queue;
    bool queue_closed = false;
    int processed = 0;

    Mutex stop_mu;
    CondVar stop_cv;
    SharedVar<bool> stop;
  };
  auto st = std::make_shared<State>();
  auto worker = [st] {
    for (;;) {
      {
        MutexLock lock(st->queue_mu);
        while (st->queue.empty() && !st->queue_closed) {
          st->queue_cv.Wait(st->queue_mu);
        }
        if (st->queue.empty()) return;  // closed and drained
        st->queue.pop_front();
        ++st->processed;
      }
    }
  };
  SchedThread w1 = Spawn(worker);
  SchedThread w2 = Spawn(worker);
  SchedThread waiter = Spawn([st] {
    // Wait(): parks until RequestStop flips the flag.
    MutexLock lock(st->stop_mu);
    while (!st->stop.Load()) {
      st->stop_cv.Wait(st->stop_mu);
    }
  });
  for (int task = 0; task < 2; ++task) {
    MutexLock lock(st->queue_mu);
    st->queue.push_back(task);
    st->queue_cv.NotifyOne();
  }
  // RequestStop, fixed shape: the empty stop_mu critical section orders
  // the store before any in-flight check-then-wait completes.
  st->stop.Store(true);
  { MutexLock lock(st->stop_mu); }
  st->stop_cv.NotifyAll();
  // Drain: close the queue and wake every idle worker.
  {
    MutexLock lock(st->queue_mu);
    st->queue_closed = true;
  }
  st->queue_cv.NotifyAll();
  w1.Join();
  w2.Join();
  waiter.Join();
}

// Single-writer flock append (src/util/file_lock.h + the corpus journal
// append path): the file lock is a try-lock — a losing appender reports
// Unavailable instead of queueing — and in-process state publishes under
// a separate mutex nested strictly inside the writer lock.
void FlockAppendBody() {
  struct State {
    Mutex flock;  // TryFlockExclusive: non-blocking, single writer
    Mutex state_mu;
    int journal_len = 0;
    int refused = 0;
  };
  auto st = std::make_shared<State>();
  auto append = [st] {
    if (!st->flock.try_lock()) {
      MutexLock lock(st->state_mu);
      ++st->refused;  // loud Unavailable, never a queued wait
      return;
    }
    {
      MutexLock lock(st->state_mu);
      ++st->journal_len;
    }
    st->flock.unlock();
  };
  SchedThread a = Spawn(append);
  SchedThread b = Spawn(append);
  a.Join();
  b.Join();
}

// ------------------------------------------------------ expect_finding

// Classic AB/BA inversion: some interleavings deadlock, all of them
// close the acquisition-order cycle.
void DeadlockInversionBody() {
  struct State {
    Mutex a;
    Mutex b;
  };
  auto st = std::make_shared<State>();
  SchedThread t1 = Spawn([st] {
    MutexLock la(st->a);
    MutexLock lb(st->b);
  });
  SchedThread t2 = Spawn([st] {
    MutexLock lb(st->b);
    MutexLock la(st->a);
  });
  t1.Join();
  t2.Join();
}

// The same inversion serialized by an outer gate: no interleaving can
// deadlock, but the acquisition graph still carries the cycle — the
// latent bug the runtime graph check exists to catch before a refactor
// removes the gate.
void LockOrderGateBody() {
  struct State {
    Mutex gate;
    Mutex a;
    Mutex b;
  };
  auto st = std::make_shared<State>();
  SchedThread t1 = Spawn([st] {
    MutexLock g(st->gate);
    MutexLock la(st->a);
    MutexLock lb(st->b);
  });
  SchedThread t2 = Spawn([st] {
    MutexLock g(st->gate);
    MutexLock lb(st->b);
    MutexLock la(st->a);
  });
  t1.Join();
  t2.Join();
}

// The pre-PR9 corpus-server stop path: store + notify with no pairing on
// the waiter's mutex. The waiter can read the flag as false, lose the
// CPU before parking, miss the only notify, and sleep forever.
void LostWakeupBody() {
  struct State {
    Mutex stop_mu;
    CondVar stop_cv;
    SharedVar<bool> stop;
  };
  auto st = std::make_shared<State>();
  SchedThread waiter = Spawn([st] {
    MutexLock lock(st->stop_mu);
    while (!st->stop.Load()) {
      st->stop_cv.Wait(st->stop_mu);
    }
  });
  st->stop.Store(true);  // BUG: no { MutexLock lock(st->stop_mu); } here
  st->stop_cv.NotifyAll();
  waiter.Join();
}

const std::vector<SchedModel>& Models() {
  static const std::vector<SchedModel>* models = new std::vector<SchedModel>{
      {"cache-lru",
       "sharded ChunkCache LRU: per-shard mutexes, opposite-order "
       "accessors, one-shard-at-a-time evictor",
       &CacheLruBody, SchedModel::Expect::kClean},
      {"server-queue",
       "corpus server admission queue + stop/drain with the PR 9 "
       "notify-under-mutex fix",
       &ServerQueueBody, SchedModel::Expect::kClean},
      {"flock-append",
       "single-writer flock append: try-lock writer gate, nested state "
       "publish, loud Unavailable on contention",
       &FlockAppendBody, SchedModel::Expect::kClean},
      {"deadlock-inversion",
       "deliberate AB/BA lock-order inversion: deadlocks under the right "
       "schedule",
       &DeadlockInversionBody, SchedModel::Expect::kDeadlock},
      {"lock-order",
       "AB/BA inversion behind an outer gate: never deadlocks, but the "
       "acquisition graph carries the cycle",
       &LockOrderGateBody, SchedModel::Expect::kLockOrderCycle},
      {"lost-wakeup",
       "pre-PR9 stop path: store+notify without the waiter's mutex loses "
       "the wakeup",
       &LostWakeupBody, SchedModel::Expect::kLostWakeup},
  };
  return *models;
}

}  // namespace

const char* ExpectName(SchedModel::Expect expect) {
  switch (expect) {
    case SchedModel::Expect::kClean:
      return "clean";
    case SchedModel::Expect::kDeadlock:
      return "deadlock";
    case SchedModel::Expect::kLockOrderCycle:
      return "lock-order-cycle";
    case SchedModel::Expect::kLostWakeup:
      return "lost-wakeup";
  }
  return "unknown";
}

const std::vector<SchedModel>& AllSchedModels() { return Models(); }

const SchedModel* FindSchedModel(std::string_view name) {
  for (const SchedModel& model : Models()) {
    if (name == model.name) return &model;
  }
  return nullptr;
}

}  // namespace ddr::sched
