#include "src/analysis/sched/sched.h"

// The scheduler IS the instrumentation layer under the annotated
// wrappers, so it must use the raw primitives itself — routing its own
// parking through ddr::Mutex would recurse into the hooks. ddr-lint
// exempts src/analysis/sched/ from ddr-raw-sync for exactly this reason.

#include <algorithm>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace ddr::sched {
namespace {

constexpr int kMaxChoices = 36;  // one base-36 digit per decision

char DigitFor(int value) {
  CHECK(value >= 0 && value < kMaxChoices) << "decision digit out of range";
  return value < 10 ? static_cast<char>('0' + value)
                    : static_cast<char>('a' + value - 10);
}

int DigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'z') return c - 'a' + 10;
  return -1;
}

constexpr char kSchedulePrefix[] = "v1:";

enum class WaitKind : uint8_t {
  kNone,
  kMutex,       // ddr::Mutex lock (or CondVar mutex reacquire after wake)
  kSharedExcl,  // SharedMutex writer lock
  kSharedRead,  // SharedMutex reader lock
  kCond,        // untimed CondVar wait, not yet notified
  kCondTimed,   // timed CondVar wait (timeout = spurious wake is legal)
  kJoin,        // SchedThread::Join on an unfinished thread
};

struct ThreadRec {
  explicit ThreadRec(int id_in) : id(id_in) {}

  const int id;
  std::function<void()> fn;  // empty for t0 (the body runs inline)
  std::thread os;
  std::condition_variable park;

  enum class St : uint8_t { kRunnable, kBlocked, kFinished };
  St st = St::kRunnable;
  WaitKind wait = WaitKind::kNone;
  const void* wait_obj = nullptr;      // mutex / shared mutex / condvar
  const void* reacquire_mu = nullptr;  // condvar waits: mutex to retake
  const void* woke_cv = nullptr;       // set when a notify claimed us
  int join_target = -1;

  std::vector<const void*> held;       // exclusive holds, acquisition order
  std::map<const void*, int> read_held;  // shared-read hold counts
};

struct MutexModel {
  int owner = -1;  // thread id, -1 = free
};

struct SharedModel {
  int writer = -1;
  std::vector<int> readers;  // one entry per outstanding shared hold
};

struct CondModel {
  std::vector<int> waiters;  // arrival order (FIFO wakeup)
};

struct Strategy {
  enum class Kind { kFollow, kRandom };
  Kind kind = Kind::kFollow;
  std::vector<uint8_t> prefix;  // kFollow: digits to obey, then defaults
  bool strict = false;          // kFollow: out-of-range digit is an error
  uint64_t seed = 0;            // kRandom
};

class Engine;
Engine* g_engine = nullptr;
thread_local ThreadRec* t_self = nullptr;

// One deterministic serialized execution of a body. The engine admits a
// single thread at a time: every other participant is parked on its own
// condvar under mu_, and every model-state transition happens under mu_
// — which is also what hands TSan the happens-before edges that make
// modeled critical sections genuinely race-free even though the real
// mutexes are never touched.
class Engine {
 public:
  explicit Engine(Strategy strategy)
      : strategy_(std::move(strategy)), rng_(strategy_.seed) {}

  RunResult Run(const std::function<void()>& body) {
    CHECK(g_engine == nullptr && t_self == nullptr)
        << "nested schedule explorations are not supported";
    auto t0 = std::make_unique<ThreadRec>(0);
    threads_.push_back(std::move(t0));
    t_self = threads_[0].get();
    g_engine = this;
    SetInstrArmed(kInstrSched, true);
    try {
      body();
    } catch (const SchedKilled&) {
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      threads_[0]->st = ThreadRec::St::kFinished;
      if (!poisoned_) {
        LogEvent(*threads_[0], "exit");
        try {
          Reschedule(lock, threads_[0].get());
        } catch (const SchedKilled&) {
        }
        done_cv_.wait(lock, [this] { return poisoned_ || AllFinished(); });
      }
    }
    for (auto& t : threads_) {
      if (t->os.joinable()) {
        t->os.join();
      }
    }
    SetInstrArmed(kInstrSched, false);
    g_engine = nullptr;
    t_self = nullptr;

    RunResult result;
    result.schedule = ScheduleString();
    result.events = std::move(events_);
    result.decisions = std::move(decisions_);
    result.preemptions = preemptions_;
    for (SchedFinding& finding : findings_) {
      finding.schedule = result.schedule;
      result.findings.push_back(std::move(finding));
    }
    if (strategy_.strict && error_.ok() &&
        cursor_ < strategy_.prefix.size()) {
      error_ = InvalidArgumentError(StrPrintf(
          "schedule has %zu decisions but this execution only reached %zu "
          "choice points — wrong body for this schedule?",
          strategy_.prefix.size(), cursor_));
    }
    return result;
  }

  const Status& error() const { return error_; }

  // ------------------------------------------------------- sched points
  // Each returns true when the calling thread participates (the wrapper
  // skips the real primitive). All throw SchedKilled on a poisoned run,
  // except the release-shaped ops, which may run inside destructors
  // during unwinding and therefore no-op instead.

  bool Lock(const void* mu) {
    ThreadRec* self = t_self;
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) throw SchedKilled{};
    MutexModel& m = mutexes_[mu];
    RecordLockEdges(self, mu);
    if (m.owner == -1) {
      m.owner = self->id;
      self->held.push_back(mu);
      LogEvent(*self, "lock " + Name(mu, 'm'));
    } else {
      LogEvent(*self, StrPrintf("lock %s (blocked; held by t%d)",
                                Name(mu, 'm').c_str(), m.owner));
      Block(self, WaitKind::kMutex, mu);
    }
    Reschedule(lock, self);
    return true;
  }

  bool Unlock(const void* mu) {
    ThreadRec* self = t_self;
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) return true;  // release during unwind: no-op
    MutexModel& m = mutexes_[mu];
    CHECK(m.owner == self->id)
        << "t" << self->id << " unlocks " << Name(mu, 'm')
        << " it does not hold";
    m.owner = -1;
    EraseHold(self, mu);
    LogEvent(*self, "unlock " + Name(mu, 'm'));
    Reschedule(lock, self);
    return true;
  }

  bool TryLock(const void* mu, bool* acquired) {
    ThreadRec* self = t_self;
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) throw SchedKilled{};
    MutexModel& m = mutexes_[mu];
    if (m.owner == -1) {
      m.owner = self->id;
      self->held.push_back(mu);
      *acquired = true;
      LogEvent(*self, "trylock " + Name(mu, 'm') + " (acquired)");
    } else {
      *acquired = false;
      LogEvent(*self, StrPrintf("trylock %s (busy; held by t%d)",
                                Name(mu, 'm').c_str(), m.owner));
    }
    Reschedule(lock, self);
    return true;
  }

  bool SharedLock(const void* mu, bool exclusive) {
    ThreadRec* self = t_self;
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) throw SchedKilled{};
    SharedModel& m = shared_[mu];
    if (exclusive) {
      RecordLockEdges(self, mu);
      if (m.writer == -1 && m.readers.empty()) {
        m.writer = self->id;
        self->held.push_back(mu);
        LogEvent(*self, "wrlock " + Name(mu, 's'));
      } else {
        LogEvent(*self, "wrlock " + Name(mu, 's') + " (blocked)");
        Block(self, WaitKind::kSharedExcl, mu);
      }
    } else {
      if (m.writer == -1) {
        m.readers.push_back(self->id);
        ++self->read_held[mu];
        LogEvent(*self, "rdlock " + Name(mu, 's'));
      } else {
        LogEvent(*self, StrPrintf("rdlock %s (blocked; writer t%d)",
                                  Name(mu, 's').c_str(), m.writer));
        Block(self, WaitKind::kSharedRead, mu);
      }
    }
    Reschedule(lock, self);
    return true;
  }

  bool SharedUnlock(const void* mu, bool exclusive) {
    ThreadRec* self = t_self;
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) return true;  // release during unwind: no-op
    SharedModel& m = shared_[mu];
    if (exclusive) {
      CHECK(m.writer == self->id)
          << "t" << self->id << " write-unlocks " << Name(mu, 's')
          << " it does not hold";
      m.writer = -1;
      EraseHold(self, mu);
      LogEvent(*self, "wrunlock " + Name(mu, 's'));
    } else {
      auto it = std::find(m.readers.begin(), m.readers.end(), self->id);
      CHECK(it != m.readers.end())
          << "t" << self->id << " read-unlocks " << Name(mu, 's')
          << " it does not hold";
      m.readers.erase(it);
      if (--self->read_held[mu] == 0) {
        self->read_held.erase(mu);
      }
      LogEvent(*self, "rdunlock " + Name(mu, 's'));
    }
    Reschedule(lock, self);
    return true;
  }

  bool CondWait(const void* cv, const void* mu, bool timed) {
    ThreadRec* self = t_self;
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) throw SchedKilled{};
    MutexModel& m = mutexes_[mu];
    CHECK(m.owner == self->id)
        << "t" << self->id << " waits on " << Name(cv, 'c')
        << " without holding " << Name(mu, 'm');
    m.owner = -1;
    EraseHold(self, mu);
    conds_[cv].waiters.push_back(self->id);
    LogEvent(*self, StrPrintf("%s %s (releases %s)",
                              timed ? "timed-wait" : "wait",
                              Name(cv, 'c').c_str(), Name(mu, 'm').c_str()));
    Block(self, timed ? WaitKind::kCondTimed : WaitKind::kCond, cv);
    self->reacquire_mu = mu;
    Reschedule(lock, self);
    return true;
  }

  bool CondNotify(const void* cv, bool all) {
    ThreadRec* self = t_self;
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) return true;  // notify during unwind: no-op
    CondModel& c = conds_[cv];
    if (c.waiters.empty()) {
      LogEvent(*self, StrPrintf("notify-%s %s (no waiters)",
                                all ? "all" : "one", Name(cv, 'c').c_str()));
    } else {
      const size_t count = all ? c.waiters.size() : 1;
      std::string woken;
      for (size_t i = 0; i < count; ++i) {
        ThreadRec* waiter = threads_[c.waiters[i]].get();
        // The wakeup is delivered: the waiter now contends for its mutex.
        waiter->wait = WaitKind::kMutex;
        waiter->wait_obj = waiter->reacquire_mu;
        waiter->woke_cv = cv;
        if (!woken.empty()) woken += ",";
        woken += StrPrintf("t%d", waiter->id);
      }
      c.waiters.erase(c.waiters.begin(), c.waiters.begin() + count);
      LogEvent(*self, StrPrintf("notify-%s %s (wakes %s)",
                                all ? "all" : "one", Name(cv, 'c').c_str(),
                                woken.c_str()));
    }
    Reschedule(lock, self);
    return true;
  }

  void Access(const void* object, bool write) {
    ThreadRec* self = t_self;
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) throw SchedKilled{};
    LogEvent(*self, (write ? "store " : "load ") + Name(object, 'v'));
    Reschedule(lock, self);
  }

  int SpawnThread(std::function<void()> fn) {
    ThreadRec* self = t_self;
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) throw SchedKilled{};
    const int id = static_cast<int>(threads_.size());
    auto rec = std::make_unique<ThreadRec>(id);
    rec->fn = std::move(fn);
    ThreadRec* raw = rec.get();
    threads_.push_back(std::move(rec));
    LogEvent(*self, StrPrintf("spawn t%d", id));
    raw->os = std::thread([this, raw] { ThreadMain(raw); });
    Reschedule(lock, self);
    return id;
  }

  void JoinThread(int target) {
    ThreadRec* self = t_self;
    std::unique_lock<std::mutex> lock(mu_);
    if (poisoned_) throw SchedKilled{};
    CHECK(target >= 0 && target < static_cast<int>(threads_.size()))
        << "join of unknown thread t" << target;
    if (threads_[target]->st == ThreadRec::St::kFinished) {
      LogEvent(*self, StrPrintf("join t%d", target));
    } else {
      LogEvent(*self, StrPrintf("join t%d (blocked)", target));
      Block(self, WaitKind::kJoin, nullptr);
      self->join_target = target;
    }
    Reschedule(lock, self);
  }

 private:
  void ThreadMain(ThreadRec* rec) {
    t_self = rec;
    bool run_body = true;
    {
      std::unique_lock<std::mutex> lock(mu_);
      rec->park.wait(lock,
                     [&] { return poisoned_ || current_ == rec->id; });
      if (poisoned_) {
        run_body = false;
      }
    }
    if (run_body) {
      try {
        rec->fn();
      } catch (const SchedKilled&) {
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    rec->st = ThreadRec::St::kFinished;
    if (!poisoned_) {
      LogEvent(*rec, "exit");
      try {
        Reschedule(lock, rec);
      } catch (const SchedKilled&) {
      }
    }
    t_self = nullptr;
  }

  bool AllFinished() const {
    for (const auto& t : threads_) {
      if (t->st != ThreadRec::St::kFinished) return false;
    }
    return true;
  }

  void Block(ThreadRec* self, WaitKind kind, const void* obj) {
    self->st = ThreadRec::St::kBlocked;
    self->wait = kind;
    self->wait_obj = obj;
  }

  // Whether a thread could make progress if granted the token.
  bool Eligible(const ThreadRec& t) const {
    if (t.st == ThreadRec::St::kRunnable) return true;
    if (t.st == ThreadRec::St::kFinished) return false;
    switch (t.wait) {
      case WaitKind::kNone:
        return true;
      case WaitKind::kMutex: {
        auto it = mutexes_.find(t.wait_obj);
        return it == mutexes_.end() || it->second.owner == -1;
      }
      case WaitKind::kSharedExcl: {
        auto it = shared_.find(t.wait_obj);
        return it == shared_.end() ||
               (it->second.writer == -1 && it->second.readers.empty());
      }
      case WaitKind::kSharedRead: {
        auto it = shared_.find(t.wait_obj);
        return it == shared_.end() || it->second.writer == -1;
      }
      case WaitKind::kCond:
        return false;  // only a notify can release an untimed wait
      case WaitKind::kCondTimed: {
        // A timeout wake is always legal; it still needs the mutex back.
        auto it = mutexes_.find(t.reacquire_mu);
        return it == mutexes_.end() || it->second.owner == -1;
      }
      case WaitKind::kJoin:
        return threads_[t.join_target]->st == ThreadRec::St::kFinished;
    }
    return false;
  }

  // The woken/continuing thread applies its pending transition. Runs in
  // the context of the thread that just received the token, under mu_.
  void ResolveWait(ThreadRec* self) {
    if (self->st != ThreadRec::St::kBlocked) return;
    switch (self->wait) {
      case WaitKind::kMutex: {
        MutexModel& m = mutexes_[self->wait_obj];
        CHECK(m.owner == -1) << "scheduled a thread whose mutex is held";
        m.owner = self->id;
        self->held.push_back(self->wait_obj);
        if (self->woke_cv != nullptr) {
          LogEvent(*self, StrPrintf("woke on %s; reacquired %s",
                                    Name(self->woke_cv, 'c').c_str(),
                                    Name(self->wait_obj, 'm').c_str()));
        } else {
          LogEvent(*self, "acquired " + Name(self->wait_obj, 'm'));
        }
        break;
      }
      case WaitKind::kSharedExcl: {
        SharedModel& m = shared_[self->wait_obj];
        CHECK(m.writer == -1 && m.readers.empty());
        m.writer = self->id;
        self->held.push_back(self->wait_obj);
        LogEvent(*self, "wr-acquired " + Name(self->wait_obj, 's'));
        break;
      }
      case WaitKind::kSharedRead: {
        SharedModel& m = shared_[self->wait_obj];
        CHECK(m.writer == -1);
        m.readers.push_back(self->id);
        ++self->read_held[self->wait_obj];
        LogEvent(*self, "rd-acquired " + Name(self->wait_obj, 's'));
        break;
      }
      case WaitKind::kCondTimed: {
        // Scheduled while still a waiter: this is the timeout firing.
        CondModel& c = conds_[self->wait_obj];
        auto it = std::find(c.waiters.begin(), c.waiters.end(), self->id);
        CHECK(it != c.waiters.end());
        c.waiters.erase(it);
        MutexModel& m = mutexes_[self->reacquire_mu];
        CHECK(m.owner == -1);
        m.owner = self->id;
        self->held.push_back(self->reacquire_mu);
        LogEvent(*self, StrPrintf("timed out on %s; reacquired %s",
                                  Name(self->wait_obj, 'c').c_str(),
                                  Name(self->reacquire_mu, 'm').c_str()));
        break;
      }
      case WaitKind::kJoin:
        LogEvent(*self, StrPrintf("joined t%d", self->join_target));
        break;
      case WaitKind::kCond:
        LOG(FATAL) << "untimed cond wait scheduled without a notify";
        break;
      case WaitKind::kNone:
        break;
    }
    self->st = ThreadRec::St::kRunnable;
    self->wait = WaitKind::kNone;
    self->wait_obj = nullptr;
    self->reacquire_mu = nullptr;
    self->woke_cv = nullptr;
    self->join_target = -1;
  }

  // Core handoff: pick the next thread among the eligible, record the
  // decision if there was a real choice, transfer the token, park the
  // caller until it is scheduled again (throwing SchedKilled if the run
  // is poisoned while parked).
  void Reschedule(std::unique_lock<std::mutex>& lock, ThreadRec* self) {
    std::vector<int> eligible;
    bool any_unfinished = false;
    for (const auto& t : threads_) {
      if (t->st == ThreadRec::St::kFinished) continue;
      any_unfinished = true;
      if (Eligible(*t)) eligible.push_back(t->id);
    }
    if (eligible.empty()) {
      if (!any_unfinished) {
        done_cv_.notify_all();
        return;
      }
      DetectStuck();
      Poison();
      if (self->st == ThreadRec::St::kBlocked) throw SchedKilled{};
      return;  // self just finished; teardown reaps the rest
    }
    size_t chosen = 0;
    if (eligible.size() > 1) {
      CHECK(eligible.size() <= kMaxChoices)
          << "more than " << kMaxChoices << " eligible threads";
      int current_index = -1;
      for (size_t i = 0; i < eligible.size(); ++i) {
        if (eligible[i] == current_) current_index = static_cast<int>(i);
      }
      chosen = Choose(eligible.size(), current_index);
      SchedDecision d;
      d.num_choices = static_cast<uint8_t>(eligible.size());
      d.chosen = static_cast<uint8_t>(chosen);
      d.current_index = static_cast<int8_t>(current_index);
      decisions_.push_back(d);
      if (current_index >= 0 && static_cast<int>(chosen) != current_index) {
        ++preemptions_;
      }
    }
    const int next = eligible[chosen];
    current_ = next;
    if (next == self->id) {
      ResolveWait(self);
      return;
    }
    threads_[next]->park.notify_all();
    if (self->st == ThreadRec::St::kFinished) return;
    self->park.wait(lock, [&] { return poisoned_ || current_ == self->id; });
    if (poisoned_) throw SchedKilled{};
    ResolveWait(self);
  }

  size_t Choose(size_t num_choices, int current_index) {
    const size_t fallback =
        current_index >= 0 ? static_cast<size_t>(current_index) : 0;
    switch (strategy_.kind) {
      case Strategy::Kind::kRandom:
        ++cursor_;
        return rng_.NextBelow(num_choices);
      case Strategy::Kind::kFollow: {
        if (cursor_ >= strategy_.prefix.size()) {
          return fallback;  // past the recorded prefix: default policy
        }
        const uint8_t digit = strategy_.prefix[cursor_++];
        if (digit >= num_choices) {
          if (strategy_.strict && error_.ok()) {
            error_ = InvalidArgumentError(StrPrintf(
                "schedule decision %zu picks thread-index %d but only %zu "
                "threads are eligible — wrong body for this schedule?",
                cursor_ - 1, static_cast<int>(digit), num_choices));
          }
          return fallback;
        }
        return digit;
      }
    }
    return fallback;
  }

  // --------------------------------------------------------- detectors

  std::string DescribeWait(const ThreadRec& t) const {
    switch (t.wait) {
      case WaitKind::kMutex: {
        auto it = mutexes_.find(t.wait_obj);
        const int owner = it == mutexes_.end() ? -1 : it->second.owner;
        if (t.woke_cv != nullptr) {
          return StrPrintf("t%d woken from %s but blocked reacquiring %s "
                           "(held by t%d)",
                           t.id, NameOf(t.woke_cv).c_str(),
                           NameOf(t.wait_obj).c_str(), owner);
        }
        return StrPrintf("t%d blocked locking %s (held by t%d)", t.id,
                         NameOf(t.wait_obj).c_str(), owner);
      }
      case WaitKind::kSharedExcl:
        return StrPrintf("t%d blocked write-locking %s", t.id,
                         NameOf(t.wait_obj).c_str());
      case WaitKind::kSharedRead:
        return StrPrintf("t%d blocked read-locking %s", t.id,
                         NameOf(t.wait_obj).c_str());
      case WaitKind::kCond:
        return StrPrintf("t%d waiting on %s (mutex %s, no notify pending)",
                         t.id, NameOf(t.wait_obj).c_str(),
                         NameOf(t.reacquire_mu).c_str());
      case WaitKind::kCondTimed:
        return StrPrintf("t%d in timed wait on %s (mutex %s unavailable)",
                         t.id, NameOf(t.wait_obj).c_str(),
                         NameOf(t.reacquire_mu).c_str());
      case WaitKind::kJoin:
        return StrPrintf("t%d joining t%d", t.id, t.join_target);
      case WaitKind::kNone:
        break;
    }
    return StrPrintf("t%d runnable", t.id);
  }

  void DetectStuck() {
    std::vector<const ThreadRec*> stuck;
    for (const auto& t : threads_) {
      if (t->st != ThreadRec::St::kFinished) stuck.push_back(t.get());
    }
    CHECK(!stuck.empty());
    bool any_cond = false;
    bool only_cond_or_join = true;
    std::string detail;
    for (const ThreadRec* t : stuck) {
      if (t->wait == WaitKind::kCond) {
        any_cond = true;
      } else if (t->wait != WaitKind::kJoin) {
        only_cond_or_join = false;
      }
      if (!detail.empty()) detail += "; ";
      detail += DescribeWait(*t);
    }
    SchedFinding finding;
    if (any_cond && only_cond_or_join) {
      // Every stuck thread is either parked in an untimed wait or joining
      // one that is: the notify that should wake them can never happen.
      finding.kind = FindingKind::kLostWakeup;
      finding.message = "lost wakeup: " + detail;
    } else {
      finding.kind = FindingKind::kDeadlock;
      finding.message = "deadlock: " + detail;
    }
    findings_.push_back(std::move(finding));
  }

  void Poison() {
    poisoned_ = true;
    for (const auto& t : threads_) {
      t->park.notify_all();
    }
    done_cv_.notify_all();
  }

  // Acquisition-order graph: before t acquires (or blocks on) exclusive
  // `mu`, add an edge held -> mu for every exclusive lock t holds. A new
  // edge that makes `held` reachable from `mu` closes a cycle — reported
  // even when this particular interleaving sailed through.
  void RecordLockEdges(ThreadRec* self, const void* mu) {
    for (const void* h : self->held) {
      if (h == mu) continue;
      if (!lock_graph_[h].insert(mu).second) continue;  // edge already known
      if (Reaches(mu, h)) {
        auto key = std::minmax(NameOf(h), NameOf(mu));
        if (!flagged_cycles_.insert(key).second) continue;
        SchedFinding finding;
        finding.kind = FindingKind::kLockOrderCycle;
        finding.message = StrPrintf(
            "lock-order cycle: t%d locks %s while holding %s, but %s is "
            "also (transitively) acquired while holding %s",
            self->id, NameOf(mu).c_str(), NameOf(h).c_str(),
            NameOf(h).c_str(), NameOf(mu).c_str());
        findings_.push_back(std::move(finding));
      }
    }
  }

  bool Reaches(const void* from, const void* to) const {
    std::vector<const void*> frontier{from};
    std::set<const void*> seen{from};
    while (!frontier.empty()) {
      const void* node = frontier.back();
      frontier.pop_back();
      if (node == to) return true;
      auto it = lock_graph_.find(node);
      if (it == lock_graph_.end()) continue;
      for (const void* next : it->second) {
        if (seen.insert(next).second) frontier.push_back(next);
      }
    }
    return false;
  }

  // ----------------------------------------------------------- utility

  void EraseHold(ThreadRec* self, const void* mu) {
    auto it = std::find(self->held.begin(), self->held.end(), mu);
    CHECK(it != self->held.end());
    self->held.erase(it);
  }

  // First-touch naming (m0, s0, c0, v0): deterministic given the
  // schedule, so event logs and findings are comparable across runs.
  std::string Name(const void* obj, char kind) {
    auto it = names_.find(obj);
    if (it != names_.end()) return it->second;
    std::string name = StrPrintf("%c%d", kind, name_counters_[kind]++);
    names_.emplace(obj, name);
    return name;
  }

  std::string NameOf(const void* obj) const {
    auto it = names_.find(obj);
    return it == names_.end() ? "<?>" : it->second;
  }

  void LogEvent(const ThreadRec& t, const std::string& what) {
    CHECK(events_.size() < (1u << 20))
        << "schedule exploration runaway: body never terminates";
    events_.push_back(StrPrintf("t%d %s", t.id, what.c_str()));
  }

  std::string ScheduleString() const {
    std::string s = kSchedulePrefix;
    for (const SchedDecision& d : decisions_) {
      s.push_back(DigitFor(d.chosen));
    }
    return s;
  }

  std::mutex mu_;
  std::condition_variable done_cv_;
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  int current_ = 0;
  bool poisoned_ = false;

  Strategy strategy_;
  Rng rng_;
  size_t cursor_ = 0;
  Status error_ = OkStatus();

  std::vector<SchedDecision> decisions_;
  int preemptions_ = 0;
  std::vector<std::string> events_;
  std::vector<SchedFinding> findings_;

  std::map<const void*, MutexModel> mutexes_;
  std::map<const void*, SharedModel> shared_;
  std::map<const void*, CondModel> conds_;
  std::map<const void*, std::string> names_;
  std::map<char, int> name_counters_;
  std::map<const void*, std::set<const void*>> lock_graph_;
  std::set<std::pair<std::string, std::string>> flagged_cycles_;
};

Result<std::vector<uint8_t>> ParseSchedule(const std::string& schedule) {
  if (schedule.rfind(kSchedulePrefix, 0) != 0) {
    return InvalidArgumentError(
        "schedule must start with 'v1:' (got '" + schedule + "')");
  }
  std::vector<uint8_t> digits;
  for (size_t i = sizeof(kSchedulePrefix) - 1; i < schedule.size(); ++i) {
    const int value = DigitValue(schedule[i]);
    if (value < 0) {
      return InvalidArgumentError(StrPrintf(
          "schedule has invalid decision digit '%c' at position %zu "
          "(expected 0-9a-z)",
          schedule[i], i));
    }
    digits.push_back(static_cast<uint8_t>(value));
  }
  return digits;
}

// The lexicographically-next DFS prefix within the preemption bound:
// bump the deepest decision that still has an untried, in-budget
// alternative and truncate everything after it. Continuations past the
// prefix use the default policy (keep the current thread), which costs
// no preemptions — the CHESS iterative-context-bound shape.
std::optional<std::vector<uint8_t>> NextPrefix(
    const std::vector<SchedDecision>& decisions, int preempt_bound) {
  for (int i = static_cast<int>(decisions.size()) - 1; i >= 0; --i) {
    int used_before = 0;
    for (int j = 0; j < i; ++j) {
      const SchedDecision& d = decisions[j];
      if (d.current_index >= 0 && d.chosen != d.current_index) ++used_before;
    }
    const SchedDecision& d = decisions[i];
    for (int next = d.chosen + 1; next < d.num_choices; ++next) {
      const bool preempts = d.current_index >= 0 && next != d.current_index;
      if (used_before + (preempts ? 1 : 0) > preempt_bound) continue;
      std::vector<uint8_t> prefix;
      prefix.reserve(i + 1);
      for (int j = 0; j < i; ++j) prefix.push_back(decisions[j].chosen);
      prefix.push_back(static_cast<uint8_t>(next));
      return prefix;
    }
  }
  return std::nullopt;
}

}  // namespace

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kDeadlock:
      return "deadlock";
    case FindingKind::kLockOrderCycle:
      return "lock-order-cycle";
    case FindingKind::kLostWakeup:
      return "lost-wakeup";
  }
  return "unknown";
}

void SchedThread::Join() {
  CHECK(id_ >= 0) << "Join on an empty/moved-from SchedThread";
  CHECK(g_engine != nullptr && t_self != nullptr)
      << "SchedThread::Join outside an exploration";
  const int target = id_;
  id_ = -1;
  g_engine->JoinThread(target);
}

SchedThread Spawn(std::function<void()> fn) {
  CHECK(g_engine != nullptr && t_self != nullptr)
      << "sched::Spawn outside an exploration body";
  return SchedThread(g_engine->SpawnThread(std::move(fn)));
}

void MemoryAccessPoint(const void* object, bool write) {
  if (!InstrArmed(kInstrSched) || t_self == nullptr || g_engine == nullptr) {
    return;
  }
  g_engine->Access(object, write);
}

Result<RunResult> RunWithSchedule(const std::function<void()>& body,
                                  const std::string& schedule) {
  Strategy strategy;
  strategy.kind = Strategy::Kind::kFollow;
  strategy.strict = true;
  ASSIGN_OR_RETURN(strategy.prefix, ParseSchedule(schedule));
  Engine engine(std::move(strategy));
  RunResult result = engine.Run(body);
  RETURN_IF_ERROR(engine.error());
  return result;
}

RunResult RandomWalk(const std::function<void()>& body, uint64_t seed) {
  Strategy strategy;
  strategy.kind = Strategy::Kind::kRandom;
  strategy.seed = seed;
  Engine engine(std::move(strategy));
  return engine.Run(body);
}

ExploreReport Explore(const std::function<void()>& body,
                      const ExploreOptions& options) {
  ExploreReport report;
  std::set<std::pair<int, std::string>> seen;
  auto merge = [&](const RunResult& run) {
    for (const SchedFinding& f : run.findings) {
      if (seen.insert({static_cast<int>(f.kind), f.message}).second) {
        report.findings.push_back(f);
      }
    }
  };

  std::vector<uint8_t> prefix;
  while (report.dfs_runs < options.dfs_budget) {
    Strategy strategy;
    strategy.kind = Strategy::Kind::kFollow;
    strategy.prefix = prefix;
    Engine engine(std::move(strategy));
    const RunResult run = engine.Run(body);
    ++report.dfs_runs;
    merge(run);
    std::optional<std::vector<uint8_t>> next =
        NextPrefix(run.decisions, options.preempt_bound);
    if (!next.has_value()) {
      report.dfs_exhausted = true;
      break;
    }
    prefix = std::move(*next);
  }
  for (uint64_t k = 0; k < options.random_budget; ++k) {
    const uint64_t seed = options.seed ^ (0x9E3779B97F4A7C15ULL * (k + 1));
    merge(RandomWalk(body, seed));
    ++report.random_runs;
  }
  report.runs = report.dfs_runs + report.random_runs;
  return report;
}

}  // namespace ddr::sched

// ----------------------------------------------------------------------
// Hook bodies for src/util/thread_annotations.h. Non-participant threads
// (t_self unset) fall through to the real primitives even while an
// exploration is armed elsewhere in the process.
// ----------------------------------------------------------------------

namespace ddr::sched_internal {

namespace {
// Participant check shared by every hook: the calling thread must belong
// to the active engine. Qualified lookup reaches the engine's
// file-local globals through their enclosing namespace.
inline bool Participating() {
  return sched::t_self != nullptr && sched::g_engine != nullptr;
}
}  // namespace

bool LockHook(void* mu) {
  return Participating() && sched::g_engine->Lock(mu);
}

bool UnlockHook(void* mu) {
  return Participating() && sched::g_engine->Unlock(mu);
}

bool TryLockHook(void* mu, bool* acquired) {
  return Participating() && sched::g_engine->TryLock(mu, acquired);
}

bool SharedLockHook(void* mu, bool exclusive) {
  return Participating() && sched::g_engine->SharedLock(mu, exclusive);
}

bool SharedUnlockHook(void* mu, bool exclusive) {
  return Participating() && sched::g_engine->SharedUnlock(mu, exclusive);
}

bool CondWaitHook(void* cv, void* mu, bool timed) {
  return Participating() && sched::g_engine->CondWait(cv, mu, timed);
}

bool CondNotifyHook(void* cv, bool all) {
  return Participating() && sched::g_engine->CondNotify(cv, all);
}

}  // namespace ddr::sched_internal
