// Deterministic schedule explorer: record/replay race & deadlock
// detection for the repo's own concurrency.
//
// TSan (PR 9) checks whatever interleavings the OS happens to produce.
// This engine makes the interleaving itself the recorded artifact — the
// paper's debug-determinism loop applied to our own tooling: a failing
// exploration hands back a compact decision string, and replaying that
// string reproduces the exact interleaving (and therefore the exact
// deadlock / lost wakeup) bit-identically.
//
// Model: a test body runs under a cooperative scheduler that admits ONE
// runnable thread at a time. Every operation on the annotated wrappers
// (ddr::Mutex / SharedMutex / CondVar, hooked in
// src/util/thread_annotations.h) plus sched::SharedVar accesses and
// Spawn/Join are sched-points: the running thread logs an event, applies
// the operation to the scheduler's model of the primitive, and hands the
// token to a scheduler-chosen next thread. A blocked thread is eligible
// to run only when its wait is satisfiable (mutex free, join target
// finished, notify pending...). The body must do all cross-thread
// communication through sched-point operations; plain shared memory
// would be invisible to the model (use SharedVar<T>).
//
// Decision strings ("v1:" + one base-36 digit per choice point): a digit
// is recorded only where two or more threads were eligible, and indexes
// the sorted eligible set. Replay follows the digits and extends past
// the end with the default policy (keep the current thread running), so
// a prefix reproduces everything it recorded. A schedule replayed
// against the wrong body fails loudly instead of silently diverging.
//
// Exploration = seeded random walks + iterative bounded-preemption DFS
// (CHESS-style: most concurrency bugs need <= 2 forced preemptions, so
// the bounded search is small but dense in bugs). Detectors:
//
//   deadlock          no thread eligible, some thread unfinished
//   lost-wakeup       every unfinished thread is parked in an untimed
//                     CondVar wait — nobody can ever notify
//   lock-order-cycle  the per-run acquisition graph (edge: held -> newly
//                     wanted) closed a cycle, even if this particular
//                     run got through without deadlocking
//
// On a finding the run is poisoned: every parked thread is released by
// throwing SchedKilled through its next sched-point (models must not
// swallow it with catch-all), the engine joins all OS threads, and the
// finding carries the decision string that reproduces it.

#ifndef SRC_ANALYSIS_SCHED_SCHED_H_
#define SRC_ANALYSIS_SCHED_SCHED_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/util/instr_gate.h"
#include "src/util/status.h"

namespace ddr::sched {

// Thrown through parked threads to unwind them after a finding poisons
// the run. Deliberately not derived from std::exception so a model's
// `catch (const std::exception&)` cannot swallow it by accident.
struct SchedKilled {};

enum class FindingKind : uint8_t {
  kDeadlock,
  kLockOrderCycle,
  kLostWakeup,
};

// Stable names for CLI/JSON: "deadlock", "lock-order-cycle",
// "lost-wakeup".
const char* FindingKindName(FindingKind kind);

struct SchedFinding {
  FindingKind kind = FindingKind::kDeadlock;
  std::string message;   // human-readable, thread/object names inline
  std::string schedule;  // decision string that reproduces this finding
};

// One recorded choice point; exposed so the DFS can backtrack.
struct SchedDecision {
  uint8_t num_choices = 0;  // eligible threads at this point (>= 2)
  uint8_t chosen = 0;       // index picked into the sorted eligible set
  int8_t current_index = -1;  // index of the running thread, -1 if blocked
};

struct RunResult {
  std::string schedule;  // "v1:..." decision string of this execution
  std::vector<std::string> events;  // "t1 lock m0", in execution order
  std::vector<SchedFinding> findings;
  std::vector<SchedDecision> decisions;
  int preemptions = 0;  // choices that switched away from a runnable thread
};

// Handle to a thread spawned inside an exploration body. Join() is a
// sched-point; joining is mandatory before the body returns unless the
// run was poisoned (teardown then reaps the thread).
class SchedThread {
 public:
  SchedThread() = default;
  explicit SchedThread(int id) : id_(id) {}
  SchedThread(SchedThread&& other) noexcept : id_(other.id_) {
    other.id_ = -1;
  }
  SchedThread& operator=(SchedThread&& other) noexcept {
    id_ = other.id_;
    other.id_ = -1;
    return *this;
  }
  SchedThread(const SchedThread&) = delete;
  SchedThread& operator=(const SchedThread&) = delete;

  void Join();

 private:
  int id_ = -1;
};

// Spawns a participant thread. Must be called from inside an exploration
// body (the body itself runs as t0); spawning is a sched-point.
SchedThread Spawn(std::function<void()> fn);

// A sched-point memory access for `object`. No-op outside an
// exploration. Used by SharedVar; exposed for models with bespoke shared
// state.
void MemoryAccessPoint(const void* object, bool write);

// Shared scalar whose loads and stores are sched-points, so the
// explorer can interleave check-then-wait against store-then-notify —
// the window where lost wakeups live. Atomic storage keeps the
// production path (explorer unarmed) race-free too.
template <typename T>
class SharedVar {
 public:
  SharedVar() = default;
  explicit SharedVar(T initial) : value_(initial) {}

  // The sched-point comes AFTER the access: the caller then holds a
  // possibly-stale value in a register while other threads run, which is
  // the exact hazard (check-then-wait vs store-then-notify) the explorer
  // needs to be able to interleave.
  T Load() const {
    const T value = value_.load(std::memory_order_seq_cst);
    MemoryAccessPoint(this, /*write=*/false);
    return value;
  }
  void Store(T value) {
    value_.store(value, std::memory_order_seq_cst);
    MemoryAccessPoint(this, /*write=*/true);
  }

 private:
  std::atomic<T> value_{};
};

// Runs `body` once under the scheduler, following `schedule` (a "v1:..."
// decision string; "v1:" alone = pure default policy). Errors on a
// malformed string or one that does not fit this body's choice points —
// a wrong-model replay must be loud, not quietly divergent.
Result<RunResult> RunWithSchedule(const std::function<void()>& body,
                                  const std::string& schedule);

// Runs `body` once under a seeded random-walk scheduler. The resulting
// RunResult::schedule replays the identical execution.
RunResult RandomWalk(const std::function<void()>& body, uint64_t seed);

struct ExploreOptions {
  uint64_t dfs_budget = 256;     // max bounded-preemption DFS executions
  uint64_t random_budget = 64;   // seeded random walks after/alongside DFS
  int preempt_bound = 2;         // max forced preemptions per DFS execution
  uint64_t seed = 1;             // base seed for the random walks
};

struct ExploreReport {
  uint64_t runs = 0;
  uint64_t dfs_runs = 0;
  uint64_t random_runs = 0;
  bool dfs_exhausted = false;  // bounded space fully enumerated in budget
  // Deduplicated by (kind, message); each carries a reproducing schedule.
  std::vector<SchedFinding> findings;
};

// Bounded-preemption DFS over the body's interleavings, then seeded
// random walks. Every execution is deterministic; the whole exploration
// is a pure function of (body, options).
ExploreReport Explore(const std::function<void()>& body,
                      const ExploreOptions& options = {});

}  // namespace ddr::sched

#endif  // SRC_ANALYSIS_SCHED_SCHED_H_
