// Small deterministic concurrency models of real subsystems, run under
// the schedule explorer (sched.h).
//
// Each model is a self-contained body: it spawns participant threads
// with sched::Spawn and does all cross-thread communication through
// sched-point operations (ddr::Mutex/SharedMutex/CondVar, SharedVar).
// The clean models mirror the locking structure of a shipped subsystem
// and are expected to be deadlock- and lost-wakeup-free under full
// bounded exploration; the expect_finding models carry a deliberate bug
// (lock-order inversion, pre-PR9 stop-path lost wakeup) so tests and the
// CI smoke can assert the explorer actually finds and replays it.

#ifndef SRC_ANALYSIS_SCHED_MODELS_H_
#define SRC_ANALYSIS_SCHED_MODELS_H_

#include <string_view>
#include <vector>

#include "src/analysis/sched/sched.h"

namespace ddr::sched {

struct SchedModel {
  const char* name;
  const char* description;
  void (*body)();
  // Kind the model is built to exhibit; kClean for the real-subsystem
  // models the explorer is expected to prove clean.
  enum class Expect : uint8_t { kClean, kDeadlock, kLockOrderCycle,
                                kLostWakeup } expect = Expect::kClean;
};

const char* ExpectName(SchedModel::Expect expect);

// All models, clean ones first, in stable order.
const std::vector<SchedModel>& AllSchedModels();

// nullptr when unknown.
const SchedModel* FindSchedModel(std::string_view name);

}  // namespace ddr::sched

#endif  // SRC_ANALYSIS_SCHED_MODELS_H_
