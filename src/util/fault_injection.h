// Deterministic fault injection for the I/O stack.
//
// A process-wide FaultPlan maps named injection sites — every write,
// fsync, rename, read, connect, send, and recv in the storage and
// transport layers consults one — to faults: I/O errors, disk-full,
// short writes, EINTR storms, fsync failures, stalls, and the key one,
// `crash`, which freezes all further faultable I/O to simulate power
// loss at an exact point mid-operation. The crash-torture harness uses
// this to enumerate every site along a write path, "crash" at each, and
// assert the recovery invariants; CI and the CLI smoke drive the same
// plans through the DDR_FAULT_PLAN environment variable.
//
// Plan syntax (env var or SetFaultPlan):
//
//   DDR_FAULT_PLAN = spec[;spec...]
//   spec           = site ":" kind [ "@" N ] [ "/" K ] [ "=" ARG ]
//
//   site   exact site name, or a prefix wildcard: "corpus.journal.*"
//          matches every journal site, "*" matches everything.
//   kind   eio | enospc | short | eintr | fsyncfail | crash | unavail
//          | stall | trace
//   @N     fire only on the Nth matching hit (1-based). Default: every.
//   /K     fire on every Kth matching hit. Default: every hit.
//   =ARG   kind argument: stall milliseconds (default 1000), EINTR storm
//          length (default 3), short-write bytes allowed (default half).
//
// Examples:
//
//   corpus.journal.trailer:crash       power loss right before the
//                                      trailer that publishes a generation
//   *:crash@17                         power loss at the 17th faultable
//                                      operation of the process
//   trace.sink.sync:fsyncfail          the temp file's fsync reports EIO
//   client.send:unavail/100            1% of client requests bounce
//   server.respond:stall@1=400         first response stalls 400 ms
//   *:trace                            fire nothing; count and name the
//                                      sites hit (harness enumeration)
//
// Zero-cost when disarmed: every site consult is guarded by one relaxed
// atomic load of a process-wide flag, false unless a plan is installed.
// The slow path (matching, counters) only runs with a plan armed.
//
// Semantics of `crash`: once it fires, every subsequent site consult in
// the process fails with a "simulated crash" error until the plan is
// cleared — the operation in flight aborts exactly as if power was cut
// after the bytes written so far, and nothing else reaches the disk.
// Recovery is then exercised by clearing the plan and reopening.

#ifndef SRC_UTIL_FAULT_INJECTION_H_
#define SRC_UTIL_FAULT_INJECTION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/util/instr_gate.h"
#include "src/util/status.h"

namespace ddr {

namespace fault_internal {
Status PointSlow(const char* site);
bool EintrSlow(const char* site);
}  // namespace fault_internal

// The single fast-path guard: false (one relaxed atomic load of the
// shared instr_gate bit-set, no barrier) unless a plan is installed via
// DDR_FAULT_PLAN or SetFaultPlan.
inline bool FaultsArmed() { return InstrArmed(kInstrFaults); }

// Generic consult for operations with no partial-success mode (fsync,
// rename, open, connect, recv, read): OK unless an armed fault fires.
inline Status FaultPoint(const char* site) {
  if (!FaultsArmed()) {
    return OkStatus();
  }
  return fault_internal::PointSlow(site);
}

// Consult inside a syscall retry loop: true while an armed EINTR storm
// at `site` still has interrupts to deliver — the caller treats the
// syscall as interrupted (errno EINTR) and retries, exercising its own
// retry loop for real.
inline bool FaultEintr(const char* site) {
  return FaultsArmed() && fault_internal::EintrSlow(site);
}

// Write-shaped consult. `allowed` is how many of the requested bytes the
// caller should actually write; `failure`, when non-OK, is the error the
// caller must return after writing that prefix (wrapped with its own
// path context). No fault: {size, OK}. Short write: {prefix, ENOSPC-ish
// failure}. Outright failure or crash: {0, failure}.
struct WriteFaultOutcome {
  size_t allowed = 0;
  Status failure;
};
WriteFaultOutcome FaultWritePointSlow(const char* site, size_t size);
inline WriteFaultOutcome FaultWritePoint(const char* site, size_t size) {
  if (!FaultsArmed()) {
    return WriteFaultOutcome{size, OkStatus()};
  }
  return FaultWritePointSlow(site, size);
}

// ------------------------------------------------------------ test API

// Parses and installs a plan (see the syntax grammar above), replacing
// any previous one and resetting all counters and crash state. An empty
// plan disarms. Errors leave the previous plan installed.
Status SetFaultPlan(const std::string& plan);

// Disarms: removes the plan, resets counters and the crash latch.
void ClearFaultPlan();

// True once a `crash` fault has fired (and writes are frozen).
bool FaultCrashTriggered();

// Observation for the torture harness, valid while a plan is armed:
// total site consults since install, and the distinct site names seen.
// A `*:trace` plan fires nothing, so these enumerate a healthy run.
uint64_t FaultSiteHits();
std::vector<std::string> FaultSitesSeen();

}  // namespace ddr

#endif  // SRC_UTIL_FAULT_INJECTION_H_
