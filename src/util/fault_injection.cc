#include "src/util/fault_injection.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "src/util/string_util.h"

namespace ddr {

namespace {

enum class FaultKind : uint8_t {
  kEio,
  kEnospc,
  kShort,
  kEintr,
  kFsyncFail,
  kCrash,
  kUnavail,
  kStall,
  kTrace,
};

struct FaultSpec {
  std::string site;  // without the trailing '*' when wildcard
  bool wildcard = false;
  FaultKind kind = FaultKind::kTrace;
  uint64_t at = 0;     // fire only on the at-th matching hit (0 = every)
  uint64_t every = 0;  // fire on every every-th matching hit (0 = every)
  uint64_t arg = 0;    // stall ms / eintr storm length / short bytes
  // Runtime state, guarded by g_mu.
  uint64_t hits = 0;
  uint64_t eintr_left = 0;
};

struct FaultPlanState {
  std::vector<FaultSpec> specs;
  uint64_t total_hits = 0;
  std::set<std::string> sites_seen;
  bool crashed = false;
};

std::mutex& PlanMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

// Owned plan; non-null exactly while g_armed is true. Heap + never freed
// on arm->disarm races is avoided by only mutating under the mutex; a
// consult that passed the armed check races benignly (it re-checks null).
FaultPlanState*& PlanSlot() {
  static FaultPlanState* plan = nullptr;
  return plan;
}

bool Matches(const FaultSpec& spec, const char* site) {
  if (spec.wildcard) {
    return std::strncmp(site, spec.site.c_str(), spec.site.size()) == 0;
  }
  return spec.site == site;
}

// Whether this matching hit (1-based `hit`) fires the spec.
bool Fires(const FaultSpec& spec, uint64_t hit) {
  if (spec.at != 0) {
    return hit == spec.at;
  }
  if (spec.every != 0) {
    return hit % spec.every == 0;
  }
  return true;
}

Status CrashedStatus(const char* site) {
  return UnavailableError(StrPrintf(
      "simulated crash: I/O frozen (fault site '%s')", site));
}

Status FailureFor(FaultKind kind, const char* site) {
  switch (kind) {
    case FaultKind::kEio:
      return UnavailableError(StrPrintf("injected I/O error at '%s': %s",
                                        site, std::strerror(EIO)));
    case FaultKind::kEnospc:
    case FaultKind::kShort:
      return UnavailableError(StrPrintf("injected disk-full at '%s': %s",
                                        site, std::strerror(ENOSPC)));
    case FaultKind::kFsyncFail:
      return UnavailableError(StrPrintf("injected fsync failure at '%s': %s",
                                        site, std::strerror(EIO)));
    case FaultKind::kUnavail:
      return UnavailableError(
          StrPrintf("injected unavailability at '%s'", site));
    case FaultKind::kCrash:
      return UnavailableError(StrPrintf(
          "simulated crash (power loss) at fault site '%s'", site));
    case FaultKind::kEintr:
    case FaultKind::kStall:
    case FaultKind::kTrace:
      break;
  }
  return OkStatus();
}

// The one slow-path consult. Counts the hit, finds the first firing
// spec, and returns the outcome; a stall sleeps outside the lock.
WriteFaultOutcome Consult(const char* site, size_t size, bool is_write) {
  uint64_t stall_ms = 0;
  WriteFaultOutcome outcome{size, OkStatus()};
  {
    std::lock_guard<std::mutex> lock(PlanMutex());
    FaultPlanState* plan = PlanSlot();
    if (plan == nullptr) {
      return outcome;
    }
    ++plan->total_hits;
    plan->sites_seen.insert(site);
    if (plan->crashed) {
      return WriteFaultOutcome{0, CrashedStatus(site)};
    }
    for (FaultSpec& spec : plan->specs) {
      if (!Matches(spec, site)) {
        continue;
      }
      ++spec.hits;
      if (spec.kind == FaultKind::kEintr || spec.kind == FaultKind::kTrace ||
          !Fires(spec, spec.hits)) {
        continue;
      }
      switch (spec.kind) {
        case FaultKind::kStall:
          stall_ms = spec.arg == 0 ? 1000 : spec.arg;
          break;
        case FaultKind::kShort:
          if (is_write && size > 0) {
            const size_t allowed =
                spec.arg != 0 ? std::min<size_t>(spec.arg, size - 1) : size / 2;
            outcome.allowed = allowed;
            outcome.failure = UnavailableError(StrPrintf(
                "injected short write at '%s' after %zu of %zu bytes: %s",
                site, allowed, size, std::strerror(ENOSPC)));
          } else {
            outcome = WriteFaultOutcome{0, FailureFor(spec.kind, site)};
          }
          break;
        case FaultKind::kCrash:
          plan->crashed = true;
          outcome = WriteFaultOutcome{0, FailureFor(spec.kind, site)};
          break;
        default:
          outcome = WriteFaultOutcome{0, FailureFor(spec.kind, site)};
          break;
      }
      break;  // first firing spec wins
    }
  }
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
  return outcome;
}

Result<FaultKind> ParseKind(const std::string& name) {
  if (name == "eio") return FaultKind::kEio;
  if (name == "enospc") return FaultKind::kEnospc;
  if (name == "short") return FaultKind::kShort;
  if (name == "eintr") return FaultKind::kEintr;
  if (name == "fsyncfail") return FaultKind::kFsyncFail;
  if (name == "crash") return FaultKind::kCrash;
  if (name == "unavail") return FaultKind::kUnavail;
  if (name == "stall") return FaultKind::kStall;
  if (name == "trace") return FaultKind::kTrace;
  return InvalidArgumentError(
      "unknown fault kind '" + name +
      "' (expected eio|enospc|short|eintr|fsyncfail|crash|unavail|stall|"
      "trace)");
}

Result<uint64_t> ParseCount(const std::string& spec, size_t& pos) {
  if (pos >= spec.size() || !std::isdigit(static_cast<unsigned char>(spec[pos]))) {
    return InvalidArgumentError("fault spec modifier needs a number: '" +
                                spec + "'");
  }
  uint64_t value = 0;
  while (pos < spec.size() &&
         std::isdigit(static_cast<unsigned char>(spec[pos]))) {
    value = value * 10 + static_cast<uint64_t>(spec[pos] - '0');
    ++pos;
  }
  return value;
}

Result<FaultSpec> ParseSpec(const std::string& text) {
  const size_t colon = text.find(':');
  if (colon == std::string::npos || colon == 0) {
    return InvalidArgumentError("fault spec needs 'site:kind': '" + text +
                                "'");
  }
  FaultSpec spec;
  spec.site = text.substr(0, colon);
  if (!spec.site.empty() && spec.site.back() == '*') {
    spec.wildcard = true;
    spec.site.pop_back();
  }
  size_t pos = colon + 1;
  const size_t kind_end = text.find_first_of("@/=", pos);
  ASSIGN_OR_RETURN(spec.kind,
                   ParseKind(text.substr(pos, kind_end == std::string::npos
                                                  ? std::string::npos
                                                  : kind_end - pos)));
  pos = kind_end;
  while (pos != std::string::npos && pos < text.size()) {
    const char mod = text[pos++];
    uint64_t value = 0;
    ASSIGN_OR_RETURN(value, ParseCount(text, pos));
    switch (mod) {
      case '@':
      case '/':
        // Hit counts are 1-based; a zero would silently mean "every hit",
        // which is what omitting the modifier already says.
        if (value == 0) {
          return InvalidArgumentError(StrPrintf(
              "fault spec modifier %c needs a count >= 1: '%s'", mod,
              text.c_str()));
        }
        (mod == '@' ? spec.at : spec.every) = value;
        break;
      case '=':
        spec.arg = value;
        break;
      default:
        return InvalidArgumentError("unknown fault spec modifier '" +
                                    std::string(1, mod) + "' in '" + text +
                                    "'");
    }
  }
  if (spec.kind == FaultKind::kEintr) {
    spec.eintr_left = spec.arg == 0 ? 3 : spec.arg;
  }
  return spec;
}

// Installs DDR_FAULT_PLAN at process start, before any consult. A parse
// failure is reported once on stderr and the process runs un-armed —
// silently ignoring a typo'd plan would fake fault coverage.
const bool g_env_plan_installed = [] {
  if (const char* env = std::getenv("DDR_FAULT_PLAN")) {
    if (env[0] != '\0') {
      if (Status installed = SetFaultPlan(env); !installed.ok()) {
        std::fprintf(stderr, "DDR_FAULT_PLAN ignored: %s\n",
                     installed.ToString().c_str());
      }
    }
  }
  return true;
}();

}  // namespace

namespace fault_internal {

Status PointSlow(const char* site) {
  return Consult(site, 0, /*is_write=*/false).failure;
}

bool EintrSlow(const char* site) {
  std::lock_guard<std::mutex> lock(PlanMutex());
  FaultPlanState* plan = PlanSlot();
  if (plan == nullptr || plan->crashed) {
    return false;
  }
  for (FaultSpec& spec : plan->specs) {
    if (spec.kind == FaultKind::kEintr && spec.eintr_left > 0 &&
        Matches(spec, site)) {
      --spec.eintr_left;
      return true;
    }
  }
  return false;
}

}  // namespace fault_internal

WriteFaultOutcome FaultWritePointSlow(const char* site, size_t size) {
  return Consult(site, size, /*is_write=*/true);
}

Status SetFaultPlan(const std::string& plan) {
  auto parsed = std::make_unique<FaultPlanState>();
  size_t start = 0;
  while (start <= plan.size()) {
    size_t end = plan.find(';', start);
    if (end == std::string::npos) {
      end = plan.size();
    }
    // Trim surrounding whitespace; empty segments are skipped.
    size_t lo = start;
    size_t hi = end;
    while (lo < hi && std::isspace(static_cast<unsigned char>(plan[lo]))) ++lo;
    while (hi > lo && std::isspace(static_cast<unsigned char>(plan[hi - 1])))
      --hi;
    if (hi > lo) {
      ASSIGN_OR_RETURN(FaultSpec spec, ParseSpec(plan.substr(lo, hi - lo)));
      parsed->specs.push_back(std::move(spec));
    }
    start = end + 1;
  }
  std::lock_guard<std::mutex> lock(PlanMutex());
  delete PlanSlot();
  if (parsed->specs.empty()) {
    PlanSlot() = nullptr;
    SetInstrArmed(kInstrFaults, false);
  } else {
    PlanSlot() = parsed.release();
    SetInstrArmed(kInstrFaults, true);
  }
  return OkStatus();
}

void ClearFaultPlan() {
  std::lock_guard<std::mutex> lock(PlanMutex());
  delete PlanSlot();
  PlanSlot() = nullptr;
  SetInstrArmed(kInstrFaults, false);
}

bool FaultCrashTriggered() {
  std::lock_guard<std::mutex> lock(PlanMutex());
  const FaultPlanState* plan = PlanSlot();
  return plan != nullptr && plan->crashed;
}

uint64_t FaultSiteHits() {
  std::lock_guard<std::mutex> lock(PlanMutex());
  const FaultPlanState* plan = PlanSlot();
  return plan == nullptr ? 0 : plan->total_hits;
}

std::vector<std::string> FaultSitesSeen() {
  std::lock_guard<std::mutex> lock(PlanMutex());
  const FaultPlanState* plan = PlanSlot();
  if (plan == nullptr) {
    return {};
  }
  return std::vector<std::string>(plan->sites_seen.begin(),
                                  plan->sites_seen.end());
}

}  // namespace ddr
