// Aligned plain-text table output for the benchmark harnesses.
//
// The bench binaries regenerate the paper's figures/tables as text; this
// printer produces deterministic, diff-friendly rows.

#ifndef SRC_UTIL_TABLE_PRINTER_H_
#define SRC_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ddr {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  // Renders header, separator, and rows with column alignment.
  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ddr

#endif  // SRC_UTIL_TABLE_PRINTER_H_
