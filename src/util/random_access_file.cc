#include "src/util/random_access_file.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define DDR_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DDR_HAVE_POSIX_IO 0
#endif

#include "src/util/fault_injection.h"
#include "src/util/string_util.h"
#include "src/util/thread_annotations.h"

namespace ddr {

namespace {

// One read site per backend, consulted from the shared Read() wrapper so
// all three paths carry fault coverage without per-backend plumbing.
const char* ReadFaultSite(IoBackend backend) {
  switch (backend) {
    case IoBackend::kStream:
      return "file.read.stream";
    case IoBackend::kPread:
      return "file.read.pread";
    case IoBackend::kMmap:
      return "file.read.mmap";
  }
  return "file.read";
}

Status CheckWindow(uint64_t offset, size_t length, uint64_t file_size,
                   const std::string& path) {
  // Subtraction form: offset + length must not wrap.
  if (offset > file_size || length > file_size - offset) {
    return OutOfRangeError(StrPrintf(
        "read [%llu, +%zu) past end of %s (%llu bytes)",
        static_cast<unsigned long long>(offset), length, path.c_str(),
        static_cast<unsigned long long>(file_size)));
  }
  return OkStatus();
}

// ------------------------------------------------------------- kStream

// The portable fallback: one buffered ifstream whose seek cursor is
// serialized behind a mutex.
class StreamFile final : public RandomAccessFile {
 public:
  StreamFile(std::string path, uint64_t size, std::ifstream stream)
      : RandomAccessFile(std::move(path), size, IoBackend::kStream),
        stream_(std::move(stream)) {}

 protected:
  Result<std::span<const uint8_t>> ReadImpl(
      uint64_t offset, size_t length,
      std::vector<uint8_t>* scratch) const override {
    scratch->resize(length);
    MutexLock lock(mu_);
    stream_.clear();
    stream_.seekg(static_cast<std::streamoff>(offset));
    stream_.read(reinterpret_cast<char*>(scratch->data()),
                 static_cast<std::streamsize>(length));
    if (!stream_ && length > 0) {
      return UnavailableError("short read on " + path());
    }
    return std::span<const uint8_t>(scratch->data(), length);
  }

 private:
  // The one backend with shared mutable state: the ifstream's seek cursor.
  mutable Mutex mu_;
  mutable std::ifstream stream_ GUARDED_BY(mu_);
};

// Classifies an open failure from errno: only true non-existence is
// NotFound — permission and resource errors must not masquerade as a
// missing file (callers branch on the code).
Status OpenError(const std::string& path, int err) {
  if (err == ENOENT) {
    return NotFoundError("cannot open file: " + path);
  }
  return UnavailableError(StrPrintf("cannot open file %s: %s", path.c_str(),
                                    std::strerror(err)));
}

Result<std::shared_ptr<RandomAccessFile>> OpenStream(const std::string& path) {
  errno = 0;
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    return OpenError(path, errno != 0 ? errno : ENOENT);
  }
  stream.seekg(0, std::ios::end);
  const uint64_t size = static_cast<uint64_t>(stream.tellg());
  return std::shared_ptr<RandomAccessFile>(
      new StreamFile(path, size, std::move(stream)));
}

#if DDR_HAVE_POSIX_IO

// -------------------------------------------------------------- kPread

// Positional reads on a raw descriptor: no cursor, no lock — the kernel
// page cache is the only buffer. Concurrent readers never contend.
class PreadFile final : public RandomAccessFile {
 public:
  PreadFile(std::string path, uint64_t size, int fd)
      : RandomAccessFile(std::move(path), size, IoBackend::kPread), fd_(fd) {}
  // Guarded: closing a negative descriptor (a failed or released handle)
  // would hit errno at best and, with fd 0 confusion elsewhere, a live
  // descriptor at worst.
  ~PreadFile() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

 protected:
  Result<std::span<const uint8_t>> ReadImpl(
      uint64_t offset, size_t length,
      std::vector<uint8_t>* scratch) const override {
    scratch->resize(length);
    size_t done = 0;
    while (done < length) {
      const ssize_t n = ::pread(fd_, scratch->data() + done, length - done,
                                static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return UnavailableError(StrPrintf("pread(%s): %s", path().c_str(),
                                          std::strerror(errno)));
      }
      if (n == 0) {
        return UnavailableError("short pread on " + path());
      }
      done += static_cast<size_t>(n);
    }
    return std::span<const uint8_t>(scratch->data(), length);
  }

  void AdviseImpl(ReadaheadMode mode) const override {
#if defined(POSIX_FADV_SEQUENTIAL)
    int advice = POSIX_FADV_NORMAL;
    switch (mode) {
      case ReadaheadMode::kNormal:
        advice = POSIX_FADV_NORMAL;
        break;
      case ReadaheadMode::kSequential:
        advice = POSIX_FADV_SEQUENTIAL;
        break;
      case ReadaheadMode::kRandom:
        advice = POSIX_FADV_RANDOM;
        break;
    }
    // Advisory: failure (e.g. an fs that ignores hints) changes nothing.
    (void)::posix_fadvise(fd_, 0, 0, advice);
#else
    (void)mode;
#endif
  }

 private:
  int fd_;
};

// --------------------------------------------------------------- kMmap

class MmapFile final : public RandomAccessFile {
 public:
  MmapFile(std::string path, uint64_t size, const uint8_t* data)
      : RandomAccessFile(std::move(path), size, IoBackend::kMmap),
        data_(data) {}
  ~MmapFile() override {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), static_cast<size_t>(size()));
    }
  }

 protected:
  Result<std::span<const uint8_t>> ReadImpl(
      uint64_t offset, size_t length,
      std::vector<uint8_t>* /*scratch*/) const override {
    return std::span<const uint8_t>(data_ + offset, length);
  }

  void AdviseImpl(ReadaheadMode mode) const override {
    int advice = MADV_NORMAL;
    switch (mode) {
      case ReadaheadMode::kNormal:
        advice = MADV_NORMAL;
        break;
      case ReadaheadMode::kSequential:
        advice = MADV_SEQUENTIAL;
        break;
      case ReadaheadMode::kRandom:
        advice = MADV_RANDOM;
        break;
    }
    (void)::madvise(const_cast<uint8_t*>(data_), static_cast<size_t>(size()),
                    advice);
  }

 private:
  const uint8_t* data_;
};

Result<int> OpenFd(const std::string& path, uint64_t* size) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return OpenError(path, errno);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return UnavailableError("cannot stat file: " + path);
  }
  *size = static_cast<uint64_t>(st.st_size);
  return fd;
}

Result<std::shared_ptr<RandomAccessFile>> OpenPread(const std::string& path) {
  uint64_t size = 0;
  ASSIGN_OR_RETURN(int fd, OpenFd(path, &size));
  return std::shared_ptr<RandomAccessFile>(new PreadFile(path, size, fd));
}

Result<std::shared_ptr<RandomAccessFile>> OpenMmap(const std::string& path) {
  uint64_t size = 0;
  ASSIGN_OR_RETURN(int fd, OpenFd(path, &size));
  if (size == 0) {
    // mmap(2) rejects zero-length mappings; an empty file has nothing to
    // map anyway. Callers with allow_fallback land on pread.
    ::close(fd);
    return UnavailableError("cannot mmap empty file: " + path);
  }
  void* mapped =
      ::mmap(nullptr, static_cast<size_t>(size), PROT_READ, MAP_PRIVATE, fd, 0);
  // The descriptor is not needed once the mapping exists.
  ::close(fd);
  if (mapped == MAP_FAILED) {
    return UnavailableError(
        StrPrintf("mmap(%s): %s", path.c_str(), std::strerror(errno)));
  }
  return std::shared_ptr<RandomAccessFile>(
      new MmapFile(path, size, static_cast<const uint8_t*>(mapped)));
}

#endif  // DDR_HAVE_POSIX_IO

}  // namespace

std::string_view IoBackendName(IoBackend backend) {
  switch (backend) {
    case IoBackend::kStream:
      return "stream";
    case IoBackend::kPread:
      return "pread";
    case IoBackend::kMmap:
      return "mmap";
  }
  return "unknown";
}

Result<IoBackend> ParseIoBackend(const std::string& name) {
  if (name == "stream" || name == "ifstream") {
    return IoBackend::kStream;
  }
  if (name == "pread") {
    return IoBackend::kPread;
  }
  if (name == "mmap") {
    return IoBackend::kMmap;
  }
  return InvalidArgumentError("unknown I/O backend '" + name +
                              "' (expected stream|pread|mmap)");
}

std::string_view ReadaheadModeName(ReadaheadMode mode) {
  switch (mode) {
    case ReadaheadMode::kNormal:
      return "normal";
    case ReadaheadMode::kSequential:
      return "sequential";
    case ReadaheadMode::kRandom:
      return "random";
  }
  return "unknown";
}

IoBackend DefaultIoBackend() {
  static const IoBackend kDefault = [] {
    if (const char* env = std::getenv("DDR_IO_BACKEND")) {
      auto parsed = ParseIoBackend(env);
      if (parsed.ok()) {
        return *parsed;
      }
    }
#if DDR_HAVE_POSIX_IO
    return IoBackend::kMmap;
#else
    return IoBackend::kStream;
#endif
  }();
  return kDefault;
}

uint64_t RandomAccessFile::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Result<std::span<const uint8_t>> RandomAccessFile::Read(
    uint64_t offset, size_t length, std::vector<uint8_t>* scratch) const {
  if (FaultsArmed()) {
    RETURN_IF_ERROR(FaultPoint(ReadFaultSite(backend_)));
  }
  RETURN_IF_ERROR(CheckWindow(offset, length, size_, path_));
  ASSIGN_OR_RETURN(std::span<const uint8_t> view,
                   ReadImpl(offset, length, scratch));
  bytes_read_.fetch_add(length, std::memory_order_relaxed);
  return view;
}

Result<std::shared_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path, const RandomAccessFileOptions& options) {
  RETURN_IF_ERROR(FaultPoint("file.open"));
  auto open_backend = [&]() -> Result<std::shared_ptr<RandomAccessFile>> {
#if DDR_HAVE_POSIX_IO
    switch (options.backend) {
      case IoBackend::kStream:
        return OpenStream(path);
      case IoBackend::kPread:
        if (auto opened = OpenPread(path);
            opened.ok() || !options.allow_fallback ||
            opened.status().code() == StatusCode::kNotFound) {
          return opened;
        }
        return OpenStream(path);
      case IoBackend::kMmap: {
        auto opened = OpenMmap(path);
        if (opened.ok() || !options.allow_fallback ||
            opened.status().code() == StatusCode::kNotFound) {
          return opened;
        }
        if (auto pread = OpenPread(path); pread.ok()) {
          return pread;
        }
        return OpenStream(path);
      }
    }
    return InvalidArgumentError("unknown I/O backend");
#else
    if (options.backend != IoBackend::kStream && !options.allow_fallback) {
      return UnimplementedError(
          std::string(IoBackendName(options.backend)) +
          " backend is unavailable on this platform");
    }
    return OpenStream(path);
#endif
  };
  ASSIGN_OR_RETURN(std::shared_ptr<RandomAccessFile> file, open_backend());
  // Stamp + apply the open-time hint before the handle is shared; Advise
  // is a no-op on backends without a kernel hint.
  file->readahead_ = options.readahead;
  if (options.readahead != ReadaheadMode::kNormal) {
    file->Advise(options.readahead);
  }
  return file;
}

}  // namespace ddr
