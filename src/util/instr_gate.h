// The one "is any instrumentation armed?" fast-path gate.
//
// Two layers instrument hot paths with a pay-nothing-when-off check:
// fault injection (src/util/fault_injection.h) and the deterministic
// schedule explorer's sched-points (src/analysis/sched/). Each needs a
// branch that is false in production; giving each its own atomic would
// make doubly-instrumented primitives pay two relaxed loads. Instead all
// layers share one process-wide bit-set: an instrumented operation does
// exactly one relaxed atomic load, tests its layer's bit, and only then
// enters that layer's slow path.
//
// Relaxed is enough: arming happens on a quiescent process (test setup,
// env-var install at static init) and every slow path re-synchronizes
// under its own mutex, so the gate only needs to eventually become
// visible — it never orders data.

#ifndef SRC_UTIL_INSTR_GATE_H_
#define SRC_UTIL_INSTR_GATE_H_

#include <atomic>
#include <cstdint>

namespace ddr {

// One bit per instrumentation layer.
inline constexpr uint32_t kInstrFaults = 1u << 0;  // DDR_FAULT_PLAN armed
inline constexpr uint32_t kInstrSched = 1u << 1;   // schedule explorer active

namespace instr_internal {
// Declared here so the armed check inlines to one relaxed load.
extern std::atomic<uint32_t> g_instr_armed;
}  // namespace instr_internal

// The single fast-path load all instrumented primitives share.
inline uint32_t InstrArmedBits() {
  return instr_internal::g_instr_armed.load(std::memory_order_relaxed);
}

// True when any of `bits` is armed. The usual call site shape:
//   if (InstrArmed(kInstrSched) && sched_internal::LockHook(this)) return;
inline bool InstrArmed(uint32_t bits) { return (InstrArmedBits() & bits) != 0; }

// Arms/disarms one layer's bit. Cheap but not a hot-path call — layers
// flip it on plan install / explorer start only.
void SetInstrArmed(uint32_t bit, bool on);

}  // namespace ddr

#endif  // SRC_UTIL_INSTR_GATE_H_
