#include "src/util/file_lock.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define DDR_HAVE_FLOCK 1
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#else
#define DDR_HAVE_FLOCK 0
#endif

#include "src/util/string_util.h"

namespace ddr {

#if DDR_HAVE_FLOCK

namespace {

// flock with EINTR retry; returns 0 or -1 with errno set (never EINTR).
int FlockRetry(int fd, int operation) {
  int rc = 0;
  do {
    rc = ::flock(fd, operation);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

}  // namespace

Status TryFlockExclusive(int fd, const std::string& path) {
  if (FlockRetry(fd, LOCK_EX | LOCK_NB) != 0) {
    if (errno == EWOULDBLOCK) {
      return UnavailableError(
          "another in-place append holds the corpus writer lock: " + path);
    }
    return UnavailableError(StrPrintf("flock(%s): %s", path.c_str(),
                                      std::strerror(errno)));
  }
  return OkStatus();
}

Result<bool> FileExclusivelyLocked(const std::string& path) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == ENOENT) {
      return NotFoundError("cannot probe writer lock: " + path);
    }
    return UnavailableError(StrPrintf("cannot open %s for lock probe: %s",
                                      path.c_str(), std::strerror(errno)));
  }
  const int rc = FlockRetry(fd, LOCK_SH | LOCK_NB);
  const int err = errno;
  // Closing drops the shared lock if we took it; the probe never holds
  // anything past this line.
  ::close(fd);
  if (rc == 0) {
    return false;
  }
  if (err == EWOULDBLOCK) {
    return true;
  }
  return UnavailableError(StrPrintf("flock probe(%s): %s", path.c_str(),
                                    std::strerror(err)));
}

#else  // !DDR_HAVE_FLOCK

Status TryFlockExclusive(int /*fd*/, const std::string& /*path*/) {
  return UnimplementedError("flock is unavailable on this platform");
}

Result<bool> FileExclusivelyLocked(const std::string& /*path*/) {
  return UnimplementedError("flock is unavailable on this platform");
}

#endif  // DDR_HAVE_FLOCK

}  // namespace ddr
