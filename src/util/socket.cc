#include "src/util/socket.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define DDR_HAVE_POSIX_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define DDR_HAVE_POSIX_SOCKETS 0
#endif

#include "src/util/fault_injection.h"
#include "src/util/string_util.h"

namespace ddr {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

#if DDR_HAVE_POSIX_SOCKETS

namespace {

Status SocketError(const char* what, int err) {
  return UnavailableError(StrPrintf("%s: %s", what, std::strerror(err)));
}

// socket(2) with CLOEXEC; a served fd leaking into a recorded child
// process would pin the connection past the client's lifetime.
Result<int> NewSocket(int domain) {
#if defined(SOCK_CLOEXEC)
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
#else
  const int fd = ::socket(domain, SOCK_STREAM, 0);
#endif
  if (fd < 0) {
    return SocketError("socket", errno);
  }
  return fd;
}

Result<sockaddr_un> UnixAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError(
        StrPrintf("unix socket path must be 1..%zu bytes: '%s'",
                  sizeof(addr.sun_path) - 1, path.c_str()));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SendAll(const uint8_t* data, size_t size) const {
  if (fd_ < 0) {
    return FailedPreconditionError("send on a closed socket");
  }
  size_t allow = size;
  Status injected = OkStatus();
  if (FaultsArmed()) {
    WriteFaultOutcome fault = FaultWritePoint("socket.send", size);
    allow = fault.allowed;
    injected = std::move(fault.failure);
  }
  size_t done = 0;
  while (done < allow) {
    if (FaultEintr("socket.send")) {
      continue;  // simulated interrupted send; the loop retries for real
    }
#if defined(MSG_NOSIGNAL)
    const ssize_t n = ::send(fd_, data + done, allow - done, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd_, data + done, allow - done, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return SocketError("send", errno);
    }
    done += static_cast<size_t>(n);
  }
  return injected;
}

Result<bool> Socket::RecvExact(uint8_t* data, size_t size) const {
  if (fd_ < 0) {
    return FailedPreconditionError("recv on a closed socket");
  }
  RETURN_IF_ERROR(FaultPoint("socket.recv"));
  size_t done = 0;
  while (done < size) {
    if (FaultEintr("socket.recv")) {
      continue;  // simulated interrupted recv; the loop retries for real
    }
    const ssize_t n = ::recv(fd_, data + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return SocketError("recv", errno);
    }
    if (n == 0) {
      if (done == 0) {
        return false;  // clean EOF on a message boundary
      }
      return UnavailableError(
          StrPrintf("connection closed mid-message (%zu of %zu bytes)", done,
                    size));
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

Result<size_t> Socket::RecvSome(uint8_t* data, size_t size) const {
  if (fd_ < 0) {
    return FailedPreconditionError("recv on a closed socket");
  }
  RETURN_IF_ERROR(FaultPoint("socket.recv"));
  while (true) {
    if (FaultEintr("socket.recv")) {
      continue;  // simulated interrupted recv; the loop retries for real
    }
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return SocketError("recv", errno);
    }
    return static_cast<size_t>(n);
  }
}

void Socket::ShutdownBoth() const {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Result<Socket> ListenUnix(const std::string& path, int backlog) {
  ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddress(path));
  // Replace a stale socket file (a dead daemon's leftover); refuse to
  // clobber anything that is not a socket.
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return FailedPreconditionError(
          "refusing to replace a non-socket file with a listener: " + path);
    }
    ::unlink(path.c_str());
  }
  ASSIGN_OR_RETURN(int fd, NewSocket(AF_UNIX));
  Socket listener(fd);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return SocketError(("bind(" + path + ")").c_str(), errno);
  }
  if (::listen(fd, backlog) != 0) {
    return SocketError(("listen(" + path + ")").c_str(), errno);
  }
  return listener;
}

Result<Socket> ListenTcp(uint16_t port, int backlog) {
  ASSIGN_OR_RETURN(int fd, NewSocket(AF_INET));
  Socket listener(fd);
  // Daemon restarts must not wait out TIME_WAIT on the fixed port.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return SocketError(StrPrintf("bind(127.0.0.1:%u)", port).c_str(), errno);
  }
  if (::listen(fd, backlog) != 0) {
    return SocketError("listen", errno);
  }
  return listener;
}

Result<uint16_t> LocalPort(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return SocketError("getsockname", errno);
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> AcceptConnection(const Socket& listener) {
  int fd = -1;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return SocketError("accept", errno);
  }
#if defined(FD_CLOEXEC)
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
#endif
  return Socket(fd);
}

Result<Socket> ConnectUnix(const std::string& path) {
  RETURN_IF_ERROR(FaultPoint("socket.connect"));
  ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddress(path));
  ASSIGN_OR_RETURN(int fd, NewSocket(AF_UNIX));
  Socket socket(fd);
  int rc = 0;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno == ENOENT || errno == ECONNREFUSED) {
      return NotFoundError("no corpus server listening at " + path);
    }
    return SocketError(("connect(" + path + ")").c_str(), errno);
  }
  return socket;
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  RETURN_IF_ERROR(FaultPoint("socket.connect"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("host must be a numeric IPv4 address: '" +
                                host + "'");
  }
  ASSIGN_OR_RETURN(int fd, NewSocket(AF_INET));
  Socket socket(fd);
  int rc = 0;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno == ECONNREFUSED) {
      return NotFoundError(
          StrPrintf("no corpus server listening at %s:%u", host.c_str(), port));
    }
    return SocketError(StrPrintf("connect(%s:%u)", host.c_str(), port).c_str(),
                       errno);
  }
  return socket;
}

Result<bool> WaitReadable(const Socket& socket, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = socket.fd();
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) {
      return false;  // let the caller re-check its stop flag
    }
    return SocketError("poll", errno);
  }
  return rc > 0;
}

#else  // !DDR_HAVE_POSIX_SOCKETS

namespace {
Status NoSockets() {
  return UnimplementedError("sockets are unavailable on this platform");
}
}  // namespace

void Socket::Close() { fd_ = -1; }
Status Socket::SendAll(const uint8_t*, size_t) const { return NoSockets(); }
Result<bool> Socket::RecvExact(uint8_t*, size_t) const { return NoSockets(); }
Result<size_t> Socket::RecvSome(uint8_t*, size_t) const { return NoSockets(); }
void Socket::ShutdownBoth() const {}

Result<Socket> ListenUnix(const std::string&, int) { return NoSockets(); }
Result<Socket> ListenTcp(uint16_t, int) { return NoSockets(); }
Result<uint16_t> LocalPort(const Socket&) { return NoSockets(); }
Result<Socket> AcceptConnection(const Socket&) { return NoSockets(); }
Result<Socket> ConnectUnix(const std::string&) { return NoSockets(); }
Result<Socket> ConnectTcp(const std::string&, uint16_t) { return NoSockets(); }
Result<bool> WaitReadable(const Socket&, int) { return NoSockets(); }

#endif  // DDR_HAVE_POSIX_SOCKETS

}  // namespace ddr
