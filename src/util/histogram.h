// Streaming summary statistics and a log-bucketed histogram.
//
// Used by the benchmark harnesses to summarize per-run metrics (overhead
// multipliers, inference times, bytes logged).

#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ddr {

// Running mean / min / max / variance (Welford).
class SummaryStats {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram with power-of-two value buckets, for non-negative values.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);

  uint64_t count() const { return total_count_; }
  uint64_t CountInBucket(size_t bucket) const;
  size_t num_buckets() const { return buckets_.size(); }

  // Approximate quantile (q in [0,1]) from bucket midpoints.
  double Quantile(double q) const;

  std::string ToString() const;

 private:
  static size_t BucketFor(uint64_t value);

  std::vector<uint64_t> buckets_;
  uint64_t total_count_ = 0;
};

}  // namespace ddr

#endif  // SRC_UTIL_HISTOGRAM_H_
