// FNV-1a based hashing used for trace fingerprints and hash-combining.
//
// Trace hashes must be stable across runs and platforms; std::hash gives no
// such guarantee, so all fingerprinting goes through these functions.

#ifndef SRC_UTIL_HASH_H_
#define SRC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ddr {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr uint64_t FnvHashBytes(const char* data, size_t size,
                                uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

constexpr uint64_t FnvHash(std::string_view text, uint64_t seed = kFnvOffsetBasis) {
  return FnvHashBytes(text.data(), text.size(), seed);
}

// Mixes a 64-bit value into a running hash (order-sensitive).
constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // 64-bit variant of boost::hash_combine with a stronger mixer.
  uint64_t x = value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return seed ^ (x ^ (x >> 31));
}

// Incremental, order-sensitive fingerprint builder.
class Fingerprint {
 public:
  Fingerprint() = default;
  explicit Fingerprint(uint64_t seed) : hash_(seed) {}

  void Mix(uint64_t value) { hash_ = HashCombine(hash_, value); }
  void MixBytes(std::string_view bytes) { hash_ = FnvHash(bytes, hash_); }

  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = kFnvOffsetBasis;
};

}  // namespace ddr

#endif  // SRC_UTIL_HASH_H_
