// Deterministic pseudo-random number generation.
//
// Every nondeterministic decision in the toolkit (scheduling, workloads,
// fault injection, search restarts) draws from a Rng seeded explicitly, so
// that identical seeds yield identical executions on every platform. The
// implementation is xoshiro256** seeded via SplitMix64; it does not depend
// on libstdc++'s distribution implementations (which are not portable
// across standard library versions).

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/util/logging.h"

namespace ddr {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t* state);

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t Next();

  // Uniform over [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform over [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Uniform double in [0, 1).
  double NextDouble();

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  // Picks a uniformly random index into a non-empty container size.
  size_t NextIndex(size_t size);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) {
      return;
    }
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  // Forks an independent stream; deterministic function of current state.
  Rng Fork();

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace ddr

#endif  // SRC_UTIL_RNG_H_
