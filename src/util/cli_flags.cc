#include "src/util/cli_flags.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace ddr {

namespace {

// Flag-token classification shared by the scanner entry points. A token
// matches a flag either exactly or as "name=..." (the inline-value form).
enum class TokenKind {
  kNotAFlag,            // does not begin with "--"
  kBoolFlag,            // known presence-only flag
  kValueInline,         // known value flag in "--flag=value" form
  kValueSpaced,         // known value flag; the next token is its value
  kBoolFlagWithValue,   // presence-only flag given "=value" — an error
  kUnknownFlag,         // begins with "--" but matches nothing in the table
};

TokenKind Classify(const char* token, std::span<const CliFlag> known) {
  if (std::strncmp(token, "--", 2) != 0) {
    return TokenKind::kNotAFlag;
  }
  for (const CliFlag& flag : known) {
    const size_t flag_len = std::strlen(flag.name);
    if (std::strcmp(token, flag.name) == 0) {
      return flag.takes_value ? TokenKind::kValueSpaced : TokenKind::kBoolFlag;
    }
    if (std::strncmp(token, flag.name, flag_len) == 0 &&
        token[flag_len] == '=') {
      // "--delta=false" on a presence-only flag must not quietly mean
      // "--delta" — HasCliFlag would match the prefix and ENABLE it,
      // inverting the user's expressed intent.
      return flag.takes_value ? TokenKind::kValueInline
                              : TokenKind::kBoolFlagWithValue;
    }
  }
  return TokenKind::kUnknownFlag;
}

// A spaced value must exist and must not itself look like a flag:
// otherwise "--report --threads 8" validates with "--threads" consumed
// as --report's value while CliFlagValue independently re-matches it as
// a flag — one token with two interpretations, and a stray file named
// "./--threads" on disk.
bool ValidSpacedValue(int argc, char* const* argv, int i) {
  return i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0;
}

}  // namespace

Status CheckKnownFlags(int argc, char* const* argv, int start,
                       std::span<const CliFlag> known) {
  for (int i = start; i < argc; ++i) {
    switch (Classify(argv[i], known)) {
      case TokenKind::kNotAFlag:
      case TokenKind::kBoolFlag:
      case TokenKind::kValueInline:
        break;
      case TokenKind::kValueSpaced:
        if (!ValidSpacedValue(argc, argv, i)) {
          return InvalidArgumentError(std::string("flag '") + argv[i] +
                                      "' is missing its value");
        }
        ++i;  // the flag's value
        break;
      case TokenKind::kBoolFlagWithValue:
        return InvalidArgumentError(std::string("flag '") + argv[i] +
                                    "' does not take a value");
      case TokenKind::kUnknownFlag:
        return InvalidArgumentError(std::string("unknown flag '") + argv[i] +
                                    "'");
    }
  }
  return OkStatus();
}

std::vector<std::string> PositionalArgs(int argc, char* const* argv, int start,
                                        std::span<const CliFlag> known) {
  std::vector<std::string> positionals;
  for (int i = start; i < argc; ++i) {
    switch (Classify(argv[i], known)) {
      case TokenKind::kNotAFlag:
        positionals.emplace_back(argv[i]);
        break;
      case TokenKind::kValueSpaced:
        if (ValidSpacedValue(argc, argv, i)) {
          ++i;
        }
        break;
      case TokenKind::kBoolFlag:
      case TokenKind::kValueInline:
      case TokenKind::kBoolFlagWithValue:  // CheckKnownFlags rejected these
      case TokenKind::kUnknownFlag:
        break;
    }
  }
  return positionals;
}

const char* CliFlagValue(int argc, char* const* argv, int start,
                         const char* flag) {
  const size_t flag_len = std::strlen(flag);
  for (int i = start; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=') {
      return argv[i] + flag_len + 1;
    }
  }
  return nullptr;
}

bool HasCliFlag(int argc, char* const* argv, int start, const char* flag) {
  const size_t flag_len = std::strlen(flag);
  for (int i = start; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 ||
        (std::strncmp(argv[i], flag, flag_len) == 0 &&
         argv[i][flag_len] == '=')) {
      return true;
    }
  }
  return false;
}

Result<uint64_t> ParseCliUint64(const char* text) {
  if (text == nullptr || *text == '\0') {
    return InvalidArgumentError("empty numeric value");
  }
  // strtoull itself skips whitespace and accepts a sign ("-1" wraps to
  // 2^64-1); a CLI count must be plain digits.
  if (!std::isdigit(static_cast<unsigned char>(text[0]))) {
    return InvalidArgumentError(std::string("invalid numeric value '") + text +
                                "'");
  }
  char* end = nullptr;
  errno = 0;
  const uint64_t value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    return InvalidArgumentError(std::string("invalid numeric value '") + text +
                                "'");
  }
  return value;
}

}  // namespace ddr
