#include "src/util/vector_clock.h"

#include <algorithm>
#include <sstream>

namespace ddr {

void VectorClock::Join(const VectorClock& other) {
  EnsureSize(other.clock_.size());
  for (size_t i = 0; i < other.clock_.size(); ++i) {
    clock_[i] = std::max(clock_[i], other.clock_[i]);
  }
}

bool VectorClock::HappensBeforeOrEqual(const VectorClock& other) const {
  const size_t n = std::max(clock_.size(), other.clock_.size());
  for (size_t i = 0; i < n; ++i) {
    if (Get(static_cast<uint32_t>(i)) > other.Get(static_cast<uint32_t>(i))) {
      return false;
    }
  }
  return true;
}

bool VectorClock::ConcurrentWith(const VectorClock& other) const {
  return !HappensBeforeOrEqual(other) && !other.HappensBeforeOrEqual(*this);
}

bool VectorClock::operator==(const VectorClock& other) const {
  const size_t n = std::max(clock_.size(), other.clock_.size());
  for (size_t i = 0; i < n; ++i) {
    if (Get(static_cast<uint32_t>(i)) != other.Get(static_cast<uint32_t>(i))) {
      return false;
    }
  }
  return true;
}

std::string VectorClock::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < clock_.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << clock_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace ddr
