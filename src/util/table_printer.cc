#include "src/util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace ddr {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << PadRight(cells[c], widths[c]);
    }
    os << " |\n";
  };
  emit_row(columns_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace ddr
