// Advisory flock(2) helpers shared by the corpus writer lock and its
// read-side probes.
//
// In-place corpus appends are single-writer: the appender takes an
// exclusive flock on the bundle for the life of the append (see
// CorpusWriter::AppendTo). Read-side tools want to *report* that state
// without ever blocking on it or racing the writer: the probe here takes
// a shared lock non-blockingly on its own descriptor — which succeeds
// exactly when no exclusive holder exists — and releases it immediately.
// Advisory locks are per open-file-description, so probing can neither
// disturb the writer nor leak a lock.

#ifndef SRC_UTIL_FILE_LOCK_H_
#define SRC_UTIL_FILE_LOCK_H_

#include <string>

#include "src/util/status.h"

namespace ddr {

// Takes a non-blocking exclusive flock on an already-open descriptor.
// The caller keeps ownership of the fd; the lock is released when the fd
// closes. Unavailable when any other holder (shared or exclusive) exists,
// Unimplemented on hosts without flock.
Status TryFlockExclusive(int fd, const std::string& path);

// TryLockShared probe: opens `path` read-only and attempts a non-blocking
// *shared* flock on the private descriptor. Returns true when the shared
// lock could not be taken — i.e. an exclusive holder (an in-place
// appender) is active right now — and false when it was acquired (and
// instantly released with the descriptor). NotFound when the file is
// missing; Unimplemented on hosts without flock. The answer is inherently
// a snapshot: a writer may arrive or finish the instant after.
Result<bool> FileExclusivelyLocked(const std::string& path);

}  // namespace ddr

#endif  // SRC_UTIL_FILE_LOCK_H_
