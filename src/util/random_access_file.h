// RandomAccessFile: positional, thread-safe reads with interchangeable
// backends.
//
// Every reader in the trace layer used to own one blocking std::ifstream,
// so N concurrent replays of one corpus paid N file opens and the seek
// cursor made a shared stream unusable across threads. This layer gives
// the trace/corpus readers one shared handle with three backends:
//
//   kStream  buffered std::ifstream behind a mutex — the portable
//            fallback, semantically identical to the old reader path.
//   kPread   positional pread(2): no shared cursor, no lock, kernel page
//            cache does the buffering. The right default for many
//            threads hammering one bundle.
//   kMmap    read-only mmap: Read() returns a span straight into the
//            mapping — zero copy, and decoders can decompress directly
//            from the mapped region. Falls back gracefully (see
//            RandomAccessFileOptions::allow_fallback) when mapping is
//            unavailable (empty file, exotic filesystem, non-POSIX host).
//
// All backends are safe for concurrent Read() calls on one const handle.
// The process-wide default backend is env-queryable: DDR_IO_BACKEND =
// stream | pread | mmap.

#ifndef SRC_UTIL_RANDOM_ACCESS_FILE_H_
#define SRC_UTIL_RANDOM_ACCESS_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace ddr {

enum class IoBackend : uint8_t {
  kStream = 0,
  kPread = 1,
  kMmap = 2,
};

std::string_view IoBackendName(IoBackend backend);
Result<IoBackend> ParseIoBackend(const std::string& name);

// The process default: DDR_IO_BACKEND when set and valid, else kMmap on
// POSIX hosts (with per-open fallback) and kStream elsewhere.
IoBackend DefaultIoBackend();

// Access-pattern hint forwarded to the kernel: posix_fadvise(2) for the
// pread backend, madvise(2) for mmap (the stream backend has no handle to
// hint). Purely advisory — reads return identical bytes under every mode;
// only prefetch behavior changes. kSequential widens readahead for cold
// front-to-back scans (corpus verify, bench cold passes); kRandom turns
// it off for point lookups; kNormal restores the kernel default.
enum class ReadaheadMode : uint8_t {
  kNormal = 0,
  kSequential = 1,
  kRandom = 2,
};

std::string_view ReadaheadModeName(ReadaheadMode mode);

struct RandomAccessFileOptions {
  IoBackend backend = DefaultIoBackend();
  // When the preferred backend cannot be set up (mmap of an empty file, a
  // host without the syscall), degrade mmap -> pread -> stream instead of
  // failing the open. A missing file is always an error.
  bool allow_fallback = true;
  // Readahead hint applied to the whole file at open (and restored by
  // Advise(readahead()) after a temporary override).
  ReadaheadMode readahead = ReadaheadMode::kNormal;
};

class RandomAccessFile {
 public:
  [[nodiscard]] static Result<std::shared_ptr<RandomAccessFile>> Open(
      const std::string& path, const RandomAccessFileOptions& options = {});

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;
  virtual ~RandomAccessFile() = default;

  // Reads exactly [offset, offset + length). The returned span either
  // aliases the file's internal mapping (mmap: zero copy, scratch is left
  // untouched) or `*scratch`, which is resized as needed. Reads past the
  // end of the file fail with OutOfRange; short reads are errors, never
  // silent truncation. Safe to call concurrently from many threads; the
  // span stays valid for the life of the handle (mmap) or until scratch
  // is next written (copying backends).
  [[nodiscard]] Result<std::span<const uint8_t>> Read(uint64_t offset, size_t length,
                                        std::vector<uint8_t>* scratch) const;

  const std::string& path() const { return path_; }
  uint64_t size() const { return size_; }
  // Process-unique id for this open handle. Caches key decoded data by
  // this (not by path): a path can be atomically replaced with new
  // contents, but an open handle keeps serving the bytes it was opened
  // on, so handle-keyed cache entries can never go stale.
  uint64_t id() const { return id_; }
  IoBackend backend() const { return backend_; }
  // True when Read() returns views into an in-memory mapping.
  bool zero_copy() const { return backend_ == IoBackend::kMmap; }
  // Total logical bytes served across all readers of this handle (mmap
  // reads count the span length: the accounting tracks what a copying
  // backend would have pulled, so cold/warm comparisons stay meaningful).
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  // The open-time readahead hint (what Advise restores after an override).
  ReadaheadMode readahead() const { return readahead_; }

  // Re-hints the whole file's expected access pattern. Advisory and
  // infallible: backends without a kernel hint (stream, or hosts lacking
  // the syscalls) ignore it. Safe to call concurrently with reads.
  void Advise(ReadaheadMode mode) const { AdviseImpl(mode); }

 protected:
  RandomAccessFile(std::string path, uint64_t size, IoBackend backend)
      : path_(std::move(path)), size_(size), backend_(backend), id_(NextId()) {}

  virtual void AdviseImpl(ReadaheadMode /*mode*/) const {}

  virtual Result<std::span<const uint8_t>> ReadImpl(
      uint64_t offset, size_t length, std::vector<uint8_t>* scratch) const = 0;

 private:
  static uint64_t NextId();

  std::string path_;
  uint64_t size_ = 0;
  IoBackend backend_ = IoBackend::kStream;
  uint64_t id_ = 0;
  // Set once by Open before the handle is shared; immutable afterwards.
  ReadaheadMode readahead_ = ReadaheadMode::kNormal;
  mutable std::atomic<uint64_t> bytes_read_{0};
};

}  // namespace ddr

#endif  // SRC_UTIL_RANDOM_ACCESS_FILE_H_
