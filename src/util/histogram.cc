#include "src/util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "src/util/logging.h"

namespace ddr {

void SummaryStats::Add(double value) {
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double SummaryStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

std::string SummaryStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " min=" << min()
     << " max=" << max() << " sd=" << stddev();
  return os.str();
}

Histogram::Histogram() : buckets_(65, 0) {}

size_t Histogram::BucketFor(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  return static_cast<size_t>(64 - std::countl_zero(value));
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  ++total_count_;
}

uint64_t Histogram::CountInBucket(size_t bucket) const {
  CHECK_LT(bucket, buckets_.size());
  return buckets_[bucket];
}

double Histogram::Quantile(double q) const {
  if (total_count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_count_);
  double seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += static_cast<double>(buckets_[i]);
    if (seen >= target) {
      // Midpoint of bucket i: [2^(i-1), 2^i).
      if (i == 0) {
        return 0.0;
      }
      const double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(i));
      return (lo + hi) / 2.0;
    }
  }
  return std::ldexp(1.0, 63);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << total_count_;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      os << " [2^" << (i == 0 ? 0 : i - 1) << "]=" << buckets_[i];
    }
  }
  return os.str();
}

}  // namespace ddr
