#include "src/util/rng.h"

#include <cmath>

namespace ddr {
namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
  // xoshiro256** must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  CHECK_GT(mean, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

size_t Rng::NextIndex(size_t size) {
  CHECK_GT(size, 0u);
  return static_cast<size_t>(NextBelow(size));
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace ddr
