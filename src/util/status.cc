#include "src/util/status.h"

namespace ddr {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, std::string(message));
}
Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, std::string(message));
}
Status AlreadyExistsError(std::string_view message) {
  return Status(StatusCode::kAlreadyExists, std::string(message));
}
Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, std::string(message));
}
Status OutOfRangeError(std::string_view message) {
  return Status(StatusCode::kOutOfRange, std::string(message));
}
Status UnimplementedError(std::string_view message) {
  return Status(StatusCode::kUnimplemented, std::string(message));
}
Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, std::string(message));
}
Status UnavailableError(std::string_view message) {
  return Status(StatusCode::kUnavailable, std::string(message));
}
Status DeadlineExceededError(std::string_view message) {
  return Status(StatusCode::kDeadlineExceeded, std::string(message));
}
Status AbortedError(std::string_view message) {
  return Status(StatusCode::kAborted, std::string(message));
}
Status ResourceExhaustedError(std::string_view message) {
  return Status(StatusCode::kResourceExhausted, std::string(message));
}

}  // namespace ddr
