// Thin RAII sockets for the corpus server: unix-domain by default (one
// machine, one replay fleet), loopback TCP as the optional second
// transport. Only what the length-prefixed RPC protocol needs — exact
// sends, exact receives with a distinguishable clean EOF, and a pollable
// readability wait so accept/serve loops can watch a stop flag instead of
// blocking forever.
//
// All functions are POSIX-gated: on hosts without BSD sockets every
// operation fails with Unimplemented (mirroring the I/O layer's stream
// fallback posture — the in-process library paths keep working, only the
// daemon transport is absent).

#ifndef SRC_UTIL_SOCKET_H_
#define SRC_UTIL_SOCKET_H_

#include <cstdint>
#include <string>

#include "src/util/status.h"

namespace ddr {

// Owns one socket descriptor. Movable, never copyable; closes on
// destruction. A default-constructed Socket is invalid (fd -1).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  // Writes exactly [data, data + size), looping over partial sends.
  // EPIPE/ECONNRESET surface as Unavailable, never as SIGPIPE.
  Status SendAll(const uint8_t* data, size_t size) const;

  // Reads exactly `size` bytes. Returns false when the peer closed
  // cleanly before the first byte (EOF between messages); a close midway
  // through is an Unavailable error (a torn frame, never silent).
  Result<bool> RecvExact(uint8_t* data, size_t size) const;

  // One recv(2): up to `size` bytes, 0 = clean EOF. The building block
  // for deadline-aware reads, which poll WaitReadable between chunks
  // instead of parking in a full-buffer recv.
  Result<size_t> RecvSome(uint8_t* data, size_t size) const;

  // shutdown(2) both directions: wakes any thread blocked in RecvExact on
  // this socket (it sees EOF). Used for server-side drain.
  void ShutdownBoth() const;

 private:
  int fd_ = -1;
};

// Listening endpoints. ListenUnix binds a unix-domain stream socket at
// `path` (an existing *socket* file there is replaced — a stale socket
// from a dead daemon must not wedge restarts; any other file kind is an
// error). ListenTcp binds 127.0.0.1:`port` (0 = kernel-assigned; read it
// back with LocalPort).
Result<Socket> ListenUnix(const std::string& path, int backlog = 64);
Result<Socket> ListenTcp(uint16_t port, int backlog = 64);

// The bound port of a listening TCP socket (after ListenTcp(0)).
Result<uint16_t> LocalPort(const Socket& listener);

// Blocks in accept(2); pair with WaitReadable to keep the loop stoppable.
Result<Socket> AcceptConnection(const Socket& listener);

// Client-side connects. `host` must be a numeric IPv4 address (the tool
// talks to daemons it started; no resolver dependency).
Result<Socket> ConnectUnix(const std::string& path);
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

// True when `socket` is readable (data or a pending accept) within
// `timeout_ms`; false on timeout. EINTR counts as a timeout so callers
// re-check their stop flag.
Result<bool> WaitReadable(const Socket& socket, int timeout_ms);

}  // namespace ddr

#endif  // SRC_UTIL_SOCKET_H_
