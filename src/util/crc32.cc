#include "src/util/crc32.h"

#include <array>

namespace ddr {

namespace {

// 8 slicing tables: table[0] is the classic bytewise table; table[k][i]
// extends it by k extra zero bytes, so 8 input bytes can be folded into
// the state with 8 independent lookups per iteration instead of 8
// dependent ones.
using SliceTables = std::array<std::array<uint32_t, 256>, 8>;

SliceTables BuildTables() {
  SliceTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    tables[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xFFu];
    }
  }
  return tables;
}

const SliceTables& Tables() {
  static const SliceTables tables = BuildTables();
  return tables;
}

// Explicit little-endian composition keeps the wide path byte-order
// independent (the tables are defined over input byte order, not host
// word order).
inline uint32_t LoadLE32(const uint8_t* bytes) {
  return static_cast<uint32_t>(bytes[0]) |
         static_cast<uint32_t>(bytes[1]) << 8 |
         static_cast<uint32_t>(bytes[2]) << 16 |
         static_cast<uint32_t>(bytes[3]) << 24;
}

}  // namespace

uint32_t Crc32UpdateBytewise(uint32_t state, const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& table = Tables()[0];
  for (size_t i = 0; i < size; ++i) {
    state = (state >> 8) ^ table[(state ^ bytes[i]) & 0xFFu];
  }
  return state;
}

uint32_t Crc32Update(uint32_t state, const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& t = Tables();
  // Slicing-by-8: fold the state into the first 4 input bytes, then one
  // table lookup per byte with no serial dependency inside the iteration.
  while (size >= 8) {
    const uint32_t lo = LoadLE32(bytes) ^ state;
    const uint32_t hi = LoadLE32(bytes + 4);
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
            t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^
            t[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  return Crc32UpdateBytewise(state, bytes, size);
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Finish(Crc32Update(kCrc32Init, data, size));
}

}  // namespace ddr
