// Clang thread-safety annotations + annotated synchronization wrappers.
//
// The threaded read/serve path (sharded ChunkCache, CorpusServer worker
// pool, BatchRunner's scorer, the stream backend of RandomAccessFile)
// keeps its locking discipline in comments — "guarded by mu", "only grows
// under conn_mu". This header turns those comments into compiler-checked
// contracts: under clang, `-Wthread-safety -Werror` rejects any access to
// a GUARDED_BY member without its mutex held, any ACQUIRE/RELEASE
// imbalance, and any REQUIRES violation. Off clang the macros expand to
// nothing, so gcc builds are byte-identical to before.
//
// std::mutex itself carries no annotations (libstdc++ ships none), so the
// analysis only sees locks taken through the annotated wrappers below:
//
//   Mutex mu_;
//   std::deque<Task> queue_ GUARDED_BY(mu_);
//   ...
//   MutexLock lock(mu_);   // SCOPED_CAPABILITY: held until end of scope
//   queue_.push_back(t);   // OK; without the lock: compile error on clang
//
// SharedMutex / ReaderMutexLock / WriterMutexLock mirror the same pattern
// for std::shared_mutex, and CondVar is a condition_variable_any bound to
// the annotated Mutex so waiting code keeps its capability visible to the
// analysis (use an explicit `while (!pred) cv.Wait(lock);` loop — a
// predicate lambda would be analyzed as a separate, lockless function).
//
// The wrappers are also the sched-points of the deterministic schedule
// explorer (src/analysis/sched/): every operation first tests the shared
// instr_gate bit (one relaxed atomic load, the same pattern as
// fault_injection.h) and, only when an explorer is active AND the calling
// thread participates in it, diverts into the scheduler's model instead
// of touching the real primitive. Unarmed, production code pays exactly
// that one load.

#ifndef SRC_UTIL_THREAD_ANNOTATIONS_H_
#define SRC_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "src/util/instr_gate.h"

#if defined(__clang__) && (!defined(SWIG))
#define DDR_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DDR_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

#define CAPABILITY(x) DDR_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define SCOPED_CAPABILITY DDR_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Member `x` may only be touched while holding the named mutex(es).
#define GUARDED_BY(x) DDR_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) DDR_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Function-level contracts: the caller must hold / must not hold.
#define REQUIRES(...) \
  DDR_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DDR_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) DDR_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Lock/unlock primitives (used on the wrappers below; user code should
// prefer the scoped lockers).
#define ACQUIRE(...) \
  DDR_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DDR_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  DDR_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DDR_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  DDR_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define RETURN_CAPABILITY(x) DDR_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch — every use must say why in an adjacent comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  DDR_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace ddr {

// Raw std::thread is banned outside src/util/ by ddr-lint (ddr-raw-sync);
// this alias is the sanctioned spawn point. A thread object carries no
// lock state for the analysis, but routing spawns through one name keeps
// them auditable (and lintable) alongside the annotated primitives.
using OsThread = std::thread;

namespace sched_internal {
// Sched-point hooks, defined by the schedule explorer
// (src/analysis/sched/sched.cc). Each returns true when the operation was
// handled by the scheduler's model — the wrapper then skips the real
// primitive — and false when the calling thread is not a participant of
// an active exploration (the wrapper falls through to the real op).
// Callers must only consult these after an InstrArmed(kInstrSched) check.
bool LockHook(void* mu);
bool UnlockHook(void* mu);
bool TryLockHook(void* mu, bool* acquired);
bool SharedLockHook(void* mu, bool exclusive);
bool SharedUnlockHook(void* mu, bool exclusive);
bool CondWaitHook(void* cv, void* mu, bool timed);
bool CondNotifyHook(void* cv, bool all);
}  // namespace sched_internal

// std::mutex with the capability attributes the analysis needs. Satisfies
// BasicLockable, so std::condition_variable_any (CondVar below) and
// std::lock_guard both work on it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    if (InstrArmed(kInstrSched) && sched_internal::LockHook(this)) {
      return;
    }
    mu_.lock();
  }
  void unlock() RELEASE() {
    if (InstrArmed(kInstrSched) && sched_internal::UnlockHook(this)) {
      return;
    }
    mu_.unlock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    bool acquired = false;
    if (InstrArmed(kInstrSched) &&
        sched_internal::TryLockHook(this, &acquired)) {
      return acquired;
    }
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

// Scoped exclusive lock on a Mutex (the std::lock_guard shape).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// std::shared_mutex with capability attributes: exclusive for writers
// (generation swaps), shared for the request fan-in.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    if (InstrArmed(kInstrSched) &&
        sched_internal::SharedLockHook(this, /*exclusive=*/true)) {
      return;
    }
    mu_.lock();
  }
  void unlock() RELEASE() {
    if (InstrArmed(kInstrSched) &&
        sched_internal::SharedUnlockHook(this, /*exclusive=*/true)) {
      return;
    }
    mu_.unlock();
  }
  void lock_shared() ACQUIRE_SHARED() {
    if (InstrArmed(kInstrSched) &&
        sched_internal::SharedLockHook(this, /*exclusive=*/false)) {
      return;
    }
    mu_.lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() {
    if (InstrArmed(kInstrSched) &&
        sched_internal::SharedUnlockHook(this, /*exclusive=*/false)) {
      return;
    }
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
};

class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  // Generic RELEASE: a scoped capability releases whatever mode it
  // acquired (clang models shared release through the same attribute).
  ~ReaderMutexLock() RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to the annotated Mutex. Wait() takes the
// MutexLock it temporarily releases; because the caller's scoped lock is
// still in scope across the call, guarded reads in the caller's
// `while (!pred)` loop stay visibly protected to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    // The capability is handed to cv_ for the duration of the sleep and
    // re-held on return — net zero, which the analysis cannot see; hence
    // the local suppression.
    if (InstrArmed(kInstrSched) &&
        sched_internal::CondWaitHook(this, &mu, /*timed=*/false)) {
      return;
    }
    cv_.wait(mu);
  }

  template <typename Rep, typename Period>
  void WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    if (InstrArmed(kInstrSched) &&
        sched_internal::CondWaitHook(this, &mu, /*timed=*/true)) {
      return;
    }
    cv_.wait_for(mu, timeout);
  }

  void NotifyOne() {
    if (InstrArmed(kInstrSched) &&
        sched_internal::CondNotifyHook(this, /*all=*/false)) {
      return;
    }
    cv_.notify_one();
  }
  void NotifyAll() {
    if (InstrArmed(kInstrSched) &&
        sched_internal::CondNotifyHook(this, /*all=*/true)) {
      return;
    }
    cv_.notify_all();
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ddr

#endif  // SRC_UTIL_THREAD_ANNOTATIONS_H_
