// Small string helpers (printf-style formatting, joining, padding).

#ifndef SRC_UTIL_STRING_UTIL_H_
#define SRC_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ddr {

// printf-style formatting into a std::string.
std::string StrPrintf(const char* format, ...) __attribute__((format(printf, 1, 2)));

// Joins items with a separator using operator<<.
template <typename Container>
std::string StrJoin(const Container& items, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) {
      os << sep;
    }
    first = false;
    os << item;
  }
  return os.str();
}

// Pads/truncates to exactly `width` columns, left- or right-aligned.
std::string PadRight(std::string_view text, size_t width);
std::string PadLeft(std::string_view text, size_t width);

// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Splits on a single character, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Escapes a string for embedding in a JSON string literal (quotes,
// backslashes, newlines, and other control characters).
std::string JsonEscape(std::string_view text);

}  // namespace ddr

#endif  // SRC_UTIL_STRING_UTIL_H_
