// Vector clocks over dense thread/fiber ids.
//
// Used by the FastTrack race detector and by Hypertable-lite's causality
// tests. Components are addressed by small integer ids; the clock grows on
// demand and missing components read as zero.

#ifndef SRC_UTIL_VECTOR_CLOCK_H_
#define SRC_UTIL_VECTOR_CLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ddr {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(size_t size) : clock_(size, 0) {}

  uint64_t Get(uint32_t id) const {
    return id < clock_.size() ? clock_[id] : 0;
  }

  void Set(uint32_t id, uint64_t value) {
    EnsureSize(id + 1);
    clock_[id] = value;
  }

  // Increments this component's entry and returns the new value.
  uint64_t Tick(uint32_t id) {
    EnsureSize(id + 1);
    return ++clock_[id];
  }

  // Component-wise maximum (least upper bound).
  void Join(const VectorClock& other);

  // True if every component of this clock is <= the other's (this
  // happens-before-or-equals other).
  bool HappensBeforeOrEqual(const VectorClock& other) const;

  // True if neither clock happens-before the other and they differ.
  bool ConcurrentWith(const VectorClock& other) const;

  bool operator==(const VectorClock& other) const;

  size_t size() const { return clock_.size(); }

  std::string ToString() const;

 private:
  void EnsureSize(size_t size) {
    if (clock_.size() < size) {
      clock_.resize(size, 0);
    }
  }

  std::vector<uint64_t> clock_;
};

// FastTrack epoch: a (thread id, clock value) pair packed into 64 bits.
// Represents "last access was by thread tid at time clk" without a full
// vector when accesses are thread-ordered.
class Epoch {
 public:
  Epoch() = default;
  Epoch(uint32_t tid, uint64_t clk) : bits_((static_cast<uint64_t>(tid) << 48) | (clk & kClockMask)) {}

  uint32_t tid() const { return static_cast<uint32_t>(bits_ >> 48); }
  uint64_t clk() const { return bits_ & kClockMask; }
  bool IsZero() const { return bits_ == 0; }

  // True if this epoch happens-before-or-equals the given vector clock.
  bool LeqClock(const VectorClock& vc) const { return clk() <= vc.Get(tid()); }

  bool operator==(const Epoch& other) const { return bits_ == other.bits_; }

 private:
  static constexpr uint64_t kClockMask = (1ULL << 48) - 1;
  uint64_t bits_ = 0;
};

}  // namespace ddr

#endif  // SRC_UTIL_VECTOR_CLOCK_H_
