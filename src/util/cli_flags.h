// Centralized command-line flag handling for ddr-trace-style CLIs.
//
// Every subcommand declares its known flags as a table and runs the whole
// argument vector through CheckKnownFlags before doing any work, so a
// typo'd flag ("--cach-mb") is a loud usage error on *every* subcommand —
// never a silently ignored no-op that leaves the user convinced they
// changed a setting. The accessors accept both "--flag value" and
// "--flag=value" forms.
//
//   constexpr CliFlag kFlags[] = {{"--io", true}, {"--verbose", false}};
//   RETURN_IF_ERROR(CheckKnownFlags(argc, argv, /*start=*/2, kFlags));
//   const char* io = CliFlagValue(argc, argv, /*start=*/2, "--io");

#ifndef SRC_UTIL_CLI_FLAGS_H_
#define SRC_UTIL_CLI_FLAGS_H_

#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace ddr {

// One recognized "--flag" of a CLI (sub)command. Value flags accept
// "--flag v" (consuming the next token) and "--flag=v"; boolean flags are
// presence-only.
struct CliFlag {
  const char* name;  // including the leading "--"
  bool takes_value;
};

// Scans argv[start, argc): every token beginning with "--" must match a
// flag in `known` (a known value flag consumes the following token as its
// value). The first unknown flag fails with InvalidArgument naming it.
// Tokens that do not begin with "--" are positionals and are ignored
// here.
Status CheckKnownFlags(int argc, char* const* argv, int start,
                       std::span<const CliFlag> known);

// The positional (non-flag) tokens of argv[start, argc): everything that
// is neither a known flag nor a known value flag's consumed value.
// Callers run CheckKnownFlags first, so unknown flags never masquerade as
// positionals.
std::vector<std::string> PositionalArgs(int argc, char* const* argv, int start,
                                        std::span<const CliFlag> known);

// "--flag value" / "--flag=value" lookup over argv[start, argc); nullptr
// when the flag is absent.
const char* CliFlagValue(int argc, char* const* argv, int start,
                         const char* flag);

// True when the flag appears (either form).
bool HasCliFlag(int argc, char* const* argv, int start, const char* flag);

// Whole-token unsigned parse: rejects empty input, junk, trailing
// garbage, leading signs/whitespace (strtoull quietly wraps "-1" to
// 2^64-1), and out-of-range values.
Result<uint64_t> ParseCliUint64(const char* text);

}  // namespace ddr

#endif  // SRC_UTIL_CLI_FLAGS_H_
