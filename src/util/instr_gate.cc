#include "src/util/instr_gate.h"

namespace ddr {

namespace instr_internal {
std::atomic<uint32_t> g_instr_armed{0};
}  // namespace instr_internal

void SetInstrArmed(uint32_t bit, bool on) {
  if (on) {
    instr_internal::g_instr_armed.fetch_or(bit, std::memory_order_relaxed);
  } else {
    instr_internal::g_instr_armed.fetch_and(~bit, std::memory_order_relaxed);
  }
}

}  // namespace ddr
