#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ddr {
namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

// Serializes log lines so concurrent fibers/threads do not interleave output.
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

char SeverityLetter(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return 'D';
    case LogSeverity::kInfo:
      return 'I';
    case LogSeverity::kWarning:
      return 'W';
    case LogSeverity::kError:
      return 'E';
    case LogSeverity::kFatal:
      return 'F';
  }
  return '?';
}

}  // namespace

namespace logging_internal {

const char* ShortFileName(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash != nullptr ? slash + 1 : file;
}

}  // namespace logging_internal

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : file_(file), line_(line), severity_(severity) {}

LogMessage::~LogMessage() {
  const bool emit = static_cast<int>(severity_) >=
                    g_min_severity.load(std::memory_order_relaxed);
  if (emit || severity_ == LogSeverity::kFatal) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "[%c %s:%d] %s\n", SeverityLetter(severity_),
                 logging_internal::ShortFileName(file_), line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace ddr
