// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
// trace-file sections. Like the fingerprints in hash.h, CRCs must be stable
// across platforms: the implementation is byte-order independent.

#ifndef SRC_UTIL_CRC32_H_
#define SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ddr {

// One-shot CRC of a byte range.
uint32_t Crc32(const void* data, size_t size);

// Incremental form: feed `Crc32Update` the running value (start from
// `kCrc32Init`) and finish with `Crc32Finish`. The fast path is
// slicing-by-8 (8 bytes per iteration over 8 precomputed tables, same
// polynomial and values as the bytewise loop).
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t state, const void* data, size_t size);
// One-table byte-at-a-time reference implementation: the tail loop of
// Crc32Update and the ground truth the sliced path is asserted against
// in tests (any length, any alignment, identical output).
uint32_t Crc32UpdateBytewise(uint32_t state, const void* data, size_t size);
inline constexpr uint32_t Crc32Finish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace ddr

#endif  // SRC_UTIL_CRC32_H_
