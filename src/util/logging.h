// Minimal leveled logging and assertion macros for the ddr toolkit.
//
// LOG(INFO) << "message";            leveled logging to stderr
// CHECK(cond) << "detail";           fatal if cond is false (always on)
// CHECK_EQ(a, b) / CHECK_NE / ...    fatal comparisons, print both operands
// DCHECK(cond)                       CHECK in debug builds, no-op in NDEBUG
//
// FATAL log messages abort the process after flushing.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace ddr {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Messages below this severity are discarded. Defaults to kInfo.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows a log stream; used for disabled DCHECKs.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

namespace logging_internal {

// Returns a short file name (basename) for log prefixes.
const char* ShortFileName(const char* file);

}  // namespace logging_internal

#define DDR_LOG_DEBUG ::ddr::LogSeverity::kDebug
#define DDR_LOG_INFO ::ddr::LogSeverity::kInfo
#define DDR_LOG_WARNING ::ddr::LogSeverity::kWarning
#define DDR_LOG_ERROR ::ddr::LogSeverity::kError
#define DDR_LOG_FATAL ::ddr::LogSeverity::kFatal

#define LOG(severity) ::ddr::LogMessage(__FILE__, __LINE__, DDR_LOG_##severity).stream()

#define LOG_IF(severity, cond) \
  !(cond) ? (void)0 : ::ddr::LogMessageVoidify() & LOG(severity)

#define CHECK(cond)                                                               \
  (cond) ? (void)0                                                               \
         : ::ddr::LogMessageVoidify() &                                          \
               ::ddr::LogMessage(__FILE__, __LINE__, ::ddr::LogSeverity::kFatal) \
                   .stream()                                                     \
               << "Check failed: " #cond " "

#define DDR_CHECK_OP(name, op, a, b)                                              \
  ((a)op(b)) ? (void)0                                                           \
             : ::ddr::LogMessageVoidify() &                                      \
                   ::ddr::LogMessage(__FILE__, __LINE__,                         \
                                     ::ddr::LogSeverity::kFatal)                 \
                       .stream()                                                 \
                   << "Check failed: " #a " " #op " " #b " (" << (a) << " vs. " \
                   << (b) << ") "

#define CHECK_EQ(a, b) DDR_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) DDR_CHECK_OP(NE, !=, a, b)
#define CHECK_LE(a, b) DDR_CHECK_OP(LE, <=, a, b)
#define CHECK_LT(a, b) DDR_CHECK_OP(LT, <, a, b)
#define CHECK_GE(a, b) DDR_CHECK_OP(GE, >=, a, b)
#define CHECK_GT(a, b) DDR_CHECK_OP(GT, >, a, b)

#ifdef NDEBUG
#define DCHECK(cond) \
  while (false) CHECK(cond)
#define DCHECK_EQ(a, b) \
  while (false) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) \
  while (false) CHECK_NE(a, b)
#define DCHECK_LE(a, b) \
  while (false) CHECK_LE(a, b)
#define DCHECK_LT(a, b) \
  while (false) CHECK_LT(a, b)
#define DCHECK_GE(a, b) \
  while (false) CHECK_GE(a, b)
#define DCHECK_GT(a, b) \
  while (false) CHECK_GT(a, b)
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#endif

}  // namespace ddr

#endif  // SRC_UTIL_LOGGING_H_
