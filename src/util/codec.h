// Compact binary encoding for event logs and snapshots.
//
// Encoder appends varint/zigzag/fixed/string fields to a byte buffer;
// Decoder reads them back. All multi-byte fixed-width values are encoded
// little-endian, independent of host byte order.

#ifndef SRC_UTIL_CODEC_H_
#define SRC_UTIL_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace ddr {

class Encoder {
 public:
  Encoder() = default;

  void PutVarint64(uint64_t value);
  void PutZigzag64(int64_t value);
  void PutFixed8(uint8_t value);
  void PutFixed32(uint32_t value);
  void PutFixed64(uint64_t value);
  void PutDouble(double value);
  // Length-prefixed byte string.
  void PutString(std::string_view value);
  void PutBool(bool value) { PutFixed8(value ? 1 : 0); }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }
  void Clear() { buffer_.clear(); }

 private:
  std::vector<uint8_t> buffer_;
};

class Decoder {
 public:
  explicit Decoder(const std::vector<uint8_t>& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint64_t> GetVarint64();
  Result<int64_t> GetZigzag64();
  Result<uint8_t> GetFixed8();
  Result<uint32_t> GetFixed32();
  Result<uint64_t> GetFixed64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<bool> GetBool();
  // Zero-copy read of the next `size` raw bytes: returns a pointer into the
  // underlying buffer and advances past them.
  Result<const uint8_t*> GetBytes(size_t size);

  size_t remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace ddr

#endif  // SRC_UTIL_CODEC_H_
