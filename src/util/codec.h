// Compact binary encoding for event logs and snapshots.
//
// Encoder appends varint/zigzag/fixed/string fields to a byte buffer;
// Decoder reads them back. All multi-byte fixed-width values are encoded
// little-endian, independent of host byte order.

#ifndef SRC_UTIL_CODEC_H_
#define SRC_UTIL_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace ddr {

// Worst-case encoded size of one varint64 (ten 7-bit groups cover 64
// bits). The bulk span decoders hoist their bounds check to "at least
// this many bytes remain", so the inner loop never tests pos_ < size_.
inline constexpr size_t kMaxVarint64Bytes = 10;

class Encoder {
 public:
  Encoder() = default;

  void PutVarint64(uint64_t value);
  void PutZigzag64(int64_t value);

  // Bulk column encoders: append `count` varints produced by gen(i) with
  // one worst-case buffer reservation and raw-pointer writes instead of
  // a push_back per byte. Byte-identical to calling PutVarint64 /
  // PutZigzag64(value - prev) in a loop.
  template <typename Gen>  // uint64_t gen(size_t i)
  void PutVarint64Span(size_t count, Gen&& gen);
  // Delta form for monotone columns: encodes gen(i) - gen(i-1) (zigzag,
  // wrapping uint64 arithmetic), with gen(-1) taken as 0.
  template <typename Gen>  // uint64_t gen(size_t i) -> absolute value
  void PutZigzagDelta64Span(size_t count, Gen&& gen);
  void PutFixed8(uint8_t value);
  void PutFixed32(uint32_t value);
  void PutFixed64(uint64_t value);
  void PutDouble(double value);
  // Length-prefixed byte string.
  void PutString(std::string_view value);
  void PutBool(bool value) { PutFixed8(value ? 1 : 0); }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }
  void Clear() { buffer_.clear(); }

 private:
  std::vector<uint8_t> buffer_;
};

class Decoder {
 public:
  explicit Decoder(const std::vector<uint8_t>& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint64_t> GetVarint64();
  Result<int64_t> GetZigzag64();
  Result<uint8_t> GetFixed8();
  Result<uint32_t> GetFixed32();
  Result<uint64_t> GetFixed64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<bool> GetBool();
  // Zero-copy read of the next `size` raw bytes: returns a pointer into the
  // underlying buffer and advances past them.
  Result<const uint8_t*> GetBytes(size_t size);

  // Bulk column decoders: read `count` varints and hand each to
  // sink(i, value). While at least kMaxVarint64Bytes remain, the per-byte
  // truncation check is hoisted out of the inner loop and single-byte
  // values (< 0x80, the dominant case in delta columns) short-circuit;
  // near the buffer tail the loop falls back to the checked scalar
  // GetVarint64. Decoded values, consumed bytes, and error Statuses
  // ("varint64 overflow" / "truncated varint64") are identical to calling
  // GetVarint64 `count` times.
  template <typename Sink>  // void sink(size_t i, uint64_t value)
  Status GetVarint64Span(size_t count, Sink&& sink);
  // Delta form: each varint is a zigzag delta against the previous
  // reconstructed value (starting from 0, wrapping uint64 arithmetic);
  // sink receives the running absolute value. Matches a GetZigzag64
  // loop with `prev += delta`.
  template <typename Sink>  // void sink(size_t i, uint64_t absolute)
  Status GetZigzagDelta64Span(size_t count, Sink&& sink);

  size_t remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }

 private:
  // Decodes one multi-byte varint starting at pos_, assuming the caller
  // already checked that kMaxVarint64Bytes remain (any valid or invalid
  // varint terminates within that bound). Returns false on 64-bit
  // overflow. pos_ advances past the consumed bytes either way.
  bool GetVarint64Unchecked(uint64_t* out) {
    uint64_t value = 0;
    int shift = 0;
    for (;;) {
      const uint8_t byte = data_[pos_++];
      if (shift >= 63 && byte > 1) return false;
      value |= static_cast<uint64_t>(byte & 0x7fu) << shift;
      if ((byte & 0x80u) == 0) {
        *out = value;
        return true;
      }
      shift += 7;
    }
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

template <typename Gen>
void Encoder::PutVarint64Span(size_t count, Gen&& gen) {
  const size_t base = buffer_.size();
  buffer_.resize(base + count * kMaxVarint64Bytes);
  uint8_t* p = buffer_.data() + base;
  for (size_t i = 0; i < count; ++i) {
    uint64_t value = gen(i);
    while (value >= 0x80u) {
      *p++ = static_cast<uint8_t>(value) | 0x80u;
      value >>= 7;
    }
    *p++ = static_cast<uint8_t>(value);
  }
  buffer_.resize(static_cast<size_t>(p - buffer_.data()));
}

template <typename Gen>
void Encoder::PutZigzagDelta64Span(size_t count, Gen&& gen) {
  uint64_t prev = 0;
  PutVarint64Span(count, [&](size_t i) {
    const uint64_t value = gen(i);
    const int64_t delta = static_cast<int64_t>(value - prev);
    prev = value;
    return (static_cast<uint64_t>(delta) << 1) ^
           static_cast<uint64_t>(delta >> 63);
  });
}

template <typename Sink>
Status Decoder::GetVarint64Span(size_t count, Sink&& sink) {
  size_t i = 0;
  while (i < count && size_ - pos_ >= kMaxVarint64Bytes) {
    const uint8_t first = data_[pos_];
    if (first < 0x80u) {
      ++pos_;
      sink(i++, first);
      continue;
    }
    uint64_t value;
    if (!GetVarint64Unchecked(&value)) {
      return InvalidArgumentError("varint64 overflow");
    }
    sink(i++, value);
  }
  for (; i < count; ++i) {
    ASSIGN_OR_RETURN(const uint64_t value, GetVarint64());
    sink(i, value);
  }
  return OkStatus();
}

template <typename Sink>
Status Decoder::GetZigzagDelta64Span(size_t count, Sink&& sink) {
  uint64_t prev = 0;
  return GetVarint64Span(count, [&](size_t i, uint64_t encoded) {
    prev += (encoded >> 1) ^ (~(encoded & 1u) + 1);
    sink(i, prev);
  });
}

}  // namespace ddr

#endif  // SRC_UTIL_CODEC_H_
