#include "src/util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace ddr {

std::string StrPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string PadLeft(std::string_view text, size_t width) {
  if (text.size() >= width) {
    return std::string(text.substr(0, width));
  }
  std::string out(width - text.size(), ' ');
  out.append(text);
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ddr
