#include "src/util/codec.h"

#include <cstring>

namespace ddr {

void Encoder::PutVarint64(uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(value));
}

void Encoder::PutZigzag64(int64_t value) {
  const uint64_t encoded =
      (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
  PutVarint64(encoded);
}

void Encoder::PutFixed8(uint8_t value) { buffer_.push_back(value); }

void Encoder::PutFixed32(uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void Encoder::PutFixed64(uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void Encoder::PutDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed64(bits);
}

void Encoder::PutString(std::string_view value) {
  PutVarint64(value.size());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

Result<uint64_t> Decoder::GetVarint64() {
  uint64_t value = 0;
  int shift = 0;
  while (pos_ < size_) {
    const uint8_t byte = data_[pos_++];
    if (shift >= 63 && byte > 1) {
      return InvalidArgumentError("varint64 overflow");
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
  return OutOfRangeError("truncated varint64");
}

Result<int64_t> Decoder::GetZigzag64() {
  ASSIGN_OR_RETURN(uint64_t encoded, GetVarint64());
  return static_cast<int64_t>((encoded >> 1) ^ (~(encoded & 1) + 1));
}

Result<uint8_t> Decoder::GetFixed8() {
  if (pos_ + 1 > size_) {
    return OutOfRangeError("truncated fixed8");
  }
  return data_[pos_++];
}

Result<uint32_t> Decoder::GetFixed32() {
  if (pos_ + 4 > size_) {
    return OutOfRangeError("truncated fixed32");
  }
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return value;
}

Result<uint64_t> Decoder::GetFixed64() {
  if (pos_ + 8 > size_) {
    return OutOfRangeError("truncated fixed64");
  }
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return value;
}

Result<double> Decoder::GetDouble() {
  ASSIGN_OR_RETURN(uint64_t bits, GetFixed64());
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::string> Decoder::GetString() {
  ASSIGN_OR_RETURN(uint64_t size, GetVarint64());
  // Compare against the remaining bytes (pos_ + size could wrap for a
  // corrupt length prefix near UINT64_MAX).
  if (size > size_ - pos_) {
    return OutOfRangeError("truncated string");
  }
  std::string out(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(size));
  pos_ += static_cast<size_t>(size);
  return out;
}

Result<const uint8_t*> Decoder::GetBytes(size_t size) {
  if (size > size_ - pos_) {
    return OutOfRangeError("truncated byte run");
  }
  const uint8_t* out = data_ + pos_;
  pos_ += size;
  return out;
}

Result<bool> Decoder::GetBool() {
  ASSIGN_OR_RETURN(uint8_t byte, GetFixed8());
  if (byte > 1) {
    return InvalidArgumentError("bool byte out of range");
  }
  return byte == 1;
}

}  // namespace ddr
