// Status / Result<T>: exception-free error handling for the ddr toolkit.
//
//   Status DoThing();
//   Result<int> Parse(std::string_view text);
//
//   RETURN_IF_ERROR(DoThing());
//   ASSIGN_OR_RETURN(int v, Parse("42"));

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "src/util/logging.h"

namespace ddr {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kUnavailable = 8,
  kDeadlineExceeded = 9,
  kAborted = 10,
  kResourceExhausted = 11,
};

std::string_view StatusCodeToString(StatusCode code);

// [[nodiscard]] on the class: any call that returns a Status by value and
// drops it on the floor is a compiler warning (-Werror in CI). An ignored
// Status is how a failed fsync or a short write silently breaks
// bit-identical replay; where ignoring is genuinely intended, write
// `(void)expr;` with a comment saying why.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

Status OkStatus();
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status InternalError(std::string_view message);
Status UnavailableError(std::string_view message);
Status DeadlineExceededError(std::string_view message);
Status AbortedError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);

// A value-or-error holder. Accessing value() on an error status is fatal.
// [[nodiscard]] for the same reason as Status: a dropped Result is a
// dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT: implicit by design
    CHECK(!std::get<Status>(data_).ok()) << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  T& value() & {
    CHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(data_);
  }
  const T& value() const& {
    CHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(data_);
  }
  T&& value() && {
    CHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(std::move(data_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> data_;
};

#define DDR_STATUS_CONCAT_INNER(a, b) a##b
#define DDR_STATUS_CONCAT(a, b) DDR_STATUS_CONCAT_INNER(a, b)

#define RETURN_IF_ERROR(expr)              \
  do {                                     \
    ::ddr::Status ddr_status__ = (expr);   \
    if (!ddr_status__.ok()) {              \
      return ddr_status__;                 \
    }                                      \
  } while (false)

#define ASSIGN_OR_RETURN(lhs, expr)                                        \
  auto DDR_STATUS_CONCAT(ddr_result__, __LINE__) = (expr);                 \
  if (!DDR_STATUS_CONCAT(ddr_result__, __LINE__).ok()) {                   \
    return DDR_STATUS_CONCAT(ddr_result__, __LINE__).status();             \
  }                                                                        \
  lhs = std::move(DDR_STATUS_CONCAT(ddr_result__, __LINE__)).value()

}  // namespace ddr

#endif  // SRC_UTIL_STATUS_H_
