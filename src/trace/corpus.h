// DDRC v1 corpus bundles: many named DDRT recordings in one file.
//
// A corpus is how replay traffic ships at scale: instead of one trace file
// per bug, a site packs every scenario x determinism-model recording of an
// evaluation run into a single indexed bundle. Layout:
//
//   [header]   12 bytes: magic "DDRC", version, flags
//   [image]*   complete DDRT file images (header..trailer), back to back
//   [index]    section (kind kCorpusIndex): name -> (offset, length) plus
//              skim metadata (model, scenario, event count), CRC-checked
//              and framed exactly like a DDRT section
//   [trailer]  12 bytes: index offset + magic "CRDD"
//
// Because each embedded image is a complete, self-contained DDRT stream,
// all of the trace machinery applies per entry for free: TraceReader
// opens an entry through a (offset, length) window, partial reads touch
// only covering chunks, and Verify runs every CRC. The reader side is
// built for concurrent serving: one CorpusReader owns one
// RandomAccessFile handle (stream/pread/mmap) plus one shared
// decoded-chunk cache, and OpenTrace hands out cheap per-entry windows
// over both — N threads replaying one bundle pay one file open and share
// every decoded hot chunk. The corpus file itself is written through
// AtomicFileSink, so an interrupted build never leaves a half-indexed
// bundle at the target path.
//
//   CorpusWriter writer("eval.ddrc");
//   CHECK(writer.Begin().ok());
//   CHECK(writer.Add("sum/perfect", recording, options).ok());
//   CHECK(writer.Finish().ok());
//
//   ASSIGN_OR_RETURN(CorpusReader corpus, CorpusReader::Open("eval.ddrc"));
//   ASSIGN_OR_RETURN(TraceReader trace, corpus.OpenTrace("sum/perfect"));

#ifndef SRC_TRACE_CORPUS_H_
#define SRC_TRACE_CORPUS_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/trace/chunk_cache.h"
#include "src/trace/streaming_writer.h"
#include "src/trace/trace_reader.h"
#include "src/util/random_access_file.h"

namespace ddr {

inline constexpr uint32_t kCorpusFileMagic = 0x43524444u;    // "DDRC"
inline constexpr uint32_t kCorpusTrailerMagic = 0x44445243u;  // "CRDD"
inline constexpr uint32_t kCorpusFormatVersion = 1;
inline constexpr size_t kCorpusHeaderBytes = 12;   // magic + version + flags
inline constexpr size_t kCorpusTrailerBytes = 12;  // index offset + magic

// One recording in the bundle. The metadata fields mirror the embedded
// trace's own metadata section so listing a corpus does not decode any
// entry.
struct CorpusEntry {
  std::string name;     // unique within the corpus, e.g. "msgdrop/perfect"
  uint64_t offset = 0;  // absolute file offset of the DDRT image
  uint64_t length = 0;  // image size in bytes
  std::string model;
  std::string scenario;
  uint64_t event_count = 0;
  double original_wall_seconds = 0.0;
};

class CorpusWriter {
 public:
  explicit CorpusWriter(std::string path);

  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  // Writes the corpus header. Must be called exactly once, first.
  Status Begin();

  // Serializes `recording` into the bundle under `name` (unique; reuse is
  // an error). `options.scenario` / `options.original_wall_seconds` land
  // in both the embedded trace metadata and the corpus index.
  Status Add(const std::string& name, const RecordedExecution& recording,
             const TraceWriteOptions& options = {});

  // Appends a pre-serialized DDRT image (TraceWriter::Serialize output).
  // The caller supplies the index metadata the image was built from; batch
  // workers use this so serialization parallelizes while the bundle is
  // still written in deterministic order.
  Status AddImage(const std::string& name, const std::vector<uint8_t>& image,
                  const std::string& model, const std::string& scenario,
                  uint64_t event_count, double original_wall_seconds);

  // Streaming variant: events are appended chunk-at-a-time to the returned
  // writer (valid until FinishRecording; owned by the corpus). Exactly one
  // recording may be open at a time.
  Result<StreamingTraceWriter*> BeginRecording(const std::string& name,
                                               TraceWriteOptions options = {});
  Status FinishRecording(const TraceFinishInfo& info);

  // Writes the index + trailer and renames the bundle into place.
  Status Finish();

  const std::vector<CorpusEntry>& entries() const { return entries_; }

 private:
  friend class CorpusEmbeddedSink;

  Status CheckOpenForNewEntry(const std::string& name);

  std::string path_;
  AtomicFileSink sink_;
  bool begun_ = false;
  bool finished_ = false;
  Status status_;  // first error, sticky
  uint64_t offset_ = 0;

  std::vector<CorpusEntry> entries_;
  std::set<std::string> names_;

  // Active streaming recording, if any.
  std::unique_ptr<TraceByteSink> active_sink_;
  std::unique_ptr<StreamingTraceWriter> active_writer_;
  std::string active_name_;
  uint64_t active_start_ = 0;
};

struct CorpusReaderOptions {
  RandomAccessFileOptions io;
  // Capacity of the decoded-chunk cache shared by every TraceReader window
  // this corpus hands out (DDR_CACHE_MB env sets the default); 0 disables
  // caching — every read is cold.
  uint64_t cache_bytes = DefaultChunkCacheBytes();
};

// A CorpusReader holds exactly one RandomAccessFile handle and one shared
// decoded-chunk cache; every OpenTrace window borrows both, so N threads
// replaying N entries (or the same hot entry) perform one file open total
// and never decode the same chunk twice while it stays cached.
class CorpusReader {
 public:
  static Result<CorpusReader> Open(const std::string& path,
                                   const CorpusReaderOptions& options = {});

  const std::string& path() const { return path_; }
  uint64_t file_size() const { return file_size_; }
  const std::vector<CorpusEntry>& entries() const { return entries_; }
  // The backend actually serving reads (after any open-time fallback).
  IoBackend io_backend() const { return file_->backend(); }
  // Total cold bytes pulled through the shared handle, across every
  // window and thread. Warm (cached) chunk reads add nothing.
  uint64_t bytes_read() const { return file_->bytes_read(); }
  // The shared decoded-chunk cache (never null; may be disabled).
  const std::shared_ptr<ChunkCache>& chunk_cache() const { return cache_; }
  ChunkCacheStats cache_stats() const { return cache_->stats(); }

  // nullptr when no entry has that name.
  const CorpusEntry* Find(const std::string& name) const;

  // Opens the embedded DDRT image as a full-featured TraceReader window
  // over the corpus's shared handle and cache: no new file open, safe to
  // call (and use) from many threads concurrently.
  Result<TraceReader> OpenTrace(const CorpusEntry& entry) const;
  Result<TraceReader> OpenTrace(const std::string& name) const;

  // Loads an entry's RecordedExecution. `original_wall_seconds` comes
  // from the embedded trace's own metadata (VerifyAll checks it agrees
  // with the index copy).
  Result<RecordedExecution> LoadRecording(
      const std::string& name, double* original_wall_seconds = nullptr) const;

  // Structural + CRC verification of every embedded trace (and, via Open,
  // of the index itself), plus index-vs-embedded-metadata consistency.
  Status VerifyAll() const;

 private:
  CorpusReader() = default;

  std::string path_;
  std::shared_ptr<RandomAccessFile> file_;
  std::shared_ptr<ChunkCache> cache_;
  uint64_t file_size_ = 0;
  std::vector<CorpusEntry> entries_;
};

}  // namespace ddr

#endif  // SRC_TRACE_CORPUS_H_
