// DDRC corpus bundles: many named DDRT recordings in one file.
//
// A corpus is how replay traffic ships at scale: instead of one trace file
// per bug, a site packs every scenario x determinism-model recording of an
// evaluation run into a single indexed bundle. Canonical (v1) layout:
//
//   [header]   12 bytes: magic "DDRC", version, flags
//   [image]*   complete DDRT file images (header..trailer), back to back
//   [index]    section (kind kCorpusIndex): name -> (offset, length) plus
//              skim metadata (model, scenario, event count), CRC-checked
//              and framed exactly like a DDRT section
//   [trailer]  12 bytes: index offset + magic "CRDD"
//
// Because each embedded image is a complete, self-contained DDRT stream,
// all of the trace machinery applies per entry for free: TraceReader
// opens an entry through a (offset, length) window, partial reads touch
// only covering chunks, and Verify runs every CRC. The reader side is
// built for concurrent serving: one CorpusReader owns one
// RandomAccessFile handle (stream/pread/mmap) plus one shared
// decoded-chunk cache, and OpenTrace hands out cheap per-entry windows
// over both — N threads replaying one bundle pay one file open and share
// every decoded hot chunk. Fresh builds go through AtomicFileSink, so an
// interrupted build never leaves a half-indexed bundle at the target
// path.
//
//   CorpusWriter writer("eval.ddrc");
//   CHECK(writer.Begin().ok());
//   CHECK(writer.Add("sum/perfect", recording, options).ok());
//   CHECK(writer.Finish().ok());
//
//   ASSIGN_OR_RETURN(CorpusReader corpus, CorpusReader::Open("eval.ddrc"));
//   ASSIGN_OR_RETURN(TraceReader trace, corpus.OpenTrace("sum/perfect"));
//
// ---------------------------------------------------------- journal (v2)
//
// Bundles are mutable after the fact. The copying mutations (merge,
// compact, rewrite-mode append) go through the atomic temp + rename
// discipline, but copying the whole bundle to add one entry makes append
// cost O(file) — fatal for a resume loop extending a multi-GB grid. The
// in-place append instead grows the bundle as an *index journal* (header
// version 2):
//
//   [header 12B: "DDRC" v2]
//   [image]* [index g1] [trailer g1]          <- generation 1 (was the v1 body)
//   [image]* [index g2] [trailer g2]          <- appended generation
//   ...
//   [image]* [index gN] [trailer gN 28B]      <- latest generation
//
// A v2 generation's index re-lists *every* live entry, so readers only
// ever load the latest one; superseded index sections and trailers stay
// in the file as dead bytes (reported by `dead_bytes()` / `corpus info`,
// reclaimed by CompactCorpus). An append writes only the new images, one
// fresh index, and a 28-byte journal trailer — O(new entries + index),
// never O(file) — and mutates nothing a pre-append reader can see: old
// images, old index, and old trailer all keep their bytes, so concurrent
// readers of the same inode are undisturbed.
//
// ---------------------------------------------------- delta indexes (v3)
//
// Re-listing every live entry still makes each append generation's index
// O(total entries) — quadratic bytes across a long resume loop. Header
// version 3 shrinks the journal record to a true delta: an in-place
// append writes an index section listing only the entries *its own
// generation added*, published by a 28-byte trailer with the distinct
// magic "CRDL" (same layout as the v2 "CRDJ" trailer: index offset, prev
// trailer offset, generation, CRC, magic). Appends are O(new entries) in
// bytes written, independent of how many entries the bundle already
// holds.
//
// Readers stitch: CorpusReader::Open walks the prev-trailer chain from
// the newest valid trailer down to the newest *full* index (a v2 "CRDJ"
// generation or the generation-1 v1 body), then overlays each delta on
// top, oldest first, newest generation winning a name. Every index
// section in that stitch range is live — dead bytes are only the torn
// tail plus index+trailer bytes of generations strictly below the stitch
// base. The first delta append flips the header to version 3 (fsync'd
// first, exactly like the 1 -> 2 flip), so v1/v2 readers fail with a
// clean "unsupported corpus format version 3" instead of serving a
// partial entry set; v2 full-index bundles keep reading forever, and
// CompactCorpus / rewrite-mode appends still squash any chain back to
// canonical v1.
//
// Crash durability is by write ordering, not rename:
//
//   1. (first append only) the header version flips 1 -> 2, fsync'd,
//      before any byte lands past the old trailer — from here on readers
//      take the journal recovery path;
//   2. new images + the new index are written past the old trailer and
//      fsync'd;
//   3. only then is the new trailer (CRC'd, with its generation number
//      and the previous trailer's offset) appended and fsync'd.
//
// A crash at any point leaves the previous generation's trailer intact
// and reachable: CorpusReader::Open on a v2 bundle first tries the
// trailer at end-of-file and otherwise scans backward past the torn tail
// for the latest trailer whose CRC *and* index section validate, then
// chain-loads the prev-trailer offsets to count generations and dead
// bytes. The next in-place append writes the new generation over the
// torn region (never truncating — the file must not shrink under
// concurrent readers). A v1-only reader sees version 2 and fails with a
// clean "unsupported corpus format version", never a garbage decode.
//
//   append   CorpusWriter::AppendTo re-opens an existing bundle. In the
//            default kInPlace mode it journals as above; in kRewrite
//            mode it rebuilds the canonical v1 single-shot form through
//            a temp + rename (byte-identical to a fresh build of the
//            same entries).
//   merge    MergeCorpora copies embedded images byte-for-byte through
//            RandomAccessFile windows (zero decode, bounded memory) and
//            rebuilds one canonical index, resolving name collisions by
//            policy. `output` may equal one of the inputs: every input
//            is read through a handle opened before the output's
//            temp-file rename, and an open handle keeps serving the
//            replaced inode's bytes on every backend (mmap mapping,
//            pread fd, buffered stream alike).
//   compact  CompactCorpus drops named entries (the drop set may be
//            empty) and rewrites the survivors' images, byte-identical,
//            into a canonical v1 bundle at the same path — the explicit
//            "squash the journal" step.

#ifndef SRC_TRACE_CORPUS_H_
#define SRC_TRACE_CORPUS_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/trace/chunk_cache.h"
#include "src/trace/streaming_writer.h"
#include "src/trace/trace_reader.h"
#include "src/util/random_access_file.h"

namespace ddr {

inline constexpr uint32_t kCorpusFileMagic = 0x43524444u;     // "DDRC"
inline constexpr uint32_t kCorpusTrailerMagic = 0x44445243u;  // "CRDD"
// Journal trailers end with their own magic so a backward scan can tell
// them from v1 trailers (and from image bytes) before validating.
inline constexpr uint32_t kCorpusJournalTrailerMagic = 0x4A445243u;  // "CRDJ"
// Delta-index trailers (v3): same 28-byte layout as the journal form,
// but the index section it points at lists only the entries its own
// generation added — readers stitch the chain down to the newest full
// index. The distinct magic is what keeps a v2 full-index reader from
// silently serving a partial entry set.
inline constexpr uint32_t kCorpusDeltaTrailerMagic = 0x4C445243u;  // "CRDL"
inline constexpr uint32_t kCorpusFormatVersion = 1;
// Stamped in the header the moment a bundle gains a second index
// generation, so single-trailer (v1-only) readers fail with a clean
// unsupported-version error instead of misparsing the journal tail.
inline constexpr uint32_t kCorpusFormatVersionJournal = 2;
// Stamped when a generation is published through a delta index: v2
// readers (which would load only the latest full index) must fail with a
// clean unsupported-version error, not drop every delta-appended entry.
inline constexpr uint32_t kCorpusFormatVersionDelta = 3;
inline constexpr size_t kCorpusHeaderBytes = 12;   // magic + version + flags
inline constexpr size_t kCorpusTrailerBytes = 12;  // index offset + magic
// index offset + prev trailer offset + generation + CRC + magic.
inline constexpr size_t kCorpusJournalTrailerBytes = 28;

// One recording in the bundle. The metadata fields mirror the embedded
// trace's own metadata section so listing a corpus does not decode any
// entry.
struct CorpusEntry {
  std::string name;     // unique within the corpus, e.g. "msgdrop/perfect"
  uint64_t offset = 0;  // absolute file offset of the DDRT image
  uint64_t length = 0;  // image size in bytes
  std::string model;
  std::string scenario;
  uint64_t event_count = 0;
  double original_wall_seconds = 0.0;
};

class CorpusReader;
class CorpusJournalSink;

// How CorpusWriter::AppendTo grows an existing bundle.
enum class CorpusAppendMode : uint8_t {
  // Journal the new entries in place: O(new entries + index) bytes
  // written, crash-safe by write ordering, leaves (small) dead index
  // bytes behind. The default — the only mode whose cost is flat in the
  // size of the existing bundle.
  kInPlace = 0,
  // Rewrite the whole bundle to canonical v1 form through a temp +
  // rename: O(file) bytes written, byte-identical to a single-shot
  // build of the same entries.
  kRewrite = 1,
};

struct CorpusAppendOptions {
  CorpusAppendMode mode = CorpusAppendMode::kInPlace;
  // Backend used to read the existing bundle (index probe + any copying).
  RandomAccessFileOptions io;
};

class CorpusWriter {
 public:
  explicit CorpusWriter(std::string path);
  ~CorpusWriter();

  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  // Re-opens the existing bundle at `path` for appending: the returned
  // writer carries the old entries (so duplicate-name detection spans
  // old + new) and accepts Add/AddImage/BeginRecording exactly like a
  // writer after Begin(). Nothing is published until Finish():
  //
  //  - kInPlace (default): Finish() appends a new index generation and
  //    fsync-ordered journal trailer after the existing bytes; no
  //    existing byte is copied, so bytes_written() is O(new entries +
  //    index). Abandoning the writer before Finish is crash-equivalent:
  //    nothing is published (the previous trailer stays the latest
  //    valid one) and the staged bytes remain as an unpublished torn
  //    tail — the file is never truncated, because a shrink could
  //    SIGBUS concurrent mmap readers scanning the tail. Torn bytes,
  //    whether from a crash or an abandoned append, are overwritten by
  //    the next append and accounted as dead_bytes until then.
  //    In-place appends are single-writer: the writer holds an exclusive
  //    advisory lock (flock) on the bundle until Finish or destruction,
  //    and a second concurrent in-place appender fails loudly with
  //    Unavailable — unlike the rename-based paths, racing in-place
  //    writers would corrupt the file, not just lose an update. The
  //    bundle is also re-validated under the lock, so an append prepared
  //    against a since-mutated file fails with FailedPrecondition
  //    instead of truncating published bytes.
  //  - kRewrite: the canonical single-shot file is rebuilt in a temp
  //    file and atomically renamed in; until then the original bundle is
  //    untouched.
  //
  // Readers holding an open handle keep serving the old index either way
  // (in-place appends never mutate bytes a published index points at).
  [[nodiscard]] static Result<std::unique_ptr<CorpusWriter>> AppendTo(
      const std::string& path, const CorpusAppendOptions& options = {});

  // Writes the corpus header. Must be called exactly once, first (the
  // AppendTo factory takes its place when extending an existing bundle).
  [[nodiscard]] Status Begin();

  // Serializes `recording` into the bundle under `name` (unique; reuse is
  // an error). `options.scenario` / `options.original_wall_seconds` land
  // in both the embedded trace metadata and the corpus index.
  Status Add(const std::string& name, const RecordedExecution& recording,
             const TraceWriteOptions& options = {});

  // Appends a pre-serialized DDRT image (TraceWriter::Serialize output).
  // The caller supplies the index metadata the image was built from; batch
  // workers use this so serialization parallelizes while the bundle is
  // still written in deterministic order.
  Status AddImage(const std::string& name, const std::vector<uint8_t>& image,
                  const std::string& model, const std::string& scenario,
                  uint64_t event_count, double original_wall_seconds);

  // Copies the embedded image described by `entry` byte-for-byte out of
  // `source`'s open handle into this bundle, in bounded-size chunks — no
  // decode, no whole-image buffering. `entry`'s metadata (and possibly
  // rewritten name) is carried over; its offset is recomputed for this
  // bundle. MergeCorpora and CompactCorpus are built on this.
  Status AddImageWindow(const CorpusEntry& entry, const CorpusReader& source);

  // Streaming variant: events are appended chunk-at-a-time to the returned
  // writer (valid until FinishRecording; owned by the corpus). Exactly one
  // recording may be open at a time.
  Result<StreamingTraceWriter*> BeginRecording(const std::string& name,
                                               TraceWriteOptions options = {});
  Status FinishRecording(const TraceFinishInfo& info);

  // Writes the index + trailer and publishes the bundle (rename for
  // build/rewrite, ordered fsyncs for in-place append).
  [[nodiscard]] Status Finish();

  const std::vector<CorpusEntry>& entries() const { return entries_; }

  // Physical bytes this writer has pushed to disk so far: the whole file
  // for a build or rewrite-mode append, only the delta (new images +
  // index + trailer + the 4-byte header flip) for an in-place append —
  // the number the O(delta) append guarantee is asserted on.
  uint64_t bytes_written() const;

 private:
  friend class CorpusEmbeddedSink;

  struct AppendTag {};
  CorpusWriter(std::string path, AppendTag);

  Status CheckOpenForNewEntry(const std::string& name);
  // AppendTo's instance half: seeds entries_/names_/offset_ from the
  // existing bundle and arranges the journal sink (kInPlace) or the
  // canonical copy into a temp sink (kRewrite).
  Status BeginAppend(const CorpusAppendOptions& options);
  // Routes bytes to whichever sink this writer runs on.
  Status WriteBytes(const uint8_t* data, size_t size);
  Status WriteBytes(const std::vector<uint8_t>& bytes) {
    return WriteBytes(bytes.data(), bytes.size());
  }

  std::string path_;
  std::unique_ptr<AtomicFileSink> atomic_;      // build / rewrite path
  std::unique_ptr<CorpusJournalSink> journal_;  // in-place append path
  bool begun_ = false;
  bool finished_ = false;
  Status status_;  // first error, sticky
  uint64_t offset_ = 0;

  // In-place append bookkeeping: the trailer being superseded, the
  // generation number the new trailer will carry, and how many of
  // entries_ were inherited from the existing bundle — Finish()'s delta
  // index covers only entries_[base_entry_count_..].
  uint64_t prev_trailer_offset_ = 0;
  uint32_t generation_ = 1;
  size_t base_entry_count_ = 0;

  std::vector<CorpusEntry> entries_;
  std::set<std::string> names_;

  // Active streaming recording, if any.
  std::unique_ptr<TraceByteSink> active_sink_;
  std::unique_ptr<StreamingTraceWriter> active_writer_;
  std::string active_name_;
  uint64_t active_start_ = 0;
};

struct CorpusReaderOptions {
  RandomAccessFileOptions io;
  // Capacity of the decoded-chunk cache shared by every TraceReader window
  // this corpus hands out (DDR_CACHE_MB env sets the default); 0 disables
  // caching — every read is cold.
  uint64_t cache_bytes = DefaultChunkCacheBytes();
};

// A CorpusReader holds exactly one RandomAccessFile handle and one shared
// decoded-chunk cache; every OpenTrace window borrows both, so N threads
// replaying N entries (or the same hot entry) perform one file open total
// and never decode the same chunk twice while it stays cached.
class CorpusReader {
 public:
  [[nodiscard]] static Result<CorpusReader> Open(const std::string& path,
                                   const CorpusReaderOptions& options = {});

  // Re-opens the same path with the same options, picking up a bundle
  // grown (or rewritten) since Open: a fresh handle on the current file,
  // the latest index. The decoded-chunk cache object is carried over,
  // so its accumulated counters survive and windows of other files it
  // serves stay warm (chunks of a replaced file re-decode: cache keys
  // are per-handle by design, precisely so a swapped path can never serve
  // stale bytes). On failure *this is left untouched and still serves the
  // old bundle. Not safe to call concurrently with OpenTrace on the same
  // object; windows handed out before Reopen stay valid either way.
  [[nodiscard]] Status Reopen();

  const std::string& path() const { return path_; }
  uint64_t file_size() const { return file_size_; }
  // Absolute file offset of the (latest) index section.
  uint64_t index_offset() const { return index_offset_; }
  // True when the header carries a journal version (2 or 3): the bundle
  // has (or had) more than one index generation.
  bool journaled() const { return journaled_; }
  // The header's format version: 1 canonical single-shot, 2 full-index
  // journal, 3 delta-index journal.
  uint32_t format_version() const { return format_version_; }
  // Number of index generations in the journal chain (1 for a canonical
  // single-shot bundle).
  uint32_t generation() const { return generation_; }
  // Bytes no live read can reach: index sections + trailers of
  // generations below the stitch base (delta-chain indexes above it are
  // live — Open needs them to stitch), plus any torn tail past the
  // latest valid trailer. CompactCorpus reclaims them.
  uint64_t dead_bytes() const { return dead_bytes_; }
  // Absolute offset of the latest valid trailer, and of its end (the
  // logical tail — equal to file_size() unless a torn tail was scanned
  // past; the next in-place append writes from tail_offset()).
  uint64_t trailer_offset() const { return trailer_offset_; }
  uint64_t tail_offset() const { return tail_offset_; }
  const std::vector<CorpusEntry>& entries() const { return entries_; }
  // The backend actually serving reads (after any open-time fallback).
  IoBackend io_backend() const { return file_->backend(); }
  // Total cold bytes pulled through the shared handle, across every
  // window and thread. Warm (cached) chunk reads add nothing.
  uint64_t bytes_read() const { return file_->bytes_read(); }
  // The shared decoded-chunk cache (never null; may be disabled).
  const std::shared_ptr<ChunkCache>& chunk_cache() const { return cache_; }
  ChunkCacheStats cache_stats() const { return cache_->stats(); }

  // nullptr when no entry has that name.
  const CorpusEntry* Find(const std::string& name) const;

  // Opens the embedded DDRT image as a full-featured TraceReader window
  // over the corpus's shared handle and cache: no new file open, safe to
  // call (and use) from many threads concurrently.
  Result<TraceReader> OpenTrace(const CorpusEntry& entry) const;
  Result<TraceReader> OpenTrace(const std::string& name) const;

  // Loads an entry's RecordedExecution. `original_wall_seconds` comes
  // from the embedded trace's own metadata (VerifyAll checks it agrees
  // with the index copy).
  Result<RecordedExecution> LoadRecording(
      const std::string& name, double* original_wall_seconds = nullptr) const;

  // Structural + CRC verification of every embedded trace (and, via Open,
  // of the index itself and the journal chain), plus index-vs-embedded-
  // metadata consistency. Hints kernel readahead sequential for the
  // duration of the scan (the one front-to-back read path) and restores
  // the handle's open-time hint after.
  [[nodiscard]] Status VerifyAll() const;

  // Forwards an access-pattern hint to the underlying handle (advisory;
  // see RandomAccessFile::Advise). Cold full-bundle scans want
  // kSequential; point-lookup serving wants the open-time default.
  void AdviseReadahead(ReadaheadMode mode) const;

 private:
  friend class CorpusWriter;  // AppendTo copies bytes through file_

  CorpusReader() = default;

  Status VerifyAllImpl() const;

  static Result<CorpusReader> OpenImpl(const std::string& path,
                                       const CorpusReaderOptions& options,
                                       std::shared_ptr<ChunkCache> cache);

  std::string path_;
  CorpusReaderOptions options_;
  std::shared_ptr<RandomAccessFile> file_;
  std::shared_ptr<ChunkCache> cache_;
  uint64_t file_size_ = 0;
  uint64_t index_offset_ = 0;
  bool journaled_ = false;
  uint32_t format_version_ = kCorpusFormatVersion;
  uint32_t generation_ = 1;
  uint64_t dead_bytes_ = 0;
  uint64_t trailer_offset_ = 0;
  uint64_t tail_offset_ = 0;
  std::vector<CorpusEntry> entries_;
};

// ------------------------------------------------- corpus-level mutations

// What MergeCorpora does when two inputs carry the same entry name.
enum class NameCollisionPolicy : uint8_t {
  kFail = 0,          // AlreadyExists error naming the entry and input
  kSkip = 1,          // first occurrence wins, later ones are dropped
  kRenameSuffix = 2,  // later ones land as "name~2", "name~3", ...
};

std::string_view NameCollisionPolicyName(NameCollisionPolicy policy);
Result<NameCollisionPolicy> ParseNameCollisionPolicy(const std::string& name);

// Per-entry accounting for a merge or compact pass.
struct CorpusMutationStats {
  size_t added = 0;    // entries written to the output bundle
  size_t skipped = 0;  // collisions dropped under kSkip
  size_t renamed = 0;  // collisions re-labelled under kRenameSuffix
  size_t dropped = 0;  // entries removed by CompactCorpus
};

struct MergeCorporaOptions {
  NameCollisionPolicy on_collision = NameCollisionPolicy::kFail;
  // Backend used to read the input bundles.
  RandomAccessFileOptions io;
};

// Merges `inputs` (in order) into one canonical bundle at `output`.
// Embedded images are copied byte-for-byte through RandomAccessFile
// windows — nothing is decoded, memory stays bounded — and a single
// merged index is rebuilt. The output is written atomically, so `output`
// may equal one of the inputs (the inputs' handles are opened before the
// rename and keep serving the replaced inode). Rename-suffix targets are
// computed against the full name set of *all* inputs, so the final name
// set does not depend on input order (a later input literally named
// "foo~2" keeps that name; an earlier collision renames past it). Fails
// without touching `output` if any input is unreadable or, under kFail,
// on the first name collision.
Result<CorpusMutationStats> MergeCorpora(const std::vector<std::string>& inputs,
                                         const std::string& output,
                                         const MergeCorporaOptions& options = {});

// Rewrites the bundle at `path` without the entries in `drop_names`,
// copying the survivors' images byte-for-byte into a canonical v1 bundle
// — with an empty drop set this is the explicit "squash the journal"
// step, bit-identical to a single-shot build of the live entries. Every
// drop name must exist (NotFound otherwise, and the bundle is
// untouched); dropping every entry leaves a valid empty bundle. Atomic:
// readers of the old bundle are unaffected until they Reopen.
Result<CorpusMutationStats> CompactCorpus(
    const std::string& path, const std::vector<std::string>& drop_names,
    const RandomAccessFileOptions& io = {});

// True when an in-place appender currently holds the bundle's exclusive
// writer flock — the non-blocking TryLockShared probe behind the
// "writer: active" line of `corpus info` and the server's info response.
// Never blocks and never disturbs the writer; the answer is a snapshot.
Result<bool> CorpusWriterActive(const std::string& path);

}  // namespace ddr

#endif  // SRC_TRACE_CORPUS_H_
