// DDRC v1 corpus bundles: many named DDRT recordings in one file.
//
// A corpus is how replay traffic ships at scale: instead of one trace file
// per bug, a site packs every scenario x determinism-model recording of an
// evaluation run into a single indexed bundle. Layout:
//
//   [header]   12 bytes: magic "DDRC", version, flags
//   [image]*   complete DDRT file images (header..trailer), back to back
//   [index]    section (kind kCorpusIndex): name -> (offset, length) plus
//              skim metadata (model, scenario, event count), CRC-checked
//              and framed exactly like a DDRT section
//   [trailer]  12 bytes: index offset + magic "CRDD"
//
// Because each embedded image is a complete, self-contained DDRT stream,
// all of the trace machinery applies per entry for free: TraceReader
// opens an entry through a (offset, length) window, partial reads touch
// only covering chunks, and Verify runs every CRC. The reader side is
// built for concurrent serving: one CorpusReader owns one
// RandomAccessFile handle (stream/pread/mmap) plus one shared
// decoded-chunk cache, and OpenTrace hands out cheap per-entry windows
// over both — N threads replaying one bundle pay one file open and share
// every decoded hot chunk. The corpus file itself is written through
// AtomicFileSink, so an interrupted build never leaves a half-indexed
// bundle at the target path.
//
//   CorpusWriter writer("eval.ddrc");
//   CHECK(writer.Begin().ok());
//   CHECK(writer.Add("sum/perfect", recording, options).ok());
//   CHECK(writer.Finish().ok());
//
//   ASSIGN_OR_RETURN(CorpusReader corpus, CorpusReader::Open("eval.ddrc"));
//   ASSIGN_OR_RETURN(TraceReader trace, corpus.OpenTrace("sum/perfect"));
//
// Bundles are mutable after the fact, always through the same atomic
// temp + rename discipline (a half-indexed file can never land at the
// target path, and concurrent readers of the old bundle keep serving the
// bytes their handle was opened on until they Reopen()):
//
//   append   CorpusWriter::AppendTo re-opens an existing bundle, copies
//            everything up to the old index, streams new images after it,
//            and rewrites one merged index + trailer. Appending N entries
//            to a bundle of M produces the byte-identical file a single
//            (M+N)-entry build would have.
//   merge    MergeCorpora copies embedded images byte-for-byte through
//            RandomAccessFile windows (zero decode, bounded memory) and
//            rebuilds one index, resolving name collisions by policy.
//   compact  CompactCorpus drops named entries and rewrites the
//            survivors' images, byte-identical, into a fresh bundle at
//            the same path.

#ifndef SRC_TRACE_CORPUS_H_
#define SRC_TRACE_CORPUS_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/trace/chunk_cache.h"
#include "src/trace/streaming_writer.h"
#include "src/trace/trace_reader.h"
#include "src/util/random_access_file.h"

namespace ddr {

inline constexpr uint32_t kCorpusFileMagic = 0x43524444u;    // "DDRC"
inline constexpr uint32_t kCorpusTrailerMagic = 0x44445243u;  // "CRDD"
inline constexpr uint32_t kCorpusFormatVersion = 1;
inline constexpr size_t kCorpusHeaderBytes = 12;   // magic + version + flags
inline constexpr size_t kCorpusTrailerBytes = 12;  // index offset + magic

// One recording in the bundle. The metadata fields mirror the embedded
// trace's own metadata section so listing a corpus does not decode any
// entry.
struct CorpusEntry {
  std::string name;     // unique within the corpus, e.g. "msgdrop/perfect"
  uint64_t offset = 0;  // absolute file offset of the DDRT image
  uint64_t length = 0;  // image size in bytes
  std::string model;
  std::string scenario;
  uint64_t event_count = 0;
  double original_wall_seconds = 0.0;
};

class CorpusReader;

class CorpusWriter {
 public:
  explicit CorpusWriter(std::string path);

  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  // Re-opens the existing bundle at `path` for appending: the returned
  // writer has already copied the header and every embedded image into
  // its temp file (truncating at the old index offset), carries the old
  // entries (so duplicate-name detection spans old + new), and accepts
  // Add/AddImage/BeginRecording exactly like a writer after Begin().
  // Finish() writes the merged index + trailer and atomically renames —
  // until then the original bundle is untouched, and readers holding an
  // open handle keep serving the old bytes even afterwards. `io` selects
  // the backend used to read the existing bundle.
  static Result<std::unique_ptr<CorpusWriter>> AppendTo(
      const std::string& path, const RandomAccessFileOptions& io = {});

  // Writes the corpus header. Must be called exactly once, first (the
  // AppendTo factory takes its place when extending an existing bundle).
  Status Begin();

  // Serializes `recording` into the bundle under `name` (unique; reuse is
  // an error). `options.scenario` / `options.original_wall_seconds` land
  // in both the embedded trace metadata and the corpus index.
  Status Add(const std::string& name, const RecordedExecution& recording,
             const TraceWriteOptions& options = {});

  // Appends a pre-serialized DDRT image (TraceWriter::Serialize output).
  // The caller supplies the index metadata the image was built from; batch
  // workers use this so serialization parallelizes while the bundle is
  // still written in deterministic order.
  Status AddImage(const std::string& name, const std::vector<uint8_t>& image,
                  const std::string& model, const std::string& scenario,
                  uint64_t event_count, double original_wall_seconds);

  // Copies the embedded image described by `entry` byte-for-byte out of
  // `source`'s open handle into this bundle, in bounded-size chunks — no
  // decode, no whole-image buffering. `entry`'s metadata (and possibly
  // rewritten name) is carried over; its offset is recomputed for this
  // bundle. MergeCorpora and CompactCorpus are built on this.
  Status AddImageWindow(const CorpusEntry& entry, const CorpusReader& source);

  // Streaming variant: events are appended chunk-at-a-time to the returned
  // writer (valid until FinishRecording; owned by the corpus). Exactly one
  // recording may be open at a time.
  Result<StreamingTraceWriter*> BeginRecording(const std::string& name,
                                               TraceWriteOptions options = {});
  Status FinishRecording(const TraceFinishInfo& info);

  // Writes the index + trailer and renames the bundle into place.
  Status Finish();

  const std::vector<CorpusEntry>& entries() const { return entries_; }

 private:
  friend class CorpusEmbeddedSink;

  Status CheckOpenForNewEntry(const std::string& name);
  // AppendTo's instance half: copies [0, index_offset) of the existing
  // bundle into the sink and seeds entries_/names_/offset_ from its index.
  Status BeginAppend(const RandomAccessFileOptions& io);

  std::string path_;
  AtomicFileSink sink_;
  bool begun_ = false;
  bool finished_ = false;
  Status status_;  // first error, sticky
  uint64_t offset_ = 0;

  std::vector<CorpusEntry> entries_;
  std::set<std::string> names_;

  // Active streaming recording, if any.
  std::unique_ptr<TraceByteSink> active_sink_;
  std::unique_ptr<StreamingTraceWriter> active_writer_;
  std::string active_name_;
  uint64_t active_start_ = 0;
};

struct CorpusReaderOptions {
  RandomAccessFileOptions io;
  // Capacity of the decoded-chunk cache shared by every TraceReader window
  // this corpus hands out (DDR_CACHE_MB env sets the default); 0 disables
  // caching — every read is cold.
  uint64_t cache_bytes = DefaultChunkCacheBytes();
};

// A CorpusReader holds exactly one RandomAccessFile handle and one shared
// decoded-chunk cache; every OpenTrace window borrows both, so N threads
// replaying N entries (or the same hot entry) perform one file open total
// and never decode the same chunk twice while it stays cached.
class CorpusReader {
 public:
  static Result<CorpusReader> Open(const std::string& path,
                                   const CorpusReaderOptions& options = {});

  // Re-opens the same path with the same options, picking up a bundle
  // grown (or rewritten) since Open: a fresh handle on the renamed-in
  // file, a fresh index. The decoded-chunk cache object is carried over,
  // so its accumulated counters survive and windows of other files it
  // serves stay warm (chunks of the replaced file re-decode: cache keys
  // are per-handle by design, precisely so a swapped path can never serve
  // stale bytes). On failure *this is left untouched and still serves the
  // old bundle. Not safe to call concurrently with OpenTrace on the same
  // object; windows handed out before Reopen stay valid either way.
  Status Reopen();

  const std::string& path() const { return path_; }
  uint64_t file_size() const { return file_size_; }
  // Absolute file offset of the index section — where AppendTo truncates.
  uint64_t index_offset() const { return index_offset_; }
  const std::vector<CorpusEntry>& entries() const { return entries_; }
  // The backend actually serving reads (after any open-time fallback).
  IoBackend io_backend() const { return file_->backend(); }
  // Total cold bytes pulled through the shared handle, across every
  // window and thread. Warm (cached) chunk reads add nothing.
  uint64_t bytes_read() const { return file_->bytes_read(); }
  // The shared decoded-chunk cache (never null; may be disabled).
  const std::shared_ptr<ChunkCache>& chunk_cache() const { return cache_; }
  ChunkCacheStats cache_stats() const { return cache_->stats(); }

  // nullptr when no entry has that name.
  const CorpusEntry* Find(const std::string& name) const;

  // Opens the embedded DDRT image as a full-featured TraceReader window
  // over the corpus's shared handle and cache: no new file open, safe to
  // call (and use) from many threads concurrently.
  Result<TraceReader> OpenTrace(const CorpusEntry& entry) const;
  Result<TraceReader> OpenTrace(const std::string& name) const;

  // Loads an entry's RecordedExecution. `original_wall_seconds` comes
  // from the embedded trace's own metadata (VerifyAll checks it agrees
  // with the index copy).
  Result<RecordedExecution> LoadRecording(
      const std::string& name, double* original_wall_seconds = nullptr) const;

  // Structural + CRC verification of every embedded trace (and, via Open,
  // of the index itself), plus index-vs-embedded-metadata consistency.
  Status VerifyAll() const;

 private:
  friend class CorpusWriter;  // AppendTo copies bytes through file_

  CorpusReader() = default;

  static Result<CorpusReader> OpenImpl(const std::string& path,
                                       const CorpusReaderOptions& options,
                                       std::shared_ptr<ChunkCache> cache);

  std::string path_;
  CorpusReaderOptions options_;
  std::shared_ptr<RandomAccessFile> file_;
  std::shared_ptr<ChunkCache> cache_;
  uint64_t file_size_ = 0;
  uint64_t index_offset_ = 0;
  std::vector<CorpusEntry> entries_;
};

// ------------------------------------------------- corpus-level mutations

// What MergeCorpora does when two inputs carry the same entry name.
enum class NameCollisionPolicy : uint8_t {
  kFail = 0,          // AlreadyExists error naming the entry and input
  kSkip = 1,          // first occurrence wins, later ones are dropped
  kRenameSuffix = 2,  // later ones land as "name~2", "name~3", ...
};

std::string_view NameCollisionPolicyName(NameCollisionPolicy policy);
Result<NameCollisionPolicy> ParseNameCollisionPolicy(const std::string& name);

// Per-entry accounting for a merge or compact pass.
struct CorpusMutationStats {
  size_t added = 0;    // entries written to the output bundle
  size_t skipped = 0;  // collisions dropped under kSkip
  size_t renamed = 0;  // collisions re-labelled under kRenameSuffix
  size_t dropped = 0;  // entries removed by CompactCorpus
};

struct MergeCorporaOptions {
  NameCollisionPolicy on_collision = NameCollisionPolicy::kFail;
  // Backend used to read the input bundles.
  RandomAccessFileOptions io;
};

// Merges `inputs` (in order) into one bundle at `output`. Embedded images
// are copied byte-for-byte through RandomAccessFile windows — nothing is
// decoded, memory stays bounded — and a single merged index is rebuilt.
// The output is written atomically, so `output` may equal one of the
// inputs. Fails without touching `output` if any input is unreadable or,
// under kFail, on the first name collision.
Result<CorpusMutationStats> MergeCorpora(const std::vector<std::string>& inputs,
                                         const std::string& output,
                                         const MergeCorporaOptions& options = {});

// Rewrites the bundle at `path` without the entries in `drop_names`,
// copying the survivors' images byte-for-byte. Every drop name must exist
// (NotFound otherwise, and the bundle is untouched); dropping every entry
// leaves a valid empty bundle. Atomic: readers of the old bundle are
// unaffected until they Reopen.
Result<CorpusMutationStats> CompactCorpus(
    const std::string& path, const std::vector<std::string>& drop_names,
    const RandomAccessFileOptions& io = {});

}  // namespace ddr

#endif  // SRC_TRACE_CORPUS_H_
