#include "src/trace/trace_store.h"

namespace ddr {

Status TraceStore::Save(const std::string& path,
                        const RecordedExecution& recording,
                        const TraceWriteOptions& options) {
  return TraceWriter(options).WriteFile(path, recording);
}

Result<RecordedExecution> TraceStore::Load(
    const std::string& path, const TraceReaderOptions& reader_options) {
  ASSIGN_OR_RETURN(TraceReader reader, TraceReader::Open(path, reader_options));
  return reader.ReadRecordedExecution();
}

Result<CheckpointIndex> TraceStore::LoadCheckpoints(
    const std::string& path, const TraceReaderOptions& reader_options) {
  ASSIGN_OR_RETURN(TraceReader reader, TraceReader::Open(path, reader_options));
  return reader.checkpoints();
}

Status TraceStore::Verify(const std::string& path,
                          const TraceReaderOptions& reader_options) {
  ASSIGN_OR_RETURN(TraceReader reader, TraceReader::Open(path, reader_options));
  return reader.Verify();
}

}  // namespace ddr
