#include "src/trace/checkpoint.h"

#include "src/util/hash.h"

namespace ddr {

void ReplayCheckpoint::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint64(event_index);
  encoder->PutVarint64(chunk_index);
  encoder->PutVarint64(resume_seq);
  encoder->PutFixed64(prefix_fingerprint);
  encoder->PutVarint64(virtual_time);
  encoder->PutVarint64(schedule_cursor);
  encoder->PutVarint64(rng_cursor);
  encoder->PutVarint64(input_cursor);
  encoder->PutVarint64(read_cursor);
}

Result<ReplayCheckpoint> ReplayCheckpoint::DecodeFrom(Decoder* decoder) {
  ReplayCheckpoint cp;
  ASSIGN_OR_RETURN(cp.event_index, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.chunk_index, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.resume_seq, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.prefix_fingerprint, decoder->GetFixed64());
  ASSIGN_OR_RETURN(cp.virtual_time, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.schedule_cursor, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.rng_cursor, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.input_cursor, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.read_cursor, decoder->GetVarint64());
  return cp;
}

const ReplayCheckpoint* CheckpointIndex::NearestBefore(uint64_t target_event) const {
  const ReplayCheckpoint* best = nullptr;
  for (const ReplayCheckpoint& cp : checkpoints) {
    if (cp.event_index <= target_event &&
        (best == nullptr || cp.event_index > best->event_index)) {
      best = &cp;
    }
  }
  return best;
}

std::vector<uint8_t> CheckpointIndex::Encode() const {
  Encoder encoder;
  encoder.PutBool(full_stream);
  encoder.PutVarint64(interval);
  encoder.PutVarint64(checkpoints.size());
  for (const ReplayCheckpoint& cp : checkpoints) {
    cp.EncodeTo(&encoder);
  }
  return encoder.TakeBuffer();
}

Result<CheckpointIndex> CheckpointIndex::Decode(std::span<const uint8_t> bytes) {
  Decoder decoder(bytes.data(), bytes.size());
  CheckpointIndex index;
  ASSIGN_OR_RETURN(index.full_stream, decoder.GetBool());
  ASSIGN_OR_RETURN(index.interval, decoder.GetVarint64());
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(ReplayCheckpoint cp, ReplayCheckpoint::DecodeFrom(&decoder));
    index.checkpoints.push_back(cp);
  }
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after checkpoint index");
  }
  return index;
}

void CheckpointBuilder::Observe(const Event& event) {
  const uint64_t i = next_event_++;
  // A checkpoint *before* event i: emitted at every interval boundary past
  // the start (an event-zero checkpoint would be pointless).
  if (interval_ != 0 && i > 0 && i % interval_ == 0) {
    ReplayCheckpoint cp = cursors_;
    cp.event_index = i;
    cp.chunk_index = events_per_chunk_ == 0 ? 0 : i / events_per_chunk_;
    cp.resume_seq = event.seq;
    cp.prefix_fingerprint = prefix_fp_.value();
    cp.virtual_time = last_virtual_time_;
    index_.checkpoints.push_back(cp);
  }

  prefix_fp_.Mix(event.SemanticHash());
  last_virtual_time_ = event.time;
  switch (event.type) {
    case EventType::kContextSwitch:
      ++cursors_.schedule_cursor;
      break;
    case EventType::kRngDraw:
      ++cursors_.rng_cursor;
      break;
    case EventType::kInput:
      ++cursors_.input_cursor;
      break;
    case EventType::kSharedRead:
      ++cursors_.read_cursor;
      break;
    default:
      break;
  }
}

CheckpointIndex BuildCheckpointIndex(const EventLog& log, uint64_t interval,
                                     uint64_t events_per_chunk,
                                     bool full_stream) {
  CheckpointBuilder builder(interval, events_per_chunk);
  for (const Event& event : log.events()) {
    builder.Observe(event);
  }
  return builder.Finish(full_stream);
}

}  // namespace ddr
