#include "src/trace/checkpoint.h"

#include "src/util/hash.h"

namespace ddr {

void ReplayCheckpoint::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint64(event_index);
  encoder->PutVarint64(chunk_index);
  encoder->PutVarint64(resume_seq);
  encoder->PutFixed64(prefix_fingerprint);
  encoder->PutVarint64(virtual_time);
  encoder->PutVarint64(schedule_cursor);
  encoder->PutVarint64(rng_cursor);
  encoder->PutVarint64(input_cursor);
  encoder->PutVarint64(read_cursor);
}

Result<ReplayCheckpoint> ReplayCheckpoint::DecodeFrom(Decoder* decoder) {
  ReplayCheckpoint cp;
  ASSIGN_OR_RETURN(cp.event_index, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.chunk_index, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.resume_seq, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.prefix_fingerprint, decoder->GetFixed64());
  ASSIGN_OR_RETURN(cp.virtual_time, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.schedule_cursor, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.rng_cursor, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.input_cursor, decoder->GetVarint64());
  ASSIGN_OR_RETURN(cp.read_cursor, decoder->GetVarint64());
  return cp;
}

const ReplayCheckpoint* CheckpointIndex::NearestBefore(uint64_t target_event) const {
  const ReplayCheckpoint* best = nullptr;
  for (const ReplayCheckpoint& cp : checkpoints) {
    if (cp.event_index <= target_event &&
        (best == nullptr || cp.event_index > best->event_index)) {
      best = &cp;
    }
  }
  return best;
}

std::vector<uint8_t> CheckpointIndex::Encode() const {
  Encoder encoder;
  encoder.PutBool(full_stream);
  encoder.PutVarint64(interval);
  encoder.PutVarint64(checkpoints.size());
  for (const ReplayCheckpoint& cp : checkpoints) {
    cp.EncodeTo(&encoder);
  }
  return encoder.TakeBuffer();
}

Result<CheckpointIndex> CheckpointIndex::Decode(const std::vector<uint8_t>& bytes) {
  Decoder decoder(bytes);
  CheckpointIndex index;
  ASSIGN_OR_RETURN(index.full_stream, decoder.GetBool());
  ASSIGN_OR_RETURN(index.interval, decoder.GetVarint64());
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(ReplayCheckpoint cp, ReplayCheckpoint::DecodeFrom(&decoder));
    index.checkpoints.push_back(cp);
  }
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after checkpoint index");
  }
  return index;
}

CheckpointIndex BuildCheckpointIndex(const EventLog& log, uint64_t interval,
                                     uint64_t events_per_chunk,
                                     bool full_stream) {
  CheckpointIndex index;
  index.full_stream = full_stream;
  index.interval = interval;
  if (interval == 0 || log.empty()) {
    return index;
  }

  Fingerprint prefix_fp;
  ReplayCheckpoint cursors;  // running cursor state (event_index unused here)
  const std::vector<Event>& events = log.events();
  for (size_t i = 0; i < events.size(); ++i) {
    // A checkpoint *before* event i: emitted at every interval boundary past
    // the start (an event-zero checkpoint would be pointless).
    if (i > 0 && i % interval == 0) {
      ReplayCheckpoint cp = cursors;
      cp.event_index = i;
      cp.chunk_index = events_per_chunk == 0 ? 0 : i / events_per_chunk;
      cp.resume_seq = events[i].seq;
      cp.prefix_fingerprint = prefix_fp.value();
      cp.virtual_time = events[i - 1].time;
      index.checkpoints.push_back(cp);
    }

    const Event& event = events[i];
    prefix_fp.Mix(event.SemanticHash());
    switch (event.type) {
      case EventType::kContextSwitch:
        ++cursors.schedule_cursor;
        break;
      case EventType::kRngDraw:
        ++cursors.rng_cursor;
        break;
      case EventType::kInput:
        ++cursors.input_cursor;
        break;
      case EventType::kSharedRead:
        ++cursors.read_cursor;
        break;
      default:
        break;
    }
  }
  return index;
}

}  // namespace ddr
