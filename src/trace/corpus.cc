#include "src/trace/corpus.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <span>

#include "src/trace/trace_writer.h"
#include "src/util/crc32.h"
#include "src/util/fault_injection.h"
#include "src/util/file_lock.h"
#include "src/util/string_util.h"

namespace ddr {

namespace {

std::vector<uint8_t> EncodeCorpusIndex(const std::vector<CorpusEntry>& entries) {
  Encoder encoder;
  encoder.PutVarint64(entries.size());
  for (const CorpusEntry& entry : entries) {
    encoder.PutString(entry.name);
    encoder.PutVarint64(entry.offset);
    encoder.PutVarint64(entry.length);
    encoder.PutString(entry.model);
    encoder.PutString(entry.scenario);
    encoder.PutVarint64(entry.event_count);
    encoder.PutDouble(entry.original_wall_seconds);
  }
  return encoder.TakeBuffer();
}

Result<std::vector<CorpusEntry>> DecodeCorpusIndex(
    std::span<const uint8_t> bytes) {
  Decoder decoder(bytes.data(), bytes.size());
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  std::vector<CorpusEntry> entries;
  // The smallest possible entry (empty strings, 1-byte varints, the
  // fixed-width double) encodes to 14 bytes, so the payload bounds the
  // count; the reserve is additionally capped so memory grows with
  // *decoded* entries, not the claimed count (each CorpusEntry is an
  // order of magnitude larger than its minimal encoding, and a crafted
  // count must fail in the decode loop with a Status, not abort inside
  // the allocation).
  if (count > bytes.size() / 14) {
    return InvalidArgumentError("corpus index count exceeds payload");
  }
  entries.reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
  for (uint64_t i = 0; i < count; ++i) {
    CorpusEntry entry;
    ASSIGN_OR_RETURN(entry.name, decoder.GetString());
    ASSIGN_OR_RETURN(entry.offset, decoder.GetVarint64());
    ASSIGN_OR_RETURN(entry.length, decoder.GetVarint64());
    ASSIGN_OR_RETURN(entry.model, decoder.GetString());
    ASSIGN_OR_RETURN(entry.scenario, decoder.GetString());
    ASSIGN_OR_RETURN(entry.event_count, decoder.GetVarint64());
    ASSIGN_OR_RETURN(entry.original_wall_seconds, decoder.GetDouble());
    entries.push_back(std::move(entry));
  }
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after corpus index");
  }
  return entries;
}

// ----------------------------------------------------- journal trailers

// The three wire forms a generation's trailer can take.
enum class TrailerForm : uint8_t {
  kV1 = 0,         // 12 bytes, magic "CRDD": v1 body, always generation 1
  kFullIndex = 1,  // 28 bytes, magic "CRDJ": journal, index lists all entries
  kDeltaIndex = 2,  // 28 bytes, magic "CRDL": index lists this gen's adds only
};

// A parsed corpus trailer: the fixed-width record that publishes an index
// generation. The 28-byte journal layout (index offset, previous
// trailer's offset, generation, CRC, magic) is shared by the full-index
// and delta-index forms; only the magic differs.
struct CorpusTrailerInfo {
  uint64_t trailer_offset = 0;  // absolute offset where the trailer begins
  uint64_t index_offset = 0;
  uint64_t prev_trailer_offset = 0;  // journal layout only
  uint32_t generation = 1;
  TrailerForm form = TrailerForm::kV1;

  bool journal_layout() const { return form != TrailerForm::kV1; }
  uint64_t end() const {
    return trailer_offset +
           (journal_layout() ? kCorpusJournalTrailerBytes : kCorpusTrailerBytes);
  }
};

std::vector<uint8_t> EncodeJournalTrailer(uint64_t index_offset,
                                          uint64_t prev_trailer_offset,
                                          uint32_t generation,
                                          uint32_t magic) {
  Encoder encoder;
  encoder.PutFixed64(index_offset);
  encoder.PutFixed64(prev_trailer_offset);
  encoder.PutFixed32(generation);
  encoder.PutFixed32(Crc32(encoder.buffer().data(), encoder.size()));
  encoder.PutFixed32(magic);
  return encoder.TakeBuffer();
}

// Field-level validation of a trailer candidate (magic, CRC for the
// journal layout, index-before-trailer ordering). The decisive check —
// the CRC'd index section it points at — is LoadIndexForTrailer's job.
bool ParseTrailerBytes(std::span<const uint8_t> bytes, uint64_t trailer_offset,
                       bool journal_form, CorpusTrailerInfo* out) {
  Decoder decoder(bytes.data(), bytes.size());
  CorpusTrailerInfo info;
  info.trailer_offset = trailer_offset;
  if (journal_form) {
    if (bytes.size() < kCorpusJournalTrailerBytes) {
      return false;
    }
    auto index_offset = decoder.GetFixed64();
    auto prev = decoder.GetFixed64();
    auto generation = decoder.GetFixed32();
    auto crc = decoder.GetFixed32();
    auto magic = decoder.GetFixed32();
    if (!index_offset.ok() || !prev.ok() || !generation.ok() || !crc.ok() ||
        !magic.ok()) {
      return false;
    }
    if (*magic == kCorpusJournalTrailerMagic) {
      info.form = TrailerForm::kFullIndex;
    } else if (*magic == kCorpusDeltaTrailerMagic) {
      info.form = TrailerForm::kDeltaIndex;
    } else {
      return false;
    }
    if (*crc != Crc32(bytes.data(), kCorpusJournalTrailerBytes - 8)) {
      return false;
    }
    // Generation 1 is always published by a v1 trailer; a journal form
    // claiming it is junk that happened to checksum.
    if (*generation < 2) {
      return false;
    }
    info.index_offset = *index_offset;
    info.prev_trailer_offset = *prev;
    info.generation = *generation;
  } else {
    if (bytes.size() < kCorpusTrailerBytes) {
      return false;
    }
    auto index_offset = decoder.GetFixed64();
    auto magic = decoder.GetFixed32();
    if (!index_offset.ok() || !magic.ok() || *magic != kCorpusTrailerMagic) {
      return false;
    }
    info.index_offset = *index_offset;
  }
  if (info.index_offset < kCorpusHeaderBytes ||
      info.index_offset >= trailer_offset) {
    return false;
  }
  *out = info;
  return true;
}

// Reads + field-validates the trailer at a known offset, trying the
// journal form first (its magic + CRC cannot false-positive on a v1
// trailer's bytes), then the v1 form.
bool ReadTrailerFieldsAt(const RandomAccessFile& file, uint64_t offset,
                         uint64_t file_size, CorpusTrailerInfo* out,
                         std::vector<uint8_t>* scratch) {
  if (offset + kCorpusJournalTrailerBytes <= file_size) {
    auto bytes = file.Read(offset, kCorpusJournalTrailerBytes, scratch);
    if (bytes.ok() && ParseTrailerBytes(*bytes, offset, /*journal_form=*/true,
                                        out)) {
      return true;
    }
  }
  if (offset + kCorpusTrailerBytes <= file_size) {
    auto bytes = file.Read(offset, kCorpusTrailerBytes, scratch);
    if (bytes.ok() && ParseTrailerBytes(*bytes, offset, /*journal_form=*/false,
                                        out)) {
      return true;
    }
  }
  return false;
}

// Loads and bounds-checks the index a candidate trailer points at: the
// section must parse (CRC included) inside [0, trailer) and every entry
// window must lie between the header and the index. The subtraction form
// keeps a crafted huge length from wrapping the sum past the bound.
Result<std::vector<CorpusEntry>> LoadIndexForTrailer(
    const RandomAccessFile& file, const CorpusTrailerInfo& trailer) {
  ASSIGN_OR_RETURN(
      TraceSectionPayload payload,
      ReadTraceSection(file, /*base=*/0, trailer.index_offset,
                       trailer.trailer_offset, TraceSection::kCorpusIndex,
                       /*bytes_read=*/nullptr));
  ASSIGN_OR_RETURN(std::vector<CorpusEntry> entries,
                   DecodeCorpusIndex(payload.view));
  for (const CorpusEntry& entry : entries) {
    if (entry.offset < kCorpusHeaderBytes ||
        entry.offset > trailer.index_offset ||
        entry.length < kTraceHeaderBytes + kTraceTrailerBytes ||
        entry.length > trailer.index_offset - entry.offset) {
      return InvalidArgumentError("corpus entry window out of bounds: " +
                                  entry.name);
    }
  }
  return entries;
}

uint32_t ReadWordLE(const uint8_t* bytes) {
  return static_cast<uint32_t>(bytes[0]) |
         static_cast<uint32_t>(bytes[1]) << 8 |
         static_cast<uint32_t>(bytes[2]) << 16 |
         static_cast<uint32_t>(bytes[3]) << 24;
}

// Finds the latest (highest-offset) valid trailer of a journaled bundle.
// The common case — a clean file with its trailer flush at end-of-file —
// is the first candidate tried; after a crash mid-append the scan walks
// backward past the torn tail until a trailer whose magic, CRC, *and*
// index section all validate. A false candidate (magic bytes inside
// image data) fails index validation and the scan continues.
Result<CorpusTrailerInfo> FindLatestValidTrailer(
    const RandomAccessFile& file, uint64_t file_size,
    std::vector<CorpusEntry>* entries_out) {
  std::vector<uint8_t> scan_buf;
  std::vector<uint8_t> scratch;
  constexpr uint64_t kScanWindow = 1 << 16;
  uint64_t hi = file_size;  // exclusive end of the unscanned region
  while (hi >= kCorpusHeaderBytes + 4) {
    const uint64_t lo = hi - kCorpusHeaderBytes >= kScanWindow
                            ? hi - kScanWindow
                            : kCorpusHeaderBytes;
    ASSIGN_OR_RETURN(
        std::span<const uint8_t> window,
        file.Read(lo, static_cast<size_t>(hi - lo), &scan_buf));
    for (uint64_t p = hi - 4;; --p) {
      const uint32_t word = ReadWordLE(window.data() + (p - lo));
      const bool journal_magic = word == kCorpusJournalTrailerMagic ||
                                 word == kCorpusDeltaTrailerMagic;
      if (journal_magic || word == kCorpusTrailerMagic) {
        const uint64_t size =
            journal_magic ? kCorpusJournalTrailerBytes : kCorpusTrailerBytes;
        if (p + 4 >= kCorpusHeaderBytes + size) {
          const uint64_t start = p + 4 - size;
          CorpusTrailerInfo info;
          auto bytes = file.Read(start, static_cast<size_t>(size), &scratch);
          if (bytes.ok() &&
              ParseTrailerBytes(*bytes, start, journal_magic, &info)) {
            auto entries = LoadIndexForTrailer(file, info);
            if (entries.ok()) {
              *entries_out = std::move(*entries);
              return info;
            }
          }
        }
      }
      if (p == lo) {
        break;
      }
    }
    if (lo == kCorpusHeaderBytes) {
      break;
    }
    hi = lo + 3;  // overlap so words spanning the window boundary are seen
  }
  return InvalidArgumentError(
      "no valid corpus trailer found (torn or corrupt journal)");
}

// Reads + link-validates the previous trailer in a journal chain:
// generations are strictly ordered in the file and in number, so the
// previous trailer must end before this generation's bytes begin and
// carry exactly the predecessor generation number. The chain was
// published by fsync-ordered appends, so a broken link is corruption —
// surfaced as a Status, never skipped.
Result<CorpusTrailerInfo> ReadPrevTrailer(const RandomAccessFile& file,
                                          uint64_t file_size,
                                          const CorpusTrailerInfo& current,
                                          std::vector<uint8_t>* scratch) {
  CorpusTrailerInfo prev;
  if (!ReadTrailerFieldsAt(file, current.prev_trailer_offset, file_size, &prev,
                           scratch)) {
    return InvalidArgumentError(
        StrPrintf("corpus journal chain broken below generation %u",
                  current.generation));
  }
  if (prev.end() > current.index_offset ||
      prev.generation + 1 != current.generation) {
    return InvalidArgumentError(
        StrPrintf("corpus journal chain inconsistent at generation %u",
                  current.generation));
  }
  return prev;
}

// Walks the prev-trailer chain from the latest generation down to the v1
// base, stitching delta indexes and counting dead bytes.
//
// On entry `entries` holds the latest generation's own index. Delta
// generations are collected walking down until the first full index (a
// v2 "CRDJ" generation or the v1 body) — the stitch base — then overlaid
// on it oldest-first, a newer generation winning any name. Everything in
// the stitch range is live; dead bytes are the torn tail plus the index
// section + trailer of every generation strictly below the base (the
// walk continues to generation 1 for validation either way).
Status StitchJournalChain(const RandomAccessFile& file, uint64_t file_size,
                          const CorpusTrailerInfo& latest,
                          std::vector<CorpusEntry>* entries,
                          uint64_t* dead_bytes) {
  std::vector<uint8_t> scratch;
  uint64_t dead = file_size - latest.end();
  CorpusTrailerInfo current = latest;
  std::vector<CorpusEntry> current_entries = std::move(*entries);
  // Delta generations' entry lists, newest first.
  std::vector<std::vector<CorpusEntry>> deltas;
  while (current.form == TrailerForm::kDeltaIndex) {
    deltas.push_back(std::move(current_entries));
    ASSIGN_OR_RETURN(CorpusTrailerInfo prev,
                     ReadPrevTrailer(file, file_size, current, &scratch));
    ASSIGN_OR_RETURN(current_entries, LoadIndexForTrailer(file, prev));
    current = prev;
  }
  // `current` publishes the stitch base's full index; overlay the deltas
  // oldest-first so the final order matches the equivalent full-index
  // bundle (add order), with a newer generation replacing a name in
  // place.
  std::vector<CorpusEntry> stitched = std::move(current_entries);
  for (auto it = deltas.rbegin(); it != deltas.rend(); ++it) {
    for (CorpusEntry& entry : *it) {
      auto slot = std::find_if(
          stitched.begin(), stitched.end(),
          [&](const CorpusEntry& have) { return have.name == entry.name; });
      if (slot != stitched.end()) {
        *slot = std::move(entry);
      } else {
        stitched.push_back(std::move(entry));
      }
    }
  }
  // Generations below the stitch base are superseded: validate the rest
  // of the chain and account their index + trailer bytes as dead.
  while (current.journal_layout()) {
    ASSIGN_OR_RETURN(CorpusTrailerInfo prev,
                     ReadPrevTrailer(file, file_size, current, &scratch));
    dead += prev.end() - prev.index_offset;
    current = prev;
  }
  if (current.generation != 1) {
    return InvalidArgumentError(
        "corpus journal chain does not reach generation 1");
  }
  *entries = std::move(stitched);
  *dead_bytes = dead;
  return OkStatus();
}

}  // namespace

// In-place journal sink: appends new bytes at the tail of an existing
// bundle through an O_RDWR fd. Unlike AtomicFileSink there is no rename
// — crash safety comes from write ordering instead (Sync() barriers
// between the data and the trailer that publishes it). An abandoned or
// failed append (destruction before Commit()) is deliberately
// indistinguishable from a crash mid-append: nothing is rolled back —
// the file must never shrink under concurrent readers (an mmap-backed
// Open scanning the tail would SIGBUS past a new EOF), and restoring a
// flipped header to v1 over a garbage tail would brick the strict v1
// read path. The partial generation is simply left unpublished: the
// previous trailer stays the latest valid one, recovery scans past the
// torn bytes, and the next append overwrites them.
class CorpusJournalSink {
 public:
  // `expected_size` / `trailer_offset` / `observed_version` describe the
  // bundle as the caller's reader observed it; they are re-validated
  // under the writer lock so an append prepared against a since-mutated
  // file fails instead of writing over published bytes. When the
  // observed header version predates the delta-index layout the header
  // is flipped to version 3 (fsync'd before any tail byte lands).
  static Result<std::unique_ptr<CorpusJournalSink>> Open(
      const std::string& path, uint64_t tail_offset, uint64_t expected_size,
      uint64_t trailer_offset, uint32_t observed_version);
  ~CorpusJournalSink();

  CorpusJournalSink(const CorpusJournalSink&) = delete;
  CorpusJournalSink& operator=(const CorpusJournalSink&) = delete;

  Status Append(const uint8_t* data, size_t size);
  // Durability barrier: everything appended so far reaches disk before
  // any later write. Finish() calls this between the index and the
  // trailer, so a durable trailer implies durable data.
  Status Sync();
  // Final fsync; from here the new generation is published and the
  // destructor no longer rolls back.
  Status Commit();
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  CorpusJournalSink(std::string path, int fd, uint64_t tail_offset)
      : path_(std::move(path)), fd_(fd), write_offset_(tail_offset) {}

  // `site` names the fault-injection point this write belongs to
  // (header flip vs. tail append) so a crash plan can target either.
  Status WriteAt(const char* site, uint64_t offset, const uint8_t* data,
                 size_t size);

  std::string path_;
  int fd_ = -1;
  uint64_t write_offset_ = 0;  // absolute offset of the next Append
  bool committed_ = false;
  uint64_t bytes_written_ = 0;
};

Result<std::unique_ptr<CorpusJournalSink>> CorpusJournalSink::Open(
    const std::string& path, uint64_t tail_offset, uint64_t expected_size,
    uint64_t trailer_offset, uint32_t observed_version) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDWR);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return UnavailableError("cannot open corpus for in-place append: " + path);
  }
  // Exclusive advisory writer lock (released when the fd closes). Unlike
  // the rename-based mutations — where a race loses an update but never
  // corrupts the target — two in-place appenders would truncate and
  // overwrite each other's in-flight bytes, so a second one must fail
  // loudly, not serialize (its view of the entry set is stale anyway).
  // CorpusWriterActive is the read-side probe of this same lock.
  if (Status locked = TryFlockExclusive(fd, path); !locked.ok()) {
    ::close(fd);
    return locked;
  }
  // Under the lock, the file must still be what the caller's reader saw
  // — not just the same size: a same-size canonicalization (compact of a
  // header-flip-only bundle differs in exactly one header byte) or
  // rename swap would otherwise slip past, and this writer would stamp a
  // journal generation onto a file whose header or trailer no longer
  // match, bricking it. Size, header version, and the trailer bytes at
  // the observed tail must all agree before a byte is written.
  const auto changed = [&]() -> Result<std::unique_ptr<CorpusJournalSink>> {
    ::close(fd);
    return FailedPreconditionError(
        "corpus changed while preparing in-place append (concurrent "
        "mutation?): " +
        path);
  };
  struct stat st;
  if (::fstat(fd, &st) != 0 ||
      static_cast<uint64_t>(st.st_size) != expected_size) {
    return changed();
  }
  const auto pread_exact = [&](uint64_t offset, uint8_t* out,
                               size_t size) -> bool {
    size_t done = 0;
    while (done < size) {
      const ssize_t n = ::pread(fd, out + done, size - done,
                                static_cast<off_t>(offset + done));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        return false;
      }
      done += static_cast<size_t>(n);
    }
    return true;
  };
  {
    uint8_t version_bytes[4];
    if (!pread_exact(4, version_bytes, sizeof(version_bytes))) {
      return changed();
    }
    const uint32_t version = ReadWordLE(version_bytes);
    if (version != observed_version) {
      return changed();
    }
  }
  {
    const uint64_t trailer_bytes = tail_offset - trailer_offset;
    uint8_t buffer[kCorpusJournalTrailerBytes];
    CorpusTrailerInfo trailer;
    if ((trailer_bytes != kCorpusTrailerBytes &&
         trailer_bytes != kCorpusJournalTrailerBytes) ||
        !pread_exact(trailer_offset, buffer,
                     static_cast<size_t>(trailer_bytes)) ||
        !ParseTrailerBytes(
            std::span<const uint8_t>(buffer,
                                     static_cast<size_t>(trailer_bytes)),
            trailer_offset, trailer_bytes == kCorpusJournalTrailerBytes,
            &trailer)) {
      return changed();
    }
  }
  std::unique_ptr<CorpusJournalSink> sink(
      new CorpusJournalSink(path, fd, tail_offset));
  RETURN_IF_ERROR(FaultPoint("corpus.journal.open"));
  // Note: a torn tail from a crashed append is NOT truncated here — the
  // file must never shrink while concurrent readers may be scanning it
  // (an mmap-backed Open touching pages past a new EOF would SIGBUS).
  // The new generation is simply written over the garbage from
  // tail_offset; whatever torn bytes extend past the new trailer stay
  // accounted as dead bytes (no valid trailer can exist up there: the
  // crashed append never committed one) until a compact reclaims them.
  if (observed_version != kCorpusFormatVersionDelta) {
    Encoder encoder;
    encoder.PutFixed32(kCorpusFormatVersionDelta);
    RETURN_IF_ERROR(sink->WriteAt("corpus.journal.header", 4,
                                  encoder.buffer().data(), encoder.size()));
    sink->bytes_written_ += encoder.size();
  }
  // The version flip must be durable before any byte lands past the old
  // trailer: a crash mid-append must leave a file the journal recovery
  // path owns end to end.
  RETURN_IF_ERROR(sink->Sync());
  return sink;
}

CorpusJournalSink::~CorpusJournalSink() {
  if (fd_ < 0) {
    return;
  }
  // No rollback (see the class comment): closing the fd releases the
  // writer lock, and an uncommitted partial generation is just a torn
  // tail the next Open scans past.
  ::close(fd_);
  fd_ = -1;
}

Status CorpusJournalSink::WriteAt(const char* site, uint64_t offset,
                                  const uint8_t* data, size_t size) {
  size_t allow = size;
  Status injected = OkStatus();
  if (FaultsArmed()) {
    WriteFaultOutcome fault = FaultWritePoint(site, size);
    allow = fault.allowed;
    injected = std::move(fault.failure);
  }
  size_t written = 0;
  while (written < allow) {
    if (FaultEintr(site)) {
      continue;  // simulated interrupted pwrite; the loop retries for real
    }
    const ssize_t n = ::pwrite(fd_, data + written, allow - written,
                               static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return UnavailableError(StrPrintf(
          "write to corpus journal %s failed at offset %llu: %s",
          path_.c_str(),
          static_cast<unsigned long long>(offset + written),
          std::strerror(errno)));
    }
    if (n == 0) {
      // pwrite(2) returning 0 for a non-empty buffer means no progress is
      // possible (e.g. past a hard resource limit); looping would spin.
      return UnavailableError(StrPrintf(
          "short write to corpus journal %s: pwrite returned 0 at offset "
          "%llu (%zu of %zu bytes written): %s",
          path_.c_str(),
          static_cast<unsigned long long>(offset + written), written, size,
          std::strerror(errno != 0 ? errno : ENOSPC)));
    }
    written += static_cast<size_t>(n);
  }
  if (!injected.ok()) {
    return Status(injected.code(),
                  "corpus journal " + path_ + ": " + injected.message());
  }
  return OkStatus();
}

Status CorpusJournalSink::Append(const uint8_t* data, size_t size) {
  if (committed_) {
    return FailedPreconditionError("append to a committed corpus journal");
  }
  RETURN_IF_ERROR(WriteAt("corpus.journal.append", write_offset_, data, size));
  write_offset_ += size;
  bytes_written_ += size;
  return OkStatus();
}

Status CorpusJournalSink::Sync() {
  RETURN_IF_ERROR(FaultPoint("corpus.journal.sync"));
  int rc = 0;
  do {
    if (FaultEintr("corpus.journal.sync")) {
      errno = EINTR;
      rc = -1;
      continue;  // simulated interrupted fsync; the loop retries for real
    }
    rc = ::fsync(fd_);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return UnavailableError(StrPrintf("fsync of corpus journal %s failed: %s",
                                      path_.c_str(), std::strerror(errno)));
  }
  return OkStatus();
}

Status CorpusJournalSink::Commit() {
  RETURN_IF_ERROR(FaultPoint("corpus.journal.commit"));
  RETURN_IF_ERROR(Sync());
  committed_ = true;
  return OkStatus();
}

// Forwards an embedded DDRT stream into the corpus file. Close() is a
// no-op: the embedded image ends, the corpus file stays open for the next
// recording and the index.
class CorpusEmbeddedSink : public TraceByteSink {
 public:
  explicit CorpusEmbeddedSink(CorpusWriter* owner) : owner_(owner) {}

  using TraceByteSink::Append;
  Status Append(const uint8_t* data, size_t size) override {
    RETURN_IF_ERROR(owner_->WriteBytes(data, size));
    owner_->offset_ += size;
    return OkStatus();
  }
  Status Close() override { return OkStatus(); }

 private:
  CorpusWriter* owner_;
};

CorpusWriter::CorpusWriter(std::string path)
    : path_(std::move(path)),
      atomic_(std::make_unique<AtomicFileSink>(path_)) {}

CorpusWriter::CorpusWriter(std::string path, AppendTag)
    : path_(std::move(path)) {}

CorpusWriter::~CorpusWriter() = default;

Result<std::unique_ptr<CorpusWriter>> CorpusWriter::AppendTo(
    const std::string& path, const CorpusAppendOptions& options) {
  std::unique_ptr<CorpusWriter> writer(new CorpusWriter(path, AppendTag{}));
  RETURN_IF_ERROR(writer->BeginAppend(options));
  return writer;
}

Status CorpusWriter::WriteBytes(const uint8_t* data, size_t size) {
  if (journal_ != nullptr) {
    return journal_->Append(data, size);
  }
  if (atomic_ != nullptr) {
    return atomic_->Append(data, size);
  }
  return FailedPreconditionError("corpus writer has no open sink");
}

Status CorpusWriter::BeginAppend(const CorpusAppendOptions& options) {
  // Validate the existing bundle and lift its index through the normal
  // reader path (header/trailer/CRC/window checks all apply, and a torn
  // journal tail is scanned past). No chunk ever decodes here, so the
  // cache is disabled.
  CorpusReaderOptions read_options;
  read_options.io = options.io;
  read_options.cache_bytes = 0;
  uint64_t tail = 0;
  uint64_t observed_size = 0;
  uint32_t observed_version = kCorpusFormatVersion;
  {
    ASSIGN_OR_RETURN(CorpusReader existing,
                     CorpusReader::Open(path_, read_options));
    if (existing.index_offset() < kCorpusHeaderBytes) {
      return InvalidArgumentError("corpus index offset inside header: " +
                                  path_);
    }

    if (options.mode == CorpusAppendMode::kInPlace) {
      // Journal append: no existing byte is copied. Seed the entry set,
      // remember the trailer being superseded, and release the reader's
      // handle (scope end) before the sink starts mutating the file.
      prev_trailer_offset_ = existing.trailer_offset();
      generation_ = existing.generation() + 1;
      tail = existing.tail_offset();
      observed_size = existing.file_size();
      observed_version = existing.format_version();
      begun_ = true;
      offset_ = tail;
      entries_ = existing.entries();
      base_entry_count_ = entries_.size();
      for (const CorpusEntry& entry : entries_) {
        names_.insert(entry.name);
      }
    } else {
      atomic_ = std::make_unique<AtomicFileSink>(path_);
      if (existing.journaled()) {
        // Rewriting a journaled bundle canonicalizes it: fresh v1
        // header, every live image copied in index order — superseded
        // index generations and any torn tail are left behind, exactly
        // like CompactCorpus with an empty drop set.
        RETURN_IF_ERROR(Begin());
        for (const CorpusEntry& entry : existing.entries()) {
          RETURN_IF_ERROR(AddImageWindow(entry, existing));
        }
        return OkStatus();
      }
      // Canonical v1 bundle: copy header + every embedded image —
      // [0, index_offset) — into the temp sink in bounded chunks; the
      // old index and trailer are dropped (Finish() writes merged
      // replacements). The copy reads through the reader's own handle,
      // so index and bytes can never disagree even if the path is
      // atomically replaced mid-append.
      begun_ = true;
      std::vector<uint8_t> scratch;
      constexpr uint64_t kCopyChunkBytes = 1 << 20;
      const RandomAccessFile& file = *existing.file_;
      for (uint64_t copied = 0; copied < existing.index_offset();) {
        const uint64_t want =
            std::min(kCopyChunkBytes, existing.index_offset() - copied);
        ASSIGN_OR_RETURN(
            std::span<const uint8_t> bytes,
            file.Read(copied, static_cast<size_t>(want), &scratch));
        status_ = WriteBytes(bytes.data(), bytes.size());
        if (!status_.ok()) {
          return status_;
        }
        copied += want;
      }
      offset_ = existing.index_offset();
      entries_ = existing.entries();
      for (const CorpusEntry& entry : entries_) {
        names_.insert(entry.name);
      }
      return OkStatus();
    }
  }
  ASSIGN_OR_RETURN(journal_, CorpusJournalSink::Open(path_, tail, observed_size,
                                                     prev_trailer_offset_,
                                                     observed_version));
  return OkStatus();
}

Status CorpusWriter::Begin() {
  if (begun_) {
    return FailedPreconditionError("CorpusWriter::Begin called twice");
  }
  begun_ = true;
  Encoder encoder;
  encoder.PutFixed32(kCorpusFileMagic);
  encoder.PutFixed32(kCorpusFormatVersion);
  encoder.PutFixed32(0);  // flags, reserved
  status_ = WriteBytes(encoder.buffer());
  if (status_.ok()) {
    offset_ = encoder.size();
  }
  return status_;
}

Status CorpusWriter::CheckOpenForNewEntry(const std::string& name) {
  if (!begun_ || finished_) {
    return FailedPreconditionError("corpus writer not open for new entries");
  }
  if (!status_.ok()) {
    return status_;
  }
  if (active_writer_ != nullptr) {
    return FailedPreconditionError(
        "corpus already has a streaming recording in progress");
  }
  if (name.empty()) {
    return InvalidArgumentError("corpus entry name must not be empty");
  }
  if (names_.count(name) != 0) {
    return AlreadyExistsError("duplicate corpus entry name: " + name);
  }
  return OkStatus();
}

Result<StreamingTraceWriter*> CorpusWriter::BeginRecording(
    const std::string& name, TraceWriteOptions options) {
  RETURN_IF_ERROR(CheckOpenForNewEntry(name));
  active_name_ = name;
  active_start_ = offset_;
  active_sink_ = std::make_unique<CorpusEmbeddedSink>(this);
  active_writer_ = std::make_unique<StreamingTraceWriter>(active_sink_.get(),
                                                          std::move(options));
  Status begun = active_writer_->Begin();
  if (!begun.ok()) {
    status_ = begun;
    active_writer_.reset();
    active_sink_.reset();
    return begun;
  }
  return active_writer_.get();
}

Status CorpusWriter::FinishRecording(const TraceFinishInfo& info) {
  if (active_writer_ == nullptr) {
    return FailedPreconditionError("no streaming recording in progress");
  }
  const TraceWriteOptions& options = active_writer_->options();
  Status finished = active_writer_->Finish(info);
  if (!finished.ok()) {
    status_ = finished;
  } else {
    CorpusEntry entry;
    entry.name = active_name_;
    entry.offset = active_start_;
    entry.length = offset_ - active_start_;
    entry.model = info.model;
    entry.scenario = info.scenario.empty() ? options.scenario : info.scenario;
    entry.event_count = active_writer_->events_written();
    entry.original_wall_seconds = info.original_wall_seconds != 0.0
                                      ? info.original_wall_seconds
                                      : options.original_wall_seconds;
    entries_.push_back(std::move(entry));
    names_.insert(active_name_);
  }
  active_writer_.reset();
  active_sink_.reset();
  return finished;
}

Status CorpusWriter::Add(const std::string& name,
                         const RecordedExecution& recording,
                         const TraceWriteOptions& options) {
  ASSIGN_OR_RETURN(StreamingTraceWriter * writer, BeginRecording(name, options));
  Status appended = writer->AppendEvents(recording.log.events());
  if (!appended.ok()) {
    status_ = appended;
    active_writer_.reset();
    active_sink_.reset();
    return appended;
  }
  return FinishRecording(FinishInfoFor(recording));
}

Status CorpusWriter::AddImage(const std::string& name,
                              const std::vector<uint8_t>& image,
                              const std::string& model,
                              const std::string& scenario,
                              uint64_t event_count,
                              double original_wall_seconds) {
  RETURN_IF_ERROR(CheckOpenForNewEntry(name));
  if (image.size() < kTraceHeaderBytes + kTraceTrailerBytes) {
    return InvalidArgumentError("corpus entry image too small to be a trace");
  }
  Status appended = WriteBytes(image.data(), image.size());
  if (!appended.ok()) {
    status_ = appended;
    return appended;
  }
  CorpusEntry entry;
  entry.name = name;
  entry.offset = offset_;
  entry.length = image.size();
  entry.model = model;
  entry.scenario = scenario;
  entry.event_count = event_count;
  entry.original_wall_seconds = original_wall_seconds;
  offset_ += image.size();
  entries_.push_back(std::move(entry));
  names_.insert(name);
  return OkStatus();
}

Status CorpusWriter::AddImageWindow(const CorpusEntry& entry,
                                    const CorpusReader& source) {
  RETURN_IF_ERROR(CheckOpenForNewEntry(entry.name));
  if (entry.length < kTraceHeaderBytes + kTraceTrailerBytes) {
    return InvalidArgumentError("corpus entry image too small to be a trace");
  }
  const RandomAccessFile& file = *source.file_;
  std::vector<uint8_t> scratch;
  constexpr uint64_t kCopyChunkBytes = 1 << 20;
  for (uint64_t copied = 0; copied < entry.length;) {
    const uint64_t want = std::min(kCopyChunkBytes, entry.length - copied);
    ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                     file.Read(entry.offset + copied,
                               static_cast<size_t>(want), &scratch));
    status_ = WriteBytes(bytes.data(), bytes.size());
    if (!status_.ok()) {
      return status_;
    }
    copied += want;
  }
  CorpusEntry copy = entry;
  copy.offset = offset_;
  offset_ += entry.length;
  names_.insert(copy.name);
  entries_.push_back(std::move(copy));
  return OkStatus();
}

Status CorpusWriter::Finish() {
  if (!begun_) {
    return FailedPreconditionError("CorpusWriter::Finish before Begin");
  }
  if (finished_) {
    return FailedPreconditionError("CorpusWriter::Finish called twice");
  }
  if (active_writer_ != nullptr) {
    return FailedPreconditionError(
        "corpus still has a streaming recording in progress");
  }
  if (!status_.ok()) {
    return status_;
  }
  finished_ = true;

  // An in-place append publishes a *delta* index — only the entries this
  // generation added — so the bytes written stay O(new entries) no
  // matter how large the bundle's live entry set is. Every other path
  // writes the canonical full index.
  const std::vector<uint8_t> index_payload =
      journal_ != nullptr
          ? EncodeCorpusIndex(std::vector<CorpusEntry>(
                entries_.begin() + base_entry_count_, entries_.end()))
          : EncodeCorpusIndex(entries_);
  const std::vector<uint8_t> index_section = EncodeTraceSection(
      TraceSection::kCorpusIndex, index_payload,
      /*allow_compress=*/true);
  RETURN_IF_ERROR(FaultPoint(journal_ != nullptr ? "corpus.journal.index"
                                                 : "corpus.index"));
  RETURN_IF_ERROR(WriteBytes(index_section));
  const uint64_t index_offset = offset_;
  offset_ += index_section.size();

  if (journal_ != nullptr) {
    // Publish ordering: the images and the new index must be durable
    // before the trailer that makes them reachable exists on disk; the
    // trailer itself is made durable by Commit. A crash between the two
    // fsyncs recovers to the previous generation.
    RETURN_IF_ERROR(journal_->Sync());
    RETURN_IF_ERROR(FaultPoint("corpus.journal.trailer"));
    const std::vector<uint8_t> trailer =
        EncodeJournalTrailer(index_offset, prev_trailer_offset_, generation_,
                             kCorpusDeltaTrailerMagic);
    RETURN_IF_ERROR(journal_->Append(trailer.data(), trailer.size()));
    offset_ += trailer.size();
    return journal_->Commit();
  }

  RETURN_IF_ERROR(FaultPoint("corpus.trailer"));
  Encoder encoder;
  encoder.PutFixed64(index_offset);
  encoder.PutFixed32(kCorpusTrailerMagic);
  RETURN_IF_ERROR(WriteBytes(encoder.buffer()));
  offset_ += encoder.size();
  return atomic_->Close();
}

uint64_t CorpusWriter::bytes_written() const {
  return journal_ != nullptr ? journal_->bytes_written() : offset_;
}

// ---------------------------------------------------------------- Reader

Result<CorpusReader> CorpusReader::Open(const std::string& path,
                                        const CorpusReaderOptions& options) {
  return OpenImpl(path, options, nullptr);
}

Status CorpusReader::Reopen() {
  ASSIGN_OR_RETURN(CorpusReader fresh, OpenImpl(path_, options_, cache_));
  *this = std::move(fresh);
  return OkStatus();
}

Result<CorpusReader> CorpusReader::OpenImpl(const std::string& path,
                                            const CorpusReaderOptions& options,
                                            std::shared_ptr<ChunkCache> cache) {
  CorpusReader reader;
  reader.path_ = path;
  reader.options_ = options;
  {
    auto file = RandomAccessFile::Open(path, options.io);
    if (!file.ok()) {
      return file.status().code() == StatusCode::kNotFound
                 ? NotFoundError("cannot open corpus file: " + path)
                 : file.status();
    }
    reader.file_ = std::move(*file);
  }
  reader.cache_ = cache != nullptr
                      ? std::move(cache)
                      : std::make_shared<ChunkCache>(options.cache_bytes);
  reader.file_size_ = reader.file_->size();
  if (reader.file_size_ < kCorpusHeaderBytes + kCorpusTrailerBytes) {
    return InvalidArgumentError("corpus file too small: " + path);
  }

  // Header.
  std::vector<uint8_t> scratch;
  uint32_t version = 0;
  {
    ASSIGN_OR_RETURN(std::span<const uint8_t> header,
                     reader.file_->Read(0, kCorpusHeaderBytes, &scratch));
    Decoder decoder(header.data(), header.size());
    ASSIGN_OR_RETURN(uint32_t magic, decoder.GetFixed32());
    if (magic != kCorpusFileMagic) {
      return InvalidArgumentError("bad corpus file magic");
    }
    ASSIGN_OR_RETURN(version, decoder.GetFixed32());
    if (version != kCorpusFormatVersion &&
        version != kCorpusFormatVersionJournal &&
        version != kCorpusFormatVersionDelta) {
      return InvalidArgumentError(
          StrPrintf("unsupported corpus format version %u", version));
    }
  }
  reader.format_version_ = version;

  if (version == kCorpusFormatVersion) {
    // Canonical single-shot layout: exactly one trailer, flush at
    // end-of-file — anything else is corruption, never scanned past.
    ASSIGN_OR_RETURN(
        std::span<const uint8_t> trailer_bytes,
        reader.file_->Read(reader.file_size_ - kCorpusTrailerBytes,
                           kCorpusTrailerBytes, &scratch));
    CorpusTrailerInfo trailer;
    if (!ParseTrailerBytes(trailer_bytes,
                           reader.file_size_ - kCorpusTrailerBytes,
                           /*journal_form=*/false, &trailer)) {
      return InvalidArgumentError("bad corpus trailer magic (truncated file?)");
    }
    ASSIGN_OR_RETURN(reader.entries_,
                     LoadIndexForTrailer(*reader.file_, trailer));
    reader.index_offset_ = trailer.index_offset;
    reader.trailer_offset_ = trailer.trailer_offset;
    reader.tail_offset_ = trailer.end();
    reader.journaled_ = false;
    reader.generation_ = 1;
    reader.dead_bytes_ = 0;
    return reader;
  }

  // Journaled layout (v2 or v3): chain-load the latest valid trailer,
  // scanning back past a torn tail if a crashed append left one, then
  // stitch the index chain (a no-op overlay when the latest trailer
  // already publishes a full index).
  ASSIGN_OR_RETURN(CorpusTrailerInfo trailer,
                   FindLatestValidTrailer(*reader.file_, reader.file_size_,
                                          &reader.entries_));
  reader.index_offset_ = trailer.index_offset;
  reader.trailer_offset_ = trailer.trailer_offset;
  reader.tail_offset_ = trailer.end();
  reader.journaled_ = true;
  reader.generation_ = trailer.journal_layout() ? trailer.generation : 1;
  RETURN_IF_ERROR(StitchJournalChain(*reader.file_, reader.file_size_, trailer,
                                     &reader.entries_, &reader.dead_bytes_));
  return reader;
}

const CorpusEntry* CorpusReader::Find(const std::string& name) const {
  for (const CorpusEntry& entry : entries_) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

Result<TraceReader> CorpusReader::OpenTrace(const CorpusEntry& entry) const {
  return TraceReader::OpenShared(file_, entry.offset, entry.length, cache_);
}

Result<TraceReader> CorpusReader::OpenTrace(const std::string& name) const {
  const CorpusEntry* entry = Find(name);
  if (entry == nullptr) {
    return NotFoundError("no corpus entry named '" + name + "'");
  }
  return OpenTrace(*entry);
}

Result<RecordedExecution> CorpusReader::LoadRecording(
    const std::string& name, double* original_wall_seconds) const {
  ASSIGN_OR_RETURN(TraceReader trace, OpenTrace(name));
  if (original_wall_seconds != nullptr) {
    *original_wall_seconds = trace.metadata().original_wall_seconds;
  }
  return trace.ReadRecordedExecution();
}

void CorpusReader::AdviseReadahead(ReadaheadMode mode) const {
  file_->Advise(mode);
}

Status CorpusReader::VerifyAll() const {
  // A full verify is the canonical cold sequential scan — every image
  // front to back — so widen kernel readahead for its duration and
  // restore the handle's open-time hint after (serving traffic is
  // point-lookup shaped; a sticky sequential hint would hurt it).
  file_->Advise(ReadaheadMode::kSequential);
  const Status status = VerifyAllImpl();
  file_->Advise(file_->readahead());
  return status;
}

Status CorpusReader::VerifyAllImpl() const {
  for (const CorpusEntry& entry : entries_) {
    auto trace = OpenTrace(entry);
    if (!trace.ok()) {
      return trace.status();
    }
    Status verified = trace->Verify();
    if (!verified.ok()) {
      return Status(verified.code(),
                    "corpus entry '" + entry.name + "': " + verified.message());
    }
    if (trace->metadata().event_count != entry.event_count ||
        trace->metadata().model != entry.model ||
        trace->metadata().scenario != entry.scenario ||
        trace->metadata().original_wall_seconds !=
            entry.original_wall_seconds) {
      return InvalidArgumentError(
          "corpus index metadata disagrees with embedded trace: " + entry.name);
    }
  }
  return OkStatus();
}

// ----------------------------------------------------------- Mutations

std::string_view NameCollisionPolicyName(NameCollisionPolicy policy) {
  switch (policy) {
    case NameCollisionPolicy::kFail:
      return "fail";
    case NameCollisionPolicy::kSkip:
      return "skip";
    case NameCollisionPolicy::kRenameSuffix:
      return "rename-suffix";
  }
  return "unknown";
}

Result<NameCollisionPolicy> ParseNameCollisionPolicy(const std::string& name) {
  if (name == "fail") {
    return NameCollisionPolicy::kFail;
  }
  if (name == "skip") {
    return NameCollisionPolicy::kSkip;
  }
  if (name == "rename-suffix" || name == "rename") {
    return NameCollisionPolicy::kRenameSuffix;
  }
  return InvalidArgumentError("unknown collision policy '" + name +
                              "' (expected fail|skip|rename-suffix)");
}

Result<CorpusMutationStats> MergeCorpora(const std::vector<std::string>& inputs,
                                         const std::string& output,
                                         const MergeCorporaOptions& options) {
  if (inputs.empty()) {
    return InvalidArgumentError("corpus merge needs at least one input");
  }

  // Open every input before writing a byte of output: an unreadable input
  // must fail the merge with the target untouched. Readers decode nothing
  // here, so every cache is disabled. Because each input is read through
  // the handle opened here — which keeps serving its inode after any
  // rename, on every backend — `output` may safely name one of the
  // inputs.
  CorpusReaderOptions read_options;
  read_options.io = options.io;
  read_options.cache_bytes = 0;
  std::vector<CorpusReader> readers;
  readers.reserve(inputs.size());
  for (const std::string& input : inputs) {
    ASSIGN_OR_RETURN(CorpusReader reader,
                     CorpusReader::Open(input, read_options));
    readers.push_back(std::move(reader));
  }

  // Rename-suffix targets are computed against the full original name
  // set of *all* inputs, not just the names emitted so far: a later
  // input literally named "foo~2" reserves that name, so an earlier
  // collision renames past it and the final name set is identical
  // whatever the input order.
  std::set<std::string> reserved;
  for (const CorpusReader& reader : readers) {
    for (const CorpusEntry& entry : reader.entries()) {
      reserved.insert(entry.name);
    }
  }

  CorpusMutationStats stats;
  CorpusWriter writer(output);
  RETURN_IF_ERROR(writer.Begin());
  std::set<std::string> taken;
  for (size_t r = 0; r < readers.size(); ++r) {
    const CorpusReader& reader = readers[r];
    for (const CorpusEntry& entry : reader.entries()) {
      std::string name = entry.name;
      if (taken.count(name) != 0) {
        switch (options.on_collision) {
          case NameCollisionPolicy::kFail:
            return AlreadyExistsError("corpus merge: entry '" + entry.name +
                                      "' from " + inputs[r] +
                                      " collides with an earlier input");
          case NameCollisionPolicy::kSkip:
            ++stats.skipped;
            continue;
          case NameCollisionPolicy::kRenameSuffix: {
            uint64_t suffix = 2;
            do {
              name = entry.name + "~" + std::to_string(suffix++);
            } while (taken.count(name) != 0 || reserved.count(name) != 0);
            ++stats.renamed;
            break;
          }
        }
      }
      CorpusEntry renamed = entry;
      renamed.name = name;
      // The writer reads the image bytes through the input's own handle:
      // byte-for-byte copy, nothing decoded.
      RETURN_IF_ERROR(writer.AddImageWindow(renamed, reader));
      taken.insert(std::move(name));
      ++stats.added;
    }
  }
  RETURN_IF_ERROR(writer.Finish());
  return stats;
}

Result<CorpusMutationStats> CompactCorpus(
    const std::string& path, const std::vector<std::string>& drop_names,
    const RandomAccessFileOptions& io) {
  CorpusReaderOptions read_options;
  read_options.io = io;
  read_options.cache_bytes = 0;
  ASSIGN_OR_RETURN(CorpusReader reader, CorpusReader::Open(path, read_options));

  // Every requested drop must name a real entry — a typo'd compact that
  // silently "succeeds" would be indistinguishable from the intended one.
  // (An empty drop set is the journal-squash case: rewrite the live
  // entries into canonical v1 form, reclaiming dead index generations.)
  std::set<std::string> drop(drop_names.begin(), drop_names.end());
  for (const std::string& name : drop) {
    if (reader.Find(name) == nullptr) {
      return NotFoundError("corpus compact: no entry named '" + name + "' in " +
                           path);
    }
  }

  CorpusMutationStats stats;
  CorpusWriter writer(path);
  RETURN_IF_ERROR(writer.Begin());
  for (const CorpusEntry& entry : reader.entries()) {
    if (drop.count(entry.name) != 0) {
      ++stats.dropped;
      continue;
    }
    RETURN_IF_ERROR(writer.AddImageWindow(entry, reader));
    ++stats.added;
  }
  RETURN_IF_ERROR(writer.Finish());
  return stats;
}

Result<bool> CorpusWriterActive(const std::string& path) {
  return FileExclusivelyLocked(path);
}

}  // namespace ddr
