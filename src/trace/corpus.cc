#include "src/trace/corpus.h"

#include <algorithm>
#include <span>

#include "src/trace/trace_writer.h"
#include "src/util/string_util.h"

namespace ddr {

namespace {

std::vector<uint8_t> EncodeCorpusIndex(const std::vector<CorpusEntry>& entries) {
  Encoder encoder;
  encoder.PutVarint64(entries.size());
  for (const CorpusEntry& entry : entries) {
    encoder.PutString(entry.name);
    encoder.PutVarint64(entry.offset);
    encoder.PutVarint64(entry.length);
    encoder.PutString(entry.model);
    encoder.PutString(entry.scenario);
    encoder.PutVarint64(entry.event_count);
    encoder.PutDouble(entry.original_wall_seconds);
  }
  return encoder.TakeBuffer();
}

Result<std::vector<CorpusEntry>> DecodeCorpusIndex(
    std::span<const uint8_t> bytes) {
  Decoder decoder(bytes.data(), bytes.size());
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  std::vector<CorpusEntry> entries;
  // The smallest possible entry (empty strings, 1-byte varints, the
  // fixed-width double) encodes to 14 bytes, so the payload bounds the
  // count; the reserve is additionally capped so memory grows with
  // *decoded* entries, not the claimed count (each CorpusEntry is an
  // order of magnitude larger than its minimal encoding, and a crafted
  // count must fail in the decode loop with a Status, not abort inside
  // the allocation).
  if (count > bytes.size() / 14) {
    return InvalidArgumentError("corpus index count exceeds payload");
  }
  entries.reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
  for (uint64_t i = 0; i < count; ++i) {
    CorpusEntry entry;
    ASSIGN_OR_RETURN(entry.name, decoder.GetString());
    ASSIGN_OR_RETURN(entry.offset, decoder.GetVarint64());
    ASSIGN_OR_RETURN(entry.length, decoder.GetVarint64());
    ASSIGN_OR_RETURN(entry.model, decoder.GetString());
    ASSIGN_OR_RETURN(entry.scenario, decoder.GetString());
    ASSIGN_OR_RETURN(entry.event_count, decoder.GetVarint64());
    ASSIGN_OR_RETURN(entry.original_wall_seconds, decoder.GetDouble());
    entries.push_back(std::move(entry));
  }
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after corpus index");
  }
  return entries;
}

}  // namespace

// Forwards an embedded DDRT stream into the corpus file. Close() is a
// no-op: the embedded image ends, the corpus file stays open for the next
// recording and the index.
class CorpusEmbeddedSink : public TraceByteSink {
 public:
  explicit CorpusEmbeddedSink(CorpusWriter* owner) : owner_(owner) {}

  using TraceByteSink::Append;
  Status Append(const uint8_t* data, size_t size) override {
    RETURN_IF_ERROR(owner_->sink_.Append(data, size));
    owner_->offset_ += size;
    return OkStatus();
  }
  Status Close() override { return OkStatus(); }

 private:
  CorpusWriter* owner_;
};

CorpusWriter::CorpusWriter(std::string path)
    : path_(std::move(path)), sink_(path_) {}

Result<std::unique_ptr<CorpusWriter>> CorpusWriter::AppendTo(
    const std::string& path, const RandomAccessFileOptions& io) {
  std::unique_ptr<CorpusWriter> writer(new CorpusWriter(path));
  RETURN_IF_ERROR(writer->BeginAppend(io));
  return writer;
}

Status CorpusWriter::BeginAppend(const RandomAccessFileOptions& io) {
  // Validate the existing bundle and lift its index through the normal
  // reader path (header/trailer/CRC/window checks all apply). No chunk
  // ever decodes here, so the cache is disabled.
  CorpusReaderOptions read_options;
  read_options.io = io;
  read_options.cache_bytes = 0;
  ASSIGN_OR_RETURN(CorpusReader existing,
                   CorpusReader::Open(path_, read_options));
  if (existing.index_offset() < kCorpusHeaderBytes) {
    return InvalidArgumentError("corpus index offset inside header: " + path_);
  }

  // Copy header + every embedded image — [0, index_offset) — into the
  // temp sink in bounded chunks; the old index and trailer are dropped
  // (Finish() writes merged replacements). The copy reads through the
  // reader's own handle, so index and bytes can never disagree even if
  // the path is atomically replaced mid-append.
  begun_ = true;
  std::vector<uint8_t> scratch;
  constexpr uint64_t kCopyChunkBytes = 1 << 20;
  const RandomAccessFile& file = *existing.file_;
  for (uint64_t copied = 0; copied < existing.index_offset();) {
    const uint64_t want =
        std::min(kCopyChunkBytes, existing.index_offset() - copied);
    ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                     file.Read(copied, static_cast<size_t>(want), &scratch));
    status_ = sink_.Append(bytes.data(), bytes.size());
    if (!status_.ok()) {
      return status_;
    }
    copied += want;
  }
  offset_ = existing.index_offset();
  entries_ = existing.entries();
  for (const CorpusEntry& entry : entries_) {
    names_.insert(entry.name);
  }
  return OkStatus();
}

Status CorpusWriter::Begin() {
  if (begun_) {
    return FailedPreconditionError("CorpusWriter::Begin called twice");
  }
  begun_ = true;
  Encoder encoder;
  encoder.PutFixed32(kCorpusFileMagic);
  encoder.PutFixed32(kCorpusFormatVersion);
  encoder.PutFixed32(0);  // flags, reserved
  status_ = sink_.Append(encoder.buffer());
  if (status_.ok()) {
    offset_ = encoder.size();
  }
  return status_;
}

Status CorpusWriter::CheckOpenForNewEntry(const std::string& name) {
  if (!begun_ || finished_) {
    return FailedPreconditionError("corpus writer not open for new entries");
  }
  if (!status_.ok()) {
    return status_;
  }
  if (active_writer_ != nullptr) {
    return FailedPreconditionError(
        "corpus already has a streaming recording in progress");
  }
  if (name.empty()) {
    return InvalidArgumentError("corpus entry name must not be empty");
  }
  if (names_.count(name) != 0) {
    return AlreadyExistsError("duplicate corpus entry name: " + name);
  }
  return OkStatus();
}

Result<StreamingTraceWriter*> CorpusWriter::BeginRecording(
    const std::string& name, TraceWriteOptions options) {
  RETURN_IF_ERROR(CheckOpenForNewEntry(name));
  active_name_ = name;
  active_start_ = offset_;
  active_sink_ = std::make_unique<CorpusEmbeddedSink>(this);
  active_writer_ = std::make_unique<StreamingTraceWriter>(active_sink_.get(),
                                                          std::move(options));
  Status begun = active_writer_->Begin();
  if (!begun.ok()) {
    status_ = begun;
    active_writer_.reset();
    active_sink_.reset();
    return begun;
  }
  return active_writer_.get();
}

Status CorpusWriter::FinishRecording(const TraceFinishInfo& info) {
  if (active_writer_ == nullptr) {
    return FailedPreconditionError("no streaming recording in progress");
  }
  const TraceWriteOptions& options = active_writer_->options();
  Status finished = active_writer_->Finish(info);
  if (!finished.ok()) {
    status_ = finished;
  } else {
    CorpusEntry entry;
    entry.name = active_name_;
    entry.offset = active_start_;
    entry.length = offset_ - active_start_;
    entry.model = info.model;
    entry.scenario = info.scenario.empty() ? options.scenario : info.scenario;
    entry.event_count = active_writer_->events_written();
    entry.original_wall_seconds = info.original_wall_seconds != 0.0
                                      ? info.original_wall_seconds
                                      : options.original_wall_seconds;
    entries_.push_back(std::move(entry));
    names_.insert(active_name_);
  }
  active_writer_.reset();
  active_sink_.reset();
  return finished;
}

Status CorpusWriter::Add(const std::string& name,
                         const RecordedExecution& recording,
                         const TraceWriteOptions& options) {
  ASSIGN_OR_RETURN(StreamingTraceWriter * writer, BeginRecording(name, options));
  Status appended = writer->AppendEvents(recording.log.events());
  if (!appended.ok()) {
    status_ = appended;
    active_writer_.reset();
    active_sink_.reset();
    return appended;
  }
  return FinishRecording(FinishInfoFor(recording));
}

Status CorpusWriter::AddImage(const std::string& name,
                              const std::vector<uint8_t>& image,
                              const std::string& model,
                              const std::string& scenario,
                              uint64_t event_count,
                              double original_wall_seconds) {
  RETURN_IF_ERROR(CheckOpenForNewEntry(name));
  if (image.size() < kTraceHeaderBytes + kTraceTrailerBytes) {
    return InvalidArgumentError("corpus entry image too small to be a trace");
  }
  Status appended = sink_.Append(image.data(), image.size());
  if (!appended.ok()) {
    status_ = appended;
    return appended;
  }
  CorpusEntry entry;
  entry.name = name;
  entry.offset = offset_;
  entry.length = image.size();
  entry.model = model;
  entry.scenario = scenario;
  entry.event_count = event_count;
  entry.original_wall_seconds = original_wall_seconds;
  offset_ += image.size();
  entries_.push_back(std::move(entry));
  names_.insert(name);
  return OkStatus();
}

Status CorpusWriter::AddImageWindow(const CorpusEntry& entry,
                                    const CorpusReader& source) {
  RETURN_IF_ERROR(CheckOpenForNewEntry(entry.name));
  if (entry.length < kTraceHeaderBytes + kTraceTrailerBytes) {
    return InvalidArgumentError("corpus entry image too small to be a trace");
  }
  const RandomAccessFile& file = *source.file_;
  std::vector<uint8_t> scratch;
  constexpr uint64_t kCopyChunkBytes = 1 << 20;
  for (uint64_t copied = 0; copied < entry.length;) {
    const uint64_t want = std::min(kCopyChunkBytes, entry.length - copied);
    ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                     file.Read(entry.offset + copied,
                               static_cast<size_t>(want), &scratch));
    status_ = sink_.Append(bytes.data(), bytes.size());
    if (!status_.ok()) {
      return status_;
    }
    copied += want;
  }
  CorpusEntry copy = entry;
  copy.offset = offset_;
  offset_ += entry.length;
  names_.insert(copy.name);
  entries_.push_back(std::move(copy));
  return OkStatus();
}

Status CorpusWriter::Finish() {
  if (!begun_) {
    return FailedPreconditionError("CorpusWriter::Finish before Begin");
  }
  if (finished_) {
    return FailedPreconditionError("CorpusWriter::Finish called twice");
  }
  if (active_writer_ != nullptr) {
    return FailedPreconditionError(
        "corpus still has a streaming recording in progress");
  }
  if (!status_.ok()) {
    return status_;
  }
  finished_ = true;

  const std::vector<uint8_t> index_section = EncodeTraceSection(
      TraceSection::kCorpusIndex, EncodeCorpusIndex(entries_),
      /*allow_compress=*/true);
  RETURN_IF_ERROR(sink_.Append(index_section));
  const uint64_t index_offset = offset_;
  offset_ += index_section.size();

  Encoder encoder;
  encoder.PutFixed64(index_offset);
  encoder.PutFixed32(kCorpusTrailerMagic);
  RETURN_IF_ERROR(sink_.Append(encoder.buffer()));
  offset_ += encoder.size();
  return sink_.Close();
}

// ---------------------------------------------------------------- Reader

Result<CorpusReader> CorpusReader::Open(const std::string& path,
                                        const CorpusReaderOptions& options) {
  return OpenImpl(path, options, nullptr);
}

Status CorpusReader::Reopen() {
  ASSIGN_OR_RETURN(CorpusReader fresh, OpenImpl(path_, options_, cache_));
  *this = std::move(fresh);
  return OkStatus();
}

Result<CorpusReader> CorpusReader::OpenImpl(const std::string& path,
                                            const CorpusReaderOptions& options,
                                            std::shared_ptr<ChunkCache> cache) {
  CorpusReader reader;
  reader.path_ = path;
  reader.options_ = options;
  {
    auto file = RandomAccessFile::Open(path, options.io);
    if (!file.ok()) {
      return file.status().code() == StatusCode::kNotFound
                 ? NotFoundError("cannot open corpus file: " + path)
                 : file.status();
    }
    reader.file_ = std::move(*file);
  }
  reader.cache_ = cache != nullptr
                      ? std::move(cache)
                      : std::make_shared<ChunkCache>(options.cache_bytes);
  reader.file_size_ = reader.file_->size();
  if (reader.file_size_ < kCorpusHeaderBytes + kCorpusTrailerBytes) {
    return InvalidArgumentError("corpus file too small: " + path);
  }

  // Header.
  std::vector<uint8_t> scratch;
  {
    ASSIGN_OR_RETURN(std::span<const uint8_t> header,
                     reader.file_->Read(0, kCorpusHeaderBytes, &scratch));
    Decoder decoder(header.data(), header.size());
    ASSIGN_OR_RETURN(uint32_t magic, decoder.GetFixed32());
    if (magic != kCorpusFileMagic) {
      return InvalidArgumentError("bad corpus file magic");
    }
    ASSIGN_OR_RETURN(uint32_t version, decoder.GetFixed32());
    if (version != kCorpusFormatVersion) {
      return InvalidArgumentError(
          StrPrintf("unsupported corpus format version %u", version));
    }
  }

  // Trailer -> index.
  uint64_t index_offset = 0;
  {
    ASSIGN_OR_RETURN(
        std::span<const uint8_t> trailer,
        reader.file_->Read(reader.file_size_ - kCorpusTrailerBytes,
                           kCorpusTrailerBytes, &scratch));
    Decoder decoder(trailer.data(), trailer.size());
    ASSIGN_OR_RETURN(index_offset, decoder.GetFixed64());
    ASSIGN_OR_RETURN(uint32_t magic, decoder.GetFixed32());
    if (magic != kCorpusTrailerMagic) {
      return InvalidArgumentError("bad corpus trailer magic (truncated file?)");
    }
    reader.index_offset_ = index_offset;
  }

  ASSIGN_OR_RETURN(
      TraceSectionPayload index_bytes,
      ReadTraceSection(*reader.file_, /*base=*/0, index_offset,
                       reader.file_size_, TraceSection::kCorpusIndex,
                       /*bytes_read=*/nullptr));
  ASSIGN_OR_RETURN(reader.entries_, DecodeCorpusIndex(index_bytes.view));

  // Every entry window must lie between the header and the index. The
  // subtraction form keeps a crafted huge length from wrapping the sum
  // past the bound.
  for (const CorpusEntry& entry : reader.entries_) {
    if (entry.offset < kCorpusHeaderBytes || entry.offset > index_offset ||
        entry.length < kTraceHeaderBytes + kTraceTrailerBytes ||
        entry.length > index_offset - entry.offset) {
      return InvalidArgumentError("corpus entry window out of bounds: " +
                                  entry.name);
    }
  }
  return reader;
}

const CorpusEntry* CorpusReader::Find(const std::string& name) const {
  for (const CorpusEntry& entry : entries_) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

Result<TraceReader> CorpusReader::OpenTrace(const CorpusEntry& entry) const {
  return TraceReader::OpenShared(file_, entry.offset, entry.length, cache_);
}

Result<TraceReader> CorpusReader::OpenTrace(const std::string& name) const {
  const CorpusEntry* entry = Find(name);
  if (entry == nullptr) {
    return NotFoundError("no corpus entry named '" + name + "'");
  }
  return OpenTrace(*entry);
}

Result<RecordedExecution> CorpusReader::LoadRecording(
    const std::string& name, double* original_wall_seconds) const {
  ASSIGN_OR_RETURN(TraceReader trace, OpenTrace(name));
  if (original_wall_seconds != nullptr) {
    *original_wall_seconds = trace.metadata().original_wall_seconds;
  }
  return trace.ReadRecordedExecution();
}

Status CorpusReader::VerifyAll() const {
  for (const CorpusEntry& entry : entries_) {
    auto trace = OpenTrace(entry);
    if (!trace.ok()) {
      return trace.status();
    }
    Status verified = trace->Verify();
    if (!verified.ok()) {
      return Status(verified.code(),
                    "corpus entry '" + entry.name + "': " + verified.message());
    }
    if (trace->metadata().event_count != entry.event_count ||
        trace->metadata().model != entry.model ||
        trace->metadata().scenario != entry.scenario ||
        trace->metadata().original_wall_seconds !=
            entry.original_wall_seconds) {
      return InvalidArgumentError(
          "corpus index metadata disagrees with embedded trace: " + entry.name);
    }
  }
  return OkStatus();
}

// ----------------------------------------------------------- Mutations

std::string_view NameCollisionPolicyName(NameCollisionPolicy policy) {
  switch (policy) {
    case NameCollisionPolicy::kFail:
      return "fail";
    case NameCollisionPolicy::kSkip:
      return "skip";
    case NameCollisionPolicy::kRenameSuffix:
      return "rename-suffix";
  }
  return "unknown";
}

Result<NameCollisionPolicy> ParseNameCollisionPolicy(const std::string& name) {
  if (name == "fail") {
    return NameCollisionPolicy::kFail;
  }
  if (name == "skip") {
    return NameCollisionPolicy::kSkip;
  }
  if (name == "rename-suffix" || name == "rename") {
    return NameCollisionPolicy::kRenameSuffix;
  }
  return InvalidArgumentError("unknown collision policy '" + name +
                              "' (expected fail|skip|rename-suffix)");
}

Result<CorpusMutationStats> MergeCorpora(const std::vector<std::string>& inputs,
                                         const std::string& output,
                                         const MergeCorporaOptions& options) {
  if (inputs.empty()) {
    return InvalidArgumentError("corpus merge needs at least one input");
  }

  // Open every input before writing a byte of output: an unreadable input
  // must fail the merge with the target untouched. Readers decode nothing
  // here, so every cache is disabled.
  CorpusReaderOptions read_options;
  read_options.io = options.io;
  read_options.cache_bytes = 0;
  std::vector<CorpusReader> readers;
  readers.reserve(inputs.size());
  for (const std::string& input : inputs) {
    ASSIGN_OR_RETURN(CorpusReader reader,
                     CorpusReader::Open(input, read_options));
    readers.push_back(std::move(reader));
  }

  CorpusMutationStats stats;
  CorpusWriter writer(output);
  RETURN_IF_ERROR(writer.Begin());
  std::set<std::string> taken;
  for (size_t r = 0; r < readers.size(); ++r) {
    const CorpusReader& reader = readers[r];
    for (const CorpusEntry& entry : reader.entries()) {
      std::string name = entry.name;
      if (taken.count(name) != 0) {
        switch (options.on_collision) {
          case NameCollisionPolicy::kFail:
            return AlreadyExistsError("corpus merge: entry '" + entry.name +
                                      "' from " + inputs[r] +
                                      " collides with an earlier input");
          case NameCollisionPolicy::kSkip:
            ++stats.skipped;
            continue;
          case NameCollisionPolicy::kRenameSuffix: {
            uint64_t suffix = 2;
            do {
              name = entry.name + "~" + std::to_string(suffix++);
            } while (taken.count(name) != 0);
            ++stats.renamed;
            break;
          }
        }
      }
      CorpusEntry renamed = entry;
      renamed.name = name;
      // The writer reads the image bytes through the input's own handle:
      // byte-for-byte copy, nothing decoded.
      RETURN_IF_ERROR(writer.AddImageWindow(renamed, reader));
      taken.insert(std::move(name));
      ++stats.added;
    }
  }
  RETURN_IF_ERROR(writer.Finish());
  return stats;
}

Result<CorpusMutationStats> CompactCorpus(
    const std::string& path, const std::vector<std::string>& drop_names,
    const RandomAccessFileOptions& io) {
  CorpusReaderOptions read_options;
  read_options.io = io;
  read_options.cache_bytes = 0;
  ASSIGN_OR_RETURN(CorpusReader reader, CorpusReader::Open(path, read_options));

  // Every requested drop must name a real entry — a typo'd compact that
  // silently "succeeds" would be indistinguishable from the intended one.
  std::set<std::string> drop(drop_names.begin(), drop_names.end());
  for (const std::string& name : drop) {
    if (reader.Find(name) == nullptr) {
      return NotFoundError("corpus compact: no entry named '" + name + "' in " +
                           path);
    }
  }

  CorpusMutationStats stats;
  CorpusWriter writer(path);
  RETURN_IF_ERROR(writer.Begin());
  for (const CorpusEntry& entry : reader.entries()) {
    if (drop.count(entry.name) != 0) {
      ++stats.dropped;
      continue;
    }
    RETURN_IF_ERROR(writer.AddImageWindow(entry, reader));
    ++stats.added;
  }
  RETURN_IF_ERROR(writer.Finish());
  return stats;
}

}  // namespace ddr
